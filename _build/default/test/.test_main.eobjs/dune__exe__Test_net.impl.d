test/test_net.ml: Alcotest Array Gen List QCheck QCheck_alcotest Skipweb_net
