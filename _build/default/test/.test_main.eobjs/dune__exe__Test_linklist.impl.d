test/test_linklist.ml: Alcotest Array Float Fun Hashtbl List Printf QCheck QCheck_alcotest Skipweb_linklist Skipweb_util String
