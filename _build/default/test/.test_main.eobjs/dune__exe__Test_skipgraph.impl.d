test/test_skipgraph.ml: Alcotest Array Int List QCheck QCheck_alcotest Set Skipweb_linklist Skipweb_net Skipweb_skipgraph Skipweb_util Skipweb_workload
