test/test_trapmap.ml: Alcotest Array List QCheck QCheck_alcotest Skipweb_geom Skipweb_trapmap Skipweb_util Skipweb_workload
