test/test_util.ml: Alcotest Array Float Fun Gen Hashtbl List QCheck QCheck_alcotest Skipweb_util String
