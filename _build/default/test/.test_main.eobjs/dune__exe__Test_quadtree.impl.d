test/test_quadtree.ml: Alcotest Array Float List QCheck QCheck_alcotest Skipweb_geom Skipweb_quadtree Skipweb_util Skipweb_workload
