test/test_trie.ml: Alcotest Array Gen List QCheck QCheck_alcotest Set Skipweb_trie Skipweb_util Skipweb_workload String
