test/test_workload.ml: Alcotest Array Hashtbl Skipweb_geom Skipweb_workload String
