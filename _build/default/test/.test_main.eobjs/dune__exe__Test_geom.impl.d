test/test_geom.ml: Alcotest Array Float QCheck QCheck_alcotest Skipweb_geom Skipweb_util
