test/test_skiplist.ml: Alcotest Float Gen Hashtbl Int List Map Option QCheck QCheck_alcotest Skipweb_skiplist Skipweb_util String
