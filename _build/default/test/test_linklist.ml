(* Tests for Skipweb_linklist: the 1-d range-determined link structure and
   its conflict lists (§2.1–2.2 of the paper, Lemma 1). *)

module L = Skipweb_linklist.Linklist
module Prng = Skipweb_util.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let keys = [| 10; 20; 30; 50; 80 |]

let test_num_ranges () =
  checki "2m+1" 11 (L.num_ranges keys);
  checki "empty set has the universal range" 1 (L.num_ranges [||])

let test_encode_decode_roundtrip () =
  for c = 0 to 10 do
    checki "roundtrip" c (L.encode (L.decode c))
  done

let test_valid () =
  checkb "node in range" true (L.valid keys (L.Node 4));
  checkb "node out of range" false (L.valid keys (L.Node 5));
  checkb "end link" true (L.valid keys (L.Link 5));
  checkb "link out of range" false (L.valid keys (L.Link 6))

let test_span () =
  Alcotest.(check (pair bool bool))
    "node span is the key" (true, true)
    (match L.span keys (L.Node 2) with L.Key 30, L.Key 30 -> (true, true) | _ -> (false, false));
  (match L.span keys (L.Link 0) with
  | L.Neg_inf, L.Key 10 -> ()
  | _ -> Alcotest.fail "left end link span");
  match L.span keys (L.Link 5) with
  | L.Key 80, L.Pos_inf -> ()
  | _ -> Alcotest.fail "right end link span"

let test_locate_hits_nodes () =
  Array.iteri
    (fun i k ->
      match L.locate keys k with
      | L.Node j -> checki "exact key locates node" i j
      | L.Link _ -> Alcotest.fail "expected node")
    keys

let test_locate_hits_links () =
  (match L.locate keys 25 with
  | L.Link 2 -> ()
  | _ -> Alcotest.fail "between 20 and 30 is link 2");
  (match L.locate keys 5 with L.Link 0 -> () | _ -> Alcotest.fail "before min is link 0");
  match L.locate keys 99 with L.Link 5 -> () | _ -> Alcotest.fail "after max is link 5"

let test_contains_matches_locate () =
  for q = 0 to 100 do
    let r = L.locate keys q in
    checkb "located range contains query" true (L.contains keys r q)
  done

let test_conflicts_node () =
  (* Child {20} against parent {10;20;30;50;80}: node 20's conflicts are
     the node itself plus its two incident parent links. *)
  let child = [| 20 |] in
  let confl = L.conflicts ~parent:keys ~child (L.Node 0) in
  Alcotest.(check (list int))
    "node conflicts"
    [ L.encode (L.Link 1); L.encode (L.Node 1); L.encode (L.Link 2) ]
    (List.map L.encode confl)

let test_conflicts_link () =
  (* Child {10; 50}: its middle link [10,50] conflicts with parent nodes
     10..50 and all links meeting [10,50]. *)
  let child = [| 10; 50 |] in
  let lo, hi = L.conflict_interval ~parent:keys ~child (L.Link 1) in
  checki "low end is link before 10" (L.encode (L.Link 0)) lo;
  checki "high end is link after 50" (L.encode (L.Link 4)) hi;
  checki "count" (hi - lo + 1) (L.conflict_count ~parent:keys ~child (L.Link 1))

let test_conflicts_empty_child () =
  (* The empty set's universal range conflicts with every parent range. *)
  let child = [||] in
  let lo, hi = L.conflict_interval ~parent:keys ~child (L.Link 0) in
  checki "everything conflicts" (L.num_ranges keys) (hi - lo + 1);
  checki "starts at first" 0 lo

let test_conflicts_interior_gap () =
  (* Child {10;20}: the closed link [10,20] touches parent ranges from the
     link ending at 10 through the link starting at 20: codes for Link 0,
     Node 0, Link 1, Node 1, Link 2. *)
  let child = [| 10; 20 |] in
  let lo, hi = L.conflict_interval ~parent:keys ~child (L.Link 1) in
  checki "lo" (L.encode (L.Link 0)) lo;
  checki "hi" (L.encode (L.Link 2)) hi;
  checki "count" 5 (L.conflict_count ~parent:keys ~child (L.Link 1))

let test_intersection_size () =
  let child = [| 10; 50 |] in
  (* Child link [10,50] contains parent keys 10, 20, 30, 50. *)
  checki "|Q ∩ S|" 4 (L.intersection_size ~parent:keys ~child (L.Link 1));
  (* Child node 50 contains exactly the parent key 50. *)
  checki "node intersection" 1 (L.intersection_size ~parent:keys ~child (L.Node 1));
  (* The unbounded right link [50, +inf) contains 50 and 80. *)
  checki "end link intersection" 2 (L.intersection_size ~parent:keys ~child (L.Link 2))

let test_predecessor_successor () =
  Alcotest.(check (option int)) "pred of 25" (Some 20) (L.predecessor keys 25);
  Alcotest.(check (option int)) "pred of 10" (Some 10) (L.predecessor keys 10);
  Alcotest.(check (option int)) "pred of 5" None (L.predecessor keys 5);
  Alcotest.(check (option int)) "succ of 25" (Some 30) (L.successor keys 25);
  Alcotest.(check (option int)) "succ of 99" None (L.successor keys 99);
  Alcotest.(check (option int)) "succ of 80" (Some 80) (L.successor keys 80)

let test_nearest () =
  Alcotest.(check (option int)) "nearest to 24" (Some 20) (L.nearest keys 24);
  Alcotest.(check (option int)) "nearest to 26" (Some 30) (L.nearest keys 26);
  Alcotest.(check (option int)) "tie goes to predecessor" (Some 20) (L.nearest keys 25);
  Alcotest.(check (option int)) "empty set" None (L.nearest [||] 5)

let test_nearest_in_range_consistent () =
  for q = 0 to 100 do
    let r = L.locate keys q in
    Alcotest.(check (option int))
      "range-local nearest equals global nearest" (L.nearest keys q)
      (L.nearest_in_range keys r q)
  done

let test_check_subset () =
  checkb "subset" true (L.check_subset ~parent:keys ~child:[| 20; 80 |]);
  checkb "not subset" false (L.check_subset ~parent:keys ~child:[| 20; 81 |]);
  checkb "empty is subset" true (L.check_subset ~parent:keys ~child:[||])

(* Generators for property tests. *)
let gen_set_and_subset =
  QCheck.Gen.(
    let* n = int_range 1 60 in
    let* seed = int_range 0 10_000 in
    let rng = Prng.create seed in
    let tbl = Hashtbl.create 64 in
    let rec draw k acc =
      if k = 0 then acc
      else
        let v = Prng.int rng 1000 in
        if Hashtbl.mem tbl v then draw k acc
        else begin
          Hashtbl.add tbl v ();
          draw (k - 1) (v :: acc)
        end
    in
    let parent = Array.of_list (draw n []) in
    Array.sort compare parent;
    let child = Array.of_list (List.filter (fun _ -> Prng.bool rng) (Array.to_list parent)) in
    let* q = int_range (-50) 1050 in
    return (parent, child, q))

let arb_set_and_subset =
  QCheck.make gen_set_and_subset ~print:(fun (p, c, q) ->
      Printf.sprintf "parent=[%s] child=[%s] q=%d"
        (String.concat ";" (Array.to_list (Array.map string_of_int p)))
        (String.concat ";" (Array.to_list (Array.map string_of_int c)))
        q)

(* The routing soundness property that makes skip-webs work: the parent
   range containing q always conflicts with the child range containing q. *)
let qcheck_routing_soundness =
  QCheck.Test.make ~name:"parent locate is among child conflicts" ~count:1000 arb_set_and_subset
    (fun (parent, child, q) ->
      let child_range = L.locate child q in
      let parent_range = L.locate parent q in
      let lo, hi = L.conflict_interval ~parent ~child child_range in
      let code = L.encode parent_range in
      lo <= code && code <= hi)

(* Conflicts really are intersections: brute-force cross-check. *)
let qcheck_conflicts_are_intersections =
  QCheck.Test.make ~name:"conflict list = brute-force intersection" ~count:500 arb_set_and_subset
    (fun (parent, child, q) ->
      let child_range = L.locate child q in
      let lo, hi = L.conflict_interval ~parent ~child child_range in
      let bound_to_float = function
        | L.Neg_inf -> neg_infinity
        | L.Key k -> float_of_int k
        | L.Pos_inf -> infinity
      in
      let intersects r1 =
        let lo1, hi1 = L.span parent r1 and lo2, hi2 = L.span child child_range in
        Float.max (bound_to_float lo1) (bound_to_float lo2)
        <= Float.min (bound_to_float hi1) (bound_to_float hi2)
      in
      List.for_all
        (fun code ->
          let expected = code >= lo && code <= hi in
          intersects (L.decode code) = expected)
        (List.init (L.num_ranges parent) Fun.id))

let qcheck_locate_total =
  QCheck.Test.make ~name:"locate always returns a valid containing range" ~count:1000
    arb_set_and_subset (fun (parent, _, q) ->
      let r = L.locate parent q in
      L.valid parent r && L.contains parent r q)


let test_range_keys () =
  Alcotest.(check (list int)) "interior range" [ 20; 30; 50 ] (L.range_keys keys ~lo:15 ~hi:50);
  Alcotest.(check (list int)) "inclusive endpoints" [ 10; 20 ] (L.range_keys keys ~lo:10 ~hi:20);
  Alcotest.(check (list int)) "empty range" [] (L.range_keys keys ~lo:21 ~hi:29);
  Alcotest.(check (list int)) "everything" [ 10; 20; 30; 50; 80 ] (L.range_keys keys ~lo:0 ~hi:100);
  Alcotest.(check (list int)) "inverted" [] (L.range_keys keys ~lo:60 ~hi:55)

let test_range_codes () =
  let lo, hi = L.range_codes keys ~lo:15 ~hi:50 in
  checkb "walk covers the reported keys" true (lo <= hi);
  checki "starts at link before 20" (L.encode (L.Link 1)) lo;
  checki "ends at node 50" (L.encode (L.Node 3)) hi

let suite =
  [
    Alcotest.test_case "num ranges" `Quick test_num_ranges;
    Alcotest.test_case "encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
    Alcotest.test_case "valid" `Quick test_valid;
    Alcotest.test_case "span" `Quick test_span;
    Alcotest.test_case "locate hits nodes" `Quick test_locate_hits_nodes;
    Alcotest.test_case "locate hits links" `Quick test_locate_hits_links;
    Alcotest.test_case "contains matches locate" `Quick test_contains_matches_locate;
    Alcotest.test_case "conflicts of a node" `Quick test_conflicts_node;
    Alcotest.test_case "conflicts of a link" `Quick test_conflicts_link;
    Alcotest.test_case "conflicts of empty child" `Quick test_conflicts_empty_child;
    Alcotest.test_case "conflicts of interior gap" `Quick test_conflicts_interior_gap;
    Alcotest.test_case "intersection size" `Quick test_intersection_size;
    Alcotest.test_case "predecessor/successor" `Quick test_predecessor_successor;
    Alcotest.test_case "nearest" `Quick test_nearest;
    Alcotest.test_case "nearest in range" `Quick test_nearest_in_range_consistent;
    Alcotest.test_case "check subset" `Quick test_check_subset;
    Alcotest.test_case "range keys" `Quick test_range_keys;
    Alcotest.test_case "range codes" `Quick test_range_codes;
    QCheck_alcotest.to_alcotest qcheck_routing_soundness;
    QCheck_alcotest.to_alcotest qcheck_conflicts_are_intersections;
    QCheck_alcotest.to_alcotest qcheck_locate_total;
  ]
