(* Tests for Skipweb_net: the message-counting cost model. *)

module Network = Skipweb_net.Network
module Placement = Skipweb_net.Placement

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_create_bounds () =
  Alcotest.check_raises "zero hosts" (Invalid_argument "Network.create: need at least one host")
    (fun () -> ignore (Network.create ~hosts:0));
  checki "host count" 5 (Network.host_count (Network.create ~hosts:5))

let test_session_counts_crossings () =
  let net = Network.create ~hosts:4 in
  let s = Network.start net 0 in
  checki "no messages at start" 0 (Network.messages s);
  Network.goto s 0;
  checki "same host is free" 0 (Network.messages s);
  Network.goto s 1;
  checki "crossing costs one" 1 (Network.messages s);
  Network.goto s 1;
  checki "staying is free" 0 (Network.messages s - 1);
  Network.goto s 2;
  Network.goto s 3;
  Network.goto s 0;
  checki "four crossings total" 4 (Network.messages s);
  checki "current host" 0 (Network.current s)

let test_total_messages_accumulate () =
  let net = Network.create ~hosts:3 in
  let s1 = Network.start net 0 in
  Network.goto s1 1;
  let s2 = Network.start net 2 in
  Network.goto s2 0;
  Network.goto s2 1;
  checki "global total" 3 (Network.total_messages net);
  checki "sessions" 2 (Network.sessions_started net)

let test_traffic_tracking () =
  let net = Network.create ~hosts:3 in
  let s = Network.start net 0 in
  Network.goto s 1;
  Network.goto s 2;
  Network.goto s 1;
  checki "host 1 visited twice" 2 (Network.traffic net 1);
  checki "host 0 visited once (start)" 1 (Network.traffic net 0);
  checki "max traffic" 2 (Network.max_traffic net);
  Network.reset_traffic net;
  checki "reset clears traffic" 0 (Network.traffic net 1);
  checki "reset clears totals" 0 (Network.total_messages net)

let test_memory_accounting () =
  let net = Network.create ~hosts:4 in
  Network.charge_memory net 0 10;
  Network.charge_memory net 1 4;
  Network.charge_memory net 0 (-3);
  checki "memory at 0" 7 (Network.memory net 0);
  checki "max memory" 7 (Network.max_memory net);
  checki "total memory" 11 (Network.total_memory net);
  Alcotest.(check (float 1e-9)) "mean memory" 2.75 (Network.mean_memory net)

let test_memory_survives_traffic_reset () =
  let net = Network.create ~hosts:2 in
  Network.charge_memory net 0 5;
  Network.reset_traffic net;
  checki "memory kept" 5 (Network.memory net 0)

let test_congestion_measure () =
  let net = Network.create ~hosts:10 in
  Network.charge_memory net 3 20;
  Alcotest.(check (float 1e-9)) "congestion = max mem + n/H" 30.0 (Network.congestion net ~items:100)

let test_bad_host_rejected () =
  let net = Network.create ~hosts:2 in
  Alcotest.check_raises "bad host" (Invalid_argument "Network: bad host 2 (H=2)") (fun () ->
      Network.charge_memory net 2 1)

let test_placement_one_per_host () = checki "identity" 7 (Placement.one_per_host 7)

let test_placement_modulo () =
  checki "wraps" 1 (Placement.modulo ~hosts:3 7);
  checki "small" 2 (Placement.modulo ~hosts:3 2)

let test_placement_chunked () =
  let p = Placement.chunked ~chunk:4 ~hosts:3 in
  checki "first chunk" 0 (p 3);
  checki "second chunk" 1 (p 4);
  checki "wraps around" 0 (p 12);
  Alcotest.check_raises "chunk >= 1" (Invalid_argument "Placement.chunked: chunk must be >= 1")
    (fun () -> ignore (Placement.chunked ~chunk:0 ~hosts:3 1))

let test_placement_hashed_deterministic () =
  let p = Placement.hashed ~seed:9 ~hosts:16 in
  checki "stable" (p 123) (p 123);
  let q = Placement.hashed ~seed:10 ~hosts:16 in
  (* Different seeds should disagree on at least one of a few probes. *)
  checkb "seed matters" true (List.exists (fun i -> p i <> q i) [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let test_placement_hashed_spreads () =
  let hosts = 8 in
  let p = Placement.hashed ~seed:3 ~hosts in
  let counts = Array.make hosts 0 in
  for i = 0 to 7999 do
    let h = p i in
    counts.(h) <- counts.(h) + 1
  done;
  Array.iter (fun c -> checkb "roughly uniform" true (c > 700 && c < 1300)) counts

let test_charge_all () =
  let net = Network.create ~hosts:4 in
  Placement.charge_all net (Placement.modulo ~hosts:4) ~items:10;
  checki "host 0 gets ceil share" 3 (Network.memory net 0);
  checki "host 3 gets floor share" 2 (Network.memory net 3);
  checki "total" 10 (Network.total_memory net)

let qcheck_goto_nonnegative =
  QCheck.Test.make ~name:"message count equals host changes" ~count:300
    QCheck.(pair (int_range 1 20) (list_of_size Gen.(int_range 0 50) (int_range 0 19)))
    (fun (hosts, moves) ->
      let moves = List.map (fun m -> m mod hosts) moves in
      let net = Network.create ~hosts in
      let s = Network.start net 0 in
      let expected = ref 0 in
      let cur = ref 0 in
      List.iter
        (fun h ->
          if h <> !cur then incr expected;
          cur := h;
          Network.goto s h)
        moves;
      Network.messages s = !expected)

let suite =
  [
    Alcotest.test_case "create bounds" `Quick test_create_bounds;
    Alcotest.test_case "session counts crossings" `Quick test_session_counts_crossings;
    Alcotest.test_case "total messages accumulate" `Quick test_total_messages_accumulate;
    Alcotest.test_case "traffic tracking" `Quick test_traffic_tracking;
    Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
    Alcotest.test_case "memory survives traffic reset" `Quick test_memory_survives_traffic_reset;
    Alcotest.test_case "congestion measure" `Quick test_congestion_measure;
    Alcotest.test_case "bad host rejected" `Quick test_bad_host_rejected;
    Alcotest.test_case "placement one per host" `Quick test_placement_one_per_host;
    Alcotest.test_case "placement modulo" `Quick test_placement_modulo;
    Alcotest.test_case "placement chunked" `Quick test_placement_chunked;
    Alcotest.test_case "placement hashed deterministic" `Quick test_placement_hashed_deterministic;
    Alcotest.test_case "placement hashed spreads" `Quick test_placement_hashed_spreads;
    Alcotest.test_case "charge all" `Quick test_charge_all;
    QCheck_alcotest.to_alcotest qcheck_goto_nonnegative;
  ]
