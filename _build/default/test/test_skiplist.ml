(* Tests for Skipweb_skiplist: the classic Pugh skip list (Figure 1). *)

module SL = Skipweb_skiplist.Skip_list
module Prng = Skipweb_util.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let of_list seed kvs =
  let t = SL.Int.create ~seed () in
  List.iter (fun (k, v) -> SL.Int.insert t k v) kvs;
  t

let test_empty () =
  let t = SL.Int.create ~seed:1 () in
  checkb "empty" true (SL.Int.is_empty t);
  checki "length" 0 (SL.Int.length t);
  Alcotest.(check (option int)) "find" None (SL.Int.find t 5);
  checkb "remove absent" false (SL.Int.remove t 5)

let test_insert_find () =
  let t = of_list 2 [ (3, 30); (1, 10); (2, 20) ] in
  checki "length" 3 (SL.Int.length t);
  Alcotest.(check (option int)) "find 1" (Some 10) (SL.Int.find t 1);
  Alcotest.(check (option int)) "find 2" (Some 20) (SL.Int.find t 2);
  Alcotest.(check (option int)) "find 3" (Some 30) (SL.Int.find t 3);
  Alcotest.(check (option int)) "find 4" None (SL.Int.find t 4)

let test_insert_replaces () =
  let t = of_list 3 [ (1, 10); (1, 11) ] in
  checki "no duplicate" 1 (SL.Int.length t);
  Alcotest.(check (option int)) "latest value" (Some 11) (SL.Int.find t 1)

let test_to_list_sorted () =
  let t = of_list 4 [ (5, 0); (1, 0); (9, 0); (3, 0); (7, 0) ] in
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 7; 9 ] (List.map fst (SL.Int.to_list t))

let test_remove () =
  let t = of_list 5 [ (1, 1); (2, 2); (3, 3) ] in
  checkb "remove present" true (SL.Int.remove t 2);
  checkb "remove twice" false (SL.Int.remove t 2);
  checki "length" 2 (SL.Int.length t);
  Alcotest.(check (list int)) "remaining" [ 1; 3 ] (List.map fst (SL.Int.to_list t));
  SL.Int.check_invariants t

let test_predecessor_successor () =
  let t = of_list 6 [ (10, 0); (20, 0); (30, 0) ] in
  Alcotest.(check (option int)) "pred 25" (Some 20) (Option.map fst (SL.Int.predecessor t 25));
  Alcotest.(check (option int)) "pred 20" (Some 20) (Option.map fst (SL.Int.predecessor t 20));
  Alcotest.(check (option int)) "pred 5" None (Option.map fst (SL.Int.predecessor t 5));
  Alcotest.(check (option int)) "succ 25" (Some 30) (Option.map fst (SL.Int.successor t 25));
  Alcotest.(check (option int)) "succ 30" (Some 30) (Option.map fst (SL.Int.successor t 30));
  Alcotest.(check (option int)) "succ 31" None (Option.map fst (SL.Int.successor t 31))

let test_nearest_by () =
  let t = of_list 7 [ (10, 0); (20, 0) ] in
  let dist a b = Float.abs (float_of_int (a - b)) in
  Alcotest.(check (option int)) "nearest 14" (Some 10) (Option.map fst (SL.Int.nearest_by t 14 ~dist));
  Alcotest.(check (option int)) "nearest 16" (Some 20) (Option.map fst (SL.Int.nearest_by t 16 ~dist));
  Alcotest.(check (option int)) "tie prefers predecessor" (Some 10)
    (Option.map fst (SL.Int.nearest_by t 15 ~dist))

let test_height_logarithmic () =
  let t = SL.Int.create ~seed:8 () in
  for i = 0 to 4095 do
    SL.Int.insert t i i
  done;
  let h = SL.Int.height t in
  (* Expected height ~ log2 4096 = 12; allow generous slack. *)
  checkb "height sane" true (h >= 8 && h <= 26)

let test_tower_heights_geometric () =
  let t = SL.Int.create ~seed:9 () in
  let n = 8192 in
  for i = 0 to n - 1 do
    SL.Int.insert t i i
  done;
  let ones = ref 0 in
  for i = 0 to n - 1 do
    match SL.Int.tower_height t i with
    | Some 1 -> incr ones
    | Some _ -> ()
    | None -> Alcotest.fail "key missing"
  done;
  let freq = float_of_int !ones /. float_of_int n in
  checkb "about half the towers have height 1" true (Float.abs (freq -. 0.5) < 0.05)

let test_search_cost_logarithmic () =
  let t = SL.Int.create ~seed:10 () in
  let n = 4096 in
  for i = 0 to n - 1 do
    SL.Int.insert t (2 * i) i
  done;
  let costs = List.init 200 (fun i -> SL.Int.search_cost t (i * 37 mod (2 * n))) in
  let mean = float_of_int (List.fold_left ( + ) 0 costs) /. 200.0 in
  (* Expected ~ 2 log2 n = 24; fail only on gross blowup. *)
  checkb "search cost logarithmic" true (mean < 60.0)

let test_invariants_random_ops () =
  let rng = Prng.create 11 in
  let t = SL.Int.create ~seed:12 () in
  let model = Hashtbl.create 64 in
  for _ = 1 to 2000 do
    let k = Prng.int rng 200 in
    if Prng.bool rng then begin
      SL.Int.insert t k k;
      Hashtbl.replace model k k
    end
    else begin
      let was = Hashtbl.mem model k in
      let removed = SL.Int.remove t k in
      checkb "remove agrees with model" was removed;
      Hashtbl.remove model k
    end
  done;
  SL.Int.check_invariants t;
  checki "length agrees with model" (Hashtbl.length model) (SL.Int.length t);
  Hashtbl.iter (fun k v -> Alcotest.(check (option int)) "binding" (Some v) (SL.Int.find t k)) model

let qcheck_model_conformance =
  QCheck.Test.make ~name:"skip list conforms to sorted-assoc model" ~count:200
    QCheck.(pair small_int (list (pair (int_range 0 100) (int_range 0 100))))
    (fun (seed, ops) ->
      let t = SL.Int.create ~seed () in
      let module M = Map.Make (Int) in
      let model = ref M.empty in
      List.iter
        (fun (k, v) ->
          if v mod 3 = 0 then begin
            ignore (SL.Int.remove t k);
            model := M.remove k !model
          end
          else begin
            SL.Int.insert t k v;
            model := M.add k v !model
          end)
        ops;
      SL.Int.check_invariants t;
      SL.Int.to_list t = M.bindings !model)

let qcheck_string_keys =
  QCheck.Test.make ~name:"skip list over string keys stays sorted" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 40) (string_gen_of_size (Gen.int_range 0 6) Gen.printable))
    (fun keys ->
      let module S = SL.Make (struct
        type t = string

        let compare = String.compare
        let to_string s = s
      end) in
      let t = S.create ~seed:5 () in
      List.iter (fun k -> S.insert t k ()) keys;
      S.check_invariants t;
      let got = List.map fst (S.to_list t) in
      got = List.sort_uniq String.compare keys)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "insert/find" `Quick test_insert_find;
    Alcotest.test_case "insert replaces" `Quick test_insert_replaces;
    Alcotest.test_case "to_list sorted" `Quick test_to_list_sorted;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "predecessor/successor" `Quick test_predecessor_successor;
    Alcotest.test_case "nearest_by" `Quick test_nearest_by;
    Alcotest.test_case "height logarithmic" `Quick test_height_logarithmic;
    Alcotest.test_case "tower heights geometric" `Quick test_tower_heights_geometric;
    Alcotest.test_case "search cost logarithmic" `Quick test_search_cost_logarithmic;
    Alcotest.test_case "invariants after random ops" `Quick test_invariants_random_ops;
    QCheck_alcotest.to_alcotest qcheck_model_conformance;
    QCheck_alcotest.to_alcotest qcheck_string_keys;
  ]
