(* Tests for Skipweb_geom: points, grid coordinates, segment predicates.
   The trapezoidal map's correctness rests on these predicates, so they get
   direct coverage beyond the integration tests. *)

module Point = Skipweb_geom.Point
module Segment = Skipweb_geom.Segment
module Prng = Skipweb_util.Prng

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let test_point_create_validates () =
  checkb "valid point accepted" true (Point.dim (Point.create [ 0.0; 0.999 ]) = 2);
  Alcotest.check_raises "coordinate 1.0 rejected"
    (Invalid_argument "Point.create: coordinate out of [0,1)") (fun () ->
      ignore (Point.create [ 0.5; 1.0 ]));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Point.create: coordinate out of [0,1)") (fun () ->
      ignore (Point.create [ -0.1 ]))

let test_point_distance () =
  let a = Point.create [ 0.0; 0.0 ] and b = Point.create [ 0.3; 0.4 ] in
  checkf "euclidean" 0.5 (Point.dist a b);
  checkf "squared" 0.25 (Point.dist_sq a b);
  checkf "self distance" 0.0 (Point.dist a a);
  Alcotest.check_raises "dimension mismatch" (Invalid_argument "Point.dist: dimension mismatch")
    (fun () -> ignore (Point.dist a (Point.create [ 0.5 ])))

let test_point_grid_roundtrip () =
  let rng = Prng.create 3 in
  for _ = 1 to 500 do
    let p = Point.create [ Prng.float rng 1.0; Prng.float rng 1.0 ] in
    let g = Point.to_grid p in
    Array.iter (fun c -> checkb "grid in range" true (c >= 0 && c < Point.grid_size)) g;
    let q = Point.of_grid g in
    checkb "roundtrip within resolution" true (Point.dist p q < 2.0 /. float_of_int Point.grid_size *. 2.0)
  done

let test_segment_normalizes () =
  let s = Segment.make ~id:7 (0.8, 0.2) (0.1, 0.9) in
  let (x0, y0), (x1, y1) = Segment.endpoints s in
  checkb "x0 < x1 after normalization" true (x0 < x1);
  checkf "left endpoint" 0.1 x0;
  checkf "left y" 0.9 y0;
  checkf "right endpoint" 0.8 x1;
  checkf "right y" 0.2 y1;
  Alcotest.(check int) "id kept" 7 (Segment.id s);
  Alcotest.check_raises "vertical rejected" (Invalid_argument "Segment.make: vertical segment")
    (fun () -> ignore (Segment.make (0.5, 0.1) (0.5, 0.9)))

let test_segment_y_at () =
  let s = Segment.make (0.0, 0.0) (0.9999, 0.9999) in
  checkf "midpoint" 0.5 (Segment.y_at s 0.5);
  checkf "left end" 0.0 (Segment.y_at s 0.0);
  checkf "interior" 0.25 (Segment.y_at s 0.25)

let test_segment_above_below () =
  let s = Segment.make (0.1, 0.5) (0.9, 0.5) in
  checkb "below point" true (Segment.below_point s (0.5, 0.8));
  checkb "not below" false (Segment.below_point s (0.5, 0.2));
  checkb "above point" true (Segment.above_point s (0.5, 0.2));
  checkb "not above" false (Segment.above_point s (0.5, 0.8))

let test_segment_x_overlap () =
  let a = Segment.make (0.1, 0.1) (0.5, 0.1) in
  let b = Segment.make (0.4, 0.9) (0.8, 0.9) in
  let c = Segment.make (0.6, 0.5) (0.9, 0.5) in
  (match Segment.x_overlap a b with
  | Some (lo, hi) ->
      checkf "overlap lo" 0.4 lo;
      checkf "overlap hi" 0.5 hi
  | None -> Alcotest.fail "expected overlap");
  checkb "disjoint x-spans" true (Segment.x_overlap a c = None)

let test_segment_crosses () =
  let a = Segment.make (0.2, 0.2) (0.8, 0.8) in
  let b = Segment.make (0.2, 0.8) (0.8, 0.2) in
  let c = Segment.make (0.2, 0.9) (0.8, 0.95) in
  checkb "X crossing" true (Segment.crosses a b);
  checkb "parallel-ish no crossing" false (Segment.crosses a c);
  (* Shared endpoints do not count as crossings. *)
  let d = Segment.make (0.8, 0.8) (0.9, 0.1) in
  checkb "shared endpoint" false (Segment.crosses a d);
  (* Touching at an interior point of one segment counts. *)
  let e = Segment.make (0.3, 0.7) (0.7, 0.3) in
  checkb "proper interior crossing" true (Segment.crosses a e)

let test_segment_compare_at () =
  let low = Segment.make (0.1, 0.2) (0.9, 0.2) in
  let high = Segment.make (0.1, 0.7) (0.9, 0.7) in
  checkb "low below high" true (Segment.compare_at low high 0.5 < 0);
  checkb "high above low" true (Segment.compare_at high low 0.5 > 0);
  (* Shared left endpoint: slopes break the tie. *)
  let s1 = Segment.make (0.1, 0.5) (0.9, 0.2) in
  let s2 = Segment.make (0.1, 0.5) (0.9, 0.8) in
  checkb "slope tiebreak" true (Segment.compare_at s1 s2 0.1 < 0)

let qcheck_crosses_symmetric =
  QCheck.Test.make ~name:"segment crossing is symmetric" ~count:300
    QCheck.(quad (pair (float_bound_exclusive 1.0) (float_bound_exclusive 1.0))
              (pair (float_bound_exclusive 1.0) (float_bound_exclusive 1.0))
              (pair (float_bound_exclusive 1.0) (float_bound_exclusive 1.0))
              (pair (float_bound_exclusive 1.0) (float_bound_exclusive 1.0)))
    (fun ((ax, ay), (bx, by), (cx, cy), (dx, dy)) ->
      QCheck.assume (ax <> bx && cx <> dx);
      let s1 = Segment.make (ax, ay) (bx, by) in
      let s2 = Segment.make (cx, cy) (dx, dy) in
      Segment.crosses s1 s2 = Segment.crosses s2 s1)

let qcheck_y_at_monotone_on_line =
  QCheck.Test.make ~name:"y_at is linear interpolation" ~count:300
    QCheck.(pair (float_bound_exclusive 0.5) (float_bound_exclusive 0.5))
    (fun (y0, dy) ->
      let s = Segment.make (0.1, y0) (0.9, y0 +. dy) in
      let mid = Segment.y_at s 0.5 in
      Float.abs (mid -. (y0 +. (dy /. 2.0))) < 1e-9)

let suite =
  [
    Alcotest.test_case "point create validates" `Quick test_point_create_validates;
    Alcotest.test_case "point distance" `Quick test_point_distance;
    Alcotest.test_case "point grid roundtrip" `Quick test_point_grid_roundtrip;
    Alcotest.test_case "segment normalizes" `Quick test_segment_normalizes;
    Alcotest.test_case "segment y_at" `Quick test_segment_y_at;
    Alcotest.test_case "segment above/below" `Quick test_segment_above_below;
    Alcotest.test_case "segment x_overlap" `Quick test_segment_x_overlap;
    Alcotest.test_case "segment crosses" `Quick test_segment_crosses;
    Alcotest.test_case "segment compare_at" `Quick test_segment_compare_at;
    QCheck_alcotest.to_alcotest qcheck_crosses_symmetric;
    QCheck_alcotest.to_alcotest qcheck_y_at_monotone_on_line;
  ]
