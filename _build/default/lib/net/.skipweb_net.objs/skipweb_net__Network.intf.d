lib/net/network.mli:
