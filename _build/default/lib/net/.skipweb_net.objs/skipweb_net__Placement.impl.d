lib/net/placement.ml: Network Skipweb_util
