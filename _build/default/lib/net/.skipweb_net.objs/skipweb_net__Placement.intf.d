lib/net/placement.mli: Network
