lib/trapmap/trapmap.mli: Skipweb_geom
