lib/trapmap/trapmap.ml: Array Float Hashtbl List Printf Skipweb_geom
