(** Points in d-dimensional space.

    Structures that need exact arithmetic (compressed quadtrees/octrees)
    work on grid points: coordinates scaled to integers in
    [\[0, 2^{grid_bits})]. Floating-point points in the unit cube convert
    losslessly enough for all experiments (resolution 2^-30). *)

type t = float array
(** A point; length is its dimension. Coordinates live in [\[0, 1)]. *)

val dim : t -> int

val create : float list -> t
(** Validates every coordinate is in [\[0, 1)]. *)

val dist : t -> t -> float
(** Euclidean distance. Dimensions must agree. *)

val dist_sq : t -> t -> float

val equal : t -> t -> bool

val to_string : t -> string

(** {1 Grid coordinates} *)

val grid_bits : int
(** Resolution of the integer grid: 30 bits per coordinate. *)

val grid_size : int
(** [2 ^ grid_bits]. *)

val to_grid : t -> int array
(** Scale to integers in [\[0, grid_size)]. *)

val of_grid : int array -> t
(** Centers of grid cells, inverse of {!to_grid} up to resolution. *)
