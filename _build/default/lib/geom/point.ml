type t = float array

let dim = Array.length

let create cs =
  let p = Array.of_list cs in
  Array.iter
    (fun c -> if not (c >= 0.0 && c < 1.0) then invalid_arg "Point.create: coordinate out of [0,1)")
    p;
  p

let dist_sq a b =
  if dim a <> dim b then invalid_arg "Point.dist: dimension mismatch";
  let acc = ref 0.0 in
  for i = 0 to dim a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let dist a b = sqrt (dist_sq a b)

let equal a b = dim a = dim b && Array.for_all2 (fun x y -> x = y) a b

let to_string p =
  "(" ^ String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%.4f") p)) ^ ")"

let grid_bits = 30

let grid_size = 1 lsl grid_bits

let to_grid p =
  Array.map
    (fun c ->
      let g = int_of_float (c *. float_of_int grid_size) in
      if g < 0 then 0 else if g >= grid_size then grid_size - 1 else g)
    p

let of_grid g =
  Array.map (fun i -> (float_of_int i +. 0.5) /. float_of_int grid_size) g
