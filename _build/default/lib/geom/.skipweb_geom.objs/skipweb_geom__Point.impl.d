lib/geom/point.ml: Array Printf String
