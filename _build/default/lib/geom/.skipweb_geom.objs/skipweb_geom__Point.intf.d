lib/geom/point.mli:
