lib/geom/segment.ml: Float Printf
