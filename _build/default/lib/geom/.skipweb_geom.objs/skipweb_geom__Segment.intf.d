lib/geom/segment.mli:
