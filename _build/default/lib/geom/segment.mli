(** Non-vertical line segments in the plane and the predicates needed by
    trapezoidal maps (§3.3).

    Segments are given by two endpoints with [x0 < x1] (callers may pass
    endpoints in either order; the constructor normalizes). Trapezoidal
    maps require input segments to be pairwise non-crossing; segments may
    share endpoints. Predicates are evaluated in floating point — workloads
    generate segments on a coarse grid so that the predicates are exact. *)

type t = private { x0 : float; y0 : float; x1 : float; y1 : float; id : int }

val make : ?id:int -> float * float -> float * float -> t
(** [make (x0,y0) (x1,y1)] normalizes so [x0 < x1]. Raises
    [Invalid_argument] on vertical segments ([x0 = x1]). *)

val id : t -> int

val y_at : t -> float -> float
(** The segment's y at abscissa [x]; requires [x0 <= x <= x1]. *)

val below_point : t -> float * float -> bool
(** [below_point s (x,y)] — the segment passes strictly below the point at
    abscissa [x]. Requires [x] within the segment's x-span. *)

val above_point : t -> float * float -> bool

val x_overlap : t -> t -> (float * float) option
(** Common x-interval of positive length, if any. *)

val crosses : t -> t -> bool
(** Proper interior crossing (shared endpoints do not count). Used to
    validate workloads for the trapezoidal map. *)

val compare_at : t -> t -> float -> int
(** Vertical order of two segments at abscissa [x] (both must span [x]):
    negative if the first is lower. Falls back to slope comparison when
    they touch at [x]. *)

val endpoints : t -> (float * float) * (float * float)

val to_string : t -> string
