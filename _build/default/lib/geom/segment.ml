type t = { x0 : float; y0 : float; x1 : float; y1 : float; id : int }

let make ?(id = -1) (xa, ya) (xb, yb) =
  if xa = xb then invalid_arg "Segment.make: vertical segment";
  if xa < xb then { x0 = xa; y0 = ya; x1 = xb; y1 = yb; id }
  else { x0 = xb; y0 = yb; x1 = xa; y1 = ya; id }

let id s = s.id

let y_at s x =
  assert (x >= s.x0 && x <= s.x1);
  if x = s.x0 then s.y0
  else if x = s.x1 then s.y1
  else s.y0 +. ((s.y1 -. s.y0) *. (x -. s.x0) /. (s.x1 -. s.x0))

let below_point s (x, y) = y_at s x < y

let above_point s (x, y) = y_at s x > y

let x_overlap a b =
  let lo = Float.max a.x0 b.x0 and hi = Float.min a.x1 b.x1 in
  if lo < hi then Some (lo, hi) else None

(* Cross product of (b - a) and (c - a). *)
let orient (ax, ay) (bx, by) (cx, cy) =
  ((bx -. ax) *. (cy -. ay)) -. ((by -. ay) *. (cx -. ax))

let crosses a b =
  let a0 = (a.x0, a.y0) and a1 = (a.x1, a.y1) in
  let b0 = (b.x0, b.y0) and b1 = (b.x1, b.y1) in
  let shared (p : float * float) (q : float * float) = p = q in
  if shared a0 b0 || shared a0 b1 || shared a1 b0 || shared a1 b1 then false
  else
    let d1 = orient a0 a1 b0 and d2 = orient a0 a1 b1 in
    let d3 = orient b0 b1 a0 and d4 = orient b0 b1 a1 in
    d1 *. d2 < 0.0 && d3 *. d4 < 0.0

let compare_at a b x =
  let ya = y_at a x and yb = y_at b x in
  if ya < yb then -1
  else if ya > yb then 1
  else
    (* They touch at x (shared endpoint): compare slopes to order just
       right of the touching point. *)
    let slope s = (s.y1 -. s.y0) /. (s.x1 -. s.x0) in
    compare (slope a) (slope b)

let endpoints s = ((s.x0, s.y0), (s.x1, s.y1))

let to_string s = Printf.sprintf "seg#%d (%.3f,%.3f)-(%.3f,%.3f)" s.id s.x0 s.y0 s.x1 s.y1
