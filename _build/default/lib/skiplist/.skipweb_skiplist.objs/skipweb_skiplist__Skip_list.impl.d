lib/skiplist/skip_list.ml: Array List Option Printf Skipweb_util Stdlib
