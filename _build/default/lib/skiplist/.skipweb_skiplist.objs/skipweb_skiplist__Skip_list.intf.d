lib/skiplist/skip_list.mli: Stdlib
