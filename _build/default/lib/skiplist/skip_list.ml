module Prng = Skipweb_util.Prng

module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val to_string : t -> string
end

module Make (Ord : ORDERED) = struct
  type key = Ord.t

  (* A node is a tower: [forward.(i)] is the successor at level i. The
     header is a sentinel tower of maximal height holding no key. *)
  type 'a node = {
    nkey : key option;  (* None only for the header *)
    mutable value : 'a option;
    forward : 'a node option array;
  }

  type 'a t = {
    header : 'a node;
    max_level : int;
    rng : Prng.t;
    mutable level : int;  (* highest level currently in use, >= 1 *)
    mutable length : int;
  }

  let create ?(max_level = 32) ~seed () =
    if max_level < 1 then invalid_arg "Skip_list.create: max_level >= 1";
    {
      header = { nkey = None; value = None; forward = Array.make max_level None };
      max_level;
      rng = Prng.create seed;
      level = 1;
      length = 0;
    }

  let length t = t.length
  let is_empty t = t.length = 0

  let node_key n =
    match n.nkey with
    | Some k -> k
    | None -> invalid_arg "Skip_list: sentinel has no key"

  let random_level t =
    let rec go l = if l < t.max_level && Prng.bool t.rng then go (l + 1) else l in
    go 1

  (* Walk from the top level, recording the rightmost node strictly before
     [k] at every level. Returns the update vector. *)
  let find_update t k =
    let update = Array.make t.max_level t.header in
    let x = ref t.header in
    for i = t.level - 1 downto 0 do
      let continue = ref true in
      while !continue do
        match !x.forward.(i) with
        | Some next when Ord.compare (node_key next) k < 0 -> x := next
        | Some _ | None -> continue := false
      done;
      update.(i) <- !x
    done;
    update

  let find t k =
    let update = find_update t k in
    match update.(0).forward.(0) with
    | Some n when Ord.compare (node_key n) k = 0 -> n.value
    | Some _ | None -> None

  let mem t k = find t k <> None

  let insert t k v =
    let update = find_update t k in
    match update.(0).forward.(0) with
    | Some n when Ord.compare (node_key n) k = 0 -> n.value <- Some v
    | Some _ | None ->
        let lvl = random_level t in
        if lvl > t.level then begin
          for i = t.level to lvl - 1 do
            update.(i) <- t.header
          done;
          t.level <- lvl
        end;
        let node = { nkey = Some k; value = Some v; forward = Array.make lvl None } in
        for i = 0 to lvl - 1 do
          node.forward.(i) <- update.(i).forward.(i);
          update.(i).forward.(i) <- Some node
        done;
        t.length <- t.length + 1

  let remove t k =
    let update = find_update t k in
    match update.(0).forward.(0) with
    | Some n when Ord.compare (node_key n) k = 0 ->
        for i = 0 to Array.length n.forward - 1 do
          if i < t.level then
            match update.(i).forward.(i) with
            | Some m when m == n -> update.(i).forward.(i) <- n.forward.(i)
            | Some _ | None -> ()
        done;
        while t.level > 1 && t.header.forward.(t.level - 1) = None do
          t.level <- t.level - 1
        done;
        t.length <- t.length - 1;
        true
    | Some _ | None -> false

  let successor t k =
    let update = find_update t k in
    match update.(0).forward.(0) with
    | Some n -> Some (node_key n, Option.get n.value)
    | None -> None

  let predecessor t k =
    let update = find_update t k in
    (* update.(0) is the rightmost node with key < k; check for equality. *)
    match update.(0).forward.(0) with
    | Some n when Ord.compare (node_key n) k = 0 -> Some (node_key n, Option.get n.value)
    | Some _ | None ->
        if update.(0) == t.header then None
        else Some (node_key update.(0), Option.get update.(0).value)

  let nearest t k =
    match predecessor t k with
    | Some _ as p -> p
    | None -> successor t k

  let nearest_by t k ~dist =
    match (predecessor t k, successor t k) with
    | None, None -> None
    | (Some _ as p), None -> p
    | None, (Some _ as s) -> s
    | Some (pk, pv), Some (sk, sv) ->
        if dist k pk <= dist k sk then Some (pk, pv) else Some (sk, sv)

  let iter t ~f =
    let rec go = function
      | None -> ()
      | Some n ->
          f (node_key n) (Option.get n.value);
          go n.forward.(0)
    in
    go t.header.forward.(0)

  let to_list t =
    let acc = ref [] in
    iter t ~f:(fun k v -> acc := (k, v) :: !acc);
    List.rev !acc

  let height t = t.level

  let tower_height t k =
    let update = find_update t k in
    match update.(0).forward.(0) with
    | Some n when Ord.compare (node_key n) k = 0 -> Some (Array.length n.forward)
    | Some _ | None -> None

  let search_cost t k =
    let hops = ref 0 in
    let x = ref t.header in
    for i = t.level - 1 downto 0 do
      incr hops;  (* dropping a level inspects one pointer *)
      let continue = ref true in
      while !continue do
        match !x.forward.(i) with
        | Some next when Ord.compare (node_key next) k < 0 ->
            x := next;
            incr hops
        | Some _ | None -> continue := false
      done
    done;
    !hops

  let check_invariants t =
    (* Bottom level sorted strictly ascending, and every level is a
       subsequence of the level below. *)
    let rec check_sorted prev = function
      | None -> ()
      | Some n ->
          (match prev with
          | Some p when Ord.compare (node_key p) (node_key n) >= 0 ->
              failwith
                (Printf.sprintf "Skip_list: order violation %s >= %s"
                   (Ord.to_string (node_key p))
                   (Ord.to_string (node_key n)))
          | Some _ | None -> ());
          check_sorted (Some n) n.forward.(0)
    in
    check_sorted None t.header.forward.(0);
    for i = 1 to t.level - 1 do
      (* Every node present at level i must be reachable at level i-1. *)
      let below = ref [] in
      let rec collect = function
        | None -> ()
        | Some n ->
            below := node_key n :: !below;
            collect n.forward.(i - 1)
      in
      collect t.header.forward.(i - 1);
      let present = !below in
      let rec check_level = function
        | None -> ()
        | Some n ->
            if not (List.exists (fun k -> Ord.compare k (node_key n) = 0) present) then
              failwith "Skip_list: level is not a subsequence of the level below";
            check_level n.forward.(i)
      in
      check_level t.header.forward.(i)
    done;
    let count = ref 0 in
    iter t ~f:(fun _ _ -> incr count);
    if !count <> t.length then failwith "Skip_list: length out of sync"
end

module Int = Make (struct
  type t = int

  let compare = Stdlib.compare
  let to_string = string_of_int
end)
