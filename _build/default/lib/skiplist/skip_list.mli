(** Classic randomized skip lists (Pugh 1990) — the sequential ancestor of
    skip graphs, SkipNet and skip-webs, and the structure of the paper's
    Figure 1.

    Each element appears in the bottom-level list; a node at one level is
    copied to the next with probability 1/2. A search starts at the top
    level and proceeds rightwards as far as possible before dropping a
    level. Expected search cost is O(log n), expected space O(n).

    This module provides the sequential dictionary used by examples and as
    the ground truth oracle in tests, instrumented to expose search path
    lengths and tower heights for the Figure 1 experiment (E15). *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val to_string : t -> string
end

module Make (Ord : ORDERED) : sig
  type key = Ord.t
  type 'a t

  val create : ?max_level:int -> seed:int -> unit -> 'a t
  (** An empty skip list. [max_level] caps tower heights (default 32). *)

  val length : 'a t -> int
  val is_empty : 'a t -> bool

  val insert : 'a t -> key -> 'a -> unit
  (** Insert or replace the binding of a key. *)

  val remove : 'a t -> key -> bool
  (** [remove t k] deletes [k]'s binding; returns whether it was present. *)

  val find : 'a t -> key -> 'a option
  val mem : 'a t -> key -> bool

  val predecessor : 'a t -> key -> (key * 'a) option
  (** Greatest binding with key [<=] the argument. *)

  val successor : 'a t -> key -> (key * 'a) option
  (** Least binding with key [>=] the argument. *)

  val nearest : 'a t -> key -> (key * 'a) option
  (** With a [distance] notion induced by compare order this is whichever of
      predecessor/successor compares closer by the caller's metric; here we
      return the predecessor if it exists, else the successor, along with
      {!successor} via {!predecessor} the caller can disambiguate. Provided
      as the 1-d nearest-neighbor entry point for integer-like keys via
      {!nearest_by}. *)

  val nearest_by : 'a t -> key -> dist:(key -> key -> float) -> (key * 'a) option
  (** Nearest neighbor under an explicit distance. *)

  val to_list : 'a t -> (key * 'a) list
  (** Bindings in ascending key order. *)

  val iter : 'a t -> f:(key -> 'a -> unit) -> unit

  (** {1 Instrumentation (Figure 1 / E15)} *)

  val height : 'a t -> int
  (** Number of non-empty levels. *)

  val tower_height : 'a t -> key -> int option
  (** Height of the tower of a present key. *)

  val search_cost : 'a t -> key -> int
  (** Number of pointer traversals performed by a search for [k] (the
      sequential analogue of message count). *)

  val check_invariants : 'a t -> unit
  (** Raises [Failure] if sortedness or tower structure is violated. Used by
      property tests. *)
end

module Int : module type of Make (struct
  type t = int

  let compare = Stdlib.compare
  let to_string = string_of_int
end)
