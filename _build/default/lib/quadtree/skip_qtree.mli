(** The sequential skip quadtree (Eppstein–Goodrich–Sun, SoCG 2005) — the
    paper's reference [6], whose analysis supplies Lemma 3 and whose
    distributed analogue the quadtree skip-web is (§3.1).

    A skip quadtree keeps a sequence of compressed quadtrees Q_0 ⊇ Q_1 ⊇ …
    over nested random halves of the point set. A point-location query
    starts in the sparsest tree and refines downward: locate in Q_i, map
    the located cube into Q_{i-1} (every node cube of a subset's tree is a
    node cube of the superset's), and continue — O(1) expected work per
    level, O(log n) expected total, even when Q_0 has Θ(n) depth.

    This is the sequential, single-machine sibling of
    {!Skipweb_core.Hierarchy} over points: no hosts, no messages, just
    O(log n) expected locate steps. It serves as a fast local index in
    examples and as a reference implementation for [6]. *)

type t

val build : ?seed:int -> dim:int -> Skipweb_geom.Point.t array -> t
(** Duplicate grid points are ignored. *)

val dim : t -> int
val size : t -> int

val levels : t -> int
(** Number of quadtree levels (the sparsest non-empty one is the top). *)

val locate : t -> Skipweb_geom.Point.t -> Cqtree.location * int
(** Point location in the full (level-0) quadtree; the integer is the
    total number of tree nodes inspected across all levels — O(log n)
    expected, vs Θ(depth) for a single-tree descent. *)

val nearest : t -> Skipweb_geom.Point.t -> (Skipweb_geom.Point.t * float) option
(** Exact nearest neighbor (delegates to the level-0 tree's best-first
    search; the skip structure accelerates the initial locate). *)

val insert : t -> Skipweb_geom.Point.t -> bool
(** Insert into a random prefix of levels (each point is promoted with
    probability 1/2 per level, like a skip list tower). *)

val remove : t -> Skipweb_geom.Point.t -> bool

val check_invariants : t -> unit
(** Level trees are nested subsets and each satisfies the compressed
    quadtree invariants. *)
