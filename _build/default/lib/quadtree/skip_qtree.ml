module Point = Skipweb_geom.Point
module Prng = Skipweb_util.Prng

(* Level i holds the points whose tower height is > i; towers are
   geometric(1/2), derived deterministically from (seed, grid point) so a
   point keeps its height across rebuilds. *)
type t = {
  tdim : int;
  seed : int;
  mutable trees : Cqtree.t list;  (* level 0 first (densest) *)
}

let dim t = t.tdim

let size t = match t.trees with tree :: _ -> Cqtree.size tree | [] -> 0

let levels t = List.length t.trees

let height ~seed p =
  let g = Point.to_grid p in
  let key = Array.fold_left (fun acc c -> Prng.hash2 acc c) seed g in
  let rec count h bits = if bits land 1 = 1 then count (h + 1) (bits lsr 1) else h in
  1 + count 0 (Prng.hash2 key 0x51)

let rebuild_levels ~seed ~dim pts =
  let rec go level acc =
    let here = Array.of_list (List.filter (fun p -> height ~seed p > level) (Array.to_list pts)) in
    if Array.length here = 0 && level > 0 then List.rev acc
    else go (level + 1) (Cqtree.build ~dim here :: acc)
  in
  go 0 []

let build ?(seed = 2005) ~dim pts = { tdim = dim; seed; trees = rebuild_levels ~seed ~dim pts }

let locate t q =
  match List.rev t.trees with
  | [] -> invalid_arg "Skip_qtree.locate: empty structure"
  | top :: below ->
      (* Locate in the sparsest tree, then refine downward from the
         corresponding cube in each denser tree. *)
      let loc0, path0 = Cqtree.locate top q in
      let steps = ref (List.length path0) in
      let final =
        List.fold_left
          (fun loc tree ->
            let start =
              match Cqtree.node_of_cube tree (Cqtree.node_cube loc.Cqtree.node) with
              | Some node -> node
              | None -> Cqtree.root tree
            in
            let loc', path = Cqtree.locate_from tree start q in
            steps := !steps + List.length path;
            loc')
          loc0 below
      in
      (final, !steps)

let nearest t q = match t.trees with tree :: _ -> Cqtree.nearest tree q | [] -> None

let insert t p =
  match t.trees with
  | [] -> invalid_arg "Skip_qtree: no level-0 tree"
  | tree :: _ ->
      if Cqtree.insert tree p then begin
        let h = height ~seed:t.seed p in
        let rec extend level = function
          | [] ->
              if level < h then Cqtree.build ~dim:t.tdim [| p |] :: extend (level + 1) []
              else []
          | tr :: rest ->
              if level > 0 && level < h then ignore (Cqtree.insert tr p);
              tr :: extend (level + 1) rest
        in
        t.trees <- extend 0 t.trees;
        true
      end
      else false

let remove t p =
  match t.trees with
  | [] -> false
  | tree :: rest ->
      if Cqtree.remove tree p then begin
        List.iter (fun tr -> ignore (Cqtree.remove tr p)) rest;
        (* Drop empty top levels (keep level 0). *)
        let rec trim = function
          | [ tr0 ] -> [ tr0 ]
          | trs -> (
              match List.rev trs with
              | top :: lower when Cqtree.size top = 0 -> trim (List.rev lower)
              | _ -> trs)
        in
        t.trees <- trim t.trees;
        true
      end
      else false

let check_invariants t =
  List.iter Cqtree.check_invariants t.trees;
  (* Nesting: every point of level i+1 appears in level i. *)
  let rec pairs = function
    | lower :: (upper :: _ as rest) ->
        Cqtree.iter_points upper ~f:(fun p ->
            let loc, _ = Cqtree.locate lower p in
            match loc.Cqtree.slot with
            | Cqtree.At_point -> ()
            | Cqtree.Empty_quadrant _ | Cqtree.Outside_child _ ->
                failwith "Skip_qtree: levels not nested");
        pairs rest
    | [ _ ] | [] -> ()
  in
  pairs t.trees
