lib/quadtree/cqtree.mli: Skipweb_geom
