lib/quadtree/skip_qtree.ml: Array Cqtree List Skipweb_geom Skipweb_util
