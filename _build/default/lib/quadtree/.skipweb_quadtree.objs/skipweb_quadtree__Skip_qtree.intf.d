lib/quadtree/skip_qtree.mli: Cqtree Skipweb_geom
