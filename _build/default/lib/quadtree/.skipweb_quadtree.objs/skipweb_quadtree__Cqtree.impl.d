lib/quadtree/cqtree.ml: Array Hashtbl List Obj Printf Skipweb_geom
