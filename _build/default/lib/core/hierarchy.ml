module Network = Skipweb_net.Network
module Membership = Skipweb_util.Membership
module Prng = Skipweb_util.Prng

module Make (S : Range_structure.S) = struct
  (* Level sets are identified by (level, prefix): the level-ℓ set with
     ℓ-bit membership prefix b holds every element whose vector starts with
     b. Level 0 is the full ground set. *)
  type t = {
    net : Network.t;
    place_seed : int;
    vecs : Membership.t;
    structures : (int * int, S.t) Hashtbl.t;
    members : (int * int, (int, unit) Hashtbl.t) Hashtbl.t;
    charged : (int * int, (int, unit) Hashtbl.t) Hashtbl.t;
    key_ids : (S.key, int) Hashtbl.t;
    id_keys : (int, S.key) Hashtbl.t;
    mutable ids : int array;  (* live element ids, for random origins *)
    mutable top : int;  (* K = ceil(log2 n) *)
    mutable next_id : int;
  }

  let size t = Hashtbl.length t.key_ids

  let levels t = t.top + 1

  let prefix t id len = Membership.prefix t.vecs ~id ~len

  let set_key level b = (level, b)

  let host_of_range t level b rid =
    Prng.hash3 t.place_seed ((level * 0x100000) + b) rid mod Network.host_count t.net

  (* Re-sync the memory charges of one level structure with its live
     ranges. *)
  let recharge t level b =
    let key = set_key level b in
    let old_charges =
      match Hashtbl.find_opt t.charged key with
      | Some h -> h
      | None ->
          let h = Hashtbl.create 16 in
          Hashtbl.replace t.charged key h;
          h
    in
    let live = Hashtbl.create 16 in
    (match Hashtbl.find_opt t.structures key with
    | None -> ()
    | Some s -> List.iter (fun rid -> Hashtbl.replace live rid ()) (S.range_ids s));
    Hashtbl.iter
      (fun rid () ->
        if not (Hashtbl.mem live rid) then Network.charge_memory t.net (host_of_range t level b rid) (-1))
      old_charges;
    Hashtbl.iter
      (fun rid () ->
        if not (Hashtbl.mem old_charges rid) then Network.charge_memory t.net (host_of_range t level b rid) 1)
      live;
    Hashtbl.replace t.charged key live

  let member_table t level b =
    let key = set_key level b in
    match Hashtbl.find_opt t.members key with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 16 in
        Hashtbl.replace t.members key h;
        h

  let refresh_ids t =
    t.ids <- Array.of_seq (Hashtbl.to_seq_keys t.id_keys)

  let required_top n =
    let rec go k = if 1 lsl k >= max 1 n then k else go (k + 1) in
    go 0

  (* (Re)build the structure of one level set from its member keys. *)
  let rebuild_set t level b =
    let members = member_table t level b in
    let key = set_key level b in
    if Hashtbl.length members = 0 then Hashtbl.remove t.structures key
    else begin
      let ks =
        Hashtbl.fold (fun id () acc -> Hashtbl.find t.id_keys id :: acc) members []
      in
      Hashtbl.replace t.structures key (S.build (Array.of_list ks))
    end;
    recharge t level b

  let build ~net ~seed ?(p = 0.5) keys =
    let vecs = if p = 0.5 then Membership.create ~seed else Membership.biased ~seed ~p in
    let t =
      {
        net;
        place_seed = seed + 0x5157;
        vecs;
        structures = Hashtbl.create 64;
        members = Hashtbl.create 64;
        charged = Hashtbl.create 64;
        key_ids = Hashtbl.create 64;
        id_keys = Hashtbl.create 64;
        ids = [||];
        top = 0;
        next_id = 0;
      }
    in
    Array.iter
      (fun k ->
        if not (Hashtbl.mem t.key_ids k) then begin
          let id = t.next_id in
          t.next_id <- id + 1;
          Hashtbl.replace t.key_ids k id;
          Hashtbl.replace t.id_keys id k
        end)
      keys;
    refresh_ids t;
    t.top <- required_top (size t);
    for level = 0 to t.top do
      Hashtbl.iter
        (fun id _ -> Hashtbl.replace (member_table t level (prefix t id level)) id ())
        t.id_keys;
      (* Rebuild each set seen at this level. *)
      let seen = Hashtbl.create 16 in
      Hashtbl.iter (fun id _ -> Hashtbl.replace seen (prefix t id level) ()) t.id_keys;
      Hashtbl.iter (fun b () -> rebuild_set t level b) seen
    done;
    t

  let level_set_sizes t level =
    Hashtbl.fold
      (fun (l, _) s acc -> if l = level then S.size s :: acc else acc)
      t.structures []

  let total_storage t =
    Hashtbl.fold (fun _ s acc -> acc + S.storage_units s) t.structures 0

  type query_stats = { messages : int; ranges_visited : int; per_level_visits : int list }

  let structure_exn t level b =
    match Hashtbl.find_opt t.structures (set_key level b) with
    | Some s -> s
    | None -> failwith "Hierarchy: missing level structure on an element's path"

  (* Route a query from the top-level set of the given element down to
     level 0; the session's host pointer tracks where processing happens. *)
  let query_from t origin_id q =
    let b_top = prefix t origin_id t.top in
    let s_top = structure_exn t t.top b_top in
    let loc0, visited0 = S.locate s_top q in
    let start_host =
      match visited0 with
      | rid :: _ -> host_of_range t t.top b_top rid
      | [] -> host_of_range t t.top b_top 0
    in
    let session = Network.start t.net start_host in
    List.iter (fun rid -> Network.goto session (host_of_range t t.top b_top rid)) visited0;
    let per_level = ref [ List.length visited0 ] in
    let total = ref (List.length visited0) in
    let rec descend level loc s_above =
      if level < 0 then (loc, s_above)
      else begin
        let b = prefix t origin_id level in
        let s = structure_exn t level b in
        let desc = S.describe s_above loc in
        let loc', visited = S.refine s ~from:desc q in
        List.iter (fun rid -> Network.goto session (host_of_range t level b rid)) visited;
        per_level := List.length visited :: !per_level;
        total := !total + List.length visited;
        descend (level - 1) loc' s
      end
    in
    let loc_final, s_final = descend (t.top - 1) loc0 s_top in
    let answer = S.answer s_final loc_final q in
    ( answer,
      {
        messages = Network.messages session;
        ranges_visited = !total;
        per_level_visits = List.rev !per_level;
      } )

  let query t ~rng q =
    if size t = 0 then invalid_arg "Hierarchy.query: empty structure";
    let origin = t.ids.(Prng.int rng (Array.length t.ids)) in
    query_from t origin q

  let grow_top t =
    let wanted = required_top (size t) in
    while t.top < wanted do
      let level = t.top + 1 in
      Hashtbl.iter
        (fun id _ -> Hashtbl.replace (member_table t level (prefix t id level)) id ())
        t.id_keys;
      let seen = Hashtbl.create 16 in
      Hashtbl.iter (fun id _ -> Hashtbl.replace seen (prefix t id level) ()) t.id_keys;
      Hashtbl.iter (fun b () -> rebuild_set t level b) seen;
      t.top <- level
    done

  let insert t k =
    if Hashtbl.mem t.key_ids k then 0
    else begin
      (* Locate first (§4): route a probe query if the structure is not
         empty, paying its message cost. *)
      let locate_cost =
        if size t = 0 then 0
        else
          let rng = Prng.create (t.next_id + 77) in
          let origin = t.ids.(Prng.int rng (Array.length t.ids)) in
          let _, stats = query_from t origin (S.probe k) in
          stats.messages
      in
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.key_ids k id;
      Hashtbl.replace t.id_keys id k;
      refresh_ids t;
      for level = 0 to t.top do
        let b = prefix t id level in
        Hashtbl.replace (member_table t level b) id ();
        (match Hashtbl.find_opt t.structures (set_key level b) with
        | Some s -> S.insert s k
        | None -> Hashtbl.replace t.structures (set_key level b) (S.build [| k |]));
        recharge t level b
      done;
      let linking_cost = 2 * (t.top + 1) in
      grow_top t;
      locate_cost + linking_cost
    end

  let remove t k =
    match Hashtbl.find_opt t.key_ids k with
    | None -> 0
    | Some id ->
        let locate_cost =
          let rng = Prng.create (id + 991) in
          let origin = t.ids.(Prng.int rng (Array.length t.ids)) in
          let _, stats = query_from t origin (S.probe k) in
          stats.messages
        in
        for level = 0 to t.top do
          let b = prefix t id level in
          Hashtbl.remove (member_table t level b) id;
          (match Hashtbl.find_opt t.structures (set_key level b) with
          | Some s ->
              if Hashtbl.length (member_table t level b) = 0 then begin
                Hashtbl.remove t.structures (set_key level b);
                recharge t level b
              end
              else begin
                S.remove s k;
                recharge t level b
              end
          | None -> failwith "Hierarchy.remove: missing structure");
          ignore b
        done;
        Hashtbl.remove t.key_ids k;
        Hashtbl.remove t.id_keys id;
        refresh_ids t;
        locate_cost + (2 * (t.top + 1))

  let mean_refinement_work t ~queries ~rng =
    let total = ref 0 and count = ref 0 in
    Array.iter
      (fun q ->
        let _, stats = query t ~rng q in
        total := !total + stats.ranges_visited;
        count := !count + List.length stats.per_level_visits)
      queries;
    if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count

  let check_invariants t =
    let n = size t in
    for level = 0 to t.top do
      let covered = ref 0 in
      Hashtbl.iter
        (fun (l, b) members ->
          if l = level then begin
            covered := !covered + Hashtbl.length members;
            (match Hashtbl.find_opt t.structures (set_key level b) with
            | Some s ->
                if S.size s <> Hashtbl.length members then
                  failwith "Hierarchy: structure size disagrees with member set"
            | None ->
                if Hashtbl.length members > 0 then failwith "Hierarchy: missing structure");
            Hashtbl.iter
              (fun id () ->
                if prefix t id level <> b then failwith "Hierarchy: member in wrong set")
              members
          end)
        t.members;
      if !covered <> n then failwith "Hierarchy: level does not partition the ground set"
    done
end
