lib/core/hierarchy.ml: Array Hashtbl List Range_structure Skipweb_net Skipweb_util
