lib/core/blocked1d.ml: Array Fun Hashtbl List Printf Skipweb_linklist Skipweb_net Skipweb_util
