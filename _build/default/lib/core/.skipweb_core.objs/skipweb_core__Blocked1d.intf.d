lib/core/blocked1d.mli: Skipweb_net Skipweb_util
