lib/core/instances.ml: Array Fun List Option Printf Range_structure Skipweb_geom Skipweb_linklist Skipweb_quadtree Skipweb_trapmap Skipweb_trie
