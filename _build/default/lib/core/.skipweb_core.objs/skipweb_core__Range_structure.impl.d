lib/core/range_structure.ml:
