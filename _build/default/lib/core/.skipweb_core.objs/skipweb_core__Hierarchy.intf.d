lib/core/hierarchy.mli: Range_structure Skipweb_net Skipweb_util
