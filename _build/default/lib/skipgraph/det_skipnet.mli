(** Deterministic SkipNet (Harvey–Munro, PODC 2003) — Table 1 row 4,
    realized as a distributed 1-2-3 deterministic skip list (the structure
    their construction is built on).

    Every element lives on its own host and participates in levels
    1..height; the {e 1-2-3 invariant} — between two consecutive elements
    of the level-(h+1) list there are one, two or three level-h elements —
    guarantees worst-case O(log n) search with no randomness. Insertions
    restore the invariant bottom-up: a gap of four triggers a promotion of
    its middle element, possibly cascading upwards. Following the
    Harvey–Munro protocol, each promotion at level h is located by a fresh
    partial search from the top (hosts hold no parent pointers), which is
    what makes the worst-case update cost O(log² n) messages — the U column
    of Table 1. Deletions repair the invariant with B-tree-style borrows
    and merges (see {!delete}). *)

module Network = Skipweb_net.Network

type t

val create : net:Network.t -> keys:int array -> t
(** Deterministic bulk build satisfying the invariant (every second element
    promoted per level). *)

val size : t -> int
val height : t -> int

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

val search : t -> from:Network.host -> int -> search_result

val insert : t -> int -> int
(** Message cost: top-down locate + per-promotion partial searches. *)

val memory_per_host : t -> int list
val check_invariants : t -> unit
(** Verifies the 1-2-3 gap invariant at every level. *)

val delete : t -> int -> int
(** Remove a key, restoring the 1-2-3 invariant: merged gaps below the
    element's height are re-split by promotions; an emptied interior gap
    at its top level is repaired by B-tree-style borrows/merges through
    the adjacent parent key, cascading upwards. Message cost: a locate
    plus a partial search per structural step — O(log² n) worst case,
    matching the row's update bound. Raises [Invalid_argument] if
    absent. *)
