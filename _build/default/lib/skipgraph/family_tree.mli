(** Family trees (Zatloukal–Harvey, SODA 2004) — Table 1 row 3: an ordered
    peer-to-peer dictionary in which every host keeps only O(1) pointers
    yet searches take O(log n) expected messages.

    Simplification (documented in DESIGN.md §5): the full family-tree
    construction is replaced by a constant-degree randomized tree overlay —
    a treap keyed by the stored keys with i.i.d. random priorities. Every
    host stores its element plus three pointers (parent, left, right), so
    M = O(1) exactly as in the family-tree row; searches descend from the
    tree root (each host's designated root pointer) in O(log n) expected
    messages, and updates are a search plus O(1) expected rotations. These
    are precisely the M/Q/U shapes Table 1 reports for family trees, which
    is what the comparison benchmarks measure. *)

module Network = Skipweb_net.Network

type t

val create : net:Network.t -> seed:int -> keys:int array -> t
val size : t -> int

val depth : t -> int
(** Height of the overlay tree. *)

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

val search : t -> from:Network.host -> int -> search_result
(** Route a nearest-neighbor query from an arbitrary host: one message to
    the overlay root, then a root-to-leaf descent. *)

val insert : t -> int -> int
(** Message cost: descent + rotations. *)

val delete : t -> int -> int

val max_degree : t -> int
(** Maximum number of pointers any host stores — O(1), the row's point. *)

val memory_per_host : t -> int list
val check_invariants : t -> unit
