module Network = Skipweb_net.Network
module Prng = Skipweb_util.Prng

(* Buckets are identified by their immutable separator key: bucket s holds
   exactly the keys in [s, next separator). The leftmost separator is
   min_int. Hosts are the skip-graph element ids of their separators. *)
type t = {
  net : Network.t;
  graph : Skip_graph.t;
  contents : (int, int list ref) Hashtbl.t;  (* separator -> keys, sorted *)
  target : int;  (* nominal bucket capacity before a split *)
  mutable items : int;
}

let size t = t.items

let bucket_count t = Skip_graph.size t.graph

let separators t = Skip_graph.keys t.graph

let create ~net ~seed ~keys ~buckets =
  if buckets < 1 then invalid_arg "Bucket_skip_graph.create: buckets >= 1";
  if buckets > Network.host_count net then invalid_arg "Bucket_skip_graph.create: not enough hosts";
  let xs = Array.copy keys in
  Array.sort compare xs;
  let n = Array.length xs in
  let per = max 1 ((n + buckets - 1) / buckets) in
  let seps = ref [] and contents = Hashtbl.create buckets in
  let b = ref 0 in
  while !b * per < n || !b = 0 do
    let lo = !b * per in
    let hi = min n ((!b + 1) * per) in
    let sep = if !b = 0 then min_int else xs.(lo) in
    seps := sep :: !seps;
    let chunk = Array.to_list (Array.sub xs lo (max 0 (hi - lo))) in
    Hashtbl.replace contents sep (ref chunk);
    incr b
  done;
  let graph = Skip_graph.create ~net ~seed ~keys:(Array.of_list (List.rev !seps)) in
  let t = { net; graph; contents; target = per; items = n } in
  (* Charge each bucket host for its payload. *)
  Hashtbl.iter
    (fun sep chunk ->
      let seps_arr = separators t in
      let rec find i = if seps_arr.(i) = sep then i else find (i + 1) in
      let host = Skip_graph.host_of_index t.graph (find 0) in
      Network.charge_memory net host (List.length !chunk))
    contents;
  t

(* The bucket containing q is the one whose separator is the predecessor of
   q among separators. *)
let route t ~from q =
  let r = Skip_graph.search t.graph ~from q in
  let sep = match r.Skip_graph.predecessor with Some s -> s | None -> min_int in
  (sep, r.Skip_graph.messages)

let host_of_sep t sep =
  let seps = separators t in
  let rec find i =
    if i >= Array.length seps then invalid_arg "Bucket_skip_graph: unknown separator"
    else if seps.(i) = sep then Skip_graph.host_of_index t.graph i
    else find (i + 1)
  in
  find 0

let sep_index t sep =
  let seps = separators t in
  let rec find i = if seps.(i) = sep then i else find (i + 1) in
  find 0

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

let bucket_list t sep = !(Hashtbl.find t.contents sep)

let search t ~rng q =
  let from = Prng.int rng (bucket_count t) in
  let sep, msgs = route t ~from q in
  let seps = separators t in
  let idx = sep_index t sep in
  let local = bucket_list t sep in
  let pred = List.fold_left (fun acc k -> if k <= q then Some k else acc) None local in
  (* The predecessor might live in an earlier bucket if this one is empty
     below q; the successor might live in a later one. Each neighbor-bucket
     consultation costs one message. *)
  let extra = ref 0 in
  let pred =
    match pred with
    | Some _ as p -> p
    | None ->
        let rec back i =
          if i < 0 then None
          else begin
            incr extra;
            match List.rev (bucket_list t seps.(i)) with
            | last :: _ -> Some last
            | [] -> back (i - 1)
          end
        in
        back (idx - 1)
  in
  let succ_local = List.find_opt (fun k -> k > q) local in
  let succ =
    match succ_local with
    | Some _ as s -> s
    | None ->
        let rec fwd i =
          if i >= Array.length seps then None
          else begin
            incr extra;
            match bucket_list t seps.(i) with k :: _ -> Some k | [] -> fwd (i + 1)
          end
        in
        fwd (idx + 1)
  in
  let succ = match (pred, succ) with Some p, _ when p = q -> Some q | _ -> succ in
  let nearest =
    match (pred, succ) with
    | None, None -> None
    | Some p, None -> Some p
    | None, Some s -> Some s
    | Some p, Some s -> if q - p <= s - q then Some p else Some s
  in
  { predecessor = pred; successor = succ; nearest; messages = msgs + !extra }

let rec insert_sorted k = function
  | [] -> [ k ]
  | x :: rest when k < x -> k :: x :: rest
  | x :: _ when k = x -> invalid_arg "Bucket_skip_graph.insert: duplicate key"
  | x :: rest -> x :: insert_sorted k rest

let maybe_split t sep =
  let chunk = Hashtbl.find t.contents sep in
  let len = List.length !chunk in
  if len > 2 * t.target && bucket_count t < Network.host_count t.net then begin
    (* Move the upper half to a fresh host keyed by the median. *)
    let keep = len / 2 in
    let rec split i acc = function
      | [] -> (List.rev acc, [])
      | x :: rest when i < keep -> split (i + 1) (x :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let lower, upper = split 0 [] !chunk in
    match upper with
    | [] -> 0
    | median :: _ ->
        chunk := lower;
        Hashtbl.replace t.contents median (ref upper);
        let join_msgs = Skip_graph.insert t.graph median in
        let new_host = host_of_sep t median in
        let old_host = host_of_sep t sep in
        Network.charge_memory t.net new_host (List.length upper);
        Network.charge_memory t.net old_host (-(List.length upper));
        (* One message per relocated key, plus the skip-graph join. *)
        join_msgs + List.length upper
  end
  else 0

let insert t ~rng k =
  let from = Prng.int rng (bucket_count t) in
  let sep, msgs = route t ~from k in
  let chunk = Hashtbl.find t.contents sep in
  chunk := insert_sorted k !chunk;
  t.items <- t.items + 1;
  Network.charge_memory t.net (host_of_sep t sep) 1;
  let split_msgs = maybe_split t sep in
  msgs + 1 + split_msgs

let delete t ~rng k =
  let from = Prng.int rng (bucket_count t) in
  let sep, msgs = route t ~from k in
  let chunk = Hashtbl.find t.contents sep in
  if not (List.mem k !chunk) then invalid_arg "Bucket_skip_graph.delete: absent key";
  chunk := List.filter (fun x -> x <> k) !chunk;
  t.items <- t.items - 1;
  Network.charge_memory t.net (host_of_sep t sep) (-1);
  msgs + 1

let max_bucket_load t =
  Hashtbl.fold (fun _ chunk acc -> max acc (List.length !chunk)) t.contents 0

let memory_per_host t =
  Array.to_list (Array.mapi (fun i _ -> Network.memory t.net (Skip_graph.host_of_index t.graph i)) (separators t))

let check_invariants t =
  Skip_graph.check_invariants t.graph;
  let seps = separators t in
  let total = ref 0 in
  Array.iteri
    (fun i sep ->
      let chunk = bucket_list t sep in
      total := !total + List.length chunk;
      let hi = if i + 1 < Array.length seps then Some seps.(i + 1) else None in
      List.iter
        (fun k ->
          if k < sep then failwith "Bucket_skip_graph: key below separator";
          match hi with
          | Some h when k >= h -> failwith "Bucket_skip_graph: key beyond next separator"
          | Some _ | None -> ())
        chunk;
      let rec sorted = function
        | a :: (b :: _ as rest) ->
            if a >= b then failwith "Bucket_skip_graph: bucket not sorted";
            sorted rest
        | [ _ ] | [] -> ()
      in
      sorted chunk)
    seps;
  if !total <> t.items then failwith "Bucket_skip_graph: item count out of sync"
