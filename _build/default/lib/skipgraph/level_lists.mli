(** Shared substrate for the skip graph family: a sorted key sequence whose
    elements carry membership vectors, partitioned at every level ℓ into
    lists of elements sharing an ℓ-bit vector prefix.

    All the Table 1 randomized baselines (skip graphs, NoN skip graphs) and
    the skip-web level hierarchy use this element/level discipline; this
    module owns the arrays and neighbor queries so each structure only
    implements its routing and cost accounting. *)

module Membership = Skipweb_util.Membership

type t

val create : seed:int -> keys:int array -> t
(** Distinct keys (any order); elements are assigned stable ids 0.. in key
    order. *)

val size : t -> int
val key : t -> int -> int
(** Key of the element at sorted position [i]. *)

val id : t -> int -> int
(** Stable id of the element at sorted position [i] (used as its host). *)

val keys : t -> int array
val vectors : t -> Membership.t

val top_level : t -> int -> int
(** The deepest level at which position [i]'s prefix group still has at
    least two members — the element's tower height, i.e. the level a search
    from this element starts at. *)

val heights : t -> int array
(** {!top_level} for every position (cached; invalidated by splices). *)

val levels : t -> int
(** Levels in use across the structure. *)

val right_neighbor : t -> int -> int -> int option
(** [right_neighbor t i l]: nearest position [j > i] sharing an [l]-bit
    prefix with [i], or [None]. *)

val left_neighbor : t -> int -> int -> int option

val common_prefix : t -> int -> int -> int
(** Of the elements at two positions. *)

val position : t -> int -> int
(** Sorted position a key occupies or would occupy. *)

val mem : t -> int -> bool

val splice_in : t -> int -> int
(** [splice_in t k] inserts key [k] with a fresh id; returns its position.
    Raises [Invalid_argument] on duplicates. *)

val splice_out : t -> int -> int
(** [splice_out t k] removes key [k]; returns its former position. *)

val predecessor : t -> int -> int option
val successor : t -> int -> int option
val nearest : t -> int -> int option

val check_invariants : t -> unit
