(** Bucket skip graphs (Aspnes–Kirsch–Krishnamurthy, PODC 2004) — Table 1
    row 5: fewer hosts than items.

    The key space is split into H contiguous buckets, one per host; hosts
    form a skip graph keyed by immutable bucket separators. A query routes
    through the host-level skip graph in O(log H) expected messages and
    finishes inside the destination bucket for free; per-host memory is the
    bucket payload plus the skip-graph pointers, i.e. O(n/H + log H).
    Inserts route the same way and occasionally split an overfull bucket
    onto a spare host (a host-level skip-graph join). *)

module Network = Skipweb_net.Network

type t

val create : net:Network.t -> seed:int -> keys:int array -> buckets:int -> t
(** Distribute the sorted keys over [buckets] contiguous buckets. The
    network must have at least [buckets] hosts; spare hosts are used by
    future splits. *)

val size : t -> int
(** Stored items. *)

val bucket_count : t -> int

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

val search : t -> rng:Skipweb_util.Prng.t -> int -> search_result
(** Nearest-neighbor query originating at a uniformly random bucket host. *)

val insert : t -> rng:Skipweb_util.Prng.t -> int -> int
(** Returns the message cost (routing + linking; splits included and
    amortized against the inserts that caused them). *)

val delete : t -> rng:Skipweb_util.Prng.t -> int -> int

val max_bucket_load : t -> int
val memory_per_host : t -> int list
val check_invariants : t -> unit
