(** Neighbor-of-neighbor (NoN) skip graphs (Manku–Naor–Wieder, STOC 2004;
    Naor–Wieder) — Table 1 row 2.

    Same level lists as a plain skip graph, but every element additionally
    stores its neighbors' neighbor tables. Routing uses one-step lookahead:
    from the current element, consider every element reachable in at most
    two list hops (whose address is known locally) and jump {e directly} to
    the admissible one closest to the target — one message despite two hops
    of progress. Expected route length drops to O(log n / log log n) while
    memory, congestion and update cost rise to O(log² n).

    Update cost accounting: an update must install/refresh O(log n) NoN
    table entries at each of O(log n) neighbors; we count one message per
    remote table entry installed, which reproduces the Ũ(log² n) shape of
    Table 1. *)

module Network = Skipweb_net.Network

type t

val create : net:Network.t -> seed:int -> keys:int array -> t
val size : t -> int
val levels : t -> int

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

val search : t -> from:int -> int -> search_result
val search_from_random : t -> rng:Skipweb_util.Prng.t -> int -> search_result

val insert : t -> int -> int
(** Returns the message cost including NoN table refresh. *)

val delete : t -> int -> int

val memory_per_host : t -> int list
val host_of_index : t -> int -> Network.host
