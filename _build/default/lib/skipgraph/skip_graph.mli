(** Skip graphs (Aspnes–Shah, SODA 2003) / SkipNet (Harvey et al.) — the
    baseline of Table 1 row 1.

    Each element lives on its own host (H = n). Element [x] has an infinite
    random membership vector m(x); the level-ℓ lists partition the elements
    by the first ℓ bits of their vectors, each list sorted by key. An
    element keeps left/right neighbor pointers in each of its lists, which
    is O(log n) pointers in expectation.

    A search starts at the {e originating element's} own position and top
    level, moves as far as possible toward the target within each level,
    and drops a level when stuck — exactly the skip list search pattern,
    except that every host can be the entry point. Expected search and
    update cost O(log n) messages; memory and congestion O(log n).

    This implementation is array-backed: neighbor tables are materialized
    from the membership vectors, and rebuilt incrementally on update, while
    {e message costs are counted per the distributed protocol} (each
    neighbor-to-neighbor hop that crosses hosts costs one message via
    {!Skipweb_net.Network}). CPU-time shortcuts never touch the message
    meter. *)

module Network = Skipweb_net.Network

type t

val create : net:Network.t -> seed:int -> keys:int array -> t
(** Build over distinct sorted keys; element [i] is placed on host [i] of
    [net] (which must have at least [Array.length keys] hosts, and at least
    one host). Charges per-host memory for keys and neighbor pointers. *)

val size : t -> int
val levels : t -> int
(** Number of levels actually in use (lists of size >= 2, plus level 0). *)

val keys : t -> int array
(** Current keys, ascending. *)

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

val search : t -> from:int -> int -> search_result
(** [search t ~from q] routes a nearest-neighbor query for [q] from the
    element with index [from] (its host's own entry point). *)

val search_from_random : t -> rng:Skipweb_util.Prng.t -> int -> search_result

val insert : t -> int -> int
(** [insert t k] adds key [k]; returns the number of messages the
    distributed insertion protocol would send (search to position + linking
    in at every level). Raises [Invalid_argument] if the key exists or the
    network has no spare host. *)

val delete : t -> int -> int
(** [delete t k] removes the key, returning the message cost (search +
    unlink at each level). Raises [Invalid_argument] if absent. *)

val host_of_index : t -> int -> Network.host

val memory_per_host : t -> int list
(** The O(log n)-shaped per-host memory charges (for the M column). *)

val check_invariants : t -> unit
