module Membership = Skipweb_util.Membership
module L = Skipweb_linklist.Linklist

type t = {
  vecs : Membership.t;
  mutable xs : int array;  (* keys, ascending *)
  mutable ids : int array;  (* parallel stable ids *)
  mutable next_id : int;
  mutable heights : int array option;  (* cache: top participating level per position *)
  mutable tables : (int array * int array) array option;
      (* cache: per level, (left, right) neighbor positions, -1 for none *)
}

let create ~seed ~keys =
  let xs = Array.copy keys in
  Array.sort compare xs;
  Array.iteri
    (fun i k -> if i > 0 && xs.(i - 1) = k then invalid_arg "Level_lists.create: duplicate keys")
    xs;
  let n = Array.length xs in
  {
    vecs = Membership.create ~seed;
    xs;
    ids = Array.init n (fun i -> i);
    next_id = n;
    heights = None;
    tables = None;
  }

let size t = Array.length t.xs
let key t i = t.xs.(i)
let id t i = t.ids.(i)
let keys t = Array.copy t.xs
let vectors t = t.vecs

let common_prefix t i j = Membership.common_prefix t.vecs t.ids.(i) t.ids.(j)

(* An element participates with neighbors at level L iff its L-bit prefix
   group still has at least two members; its top level is the deepest such
   L. Computed for all positions by recursive group splitting. *)
let compute_heights t =
  let n = size t in
  let h = Array.make n 0 in
  let rec split level members =
    match members with
    | [] | [ _ ] -> ()
    | _ :: _ :: _ ->
        List.iter (fun i -> h.(i) <- level) members;
        if level < 59 then begin
          let zeros, ones =
            List.partition (fun i -> not (Membership.bit t.vecs ~id:t.ids.(i) ~level)) members
          in
          split (level + 1) zeros;
          split (level + 1) ones
        end
  in
  split 0 (List.init n Fun.id);
  h

let heights t =
  match t.heights with
  | Some h -> h
  | None ->
      let h = compute_heights t in
      t.heights <- Some h;
      h

let top_level t i = (heights t).(i)

let levels t = Array.fold_left max 0 (heights t) + 1

(* Per-level doubly-linked lists materialized as arrays: one O(n) sweep per
   level, linking each element to the previous one sharing its prefix. *)
let neighbor_tables t =
  match t.tables with
  | Some tabs -> tabs
  | None ->
      let n = size t in
      let lv = levels t in
      let tabs =
        Array.init lv (fun level ->
            let left = Array.make n (-1) and right = Array.make n (-1) in
            let last = Hashtbl.create 64 in
            for i = 0 to n - 1 do
              let p = Membership.prefix t.vecs ~id:t.ids.(i) ~len:level in
              (match Hashtbl.find_opt last p with
              | Some j ->
                  left.(i) <- j;
                  right.(j) <- i
              | None -> ());
              Hashtbl.replace last p i
            done;
            (left, right))
      in
      t.tables <- Some tabs;
      tabs

(* No pair of elements shares a prefix of length >= levels (that would put
   both heights at that length), so levels outside the tables have no
   neighbors. *)
let right_neighbor t i level =
  let tabs = neighbor_tables t in
  if level < 0 || level >= Array.length tabs then None
  else
    let _, right = tabs.(level) in
    if right.(i) >= 0 then Some right.(i) else None

let left_neighbor t i level =
  let tabs = neighbor_tables t in
  if level < 0 || level >= Array.length tabs then None
  else
    let left, _ = tabs.(level) in
    if left.(i) >= 0 then Some left.(i) else None

let position t k =
  let n = size t in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.xs.(mid) < k then go (mid + 1) hi else go lo mid
  in
  go 0 n

let mem t k =
  let p = position t k in
  p < size t && t.xs.(p) = k

let splice_in t k =
  let pos = position t k in
  if pos < size t && t.xs.(pos) = k then invalid_arg "Level_lists.splice_in: duplicate key";
  let n = size t in
  let xs = Array.make (n + 1) 0 and ids = Array.make (n + 1) 0 in
  Array.blit t.xs 0 xs 0 pos;
  Array.blit t.ids 0 ids 0 pos;
  xs.(pos) <- k;
  ids.(pos) <- t.next_id;
  t.next_id <- t.next_id + 1;
  Array.blit t.xs pos xs (pos + 1) (n - pos);
  Array.blit t.ids pos ids (pos + 1) (n - pos);
  t.xs <- xs;
  t.ids <- ids;
  t.heights <- None;
  t.tables <- None;
  pos

let splice_out t k =
  let pos = position t k in
  if pos >= size t || t.xs.(pos) <> k then invalid_arg "Level_lists.splice_out: absent key";
  let n = size t in
  let xs = Array.make (n - 1) 0 and ids = Array.make (n - 1) 0 in
  Array.blit t.xs 0 xs 0 pos;
  Array.blit t.ids 0 ids 0 pos;
  Array.blit t.xs (pos + 1) xs pos (n - pos - 1);
  Array.blit t.ids (pos + 1) ids pos (n - pos - 1);
  t.xs <- xs;
  t.ids <- ids;
  t.heights <- None;
  t.tables <- None;
  pos

let predecessor t q = L.predecessor t.xs q
let successor t q = L.successor t.xs q
let nearest t q = L.nearest t.xs q

let check_invariants t =
  let n = size t in
  if Array.length t.ids <> n then failwith "Level_lists: ids length";
  for i = 1 to n - 1 do
    if t.xs.(i - 1) >= t.xs.(i) then failwith "Level_lists: keys not sorted"
  done;
  let seen = Hashtbl.create n in
  Array.iter
    (fun id ->
      if Hashtbl.mem seen id then failwith "Level_lists: duplicate id";
      Hashtbl.add seen id ())
    t.ids;
  (* Neighbor symmetry at low levels. *)
  for i = 0 to n - 1 do
    for level = 0 to 3 do
      match right_neighbor t i level with
      | Some j -> (
          match left_neighbor t j level with
          | Some i' when i' = i -> ()
          | Some _ | None -> failwith "Level_lists: neighbor asymmetry")
      | None -> ()
    done
  done
