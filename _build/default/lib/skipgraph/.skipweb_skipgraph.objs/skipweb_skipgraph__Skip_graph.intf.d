lib/skipgraph/skip_graph.mli: Skipweb_net Skipweb_util
