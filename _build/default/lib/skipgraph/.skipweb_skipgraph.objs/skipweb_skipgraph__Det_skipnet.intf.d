lib/skipgraph/det_skipnet.mli: Skipweb_net
