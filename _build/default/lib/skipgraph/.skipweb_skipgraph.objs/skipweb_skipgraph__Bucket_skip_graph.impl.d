lib/skipgraph/bucket_skip_graph.ml: Array Hashtbl List Skip_graph Skipweb_net Skipweb_util
