lib/skipgraph/level_lists.mli: Skipweb_util
