lib/skipgraph/skip_graph.ml: Hashtbl Level_lists List Skipweb_net Skipweb_util
