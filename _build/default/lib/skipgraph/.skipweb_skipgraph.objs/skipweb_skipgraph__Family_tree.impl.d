lib/skipgraph/family_tree.ml: Array Skipweb_net Skipweb_util
