lib/skipgraph/level_lists.ml: Array Fun Hashtbl List Skipweb_linklist Skipweb_util
