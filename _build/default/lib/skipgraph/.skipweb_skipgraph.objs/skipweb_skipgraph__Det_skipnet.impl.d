lib/skipgraph/det_skipnet.ml: Array Fun Hashtbl List Printf Skipweb_net
