lib/skipgraph/family_tree.mli: Skipweb_net
