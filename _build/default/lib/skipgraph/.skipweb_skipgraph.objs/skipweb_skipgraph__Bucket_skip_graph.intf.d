lib/skipgraph/bucket_skip_graph.mli: Skipweb_net Skipweb_util
