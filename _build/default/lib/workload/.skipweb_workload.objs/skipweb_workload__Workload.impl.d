lib/workload/workload.ml: Array Char Float Hashtbl List Printf Skipweb_geom Skipweb_util String
