lib/workload/workload.mli: Skipweb_geom
