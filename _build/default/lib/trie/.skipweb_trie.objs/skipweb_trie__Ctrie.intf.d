lib/trie/ctrie.mli:
