lib/trie/ctrie.ml: Array Hashtbl List Printf String
