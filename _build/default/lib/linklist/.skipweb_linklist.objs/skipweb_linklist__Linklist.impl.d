lib/linklist/linklist.ml: Array List
