lib/linklist/linklist.mli:
