(** The sorted doubly-linked list viewed as a range-determined link
    structure (§2.1 of the paper, running example; Lemma 1).

    A level set is represented as a sorted array of distinct integer keys.
    For an array [a] of size [m] the structure [D(a)] has [2m+1] ranges:

    - [Node i] — the singleton range [{a.(i)}], for [0 <= i < m];
    - [Link i] — the closed interval between consecutive elements
      [\[a.(i-1), a.(i)\]], for [0 <= i <= m], where [a.(-1) = -inf] and
      [a.(m) = +inf]. [Link 0] and [Link m] are the two unbounded end
      ranges; an empty set has the single universal range [Link 0].

    A node and a link are incident iff their ranges intersect, which
    recovers exactly the doubly-linked list.

    Ranges are also given a dense integer encoding — [Link i -> 2i],
    [Node i -> 2i+1] — under which the conflict list of any child range
    against a parent set is a {e contiguous} interval of codes. The
    improved 1-d blocking of §2.4.1 relies on this contiguity. *)

type range =
  | Node of int  (** [Node i] is the singleton [{a.(i)}]. *)
  | Link of int  (** [Link i] is the interval [\[a.(i-1), a.(i)\]]. *)

type bound =
  | Neg_inf
  | Key of int
  | Pos_inf

val num_ranges : int array -> int
(** [2m + 1] for an array of [m] keys. *)

val encode : range -> int
(** Dense code: [Link i -> 2i], [Node i -> 2i+1]. *)

val decode : int -> range
(** Inverse of {!encode}. *)

val valid : int array -> range -> bool
(** Whether the range exists in [D(a)]. *)

val span : int array -> range -> bound * bound
(** Lower and upper endpoints of a range. *)

val contains : int array -> range -> int -> bool
(** Whether key [q] lies in the (closed) range. *)

val locate : int array -> int -> range
(** The {e maximal} range of [D(a)] containing [q]: [Node i] if
    [q = a.(i)], otherwise the link between [q]'s neighbors. For the
    purposes of routing, a node is more specific than its incident links,
    so equality wins. *)

val conflict_interval : parent:int array -> child:int array -> range -> int * int
(** [conflict_interval ~parent ~child r] is the inclusive interval
    [(lo_code, hi_code)] of encoded parent ranges that conflict with
    (intersect) child range [r]. [child] must be a subset of [parent]
    (both sorted); [r] must be valid for [child]. *)

val conflicts : parent:int array -> child:int array -> range -> range list
(** The decoded conflict list, in encoding order. *)

val conflict_count : parent:int array -> child:int array -> range -> int

val intersection_size : parent:int array -> child:int array -> range -> int
(** [|Q ∩ S|] — how many parent keys lie inside a child range (the
    quantity bounded by 4 in expectation in Lemma 1's proof). The range
    must be valid for [child]. *)

val predecessor : int array -> int -> int option
val successor : int array -> int -> int option

val nearest : int array -> int -> int option
(** Nearest key by absolute distance; ties go to the predecessor. *)

val nearest_in_range : int array -> range -> int -> int option
(** Nearest key to [q] looking only at the endpoints of a located range —
    the level-0 answer extraction of a skip-web query. Equals
    [nearest a q] when [r = locate a q]. *)

val check_subset : parent:int array -> child:int array -> bool
(** Whether every child key occurs in the parent (both sorted). *)

val range_keys : int array -> lo:int -> hi:int -> int list
(** Keys in the closed interval [\[lo, hi\]], ascending — the sequential
    answer to a 1-d range query. *)

val range_codes : int array -> lo:int -> hi:int -> int * int
(** Inclusive encoded-range interval a distributed range query walks:
    from the range containing [lo] to the range containing [hi]. *)
