(** Membership vectors: the per-element infinite random bit strings used by
    skip graphs, SkipNet and skip-webs to assign elements to levels.

    Rather than materializing bit arrays, bits are derived on demand from a
    structure seed and a stable element identifier, so that an element keeps
    the same vector across rebuilds, inserts and deletes — exactly the
    behaviour required by the Aspnes–Shah skip graph and by the skip-web
    level hierarchy of §2.3 of the paper. *)

type t
(** A family of membership vectors, one per element id, determined by a
    seed. *)

val create : seed:int -> t

val bit : t -> id:int -> level:int -> bool
(** [bit v ~id ~level] is bit [level] (0-based) of element [id]'s membership
    vector. Deterministic in [(seed, id, level)]. *)

val prefix : t -> id:int -> len:int -> int
(** [prefix v ~id ~len] packs the first [len] bits into an integer, most
    significant bit first: the index of the level-[len] set the element
    belongs to. Requires [0 <= len < 60]. *)

val common_prefix : t -> int -> int -> int
(** [common_prefix v a b] is the length of the longest common prefix of the
    vectors of elements [a] and [b] (capped at 60). This is the highest skip
    graph level at which [a] and [b] share a list. *)

val biased : seed:int -> p:float -> t
(** [biased ~seed ~p] draws each bit as 1 with probability [p] instead of
    1/2 — used by the halving-probability ablation (A3). A bit of value 1
    means "promoted out of the 0-branch"; for the skip-web set tree the
    split is into the subset of elements whose next bit is 0 vs 1, so [p]
    skews the two branch sizes. *)
