type t = { seed : int; p : float }

let create ~seed = { seed; p = 0.5 }

let biased ~seed ~p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Membership.biased: p must be in (0,1)";
  { seed; p }

let bit v ~id ~level =
  let h = Prng.hash3 v.seed id level in
  if v.p = 0.5 then h land 1 = 1
  else
    (* Use 30 bits of the hash as a uniform fraction. *)
    let frac = float_of_int (h land 0x3FFFFFFF) /. 1073741824.0 in
    frac < v.p

let prefix v ~id ~len =
  if len < 0 || len >= 60 then invalid_arg "Membership.prefix";
  let rec go acc level =
    if level = len then acc
    else
      let b = if bit v ~id ~level then 1 else 0 in
      go ((acc lsl 1) lor b) (level + 1)
  in
  go 0 0

let common_prefix v a b =
  let rec go level =
    if level >= 60 then 60
    else if bit v ~id:a ~level <> bit v ~id:b ~level then level
    else go (level + 1)
  in
  go 0
