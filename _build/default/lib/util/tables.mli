(** Fixed-width ASCII table rendering for benchmark reports.

    The bench harness prints one table per reproduced paper artifact
    (Table 1 rows, lemma validations, theorem sweeps); this module keeps
    that output aligned and uniform. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val render : t -> string
(** Render with a title line, a header, separators, and right-aligned
    numeric-looking cells. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
