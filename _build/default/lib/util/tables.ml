type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Tables.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let cell_int = string_of_int

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let looks_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e') s

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let pad i cell =
    let w = widths.(i) in
    let l = String.length cell in
    if l >= w then cell
    else if looks_numeric cell then String.make (w - l) ' ' ^ cell
    else cell ^ String.make (w - l) ' '
  in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let sep =
    "|" ^ String.concat "|" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.columns ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
