lib/util/prng.mli:
