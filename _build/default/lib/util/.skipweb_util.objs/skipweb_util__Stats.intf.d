lib/util/stats.mli:
