lib/util/membership.ml: Prng
