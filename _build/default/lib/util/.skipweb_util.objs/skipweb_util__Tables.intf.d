lib/util/tables.mli:
