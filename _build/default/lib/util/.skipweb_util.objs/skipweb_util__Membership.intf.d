lib/util/membership.mli:
