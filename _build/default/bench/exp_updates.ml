(* E14: update costs in a skip-web (§4).

   Insertion pays a locate (one query) plus O(1) linking messages per
   level: O(log n) expected messages for quadtrees, tries and generic 1-d
   sets, and O(log n / log log n) for blocked 1-d data, where only basic
   levels require fresh messages. Deletion mirrors insertion. *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module B1 = Skipweb_core.Blocked1d
module W = Skipweb_workload.Workload
module Point = Skipweb_geom.Point
module Prng = Skipweb_util.Prng
module Stats = Skipweb_util.Stats
module C = Bench_common

module HInt = H.Make (I.Ints)
module HP2 = H.Make (I.Points2d)
module HStr = H.Make (I.Strings)

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

let mean_updates inserts deletes = (Stats.mean inserts +. Stats.mean deletes) /. 2.0

let generic_1d ~seed ~n ~updates =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let h = HInt.build ~net ~seed keys in
  let fresh = C.fresh_keys ~seed ~count:updates ~bound:(100 * n) ~existing:keys in
  let ins = Array.to_list (Array.map (fun k -> float_of_int (HInt.insert h k)) fresh) in
  let del = Array.to_list (Array.map (fun k -> float_of_int (HInt.remove h k)) fresh) in
  mean_updates ins del

let blocked_1d ~seed ~n ~updates =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let g = B1.build ~net ~seed ~m:(4 * log2i n) keys in
  let fresh = C.fresh_keys ~seed ~count:updates ~bound:(100 * n) ~existing:keys in
  let ins = Array.to_list (Array.map (fun k -> float_of_int (B1.insert g k)) fresh) in
  let del = Array.to_list (Array.map (fun k -> float_of_int (B1.delete g k)) fresh) in
  mean_updates ins del

let quad_2d ~seed ~n ~updates =
  let pts = W.uniform_points ~seed ~n ~dim:2 in
  let net = Network.create ~hosts:n in
  let h = HP2.build ~net ~seed pts in
  let rng = Prng.create (seed + 5) in
  let fresh =
    Array.init updates (fun _ -> Point.create [ Prng.float rng 1.0; Prng.float rng 1.0 ])
  in
  let ins = Array.to_list (Array.map (fun p -> float_of_int (HP2.insert h p)) fresh) in
  let del = Array.to_list (Array.map (fun p -> float_of_int (HP2.remove h p)) fresh) in
  mean_updates ins del

let trie_updates ~seed ~n ~updates =
  let strs = W.random_strings ~seed ~n ~alphabet:4 ~len:10 in
  let net = Network.create ~hosts:n in
  let h = HStr.build ~net ~seed strs in
  let fresh = Array.init updates (fun i -> Printf.sprintf "zz%08d" i) in
  let ins = Array.to_list (Array.map (fun s -> float_of_int (HStr.insert h s)) fresh) in
  let del = Array.to_list (Array.map (fun s -> float_of_int (HStr.remove h s)) fresh) in
  mean_updates ins del

let run (cfg : C.config) =
  C.section "Updates in a skip-web (E14, §4)";
  let sizes = List.filter (fun n -> n <= 4096) cfg.C.sizes in
  let series f = List.map (fun n -> C.mean_over_seeds cfg.C.seeds (fun seed -> f ~seed ~n ~updates:cfg.C.updates)) sizes in
  C.print_shape_table ~title:"U(n): mean update messages (insert/delete averaged)" ~sizes
    [
      ("1-d generic skip-web", series generic_1d, "~O(log n)");
      ("1-d blocked skip-web", series blocked_1d, "~O(log n/loglog n)");
      ("quadtree skip-web", series quad_2d, "~O(log n)");
      ("trie skip-web", series trie_updates, "~O(log n)");
    ]
