(* E8–E11: empirical validation of the four set-halving lemmas (§2.2, §3).

   Each experiment draws a ground set S, takes T as an independent random
   half, locates random queries in D(T), and measures the conflict work in
   D(S). The lemmas claim O(1) expectation — flat in n — with explicit
   constants for Lemma 1 (E|Q∩S| <= 4, E|C(Q,S)| <= 7) and an exact
   counting identity for Lemma 5 (conflicts = 1 + a + 2b + 3c). *)

module L = Skipweb_linklist.Linklist
module Cq = Skipweb_quadtree.Cqtree
module Ct = Skipweb_trie.Ctrie
module TM = Skipweb_trapmap.Trapmap
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Stats = Skipweb_util.Stats
module C = Bench_common

let random_half rng xs = Array.of_list (List.filter (fun _ -> Prng.bool rng) (Array.to_list xs))

(* ---------- Lemma 1: sorted lists ---------- *)

let lemma1_sample ~seed ~n ~queries =
  let parent = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let rng = Prng.create (seed + 1) in
  let child = random_half rng parent in
  let qs = W.query_mix ~seed:(seed + 2) ~keys:parent ~n:queries ~bound:(100 * n) in
  let conflicts = ref [] and inter = ref [] in
  Array.iter
    (fun q ->
      let r = L.locate child q in
      conflicts := float_of_int (L.conflict_count ~parent ~child r) :: !conflicts;
      inter := float_of_int (L.intersection_size ~parent ~child r) :: !inter)
    qs;
  (Stats.mean !conflicts, Stats.mean !inter)

let lemma1 (cfg : C.config) =
  C.section "Lemma 1: set halving for sorted lists (E8)";
  let series measure =
    List.map
      (fun n -> C.mean_over_seeds cfg.C.seeds (fun seed -> measure ~seed ~n ~queries:cfg.C.queries))
      cfg.C.sizes
  in
  C.print_shape_table ~title:"Lemma 1 quantities (uniform keys)" ~sizes:cfg.C.sizes
    [
      ("E|C(Q,S)|", series (fun ~seed ~n ~queries -> fst (lemma1_sample ~seed ~n ~queries)), "O(1), <= 7");
      ("E|Q cap S|", series (fun ~seed ~n ~queries -> snd (lemma1_sample ~seed ~n ~queries)), "O(1), <= 4");
    ];
  (* Clustered keys: the lemma is distribution-free. *)
  let clustered ~seed ~n ~queries =
    let parent = W.clustered_ints ~seed ~n ~clusters:8 ~spread:(4 * n) in
    let rng = Prng.create (seed + 1) in
    let child = random_half rng parent in
    let qs = W.query_mix ~seed:(seed + 2) ~keys:parent ~n:queries ~bound:max_int in
    Stats.mean
      (Array.to_list
         (Array.map (fun q -> float_of_int (L.conflict_count ~parent ~child (L.locate child q))) qs))
  in
  C.print_shape_table ~title:"Lemma 1 E|C(Q,S)| (clustered keys)" ~sizes:cfg.C.sizes
    [
      ( "E|C(Q,S)|",
        List.map (fun n -> C.mean_over_seeds cfg.C.seeds (fun seed -> clustered ~seed ~n ~queries:cfg.C.queries)) cfg.C.sizes,
        "O(1), <= 7" );
    ]

(* ---------- Lemma 3: quadtrees and octrees (Figure 3) ---------- *)

let lemma3_sample ~dim ~pts ~seed ~queries =
  let rng = Prng.create (seed + 1) in
  let sub = random_half rng pts in
  let s = Cq.build ~dim pts in
  let t = Cq.build ~dim sub in
  let descents = ref [] and gaps = ref [] in
  Array.iter
    (fun q ->
      let loc_t, _ = Cq.locate t q in
      let cube = Cq.node_cube loc_t.Cq.node in
      match Cq.node_of_cube s cube with
      | None -> ()
      | Some start ->
          let _, path = Cq.locate_from s start q in
          descents := float_of_int (List.length path) :: !descents;
          (* S-points inside the located T-cube but outside its T-children
             cubes: the points "visible" at the located gap. *)
          let child_cubes = Cq.node_children_cubes loc_t.Cq.node in
          gaps := float_of_int (Cq.points_in_located_gap s ~location_cube:cube ~child_cubes) :: !gaps)
    queries;
  (Stats.mean !descents, Stats.mean !gaps)

let lemma3 (cfg : C.config) =
  C.section "Lemma 3: set halving for compressed quadtrees/octrees (E9, Figure 3)";
  let row label gen dim =
    ( label,
      List.map
        (fun n ->
          C.mean_over_seeds cfg.C.seeds (fun seed ->
              let pts = gen ~seed ~n in
              let queries = W.uniform_query_points ~seed:(seed + 2) ~n:cfg.C.queries ~dim in
              fst (lemma3_sample ~dim ~pts ~seed ~queries)))
        cfg.C.sizes,
      "O(1)" )
  in
  C.print_shape_table ~title:"Lemma 3: refine descent length in D(S) from D(T) cube" ~sizes:cfg.C.sizes
    [
      row "uniform 2-d" (fun ~seed ~n -> W.uniform_points ~seed ~n ~dim:2) 2;
      row "clustered 2-d" (fun ~seed ~n -> W.clustered_points ~seed ~n ~dim:2 ~clusters:6 ~radius:0.03) 2;
      row "uniform 3-d (octree)" (fun ~seed ~n -> W.uniform_points ~seed ~n ~dim:3) 3;
    ];
  (* Points visible in the located gap: the quantity whose expectation the
     lemma bounds. *)
  let gap_row label gen dim =
    ( label,
      List.map
        (fun n ->
          C.mean_over_seeds cfg.C.seeds (fun seed ->
              let pts = gen ~seed ~n in
              let queries = W.uniform_query_points ~seed:(seed + 2) ~n:cfg.C.queries ~dim in
              snd (lemma3_sample ~dim ~pts ~seed ~queries)))
        cfg.C.sizes,
      "O(1)" )
  in
  C.print_shape_table ~title:"Lemma 3: S-points visible in the located T-gap" ~sizes:cfg.C.sizes
    [ gap_row "uniform 2-d" (fun ~seed ~n -> W.uniform_points ~seed ~n ~dim:2) 2 ]

(* ---------- Lemma 4: tries ---------- *)

let lemma4_sample ~strs ~seed ~queries =
  let rng = Prng.create (seed + 1) in
  let sub = random_half rng strs in
  let s = Ct.build strs in
  let t = Ct.build sub in
  let work = ref [] in
  Array.iter
    (fun q ->
      let loc_t, _ = Ct.locate t q in
      match Ct.node_of_string s (Ct.node_string loc_t.Ct.node) with
      | None -> ()
      | Some start ->
          let _, path = Ct.locate_from s start q in
          work := float_of_int (List.length path) :: !work)
    queries;
  Stats.mean !work

let lemma4 (cfg : C.config) =
  C.section "Lemma 4: set halving for compressed tries (E10)";
  let sizes = List.filter (fun n -> n <= 4096) cfg.C.sizes in
  let row label gen =
    ( label,
      List.map
        (fun n ->
          C.mean_over_seeds cfg.C.seeds (fun seed ->
              let strs = gen ~seed ~n in
              let queries = W.string_queries ~seed:(seed + 2) ~keys:strs ~n:cfg.C.queries in
              lemma4_sample ~strs ~seed ~queries))
        sizes,
      "O(1)" )
  in
  C.print_shape_table ~title:"Lemma 4: refine path length in D(S) from D(T) node" ~sizes
    [
      row "random strings (|Sigma|=4)" (fun ~seed ~n -> W.random_strings ~seed ~n ~alphabet:4 ~len:10);
      row "random strings (|Sigma|=2)" (fun ~seed ~n -> W.random_strings ~seed ~n ~alphabet:2 ~len:16);
      row "isbn-like" (fun ~seed ~n -> W.isbn_strings ~seed ~n ~publishers:16);
    ]

(* ---------- Lemma 5: trapezoidal maps (Figure 4) ---------- *)

let lemma5_sample ~segs ~seed ~queries =
  let rng = Prng.create (seed + 1) in
  let sub = random_half rng segs in
  let s = TM.build segs in
  let t = TM.build sub in
  let conflicts = ref [] in
  let identity_ok = ref 0 and identity_total = ref 0 in
  Array.iter
    (fun q ->
      match TM.locate_opt t q with
      | None -> ()
      | Some trap ->
          let confl = List.length (TM.conflicts s trap) in
          let formula, _ = TM.conflict_formula ~segments:segs trap in
          incr identity_total;
          if formula = confl then incr identity_ok;
          conflicts := float_of_int confl :: !conflicts)
    queries;
  (Stats.mean !conflicts, float_of_int !identity_ok /. float_of_int (max 1 !identity_total))

let lemma5 (cfg : C.config) =
  C.section "Lemma 5: set halving for trapezoidal maps (E11, Figure 4)";
  let sizes = List.filter (fun n -> n <= 1024) cfg.C.sizes in
  let data =
    List.map
      (fun n ->
        let conf, ident =
          List.fold_left
            (fun (ca, ia) seed ->
              let segs = W.disjoint_segments ~seed ~n in
              let queries = W.trapmap_query_points ~seed:(seed + 2) ~n:cfg.C.queries in
              let c, i = lemma5_sample ~segs ~seed ~queries in
              (c :: ca, i :: ia))
            ([], []) cfg.C.seeds
        in
        (Stats.mean conf, Stats.mean ident))
      sizes
  in
  C.print_shape_table ~title:"Lemma 5: conflicts of the located T-trapezoid in D(S)" ~sizes
    [
      ("E|C(t,S)|", List.map fst data, "O(1)");
      ("identity 1+a+2b+3c holds", List.map snd data, "exact (rate = 1)");
    ]

let run (cfg : C.config) =
  lemma1 cfg;
  lemma3 cfg;
  lemma4 cfg;
  lemma5 cfg
