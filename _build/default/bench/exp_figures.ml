(* E15–E16: the structural figures.

   Figure 1 shows a skip list: we regenerate its statistics (expected
   height ≈ log2 n, geometric tower heights, O(log n) search cost).

   Figure 2 shows the 1-d skip-web level hierarchy: we print the level
   census (sets per level, elements per level, largest set) and the
   storage/replication accounting that makes each host hold O(log n). *)

module Network = Skipweb_net.Network
module SL = Skipweb_skiplist.Skip_list
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module B1 = Skipweb_core.Blocked1d
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Stats = Skipweb_util.Stats
module Tables = Skipweb_util.Tables
module C = Bench_common

module HInt = H.Make (I.Ints)

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

let figure1 (cfg : C.config) =
  C.section "Figure 1: the skip list (E15)";
  let height ~seed ~n =
    let t = SL.Int.create ~seed () in
    let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
    Array.iter (fun k -> SL.Int.insert t k k) keys;
    float_of_int (SL.Int.height t)
  in
  let search_cost ~seed ~n =
    let t = SL.Int.create ~seed () in
    let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
    Array.iter (fun k -> SL.Int.insert t k k) keys;
    let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:cfg.C.queries ~bound:(100 * n) in
    Stats.mean (Array.to_list (Array.map (fun q -> float_of_int (SL.Int.search_cost t q)) qs))
  in
  C.print_shape_table ~title:"skip list statistics" ~sizes:cfg.C.sizes
    [
      ( "height (levels)",
        List.map (fun n -> C.mean_over_seeds cfg.C.seeds (fun seed -> height ~seed ~n)) cfg.C.sizes,
        "~log2 n" );
      ( "search pointer traversals",
        List.map (fun n -> C.mean_over_seeds cfg.C.seeds (fun seed -> search_cost ~seed ~n)) cfg.C.sizes,
        "~O(log n)" );
    ];
  (* Tower height distribution at one size: geometric with ratio 1/2. *)
  let n = List.fold_left max 256 cfg.C.sizes in
  let t = SL.Int.create ~seed:5 () in
  let keys = W.distinct_ints ~seed:5 ~n ~bound:(100 * n) in
  Array.iter (fun k -> SL.Int.insert t k k) keys;
  let hist = Hashtbl.create 16 in
  Array.iter
    (fun k ->
      match SL.Int.tower_height t k with
      | Some h -> Hashtbl.replace hist h (1 + (try Hashtbl.find hist h with Not_found -> 0))
      | None -> ())
    keys;
  let tbl = Tables.create ~title:(Printf.sprintf "tower heights, n = %d (geometric, ratio 1/2)" n)
      ~columns:[ "height"; "towers"; "fraction" ] in
  let rec levels_from h =
    match Hashtbl.find_opt hist h with
    | Some c ->
        Tables.add_row tbl
          [ string_of_int h; string_of_int c; Printf.sprintf "%.4f" (float_of_int c /. float_of_int n) ];
        levels_from (h + 1)
    | None -> ()
  in
  levels_from 1;
  Tables.print tbl

let figure2 (cfg : C.config) =
  C.section "Figure 2: the 1-d skip-web level hierarchy (E16)";
  let n = List.fold_left max 256 cfg.C.sizes in
  let keys = W.distinct_ints ~seed:7 ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let h = HInt.build ~net ~seed:7 keys in
  let tbl =
    Tables.create
      ~title:(Printf.sprintf "level census, n = %d (sets halve per level)" n)
      ~columns:[ "level"; "sets"; "elements"; "largest set"; "mean set" ]
  in
  for level = 0 to HInt.levels h - 1 do
    let sizes = HInt.level_set_sizes h level in
    let total = List.fold_left ( + ) 0 sizes in
    Tables.add_row tbl
      [
        string_of_int level;
        string_of_int (List.length sizes);
        string_of_int total;
        string_of_int (List.fold_left max 0 sizes);
        Printf.sprintf "%.2f" (float_of_int total /. float_of_int (List.length sizes));
      ]
  done;
  Tables.print tbl;
  Printf.printf "total ranges across levels: %d (Θ(n log n) replicated storage)\n"
    (HInt.total_storage h);
  Printf.printf "hashed placement: busiest host stores %d units, mean %.1f (both O(log n))\n\n"
    (Network.max_memory net) (Network.mean_memory net);
  (* The blocked layout's storage accounting (gray nodes of Figure 2 are a
     host's block plus its cone). *)
  let net2 = Network.create ~hosts:n in
  let b = B1.build ~net:net2 ~seed:7 ~m:(4 * log2i n) keys in
  Printf.printf
    "blocked layout (M = %d): block size %d ranges, basic levels %s,\n\
     raw storage %d, with cone replication %d (x%.2f), busiest host %d units\n"
    (4 * log2i n) (B1.block_size b)
    (String.concat "," (List.map string_of_int (B1.basic_levels b)))
    (B1.total_storage b) (B1.replicated_storage b)
    (float_of_int (B1.replicated_storage b) /. float_of_int (B1.total_storage b))
    (B1.max_host_memory b)

let run (cfg : C.config) =
  figure1 cfg;
  figure2 cfg
