bench/exp_ablations.ml: Array Bench_common Float List Printf Skipweb_core Skipweb_geom Skipweb_net Skipweb_quadtree Skipweb_util Skipweb_workload
