bench/exp_bucket.ml: Array Bench_common Float List Printf Skipweb_core Skipweb_net Skipweb_util Skipweb_workload
