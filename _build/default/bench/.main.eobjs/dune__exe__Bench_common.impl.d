bench/bench_common.ml: Array Float Hashtbl List Printf Skipweb_util String
