bench/main.ml: Array Bench_common Exp_ablations Exp_bucket Exp_congestion Exp_figures Exp_lemmas Exp_queries Exp_table1 Exp_theorem2 Exp_time Exp_updates List Printf String Sys
