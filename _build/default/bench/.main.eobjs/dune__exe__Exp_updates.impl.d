bench/exp_updates.ml: Array Bench_common List Printf Skipweb_core Skipweb_geom Skipweb_net Skipweb_util Skipweb_workload
