bench/exp_table1.ml: Array Bench_common List Printf Skipweb_core Skipweb_net Skipweb_skipgraph Skipweb_util Skipweb_workload
