bench/exp_theorem2.ml: Array Bench_common Float List Option Skipweb_core Skipweb_net Skipweb_quadtree Skipweb_trie Skipweb_util Skipweb_workload
