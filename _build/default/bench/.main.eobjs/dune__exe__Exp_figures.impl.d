bench/exp_figures.ml: Array Bench_common Hashtbl List Printf Skipweb_core Skipweb_net Skipweb_skiplist Skipweb_util Skipweb_workload String
