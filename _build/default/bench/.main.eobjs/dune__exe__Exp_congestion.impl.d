bench/exp_congestion.ml: Array Bench_common Float List Printf Skipweb_core Skipweb_net Skipweb_skipgraph Skipweb_util Skipweb_workload
