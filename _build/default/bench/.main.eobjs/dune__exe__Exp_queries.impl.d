bench/exp_queries.ml: Array Bench_common List Printf Skipweb_core Skipweb_net Skipweb_util Skipweb_workload
