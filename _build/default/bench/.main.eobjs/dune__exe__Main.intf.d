bench/main.mli:
