(* A1–A3: ablations of the design choices DESIGN.md calls out.

   A1 — blocking on vs off for 1-d skip-webs: isolates the log log n
        speed-up of §2.4.1 against the "arbitrary assignment" of §2.4.
   A2 — compressed vs uncompressed quadtrees: why compression is needed
        for Theorem 2 on adversarially deep inputs.
   A3 — the halving probability p: level count, storage and query cost as
        the random split is skewed away from 1/2. *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module B1 = Skipweb_core.Blocked1d
module Cq = Skipweb_quadtree.Cqtree
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Stats = Skipweb_util.Stats
module Tables = Skipweb_util.Tables
module C = Bench_common

module HInt = H.Make (I.Ints)
module HP2 = H.Make (I.Points2d)

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

let ablation_blocking (cfg : C.config) =
  C.section "Ablation A1: blocked vs arbitrary placement (1-d)";
  let blocked ~seed ~n =
    let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
    let net = Network.create ~hosts:n in
    let g = B1.build ~net ~seed ~m:(4 * log2i n) keys in
    let rng = Prng.create (seed + 1) in
    let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:cfg.C.queries ~bound:(100 * n) in
    Stats.mean (Array.to_list (Array.map (fun q -> float_of_int (B1.query g ~rng q).B1.messages) qs))
  in
  let generic ~seed ~n =
    let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
    let net = Network.create ~hosts:n in
    let h = HInt.build ~net ~seed keys in
    let rng = Prng.create (seed + 1) in
    let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:cfg.C.queries ~bound:(100 * n) in
    Stats.mean
      (Array.to_list
         (Array.map
            (fun q ->
              let _, stats = HInt.query h ~rng q in
              float_of_int stats.HInt.messages)
            qs))
  in
  C.print_shape_table ~title:"Q(n): same hierarchy, two placements" ~sizes:cfg.C.sizes
    [
      ("arbitrary placement (§2.4)", List.map (fun n -> C.mean_over_seeds cfg.C.seeds (fun s -> generic ~seed:s ~n)) cfg.C.sizes, "~O(log n)");
      ("blocked placement (§2.4.1)", List.map (fun n -> C.mean_over_seeds cfg.C.seeds (fun s -> blocked ~seed:s ~n)) cfg.C.sizes, "~O(log n/loglog n)");
    ]

let ablation_compression (cfg : C.config) =
  C.section "Ablation A2: compressed vs uncompressed quadtrees";
  Printf.printf
    "An uncompressed quadtree descends one cube depth per step, so its\n\
     sequential point-location cost is the located cell's cube depth; the\n\
     compressed skip-web pays its message count instead.\n\n";
  let sizes = [ 8; 12; 16; 20; 24; 28 ] in
  (* Queries that land next to the deep diagonal cluster — the cells whose
     uncompressed depth actually is Θ(n). *)
  let deep_queries ~seed ~n =
    let rng = Prng.create (seed + 2) in
    let pts = W.diagonal_points ~n ~dim:2 in
    Array.init cfg.C.queries (fun i ->
        let p = pts.(i mod n) in
        Skipweb_geom.Point.create
          [ Float.min 0.999 (p.(0) *. (1.0 +. Prng.float rng 0.4)); p.(1) ])
  in
  let skipweb_msgs ~seed ~n =
    let pts = W.diagonal_points ~n ~dim:2 in
    let net = Network.create ~hosts:(max 16 n) in
    let h = HP2.build ~net ~seed pts in
    let rng = Prng.create (seed + 1) in
    Stats.mean
      (Array.to_list
         (Array.map
            (fun q ->
              let _, stats = HP2.query h ~rng q in
              float_of_int stats.HP2.messages)
            (deep_queries ~seed ~n)))
  in
  let uncompressed_depth ~n =
    (* Cost of walking the uncompressed cube hierarchy to the located cell:
       one hop per cube depth. *)
    let pts = W.diagonal_points ~n ~dim:2 in
    let t = Cq.build ~dim:2 pts in
    Stats.mean
      (Array.to_list
         (Array.map
            (fun q ->
              let loc, _ = Cq.locate t q in
              let depth, _ = Cq.node_cube loc.Cq.node in
              float_of_int (depth + 1))
            (deep_queries ~seed:3 ~n)))
  in
  C.print_shape_table ~title:"diagonal (deep) inputs: messages/hops to locate" ~sizes
    [
      ("uncompressed descent (hops)", List.map (fun n -> uncompressed_depth ~n) sizes, "Θ(n)");
      ( "compressed skip-web (messages)",
        List.map (fun n -> C.mean_over_seeds cfg.C.seeds (fun s -> skipweb_msgs ~seed:s ~n)) sizes,
        "~O(log n)" );
    ]

let ablation_p (cfg : C.config) =
  C.section "Ablation A3: halving probability p";
  let n = List.fold_left max 1024 cfg.C.sizes in
  let keys = W.distinct_ints ~seed:11 ~n ~bound:(100 * n) in
  let tbl =
    Tables.create
      ~title:(Printf.sprintf "1-d skip-web at n = %d under skewed splits" n)
      ~columns:[ "p"; "levels"; "total ranges"; "Q mean msgs"; "top-level max set" ]
  in
  List.iter
    (fun p ->
      let net = Network.create ~hosts:n in
      let h = HInt.build ~net ~seed:11 ~p keys in
      let rng = Prng.create 12 in
      let qs = W.query_mix ~seed:13 ~keys ~n:cfg.C.queries ~bound:(100 * n) in
      let q =
        Stats.mean
          (Array.to_list
             (Array.map
                (fun x ->
                  let _, stats = HInt.query h ~rng x in
                  float_of_int stats.HInt.messages)
                qs))
      in
      let top_sizes = HInt.level_set_sizes h (HInt.levels h - 1) in
      Tables.add_row tbl
        [
          Printf.sprintf "%.2f" p;
          string_of_int (HInt.levels h);
          string_of_int (HInt.total_storage h);
          Tables.cell_float q;
          string_of_int (List.fold_left max 0 top_sizes);
        ])
    [ 0.25; 0.5; 0.75 ];
  Tables.print tbl;
  Printf.printf
    "p = 1/2 minimizes the imbalance: skewed splits leave larger top-level sets\n\
     (more residual scanning) or more levels (more hops) for the same storage.\n"

let run (cfg : C.config) =
  ablation_blocking cfg;
  ablation_compression cfg;
  ablation_p cfg
