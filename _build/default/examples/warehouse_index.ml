(* Warehouse index: the bucket skip-web regime (Table 1 row 7, §1.3).

   A handful of beefy index servers — not one host per item — hold a large
   sorted key space. With per-host memory M = n^(1/2), the paper promises
   O(1) expected messages per lookup regardless of n; this example builds
   three sizes and shows the cost staying flat while a flat skip graph
   over the same data keeps growing.

   Run with: dune exec examples/warehouse_index.exe *)

module Network = Skipweb_net.Network
module Skipweb = Skipweb_core.Blocked1d
module SG = Skipweb_skipgraph.Skip_graph
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

let () =
  Printf.printf "%8s | %6s | %6s | %22s | %22s\n" "items" "hosts" "M" "bucket skip-web msgs" "flat skip graph msgs";
  List.iter
    (fun n ->
      let keys = W.distinct_ints ~seed:99 ~n ~bound:(100 * n) in
      let m = int_of_float (Float.sqrt (float_of_int n)) in
      let hosts = max 4 (n * log2i n / m) in
      let net = Network.create ~hosts:(min n hosts) in
      let web = Skipweb.build ~net ~seed:1 ~m keys in
      let rng = Prng.create 2 in
      let qs = W.query_mix ~seed:3 ~keys ~n:200 ~bound:(100 * n) in
      let web_mean =
        Array.fold_left (fun acc q -> acc + (Skipweb.query web ~rng q).Skipweb.messages) 0 qs
      in
      let net2 = Network.create ~hosts:(n + 4) in
      let sg = SG.create ~net:net2 ~seed:1 ~keys in
      let rng2 = Prng.create 2 in
      let sg_mean =
        Array.fold_left (fun acc q -> acc + (SG.search_from_random sg ~rng:rng2 q).SG.messages) 0 qs
      in
      Printf.printf "%8d | %6d | %6d | %22.2f | %22.2f\n" n (Network.host_count net) m
        (float_of_int web_mean /. 200.0)
        (float_of_int sg_mean /. 200.0))
    [ 1024; 4096; 16384 ];
  Printf.printf
    "\nWith M = sqrt(n) per host, lookups cost O(1) messages at every scale\n\
     (the paper's constant-cost regime); the flat H = n overlay keeps paying log n.\n"
