(* Quickstart: a one-dimensional skip-web in a few lines.

   We stand up a simulated peer-to-peer network, spread a sorted set over
   it with the blocked 1-d skip-web of §2.4.1, and run nearest-neighbor
   queries and updates while watching the message meter.

   Run with: dune exec examples/quickstart.exe *)

module Network = Skipweb_net.Network
module Skipweb = Skipweb_core.Blocked1d
module Prng = Skipweb_util.Prng

let () =
  (* 1024 hosts, each allowed to store about M = 40 units. *)
  let net = Network.create ~hosts:1024 in
  let keys = Array.init 1024 (fun i -> i * 97) in
  let web = Skipweb.build ~net ~seed:2005 ~m:40 keys in
  Printf.printf "Built a skip-web over %d keys: %d levels, basic levels at %s\n"
    (Skipweb.size web) (Skipweb.levels web)
    (String.concat ", " (List.map string_of_int (Skipweb.basic_levels web)));
  Printf.printf "Storage: %d ranges, %d after blocking replication; busiest host stores %d units\n\n"
    (Skipweb.total_storage web) (Skipweb.replicated_storage web) (Skipweb.max_host_memory web);

  (* Nearest-neighbor queries from random hosts. *)
  let rng = Prng.create 7 in
  List.iter
    (fun q ->
      let r = Skipweb.query web ~rng q in
      Printf.printf "nearest(%6d) = %6s   [pred %6s, succ %6s]  in %d messages\n" q
        (match r.Skipweb.nearest with Some k -> string_of_int k | None -> "-")
        (match r.Skipweb.predecessor with Some k -> string_of_int k | None -> "-")
        (match r.Skipweb.successor with Some k -> string_of_int k | None -> "-")
        r.Skipweb.messages)
    [ 0; 50_000; 31_337; 99_999; 12_345 ];

  (* Updates cost a locate plus O(1) messages per basic level. *)
  let cost = Skipweb.insert web 31_338 in
  Printf.printf "\ninsert 31338 cost %d messages\n" cost;
  let r = Skipweb.query web ~rng 31_338 in
  Printf.printf "nearest(31338) is now %s\n"
    (match r.Skipweb.nearest with Some k -> string_of_int k | None -> "-");
  let cost = Skipweb.delete web 31_338 in
  Printf.printf "delete 31338 cost %d messages\n" cost
