(* Campus map point location: §3.3 builds skip-webs over trapezoidal maps
   "as would be created by a campus or city map in a geographic
   information system".

   We build the trapezoidal map of a set of disjoint walls/paths, spread
   it over hosts as a skip-web, and answer "which region of the map am I
   standing in?" — planar point location in O(log n) messages.

   Run with: dune exec examples/campus_map.exe *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module Segment = Skipweb_geom.Segment
module Trapmap = Skipweb_trapmap.Trapmap
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng

module Map_web = H.Make (I.Segments)

let () =
  let n = 80 in
  let walls = W.disjoint_segments ~seed:77 ~n in
  let net = Network.create ~hosts:256 in
  let web = Map_web.build ~net ~seed:13 walls in
  let oracle = Trapmap.build walls in
  Printf.printf
    "Campus map: %d walls -> %d trapezoids (3n+1 = %d), %d skip-web levels on %d hosts\n\n" n
    (Trapmap.trap_count oracle)
    ((3 * n) + 1)
    (Map_web.levels web) (Network.host_count net);

  let rng = Prng.create 21 in
  let visitors = W.trapmap_query_points ~seed:99 ~n:6 in
  Array.iter
    (fun (x, y) ->
      match Trapmap.locate_opt oracle (x, y) with
      | None -> ()  (* standing exactly on a wall: skip *)
      | Some _ ->
          let answer, stats = Map_web.query web ~rng (x, y) in
          let bound = function
            | Some id -> Printf.sprintf "wall #%d" id
            | None -> "the map edge"
          in
          let lo, hi = answer.I.xspan in
          Printf.printf
            "visitor at (%.3f, %.3f): region x∈[%.3f, %.3f], below %s, above %s — %d messages\n" x
            y lo hi (bound answer.I.above) (bound answer.I.below) stats.Map_web.messages)
    visitors;

  (* A new wall is built. *)
  let spare = W.disjoint_segments ~seed:78 ~n:(n + 30) in
  let extra = spare.(n + 20) in
  (match
     List.find_opt
       (fun s ->
         List.for_all
           (fun old ->
             (not (Segment.crosses old s))
             &&
             let (ox0, _), (ox1, _) = Segment.endpoints old in
             let (sx0, _), (sx1, _) = Segment.endpoints s in
             ox0 <> sx0 && ox0 <> sx1 && ox1 <> sx0 && ox1 <> sx1)
           (Array.to_list walls))
       (Array.to_list (Array.sub spare n 30))
   with
  | Some wall ->
      let cost = Map_web.insert web wall in
      Printf.printf "\nbuilt %s: insert cost %d messages, map now has %d walls\n"
        (Segment.to_string wall) cost (Map_web.size web)
  | None -> ignore extra)
