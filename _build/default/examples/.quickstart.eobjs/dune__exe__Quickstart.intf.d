examples/quickstart.mli:
