examples/warehouse_index.mli:
