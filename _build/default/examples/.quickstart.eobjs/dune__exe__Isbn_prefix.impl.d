examples/isbn_prefix.ml: Array List Printf Skipweb_core Skipweb_net Skipweb_trie Skipweb_util Skipweb_workload String
