examples/campus_map.ml: Array List Printf Skipweb_core Skipweb_geom Skipweb_net Skipweb_trapmap Skipweb_util Skipweb_workload
