examples/warehouse_index.ml: Array Float List Printf Skipweb_core Skipweb_net Skipweb_skipgraph Skipweb_util Skipweb_workload
