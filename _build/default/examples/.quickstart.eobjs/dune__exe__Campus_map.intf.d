examples/campus_map.mli:
