examples/isbn_prefix.mli:
