examples/kiosk_finder.mli:
