examples/quickstart.ml: Array List Printf Skipweb_core Skipweb_net Skipweb_util String
