(* Kiosk finder: the paper's introduction motivates skip-webs with
   "a nearest-neighbor query in a two-dimensional point set could reveal
   the closest open computer kiosk or empty parking space on a college
   campus".

   We scatter kiosks over a campus, build a quadtree skip-web over n
   hosts, and answer "where is the closest open kiosk?" from arbitrary
   hosts: the skip-web locates the query's quadtree cell in O(log n)
   messages, and the located cell anchors a local neighborhood search.

   Run with: dune exec examples/kiosk_finder.exe *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module Point = Skipweb_geom.Point
module Cqtree = Skipweb_quadtree.Cqtree
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng

module Kiosk_web = H.Make (I.Points2d)

let () =
  let n = 600 in
  let rng = Prng.create 11 in
  (* Kiosks cluster around campus buildings. *)
  let kiosks = W.clustered_points ~seed:42 ~n ~dim:2 ~clusters:8 ~radius:0.08 in
  let net = Network.create ~hosts:n in
  let web = Kiosk_web.build ~net ~seed:3 kiosks in
  Printf.printf "Campus kiosk map: %d kiosks on %d hosts, %d skip-web levels, %d stored ranges\n\n"
    (Kiosk_web.size web) (Network.host_count net) (Kiosk_web.levels web)
    (Kiosk_web.total_storage web);

  (* A sequential quadtree over the same kiosks acts as the local
     neighborhood index each host can consult once the cell is located;
     here it doubles as the exact-answer oracle. *)
  let oracle = Cqtree.build ~dim:2 kiosks in

  let students =
    [ (0.50, 0.50); (0.05, 0.95); (0.99, 0.01); (0.33, 0.66); (0.80, 0.40) ]
  in
  List.iter
    (fun (x, y) ->
      let q = Point.create [ x; y ] in
      let answer, stats = Kiosk_web.query web ~rng q in
      let exact =
        match Cqtree.nearest oracle q with
        | Some (p, d) -> Printf.sprintf "%s at distance %.3f" (Point.to_string p) d
        | None -> "none"
      in
      Printf.printf
        "student at (%.2f, %.2f): located cell depth %d in %d messages; nearest kiosk %s\n" x y
        answer.I.cell_depth stats.Kiosk_web.messages exact)
    students;

  (* A kiosk goes offline; the structure updates in O(log n) messages. *)
  let gone = kiosks.(0) in
  let cost = Kiosk_web.remove web gone in
  Printf.printf "\nkiosk %s went offline: removal cost %d messages, %d kiosks remain\n"
    (Point.to_string gone) cost (Kiosk_web.size web)
