(* Distributed book database: the paper's introduction motivates string
   skip-webs with "a prefix query for ISBN numbers in a book database
   could return all titles by a certain publisher".

   We store ISBN-like identifiers in a trie skip-web spread over hosts and
   run publisher-prefix queries: each one routes through O(log n) hosts
   regardless of how deep the shared-prefix structure is.

   Run with: dune exec examples/isbn_prefix.exe *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module Ctrie = Skipweb_trie.Ctrie
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng

module Book_web = H.Make (I.Strings)

let () =
  let n = 800 in
  let isbns = W.isbn_strings ~seed:2005 ~n ~publishers:12 in
  let net = Network.create ~hosts:n in
  let web = Book_web.build ~net ~seed:9 isbns in
  Printf.printf "Book database: %d ISBNs on %d hosts, %d skip-web levels\n\n" (Book_web.size web)
    (Network.host_count net) (Book_web.levels web);

  let rng = Prng.create 5 in
  (* Publisher prefix queries. *)
  List.iter
    (fun publisher ->
      let prefix = Printf.sprintf "978-%d-" publisher in
      let answer, stats = Book_web.query web ~rng prefix in
      Printf.printf "titles by publisher %-2d (prefix %-7s): %4d matches, %2d messages\n" publisher
        prefix answer.I.matches stats.Book_web.messages)
    [ 0; 1; 2; 5; 11 ];

  (* Exact-title lookup: the longest common prefix tells how close a typo
     came to a real ISBN. *)
  let oracle = Ctrie.build isbns in
  let sample = isbns.(17) in
  let typo = String.sub sample 0 (String.length sample - 1) ^ "X" in
  let answer, stats = Book_web.query web ~rng typo in
  Printf.printf "\nlookup %S (a typo of %S):\n  longest stored prefix %S, %d matches, %d messages\n"
    typo sample answer.I.lcp answer.I.matches stats.Book_web.messages;
  assert (answer.I.lcp = Ctrie.longest_common_prefix oracle typo);

  (* New titles arrive. *)
  let fresh = "978-3-999999" in
  let cost = Book_web.insert web fresh in
  let answer, _ = Book_web.query web ~rng fresh in
  Printf.printf "\npublished %S: insert cost %d messages; lookup now matches %d title(s)\n" fresh
    cost answer.I.matches
