(** Open-loop serving workloads: operations arrive on a Poisson schedule
    at a configured rate, independent of how fast the structure answers —
    the serving-scale regime, as opposed to the closed-loop batches of
    the query benches (where the next operation only exists once the
    previous one returns, so a slow structure conveniently sees less
    load). A plan is a deterministic function of its spec: the same
    [(spec, keys)] always yields the same event array, arrival times
    included, so one stream can be replayed verbatim against different
    structures or cache configurations (the E20 cross-[k] comparison). *)

type op =
  | Query of int  (** nearest-neighbor lookup *)
  | Insert of int  (** fresh key from [\[bound, 2*bound)] *)
  | Remove of int  (** a currently live key *)

type event = { at : float;  (** arrival time *) op : op }

type spec = {
  seed : int;
  ops : int;  (** number of events to plan *)
  rate : float;  (** mean arrivals per unit time; gaps are exponential *)
  read_fraction : float;  (** probability an event is a [Query] *)
  zipf_share : float;  (** among queries: probability of a Zipf-popular
                           stored key instead of a uniform point *)
  zipf_s : float;  (** Zipf exponent (see {!Workload.zipf_queries}) *)
  bound : int;  (** uniform queries draw from [\[0, bound)]; inserts from
                    the disjoint [\[bound, 2*bound)] *)
}

val default : spec
(** 1000 ops at rate 1000, 90% reads, half of them Zipf(1.1). *)

val plan : spec -> keys:int array -> event array
(** Materialize the event stream. Writes split evenly (by coin) between
    removing a uniformly random currently-live key — stored keys plus
    this plan's own insertions — and inserting a fresh key from
    [\[bound, 2*bound)], never colliding with the [\[0, bound)] key space
    or an earlier insert. With [zipf_share > 0] and a non-empty key set,
    the Zipf sampler's rank permutation is drawn first, then every event
    consumes its coins in order — fully deterministic in [spec.seed].
    Raises [Invalid_argument] on out-of-range spec fields. *)

type counts = { queries : int; inserts : int; removes : int }

val counts : event array -> counts

val duration : event array -> float
(** Arrival time of the last event (0 for an empty plan). *)
