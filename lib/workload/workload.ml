module Prng = Skipweb_util.Prng
module Point = Skipweb_geom.Point
module Segment = Skipweb_geom.Segment

let distinct_ints ~seed ~n ~bound =
  if bound < 2 * n then invalid_arg "Workload.distinct_ints: bound too small";
  let rng = Prng.create seed in
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n 0 in
  let filled = ref 0 in
  while !filled < n do
    let k = Prng.int rng bound in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      out.(!filled) <- k;
      incr filled
    end
  done;
  Array.sort compare out;
  out

let clustered_ints ~seed ~n ~clusters ~spread =
  if clusters < 1 || spread < 1 then invalid_arg "Workload.clustered_ints";
  let rng = Prng.create seed in
  let centers = Array.init clusters (fun _ -> Prng.int rng max_int / 2) in
  let seen = Hashtbl.create (2 * n) in
  let rec draw acc remaining attempts =
    if remaining = 0 || attempts > 20 * n then acc
    else
      let c = centers.(Prng.int rng clusters) in
      let k = c + Prng.int rng spread in
      if Hashtbl.mem seen k then draw acc remaining (attempts + 1)
      else begin
        Hashtbl.add seen k ();
        draw (k :: acc) (remaining - 1) (attempts + 1)
      end
  in
  let keys = Array.of_list (draw [] n 0) in
  Array.sort compare keys;
  keys

let query_mix ~seed ~keys ~n ~bound =
  let rng = Prng.create seed in
  Array.init n (fun _ ->
      if Array.length keys > 0 && Prng.bool rng then begin
        let k = keys.(Prng.int rng (Array.length keys)) in
        let jitter = Prng.int rng 64 - 32 in
        max 0 (min (bound - 1) (k + jitter))
      end
      else Prng.int rng bound)

let uniform_points ~seed ~n ~dim =
  let rng = Prng.create seed in
  Array.init n (fun _ -> Array.init dim (fun _ -> Prng.float rng 1.0))

let clustered_points ~seed ~n ~dim ~clusters ~radius =
  if clusters < 1 then invalid_arg "Workload.clustered_points";
  let rng = Prng.create seed in
  let centers =
    Array.init clusters (fun _ ->
        Array.init dim (fun _ -> radius +. Prng.float rng (1.0 -. (2.0 *. radius))))
  in
  Array.init n (fun _ ->
      let c = centers.(Prng.int rng clusters) in
      Array.init dim (fun i ->
          let x = c.(i) +. Prng.float rng (2.0 *. radius) -. radius in
          Float.max 0.0 (Float.min (1.0 -. epsilon_float) x)))

let diagonal_points ~n ~dim =
  if n >= Point.grid_bits then
    invalid_arg "Workload.diagonal_points: at most grid_bits - 1 points are distinct";
  Array.init n (fun i ->
      let c = Float.pow 2.0 (float_of_int (-(i + 1))) in
      Array.make dim c)

let uniform_query_points ~seed ~n ~dim = uniform_points ~seed:(seed + 7919) ~n ~dim

let random_strings ~seed ~n ~alphabet ~len =
  if alphabet < 1 || alphabet > 26 then invalid_arg "Workload.random_strings: alphabet";
  let capacity = Float.pow (float_of_int alphabet) (float_of_int len) in
  if capacity < float_of_int (2 * n) then
    invalid_arg "Workload.random_strings: alphabet^len too small";
  let rng = Prng.create seed in
  let seen = Hashtbl.create (2 * n) in
  let fresh () =
    String.init len (fun _ -> Char.chr (Char.code 'a' + Prng.int rng alphabet))
  in
  Array.init n (fun _ ->
      let rec go () =
        let s = fresh () in
        if Hashtbl.mem seen s then go ()
        else begin
          Hashtbl.add seen s ();
          s
        end
      in
      go ())

let prefix_heavy_strings ~seed ~n ~alphabet =
  if alphabet < 2 then invalid_arg "Workload.prefix_heavy_strings: alphabet >= 2";
  let rng = Prng.create seed in
  Array.init n (fun i ->
      let shared = String.make i 'a' in
      let pivot = Char.chr (Char.code 'a' + 1 + Prng.int rng (alphabet - 1)) in
      let tail =
        String.init 3 (fun _ -> Char.chr (Char.code 'a' + Prng.int rng alphabet))
      in
      shared ^ String.make 1 pivot ^ tail)

let isbn_strings ~seed ~n ~publishers =
  if publishers < 1 then invalid_arg "Workload.isbn_strings";
  let rng = Prng.create seed in
  let seen = Hashtbl.create (2 * n) in
  Array.init n (fun _ ->
      let rec go () =
        (* Zipf-ish publisher choice: smaller ids more popular. *)
        let r = Prng.float rng 1.0 in
        let publisher = int_of_float (float_of_int publishers *. r *. r) in
        let title = Prng.int rng 1_000_000 in
        let s = Printf.sprintf "978-%d-%06d" publisher title in
        if Hashtbl.mem seen s then go ()
        else begin
          Hashtbl.add seen s ();
          s
        end
      in
      go ())

let string_queries ~seed ~keys ~n =
  let rng = Prng.create seed in
  let m = Array.length keys in
  Array.init n (fun _ ->
      if m = 0 then String.init 4 (fun _ -> Char.chr (Char.code 'a' + Prng.int rng 26))
      else
        match Prng.int rng 3 with
        | 0 -> keys.(Prng.int rng m)
        | 1 ->
            let k = keys.(Prng.int rng m) in
            let l = String.length k in
            if l = 0 then k else String.sub k 0 (1 + Prng.int rng l)
        | _ ->
            let len = 1 + Prng.int rng 8 in
            String.init len (fun _ -> Char.chr (Char.code 'a' + Prng.int rng 26)))

let disjoint_segments ~seed ~n =
  let rng = Prng.create seed in
  let max_len = 0.8 /. sqrt (float_of_int (max 1 n)) in
  let xs = Hashtbl.create (4 * n) in
  let accepted = ref [] in
  let count = ref 0 in
  let attempts = ref 0 in
  let limit = 2000 * (n + 10) in
  while !count < n && !attempts < limit do
    incr attempts;
    let x0 = 0.05 +. Prng.float rng 0.9 in
    let len = (0.2 +. Prng.float rng 0.8) *. max_len in
    let x1 = x0 +. len in
    let y0 = 0.05 +. Prng.float rng 0.9 in
    let y1 = y0 +. (Prng.float rng (2.0 *. len) -. len) in
    if x1 < 0.95 && y1 > 0.05 && y1 < 0.95 && not (Hashtbl.mem xs x0) && not (Hashtbl.mem xs x1)
    then begin
      let candidate = Segment.make ~id:!count (x0, y0) (x1, y1) in
      let ok =
        List.for_all
          (fun old ->
            (not (Segment.crosses old candidate))
            &&
            (* Keep a small separation so no near-degeneracies. *)
            let (ox0, oy0), (ox1, oy1) = Segment.endpoints old in
            let far (px, py) (qx, qy) =
              Float.abs (px -. qx) > 1e-9 || Float.abs (py -. qy) > 1e-9
            in
            let (cx0, cy0), (cx1, cy1) = Segment.endpoints candidate in
            far (ox0, oy0) (cx0, cy0) && far (ox0, oy0) (cx1, cy1)
            && far (ox1, oy1) (cx0, cy0)
            && far (ox1, oy1) (cx1, cy1))
          !accepted
      in
      if ok then begin
        Hashtbl.replace xs x0 ();
        Hashtbl.replace xs x1 ();
        accepted := candidate :: !accepted;
        incr count
      end
    end
  done;
  if !count < n then
    invalid_arg (Printf.sprintf "Workload.disjoint_segments: only generated %d of %d" !count n);
  Array.of_list (List.rev !accepted)

let trapmap_query_points ~seed ~n =
  let rng = Prng.create seed in
  Array.init n (fun _ -> (0.001 +. Prng.float rng 0.998, 0.001 +. Prng.float rng 0.998))

let pow2_sizes ~lo ~hi =
  if lo > hi then invalid_arg "Workload.pow2_sizes";
  List.init (hi - lo + 1) (fun i -> 1 lsl (lo + i))

let zipf_cdf ~m ~s =
  if m < 1 then invalid_arg "Workload.zipf_cdf: m >= 1";
  if s <= 0.0 then invalid_arg "Workload.zipf_cdf: s > 0";
  let weights = Array.init m (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make m 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  (* Accumulating m rounded ratios can leave the last entry a few ulps
     below 1.0 (large m, or an s steep enough that tail weights underflow
     against the head), and a uniform draw landing in that gap walks the
     inverse-CDF search past the last rank. The final entry is 1.0 by
     definition; pin it. *)
  cdf.(m - 1) <- 1.0;
  cdf

(* An incremental Zipf sampler: the CDF and rank permutation are fixed at
   creation, each draw consumes exactly one float from the caller's rng.
   [zipf_queries] is a loop of draws, and the open-loop driver interleaves
   draws with its other coins — both see the same key popularity. *)
type zipf = { cdf : float array; perm : int array; zkeys : int array }

let zipf_prepare ~rng ~keys ~s =
  let m = Array.length keys in
  if m = 0 then invalid_arg "Workload.zipf_prepare: empty keys";
  if s <= 0.0 then invalid_arg "Workload.zipf_prepare: s > 0";
  (* Inverse-CDF sampling over ranks 1..m. *)
  let cdf = zipf_cdf ~m ~s in
  (* Popularity rank -> a fixed random permutation of the keys. *)
  let perm = Array.init m (fun i -> i) in
  Prng.shuffle rng perm;
  { cdf; perm; zkeys = keys }

let zipf_draw z rng =
  let m = Array.length z.zkeys in
  let u = Prng.float rng 1.0 in
  let rec find lo hi = if lo >= hi then lo else
    let mid = (lo + hi) / 2 in
    if z.cdf.(mid) < u then find (mid + 1) hi else find lo mid
  in
  z.zkeys.(z.perm.(min (m - 1) (find 0 m)))

let zipf_queries ~seed ~keys ~n ~s =
  let rng = Prng.create seed in
  let z = zipf_prepare ~rng ~keys ~s in
  Array.init n (fun _ -> zipf_draw z rng)
