module Prng = Skipweb_util.Prng

(* An open-loop serving workload: operations arrive on a Poisson schedule
   at a configured rate whether or not the structure has finished the
   previous one — the "millions of users" regime — instead of the
   closed-loop batches the benches used before, where the next query only
   exists once the previous one returns. The plan is materialized up
   front as a deterministic function of the spec, so a run can be
   replayed exactly (same seed, same events, same arrival times) against
   any structure or cache configuration, which is what makes the E20
   cross-`k` comparisons apples-to-apples. *)

type op = Query of int | Insert of int | Remove of int

type event = { at : float; op : op }

type spec = {
  seed : int;
  ops : int;
  rate : float;  (* mean arrivals per unit time (Poisson) *)
  read_fraction : float;  (* P(op is a query) *)
  zipf_share : float;  (* among queries: P(Zipf-popular stored key) *)
  zipf_s : float;
  bound : int;  (* uniform queries draw from [0, bound) *)
}

let default =
  {
    seed = 42;
    ops = 1_000;
    rate = 1_000.0;
    read_fraction = 0.9;
    zipf_share = 0.5;
    zipf_s = 1.1;
    bound = 1 lsl 20;
  }

(* One plan, one rng, coins drawn strictly in event order: arrival gap,
   then the read/write coin, then the op's own draws. Every derived
   quantity is a pure function of (spec, keys), so two plans from equal
   inputs are equal arrays — the replay contract. Writes alternate by a
   coin between removing a uniformly random live key (swap-pop over the
   live arena) and inserting a fresh key from [bound, 2*bound) — disjoint
   from the [0, bound) initial key space, so an insert never collides
   with a stored key, and a resample table keeps re-inserts out. *)
let plan spec ~keys =
  if spec.ops < 0 then invalid_arg "Open_loop.plan: ops >= 0";
  if spec.rate <= 0.0 then invalid_arg "Open_loop.plan: rate > 0";
  if spec.read_fraction < 0.0 || spec.read_fraction > 1.0 then
    invalid_arg "Open_loop.plan: read_fraction in [0, 1]";
  if spec.zipf_share < 0.0 || spec.zipf_share > 1.0 then
    invalid_arg "Open_loop.plan: zipf_share in [0, 1]";
  if spec.bound < 1 then invalid_arg "Open_loop.plan: bound >= 1";
  let rng = Prng.create spec.seed in
  let zipf =
    if spec.zipf_share > 0.0 && Array.length keys > 0 then
      Some (Workload.zipf_prepare ~rng ~keys ~s:spec.zipf_s)
    else None
  in
  (* Live-key arena for removals: the stored keys, plus keys this plan
     inserts (so a long write-heavy run churns its own insertions too). *)
  let live = ref (Array.copy keys) in
  let nlive = ref (Array.length keys) in
  let push k =
    if !nlive = Array.length !live then begin
      let bigger = Array.make (max 8 (2 * !nlive)) 0 in
      Array.blit !live 0 bigger 0 !nlive;
      live := bigger
    end;
    !live.(!nlive) <- k;
    incr nlive
  in
  let inserted = Hashtbl.create 64 in
  let clock = ref 0.0 in
  Array.init spec.ops (fun _ ->
      (* Poisson arrivals: exponential inter-arrival gaps at [rate]. *)
      let u = Prng.float rng 1.0 in
      clock := !clock +. (-.log (1.0 -. u) /. spec.rate);
      let op =
        if Prng.float rng 1.0 < spec.read_fraction then
          let q =
            match zipf with
            | Some z when Prng.float rng 1.0 < spec.zipf_share -> Workload.zipf_draw z rng
            | Some _ | None -> Prng.int rng spec.bound
          in
          Query q
        else if !nlive > 0 && Prng.bool rng then begin
          let i = Prng.int rng !nlive in
          let k = !live.(i) in
          !live.(i) <- !live.(!nlive - 1);
          decr nlive;
          Remove k
        end
        else begin
          let rec fresh () =
            let k = spec.bound + Prng.int rng spec.bound in
            if Hashtbl.mem inserted k then fresh ()
            else begin
              Hashtbl.add inserted k ();
              k
            end
          in
          let k = fresh () in
          push k;
          Insert k
        end
      in
      { at = !clock; op })

type counts = { queries : int; inserts : int; removes : int }

let counts events =
  Array.fold_left
    (fun acc e ->
      match e.op with
      | Query _ -> { acc with queries = acc.queries + 1 }
      | Insert _ -> { acc with inserts = acc.inserts + 1 }
      | Remove _ -> { acc with removes = acc.removes + 1 })
    { queries = 0; inserts = 0; removes = 0 }
    events

let duration events =
  let n = Array.length events in
  if n = 0 then 0.0 else events.(n - 1).at
