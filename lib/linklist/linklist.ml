type range = Node of int | Link of int

type bound = Neg_inf | Key of int | Pos_inf

let num_ranges a = (2 * Array.length a) + 1

let encode = function Link i -> 2 * i | Node i -> (2 * i) + 1

let decode c = if c land 1 = 0 then Link (c / 2) else Node (c / 2)

let valid a r =
  let m = Array.length a in
  match r with Node i -> i >= 0 && i < m | Link i -> i >= 0 && i <= m

let span a r =
  assert (valid a r);
  let m = Array.length a in
  match r with
  | Node i -> (Key a.(i), Key a.(i))
  | Link i ->
      let lo = if i = 0 then Neg_inf else Key a.(i - 1) in
      let hi = if i = m then Pos_inf else Key a.(i) in
      (lo, hi)

let bound_le_key b q = match b with Neg_inf -> true | Key k -> k <= q | Pos_inf -> false

let key_le_bound q b = match b with Neg_inf -> false | Key k -> q <= k | Pos_inf -> true

let contains a r q =
  let lo, hi = span a r in
  bound_le_key lo q && key_le_bound q hi

(* First index with a.(i) >= q, or m; last index with a.(i) <= q, or -1.
   The one shared binary-search implementation lives with the chunked
   container. *)
let lower_bound a q = Skipweb_util.Ordseq.array_lower_bound a q

let upper_index a q = Skipweb_util.Ordseq.array_upper_index a q

let locate a q =
  let i = lower_bound a q in
  if i < Array.length a && a.(i) = q then Node i else Link i

let conflict_interval ~parent ~child r =
  assert (valid child r);
  let lo, hi = span child r in
  (* k_lo: first parent index with key >= lo; k_hi: last with key <= hi. *)
  let k_lo = match lo with Neg_inf -> 0 | Key k -> lower_bound parent k | Pos_inf -> Array.length parent in
  let k_hi =
    match hi with
    | Neg_inf -> -1
    | Key k -> upper_index parent k
    | Pos_inf -> Array.length parent - 1
  in
  (* Conflicting parent ranges: links k_lo .. k_hi+1 and nodes k_lo .. k_hi,
     i.e. codes 2*k_lo .. 2*(k_hi+1). Degenerate spans still conflict with
     the link they fall inside. *)
  if k_hi < k_lo then begin
    (* The child span contains no parent key: it lies strictly inside parent
       link k_lo. Only that link conflicts. *)
    let c = encode (Link k_lo) in
    (c, c)
  end
  else (encode (Link k_lo), encode (Link (k_hi + 1)))

let conflicts ~parent ~child r =
  let lo, hi = conflict_interval ~parent ~child r in
  let rec go c acc = if c < lo then acc else go (c - 1) (decode c :: acc) in
  go hi []

let conflict_count ~parent ~child r =
  let lo, hi = conflict_interval ~parent ~child r in
  hi - lo + 1

let intersection_size ~parent ~child r =
  let lo, hi = span child r in
  let k_lo =
    match lo with Neg_inf -> 0 | Key k -> lower_bound parent k | Pos_inf -> Array.length parent
  in
  let k_hi =
    match hi with Neg_inf -> -1 | Key k -> upper_index parent k | Pos_inf -> Array.length parent - 1
  in
  max 0 (k_hi - k_lo + 1)

let predecessor a q =
  let i = upper_index a q in
  if i >= 0 then Some a.(i) else None

let successor a q =
  let i = lower_bound a q in
  if i < Array.length a then Some a.(i) else None

let nearest a q =
  match (predecessor a q, successor a q) with
  | None, None -> None
  | Some p, None -> Some p
  | None, Some s -> Some s
  | Some p, Some s -> if q - p <= s - q then Some p else Some s

let nearest_in_range a r q =
  assert (valid a r);
  match r with
  | Node i -> Some a.(i)
  | Link _ -> (
      match span a r with
      | Neg_inf, Neg_inf | Pos_inf, _ | _, Neg_inf -> assert false
      | Neg_inf, Key k | Key k, Pos_inf -> Some k
      | Neg_inf, Pos_inf -> None
      | Key p, Key s -> if q - p <= s - q then Some p else Some s)

let check_subset ~parent ~child =
  Array.for_all
    (fun k ->
      let i = lower_bound parent k in
      i < Array.length parent && parent.(i) = k)
    child

let range_keys a ~lo ~hi =
  let start = lower_bound a lo in
  let last = upper_index a hi in
  let rec go i acc = if i > last then List.rev acc else go (i + 1) (a.(i) :: acc) in
  if last < start then [] else go start []

let range_codes a ~lo ~hi = (encode (locate a lo), encode (locate a hi))
