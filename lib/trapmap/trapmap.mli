(** Trapezoidal maps of non-crossing line segments in the plane (§3.3,
    Figure 4, Lemma 5).

    The map subdivides the unit square by the input segments plus vertical
    extensions shot up and down from every segment endpoint until they hit
    another segment or the bounding box. The decomposition is canonical
    (independent of insertion order); for [n] pairwise-disjoint segments
    with distinct endpoint x-coordinates it has exactly [3n + 1]
    trapezoids.

    Assumptions (checked by {!build}): segments are pairwise disjoint (no
    crossings, no shared endpoints) and all endpoint x-coordinates are
    distinct — the paper's setting of "disjoint line segments", in general
    position. Workload generators produce such sets.

    As a range-determined link structure: ranges are the (open) trapezoid
    regions; two trapezoids of different maps conflict iff their interiors
    intersect. Lemma 5: for [T ⊆ S] a random half and [t] a trapezoid of
    [D(T)], the number of trapezoids of [D(S)] conflicting with [t] is
    exactly [1 + a + 2b + 3c], where [a]/[b]/[c] count segments of [S]
    crossing [t] with 0/1/2 endpoints interior to [t]; its expectation is
    O(1). Both sides of that equality are computable here
    ({!conflicts}, {!conflict_formula}). *)

module Segment = Skipweb_geom.Segment

type t

type trap
(** A trapezoid: a top and bottom segment (or the bounding box) and a left
    and right abscissa. *)

val empty : unit -> t
(** The map of no segments: the bounding unit square as one trapezoid. *)

val build : ?pool:Skipweb_util.Pool.t -> Segment.t array -> t
(** Insert all segments, in array order — implemented as
    {!insert_batch} from the empty map, so the resulting trapezoids and
    ids are exactly those of the per-segment {!insert} loop. Raises
    [Invalid_argument] if the set violates the disjointness / distinct-x
    assumptions or leaves the unit square. *)

val of_sorted : ?pool:Skipweb_util.Pool.t -> Segment.t array -> t
(** Like {!build} after presorting the segments by ascending endpoint
    tuples (coalescing exact duplicates): the canonical construction
    order, bit-identical for any input permutation and any jobs count.
    From the empty map every segment crosses the single bounding-box
    trapezoid, so the whole batch forms one component and the refinement
    pass runs sequentially; [pool] still parallelizes the presort and the
    validation sweeps. *)

val insert_batch : ?pool:Skipweb_util.Pool.t -> t -> Segment.t array -> (int list * int list) list
(** [insert_batch t segs] applies the whole batch as the per-segment
    {!insert_delta} loop would, in array order, returning the per-segment
    [(added, removed)] trapezoid-id deltas in that same order — ids
    included, since the commit pass numbers created trapezoids in global
    batch position order. With [pool], the batch is validated and its
    crossed corridors discovered in parallel against the pre-insertion
    map, segments are grouped into components that share crossed
    trapezoids, and the components (whose refined regions are pairwise
    disjoint) apply on pool workers. Results are bit-identical for any
    jobs count. Unlike the per-segment loop, an invalid batch is rejected
    {e before} any mutation. Must not run concurrently with queries. *)

val insert : t -> Segment.t -> unit
(** Add one segment (same preconditions, checked against current
    content). Replaces the crossed trapezoids with their refinement. *)

val insert_delta : t -> Segment.t -> int list * int list
(** Like {!insert}, returning [(added, removed)] — the ids of the
    trapezoids the refinement created and destroyed. The skip-web
    hierarchy consumes the delta to adjust per-host memory charges in O(1)
    amortized instead of re-enumerating {!traps}. *)

val segment_count : t -> int
val trap_count : t -> int
val traps : t -> trap list

(** {1 Trapezoids} *)

val trap_id : trap -> int
val trap_top : trap -> Segment.t option
(** [None] is the bounding box top. *)

val trap_bottom : trap -> Segment.t option
val trap_xspan : trap -> float * float

val trap_contains : trap -> float * float -> bool
(** Strict interior containment (queries in general position). *)

val trap_intersects : trap -> trap -> bool
(** Open-interior overlap — the conflict predicate, usable across maps. *)

val trap_area : trap -> float

(** {1 Queries} *)

val locate : t -> float * float -> trap
(** The trapezoid whose interior contains the point. Raises [Not_found]
    for points on the subdivision skeleton (measure zero for
    general-position queries). *)

val locate_opt : t -> float * float -> trap option

(** {1 Lemma 5 instrumentation} *)

val conflicts : t -> trap -> trap list
(** Trapezoids of this map whose interior meets the interior of a (foreign)
    trapezoid — the conflict list C(t, S) of §2.2. *)

val conflict_formula : segments:Segment.t array -> trap -> int * (int * int * int)
(** [(1 + a + 2b + 3c, (a, b, c))] per Lemma 5's proof, classifying each
    segment by how many of its endpoints are interior to the trapezoid
    (only segments meeting the interior count). *)

val check_invariants : t -> unit
(** Trapezoid count = 3n+1, areas sum to 1, interiors pairwise disjoint
    (O(T²); intended for test sizes), positive widths/heights. Raises
    [Failure] on violation. *)
