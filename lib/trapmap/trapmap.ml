module Segment = Skipweb_geom.Segment
module Pool = Skipweb_util.Pool
module Presort = Skipweb_util.Presort

type trap = {
  (* Mutable only so the batch commit pass can renumber provisionally
     built trapezoids; never reassigned once a trapezoid is visible to
     readers. *)
  mutable tid : int;
  top : Segment.t option;  (* None = bounding box top, y = 1 *)
  bot : Segment.t option;  (* None = bounding box bottom, y = 0 *)
  lx : float;
  rx : float;
}

type t = {
  mutable segs : Segment.t list;
  mutable alive : trap list;
  mutable next_id : int;
  xs : (float, unit) Hashtbl.t;  (* endpoint abscissae already used *)
}

let empty () =
  let box = { tid = 0; top = None; bot = None; lx = 0.0; rx = 1.0 } in
  { segs = []; alive = [ box ]; next_id = 1; xs = Hashtbl.create 16 }

let segment_count t = List.length t.segs
let trap_count t = List.length t.alive
let traps t = t.alive

let trap_id tr = tr.tid
let trap_top tr = tr.top
let trap_bottom tr = tr.bot
let trap_xspan tr = (tr.lx, tr.rx)

let boundary_y b x = match b with None -> assert false | Some s -> Segment.y_at s x

let top_y tr x = match tr.top with None -> 1.0 | Some _ -> boundary_y tr.top x
let bot_y tr x = match tr.bot with None -> 0.0 | Some _ -> boundary_y tr.bot x

let trap_contains tr (x, y) =
  tr.lx < x && x < tr.rx && bot_y tr x < y && y < top_y tr x

let trap_area tr =
  let h x = top_y tr x -. bot_y tr x in
  (tr.rx -. tr.lx) *. (h tr.lx +. h tr.rx) /. 2.0

(* The open x-subinterval of (lo, hi) where a linear function with endpoint
   values (glo, ghi) is strictly positive. *)
let positive_subinterval glo ghi lo hi =
  if glo > 0.0 && ghi > 0.0 then Some (lo, hi)
  else if glo <= 0.0 && ghi <= 0.0 then None
  else
    let r = lo +. ((hi -. lo) *. glo /. (glo -. ghi)) in
    if glo > 0.0 then Some (lo, r) else Some (r, hi)

let seg_intersects_trap s tr =
  let (x0, _), (x1, _) = Segment.endpoints s in
  let lo = Float.max x0 tr.lx and hi = Float.min x1 tr.rx in
  if lo >= hi then false
  else
    (* Both (top - s) and (s - bot) must be positive somewhere on (lo, hi);
       each is linear in x. *)
    let g1 l = top_y tr l -. Segment.y_at s l in
    let g2 l = Segment.y_at s l -. bot_y tr l in
    match
      ( positive_subinterval (g1 lo) (g1 hi) lo hi,
        positive_subinterval (g2 lo) (g2 hi) lo hi )
    with
    | Some (a1, b1), Some (a2, b2) -> Float.max a1 a2 < Float.min b1 b2
    | None, _ | Some _, None -> false

let trap_intersects t1 t2 =
  let lo = Float.max t1.lx t2.lx and hi = Float.min t1.rx t2.rx in
  if lo >= hi then false
  else
    (* f(x) = min(top1, top2) - max(bot1, bot2) is concave piecewise linear;
       it is positive somewhere on [lo, hi] iff it is positive at an
       endpoint or at a kink (where the two tops or the two bots cross). *)
    let f x = Float.min (top_y t1 x) (top_y t2 x) -. Float.max (bot_y t1 x) (bot_y t2 x) in
    let kink g1 g2 =
      (* abscissa where two linear functions g1, g2 agree, if inside *)
      let d_lo = g1 lo -. g2 lo and d_hi = g1 hi -. g2 hi in
      if (d_lo > 0.0 && d_hi < 0.0) || (d_lo < 0.0 && d_hi > 0.0) then
        Some (lo +. ((hi -. lo) *. d_lo /. (d_lo -. d_hi)))
      else None
    in
    let candidates =
      [ Some lo; Some hi; kink (top_y t1) (top_y t2); kink (bot_y t1) (bot_y t2) ]
    in
    List.exists (function Some x -> f x > 1e-12 | None -> false) candidates

let locate_opt t p = List.find_opt (fun tr -> trap_contains tr p) t.alive

let locate t p =
  match locate_opt t p with Some tr -> tr | None -> raise Not_found

let conflicts t foreign_trap = List.filter (trap_intersects foreign_trap) t.alive

let point_interior tr (x, y) = trap_contains tr (x, y)

let conflict_formula ~segments tr =
  let a = ref 0 and b = ref 0 and c = ref 0 in
  Array.iter
    (fun s ->
      if seg_intersects_trap s tr then begin
        let p, q = Segment.endpoints s in
        let inside = (if point_interior tr p then 1 else 0) + if point_interior tr q then 1 else 0 in
        match inside with
        | 0 -> incr a
        | 1 -> incr b
        | 2 -> incr c
        | _ -> assert false
      end)
    segments;
  (1 + !a + (2 * !b) + (3 * !c), (!a, !b, !c))

let validate_new_segment t s =
  let (x0, y0), (x1, y1) = Segment.endpoints s in
  let in_box (x, y) = x > 0.0 && x < 1.0 && y > 0.0 && y < 1.0 in
  if not (in_box (x0, y0) && in_box (x1, y1)) then
    invalid_arg "Trapmap: segment endpoints must lie strictly inside the unit square";
  if Hashtbl.mem t.xs x0 || Hashtbl.mem t.xs x1 || x0 = x1 then
    invalid_arg "Trapmap: endpoint x-coordinates must be pairwise distinct";
  List.iter
    (fun old ->
      if Segment.crosses old s then invalid_arg "Trapmap: segments must be non-crossing";
      let op, oq = Segment.endpoints old in
      let p, q = Segment.endpoints s in
      if op = p || op = q || oq = p || oq = q then
        invalid_arg "Trapmap: segments must not share endpoints")
    t.segs

let fresh t ~top ~bot ~lx ~rx =
  let tr = { tid = t.next_id; top; bot; lx; rx } in
  t.next_id <- t.next_id + 1;
  tr

let same_boundary a b =
  match (a, b) with
  | None, None -> true
  | Some s1, Some s2 -> Segment.endpoints s1 = Segment.endpoints s2
  | None, Some _ | Some _, None -> false

(* Partition the crossed trapezoids into maximal runs sharing the same
   boundary on one side, producing the merged new trapezoids on that side
   of the inserted segment. *)
let merge_side ~boundary_of ~mk ~px ~qx crossed =
  let rec runs acc current = function
    | [] -> List.rev (List.rev current :: acc)
    | tr :: rest -> (
        match current with
        | [] -> runs acc [ tr ] rest
        | prev :: _ when same_boundary (boundary_of prev) (boundary_of tr) ->
            runs acc (tr :: current) rest
        | _ :: _ -> runs (List.rev current :: acc) [ tr ] rest)
  in
  let groups = runs [] [] crossed in
  List.map
    (fun group ->
      match group with
      | [] -> assert false
      | first :: _ ->
          let last = List.nth group (List.length group - 1) in
          let lx = Float.max first.lx px and rx = Float.min last.rx qx in
          assert (lx < rx);
          mk (boundary_of first) lx rx)
    groups

(* The refinement core shared by the sequential and batch write paths:
   replace the corridor of trapezoids crossed by [s] in [alive] with its
   refinement. Pure with respect to the map: new trapezoids come from
   [fresh] and the caller owns all bookkeeping (alive list, segs, xs,
   ids). Returns [(created, crossed, alive')] with [created] in the fixed
   order left, right, uppers (left to right), lowers (left to right) and
   [crossed] sorted by left abscissa. *)
let apply_segment ~fresh ~alive s =
  let (px, _), (qx, _) = Segment.endpoints s in
  let crossed =
    List.filter (fun tr -> seg_intersects_trap s tr) alive
    |> List.sort (fun a b -> compare a.lx b.lx)
  in
  match crossed with
  | [] -> invalid_arg "Trapmap: segment intersects no trapezoid (outside the box?)"
  | first :: _ ->
      let last = List.nth crossed (List.length crossed - 1) in
      (* Contiguity of the crossed corridor. *)
      let rec check_contig = function
        | a :: (b :: _ as rest) ->
            if a.rx <> b.lx then failwith "Trapmap: crossed trapezoids not contiguous";
            check_contig rest
        | [ _ ] | [] -> ()
      in
      check_contig crossed;
      assert (first.lx < px && px < first.rx);
      assert (last.lx < qx && qx < last.rx);
      let left = fresh ~top:first.top ~bot:first.bot ~lx:first.lx ~rx:px in
      let right = fresh ~top:last.top ~bot:last.bot ~lx:qx ~rx:last.rx in
      let uppers =
        merge_side
          ~boundary_of:(fun tr -> tr.top)
          ~mk:(fun top lx rx -> fresh ~top ~bot:(Some s) ~lx ~rx)
          ~px ~qx crossed
      in
      let lowers =
        merge_side
          ~boundary_of:(fun tr -> tr.bot)
          ~mk:(fun bot lx rx -> fresh ~top:(Some s) ~bot ~lx ~rx)
          ~px ~qx crossed
      in
      let created = (left :: right :: uppers) @ lowers in
      (* Physical membership, not tid equality: batch workers build with
         placeholder tids, and the crossed trapezoids are by construction
         the same heap objects as the [alive] entries. *)
      let alive' = created @ List.filter (fun tr -> not (List.memq tr crossed)) alive in
      (created, crossed, alive')

let insert_delta t s =
  validate_new_segment t s;
  let created, crossed, alive = apply_segment ~fresh:(fresh t) ~alive:t.alive s in
  t.alive <- alive;
  let (x0, _), (x1, _) = Segment.endpoints s in
  Hashtbl.replace t.xs x0 ();
  Hashtbl.replace t.xs x1 ();
  t.segs <- s :: t.segs;
  (List.map trap_id created, List.map trap_id crossed)

let insert t s = ignore (insert_delta t s)

(* ---- Batch writes ---- *)

let placeholder_tid = -1

(* Pairwise validation inside the batch itself: the same conditions
   {!validate_new_segment} enforces against already-inserted segments,
   checked up front so an invalid batch is rejected before any mutation.
   (The per-key loop would stop at the first offender having already
   applied its predecessors — failing atomically is deliberately
   stronger.) *)
let validate_batch_pairs segs =
  let m = Array.length segs in
  for i = 0 to m - 1 do
    let ((xi0, _) as p), ((xi1, _) as q) = Segment.endpoints segs.(i) in
    for j = i + 1 to m - 1 do
      let ((xj0, _) as p'), ((xj1, _) as q') = Segment.endpoints segs.(j) in
      if xi0 = xj0 || xi0 = xj1 || xi1 = xj0 || xi1 = xj1 then
        invalid_arg "Trapmap: endpoint x-coordinates must be pairwise distinct";
      if Segment.crosses segs.(i) segs.(j) then
        invalid_arg "Trapmap: segments must be non-crossing";
      if p = p' || p = q' || q = p' || q = q' then
        invalid_arg "Trapmap: segments must not share endpoints"
    done
  done

let insert_batch ?pool t segs =
  let m = Array.length segs in
  if m = 0 then []
  else begin
    (* 1. Validation — each segment against the pre-state (reads only
       t.xs / t.segs, so it fans out), then pairwise inside the batch.
       All of it runs before any mutation. *)
    (match pool with
    | Some p when m > 1 ->
        Pool.parallel_for p ~lo:0 ~hi:m (fun i -> validate_new_segment t segs.(i))
    | _ -> Array.iter (validate_new_segment t) segs);
    validate_batch_pairs segs;
    (* 2. Crossed-corridor discovery against the pre-state alive list —
       the dominant O(m * T) cost, embarrassingly parallel. *)
    let pre_alive = t.alive in
    let pre_crossed = Array.make m [] in
    let discover i =
      pre_crossed.(i) <- List.filter (fun tr -> seg_intersects_trap segs.(i) tr) pre_alive
    in
    (match pool with
    | Some p when m > 1 -> Pool.parallel_for p ~lo:0 ~hi:m discover
    | _ ->
        for i = 0 to m - 1 do
          discover i
        done);
    (* 3. Union-find over batch positions: two segments interact only if
       their pre-state corridors share a trapezoid. Non-crossing segments
       with disjoint pre-state corridors refine disjoint regions — a
       trapezoid created inside one corridor stays inside the union of
       that corridor's pre-state regions, so a segment of another
       component can never cross it. *)
    let parent = Array.init m Fun.id in
    let rec find i =
      if parent.(i) = i then i
      else begin
        let r = find parent.(i) in
        parent.(i) <- r;
        r
      end
    in
    let union i j =
      let ri = find i and rj = find j in
      if ri <> rj then begin
        let a = min ri rj and b = max ri rj in
        parent.(b) <- a
      end
    in
    let owner = Hashtbl.create (2 * m) in
    for i = 0 to m - 1 do
      List.iter
        (fun tr ->
          match Hashtbl.find_opt owner tr.tid with
          | None -> Hashtbl.add owner tr.tid i
          | Some j -> union i j)
        pre_crossed.(i)
    done;
    (* Components in first-appearance (= ascending least member) order;
       members ascending; the local trapezoid universe is the dedup'd
       union of the members' pre-state corridors, in that same order —
       all deterministic, whatever the jobs count. *)
    let members_tbl = Hashtbl.create 16 in
    let roots_rev = ref [] in
    for i = 0 to m - 1 do
      let r = find i in
      match Hashtbl.find_opt members_tbl r with
      | None ->
          Hashtbl.add members_tbl r [ i ];
          roots_rev := r :: !roots_rev
      | Some l -> Hashtbl.replace members_tbl r (i :: l)
    done;
    let comps =
      List.rev !roots_rev
      |> List.map (fun r ->
             let members = List.rev (Hashtbl.find members_tbl r) in
             let seen = Hashtbl.create 16 in
             let universe =
               List.concat_map (fun i -> pre_crossed.(i)) members
               |> List.filter (fun tr ->
                      if Hashtbl.mem seen tr.tid then false
                      else begin
                        Hashtbl.add seen tr.tid ();
                        true
                      end)
             in
             (members, universe))
      |> Array.of_list
    in
    let ncomp = Array.length comps in
    (* 4. Apply each component's segments in batch order over its own
       local universe, on pool workers, with placeholder ids. Each
       member's apply-time corridor is exactly what it would be in the
       per-key loop: traps of other components and untouched traps never
       intersect it (they would have merged components). *)
    let per_seg = Array.make m ([], []) in
    let final_alive = Array.make ncomp [] in
    let run ci =
      let members, universe = comps.(ci) in
      let alive = ref universe in
      List.iter
        (fun i ->
          let fresh ~top ~bot ~lx ~rx = { tid = placeholder_tid; top; bot; lx; rx } in
          let created, crossed, alive' = apply_segment ~fresh ~alive:!alive segs.(i) in
          alive := alive';
          per_seg.(i) <- (created, crossed))
        members;
      final_alive.(ci) <- !alive
    in
    (match pool with
    | Some p when ncomp > 1 ->
        let weights =
          Array.map (fun (members, universe) -> List.length members + List.length universe) comps
        in
        Pool.parallel_for_tasks p ~weights run
    | _ ->
        for ci = 0 to ncomp - 1 do
          run ci
        done);
    (* 5. Sequential commit in global batch order: number created
       trapezoids exactly as the per-key loop would have, and replay the
       segs / xs bookkeeping. A crossed trapezoid that was itself created
       in this batch is already renumbered when its tid is read, because
       its creator occupies an earlier batch position. *)
    let deltas = Array.make m ([], []) in
    for i = 0 to m - 1 do
      let created, crossed = per_seg.(i) in
      List.iter
        (fun tr ->
          tr.tid <- t.next_id;
          t.next_id <- t.next_id + 1)
        created;
      deltas.(i) <- (List.map trap_id created, List.map trap_id crossed);
      let (x0, _), (x1, _) = Segment.endpoints segs.(i) in
      Hashtbl.replace t.xs x0 ();
      Hashtbl.replace t.xs x1 ();
      t.segs <- segs.(i) :: t.segs
    done;
    let touched = Hashtbl.create (2 * m) in
    Array.iter
      (fun (_members, universe) ->
        List.iter (fun tr -> Hashtbl.replace touched tr.tid ()) universe)
      comps;
    let untouched = List.filter (fun tr -> not (Hashtbl.mem touched tr.tid)) pre_alive in
    t.alive <- Array.fold_left (fun acc l -> acc @ l) [] final_alive @ untouched;
    Array.to_list deltas
  end

let build ?pool segments =
  let t = empty () in
  ignore (insert_batch ?pool t segments);
  t

let of_sorted ?pool segments =
  (* Canonical construction order: ascending endpoint tuples. From the
     empty map every segment crosses the single box trapezoid, so the
     whole batch is one component and the apply pass degenerates to the
     sequential insertion loop — the pool still accelerates the presort,
     validation and (trivially) discovery. The real parallel win is
     {!insert_batch} on an already-populated map, where corridors are
     small and mostly disjoint. *)
  let segments =
    Presort.sorted_distinct ?pool segments
      ~cmp:(fun a b -> compare (Segment.endpoints a) (Segment.endpoints b))
  in
  build ?pool segments

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let n = segment_count t in
  let count = trap_count t in
  if count <> (3 * n) + 1 then fail "Trapmap: %d traps for %d segments (expected %d)" count n ((3 * n) + 1);
  List.iter
    (fun tr ->
      if not (tr.lx < tr.rx) then fail "Trapmap: empty x-span";
      let mid = (tr.lx +. tr.rx) /. 2.0 in
      if not (bot_y tr mid < top_y tr mid) then fail "Trapmap: inverted trapezoid";
      if top_y tr tr.lx < bot_y tr tr.lx -. 1e-9 then fail "Trapmap: crossing boundaries (left)";
      if top_y tr tr.rx < bot_y tr tr.rx -. 1e-9 then fail "Trapmap: crossing boundaries (right)")
    t.alive;
  let area = List.fold_left (fun acc tr -> acc +. trap_area tr) 0.0 t.alive in
  if Float.abs (area -. 1.0) > 1e-6 then fail "Trapmap: areas sum to %.9f, expected 1" area;
  let arr = Array.of_list t.alive in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      if trap_intersects arr.(i) arr.(j) then
        fail "Trapmap: trapezoids %d and %d overlap" arr.(i).tid arr.(j).tid
    done
  done
