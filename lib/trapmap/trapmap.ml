module Segment = Skipweb_geom.Segment

type trap = {
  tid : int;
  top : Segment.t option;  (* None = bounding box top, y = 1 *)
  bot : Segment.t option;  (* None = bounding box bottom, y = 0 *)
  lx : float;
  rx : float;
}

type t = {
  mutable segs : Segment.t list;
  mutable alive : trap list;
  mutable next_id : int;
  xs : (float, unit) Hashtbl.t;  (* endpoint abscissae already used *)
}

let empty () =
  let box = { tid = 0; top = None; bot = None; lx = 0.0; rx = 1.0 } in
  { segs = []; alive = [ box ]; next_id = 1; xs = Hashtbl.create 16 }

let segment_count t = List.length t.segs
let trap_count t = List.length t.alive
let traps t = t.alive

let trap_id tr = tr.tid
let trap_top tr = tr.top
let trap_bottom tr = tr.bot
let trap_xspan tr = (tr.lx, tr.rx)

let boundary_y b x = match b with None -> assert false | Some s -> Segment.y_at s x

let top_y tr x = match tr.top with None -> 1.0 | Some _ -> boundary_y tr.top x
let bot_y tr x = match tr.bot with None -> 0.0 | Some _ -> boundary_y tr.bot x

let trap_contains tr (x, y) =
  tr.lx < x && x < tr.rx && bot_y tr x < y && y < top_y tr x

let trap_area tr =
  let h x = top_y tr x -. bot_y tr x in
  (tr.rx -. tr.lx) *. (h tr.lx +. h tr.rx) /. 2.0

(* The open x-subinterval of (lo, hi) where a linear function with endpoint
   values (glo, ghi) is strictly positive. *)
let positive_subinterval glo ghi lo hi =
  if glo > 0.0 && ghi > 0.0 then Some (lo, hi)
  else if glo <= 0.0 && ghi <= 0.0 then None
  else
    let r = lo +. ((hi -. lo) *. glo /. (glo -. ghi)) in
    if glo > 0.0 then Some (lo, r) else Some (r, hi)

let seg_intersects_trap s tr =
  let (x0, _), (x1, _) = Segment.endpoints s in
  let lo = Float.max x0 tr.lx and hi = Float.min x1 tr.rx in
  if lo >= hi then false
  else
    (* Both (top - s) and (s - bot) must be positive somewhere on (lo, hi);
       each is linear in x. *)
    let g1 l = top_y tr l -. Segment.y_at s l in
    let g2 l = Segment.y_at s l -. bot_y tr l in
    match
      ( positive_subinterval (g1 lo) (g1 hi) lo hi,
        positive_subinterval (g2 lo) (g2 hi) lo hi )
    with
    | Some (a1, b1), Some (a2, b2) -> Float.max a1 a2 < Float.min b1 b2
    | None, _ | Some _, None -> false

let trap_intersects t1 t2 =
  let lo = Float.max t1.lx t2.lx and hi = Float.min t1.rx t2.rx in
  if lo >= hi then false
  else
    (* f(x) = min(top1, top2) - max(bot1, bot2) is concave piecewise linear;
       it is positive somewhere on [lo, hi] iff it is positive at an
       endpoint or at a kink (where the two tops or the two bots cross). *)
    let f x = Float.min (top_y t1 x) (top_y t2 x) -. Float.max (bot_y t1 x) (bot_y t2 x) in
    let kink g1 g2 =
      (* abscissa where two linear functions g1, g2 agree, if inside *)
      let d_lo = g1 lo -. g2 lo and d_hi = g1 hi -. g2 hi in
      if (d_lo > 0.0 && d_hi < 0.0) || (d_lo < 0.0 && d_hi > 0.0) then
        Some (lo +. ((hi -. lo) *. d_lo /. (d_lo -. d_hi)))
      else None
    in
    let candidates =
      [ Some lo; Some hi; kink (top_y t1) (top_y t2); kink (bot_y t1) (bot_y t2) ]
    in
    List.exists (function Some x -> f x > 1e-12 | None -> false) candidates

let locate_opt t p = List.find_opt (fun tr -> trap_contains tr p) t.alive

let locate t p =
  match locate_opt t p with Some tr -> tr | None -> raise Not_found

let conflicts t foreign_trap = List.filter (trap_intersects foreign_trap) t.alive

let point_interior tr (x, y) = trap_contains tr (x, y)

let conflict_formula ~segments tr =
  let a = ref 0 and b = ref 0 and c = ref 0 in
  Array.iter
    (fun s ->
      if seg_intersects_trap s tr then begin
        let p, q = Segment.endpoints s in
        let inside = (if point_interior tr p then 1 else 0) + if point_interior tr q then 1 else 0 in
        match inside with
        | 0 -> incr a
        | 1 -> incr b
        | 2 -> incr c
        | _ -> assert false
      end)
    segments;
  (1 + !a + (2 * !b) + (3 * !c), (!a, !b, !c))

let validate_new_segment t s =
  let (x0, y0), (x1, y1) = Segment.endpoints s in
  let in_box (x, y) = x > 0.0 && x < 1.0 && y > 0.0 && y < 1.0 in
  if not (in_box (x0, y0) && in_box (x1, y1)) then
    invalid_arg "Trapmap: segment endpoints must lie strictly inside the unit square";
  if Hashtbl.mem t.xs x0 || Hashtbl.mem t.xs x1 || x0 = x1 then
    invalid_arg "Trapmap: endpoint x-coordinates must be pairwise distinct";
  List.iter
    (fun old ->
      if Segment.crosses old s then invalid_arg "Trapmap: segments must be non-crossing";
      let op, oq = Segment.endpoints old in
      let p, q = Segment.endpoints s in
      if op = p || op = q || oq = p || oq = q then
        invalid_arg "Trapmap: segments must not share endpoints")
    t.segs

let fresh t ~top ~bot ~lx ~rx =
  let tr = { tid = t.next_id; top; bot; lx; rx } in
  t.next_id <- t.next_id + 1;
  tr

let same_boundary a b =
  match (a, b) with
  | None, None -> true
  | Some s1, Some s2 -> Segment.endpoints s1 = Segment.endpoints s2
  | None, Some _ | Some _, None -> false

(* Partition the crossed trapezoids into maximal runs sharing the same
   boundary on one side, producing the merged new trapezoids on that side
   of the inserted segment. *)
let merge_side t ~boundary_of ~mk ~px ~qx crossed =
  let rec runs acc current = function
    | [] -> List.rev (List.rev current :: acc)
    | tr :: rest -> (
        match current with
        | [] -> runs acc [ tr ] rest
        | prev :: _ when same_boundary (boundary_of prev) (boundary_of tr) ->
            runs acc (tr :: current) rest
        | _ :: _ -> runs (List.rev current :: acc) [ tr ] rest)
  in
  let groups = runs [] [] crossed in
  List.map
    (fun group ->
      match group with
      | [] -> assert false
      | first :: _ ->
          let last = List.nth group (List.length group - 1) in
          let lx = Float.max first.lx px and rx = Float.min last.rx qx in
          assert (lx < rx);
          mk t (boundary_of first) lx rx)
    groups

let insert_delta t s =
  validate_new_segment t s;
  let (px, _), (qx, _) = Segment.endpoints s in
  let crossed =
    List.filter (fun tr -> seg_intersects_trap s tr) t.alive
    |> List.sort (fun a b -> compare a.lx b.lx)
  in
  let created =
    match crossed with
    | [] -> invalid_arg "Trapmap: segment intersects no trapezoid (outside the box?)"
    | first :: _ ->
        let last = List.nth crossed (List.length crossed - 1) in
        (* Contiguity of the crossed corridor. *)
        let rec check_contig = function
          | a :: (b :: _ as rest) ->
              if a.rx <> b.lx then failwith "Trapmap: crossed trapezoids not contiguous";
              check_contig rest
          | [ _ ] | [] -> ()
        in
        check_contig crossed;
        assert (first.lx < px && px < first.rx);
        assert (last.lx < qx && qx < last.rx);
        let left = fresh t ~top:first.top ~bot:first.bot ~lx:first.lx ~rx:px in
        let right = fresh t ~top:last.top ~bot:last.bot ~lx:qx ~rx:last.rx in
        let uppers =
          merge_side t
            ~boundary_of:(fun tr -> tr.top)
            ~mk:(fun t top lx rx -> fresh t ~top ~bot:(Some s) ~lx ~rx)
            ~px ~qx crossed
        in
        let lowers =
          merge_side t
            ~boundary_of:(fun tr -> tr.bot)
            ~mk:(fun t bot lx rx -> fresh t ~top:(Some s) ~bot ~lx ~rx)
            ~px ~qx crossed
        in
        let dead tr = List.exists (fun c -> c.tid = tr.tid) crossed in
        let created = (left :: right :: uppers) @ lowers in
        t.alive <- created @ List.filter (fun tr -> not (dead tr)) t.alive;
        created
  in
  let (x0, _), (x1, _) = Segment.endpoints s in
  Hashtbl.replace t.xs x0 ();
  Hashtbl.replace t.xs x1 ();
  t.segs <- s :: t.segs;
  (List.map trap_id created, List.map trap_id crossed)

let insert t s = ignore (insert_delta t s)

let build segments =
  let t = empty () in
  Array.iter (fun s -> insert t s) segments;
  t

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let n = segment_count t in
  let count = trap_count t in
  if count <> (3 * n) + 1 then fail "Trapmap: %d traps for %d segments (expected %d)" count n ((3 * n) + 1);
  List.iter
    (fun tr ->
      if not (tr.lx < tr.rx) then fail "Trapmap: empty x-span";
      let mid = (tr.lx +. tr.rx) /. 2.0 in
      if not (bot_y tr mid < top_y tr mid) then fail "Trapmap: inverted trapezoid";
      if top_y tr tr.lx < bot_y tr tr.lx -. 1e-9 then fail "Trapmap: crossing boundaries (left)";
      if top_y tr tr.rx < bot_y tr tr.rx -. 1e-9 then fail "Trapmap: crossing boundaries (right)")
    t.alive;
  let area = List.fold_left (fun acc tr -> acc +. trap_area tr) 0.0 t.alive in
  if Float.abs (area -. 1.0) > 1e-6 then fail "Trapmap: areas sum to %.9f, expected 1" area;
  let arr = Array.of_list t.alive in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      if trap_intersects arr.(i) arr.(j) then
        fail "Trapmap: trapezoids %d and %d overlap" arr.(i).tid arr.(j).tid
    done
  done
