type host = int

type event =
  | Hop of { src : host; dst : host; label : string option }
  | Span_open of { name : string; level : int option }
  | Span_close of { name : string; note : string option }

type t = {
  mutable events : event list;  (* newest first *)
  mutable stack : (string * int option) list;  (* open spans, innermost first *)
}

let create () = { events = []; stack = [] }

let clear t =
  t.events <- [];
  t.stack <- []

let record t e = t.events <- e :: t.events

let hop t ?label ~src ~dst () = record t (Hop { src; dst; label })

let span_open t ?level name =
  t.stack <- (name, level) :: t.stack;
  record t (Span_open { name; level })

let span_close t ?note () =
  match t.stack with
  | [] -> invalid_arg "Trace.span_close: no open span"
  | (name, _) :: rest ->
      t.stack <- rest;
      record t (Span_close { name; note })

let events t = List.rev t.events

let total_hops t =
  List.fold_left (fun acc e -> match e with Hop _ -> acc + 1 | _ -> acc) 0 t.events

(* A hop belongs to the level of the innermost enclosing span that has one. *)
let attribute t =
  let leveled = Hashtbl.create 16 in
  let unattributed = ref 0 in
  let stack = ref [] in
  List.iter
    (fun e ->
      match e with
      | Span_open { level; _ } -> stack := level :: !stack
      | Span_close _ -> ( match !stack with [] -> () | _ :: rest -> stack := rest)
      | Hop _ -> (
          match List.find_opt Option.is_some !stack with
          | Some (Some level) ->
              Hashtbl.replace leveled level
                (1 + try Hashtbl.find leveled level with Not_found -> 0)
          | Some None | None -> incr unattributed))
    (events t);
  (leveled, !unattributed)

let per_level_hops t =
  let leveled, _ = attribute t in
  Hashtbl.fold (fun level n acc -> (level, n) :: acc) leveled []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let unattributed_hops t =
  let _, u = attribute t in
  u

let render t =
  let buf = Buffer.create 256 in
  let depth = ref 0 in
  let indent () = Buffer.add_string buf (String.make (2 * !depth) ' ') in
  List.iter
    (fun e ->
      match e with
      | Span_open { name; level } ->
          indent ();
          (match level with
          | Some l -> Buffer.add_string buf (Printf.sprintf "%s (level %d)\n" name l)
          | None -> Buffer.add_string buf (name ^ "\n"));
          incr depth
      | Span_close { note; _ } ->
          (match note with
          | Some n ->
              indent ();
              Buffer.add_string buf ("= " ^ n ^ "\n")
          | None -> ());
          if !depth > 0 then decr depth
      | Hop { src; dst; label } ->
          indent ();
          Buffer.add_string buf
            (match label with
            | Some l -> Printf.sprintf "%4d -> %-4d %s\n" src dst l
            | None -> Printf.sprintf "%4d -> %d\n" src dst))
    (events t);
  Buffer.add_string buf (Printf.sprintf "total: %d hops\n" (total_hops t));
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let jopt_str = function None -> "null" | Some s -> Printf.sprintf "\"%s\"" (json_escape s) in
  let jopt_int = function None -> "null" | Some i -> string_of_int i in
  let event_json = function
    | Hop { src; dst; label } ->
        Printf.sprintf "{\"type\": \"hop\", \"src\": %d, \"dst\": %d, \"label\": %s}" src dst
          (jopt_str label)
    | Span_open { name; level } ->
        Printf.sprintf "{\"type\": \"span_open\", \"name\": \"%s\", \"level\": %s}"
          (json_escape name) (jopt_int level)
    | Span_close { name; note } ->
        Printf.sprintf "{\"type\": \"span_close\", \"name\": \"%s\", \"note\": %s}"
          (json_escape name) (jopt_str note)
  in
  Printf.sprintf "[%s]" (String.concat ", " (List.map event_json (events t)))
