(** Session tracing for the cost-model simulator.

    A trace records, for one operation (one {!Network.session}), the ordered
    sequence of host-boundary crossings — each crossing is exactly one
    message of the paper's cost model — interleaved with {e spans}: nestable,
    named phases of the operation, optionally tagged with a hierarchy level.
    Structures open one span per refinement level, so a recorded query
    decomposes into "messages at level ℓ" and the per-level totals measure
    the set-halving lemmas level by level rather than in aggregate.

    Tracing is strictly opt-in, per session: {!Network.start} takes an
    optional trace, and when none is supplied the simulator performs no
    trace work at all, so enabling observability elsewhere cannot perturb
    measured message counts (the bench harness asserts this). *)

type host = int

type event =
  | Hop of { src : host; dst : host; label : string option }
      (** One message: the session moved from host [src] to host [dst].
          [label] names the kind of pointer walked (structure-specific). *)
  | Span_open of { name : string; level : int option }
  | Span_close of { name : string; note : string option }
      (** [note] carries per-span measurements, e.g. the conflict-set size
          of one refinement step. *)

type t
(** A mutable event buffer for one traced operation. *)

val create : unit -> t

val clear : t -> unit
(** Drop all events and any open spans, for buffer reuse across ops. *)

val hop : t -> ?label:string -> src:host -> dst:host -> unit -> unit
(** Record one boundary crossing. Called by {!Network.goto}; structure code
    normally never calls this directly. *)

val span_open : t -> ?level:int -> string -> unit

val span_close : t -> ?note:string -> unit -> unit
(** Close the innermost open span. Raises [Invalid_argument] if no span is
    open. *)

val events : t -> event list
(** All recorded events, oldest first. *)

(** {1 Analysis} *)

val total_hops : t -> int
(** Number of [Hop] events — equals the traced session's
    {!Network.messages} when every [goto] of the session carried this
    trace. *)

val per_level_hops : t -> (int * int) list
(** Hops grouped by the level of the innermost enclosing span that carries
    one, as [(level, hops)] sorted by level ascending. Levels with no hops
    are omitted. *)

val unattributed_hops : t -> int
(** Hops recorded outside any leveled span. [total_hops] equals the sum of
    {!per_level_hops} counts plus this. *)

(** {1 Output} *)

val render : t -> string
(** Human-readable hop tree: spans indent their contents, hops print as
    [src -> dst label], span notes print as [= note]. *)

val to_json : t -> string
(** The event list as a JSON array, machine-readable. *)

val json_escape : string -> string
(** Escape a string for embedding in JSON output (shared by the bench
    harness's metrics blocks). *)
