(** Placement policies: how a structure's nodes, links and ranges are
    assigned to hosts (§2.4 "Distributed Blocking", general case).

    A placement is a pure function from an abstract item index to a host.
    The improved contiguous blocking for one-dimensional data (§2.4.1) is
    more involved and lives with the 1-d skip-web itself
    ({!Skipweb_core.Skipweb_1d}); the policies here cover the
    "arbitrary assignment, O(M) per host" general scheme and the baselines. *)

type t = int -> Network.host

val one_per_host : t
(** Item [i] lives on host [i] (the H = n regime of skip graphs). *)

val modulo : hosts:int -> t
(** Round robin: item [i] on host [i mod hosts]. Scatters consecutive items
    across hosts, the worst case for locality. *)

val chunked : chunk:int -> hosts:int -> t
(** Contiguous chunks: items [i*chunk .. (i+1)*chunk - 1] share a host,
    wrapping modulo [hosts]. Requires [chunk >= 1]. *)

val hashed : seed:int -> hosts:int -> t
(** Pseudo-random placement, deterministic in [seed]: the "arbitrary"
    assignment of §2.4. *)

val replica_slot : seed:int -> origin:int -> level:int -> k:int -> int
(** Which of [k] cached copies a query should read: a pure hash of
    [(seed, origin, level)] into [\[0, k)], so every query from the same
    originating element deterministically picks the same copy — runs are
    bit-identical for fixed parameters and independent of job count — while
    distinct origins spread across all [k] copies, splitting a hot range's
    load [k] ways. Always [0] when [k <= 1] (slot 0 is the primary), which
    is what makes an inactive cache byte-identical to no cache at all. *)

val charge_all : Network.t -> t -> items:int -> unit
(** Charge one memory unit to the owning host of each of [items] items. *)
