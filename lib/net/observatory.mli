(** The congestion observatory: streaming telemetry over the simulator.

    {!Trace} answers "where did {e one} operation's messages go"; the
    observatory answers "where does a {e workload's} load go" — which
    hosts the upper levels of a skip structure concentrate traffic on,
    how unequal the per-host load is (percentiles and Gini), and what
    the per-operation message distribution looks like — in memory
    independent of the operation count. It is the instrumentation the
    ROADMAP's level-caching / hotspot-flattening work reads.

    Feeding paths, all charge-invisible (no counter is ever touched):
    {ul
    {- {b Streaming}: {!attach} installs a {!Network.tap}; every
       finished session reports its visit list into the space-saving
       heavy-hitter summary and its message count into a quantile
       sketch. Thread-safe (a mutex serializes taps from worker
       domains), but the space-saving eviction sequence then depends on
       arrival order — use it for sequential phases (the CLI).}
    {- {b Post-phase}: {!observe_traffic} folds the network's exact
       per-host traffic counters in as weighted hits, in host order —
       deterministic for any [--jobs] count, since the counters are
       order-independent sums. {!merge_message_shard} merges per-chunk
       message sketches (partition-independent, see {!Sketch}). The
       hotspot bench uses these.}
    {- {b Attribution}: {!observe_trace} accumulates a sampled traced
       operation's per-level hop counts, reusing {!Trace}'s span
       attribution, so workload load decomposes by hierarchy level.}} *)

module Sketch = Skipweb_util.Sketch
module Stats = Skipweb_util.Stats

(** Space-saving heavy hitters (Metwally–Agrawal–El Abbadi) over
    integer keys: at most [k] monitored entries regardless of key-space
    size. Estimates never undercount ([est >= true]) and overcount by
    at most the reported error ([est - err <= true]); any key with true
    count above [total/k] is guaranteed monitored. Deterministic for
    one hit sequence: eviction picks the unique (count, key) minimum. *)
module Heavy_hitters : sig
  type t

  val create : k:int -> t
  (** Requires [k >= 1]. *)

  val hit : t -> ?count:int -> int -> unit
  (** Record [count] (default 1, must be >= 1) arrivals of a key. *)

  val top : t -> (int * int * int) list
  (** Monitored entries by descending estimate (ties by ascending key),
      as [(key, estimate, max_overestimate)]. *)

  val total : t -> int
  (** Total hits fed in. *)

  val capacity : t -> int
  val monitored : t -> int
end

(** {1 Congestion snapshots} *)

type congestion = {
  live : int;
  total_traffic : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
  gini : float;
}

val gini : float array -> float
(** Gini coefficient of a non-negative load vector: 0 = perfectly even,
    approaching 1 = everything on one element. 0 for empty or all-zero
    input. *)

val congestion_of : Network.t -> congestion
(** Percentiles and Gini of per-host traffic over {e live} hosts — the
    congestion-flattening chart's y-axis. Reads only the per-host
    counters the network already carries: no per-operation state. *)

val congestion_to_json : congestion -> string

val top_share : Network.t -> m:int -> float
(** Fraction of all live-host traffic served by the [m] busiest live
    hosts, in [\[0, 1\]] (0 when there is no traffic). The replica-aware
    congestion view: caching the upper levels across [k] hosts leaves
    total traffic unchanged and divides the hottest hosts' share by [k],
    so this is the ratio the E20 serving bench shows flattening.
    Requires [m >= 1]. *)

(** {1 The observatory} *)

type t

val create : ?k:int -> ?alpha:float -> ?exact_cap:int -> unit -> t
(** [k] (default 16) bounds the heavy-hitter table; [alpha] /
    [exact_cap] configure the message-count sketch (see
    {!Sketch.create}). *)

val attach : t -> Network.t -> unit
(** Install this observatory as the network's tap: every finished
    session streams in. Epoch operation (see {!Network.set_tap}). *)

val detach : Network.t -> unit
(** Remove the network's tap. *)

val observe_op : t -> visits:Network.host list -> msgs:int -> unit
(** What the tap calls: one finished operation's visit list and message
    count. Thread-safe. *)

val observe_traffic : t -> Network.t -> unit
(** Fold the network's current per-host traffic counters into the
    heavy-hitter summary as weighted hits, ascending host order.
    Deterministic post-phase alternative to the streaming tap; feed a
    given window through exactly one of the two paths, not both. *)

val observe_messages : t -> int -> unit
(** Record one operation's message count into the sketch (no visit
    stream available). Thread-safe. *)

val merge_message_shard : t -> ops:int -> Sketch.t -> unit
(** Merge a per-chunk message-sketch shard recorded by a parallel
    phase, adding [ops] operations. Partition-independent: the merged
    sketch depends only on the union of samples. *)

val observe_trace : t -> Trace.t -> unit
(** Accumulate a sampled traced operation's per-level hop counts. *)

(** {1 Reading} *)

val ops : t -> int
val traced_ops : t -> int

val hot_hosts : t -> (Network.host * int * int) list
(** [(host, visit_estimate, max_overestimate)] by descending estimate. *)

val visits_seen : t -> int

val message_summary : t -> Stats.summary option
val message_sketch : t -> Sketch.t

val per_level_hops : t -> (int * int) list
(** Sampled per-level hop totals, ascending level. *)

val unattributed_hops : t -> int

val hot_hosts_to_json : t -> string
val per_level_to_json : t -> string
