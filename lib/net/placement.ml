type t = int -> Network.host

let one_per_host i = i

let modulo ~hosts i = i mod hosts

let chunked ~chunk ~hosts i =
  if chunk < 1 then invalid_arg "Placement.chunked: chunk must be >= 1";
  i / chunk mod hosts

let hashed ~seed ~hosts i = Skipweb_util.Prng.hash2 seed i mod hosts

let replica_slot ~seed ~origin ~level ~k =
  if k <= 1 then 0 else Skipweb_util.Prng.hash3 seed origin level mod k

let charge_all net place ~items =
  for i = 0 to items - 1 do
    Network.charge_memory net (place i) 1
  done
