(* The congestion observatory: streaming telemetry over the cost-model
   simulator. Where Trace answers "where did *one* operation's messages
   go", the observatory answers "where does a *workload's* load go" —
   which hosts the upper levels concentrate traffic on, how unequal the
   per-host load is, and what the per-operation message distribution
   looks like — all in memory independent of the operation count. *)

module Sketch = Skipweb_util.Sketch
module Stats = Skipweb_util.Stats

(* ---------------- space-saving heavy hitters ---------------- *)

(* Metwally–Agrawal–El Abbadi space-saving over integer keys: at most
   [k] monitored entries; an unmonitored arrival evicts the minimum
   counter m and enters with count m + hit, error m. Guarantees:
   est >= true count, and est - err <= true count; every key whose true
   count exceeds total/k is monitored. Eviction picks the (count, key)
   minimum, which is unique, so the summary is deterministic for one
   hit sequence regardless of hash-table iteration order. *)
module Heavy_hitters = struct
  type entry = { key : int; mutable cnt : int; mutable err : int }

  type t = { k : int; tbl : (int, entry) Hashtbl.t; mutable total : int }

  let create ~k =
    if k < 1 then invalid_arg "Heavy_hitters.create: k must be >= 1";
    { k; tbl = Hashtbl.create (2 * k); total = 0 }

  let capacity t = t.k
  let total t = t.total
  let monitored t = Hashtbl.length t.tbl

  let hit t ?(count = 1) key =
    if count < 1 then invalid_arg "Heavy_hitters.hit: count must be >= 1";
    t.total <- t.total + count;
    match Hashtbl.find_opt t.tbl key with
    | Some e -> e.cnt <- e.cnt + count
    | None ->
        if Hashtbl.length t.tbl < t.k then Hashtbl.replace t.tbl key { key; cnt = count; err = 0 }
        else begin
          let victim =
            Hashtbl.fold
              (fun _ e acc ->
                match acc with
                | None -> Some e
                | Some b -> if (e.cnt, e.key) < (b.cnt, b.key) then Some e else acc)
              t.tbl None
          in
          match victim with
          | None -> assert false
          | Some v ->
              Hashtbl.remove t.tbl v.key;
              Hashtbl.replace t.tbl key { key; cnt = v.cnt + count; err = v.cnt }
        end

  (* Monitored entries by descending estimated count (ties by ascending
     key): (key, estimate, max overestimate). *)
  let top t =
    Hashtbl.fold (fun _ e acc -> (e.key, e.cnt, e.err) :: acc) t.tbl []
    |> List.sort (fun (k1, c1, _) (k2, c2, _) -> compare (-c1, k1) (-c2, k2))
end

(* ---------------- inequality / percentile export ---------------- *)

type congestion = {
  live : int;
  total_traffic : int;  (* visits over live hosts *)
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
  gini : float;
}

(* Gini coefficient of a non-negative load vector: 0 = perfectly even,
   -> 1 = all load on one host. Computed from the sorted vector as
   (2 sum_i i x_i) / (n sum x) - (n + 1)/n with 1-based i. *)
let gini xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let a = Array.copy xs in
    Array.sort compare a;
    let sum = Array.fold_left ( +. ) 0.0 a in
    if sum <= 0.0 then 0.0
    else begin
      let weighted = ref 0.0 in
      Array.iteri (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x)) a;
      let nf = float_of_int n in
      (2.0 *. !weighted /. (nf *. sum)) -. ((nf +. 1.0) /. nf)
    end
  end

(* Snapshot of the network's per-host traffic over *live* hosts: dead
   hosts serve nothing, so including them would understate inequality.
   O(H log H) over the per-host array the network already carries — no
   per-operation state. *)
let congestion_of net =
  let loads = ref [] in
  let live = ref 0 in
  for h = Network.host_count net - 1 downto 0 do
    if Network.alive net h then begin
      incr live;
      loads := float_of_int (Network.traffic net h) :: !loads
    end
  done;
  let a = Array.of_list !loads in
  Array.sort compare a;
  let total = Array.fold_left (fun acc x -> acc + int_of_float x) 0 a in
  let n = Array.length a in
  {
    live = !live;
    total_traffic = total;
    mean = (if n = 0 then 0.0 else float_of_int total /. float_of_int n);
    p50 = (if n = 0 then 0.0 else Stats.percentile a 0.5);
    p90 = (if n = 0 then 0.0 else Stats.percentile a 0.9);
    p99 = (if n = 0 then 0.0 else Stats.percentile a 0.99);
    max = (if n = 0 then 0.0 else a.(n - 1));
    gini = gini a;
  }

(* Share of total live-host traffic served by the [m] busiest live hosts —
   the replica-aware flattening metric: a level cache does not change the
   total (queries still visit the same number of ranges), it divides the
   busiest hosts' share by the replica count, which is exactly what this
   ratio shows falling. 0 when there is no traffic. *)
let top_share net ~m =
  if m < 1 then invalid_arg "Observatory.top_share: m must be >= 1";
  let loads = ref [] in
  for h = Network.host_count net - 1 downto 0 do
    if Network.alive net h then loads := Network.traffic net h :: !loads
  done;
  let a = Array.of_list !loads in
  Array.sort (fun x y -> compare y x) a;
  let total = Array.fold_left ( + ) 0 a in
  if total = 0 then 0.0
  else begin
    let top = ref 0 in
    for i = 0 to min m (Array.length a) - 1 do
      top := !top + a.(i)
    done;
    float_of_int !top /. float_of_int total
  end

let congestion_to_json c =
  Printf.sprintf
    "{\"live_hosts\": %d, \"total_traffic\": %d, \"mean\": %g, \"p50\": %g, \"p90\": %g, \
     \"p99\": %g, \"max\": %g, \"gini\": %.6f}"
    c.live c.total_traffic c.mean c.p50 c.p90 c.p99 c.max c.gini

(* ---------------- the observatory ---------------- *)

type t = {
  hh : Heavy_hitters.t;
  msgs : Sketch.t;  (* per-operation message counts *)
  mutable ops : int;
  per_level : (int, int ref) Hashtbl.t;  (* level -> hops, from sampled traces *)
  mutable unattributed : int;
  mutable traced_ops : int;
  mu : Mutex.t;  (* taps fire from whichever domain finishes a session *)
}

let create ?(k = 16) ?(alpha = 0.01) ?(exact_cap = 256) () =
  {
    hh = Heavy_hitters.create ~k;
    msgs = Sketch.create ~alpha ~exact_cap ();
    ops = 0;
    per_level = Hashtbl.create 16;
    unattributed = 0;
    traced_ops = 0;
    mu = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let observe_op t ~visits ~msgs =
  locked t (fun () ->
      t.ops <- t.ops + 1;
      Sketch.observe_int t.msgs msgs;
      List.iter (fun h -> Heavy_hitters.hit t.hh h) visits)

let attach t net = Network.set_tap net (Some (fun ~visits ~msgs -> observe_op t ~visits ~msgs))

let detach net = Network.set_tap net None

(* Post-phase alternative to the streaming tap: fold the network's
   exact per-host visit counters into the heavy-hitter summary as
   weighted hits, in ascending host order. Used after parallel query
   batches, where per-visit tap feeding would make the space-saving
   eviction sequence depend on domain interleaving; the per-host
   counters are order-independent sums, so this path is deterministic
   for any jobs count. *)
let observe_traffic t net =
  locked t (fun () ->
      for h = 0 to Network.host_count net - 1 do
        let v = Network.traffic net h in
        if v > 0 then Heavy_hitters.hit t.hh ~count:v h
      done)

let observe_messages t msgs =
  locked t (fun () ->
      t.ops <- t.ops + 1;
      Sketch.observe_int t.msgs msgs)

(* Merge a per-chunk message-sketch shard (partition-independent). *)
let merge_message_shard t ~ops shard =
  locked t (fun () ->
      t.ops <- t.ops + ops;
      Sketch.merge t.msgs shard)

let observe_trace t tr =
  locked t (fun () ->
      t.traced_ops <- t.traced_ops + 1;
      t.unattributed <- t.unattributed + Trace.unattributed_hops tr;
      List.iter
        (fun (level, hops) ->
          match Hashtbl.find_opt t.per_level level with
          | Some r -> r := !r + hops
          | None -> Hashtbl.replace t.per_level level (ref hops))
        (Trace.per_level_hops tr))

let ops t = t.ops
let traced_ops t = t.traced_ops
let unattributed_hops t = t.unattributed

let per_level_hops t =
  Hashtbl.fold (fun level r acc -> (level, !r) :: acc) t.per_level []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let hot_hosts t = Heavy_hitters.top t.hh
let visits_seen t = Heavy_hitters.total t.hh

let message_sketch t = t.msgs

let message_summary t = if Sketch.count t.msgs = 0 then None else Some (Sketch.summary t.msgs)

let hot_hosts_to_json t =
  "["
  ^ String.concat ", "
      (List.map
         (fun (h, c, e) -> Printf.sprintf "{\"host\": %d, \"visits\": %d, \"err\": %d}" h c e)
         (hot_hosts t))
  ^ "]"

let per_level_to_json t =
  "["
  ^ String.concat ", "
      (List.map
         (fun (l, h) -> Printf.sprintf "{\"level\": %d, \"hops\": %d}" l h)
         (per_level_hops t))
  ^ "]"
