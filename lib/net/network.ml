type host = int

exception Host_dead of host

(* Every shared workload counter is an atomic so that sessions (the
   parallel read path) and deferred charge buffers (the parallel write
   path) can commit concurrently from different domains; every committed
   quantity is a sum, and sums are order-independent, so the totals are
   bit-identical to a sequential run.

   Liveness is a plain flag array: [kill]/[revive] are epoch operations
   that must not run concurrently with in-flight sessions (the structures
   serialize failure epochs against query batches, like updates), so the
   flags need no atomicity — sessions only read them. *)
type tap = visits:host list -> msgs:int -> unit

type t = {
  hosts : int;
  memory : int Atomic.t array;
  traffic : int Atomic.t array;
  total_messages : int Atomic.t;
  sessions : int Atomic.t;
  up : bool array;  (* liveness flag per host *)
  mutable live : int;  (* number of true entries in [up] *)
  mutable tap : tap option;  (* observability tap, called at [finish] *)
}

let create ~hosts =
  if hosts < 1 then invalid_arg "Network.create: need at least one host";
  {
    hosts;
    memory = Array.init hosts (fun _ -> Atomic.make 0);
    traffic = Array.init hosts (fun _ -> Atomic.make 0);
    total_messages = Atomic.make 0;
    sessions = Atomic.make 0;
    up = Array.make hosts true;
    live = hosts;
    tap = None;
  }

let set_tap t tap = t.tap <- tap

let host_count t = t.hosts

let check_host t h =
  if h < 0 || h >= t.hosts then invalid_arg (Printf.sprintf "Network: bad host %d (H=%d)" h t.hosts)

(* ------- failure model ------- *)

let alive t h =
  check_host t h;
  t.up.(h)

let live_hosts t = t.live

let kill t h =
  check_host t h;
  if t.up.(h) then begin
    if t.live = 1 then invalid_arg "Network.kill: cannot kill the last live host";
    t.up.(h) <- false;
    t.live <- t.live - 1
  end

let revive t h =
  check_host t h;
  if not t.up.(h) then begin
    t.up.(h) <- true;
    t.live <- t.live + 1
  end

let charge_memory t h k =
  check_host t h;
  let old = Atomic.fetch_and_add t.memory.(h) k in
  assert (old + k >= 0)

let memory t h =
  check_host t h;
  Atomic.get t.memory.(h)

let max_memory t = Array.fold_left (fun acc a -> max acc (Atomic.get a)) 0 t.memory

let total_memory t = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.memory

let mean_memory t = float_of_int (total_memory t) /. float_of_int t.live

let stranded_memory t =
  let acc = ref 0 in
  Array.iteri (fun h a -> if not t.up.(h) then acc := !acc + Atomic.get a) t.memory;
  !acc

(* A deferred memory-charge buffer: the write-path analogue of a session.
   It nets its charges per host locally and commits them to the shared
   atomic counters only at [commit_charges], so any number of buffers may
   fill concurrently on different domains. Unlike a session it counts
   nothing else — no messages, no traffic, no sessions_started — because
   host-side structure maintenance is not an operation in the cost model. *)
type charges = {
  cnet : t;
  deltas : (host, int ref) Hashtbl.t;
  mutable committed : bool;
}

let deferred_charges t = { cnet = t; deltas = Hashtbl.create 16; committed = false }

let charge c h k =
  if c.committed then invalid_arg "Network.charge: buffer already committed";
  check_host c.cnet h;
  match Hashtbl.find_opt c.deltas h with
  | Some r -> r := !r + k
  | None -> Hashtbl.replace c.deltas h (ref k)

let commit_charges c =
  if not c.committed then begin
    c.committed <- true;
    Hashtbl.iter
      (fun h r -> if !r <> 0 then ignore (Atomic.fetch_and_add c.cnet.memory.(h) !r))
      c.deltas;
    Hashtbl.reset c.deltas
  end

(* A session buffers everything it will charge the network — its message
   count and the reversed list of host visits — and commits the lot in
   [finish]. Until then it touches no shared state, so any number of
   sessions may run concurrently on different domains; the committed
   quantities are sums, and sums are order-independent, so the totals are
   bit-identical to a sequential run of the same sessions. *)
type session = {
  net : t;
  mutable at : host;
  mutable msgs : int;
  mutable visits : host list;  (* reverse order, includes the start host *)
  mutable finished : bool;
  trace : Trace.t option;
}

let start ?trace t h =
  check_host t h;
  if not t.up.(h) then raise (Host_dead h);
  { net = t; at = h; msgs = 0; visits = [ h ]; finished = false; trace }

let current s = s.at

let session_trace s = s.trace

let goto ?label s h =
  if s.finished then invalid_arg "Network.goto: session already finished";
  check_host s.net h;
  if not s.net.up.(h) then raise (Host_dead h);
  if h <> s.at then begin
    (match s.trace with None -> () | Some tr -> Trace.hop tr ?label ~src:s.at ~dst:h ());
    s.msgs <- s.msgs + 1;
    s.visits <- h :: s.visits;
    s.at <- h
  end

let messages s = s.msgs

let finish s =
  if not s.finished then begin
    s.finished <- true;
    (* The tap observes what the session is about to commit; it reads
       only session-local state and touches no counter, so attaching
       one cannot change any measured cost. *)
    (match s.net.tap with None -> () | Some f -> f ~visits:s.visits ~msgs:s.msgs);
    Atomic.incr s.net.sessions;
    if s.msgs > 0 then ignore (Atomic.fetch_and_add s.net.total_messages s.msgs);
    List.iter (fun h -> Atomic.incr s.net.traffic.(h)) s.visits;
    s.visits <- []
  end

let total_messages t = Atomic.get t.total_messages

let sessions_started t = Atomic.get t.sessions

let traffic t h =
  check_host t h;
  Atomic.get t.traffic.(h)

let max_traffic t = Array.fold_left (fun acc a -> max acc (Atomic.get a)) 0 t.traffic

let mean_traffic t =
  float_of_int (Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.traffic)
  /. float_of_int t.live

let reset_traffic t =
  Array.iter (fun a -> Atomic.set a 0) t.traffic;
  Atomic.set t.total_messages 0;
  Atomic.set t.sessions 0

let congestion t ~items =
  (* Only live hosts serve queries: the most loaded *serving* host, and
     the query-start share spread over the hosts actually up. A dead
     host's stranded memory is unreachable, not congested. *)
  let worst = ref 0 in
  Array.iteri (fun h a -> if t.up.(h) then worst := max !worst (Atomic.get a)) t.memory;
  float_of_int !worst +. (float_of_int items /. float_of_int t.live)
