type host = int

(* Shared workload counters are atomics so that sessions running on
   different domains can commit concurrently; memory charges stay plain
   (updates are serialized per the paper's §4 model, and only updates
   charge memory). *)
type t = {
  hosts : int;
  memory : int array;
  traffic : int Atomic.t array;
  total_messages : int Atomic.t;
  sessions : int Atomic.t;
}

let create ~hosts =
  if hosts < 1 then invalid_arg "Network.create: need at least one host";
  {
    hosts;
    memory = Array.make hosts 0;
    traffic = Array.init hosts (fun _ -> Atomic.make 0);
    total_messages = Atomic.make 0;
    sessions = Atomic.make 0;
  }

let host_count t = t.hosts

let check_host t h =
  if h < 0 || h >= t.hosts then invalid_arg (Printf.sprintf "Network: bad host %d (H=%d)" h t.hosts)

let charge_memory t h k =
  check_host t h;
  t.memory.(h) <- t.memory.(h) + k;
  assert (t.memory.(h) >= 0)

let memory t h =
  check_host t h;
  t.memory.(h)

let max_memory t = Array.fold_left max 0 t.memory

let total_memory t = Array.fold_left ( + ) 0 t.memory

let mean_memory t = float_of_int (total_memory t) /. float_of_int t.hosts

(* A session buffers everything it will charge the network — its message
   count and the reversed list of host visits — and commits the lot in
   [finish]. Until then it touches no shared state, so any number of
   sessions may run concurrently on different domains; the committed
   quantities are sums, and sums are order-independent, so the totals are
   bit-identical to a sequential run of the same sessions. *)
type session = {
  net : t;
  mutable at : host;
  mutable msgs : int;
  mutable visits : host list;  (* reverse order, includes the start host *)
  mutable finished : bool;
  trace : Trace.t option;
}

let start ?trace t h =
  check_host t h;
  { net = t; at = h; msgs = 0; visits = [ h ]; finished = false; trace }

let current s = s.at

let session_trace s = s.trace

let goto ?label s h =
  if s.finished then invalid_arg "Network.goto: session already finished";
  check_host s.net h;
  if h <> s.at then begin
    (match s.trace with None -> () | Some tr -> Trace.hop tr ?label ~src:s.at ~dst:h ());
    s.msgs <- s.msgs + 1;
    s.visits <- h :: s.visits;
    s.at <- h
  end

let messages s = s.msgs

let finish s =
  if not s.finished then begin
    s.finished <- true;
    Atomic.incr s.net.sessions;
    if s.msgs > 0 then ignore (Atomic.fetch_and_add s.net.total_messages s.msgs);
    List.iter (fun h -> Atomic.incr s.net.traffic.(h)) s.visits;
    s.visits <- []
  end

let total_messages t = Atomic.get t.total_messages

let sessions_started t = Atomic.get t.sessions

let traffic t h =
  check_host t h;
  Atomic.get t.traffic.(h)

let max_traffic t = Array.fold_left (fun acc a -> max acc (Atomic.get a)) 0 t.traffic

let mean_traffic t =
  float_of_int (Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.traffic)
  /. float_of_int t.hosts

let reset_traffic t =
  Array.iter (fun a -> Atomic.set a 0) t.traffic;
  Atomic.set t.total_messages 0;
  Atomic.set t.sessions 0

let congestion t ~items =
  let worst = max_memory t in
  float_of_int worst +. (float_of_int items /. float_of_int t.hosts)
