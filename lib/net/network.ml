type host = int

type t = {
  hosts : int;
  memory : int array;
  traffic : int array;
  mutable total_messages : int;
  mutable sessions : int;
}

let create ~hosts =
  if hosts < 1 then invalid_arg "Network.create: need at least one host";
  { hosts; memory = Array.make hosts 0; traffic = Array.make hosts 0; total_messages = 0; sessions = 0 }

let host_count t = t.hosts

let check_host t h =
  if h < 0 || h >= t.hosts then invalid_arg (Printf.sprintf "Network: bad host %d (H=%d)" h t.hosts)

let charge_memory t h k =
  check_host t h;
  t.memory.(h) <- t.memory.(h) + k;
  assert (t.memory.(h) >= 0)

let memory t h =
  check_host t h;
  t.memory.(h)

let max_memory t = Array.fold_left max 0 t.memory

let total_memory t = Array.fold_left ( + ) 0 t.memory

let mean_memory t = float_of_int (total_memory t) /. float_of_int t.hosts

type session = { net : t; mutable at : host; mutable msgs : int; trace : Trace.t option }

let start ?trace t h =
  check_host t h;
  t.sessions <- t.sessions + 1;
  t.traffic.(h) <- t.traffic.(h) + 1;
  { net = t; at = h; msgs = 0; trace }

let current s = s.at

let session_trace s = s.trace

let goto ?label s h =
  check_host s.net h;
  if h <> s.at then begin
    (match s.trace with None -> () | Some tr -> Trace.hop tr ?label ~src:s.at ~dst:h ());
    s.msgs <- s.msgs + 1;
    s.net.total_messages <- s.net.total_messages + 1;
    s.net.traffic.(h) <- s.net.traffic.(h) + 1;
    s.at <- h
  end

let messages s = s.msgs

let total_messages t = t.total_messages

let sessions_started t = t.sessions

let traffic t h =
  check_host t h;
  t.traffic.(h)

let max_traffic t = Array.fold_left max 0 t.traffic

let mean_traffic t =
  float_of_int (Array.fold_left ( + ) 0 t.traffic) /. float_of_int t.hosts

let reset_traffic t =
  Array.fill t.traffic 0 t.hosts 0;
  t.total_messages <- 0;
  t.sessions <- 0

let congestion t ~items =
  let worst = max_memory t in
  float_of_int worst +. (float_of_int items /. float_of_int t.hosts)
