(** A message-counting simulator of the paper's peer-to-peer cost model
    (§1.1).

    The model: [H] hosts, each able to send a message to any other host.
    A distributed structure maps its nodes and links onto hosts; traversing
    a pointer whose target lives on a different host costs exactly one
    message, while intra-host pointer chasing is free. Per-host memory is
    measured in stored items / nodes / pointers / host IDs.

    Hosts can {e fail}: {!kill} marks a host dead and {!revive} brings it
    back. A session that tries to move onto a dead host raises
    {!Host_dead} — the failed hop is the simulator's model of a timed-out
    RPC, and it is the structures' job to fail over to a live replica
    instead (see [Hierarchy] / [Blocked1d] replication). Killing a host
    does not touch any counter: its memory charges remain recorded as
    {e stranded} until a structure's repair pass migrates them to live
    hosts, which mirrors the real-world separation between a host dying
    and the overlay noticing and repairing.

    Every query or update runs inside a {!session}, which tracks the host
    currently processing the operation and counts boundary crossings. A
    session buffers its counts locally and commits them to the network's
    shared counters only at {!finish}; the shared counters are atomics, so
    finished sessions may have run concurrently on different domains (the
    parallel read path) and the accumulated totals are still exactly the
    sums a sequential run would produce. The network accumulates per-host
    traffic (visits) across sessions for congestion reporting, and per-host
    memory charges for the [M] and [C(n)] columns of Table 1. *)

type t

type host = int
(** Hosts are identified by integers in [\[0, host_count)]. *)

val create : hosts:int -> t
(** [create ~hosts] makes a network of [hosts] hosts, all initially live.
    Requires [hosts >= 1]. *)

val host_count : t -> int

(** {1 Failure model}

    [kill] and [revive] are {e epoch} operations: they must not run
    concurrently with in-flight sessions or uncommitted charge buffers on
    other domains (failure epochs are serialized against query batches,
    exactly as updates are). They are safe to interleave {e sequentially}
    with anything: killing a host never zeroes or rejects counters, so a
    deferred charge buffer opened before a [kill] commits the same totals
    after it, and {!reset_traffic} keeps its usual meaning — the failure
    axis and the workload counters are orthogonal. *)

exception Host_dead of host
(** Raised by {!start} and {!goto} when the target host is dead: the
    operation's current hop timed out. The session that raised remains
    unfinished and contributes nothing to the network's counters. *)

val kill : t -> host -> unit
(** Mark a host dead. Idempotent. Its memory charges stay recorded
    (stranded — see {!stranded_memory}) until a repair pass migrates them;
    its traffic history is kept. Raises [Invalid_argument] when asked to
    kill the last live host. *)

val revive : t -> host -> unit
(** Mark a host live again (a rejoin). Idempotent. Counters are untouched:
    if no repair pass migrated the host's charges while it was dead, they
    are simply reachable again. *)

val alive : t -> host -> bool

val live_hosts : t -> int
(** Number of currently live hosts; always >= 1. *)

(** {1 Memory accounting}

    Memory charges describe the structure, not a workload. The per-host
    counters are atomics: the parallel write path runs one repair task per
    hierarchy level on different domains, each buffering its charges in a
    {!charges} buffer and committing at the end, so commits may interleave.
    Every committed quantity is a sum of deltas, and sums are
    order-independent — per-host memory after a parallel batch is
    bit-identical to the sequential run of the same batch. *)

val charge_memory : t -> host -> int -> unit
(** [charge_memory net h k] records that host [h] stores [k] more units
    (items, structure nodes, pointers or host IDs). [k] may be negative
    (deletion). Safe to call directly from single-op (serialized) update
    paths; concurrent writers should buffer through {!deferred_charges}
    instead so each host's counter sees one netted delta per task. *)

val memory : t -> host -> int
val max_memory : t -> int
(** Largest per-host memory charge over {e all} hosts, dead or live (it
    describes stored state; use {!congestion} for the serving view). *)

val mean_memory : t -> float
(** Total memory divided by the number of {e live} hosts — the mean load a
    serving host carries. With no failures this is total/H as before. *)

val total_memory : t -> int

val stranded_memory : t -> int
(** Sum of the memory charges currently recorded on dead hosts: state that
    a repair pass still has to migrate (or that dies with the host). *)

(** {2 Deferred charge buffers: the write-path analogue of a session}

    Lifecycle: {!deferred_charges} … {!charge}* … {!commit_charges}.
    Between creation and commit a buffer touches only its own state —
    charges are netted per host locally — so any number of buffers may
    fill concurrently on different domains against the same network.
    Unlike a session, committing a buffer counts {e nothing} toward
    {!sessions_started}, {!total_messages} or traffic: host-side structure
    maintenance is not an operation in the cost model, it only moves
    stored units between hosts. *)

type charges

val deferred_charges : t -> charges
(** A fresh, empty charge buffer against this network. *)

val charge : charges -> host -> int -> unit
(** [charge c h k] buffers [k] more units at host [h] (negative for
    releases). Raises [Invalid_argument] after {!commit_charges}. *)

val commit_charges : charges -> unit
(** Atomically add each host's netted delta to the network's memory
    counters. Idempotent — a second commit adds nothing. A buffer that is
    never committed contributes nothing. *)

(** {1 Sessions: one query or update}

    Lifecycle: {!start} … {!goto}* … {!finish}. Between [start] and
    [finish] a session touches only its own state, so independent sessions
    (read-only queries) may run concurrently on different domains against
    the same network. [finish] commits the session's message count and its
    per-host visit deltas to the shared atomic counters; since every
    committed quantity is a sum of non-negative deltas, the network totals
    after all sessions finish are independent of interleaving —
    bit-identical to running the same sessions sequentially. A session
    that is never finished contributes nothing to the network. *)

type session

val start : ?trace:Trace.t -> t -> host -> session
(** Begin an operation at host [h] (the host owning the operation's root
    pointer). The starting visit is recorded for congestion (committed at
    {!finish}) but costs no message. Raises {!Host_dead} if [h] is dead. When [trace] is supplied, every
    subsequent boundary crossing of this session is recorded into it as a
    {!Trace.Hop}; when absent the session does no trace work at all, so
    the cost model is unchanged by the existence of the tracing
    machinery. *)

val current : session -> host

val session_trace : session -> Trace.t option

val goto : ?label:string -> session -> host -> unit
(** [goto s h] moves the locus of processing to host [h]. Costs one message
    (and one unit of traffic at [h], committed at {!finish}) iff [h]
    differs from the current host. [label] tags the hop in the session's
    trace (ignored for untraced sessions); it never affects costs.
    Raises [Invalid_argument] if the session is already finished, and
    {!Host_dead} if [h] is dead — the hop is not charged, the session
    stays where it was and may retry against a live replica. *)

val messages : session -> int
(** Messages sent so far in this session (session-local; readable at any
    time, before or after {!finish}). *)

val finish : session -> unit
(** Commit the session: one started session, [messages s] toward
    {!total_messages}, and one traffic unit per buffered host visit.
    Idempotent — a second [finish] is a no-op. Every [start] must be
    paired with a [finish] before the network's workload counters are
    read; the pinned message-total guards in the test suite exist to
    catch a forgotten one. *)

(** {1 Observability tap}

    The streaming counterpart of {!Trace}: where a trace records one
    session's hops in full, the tap sees every {e finished} session's
    visit list and message count, so an observer (the congestion
    observatory) can maintain heavy-hitter and quantile summaries over
    an open-ended workload without any per-session retention. Like
    tracing it is charge-invisible by construction — the tap runs
    inside {!finish} on session-local state only and touches no
    counter, so attaching one cannot change any measured cost (the
    hotspot bench asserts total-message equality with and without). *)

type tap = visits:host list -> msgs:int -> unit
(** [visits] is the session's buffered host-visit list, newest first
    and including the start host (the same multiset committed to
    per-host traffic); [msgs] its message count. Sessions that never
    finish (e.g. aborted by {!Host_dead}) are never reported. *)

val set_tap : t -> tap option -> unit
(** Install or remove the network's tap. Installation is an epoch
    operation like {!kill}: it must not race in-flight sessions. The
    tap itself is invoked from whichever domain finishes a session, so
    during parallel query batches it must be thread-safe (the
    observatory serializes with a mutex). [None] restores the default:
    no tap, no per-finish work beyond one option check. *)

(** {1 Traffic / congestion} *)

val total_messages : t -> int
(** Sum of messages over all {e finished} sessions since the last
    {!reset_traffic}. *)

val sessions_started : t -> int
(** Number of {e finished} sessions (the name predates the deferred-commit
    sessions: a session is counted when it finishes, so that
    [total_messages / sessions_started] always describes completed
    operations only). *)

val traffic : t -> host -> int
(** Number of session visits host [h] has served (finished sessions). *)

val max_traffic : t -> int

val mean_traffic : t -> float
(** Total visits divided by the number of {e live} hosts: the mean load on
    the hosts actually serving. Dividing by all hosts would silently
    understate per-host load as soon as hosts die (a killed host serves
    nothing but would still dilute the mean). With no failures this is the
    historical total/H. *)

val reset_traffic : t -> unit
(** Zero every workload counter: per-host traffic, the global message
    total, {e and} {!sessions_started} — the three always describe the same
    window of operations, so a partial reset would silently skew per-session
    averages computed as [total_messages / sessions_started]. Memory charges
    are kept: they describe the structure, not the workload. Must not run
    concurrently with live sessions. *)

val congestion : t -> items:int -> float
(** The paper's static congestion measure for the most loaded host:
    references stored at the host (we use its memory charge) plus the
    expected query-start share. Both terms range over {e live} hosts only —
    a dead host's stranded memory is unreachable, not congested, and query
    starts spread over the [live_hosts t] survivors. With no failures this
    is the historical [max_memory + items/H]. *)
