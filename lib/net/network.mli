(** A message-counting simulator of the paper's peer-to-peer cost model
    (§1.1).

    The model: [H] hosts, each able to send a message to any other host;
    hosts do not fail. A distributed structure maps its nodes and links onto
    hosts; traversing a pointer whose target lives on a different host costs
    exactly one message, while intra-host pointer chasing is free. Per-host
    memory is measured in stored items / nodes / pointers / host IDs.

    Every query or update runs inside a {!session}, which tracks the host
    currently processing the operation and counts boundary crossings. The
    network accumulates per-host traffic (visits) across sessions for
    congestion reporting, and per-host memory charges for the [M] and [C(n)]
    columns of Table 1. *)

type t

type host = int
(** Hosts are identified by integers in [\[0, host_count)]. *)

val create : hosts:int -> t
(** [create ~hosts] makes a network of [hosts] failure-free hosts.
    Requires [hosts >= 1]. *)

val host_count : t -> int

(** {1 Memory accounting} *)

val charge_memory : t -> host -> int -> unit
(** [charge_memory net h k] records that host [h] stores [k] more units
    (items, structure nodes, pointers or host IDs). [k] may be negative
    (deletion). *)

val memory : t -> host -> int
val max_memory : t -> int
val mean_memory : t -> float
val total_memory : t -> int

(** {1 Sessions: one query or update} *)

type session

val start : ?trace:Trace.t -> t -> host -> session
(** Begin an operation at host [h] (the host owning the operation's root
    pointer). The starting visit is recorded for congestion but costs no
    message. When [trace] is supplied, every subsequent boundary crossing
    of this session is recorded into it as a {!Trace.Hop}; when absent the
    session does no trace work at all, so the cost model is unchanged by
    the existence of the tracing machinery. *)

val current : session -> host

val session_trace : session -> Trace.t option

val goto : ?label:string -> session -> host -> unit
(** [goto s h] moves the locus of processing to host [h]. Costs one message
    (and one unit of traffic at [h]) iff [h] differs from the current
    host. [label] tags the hop in the session's trace (ignored for
    untraced sessions); it never affects costs. *)

val messages : session -> int
(** Messages sent so far in this session. *)

(** {1 Traffic / congestion} *)

val total_messages : t -> int
(** Sum of messages over all sessions since the last {!reset_traffic}. *)

val sessions_started : t -> int

val traffic : t -> host -> int
(** Number of session visits host [h] has served. *)

val max_traffic : t -> int
val mean_traffic : t -> float

val reset_traffic : t -> unit
(** Zero every workload counter: per-host traffic, the global message
    total, {e and} {!sessions_started} — the three always describe the same
    window of operations, so a partial reset would silently skew per-session
    averages computed as [total_messages / sessions_started]. Memory charges
    are kept: they describe the structure, not the workload. *)

val congestion : t -> items:int -> float
(** The paper's static congestion measure for the most loaded host:
    references stored at the host (we use its memory charge) plus the
    [items/H] expected query-start share. *)
