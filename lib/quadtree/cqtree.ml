module Point = Skipweb_geom.Point
module Pool = Skipweb_util.Pool
module Presort = Skipweb_util.Presort

let bits = Point.grid_bits

type node = {
  mutable id : int;
      (* Mutable only for the bulk/batch commit pass: workers allocate
         nodes with a placeholder id and one sequential commit assigns the
         real ids, so id order is a pure function of the batch, never of
         scheduling. *)
  ndepth : int;  (* cube depth: side = 2^(bits - ndepth) grid cells *)
  corner : int array;  (* aligned grid coordinates of the low corner *)
  mutable children : (int * node) list;  (* quadrant index -> child *)
  mutable npoint : int array option;  (* grid point; Some iff leaf *)
  mutable size : int;  (* points in the subtree *)
  mutable parent : node option;
}

type t = {
  tdim : int;
  root : node;
  cube_index : (int * int list, node) Hashtbl.t;
  mutable next_id : int;
  mutable npoints : int;
  mutable nnodes : int;
  (* Node churn log for the delta-reporting update API. *)
  mutable logging : bool;
  mutable added_log : int list;
  mutable removed_log : int list;
}

type slot = At_point | Empty_quadrant of int | Outside_child of int

type location = { node : node; slot : slot }

let dim t = t.tdim
let size t = t.npoints
let node_count t = t.nnodes
let root t = t.root
let node_id n = n.id
let node_cube n = (n.ndepth, n.corner)
let subtree_size n = n.size

let node_point n =
  match n.npoint with None -> None | Some g -> Some (Point.of_grid g)

let cube_key ndepth corner = (ndepth, Array.to_list corner)

let rec bitlen x = if x = 0 then 0 else 1 + bitlen (x lsr 1)

(* Does the cube (depth k, corner) contain grid point p? *)
let cube_contains ~ndepth ~corner p =
  let shift = bits - ndepth in
  let ok = ref true in
  for i = 0 to Array.length p - 1 do
    if p.(i) lsr shift <> corner.(i) lsr shift then ok := false
  done;
  !ok

(* Quadrant index of p within a cube at depth k (0 <= k < bits). *)
let quadrant ~ndepth p =
  let pos = bits - ndepth - 1 in
  let q = ref 0 in
  for i = 0 to Array.length p - 1 do
    q := !q lor (((p.(i) lsr pos) land 1) lsl i)
  done;
  !q

(* Is cube (d2, c2) contained in cube (d1, c1)? *)
let cube_subset ~outer:(d1, c1) ~inner:(d2, c2) =
  d2 >= d1 && cube_contains ~ndepth:d1 ~corner:c1 c2

let fresh_node t ~ndepth ~corner ~npoint =
  let n =
    { id = t.next_id; ndepth; corner; children = []; npoint; size = 0; parent = None }
  in
  t.next_id <- t.next_id + 1;
  t.nnodes <- t.nnodes + 1;
  if t.logging then t.added_log <- n.id :: t.added_log;
  Hashtbl.replace t.cube_index (cube_key ndepth corner) n;
  n

let drop_node t n =
  Hashtbl.remove t.cube_index (cube_key n.ndepth n.corner);
  t.nnodes <- t.nnodes - 1;
  if t.logging then t.removed_log <- n.id :: t.removed_log

let attach_child parent quad child =
  assert (not (List.mem_assoc quad parent.children));
  parent.children <- (quad, child) :: parent.children;
  child.parent <- Some parent

let replace_child parent quad child =
  assert (List.mem_assoc quad parent.children);
  parent.children <- (quad, child) :: List.remove_assoc quad parent.children;
  child.parent <- Some parent

let detach_child parent quad =
  assert (List.mem_assoc quad parent.children);
  parent.children <- List.remove_assoc quad parent.children

(* z-order (Morton order) comparator on grid points, without materializing
   the interleaved key (which would overflow 63 bits already at d = 3):
   the deciding dimension is the one holding the most significant
   interleaved differing bit. Dimension [i] contributes bit [i] of every
   quadrant index, so at equal bit positions the higher dimension is the
   more significant — which makes a z-sorted run list every aligned cube's
   quadrants contiguously, in ascending quadrant-index order. *)
let cmp_zorder a b =
  let d = Array.length a in
  let best = ref (-1) and best_dim = ref 0 in
  for i = 0 to d - 1 do
    let x = a.(i) lxor b.(i) in
    if x <> 0 then begin
      let key = (bitlen x * d) + i in
      if key > !best then begin
        best := key;
        best_dim := i
      end
    end
  done;
  if !best < 0 then 0 else compare a.(!best_dim) b.(!best_dim)

(* The interleaved key itself, when [d * bits] fits a tagged int (d = 2 at
   30 grid bits does; d >= 3 does not): the presort then runs on a cheap
   monomorphic int compare instead of [cmp_zorder]'s per-dimension scan,
   which is the difference between the sort and the tree construction
   dominating a 10⁶-point bulk build. Bit layout matches [cmp_zorder]:
   within each grid-bit position, dimension i lands at relative bit i. *)
let morton_key g =
  let d = Array.length g in
  let r = ref 0 in
  for bit = bits - 1 downto 0 do
    for i = d - 1 downto 0 do
      r := (!r lsl 1) lor ((g.(i) lsr bit) land 1)
    done
  done;
  !r

(* Smallest aligned cube containing two distinct grid points. For a
   z-sorted slice this is the smallest cube containing the whole slice
   when applied to its first and last element: all points agree on every
   interleaved bit above the highest one on which any pair differs, and
   the slice's extremes differ exactly there. *)
let enclosing_of_pair dimension a b =
  let depth = ref bits in
  for i = 0 to dimension - 1 do
    let common = bits - bitlen (a.(i) lxor b.(i)) in
    if common < !depth then depth := common
  done;
  let k = !depth in
  let shift = bits - k in
  (k, Array.map (fun c -> (c lsr shift) lsl shift) a)

let placeholder_id = -1

let make_node ~ndepth ~corner ~npoint ~size =
  { id = placeholder_id; ndepth; corner; children = []; npoint; size; parent = None }

(* Single-pass subtree construction over the z-sorted distinct slice
   [gs.(lo .. hi - 1)]: no shared-state writes (placeholder ids, no index
   inserts), so disjoint slices build concurrently on pool workers.
   Quadrant groups are contiguous in the slice (see {!cmp_zorder}), so
   children split off by scanning group boundaries left to right. *)
let rec build_slice dimension gs lo hi =
  if hi - lo = 1 then make_node ~ndepth:bits ~corner:gs.(lo) ~npoint:(Some gs.(lo)) ~size:1
  else begin
    let k, corner = enclosing_of_pair dimension gs.(lo) gs.(hi - 1) in
    assert (k < bits);
    let node = make_node ~ndepth:k ~corner ~npoint:None ~size:(hi - lo) in
    let rev_children = ref [] in
    let i = ref lo in
    while !i < hi do
      let q = quadrant ~ndepth:k gs.(!i) in
      let j = ref (!i + 1) in
      while !j < hi && quadrant ~ndepth:k gs.(!j) = q do incr j done;
      let c = build_slice dimension gs !i !j in
      c.parent <- Some node;
      rev_children := (q, c) :: !rev_children;
      i := !j
    done;
    node.children <- List.rev !rev_children;
    node
  end

(* Assign real ids in a preorder DFS and publish the subtree into the
   shared cube index — the sequential commit pass. Preorder over the
   deterministic child lists makes the id assignment a pure function of
   the point set, identical for any jobs count. *)
let commit_subtree t node =
  let rec go n =
    n.id <- t.next_id;
    t.next_id <- t.next_id + 1;
    t.nnodes <- t.nnodes + 1;
    if t.logging then t.added_log <- n.id :: t.added_log;
    Hashtbl.replace t.cube_index (cube_key n.ndepth n.corner) n;
    List.iter (fun (_, c) -> go c) n.children
  in
  go node

let of_sorted ?pool ~dim:dimension points =
  if dimension < 1 then invalid_arg "Cqtree.of_sorted: dim >= 1";
  Array.iter
    (fun p ->
      if Point.dim p <> dimension then invalid_arg "Cqtree.of_sorted: dimension mismatch")
    points;
  let gs = Array.map Point.to_grid points in
  (* Two keys with equal Morton codes are the same grid point, so the
     decorate/sort/strip round trip deduplicates exactly like the direct
     [cmp_zorder] presort and yields the same sequence. *)
  let gs =
    if dimension * bits <= 62 then
      Array.map snd
        (Presort.sorted_distinct ?pool
           ~cmp:(fun (a, _) (b, _) -> Int.compare a b)
           (Array.map (fun g -> (morton_key g, g)) gs))
    else Presort.sorted_distinct ?pool ~cmp:cmp_zorder gs
  in
  let n = Array.length gs in
  let t =
    {
      tdim = dimension;
      root =
        {
          id = 0;
          ndepth = 0;
          corner = Array.make dimension 0;
          children = [];
          npoint = None;
          size = n;
          parent = None;
        };
      cube_index = Hashtbl.create (max 64 (2 * n));
      next_id = 1;
      npoints = n;
      nnodes = 1;
      logging = false;
      added_log = [];
      removed_log = [];
    }
  in
  Hashtbl.replace t.cube_index (cube_key 0 t.root.corner) t.root;
  if n > 0 then begin
    (* The root's quadrant groups are the disjoint shards: each builds its
       own minimal-enclosing-cube subtree independently. *)
    let rev_groups = ref [] in
    let i = ref 0 in
    while !i < n do
      let q = quadrant ~ndepth:0 gs.(!i) in
      let j = ref (!i + 1) in
      while !j < n && quadrant ~ndepth:0 gs.(!j) = q do incr j done;
      rev_groups := (q, !i, !j) :: !rev_groups;
      i := !j
    done;
    let groups = Array.of_list (List.rev !rev_groups) in
    let ngroups = Array.length groups in
    let tops = Array.make ngroups t.root in
    let run gi =
      let _, lo, hi = groups.(gi) in
      tops.(gi) <- build_slice dimension gs lo hi
    in
    (match pool with
    | Some p when ngroups > 1 ->
        Pool.parallel_for_tasks p ~weights:(Array.map (fun (_, lo, hi) -> hi - lo) groups) run
    | _ ->
        for gi = 0 to ngroups - 1 do
          run gi
        done);
    (* Sequential merge/commit: attach the shard tops in ascending
       quadrant order (the z-sorted groups already are), then number the
       whole forest in one preorder pass. *)
    t.root.children <- Array.to_list (Array.mapi (fun gi (q, _, _) -> (q, tops.(gi))) groups);
    List.iter
      (fun (_, c) ->
        c.parent <- Some t.root;
        commit_subtree t c)
      t.root.children
  end;
  t

let build ?pool ~dim points = of_sorted ?pool ~dim points

let node_of_cube t (ndepth, corner) =
  Hashtbl.find_opt t.cube_index (cube_key ndepth corner)

let locate_grid_from _t start g =
  assert (cube_contains ~ndepth:start.ndepth ~corner:start.corner g);
  let rec desc v path =
    let path = v :: path in
    match v.npoint with
    | Some p ->
        (* A leaf cube is a single grid cell, so containment means equality. *)
        assert (p = g || v.ndepth < bits);
        if p = g then ({ node = v; slot = At_point }, List.rev path)
        else ({ node = v; slot = Empty_quadrant (quadrant ~ndepth:v.ndepth g) }, List.rev path)
    | None ->
        if v.ndepth >= bits then ({ node = v; slot = At_point }, List.rev path)
        else
          let q = quadrant ~ndepth:v.ndepth g in
          (match List.assoc_opt q v.children with
          | None -> ({ node = v; slot = Empty_quadrant q }, List.rev path)
          | Some c ->
              if cube_contains ~ndepth:c.ndepth ~corner:c.corner g then desc c path
              else ({ node = v; slot = Outside_child q }, List.rev path))
  in
  desc start []

let locate_from t start p = locate_grid_from t start (Point.to_grid p)

let locate t p = locate_from t t.root p

let rec tree_depth n =
  match n.children with
  | [] -> 0
  | cs -> 1 + List.fold_left (fun acc (_, c) -> max acc (tree_depth c)) 0 cs

let depth t = tree_depth t.root

let rec max_cube_depth_node n =
  let own = if n.npoint = None then n.ndepth else 0 in
  List.fold_left (fun acc (_, c) -> max acc (max_cube_depth_node c)) own n.children

let max_cube_depth t = max_cube_depth_node t.root

let insert t p =
  let g = Point.to_grid p in
  if Point.dim p <> t.tdim then invalid_arg "Cqtree.insert: dimension mismatch";
  if Hashtbl.mem t.cube_index (cube_key bits g) then false
  else begin
    let bump_sizes_from n =
      let rec go = function
        | None -> ()
        | Some v ->
            v.size <- v.size + 1;
            go v.parent
      in
      go (Some n)
    in
    let loc, _path = locate_grid_from t t.root g in
    let v = loc.node in
    (match loc.slot with
    | At_point -> assert false  (* duplicate handled above *)
    | Empty_quadrant q ->
        let leaf = fresh_node t ~ndepth:bits ~corner:g ~npoint:(Some g) in
        leaf.size <- 1;
        if v.npoint <> None then begin
          (* v is a leaf other than the root: impossible to have an empty
             quadrant slot below it unless v is the root-as-leaf; leaves
             are located via Outside_child of their parent. The only leaf
             that can be a location node is one whose cube properly
             contains g, which cannot happen at full depth. *)
          assert false
        end;
        attach_child v q leaf;
        bump_sizes_from v
    | Outside_child q ->
        let c = List.assoc q v.children in
        (* New internal node: smallest cube containing both g and c's cube. *)
        let k =
          let d = ref c.ndepth in
          for i = 0 to t.tdim - 1 do
            let common = bits - bitlen (g.(i) lxor c.corner.(i)) in
            if common < !d then d := common
          done;
          !d
        in
        assert (k > v.ndepth && k < c.ndepth);
        let shift = bits - k in
        let corner = Array.map (fun x -> (x lsr shift) lsl shift) g in
        let w = fresh_node t ~ndepth:k ~corner ~npoint:None in
        let leaf = fresh_node t ~ndepth:bits ~corner:g ~npoint:(Some g) in
        leaf.size <- 1;
        w.size <- c.size;
        replace_child v q w;
        attach_child w (quadrant ~ndepth:k c.corner) c;
        attach_child w (quadrant ~ndepth:k g) leaf;
        bump_sizes_from w);
    t.npoints <- t.npoints + 1;
    true
  end

let remove t p =
  let g = Point.to_grid p in
  match Hashtbl.find_opt t.cube_index (cube_key bits g) with
  | None -> false
  | Some leaf when leaf.npoint = None -> false
  | Some leaf ->
      let rec shrink_sizes = function
        | None -> ()
        | Some v ->
            v.size <- v.size - 1;
            shrink_sizes v.parent
      in
      (match leaf.parent with
      | None ->
          (* The leaf is the root-resident point: clear it. *)
          leaf.npoint <- None;
          leaf.size <- 0
      | Some v ->
          shrink_sizes (Some v);
          let q = quadrant ~ndepth:v.ndepth g in
          detach_child v q;
          drop_node t leaf;
          (* Splice v if it became a chain node (single child, internal,
             not the root). *)
          (match (v.children, v.parent, v.npoint) with
          | [ (_, only) ], Some grandparent, None ->
              let vq = quadrant ~ndepth:grandparent.ndepth v.corner in
              replace_child grandparent vq only;
              drop_node t v
          | _ -> ()));
      t.npoints <- t.npoints - 1;
      true

(* Run one update with node-churn logging on, returning the ids of the
   nodes it created and destroyed (the O(1) range delta of §4). *)
let with_delta t op =
  t.logging <- true;
  t.added_log <- [];
  t.removed_log <- [];
  let changed = op () in
  t.logging <- false;
  let delta = (t.added_log, t.removed_log) in
  t.added_log <- [];
  t.removed_log <- [];
  (changed, delta)

let insert_delta t p =
  let changed, (added, removed) = with_delta t (fun () -> insert t p) in
  (changed, added, removed)

let remove_delta t p =
  let changed, (added, removed) = with_delta t (fun () -> remove t p) in
  (changed, added, removed)

(* ---------------- native batch engines ----------------

   A batch partitions by the keys' root quadrants into disjoint shards.
   During the parallel phase each shard worker owns (a) the subtree hanging
   off the root at its quadrant — detached up front, so no worker ever
   follows a parent pointer into the root — and (b) a per-batch-position
   log slot. Workers replay [insert]/[remove]'s structural steps exactly,
   with the detached shard top standing in for "root's child at this
   quadrant", and never touch the root, the shared cube index (reads are
   fine: there are no concurrent writers, and for distinct keys a stale
   entry is never consulted — only full-depth leaves match a [bits]-deep
   cube key and each is dropped at most once), the id counter, or the
   churn log. One sequential commit pass then walks the batch positions in
   order, assigning ids / retiring index entries exactly as the per-key
   loop would have, and reattaches the shard tops — so ids, node sets,
   sizes and the aggregate delta are bit-identical to the sequential
   per-key loop for any jobs count. Only the root's child-list order is
   canonicalized (ascending quadrant); no observable (answers, deltas,
   charges) depends on that order. *)

type shard = {
  squad : int;  (* root quadrant *)
  mutable stop : node option;  (* the detached root child for this quadrant *)
  mutable skeys : int list;  (* batch positions, reversed *)
}

(* Group batch positions by root quadrant and detach the matching root
   children. Returns the shards in first-appearance order (scheduling
   only — the commit never depends on it). *)
let make_shards t gs =
  let tbl = Hashtbl.create 8 in
  let rev_order = ref [] in
  Array.iteri
    (fun i g ->
      let q = quadrant ~ndepth:0 g in
      let sh =
        match Hashtbl.find_opt tbl q with
        | Some sh -> sh
        | None ->
            let sh = { squad = q; stop = None; skeys = [] } in
            Hashtbl.add tbl q sh;
            rev_order := sh :: !rev_order;
            sh
      in
      sh.skeys <- i :: sh.skeys)
    gs;
  let shards = Array.of_list (List.rev !rev_order) in
  Array.iter
    (fun sh ->
      match List.assoc_opt sh.squad t.root.children with
      | None -> ()
      | Some c ->
          t.root.children <- List.remove_assoc sh.squad t.root.children;
          c.parent <- None;
          sh.stop <- Some c)
    shards;
  shards

(* Put the surviving shard tops back under the root, ascending quadrant
   first, untouched quadrants after in their existing order. *)
let reattach_shards t shards =
  let tops =
    Array.to_list shards
    |> List.filter_map (fun sh ->
           match sh.stop with Some c -> Some (sh.squad, c) | None -> None)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter (fun (_, c) -> c.parent <- Some t.root) tops;
  t.root.children <- tops @ t.root.children

let run_shards ?pool shards run =
  match pool with
  | Some p when Array.length shards > 1 ->
      Pool.parallel_for_tasks p
        ~weights:(Array.map (fun sh -> List.length sh.skeys) shards)
        run
  | _ ->
      for si = 0 to Array.length shards - 1 do
        run si
      done

(* [insert]'s structural steps inside one shard; returns the created
   nodes in [insert]'s creation order ([] for a duplicate). *)
let shard_insert t sh g =
  let bump_to_top n =
    let rec go = function
      | None -> ()
      | Some v ->
          v.size <- v.size + 1;
          go v.parent
    in
    go (Some n)
  in
  match sh.stop with
  | None ->
      let leaf = make_node ~ndepth:bits ~corner:g ~npoint:(Some g) ~size:1 in
      sh.stop <- Some leaf;
      [ leaf ]
  | Some top ->
      if not (cube_contains ~ndepth:top.ndepth ~corner:top.corner g) then begin
        (* The Outside_child case at the root. *)
        let k, corner = enclosing_of_pair t.tdim g top.corner in
        let w = make_node ~ndepth:k ~corner ~npoint:None ~size:(top.size + 1) in
        let leaf = make_node ~ndepth:bits ~corner:g ~npoint:(Some g) ~size:1 in
        attach_child w (quadrant ~ndepth:k top.corner) top;
        attach_child w (quadrant ~ndepth:k g) leaf;
        sh.stop <- Some w;
        [ w; leaf ]
      end
      else begin
        let loc, _path = locate_grid_from t top g in
        let v = loc.node in
        match loc.slot with
        | At_point -> []
        | Empty_quadrant q ->
            let leaf = make_node ~ndepth:bits ~corner:g ~npoint:(Some g) ~size:1 in
            attach_child v q leaf;
            bump_to_top v;
            [ leaf ]
        | Outside_child q ->
            let c = List.assoc q v.children in
            let k, corner = enclosing_of_pair t.tdim g c.corner in
            assert (k > v.ndepth && k < c.ndepth);
            let w = make_node ~ndepth:k ~corner ~npoint:None ~size:c.size in
            let leaf = make_node ~ndepth:bits ~corner:g ~npoint:(Some g) ~size:1 in
            replace_child v q w;
            attach_child w (quadrant ~ndepth:k c.corner) c;
            attach_child w (quadrant ~ndepth:k g) leaf;
            bump_to_top w;
            [ w; leaf ]
      end

let insert_batch ?pool t points =
  let m = Array.length points in
  if m = 0 then (0, [])
  else begin
    Array.iter
      (fun p ->
        if Point.dim p <> t.tdim then invalid_arg "Cqtree.insert_batch: dimension mismatch")
      points;
    let gs = Array.map Point.to_grid points in
    let shards = make_shards t gs in
    let created = Array.make m [] in
    run_shards ?pool shards (fun si ->
        let sh = shards.(si) in
        List.iter (fun i -> created.(i) <- shard_insert t sh gs.(i)) (List.rev sh.skeys));
    (* Commit: number the created nodes in global batch order — exactly
       the order the per-key loop would have drawn ids in. The returned
       list mirrors the per-key loop's concatenated [insert_delta] lists:
       segments in batch order, each segment newest-id-first (the delta
       log is prepend-built). *)
    let inserted = ref 0 in
    let rev_segs = ref [] in
    for i = 0 to m - 1 do
      match created.(i) with
      | [] -> ()
      | nodes ->
          incr inserted;
          let seg = ref [] in
          List.iter
            (fun node ->
              node.id <- t.next_id;
              t.next_id <- t.next_id + 1;
              t.nnodes <- t.nnodes + 1;
              Hashtbl.replace t.cube_index (cube_key node.ndepth node.corner) node;
              seg := node.id :: !seg)
            nodes;
          rev_segs := !seg :: !rev_segs
    done;
    reattach_shards t shards;
    t.root.size <- t.root.size + !inserted;
    t.npoints <- t.npoints + !inserted;
    (!inserted, List.concat (List.rev !rev_segs))
  end

(* [remove]'s structural steps inside one shard; returns the dropped
   nodes in [remove]'s drop order ([] for an absent key). *)
let shard_remove t sh g =
  match Hashtbl.find_opt t.cube_index (cube_key bits g) with
  | None -> []
  | Some leaf when leaf.npoint = None -> []
  | Some leaf -> (
      let shrink_to_top n =
        let rec go = function
          | None -> ()
          | Some v ->
              v.size <- v.size - 1;
              go v.parent
        in
        go (Some n)
      in
      match leaf.parent with
      | None ->
          (* The leaf is this shard's whole subtree. *)
          sh.stop <- None;
          [ leaf ]
      | Some v -> (
          shrink_to_top v;
          let q = quadrant ~ndepth:v.ndepth g in
          detach_child v q;
          match (v.children, v.parent, v.npoint) with
          | [ (_, only) ], Some grandparent, None ->
              let vq = quadrant ~ndepth:grandparent.ndepth v.corner in
              replace_child grandparent vq only;
              [ leaf; v ]
          | [ (_, only) ], None, None ->
              (* v was the shard top: the root-level splice. *)
              only.parent <- None;
              sh.stop <- Some only;
              [ leaf; v ]
          | _ -> [ leaf ]))

let remove_batch ?pool t points =
  let m = Array.length points in
  if m = 0 then (0, [])
  else begin
    let gs = Array.map Point.to_grid points in
    let shards = make_shards t gs in
    let dropped = Array.make m [] in
    run_shards ?pool shards (fun si ->
        let sh = shards.(si) in
        List.iter (fun i -> dropped.(i) <- shard_remove t sh gs.(i)) (List.rev sh.skeys));
    (* Mirror of the insert commit: per-key segments in batch order, each
       newest-dropped-first, exactly as the per-key [remove_delta] log
       reports them. *)
    let removed = ref 0 in
    let rev_segs = ref [] in
    for i = 0 to m - 1 do
      match dropped.(i) with
      | [] -> ()
      | nodes ->
          incr removed;
          let seg = ref [] in
          List.iter
            (fun node ->
              Hashtbl.remove t.cube_index (cube_key node.ndepth node.corner);
              t.nnodes <- t.nnodes - 1;
              seg := node.id :: !seg)
            nodes;
          rev_segs := !seg :: !rev_segs
    done;
    reattach_shards t shards;
    t.root.size <- t.root.size - !removed;
    t.npoints <- t.npoints - !removed;
    (!removed, List.concat (List.rev !rev_segs))
  end

let iter_points t ~f =
  let rec go n =
    (match n.npoint with Some g -> f (Point.of_grid g) | None -> ());
    List.iter (fun (_, c) -> go c) n.children
  in
  go t.root

(* Count stored points lying inside an arbitrary aligned cube. *)
let count_in_cube t (ndepth, corner) =
  let rec go n =
    if cube_subset ~outer:(ndepth, corner) ~inner:(n.ndepth, n.corner) then n.size
    else if
      (* The query cube could be strictly inside n's cube. *)
      cube_subset ~outer:(n.ndepth, n.corner) ~inner:(ndepth, corner)
    then List.fold_left (fun acc (_, c) -> acc + go c) 0 n.children
    else 0
  in
  go t.root

let points_in_located_gap t ~location_cube ~child_cubes =
  let inside = count_in_cube t location_cube in
  let covered =
    List.fold_left
      (fun acc cube ->
        if cube_subset ~outer:location_cube ~inner:cube then acc + count_in_cube t cube
        else acc)
      0 child_cubes
  in
  inside - covered

(* Exact nearest neighbor: best-first search with cube distance bounds. *)
let cube_dist_sq t (ndepth, corner) (q : Point.t) =
  let side = float_of_int (1 lsl (bits - ndepth)) /. float_of_int Point.grid_size in
  let acc = ref 0.0 in
  for i = 0 to t.tdim - 1 do
    let lo = float_of_int corner.(i) /. float_of_int Point.grid_size in
    let hi = lo +. side in
    let d = if q.(i) < lo then lo -. q.(i) else if q.(i) > hi then q.(i) -. hi else 0.0 in
    acc := !acc +. (d *. d)
  done;
  !acc

module Frontier = struct
  (* A tiny binary min-heap of (priority, node). *)
  type elt = float * node

  type heap = { mutable data : elt array; mutable len : int }

  let create () = { data = Array.make 16 (0.0, Obj.magic 0); len = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h e =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (2 * h.len) h.data.(0) in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      h.data.(0) <- h.data.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let nearest t q =
  if t.npoints = 0 then None
  else begin
    let heap = Frontier.create () in
    Frontier.push heap (0.0, t.root);
    let best = ref None in
    let best_d = ref infinity in
    let rec loop () =
      match Frontier.pop heap with
      | None -> ()
      | Some (bound, _) when bound >= !best_d -> ()
      | Some (_, n) ->
          (match n.npoint with
          | Some g ->
              let p = Point.of_grid g in
              let d = Point.dist_sq p q in
              if d < !best_d then begin
                best_d := d;
                best := Some p
              end
          | None -> ());
          List.iter
            (fun (_, c) ->
              let bound = cube_dist_sq t (c.ndepth, c.corner) q in
              if bound < !best_d then Frontier.push heap (bound, c))
            n.children;
          loop ()
    in
    loop ();
    match !best with None -> None | Some p -> Some (p, sqrt !best_d)
  end

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec go n =
    (* Corner alignment. *)
    let shift = bits - n.ndepth in
    Array.iter
      (fun c -> if (c lsr shift) lsl shift <> c then fail "Cqtree: corner not aligned")
      n.corner;
    (match n.npoint with
    | Some g ->
        if n.ndepth <> bits then fail "Cqtree: leaf not at full depth";
        if g <> n.corner then fail "Cqtree: leaf corner mismatch";
        if n.children <> [] then fail "Cqtree: leaf with children";
        if n.size <> 1 then fail "Cqtree: leaf size <> 1"
    | None ->
        if n.parent <> None && List.length n.children < 2 then
          fail "Cqtree: internal non-root node with < 2 children (not compressed)";
        let child_sum = List.fold_left (fun acc (_, c) -> acc + c.size) 0 n.children in
        if n.size <> child_sum then fail "Cqtree: size %d <> child sum %d" n.size child_sum);
    List.iter
      (fun (q, c) ->
        if c.ndepth <= n.ndepth then fail "Cqtree: child not deeper than parent";
        if not (cube_contains ~ndepth:n.ndepth ~corner:n.corner c.corner) then
          fail "Cqtree: child cube outside parent";
        if quadrant ~ndepth:n.ndepth c.corner <> q then fail "Cqtree: child in wrong quadrant";
        (match c.parent with
        | Some p when p == n -> ()
        | Some _ | None -> fail "Cqtree: broken parent pointer");
        go c)
      n.children
  in
  go t.root;
  if t.root.size <> t.npoints then fail "Cqtree: root size out of sync"

let iter_nodes t ~f =
  let rec go n =
    f n;
    List.iter (fun (_, c) -> go c) n.children
  in
  go t.root

let node_children_cubes n = List.map (fun (_, c) -> (c.ndepth, c.corner)) n.children

(* Axis-aligned box queries over the compressed tree: prune on cube/box
   disjointness, take whole subtrees on containment. *)
let box_of_points lo hi =
  let glo = Point.to_grid lo and ghi = Point.to_grid hi in
  Array.iteri (fun i g -> if g > ghi.(i) then invalid_arg "Cqtree: empty box") glo;
  (glo, ghi)

let cube_box_relation ~ndepth ~corner (glo, ghi) =
  (* 0 = disjoint, 1 = cube inside box, 2 = partial overlap *)
  let side = 1 lsl (bits - ndepth) in
  let disjoint = ref false and inside = ref true in
  Array.iteri
    (fun i c ->
      let clo = c and chi = c + side - 1 in
      if chi < glo.(i) || clo > ghi.(i) then disjoint := true;
      if clo < glo.(i) || chi > ghi.(i) then inside := false)
    corner;
  if !disjoint then 0 else if !inside then 1 else 2

let range_fold t ~lo ~hi ~init ~leaf ~subtree =
  let box = box_of_points lo hi in
  let rec go n acc =
    match cube_box_relation ~ndepth:n.ndepth ~corner:n.corner box with
    | 0 -> acc
    | 1 -> subtree acc n
    | _ -> (
        match n.npoint with
        | Some g ->
            let glo, ghi = box in
            let inside = ref true in
            Array.iteri (fun i c -> if c < glo.(i) || c > ghi.(i) then inside := false) g;
            if !inside then leaf acc g else acc
        | None -> List.fold_left (fun acc (_, c) -> go c acc) acc n.children)
  in
  go t.root init

let range_count t ~lo ~hi =
  range_fold t ~lo ~hi ~init:0 ~leaf:(fun acc _ -> acc + 1) ~subtree:(fun acc n -> acc + n.size)

let range_report t ~lo ~hi =
  let collect acc n =
    let pts = ref acc in
    let rec walk m =
      (match m.npoint with Some g -> pts := Point.of_grid g :: !pts | None -> ());
      List.iter (fun (_, c) -> walk c) m.children
    in
    walk n;
    !pts
  in
  List.rev
    (range_fold t ~lo ~hi ~init:[] ~leaf:(fun acc g -> Point.of_grid g :: acc) ~subtree:collect)

(* ---------------- charged query surfaces ----------------

   Like {!range_count}/{!nearest}, but additionally reporting the ids of
   every node the walk actually descends into — the ranges a distributed
   execution would fetch, which the hierarchy turns into per-host message
   charges. Both walks are deterministic (child lists and heap contents
   depend only on the structure), so the visit sequence is identical for
   any jobs count. *)

let range_scan t ~lo ~hi ~limit =
  if limit < 0 then invalid_arg "Cqtree.range_scan: limit >= 0";
  let box = box_of_points lo hi in
  let rev_visited = ref [] in
  let count = ref 0 in
  let rev_sample = ref [] in
  let taken = ref 0 in
  let visit n = rev_visited := n.id :: !rev_visited in
  let take g =
    incr count;
    if !taken < limit then begin
      rev_sample := Point.of_grid g :: !rev_sample;
      incr taken
    end
  in
  (* A fully-contained subtree is counted from its size field without
     walking — unless the sample still needs points, in which case the
     collection walk's nodes are charged like any other visit. *)
  let rec collect n =
    (match n.npoint with Some g -> take g | None -> ());
    List.iter
      (fun (_, c) ->
        if !taken < limit then begin
          visit c;
          collect c
        end
        else count := !count + c.size)
      n.children
  in
  let rec go n =
    match cube_box_relation ~ndepth:n.ndepth ~corner:n.corner box with
    | 0 -> ()
    | 1 ->
        visit n;
        if !taken < limit then collect n else count := !count + n.size
    | _ ->
        visit n;
        (match n.npoint with
        | Some g ->
            let glo, ghi = box in
            let inside = ref true in
            Array.iteri (fun i c -> if c < glo.(i) || c > ghi.(i) then inside := false) g;
            if !inside then take g
        | None -> List.iter (fun (_, c) -> go c) n.children)
  in
  go t.root;
  (!count, List.rev !rev_sample, List.rev !rev_visited)

let knn t q ~k =
  if k <= 0 then invalid_arg "Cqtree.knn: k >= 1";
  let heap = Frontier.create () in
  Frontier.push heap (0.0, t.root);
  let rev_visited = ref [] in
  (* The k best, ascending (dist_sq, point); ties broken on the point so
     the result is a pure function of the stored set. *)
  let best = ref [] in
  let nbest = ref 0 in
  let kth_bound () =
    if !nbest < k then infinity
    else fst (List.nth !best (k - 1))
  in
  let offer d p =
    let rec ins = function
      | [] -> [ (d, p) ]
      | ((d', p') :: rest) as l ->
          if d < d' || (d = d' && compare p p' < 0) then (d, p) :: l else (d', p') :: ins rest
    in
    let rec take n = function
      | [] -> []
      | x :: r -> if n = 0 then [] else x :: take (n - 1) r
    in
    best := take k (ins !best);
    nbest := List.length !best
  in
  let rec loop () =
    match Frontier.pop heap with
    | None -> ()
    | Some (bound, _) when bound >= kth_bound () -> ()
    | Some (_, n) ->
        rev_visited := n.id :: !rev_visited;
        (match n.npoint with
        | Some g ->
            let p = Point.of_grid g in
            offer (Point.dist_sq p q) p
        | None -> ());
        List.iter
          (fun (_, c) ->
            let b = cube_dist_sq t (c.ndepth, c.corner) q in
            if b < kth_bound () then Frontier.push heap (b, c))
          n.children;
        loop ()
  in
  loop ();
  (List.map (fun (d, p) -> (p, sqrt d)) !best, List.rev !rev_visited)
