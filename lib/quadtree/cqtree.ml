module Point = Skipweb_geom.Point

let bits = Point.grid_bits

type node = {
  id : int;
  ndepth : int;  (* cube depth: side = 2^(bits - ndepth) grid cells *)
  corner : int array;  (* aligned grid coordinates of the low corner *)
  mutable children : (int * node) list;  (* quadrant index -> child *)
  mutable npoint : int array option;  (* grid point; Some iff leaf *)
  mutable size : int;  (* points in the subtree *)
  mutable parent : node option;
}

type t = {
  tdim : int;
  root : node;
  cube_index : (int * int list, node) Hashtbl.t;
  mutable next_id : int;
  mutable npoints : int;
  mutable nnodes : int;
  (* Node churn log for the delta-reporting update API. *)
  mutable logging : bool;
  mutable added_log : int list;
  mutable removed_log : int list;
}

type slot = At_point | Empty_quadrant of int | Outside_child of int

type location = { node : node; slot : slot }

let dim t = t.tdim
let size t = t.npoints
let node_count t = t.nnodes
let root t = t.root
let node_id n = n.id
let node_cube n = (n.ndepth, n.corner)
let subtree_size n = n.size

let node_point n =
  match n.npoint with None -> None | Some g -> Some (Point.of_grid g)

let cube_key ndepth corner = (ndepth, Array.to_list corner)

let rec bitlen x = if x = 0 then 0 else 1 + bitlen (x lsr 1)

(* Does the cube (depth k, corner) contain grid point p? *)
let cube_contains ~ndepth ~corner p =
  let shift = bits - ndepth in
  let ok = ref true in
  for i = 0 to Array.length p - 1 do
    if p.(i) lsr shift <> corner.(i) lsr shift then ok := false
  done;
  !ok

(* Quadrant index of p within a cube at depth k (0 <= k < bits). *)
let quadrant ~ndepth p =
  let pos = bits - ndepth - 1 in
  let q = ref 0 in
  for i = 0 to Array.length p - 1 do
    q := !q lor (((p.(i) lsr pos) land 1) lsl i)
  done;
  !q

(* Is cube (d2, c2) contained in cube (d1, c1)? *)
let cube_subset ~outer:(d1, c1) ~inner:(d2, c2) =
  d2 >= d1 && cube_contains ~ndepth:d1 ~corner:c1 c2

let fresh_node t ~ndepth ~corner ~npoint =
  let n =
    { id = t.next_id; ndepth; corner; children = []; npoint; size = 0; parent = None }
  in
  t.next_id <- t.next_id + 1;
  t.nnodes <- t.nnodes + 1;
  if t.logging then t.added_log <- n.id :: t.added_log;
  Hashtbl.replace t.cube_index (cube_key ndepth corner) n;
  n

let drop_node t n =
  Hashtbl.remove t.cube_index (cube_key n.ndepth n.corner);
  t.nnodes <- t.nnodes - 1;
  if t.logging then t.removed_log <- n.id :: t.removed_log

let attach_child parent quad child =
  assert (not (List.mem_assoc quad parent.children));
  parent.children <- (quad, child) :: parent.children;
  child.parent <- Some parent

let replace_child parent quad child =
  assert (List.mem_assoc quad parent.children);
  parent.children <- (quad, child) :: List.remove_assoc quad parent.children;
  child.parent <- Some parent

let detach_child parent quad =
  assert (List.mem_assoc quad parent.children);
  parent.children <- List.remove_assoc quad parent.children

(* Smallest aligned cube containing a non-empty set of grid points: depth
   is the shortest per-dimension common bit prefix. *)
let enclosing_cube dimension pts =
  let lo = Array.make dimension max_int and hi = Array.make dimension 0 in
  List.iter
    (fun p ->
      for i = 0 to dimension - 1 do
        if p.(i) < lo.(i) then lo.(i) <- p.(i);
        if p.(i) > hi.(i) then hi.(i) <- p.(i)
      done)
    pts;
  let depth = ref bits in
  for i = 0 to dimension - 1 do
    let common = bits - bitlen (lo.(i) lxor hi.(i)) in
    if common < !depth then depth := common
  done;
  let k = !depth in
  let shift = bits - k in
  let corner = Array.map (fun c -> (c lsr shift) lsl shift) lo in
  (k, corner)

let group_by_quadrant ~ndepth pts =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let q = quadrant ~ndepth p in
      Hashtbl.replace tbl q (p :: (try Hashtbl.find tbl q with Not_found -> [])))
    pts;
  Hashtbl.fold (fun q ps acc -> (q, ps) :: acc) tbl []

let rec build_sub t pts =
  match pts with
  | [] -> assert false
  | [ p ] ->
      let leaf = fresh_node t ~ndepth:bits ~corner:p ~npoint:(Some p) in
      leaf.size <- 1;
      leaf
  | _ ->
      let k, corner = enclosing_cube t.tdim pts in
      assert (k < bits);
      let node = fresh_node t ~ndepth:k ~corner ~npoint:None in
      let groups = group_by_quadrant ~ndepth:k pts in
      assert (List.length groups >= 2);
      List.iter
        (fun (q, ps) ->
          let child = build_sub t ps in
          attach_child node q child;
          node.size <- node.size + child.size)
        groups;
      node

let build ~dim:dimension points =
  if dimension < 1 then invalid_arg "Cqtree.build: dim >= 1";
  Array.iter
    (fun p ->
      if Point.dim p <> dimension then invalid_arg "Cqtree.build: dimension mismatch")
    points;
  let seen = Hashtbl.create (Array.length points) in
  let grid_pts =
    Array.to_list points
    |> List.filter_map (fun p ->
           let g = Point.to_grid p in
           let key = Array.to_list g in
           if Hashtbl.mem seen key then None
           else begin
             Hashtbl.add seen key ();
             Some g
           end)
  in
  let t =
    {
      tdim = dimension;
      root =
        {
          id = 0;
          ndepth = 0;
          corner = Array.make dimension 0;
          children = [];
          npoint = None;
          size = 0;
          parent = None;
        };
      cube_index = Hashtbl.create 64;
      next_id = 1;
      npoints = 0;
      nnodes = 1;
      logging = false;
      added_log = [];
      removed_log = [];
    }
  in
  Hashtbl.replace t.cube_index (cube_key 0 t.root.corner) t.root;
  (match grid_pts with
  | [] -> ()
  | pts ->
      let top = build_sub t pts in
      if top.ndepth = 0 then begin
        (* The enclosing cube is the unit cube itself: merge into root. *)
        t.root.children <- top.children;
        List.iter (fun (_, c) -> c.parent <- Some t.root) top.children;
        t.root.npoint <- top.npoint;
        t.root.size <- top.size;
        drop_node t top;
        Hashtbl.replace t.cube_index (cube_key 0 t.root.corner) t.root
      end
      else begin
        attach_child t.root (quadrant ~ndepth:0 top.corner) top;
        t.root.size <- top.size
      end);
  t.npoints <- t.root.size;
  t

let node_of_cube t (ndepth, corner) =
  Hashtbl.find_opt t.cube_index (cube_key ndepth corner)

let locate_grid_from _t start g =
  assert (cube_contains ~ndepth:start.ndepth ~corner:start.corner g);
  let rec desc v path =
    let path = v :: path in
    match v.npoint with
    | Some p ->
        (* A leaf cube is a single grid cell, so containment means equality. *)
        assert (p = g || v.ndepth < bits);
        if p = g then ({ node = v; slot = At_point }, List.rev path)
        else ({ node = v; slot = Empty_quadrant (quadrant ~ndepth:v.ndepth g) }, List.rev path)
    | None ->
        if v.ndepth >= bits then ({ node = v; slot = At_point }, List.rev path)
        else
          let q = quadrant ~ndepth:v.ndepth g in
          (match List.assoc_opt q v.children with
          | None -> ({ node = v; slot = Empty_quadrant q }, List.rev path)
          | Some c ->
              if cube_contains ~ndepth:c.ndepth ~corner:c.corner g then desc c path
              else ({ node = v; slot = Outside_child q }, List.rev path))
  in
  desc start []

let locate_from t start p = locate_grid_from t start (Point.to_grid p)

let locate t p = locate_from t t.root p

let rec tree_depth n =
  match n.children with
  | [] -> 0
  | cs -> 1 + List.fold_left (fun acc (_, c) -> max acc (tree_depth c)) 0 cs

let depth t = tree_depth t.root

let rec max_cube_depth_node n =
  let own = if n.npoint = None then n.ndepth else 0 in
  List.fold_left (fun acc (_, c) -> max acc (max_cube_depth_node c)) own n.children

let max_cube_depth t = max_cube_depth_node t.root

let insert t p =
  let g = Point.to_grid p in
  if Point.dim p <> t.tdim then invalid_arg "Cqtree.insert: dimension mismatch";
  if Hashtbl.mem t.cube_index (cube_key bits g) then false
  else begin
    let bump_sizes_from n =
      let rec go = function
        | None -> ()
        | Some v ->
            v.size <- v.size + 1;
            go v.parent
      in
      go (Some n)
    in
    let loc, _path = locate_grid_from t t.root g in
    let v = loc.node in
    (match loc.slot with
    | At_point -> assert false  (* duplicate handled above *)
    | Empty_quadrant q ->
        let leaf = fresh_node t ~ndepth:bits ~corner:g ~npoint:(Some g) in
        leaf.size <- 1;
        if v.npoint <> None then begin
          (* v is a leaf other than the root: impossible to have an empty
             quadrant slot below it unless v is the root-as-leaf; leaves
             are located via Outside_child of their parent. The only leaf
             that can be a location node is one whose cube properly
             contains g, which cannot happen at full depth. *)
          assert false
        end;
        attach_child v q leaf;
        bump_sizes_from v
    | Outside_child q ->
        let c = List.assoc q v.children in
        (* New internal node: smallest cube containing both g and c's cube. *)
        let k =
          let d = ref c.ndepth in
          for i = 0 to t.tdim - 1 do
            let common = bits - bitlen (g.(i) lxor c.corner.(i)) in
            if common < !d then d := common
          done;
          !d
        in
        assert (k > v.ndepth && k < c.ndepth);
        let shift = bits - k in
        let corner = Array.map (fun x -> (x lsr shift) lsl shift) g in
        let w = fresh_node t ~ndepth:k ~corner ~npoint:None in
        let leaf = fresh_node t ~ndepth:bits ~corner:g ~npoint:(Some g) in
        leaf.size <- 1;
        w.size <- c.size;
        replace_child v q w;
        attach_child w (quadrant ~ndepth:k c.corner) c;
        attach_child w (quadrant ~ndepth:k g) leaf;
        bump_sizes_from w);
    t.npoints <- t.npoints + 1;
    true
  end

let remove t p =
  let g = Point.to_grid p in
  match Hashtbl.find_opt t.cube_index (cube_key bits g) with
  | None -> false
  | Some leaf when leaf.npoint = None -> false
  | Some leaf ->
      let rec shrink_sizes = function
        | None -> ()
        | Some v ->
            v.size <- v.size - 1;
            shrink_sizes v.parent
      in
      (match leaf.parent with
      | None ->
          (* The leaf is the root-resident point: clear it. *)
          leaf.npoint <- None;
          leaf.size <- 0
      | Some v ->
          shrink_sizes (Some v);
          let q = quadrant ~ndepth:v.ndepth g in
          detach_child v q;
          drop_node t leaf;
          (* Splice v if it became a chain node (single child, internal,
             not the root). *)
          (match (v.children, v.parent, v.npoint) with
          | [ (_, only) ], Some grandparent, None ->
              let vq = quadrant ~ndepth:grandparent.ndepth v.corner in
              replace_child grandparent vq only;
              drop_node t v
          | _ -> ()));
      t.npoints <- t.npoints - 1;
      true

(* Run one update with node-churn logging on, returning the ids of the
   nodes it created and destroyed (the O(1) range delta of §4). *)
let with_delta t op =
  t.logging <- true;
  t.added_log <- [];
  t.removed_log <- [];
  let changed = op () in
  t.logging <- false;
  let delta = (t.added_log, t.removed_log) in
  t.added_log <- [];
  t.removed_log <- [];
  (changed, delta)

let insert_delta t p =
  let changed, (added, removed) = with_delta t (fun () -> insert t p) in
  (changed, added, removed)

let remove_delta t p =
  let changed, (added, removed) = with_delta t (fun () -> remove t p) in
  (changed, added, removed)

let iter_points t ~f =
  let rec go n =
    (match n.npoint with Some g -> f (Point.of_grid g) | None -> ());
    List.iter (fun (_, c) -> go c) n.children
  in
  go t.root

(* Count stored points lying inside an arbitrary aligned cube. *)
let count_in_cube t (ndepth, corner) =
  let rec go n =
    if cube_subset ~outer:(ndepth, corner) ~inner:(n.ndepth, n.corner) then n.size
    else if
      (* The query cube could be strictly inside n's cube. *)
      cube_subset ~outer:(n.ndepth, n.corner) ~inner:(ndepth, corner)
    then List.fold_left (fun acc (_, c) -> acc + go c) 0 n.children
    else 0
  in
  go t.root

let points_in_located_gap t ~location_cube ~child_cubes =
  let inside = count_in_cube t location_cube in
  let covered =
    List.fold_left
      (fun acc cube ->
        if cube_subset ~outer:location_cube ~inner:cube then acc + count_in_cube t cube
        else acc)
      0 child_cubes
  in
  inside - covered

(* Exact nearest neighbor: best-first search with cube distance bounds. *)
let cube_dist_sq t (ndepth, corner) (q : Point.t) =
  let side = float_of_int (1 lsl (bits - ndepth)) /. float_of_int Point.grid_size in
  let acc = ref 0.0 in
  for i = 0 to t.tdim - 1 do
    let lo = float_of_int corner.(i) /. float_of_int Point.grid_size in
    let hi = lo +. side in
    let d = if q.(i) < lo then lo -. q.(i) else if q.(i) > hi then q.(i) -. hi else 0.0 in
    acc := !acc +. (d *. d)
  done;
  !acc

module Frontier = struct
  (* A tiny binary min-heap of (priority, node). *)
  type elt = float * node

  type heap = { mutable data : elt array; mutable len : int }

  let create () = { data = Array.make 16 (0.0, Obj.magic 0); len = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h e =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (2 * h.len) h.data.(0) in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      h.data.(0) <- h.data.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let nearest t q =
  if t.npoints = 0 then None
  else begin
    let heap = Frontier.create () in
    Frontier.push heap (0.0, t.root);
    let best = ref None in
    let best_d = ref infinity in
    let rec loop () =
      match Frontier.pop heap with
      | None -> ()
      | Some (bound, _) when bound >= !best_d -> ()
      | Some (_, n) ->
          (match n.npoint with
          | Some g ->
              let p = Point.of_grid g in
              let d = Point.dist_sq p q in
              if d < !best_d then begin
                best_d := d;
                best := Some p
              end
          | None -> ());
          List.iter
            (fun (_, c) ->
              let bound = cube_dist_sq t (c.ndepth, c.corner) q in
              if bound < !best_d then Frontier.push heap (bound, c))
            n.children;
          loop ()
    in
    loop ();
    match !best with None -> None | Some p -> Some (p, sqrt !best_d)
  end

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec go n =
    (* Corner alignment. *)
    let shift = bits - n.ndepth in
    Array.iter
      (fun c -> if (c lsr shift) lsl shift <> c then fail "Cqtree: corner not aligned")
      n.corner;
    (match n.npoint with
    | Some g ->
        if n.ndepth <> bits then fail "Cqtree: leaf not at full depth";
        if g <> n.corner then fail "Cqtree: leaf corner mismatch";
        if n.children <> [] then fail "Cqtree: leaf with children";
        if n.size <> 1 then fail "Cqtree: leaf size <> 1"
    | None ->
        if n.parent <> None && List.length n.children < 2 then
          fail "Cqtree: internal non-root node with < 2 children (not compressed)";
        let child_sum = List.fold_left (fun acc (_, c) -> acc + c.size) 0 n.children in
        if n.size <> child_sum then fail "Cqtree: size %d <> child sum %d" n.size child_sum);
    List.iter
      (fun (q, c) ->
        if c.ndepth <= n.ndepth then fail "Cqtree: child not deeper than parent";
        if not (cube_contains ~ndepth:n.ndepth ~corner:n.corner c.corner) then
          fail "Cqtree: child cube outside parent";
        if quadrant ~ndepth:n.ndepth c.corner <> q then fail "Cqtree: child in wrong quadrant";
        (match c.parent with
        | Some p when p == n -> ()
        | Some _ | None -> fail "Cqtree: broken parent pointer");
        go c)
      n.children
  in
  go t.root;
  if t.root.size <> t.npoints then fail "Cqtree: root size out of sync"

let iter_nodes t ~f =
  let rec go n =
    f n;
    List.iter (fun (_, c) -> go c) n.children
  in
  go t.root

let node_children_cubes n = List.map (fun (_, c) -> (c.ndepth, c.corner)) n.children

(* Axis-aligned box queries over the compressed tree: prune on cube/box
   disjointness, take whole subtrees on containment. *)
let box_of_points lo hi =
  let glo = Point.to_grid lo and ghi = Point.to_grid hi in
  Array.iteri (fun i g -> if g > ghi.(i) then invalid_arg "Cqtree: empty box") glo;
  (glo, ghi)

let cube_box_relation ~ndepth ~corner (glo, ghi) =
  (* 0 = disjoint, 1 = cube inside box, 2 = partial overlap *)
  let side = 1 lsl (bits - ndepth) in
  let disjoint = ref false and inside = ref true in
  Array.iteri
    (fun i c ->
      let clo = c and chi = c + side - 1 in
      if chi < glo.(i) || clo > ghi.(i) then disjoint := true;
      if clo < glo.(i) || chi > ghi.(i) then inside := false)
    corner;
  if !disjoint then 0 else if !inside then 1 else 2

let range_fold t ~lo ~hi ~init ~leaf ~subtree =
  let box = box_of_points lo hi in
  let rec go n acc =
    match cube_box_relation ~ndepth:n.ndepth ~corner:n.corner box with
    | 0 -> acc
    | 1 -> subtree acc n
    | _ -> (
        match n.npoint with
        | Some g ->
            let glo, ghi = box in
            let inside = ref true in
            Array.iteri (fun i c -> if c < glo.(i) || c > ghi.(i) then inside := false) g;
            if !inside then leaf acc g else acc
        | None -> List.fold_left (fun acc (_, c) -> go c acc) acc n.children)
  in
  go t.root init

let range_count t ~lo ~hi =
  range_fold t ~lo ~hi ~init:0 ~leaf:(fun acc _ -> acc + 1) ~subtree:(fun acc n -> acc + n.size)

let range_report t ~lo ~hi =
  let collect acc n =
    let pts = ref acc in
    let rec walk m =
      (match m.npoint with Some g -> pts := Point.of_grid g :: !pts | None -> ());
      List.iter (fun (_, c) -> walk c) m.children
    in
    walk n;
    !pts
  in
  List.rev
    (range_fold t ~lo ~hi ~init:[] ~leaf:(fun acc g -> Point.of_grid g :: acc) ~subtree:collect)
