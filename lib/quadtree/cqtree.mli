(** Compressed quadtrees and octrees for point sets in R^d (§3.1).

    The tree is defined over the aligned hypercube hierarchy of the unit
    cube: a cube at depth [k] has side [2^-k]; its [2^d] children halve the
    side. The root is always the unit cube. Internal nodes are the
    {e interesting} cubes — minimal enclosing aligned cubes of subsets that
    occupy at least two child quadrants; chains of uninteresting cubes are
    compressed into single links. Leaves sit at the maximum grid depth and
    hold exactly one point. The tree has O(n) nodes but may have Θ(n)
    depth — which is why the skip-web hierarchy on top of it matters.

    As a range-determined link structure: the range of a node is its cube,
    the range of a link is the cube of its child endpoint (§3.1).

    Coordinates are handled exactly: points are snapped to a 2^30 grid
    (see {!Skipweb_geom.Point.to_grid}), and all cube computations are
    bit manipulations on integers. *)

type t

type node

(** Where a point-location query terminates. *)
type slot =
  | At_point  (** the query coincides with the leaf's point *)
  | Empty_quadrant of int  (** quadrant [i] of the node has no child *)
  | Outside_child of int
      (** quadrant [i] has a (compressed) child cube that does not contain
          the query *)

type location = { node : node; slot : slot }

val of_sorted : ?pool:Skipweb_util.Pool.t -> dim:int -> Skipweb_geom.Point.t array -> t
(** Single-pass bulk build: z-order-presort the points (a no-op when they
    already arrive z-sorted and distinct), shard by root quadrant, build
    each shard's compressed subtree in one left-to-right pass over its
    slice — fanned over [pool]'s domains when one is given — then attach
    and id-number everything in a sequential preorder commit. The
    resulting tree (node set, ids, child order) is a pure function of the
    distinct grid-point set: bit-identical for any jobs count and for any
    input permutation. [dim >= 1]; every point must have dimension
    [dim]. *)

val build : ?pool:Skipweb_util.Pool.t -> dim:int -> Skipweb_geom.Point.t array -> t
(** Alias for {!of_sorted} — the bulk path {e is} the build path.
    Duplicate grid points are ignored beyond the first occurrence. *)

val dim : t -> int
val size : t -> int
(** Number of stored (distinct) points. *)

val node_count : t -> int
(** Total nodes including root and leaves: the structure's storage units. *)

val depth : t -> int
(** Length of the longest root-to-leaf path in {e tree edges} (compressed
    links count as one). *)

val max_cube_depth : t -> int
(** Deepest cube depth among internal nodes (uncompressed geometric
    depth) — Θ(n) for adversarial inputs even when {!depth} is small. *)

(** {1 Nodes} *)

val node_id : node -> int
(** Dense-ish stable identifier (creation order), for host placement. *)

val node_cube : node -> int * int array
(** [(depth, corner)] of the node's cube in grid coordinates. *)

val node_point : node -> Skipweb_geom.Point.t option
(** The stored point, for leaves. *)

val subtree_size : node -> int
(** Number of points under the node. *)

val root : t -> node

(** {1 Queries} *)

val locate : t -> Skipweb_geom.Point.t -> location * node list
(** Full point location from the root: the smallest node region containing
    the query, together with the descent path (for message accounting). *)

val locate_from : t -> node -> Skipweb_geom.Point.t -> location * node list
(** Point location starting at an internal node whose cube contains the
    query — the refine step of the skip-web hierarchy. *)

val node_of_cube : t -> int * int array -> node option
(** Find the node with exactly this cube, if present. Every node cube of a
    compressed quadtree over [T ⊆ S] is a node cube of the tree over [S],
    which is what makes skip-web refinement work. *)

val nearest : t -> Skipweb_geom.Point.t -> (Skipweb_geom.Point.t * float) option
(** Exact nearest neighbor by best-first search over cubes (a sequential
    utility for examples and test oracles; not part of the message-counted
    distributed path). *)

val points_in_located_gap : t -> location_cube:int * int array -> child_cubes:(int * int array) list -> int
(** [points_in_located_gap s ~location_cube ~child_cubes] counts the points
    of this tree that lie inside [location_cube] but in none of
    [child_cubes] — the "visible in the gap" quantity whose expectation
    Lemma 3 bounds by O(1) when the location comes from a random-half
    subtree. *)

(** {1 Updates} *)

val insert : t -> Skipweb_geom.Point.t -> bool
(** Adds a point; [false] if its grid cell is already occupied. O(1) new
    nodes are created (one leaf, possibly one new internal node), after a
    locate. *)

val remove : t -> Skipweb_geom.Point.t -> bool
(** Removes a point; splices out its parent if it becomes redundant. *)

val insert_delta : t -> Skipweb_geom.Point.t -> bool * int list * int list
(** Like {!insert}, additionally reporting [(changed, added, removed)]:
    the ids of the nodes the update created and destroyed. The skip-web
    hierarchy consumes the delta to adjust per-host memory charges in O(1)
    instead of re-enumerating {!iter_nodes}. *)

val remove_delta : t -> Skipweb_geom.Point.t -> bool * int list * int list
(** Like {!remove}, with the same delta report as {!insert_delta}. *)

val insert_batch : ?pool:Skipweb_util.Pool.t -> t -> Skipweb_geom.Point.t array -> int * int list
(** [insert_batch t pts] applies the whole batch as the per-key
    {!insert} loop would, in array order (duplicates skipped), and
    returns [(inserted, created_node_ids)]: the concatenation, in batch
    order, of each key's {!insert_delta} id list — bit-identical to the
    per-key loop's concatenated delta reports, since the commit pass
    numbers created nodes in global batch position order. With [pool], keys partition into disjoint shards by root
    quadrant and apply on pool workers; the final tree, ids and the
    return value are bit-identical for any jobs count (only the root's
    child-list order is canonicalized — ascending quadrant — on which no
    observable depends). Must not run concurrently with queries. *)

val remove_batch : ?pool:Skipweb_util.Pool.t -> t -> Skipweb_geom.Point.t array -> int * int list
(** The mirror of {!insert_batch}: [(removed, dropped_node_ids)] is the
    concatenation, in batch order, of each key's {!remove_delta} id list
    (absent keys skipped). Same sharding, same bit-identical contract. *)

val check_invariants : t -> unit
(** Validates: cube alignment, children within parent quadrants, interior
    nodes interesting (>= 2 children or the root), subtree sizes, leaf
    depth. Raises [Failure] on violation. *)

val iter_points : t -> f:(Skipweb_geom.Point.t -> unit) -> unit

val iter_nodes : t -> f:(node -> unit) -> unit
(** Visit every node (root, internal, leaves) — used by the skip-web
    hierarchy for host placement and memory accounting. *)

val node_children_cubes : node -> (int * int array) list
(** Cubes of the node's (compressed) children — the regions already covered
    by finer ranges, used by the Lemma 3 gap measurement. *)

val range_count : t -> lo:Skipweb_geom.Point.t -> hi:Skipweb_geom.Point.t -> int
(** Number of stored points inside the axis-aligned closed box
    [\[lo, hi\]] — O(sqrt n + k)-flavored tree search (exact, used as the
    oracle for approximate range queries over the skip-web). *)

val range_report : t -> lo:Skipweb_geom.Point.t -> hi:Skipweb_geom.Point.t -> Skipweb_geom.Point.t list
(** The points themselves. *)

(** {1 Charged query surfaces}

    Like {!range_count}/{!nearest}, but additionally reporting the ids of
    every node the walk descends into — the ranges a distributed
    execution fetches, which the skip-web hierarchy turns into per-host
    message charges. Deterministic: the visit sequence is a pure function
    of the structure and the query. *)

val range_scan :
  t ->
  lo:Skipweb_geom.Point.t ->
  hi:Skipweb_geom.Point.t ->
  limit:int ->
  int * Skipweb_geom.Point.t list * int list
(** [range_scan t ~lo ~hi ~limit] counts the stored points in the closed
    box [\[lo, hi\]] and collects up to [limit] of them in traversal
    order: [(count, sample, visited_node_ids)]. Fully-contained subtrees
    are counted from their size fields without walking once the sample is
    full, so the visit list stays near the pruning frontier. *)

val knn :
  t ->
  Skipweb_geom.Point.t ->
  k:int ->
  (Skipweb_geom.Point.t * float) list * int list
(** [knn t q ~k] returns the [k] stored points nearest to [q] (fewer if
    the tree is smaller), ascending by distance with ties broken on the
    point, together with the ids of the nodes the best-first search
    expanded. [k >= 1]. *)
