(** The generic skip-web hierarchy (§2.3–§2.5, §4): a binary tree of level
    sets produced by repeated random halving, one range-determined link
    structure per set, searched top-down through conflict refinement.

    Level 0 holds the full ground set S; each element's membership vector
    routes it through one set per level, so level ℓ partitions S into 2^ℓ
    sets and the top level K = ⌈log₂ n⌉ has expected-O(1)-size sets. A
    query starts at the top-level structure of the originating element and
    refines through K structures down to D(S); the set-halving lemma makes
    each refinement O(1) expected ranges, so the expected message cost is
    O(log n) under the arbitrary (hashed) blocking of §2.4 — Theorem 2's
    general bound, for any {!Range_structure.S}.

    Placement: every range of every level structure is assigned to one of
    the H = n hosts by a deterministic hash (§2.4's "arbitrary
    assignment"); per-host memory is then O(log n) w.h.p. The improved
    contiguous blocking for one-dimensional data lives in {!Blocked1d}. *)

module Network = Skipweb_net.Network

module Make (S : Range_structure.S) : sig
  type t

  val build :
    net:Network.t ->
    seed:int ->
    ?p:float ->
    ?r:int ->
    ?cache_levels:int ->
    ?cache_replicas:int ->
    ?pool:Skipweb_util.Pool.t ->
    S.key array ->
    t
  (** [build ~net ~seed keys] constructs the hierarchy over hosts of
      [net]. [p] is the halving probability (default 0.5) — the A3
      ablation knob: each membership bit is 1 with probability [p].
      [r] is the replication factor (default 1): every range of every
      level structure is mirrored on [r] {e distinct} hosts, drawn by the
      same pure placement hash with a per-replica salt (draws colliding
      with an earlier copy of the same range are skipped), so per-host
      memory scales by [r] while queries keep visiting primaries — with
      [r = 1] (and no failures) every message count, charge and answer is
      bit-identical to the pre-replication code, and killing at most
      [r - 1] hosts can never destroy every copy of a range. Replicas exist to survive host
      failures: queries fail over to the first live replica mid-walk, and
      {!repair} re-homes dead hosts' copies. Requires
      [1 <= r <= Network.host_count net].

      [cache_levels] / [cache_replicas] configure the read-path level
      cache (the NoN / bucket-skip-web congestion trick): every range of
      the coarse levels [0 .. cache_levels - 1] — the sparse upper levels
      of the search tree that every query funnels through — carries
      [cache_replicas - 1] cache copies beyond its [r] data replicas,
      placed by the same pure collision-skipping hash (unified replica
      slots [r .. r + cache_replicas - 2], so the [cache_replicas + r - 1]
      copies of a range are always on distinct hosts). A query reads each
      cached level at a deterministic per-origin copy — pure in
      [(seed, origin, level)], hence bit-identical for fixed parameters
      and jobs-invariant — so distinct origins spread a hot range's load
      over all [cache_replicas] copies while per-query message counts stay
      O(log n). The window is anchored at level 0 and is independent of
      the hierarchy's height, so growth or shrinkage never shifts it.
      With [cache_replicas = 1] (the default) the cache is off and every
      message count, charge and answer is byte-identical to the uncached
      code. Requires [cache_levels >= 0], [cache_replicas >= 1] and
      [r + cache_replicas - 1 <= Network.host_count net].

      With [pool], the per-level construction fans out over its domains
      (see {!insert_batch}, which this routes through); the resulting
      structure, storage and per-host memory are bit-identical for any
      jobs count. *)

  val size : t -> int
  val levels : t -> int
  (** K + 1: the number of levels including level 0. *)

  val replication : t -> int
  (** The replication factor [r] this hierarchy was built with. *)

  val cache : t -> int * int
  (** [(cache_levels, cache_replicas)] this hierarchy was built with —
      [(0, 1)] (or any [k = 1]) means the read-path cache is inactive. *)

  (** {1 Failure handling}

      Placement is a pure hash of (seed, level set, range id, replica
      slot, redraw generation), so a query, the charging discipline and
      the repair pass always agree on where every copy lives without
      per-copy pointers. When a routed host is dead, the query walk fails
      over to the first live replica; only when {e every} replica of a
      needed range is dead does the walk raise
      [Skipweb_net.Network.Host_dead] (the session is abandoned and
      contributes nothing to the network's counters — the caller decides
      whether to retry or count a failed query). *)

  type repair_stats = {
    scanned : int;  (** charged ranges examined *)
    repaired : int;  (** replica copies re-homed (off dead hosts, plus the
                         rare live copy whose skip-collision draw shifted
                         when an earlier copy of its range moved) *)
    messages : int;  (** copy messages: one per re-homed copy with a live source *)
    lost : int;  (** re-homed copies that had no surviving replica (0 when
                     at most r - 1 hosts fail between repairs) *)
  }

  val repair : t -> repair_stats
  (** One self-repair pass: for every replica copy stored on a dead host,
      re-draw its placement (bump the slot's redraw generation until the
      hash lands on a live host), migrate the memory charge, and bill one
      copy message for stealing the range from any surviving replica.
      Cache copies at cached levels are treated exactly like data
      replicas — re-drawn with the same collision-skipping generation
      scheme and billed in the stats — so a cache never silently survives
      on dead hosts.
      Idempotent once all placements are live; must not run concurrently
      with queries or updates (failure epochs are serialized, like
      updates). The message bill is returned in the stats and {e not}
      added to the network's workload counters, so query-traffic metrics
      stay clean. *)

  val level_set_sizes : t -> int -> int list
  (** Sizes of the non-empty sets at a level (Figure 2 census). *)

  val total_storage : t -> int
  (** Total ranges across all level structures: the O(n log n) replicated
      storage. *)

  type query_stats = {
    messages : int;
    ranges_visited : int;
    per_level_visits : int list;  (** visited ranges per level, top-down *)
  }

  val query :
    ?trace:Skipweb_net.Trace.t -> t -> rng:Skipweb_util.Prng.t -> S.query -> S.answer * query_stats
  (** Route a query from a uniformly random originating element's host.
      With [trace], the query records one leveled span per refinement step
      (closed with a [conflicts=k] note giving that step's conflict-set
      size) and one labeled hop per message, so
      {!Skipweb_net.Trace.per_level_hops} decomposes [messages] by level.
      Tracing never changes the message cost. *)

  val query_batch :
    ?pool:Skipweb_util.Pool.t ->
    t ->
    rng:Skipweb_util.Prng.t ->
    S.query array ->
    (S.answer * query_stats) array
  (** A batch of independent queries, fanned out over [pool]'s domains
      when one is given. Origins are pre-drawn sequentially from [rng]
      (one draw per query, exactly as a loop of {!query} would draw
      them), so the answers, per-query stats and the network's message /
      traffic totals are bit-identical to the sequential loop for {e any}
      jobs count — [?pool] only changes wall-clock time. The structure
      must not be updated while a batch is in flight (the paper
      serializes updates against queries, §4). *)

  val scan :
    ?trace:Skipweb_net.Trace.t ->
    t ->
    rng:Skipweb_util.Prng.t ->
    S.scan ->
    S.scan_answer * query_stats
  (** A multi-result query (axis-aligned range, k-nearest-neighbors,
      prefix enumeration — whatever {!S.scan} supports): the skip-web
      routes the scan's probe ({!S.scan_probe}) from a random origin down
      to level 0 exactly like {!query}, then runs the structure's scan
      walk in the level-0 set, charging one hop per additional range the
      walk visits. The scan's visits are folded into level 0's
      [per_level_visits] entry. With [trace], the walk appears as a
      [scan <name>] span at level 0. *)

  val scan_batch :
    ?pool:Skipweb_util.Pool.t ->
    t ->
    rng:Skipweb_util.Prng.t ->
    S.scan array ->
    (S.scan_answer * query_stats) array
  (** Independent scans fanned out over [pool]'s domains, with the same
      origin-predrawing and bit-identical-for-any-jobs-count contract as
      {!query_batch}. *)

  val insert : t -> S.key -> int
  (** Add an element; returns the message cost (a locate plus O(1) linking
      messages per level, §4). Grows the level hierarchy when n crosses a
      power of two. Host-side work is O(log n) bookkeeping plus the
      structure's own update cost — never O(n). *)

  val remove : t -> S.key -> int
  (** Delete an element; returns the message cost. Raises if the underlying
      structure does not support deletion. Shrinks the level hierarchy when
      deletions lower ⌈log₂ n⌉, so a heavily shrunk set does not keep
      paying linking messages and memory for dead levels. *)

  val insert_batch : ?pool:Skipweb_util.Pool.t -> t -> S.key array -> int
  (** Bulk insertion: registers the whole batch (duplicates and
      already-present keys skipped, ids assigned in presentation order —
      so a bulk load is indistinguishable from the same keys arriving one
      at a time), then streams it through the hierarchy one level at a
      time in sorted key order, so each level structure absorbs its keys
      in a single ascending sweep instead of [batch] independent
      random-rank updates. A batch landing in an empty hierarchy takes
      the bucketed build path. [build] routes through this. Host-side
      bulk-load work only — no query routing, so unlike {!insert} the
      return value is the number of keys actually inserted, not a message
      cost. Memory charges are maintained exactly as for {!insert}.

      With [pool], the sweeps parallelize on {e two axes}. The few
      coarse levels (0 up to about log₂ jobs) — which together carry
      most of the keys — run sequentially in the caller with the pool
      threaded {e into} each sweep, so the structure's own batch engine
      (the 1-d sorted list's chunk-sharded splice) spreads one big
      level's work over all domains. The many remaining fine levels then
      fan out across the pool, one task per level dispatched
      heaviest-first, each running its sweep sequentially (the pool is
      not re-entrant, so the two phases never overlap on it). This is
      safe and {e deterministic} because registration draws every
      membership coin sequentially before any sweep starts, each level's
      mutable state is touched by exactly one task, the intra-level
      splice commits through a sequential merge pass whose output is a
      pure function of (pre-state, batch), and memory charges commit as
      netted per-host sums through the network's atomic counters — so
      the final structure (including every chunk layout), the charged
      memory of every host and the return value are bit-identical for
      any jobs count; only the wall clock changes. Must not be called
      from inside another batch on the same pool. *)

  val remove_batch : ?pool:Skipweb_util.Pool.t -> t -> S.key array -> int
  (** Bulk deletion, the mirror of {!insert_batch}: one sorted sweep per
      level (fanned over [pool] when given, with the same determinism
      guarantee), dropping a level set's structure outright once the batch
      has emptied it, then one hierarchy shrink at the end. Returns the
      number of keys actually removed (absent keys and duplicates are
      skipped). *)

  val mean_refinement_work : t -> queries:S.query array -> rng:Skipweb_util.Prng.t -> float
  (** Average ranges visited per level over a query batch — the empirical
      set-halving constant (E12's inner measurement). *)

  val check_invariants : t -> unit
  (** Validates: every level partitions the ground set, structure sizes
      match member sets, the live-id arena is consistent, the number of
      levels matches ⌈log₂ n⌉, and the incrementally maintained memory
      charges agree range-for-range with each structure's live ranges and
      host-for-host with {!Network.memory} (the latter assumes the
      hierarchy is the only structure charging its network, as in the
      tests). Raises [Failure] on violation. *)
end
