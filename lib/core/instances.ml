(** Instantiations of the skip-web framework (§3): one
    {!Range_structure.S} per range-determined link structure the paper
    treats — sorted lists (the running example of §2), compressed
    quadtrees/octrees (§3.1), compressed tries (§3.2) and trapezoidal maps
    (§3.3).

    The 1-d instance here uses the {e arbitrary} placement of §2.4 (query
    cost O(log n)); the improved blocked 1-d structure with
    O(log n / log log n) queries is {!Blocked1d}. Comparing the two is
    ablation A1.

    Every instance keeps all mutable state (range-id counters included)
    inside its [t] — no module-level globals — as the domain-confinement
    clause of {!Range_structure} requires: the parallel write path builds
    structures of different levels on different domains concurrently, and
    shared hidden state would both race and make range ids (hence host
    placement and memory charges) depend on scheduling. *)

module Point = Skipweb_geom.Point
module Segment = Skipweb_geom.Segment
module L = Skipweb_linklist.Linklist
module O = Skipweb_util.Ordseq
module Presort = Skipweb_util.Presort
module Cqtree = Skipweb_quadtree.Cqtree
module Ctrie = Skipweb_trie.Ctrie
module Trapmap = Skipweb_trapmap.Trapmap

(** 1-d sorted sets: nearest-neighbor / predecessor / successor queries. *)
module Ints :
  Range_structure.S
    with type key = int
     and type query = int
     and type answer = int option
     and type scan = int * int
     and type scan_answer = int = struct
  type key = int
  type query = int
  type answer = int option

  (* Chunked sorted sequence: O(log n) rank/search, O(√n)-bounded memmove
     per update — the flat array this replaced copied all n keys on every
     insert/remove. Range codes are derived from ranks, so they are
     bitwise the codes the array representation produced and the message
     model cannot tell the difference. *)
  type t = { xs : O.t }

  type loc = L.range

  (* The span of the located range: portable because child ranges map to
     parent ranges by interval intersection. *)
  type descriptor = L.bound * L.bound

  let name = "sorted-list"
  let visit_label = "list-walk"

  let build ?pool keys = { xs = O.of_array ?pool keys }

  let size t = O.length t.xs
  let storage_units t = (2 * O.length t.xs) + 1
  let range_ids t = List.init ((2 * O.length t.xs) + 1) Fun.id

  (* The maximal range containing q, by rank: Node at q's index when
     stored, else the link between its neighbors. *)
  let locate_range t q =
    let i = O.lower_bound t.xs q in
    if i < O.length t.xs && O.get t.xs i = q then L.Node i else L.Link i

  (* Range ids are the dense codes 0 .. 2m for m keys, so growing or
     shrinking the set by one key adds or drops exactly the top two
     codes — the O(1) delta the hierarchy charges incrementally. *)
  let insert t k =
    let n = O.length t.xs in
    if O.insert t.xs k then
      { Range_structure.added = [ (2 * n) + 1; (2 * n) + 2 ]; removed = [] }
    else Range_structure.empty_delta

  let remove t k =
    let n = O.length t.xs in
    if O.remove t.xs k then { Range_structure.added = []; removed = [ (2 * n) - 1; 2 * n ] }
    else Range_structure.empty_delta

  (* The dense-code deltas of a batch: g new keys over a set of n0 extend
     the code space by 2g codes — exactly the union of the per-key loop's
     [(2n+1; 2n+2)] steps as n runs n0 .. n0+g-1, already ascending.
     Batches must reach the chunk-shard engine strictly increasing;
     callers may hand over merely sorted (or unsorted) key runs, so both
     entry points run the shared presort first. *)
  let insert_batch ?pool t ks =
    let n0 = O.length t.xs in
    let added = O.insert_batch ?pool t.xs (Presort.sorted_distinct ?pool ~cmp:compare ks) in
    if added = 0 then Range_structure.empty_delta
    else
      { Range_structure.added = List.init (2 * added) (fun i -> (2 * n0) + 1 + i); removed = [] }

  let remove_batch ?pool t ks =
    let n0 = O.length t.xs in
    let gone = O.remove_batch ?pool t.xs (Presort.sorted_distinct ?pool ~cmp:compare ks) in
    if gone = 0 then Range_structure.empty_delta
    else
      let n1 = n0 - gone in
      { Range_structure.added = []; removed = List.init (2 * gone) (fun i -> (2 * n1) + 1 + i) }

  let probe k = k

  (* A full locate walks the distributed list from its head — every range
     on the way is a hop. This is only used at the hierarchy's top level,
     where sets are O(1) in expectation (it is exactly why skewing the
     halving probability hurts: top sets grow, and so does this walk). *)
  let locate t q =
    let r = locate_range t q in
    let code = L.encode r in
    (r, List.init ((code / 2) + 1) (fun i -> 2 * i) @ [ code ])

  (* Refinement is conflict-guided: the hyperlinks of the child range name
     the O(1) candidate parent ranges, and the query hops straight to the
     containing one. *)
  let refine t ~from q =
    ignore from;
    let r = locate_range t q in
    (r, [ L.encode r ])

  let describe t loc =
    let n = O.length t.xs in
    match loc with
    | L.Node i -> (L.Key (O.get t.xs i), L.Key (O.get t.xs i))
    | L.Link i ->
        let lo = if i = 0 then L.Neg_inf else L.Key (O.get t.xs (i - 1)) in
        let hi = if i = n then L.Pos_inf else L.Key (O.get t.xs i) in
        (lo, hi)

  let answer t loc q =
    match loc with
    | L.Node i -> Some (O.get t.xs i)
    | L.Link i ->
        let n = O.length t.xs in
        if n = 0 then None
        else if i = 0 then Some (O.get t.xs 0)
        else if i = n then Some (O.get t.xs (n - 1))
        else
          let p = O.get t.xs (i - 1) and s = O.get t.xs i in
          if q - p <= s - q then Some p else Some s

  (* Closed-interval count [lo, hi]: the descent lands on the range
     containing [lo]; the scan then walks the list rightward, entering
     node [i] (code 2i+1) and the link after it (code 2i+2) for every
     stored key in the interval, and stops after peeking at the link past
     the last hit. The located range's own code is excluded — the
     hierarchy already charged the descent. *)
  type scan = int * int
  type scan_answer = int

  let scan_probe (lo, _hi) = lo

  let scan t loc (lo, hi) =
    let lb = O.lower_bound t.xs lo in
    let ub =
      let i = O.lower_bound t.xs hi in
      if i < O.length t.xs && O.get t.xs i = hi then i + 1 else i
    in
    let count = if hi < lo then 0 else ub - lb in
    let visited =
      if count = 0 then []
      else
        (* codes 2*lb+1 .. 2*ub: nodes lb .. ub-1 with the links between
           and one past (the stop peek). *)
        List.init ((2 * ub) - (2 * lb)) (fun k -> (2 * lb) + 1 + k)
    in
    let self = L.encode loc in
    (count, List.filter (fun c -> c <> self) visited)
end

(** Point location answer for quadtree/octree skip-webs. *)
type cell_answer = {
  cell_depth : int;  (** depth of the smallest node cube containing q *)
  cell_point : Point.t option;  (** the stored point if q hit a leaf cell *)
}

(** Multi-result queries over point sets: an axis-aligned box (count plus
    up to [limit] member points) or the [k] nearest neighbors of a
    center. *)
type point_scan =
  | Box of { lo : Point.t; hi : Point.t; limit : int }
  | Knn of { center : Point.t; k : int }

type point_scan_answer =
  | Box_hits of { count : int; sample : Point.t list }
  | Knn_hits of (Point.t * float) list  (** ascending distance *)

(** d-dimensional point sets via compressed quadtrees/octrees (§3.1). *)
module Points (D : sig
  val dim : int
end) :
  Range_structure.S
    with type key = Point.t
     and type query = Point.t
     and type answer = cell_answer
     and type scan = point_scan
     and type scan_answer = point_scan_answer = struct
  type key = Point.t
  type query = Point.t
  type answer = cell_answer

  type t = Cqtree.t
  type loc = Cqtree.location
  type descriptor = int * int array  (* the located node's cube *)

  let name = Printf.sprintf "quadtree-%dd" D.dim
  let visit_label = "cube-walk"

  let build ?pool keys = Cqtree.build ?pool ~dim:D.dim keys

  let size = Cqtree.size
  let storage_units = Cqtree.node_count

  let range_ids t =
    let acc = ref [] in
    Cqtree.iter_nodes t ~f:(fun n -> acc := Cqtree.node_id n :: !acc);
    !acc

  let insert t k =
    let _, added, removed = Cqtree.insert_delta t k in
    { Range_structure.added; removed }

  let remove t k =
    let _, added, removed = Cqtree.remove_delta t k in
    { Range_structure.added; removed }

  (* The tree's batch engines assign node ids exactly as the per-key loop
     would (commit in global batch position order), inserts only ever add
     and removes only ever drop, and ids are never reused — so the net
     delta is just the sorted id list. *)
  let insert_batch ?pool t ks =
    let _inserted, added = Cqtree.insert_batch ?pool t ks in
    if added = [] then Range_structure.empty_delta
    else { Range_structure.added = List.sort compare added; removed = [] }

  let remove_batch ?pool t ks =
    let _removed, dropped = Cqtree.remove_batch ?pool t ks in
    if dropped = [] then Range_structure.empty_delta
    else { Range_structure.added = []; removed = List.sort compare dropped }

  let probe k = k

  let ids_of_path path = List.map Cqtree.node_id path

  let locate t q =
    let loc, path = Cqtree.locate t q in
    (loc, ids_of_path path)

  let refine t ~from q =
    match Cqtree.node_of_cube t from with
    | Some start ->
        let loc, path = Cqtree.locate_from t start q in
        (loc, ids_of_path path)
    | None ->
        (* The subset-node property guarantees this cannot happen for level
           sets of the hierarchy; fall back to a full search defensively. *)
        locate t q

  let describe _t loc = Cqtree.node_cube loc.Cqtree.node

  let answer _t loc q =
    ignore q;
    let depth, _ = Cqtree.node_cube loc.Cqtree.node in
    { cell_depth = depth; cell_point = Cqtree.node_point loc.Cqtree.node }

  (* Box and k-NN walks are not confined to the located cell (the region
     spans cubes the descent never saw), so the scan re-enters the tree
     from its root and reports the full pruned walk; the descent's
     location only anchored the probe. *)
  type scan = point_scan
  type scan_answer = point_scan_answer

  let scan_probe = function Box { lo; _ } -> lo | Knn { center; _ } -> center

  let scan t _loc s =
    match s with
    | Box { lo; hi; limit } ->
        let count, sample, visited = Cqtree.range_scan t ~lo ~hi ~limit in
        (Box_hits { count; sample }, visited)
    | Knn { center; k } ->
        let hits, visited = Cqtree.knn t center ~k in
        (Knn_hits hits, visited)
end

module Points2d = Points (struct
  let dim = 2
end)

module Points3d = Points (struct
  let dim = 3
end)

(** Prefix-search answer for trie skip-webs. *)
type trie_answer = {
  lcp : string;  (** longest stored prefix of the query *)
  matches : int;  (** stored strings extending the query *)
}

(** Prefix enumeration: all stored strings extending [prefix], reporting
    the total and up to [scan_limit] of them lexicographically. *)
type trie_scan = { prefix : string; scan_limit : int }

type trie_scan_answer = { total : int; strings : string list }

(** Character strings over fixed alphabets via compressed tries (§3.2). *)
module Strings :
  Range_structure.S
    with type key = string
     and type query = string
     and type answer = trie_answer
     and type scan = trie_scan
     and type scan_answer = trie_scan_answer = struct
  type key = string
  type query = string
  type answer = trie_answer

  type t = Ctrie.t
  type loc = Ctrie.location
  type descriptor = string  (* the located node's string *)

  let name = "trie"
  let visit_label = "trie-walk"

  let build ?pool keys = Ctrie.build ?pool keys

  let size = Ctrie.size
  let storage_units = Ctrie.node_count

  let range_ids t =
    let acc = ref [] in
    Ctrie.iter_nodes t ~f:(fun n -> acc := Ctrie.node_id n :: !acc);
    !acc

  let insert t k =
    let _, added, removed = Ctrie.insert_delta t k in
    { Range_structure.added; removed }

  let remove t k =
    let _, added, removed = Ctrie.remove_delta t k in
    { Range_structure.added; removed }

  (* Same reasoning as the quadtree instance: trie batch commits number
     nodes in global batch position order, inserts only add and removes
     only drop, so the net delta is the sorted id list. *)
  let insert_batch ?pool t ks =
    let _inserted, added = Ctrie.insert_batch ?pool t ks in
    if added = [] then Range_structure.empty_delta
    else { Range_structure.added = List.sort compare added; removed = [] }

  let remove_batch ?pool t ks =
    let _removed, dropped = Ctrie.remove_batch ?pool t ks in
    if dropped = [] then Range_structure.empty_delta
    else { Range_structure.added = []; removed = List.sort compare dropped }

  let probe k = k

  let ids_of_path path = List.map Ctrie.node_id path

  let locate t q =
    let loc, path = Ctrie.locate t q in
    (loc, ids_of_path path)

  let refine t ~from q =
    match Ctrie.node_of_string t from with
    | Some start ->
        let loc, path = Ctrie.locate_from t start q in
        (loc, ids_of_path path)
    | None -> locate t q

  let describe _t loc = Ctrie.node_string loc.Ctrie.node

  let answer t _loc q = { lcp = Ctrie.longest_common_prefix t q; matches = Ctrie.count_with_prefix t q }

  (* The prefix subtree hangs exactly at the descent's location, so the
     scan consumes [loc] directly — no re-location — and only the
     enumeration walk below it is charged. *)
  type scan = trie_scan
  type scan_answer = trie_scan_answer

  let scan_probe s = s.prefix

  let scan t loc s =
    let total, strings, visited = Ctrie.prefix_scan t loc s.prefix ~limit:s.scan_limit in
    ({ total; strings }, visited)
end

(** Point-location answer for trapezoidal-map skip-webs. *)
type trap_answer = {
  above : int option;  (** id of the segment bounding the trapezoid above, if any *)
  below : int option;
  xspan : float * float;
}

(** Planar subdivisions by disjoint segments via trapezoidal maps (§3.3). *)
module Segments :
  Range_structure.S
    with type key = Segment.t
     and type query = float * float
     and type answer = trap_answer
     and type scan = float * float
     and type scan_answer = trap_answer = struct
  type key = Segment.t
  type query = float * float
  type answer = trap_answer

  type t = Trapmap.t
  type loc = Trapmap.trap
  type descriptor = Trapmap.trap

  let name = "trapezoidal-map"
  let visit_label = "trap-walk"

  (* Array order on purpose (not {!Trapmap.of_sorted}): trapezoid ids —
     hence host placement — stay exactly those of the per-segment insert
     loop this build replaced. *)
  let build ?pool keys = Trapmap.build ?pool keys

  let size = Trapmap.segment_count
  let storage_units = Trapmap.trap_count

  let range_ids t = List.map Trapmap.trap_id (Trapmap.traps t)

  let insert t k =
    let added, removed = Trapmap.insert_delta t k in
    { Range_structure.added; removed }

  let remove _t _k =
    failwith "Segments.remove: trapezoidal-map deletion is out of scope (paper §4 amortizes insertions only)"

  let insert_batch ?pool t ks =
    let per_seg = Trapmap.insert_batch ?pool t ks in
    Range_structure.net_deltas
      (List.map (fun (added, removed) -> { Range_structure.added; removed }) per_seg)

  let remove_batch ?pool t ks =
    ignore pool;
    (* sequential by design: deletions raise (out of scope for trapezoidal
       maps), so the only batch that gets past the first key is the empty
       one — nothing to fan out. *)
    Range_structure.batch_of_fold remove t ks

  (* A point just above the segment's midpoint locates where the segment
     will land. *)
  let probe k =
    let (x0, _), (x1, _) = Segment.endpoints k in
    let xm = (x0 +. x1) /. 2.0 in
    (xm, Segment.y_at k xm +. 1e-9)

  let locate t q =
    match Trapmap.locate_opt t q with
    | Some tr -> (tr, [ Trapmap.trap_id tr ])
    | None -> failwith "Segments.locate: query on the subdivision skeleton"

  let refine t ~from q =
    (* The conflict list of the child trapezoid contains the parent
       trapezoid holding q (Lemma 5); the hyperlink hop goes straight to
       it. *)
    match List.find_opt (fun tr -> Trapmap.trap_contains tr q) (Trapmap.conflicts t from) with
    | Some tr -> (tr, [ Trapmap.trap_id tr ])
    | None -> locate t q

  let describe _t loc = loc

  let answer _t loc _q =
    {
      above = Option.map Segment.id (Trapmap.trap_top loc);
      below = Option.map Segment.id (Trapmap.trap_bottom loc);
      xspan = Trapmap.trap_xspan loc;
    }

  (* Point location is already a "scan" of one trapezoid: the multi-result
     surface degenerates to reading the located range. *)
  type scan = float * float
  type scan_answer = trap_answer

  let scan_probe q = q
  let scan t loc q = (answer t loc q, [ Trapmap.trap_id loc ])
end
