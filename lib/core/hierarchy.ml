module Network = Skipweb_net.Network
module Trace = Skipweb_net.Trace
module Placement = Skipweb_net.Placement
module Membership = Skipweb_util.Membership
module Prng = Skipweb_util.Prng
module Pool = Skipweb_util.Pool

module Make (S : Range_structure.S) = struct
  (* Level sets are identified by (level, prefix): the level-ℓ set with
     ℓ-bit membership prefix b holds every element whose vector starts with
     b. Level 0 is the full ground set.

     Host-side cost discipline: every update does O(levels) hashtable work
     plus whatever [S.insert]/[S.remove] cost, never O(n) bookkeeping. The
     live-id arena supports O(1) insert/remove/uniform-sample, and memory
     charges follow the O(1) range deltas the structures report instead of
     re-diffing the full live range set per update. *)

  (* All mutable state of one level lives in its [level_state] and nowhere
     else. That ownership boundary is what the parallel write path runs on:
     a batch hands each level to its own domain, and the level tasks share
     nothing but the read-only batch array, the read-only key index and the
     network's charge buffers — no locks needed, no interleaving visible. *)
  type level_state = {
    structures : (int, S.t) Hashtbl.t;  (* prefix -> structure *)
    members : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* prefix -> member ids *)
    charged : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* prefix -> charged range ids *)
  }

  type t = {
    net : Network.t;
    place_seed : int;
    r : int;  (* replication factor: copies per range *)
    (* Read-path level cache (the NoN / bucket-skip-web trick): every
       range of the bottom [cache_levels] levels — the coarse, sparse-set
       levels every query funnels through — keeps [cache_replicas - 1]
       extra copies beyond its r data replicas. Cache copies occupy
       replica slots r .. r + cache_replicas - 2 of the same unified slot
       space, so placement, collision skipping, redraw generations and
       repair need no second mechanism. The window is anchored at level 0
       (membership prefixes only grow with the level index, so "coarse"
       means a *small* level index here), which keeps [cached_level]
       independent of [top]: growing or shrinking the hierarchy never
       shifts which levels are cached, so charges always match. *)
    cache_levels : int;  (* c: levels 0 .. c - 1 are cached *)
    cache_replicas : int;  (* k: total read copies per cached range *)
    cache_seed : int;  (* salts the per-origin slot choice *)
    (* Re-drawn placements: (level, prefix, range id, replica slot) ->
       redraw generation. Slot j of a range lives at the hash of
       (place_seed, level set, rid, j, generation); absent means
       generation 0. A repair pass bumps a dead slot's generation until
       the hash lands on a live host, so placement stays a pure function
       of the structure's state — queries, charging and repair all agree
       on where every copy is without any per-copy pointer state. *)
    redraw : (int * int * int * int, int) Hashtbl.t;
    vecs : Membership.t;
    mutable layers : level_state array;  (* index = level; length = top + 1 *)
    key_ids : (S.key, int) Hashtbl.t;
    id_keys : (int, S.key) Hashtbl.t;
    (* Swap-pop arena of live element ids: the first [live] slots of [ids]
       are the live ids, [id_pos] maps an id back to its slot. *)
    mutable ids : int array;
    mutable live : int;
    id_pos : (int, int) Hashtbl.t;
    mutable top : int;  (* K = ceil(log2 n) *)
    mutable next_id : int;
  }

  let size t = Hashtbl.length t.key_ids

  let levels t = t.top + 1

  let prefix t id len = Membership.prefix t.vecs ~id ~len

  let fresh_layer () =
    { structures = Hashtbl.create 16; members = Hashtbl.create 16; charged = Hashtbl.create 16 }

  (* Is this level in the cache window, with an active cache? With
     [cache_replicas = 1] (the default) this is false everywhere, and
     every loop below collapses to its pre-cache bounds — the bit-identical
     k = 1 contract. *)
  let cached_level t level = t.cache_replicas > 1 && level < t.cache_levels

  (* How many copies (data replicas + cache copies) a range at this level
     carries: the loop bound for charging, redraw cleanup, repair and the
     invariant cross-check. *)
  let slots_at t level = if cached_level t level then t.r + t.cache_replicas - 1 else t.r

  (* Host of replica slot [j] of a range at redraw generation [g]. At
     slot 0, generation 0, the mixing constants vanish and this is exactly
     the historical single-copy hash — the bit-identical zero-failure
     contract. *)
  let slot_host t level b rid j g =
    Prng.hash3
      (t.place_seed + (j * 0x9e3779) + (g * 0x85ebca))
      ((level * 0x100000) + b)
      rid
    mod Network.host_count t.net

  let slot_generation t level b rid j =
    if Hashtbl.length t.redraw = 0 then 0
    else match Hashtbl.find_opt t.redraw (level, b, rid, j) with Some g -> g | None -> 0

  (* Host of replica slot [j]: the slot's generation-[g] draw, where raw
     draws landing on a host already holding an earlier slot of the same
     range are skipped — so the r copies of a range always occupy r
     distinct hosts, and killing at most r - 1 hosts can never destroy
     every copy of anything. Slot 0 at generation 0 takes raw draw 0:
     exactly the historical single-copy hash (the bit-identical
     zero-failure contract), which the first branch serves without the
     slot scan. *)
  let replica_host t level b rid j =
    if j = 0 && Hashtbl.length t.redraw = 0 then slot_host t level b rid 0 0
    else begin
      let prev = Array.make (max j 1) 0 in
      let chosen = ref 0 in
      for s = 0 to j do
        let admissible h =
          let ok = ref true in
          for x = 0 to s - 1 do
            if prev.(x) = h then ok := false
          done;
          !ok
        in
        let rec pick g gg attempts =
          if attempts > 10_000 then failwith "Hierarchy: replica placement exhausted";
          let h = slot_host t level b rid s gg in
          if admissible h then (if g = 0 then h else pick (g - 1) (gg + 1) (attempts + 1))
          else pick g (gg + 1) (attempts + 1)
        in
        let h = pick (slot_generation t level b rid s) 0 0 in
        if s < j then prev.(s) <- h else chosen := h
      done;
      !chosen
    end

  (* Where a query walk should go for a range: the primary, or — mid-walk
     failover — the first live replica when the primary is dead. When every
     replica is dead the primary is returned anyway, so [Network.goto]
     raises [Host_dead] and the operation fails like a timed-out RPC. *)
  let route_host t level b rid =
    let h0 = replica_host t level b rid 0 in
    if Network.alive t.net h0 then h0
    else
      let rec go j =
        if j >= t.r then h0
        else
          let h = replica_host t level b rid j in
          if Network.alive t.net h then h else go (j + 1)
      in
      go 1

  (* Where a query originating at element [origin] reads a range: at
     cached levels, its deterministic per-origin cache slot — slot 0 is
     the primary itself, slot s >= 1 the cache copy at unified slot
     r - 1 + s — falling back to the ordinary primary/failover route when
     that copy's host is dead. Pure in (cache_seed, origin, level), so a
     fixed-parameter run is bit-identical and jobs-invariant, and with
     the cache off ([replica_slot] returns 0 for k <= 1) this *is*
     [route_host]. Different origins spread over all k copies, which is
     what splits a hot coarse-level range's load k ways. *)
  let read_host t origin level b rid =
    if cached_level t level then begin
      let s =
        Placement.replica_slot ~seed:t.cache_seed ~origin ~level ~k:t.cache_replicas
      in
      if s = 0 then route_host t level b rid
      else
        let h = replica_host t level b rid (t.r - 1 + s) in
        if Network.alive t.net h then h else route_host t level b rid
    end
    else route_host t level b rid

  (* Charge (or release) one unit on every copy of a range — data replicas
     and, at cached levels, the cache copies too. *)
  let charge_replicas t ~charge level b rid k =
    for j = 0 to slots_at t level - 1 do
      charge (replica_host t level b rid j) k
    done

  (* Drop any redraw state a dying range holds, so a later range reusing
     the same (level, b, rid) code starts from generation 0 again. *)
  let forget_redraws t level b rid =
    if Hashtbl.length t.redraw > 0 then
      for j = 0 to slots_at t level - 1 do
        Hashtbl.remove t.redraw (level, b, rid, j)
      done

  (* ------- live-id arena: O(1) insert / remove / uniform sample ------- *)

  let arena_add t id =
    if t.live = Array.length t.ids then begin
      let bigger = Array.make (max 8 (2 * t.live)) 0 in
      Array.blit t.ids 0 bigger 0 t.live;
      t.ids <- bigger
    end;
    t.ids.(t.live) <- id;
    Hashtbl.replace t.id_pos id t.live;
    t.live <- t.live + 1

  let arena_remove t id =
    match Hashtbl.find_opt t.id_pos id with
    | None -> ()
    | Some i ->
        let last = t.live - 1 in
        let moved = t.ids.(last) in
        t.ids.(i) <- moved;
        Hashtbl.replace t.id_pos moved i;
        t.live <- last;
        Hashtbl.remove t.id_pos id

  let sample_id t rng = t.ids.(Prng.int rng t.live)

  (* ------- incremental memory accounting ------- *)

  let find_or_create tbl key =
    match Hashtbl.find_opt tbl key with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 16 in
        Hashtbl.replace tbl key h;
        h

  let member_table ly b = find_or_create ly.members b

  let charged_table ly b = find_or_create ly.charged b

  (* The charge sink: serialized single-op paths charge the network
     directly; per-level batch tasks pass a [Network.charge buffer] sink
     instead, so concurrent levels commit order-independent netted sums. *)
  let direct_charge t h k = Network.charge_memory t.net h k

  (* Charge every given range of a freshly built level structure (its
     charged table must be empty). *)
  let charge_fresh t ~charge ly level b rids =
    let ch = charged_table ly b in
    List.iter
      (fun rid ->
        Hashtbl.replace ch rid ();
        charge_replicas t ~charge level b rid 1)
      rids

  (* Release every charge of one level set (structure dropped or level
     shrunk away). *)
  let uncharge_set t ~charge ly level b =
    match Hashtbl.find_opt ly.charged b with
    | None -> ()
    | Some ch ->
        Hashtbl.iter
          (fun rid () ->
            charge_replicas t ~charge level b rid (-1);
            forget_redraws t level b rid)
          ch;
        Hashtbl.remove ly.charged b

  (* Apply an O(1) range delta reported by [S.insert]/[S.remove]: the only
     memory traffic an update generates. Membership-guarded so a duplicate
     report cannot double-charge. *)
  let apply_delta t ~charge ly level b (d : Range_structure.range_delta) =
    let ch = charged_table ly b in
    List.iter
      (fun rid ->
        if not (Hashtbl.mem ch rid) then begin
          Hashtbl.replace ch rid ();
          charge_replicas t ~charge level b rid 1
        end)
      d.Range_structure.added;
    List.iter
      (fun rid ->
        if Hashtbl.mem ch rid then begin
          Hashtbl.remove ch rid;
          charge_replicas t ~charge level b rid (-1);
          forget_redraws t level b rid
        end)
      d.Range_structure.removed

  let required_top n =
    let rec go k = if 1 lsl k >= max 1 n then k else go (k + 1) in
    go 0

  (* Build every set of one level in a single pass over the ground set:
     bucket the keys by level prefix, then one [S.build] per bucket. Reads
     only [t.id_keys] (frozen during a batch) and writes only this level's
     state, so levels build concurrently. When a pool is threaded in (the
     coarse levels of the two-axis schedule, which run one at a time in
     the caller), each bucket build may shard host-local work over it. *)
  let build_level ?pool t ~charge level =
    let ly = t.layers.(level) in
    let buckets = Hashtbl.create 64 in
    Hashtbl.iter
      (fun id k ->
        let b = prefix t id level in
        Hashtbl.replace (member_table ly b) id ();
        Hashtbl.replace buckets b (k :: (try Hashtbl.find buckets b with Not_found -> [])))
      t.id_keys;
    Hashtbl.iter
      (fun b ks ->
        let s = S.build ?pool (Array.of_list ks) in
        Hashtbl.replace ly.structures b s;
        charge_fresh t ~charge ly level b (S.range_ids s))
      buckets

  (* Register a fresh key: allocate its id and index it. Ids are handed out
     in presentation order, and the id fixes the element's membership
     vector — every entry point (build, insert, insert_batch) must agree on
     this order for a bulk load to be indistinguishable from the same keys
     arriving one at a time. Registration is the coin-drawing step, so it
     always runs sequentially before any level task starts: the membership
     bits [Membership.prefix] derives from (seed, id, level) can never
     depend on how the levels are later scheduled. *)
  let register t k =
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.replace t.key_ids k id;
    Hashtbl.replace t.id_keys id k;
    arena_add t id;
    id

  let grow_top ?pool t =
    let wanted = required_top (size t) in
    if t.top < wanted then begin
      let old = t.layers in
      t.layers <-
        Array.init (wanted + 1) (fun l -> if l < Array.length old then old.(l) else fresh_layer ());
      while t.top < wanted do
        let level = t.top + 1 in
        build_level ?pool t ~charge:(direct_charge t) level;
        t.top <- level
      done
    end

  (* Group a sorted (key, id) batch by this level's membership prefix.
     Buckets come back in order of first appearance in the batch and keep
     the batch's ascending key order inside each group — both are pure
     functions of the batch, never of scheduling. *)
  let bucket_sorted t batch level =
    let order = ref [] in
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun ((_, id) as entry) ->
        let b = prefix t id level in
        match Hashtbl.find_opt tbl b with
        | Some l -> l := entry :: !l
        | None ->
            Hashtbl.replace tbl b (ref [ entry ]);
            order := b :: !order)
      batch;
    List.rev_map (fun b -> (b, Array.of_list (List.rev !(Hashtbl.find tbl b)))) !order
    |> List.rev

  (* One level's slice of a bulk insertion: group the sorted fresh batch
     by membership prefix, then one batch splice per level set —
     [S.insert_batch] nets the same deltas the per-key loop reported, and
     shards the splice over [?pool] when the two-axis schedule threads
     one in. A set the batch creates from nothing takes one canonical
     [S.build] over its whole group. *)
  let insert_sweep ?pool t ~charge fresh level =
    let ly = t.layers.(level) in
    List.iter
      (fun (b, group) ->
        Array.iter (fun (_, id) -> Hashtbl.replace (member_table ly b) id ()) group;
        let ks = Array.map fst group in
        match Hashtbl.find_opt ly.structures b with
        | Some s -> apply_delta t ~charge ly level b (S.insert_batch ?pool s ks)
        | None ->
            let s = S.build ?pool ks in
            Hashtbl.replace ly.structures b s;
            charge_fresh t ~charge ly level b (S.range_ids s))
      (bucket_sorted t fresh level)

  (* One level's slice of a bulk deletion: drop a set's structure outright
     once the batch empties its member set (releasing every charge it
     held — same net charges as removing its keys one at a time), batch
     removal otherwise. *)
  let remove_sweep ?pool t ~charge victims level =
    let ly = t.layers.(level) in
    List.iter
      (fun (b, group) ->
        Array.iter (fun (_, id) -> Hashtbl.remove (member_table ly b) id) group;
        match Hashtbl.find_opt ly.structures b with
        | Some s ->
            if Hashtbl.length (member_table ly b) = 0 then begin
              Hashtbl.remove ly.structures b;
              uncharge_set t ~charge ly level b
            end
            else apply_delta t ~charge ly level b (S.remove_batch ?pool s (Array.map fst group))
        | None -> failwith "Hierarchy.remove_batch: missing structure")
      (bucket_sorted t victims level)

  (* How many of the biggest levels get intra-level sharding instead of a
     level task of their own: level ℓ holds ~n/2^ℓ keys, so levels up to
     log2(jobs) each still carry at least a whole domain's fair share and
     are worth splitting across every domain. *)
  let coarse_levels t p =
    let jobs = Pool.jobs p in
    let rec lg acc = if 1 lsl acc >= jobs then acc else lg (acc + 1) in
    min t.top (lg 0)

  (* The two-axis schedule. Level ℓ holds every key whose first ℓ coins
     came up heads, so per-level sweep cost falls geometrically with ℓ —
     fanning one task per level caps the speedup at the level count and
     serializes everything behind level 0's task. Instead: the coarse
     levels (0 .. log2 jobs) run one at a time in the caller with the
     pool threaded {e into} the sweep, where the chunk-shard batch engine
     splits the level's splice across every domain; the remaining levels
     then fan out one task per level, heaviest first, as before. The two
     phases cannot overlap (the pool is not re-entrant), but the fanned
     tail holds at most ~n/jobs of the work, so little is lost.

     Charge discipline: the coarse phase charges the network directly
     (nothing else is charging), the fanned tasks buffer and commit
     netted per-host sums through the network's atomics — either way
     per-host memory is bit-identical to the sequential loop for any
     jobs count. *)
  let run_levels ?pool t (f : ?pool:Pool.t -> charge:(int -> int -> unit) -> int -> unit) =
    match pool with
    | None ->
        for level = 0 to t.top do
          f ~charge:(direct_charge t) level
        done
    | Some p ->
        let coarse = coarse_levels t p in
        for level = 0 to coarse do
          f ~pool:p ~charge:(direct_charge t) level
        done;
        let rest = t.top - coarse in
        if rest > 0 then begin
          let n = size t in
          let weights = Array.init rest (fun i -> (n lsr (coarse + 1 + i)) + 1) in
          Pool.parallel_for_tasks p ~weights (fun i ->
              let level = coarse + 1 + i in
              let buf = Network.deferred_charges t.net in
              f ~charge:(Network.charge buf) level;
              Network.commit_charges buf)
        end

  (* Bulk insertion: register the whole batch (drawing every membership
     coin sequentially), then stream it through the hierarchy level by
     level in sorted key order, so each level structure absorbs its keys in
     one ascending sweep instead of [batch] independent random-rank
     updates; with a pool the per-level sweeps run on separate domains. A
     batch landing in an empty hierarchy takes the bucketed [build_level]
     path outright, also fanned per level. Pure host-side work — no query
     routing, hence no messages; returns the number of keys actually
     inserted. *)
  let insert_batch ?pool t keys =
    let was_empty = size t = 0 in
    let fresh = ref [] in
    Array.iter
      (fun k -> if not (Hashtbl.mem t.key_ids k) then fresh := (k, register t k) :: !fresh)
      keys;
    let fresh = Array.of_list (List.rev !fresh) in
    let count = Array.length fresh in
    if count = 0 then 0
    else if was_empty then begin
      t.top <- required_top (size t);
      t.layers <- Array.init (t.top + 1) (fun _ -> fresh_layer ());
      run_levels ?pool t (fun ?pool ~charge level -> build_level ?pool t ~charge level);
      count
    end
    else begin
      Array.sort (fun (a, _) (b, _) -> compare a b) fresh;
      run_levels ?pool t (fun ?pool ~charge level -> insert_sweep ?pool t ~charge fresh level);
      grow_top ?pool t;
      count
    end

  let build ~net ~seed ?(p = 0.5) ?(r = 1) ?(cache_levels = 0) ?(cache_replicas = 1) ?pool keys
      =
    if r < 1 then invalid_arg "Hierarchy.build: r >= 1";
    if r > Network.host_count net then invalid_arg "Hierarchy.build: r exceeds host count";
    if cache_levels < 0 then invalid_arg "Hierarchy.build: cache_levels >= 0";
    if cache_replicas < 1 then invalid_arg "Hierarchy.build: cache_replicas >= 1";
    if r + cache_replicas - 1 > Network.host_count net then
      invalid_arg "Hierarchy.build: r + cache_replicas - 1 exceeds host count";
    let vecs = if p = 0.5 then Membership.create ~seed else Membership.biased ~seed ~p in
    let t =
      {
        net;
        place_seed = seed + 0x5157;
        r;
        cache_levels;
        cache_replicas;
        cache_seed = seed + 0xca4e;
        redraw = Hashtbl.create 16;
        vecs;
        layers = [| fresh_layer () |];
        key_ids = Hashtbl.create 64;
        id_keys = Hashtbl.create 64;
        ids = [||];
        live = 0;
        id_pos = Hashtbl.create 64;
        top = 0;
        next_id = 0;
      }
    in
    ignore (insert_batch ?pool t keys);
    t

  let replication t = t.r

  let cache t = (t.cache_levels, t.cache_replicas)

  (* ------- self-repair ------- *)

  type repair_stats = { scanned : int; repaired : int; messages : int; lost : int }

  (* One repair pass: walk every charged range, and for every replica slot
     whose current host is dead, bump the slot's redraw generation until
     its placement hash lands on a live host, migrate the memory charge
     off the dead host, and bill one copy message for stealing the range
     from a surviving replica (rainbow-style repair: any live copy can
     seed the new one). A slot with {e no} surviving replica is counted in
     [lost] instead of [messages] — the simulator re-materializes it so
     the structure stays whole, but a real deployment would have lost that
     range; with r >= 2 and at most r - 1 concurrent failures per epoch,
     [lost] is always 0.

     The repair bill is reported in the returned stats, not pushed through
     sessions: repair is host-side maintenance (like deferred charges),
     metered separately from the query workload so availability metrics
     stay clean. Must not run concurrently with queries or updates. *)
  let repair t =
    let scanned = ref 0 and repaired = ref 0 and messages = ref 0 and lost = ref 0 in
    Array.iteri
      (fun level ly ->
        Hashtbl.iter
          (fun b ch ->
            Hashtbl.iter
              (fun rid () ->
                incr scanned;
                (* Every copy of the range: its r data replicas plus, at
                   cached levels, the cache copies — a cache copy on a
                   dead host is re-drawn with the same collision-skipping
                   generation scheme and billed like any other steal, so
                   the cache never silently survives on dead hosts. *)
                let slots = slots_at t level in
                let old = Array.init slots (replica_host t level b rid) in
                let any_live = Array.exists (fun h -> Network.alive t.net h) old in
                if Array.exists (fun h -> not (Network.alive t.net h)) old then begin
                  (* Bump each dead slot's generation until its placement
                     lands live. Ascending slot order: a bumped slot can
                     shift the admissible enumeration of *later* slots
                     only, so one ascending pass settles every slot. *)
                  for j = 0 to slots - 1 do
                    let rec settle attempts =
                      if attempts > 10_000 then
                        failwith "Hierarchy.repair: could not find a live host";
                      if not (Network.alive t.net (replica_host t level b rid j)) then begin
                        Hashtbl.replace t.redraw (level, b, rid, j)
                          (slot_generation t level b rid j + 1);
                        settle (attempts + 1)
                      end
                    in
                    settle 0
                  done;
                  (* Migrate charges by placement diff — which also catches
                     a live slot whose admissible draw shifted because an
                     earlier slot of the same range moved. *)
                  for j = 0 to slots - 1 do
                    let h' = replica_host t level b rid j in
                    if h' <> old.(j) then begin
                      Network.charge_memory t.net old.(j) (-1);
                      Network.charge_memory t.net h' 1;
                      incr repaired;
                      if any_live then incr messages else incr lost
                    end
                  done
                end)
              ch)
          ly.charged)
      t.layers;
    { scanned = !scanned; repaired = !repaired; messages = !messages; lost = !lost }

  let level_set_sizes t level =
    Hashtbl.fold (fun _ s acc -> S.size s :: acc) t.layers.(level).structures []

  let total_storage t =
    Array.fold_left
      (fun acc ly -> Hashtbl.fold (fun _ s acc -> acc + S.storage_units s) ly.structures acc)
      0 t.layers

  type query_stats = { messages : int; ranges_visited : int; per_level_visits : int list }

  let structure_exn t level b =
    match Hashtbl.find_opt t.layers.(level).structures b with
    | Some s -> s
    | None -> failwith "Hierarchy: missing level structure on an element's path"

  (* Route a query from the top-level set of the given element down to
     level 0; the session's host pointer tracks where processing happens.
     Shared by point queries and scans: returns the still-open session
     (the caller charges any further walk, then finishes it), the level-0
     location and structure, and the visit accounting (per-level counts
     in level-0-first order).

     Tracing discipline: one leveled span per refinement step, closed with
     the step's conflict-set size, and every hop labeled with the
     structure's walk kind. All trace work is guarded on [trace], so an
     untraced query allocates and branches exactly as before. *)
  let routed_descent ?trace t origin_id q =
    let b_top = prefix t origin_id t.top in
    let s_top = structure_exn t t.top b_top in
    let loc0, visited0 = S.locate s_top q in
    let start_host =
      match visited0 with
      | rid :: _ -> read_host t origin_id t.top b_top rid
      | [] -> read_host t origin_id t.top b_top 0
    in
    let session = Network.start ?trace t.net start_host in
    let goto_label = match trace with None -> None | Some _ -> Some S.visit_label in
    (match trace with
    | None -> ()
    | Some tr -> Trace.span_open tr ~level:t.top ("locate " ^ S.name));
    List.iter
      (fun rid -> Network.goto ?label:goto_label session (read_host t origin_id t.top b_top rid))
      visited0;
    (match trace with
    | None -> ()
    | Some tr ->
        Trace.span_close tr ~note:(Printf.sprintf "conflicts=%d" (List.length visited0)) ());
    let per_level = ref [ List.length visited0 ] in
    let total = ref (List.length visited0) in
    let rec descend level loc s_above =
      if level < 0 then (loc, s_above)
      else begin
        let b = prefix t origin_id level in
        let s = structure_exn t level b in
        let desc = S.describe s_above loc in
        (match trace with
        | None -> ()
        | Some tr -> Trace.span_open tr ~level ("refine " ^ S.name));
        let loc', visited = S.refine s ~from:desc q in
        List.iter
          (fun rid -> Network.goto ?label:goto_label session (read_host t origin_id level b rid))
          visited;
        (match trace with
        | None -> ()
        | Some tr ->
            Trace.span_close tr ~note:(Printf.sprintf "conflicts=%d" (List.length visited)) ());
        per_level := List.length visited :: !per_level;
        total := !total + List.length visited;
        descend (level - 1) loc' s
      end
    in
    let loc_final, s_final = descend (t.top - 1) loc0 s_top in
    (session, loc_final, s_final, !per_level, !total)

  let query_from ?trace t origin_id q =
    let session, loc_final, s_final, per_level, total = routed_descent ?trace t origin_id q in
    Network.finish session;
    let answer = S.answer s_final loc_final q in
    ( answer,
      {
        messages = Network.messages session;
        ranges_visited = total;
        per_level_visits = List.rev per_level;
      } )

  let query ?trace t ~rng q =
    if size t = 0 then invalid_arg "Hierarchy.query: empty structure";
    query_from ?trace t (sample_id t rng) q

  (* Multi-result scans (range counts, k-NN, prefix enumeration): route
     the scan's probe down to level 0 exactly like a point query, then run
     the structure's scan walk there, charging each range it visits as a
     hop from the session's current host. The extra visits land in level
     0's per-level entry, so scan stats decompose like query stats. *)
  let scan_from ?trace t origin_id sc =
    let q = S.scan_probe sc in
    let session, loc0, s0, per_level, total = routed_descent ?trace t origin_id q in
    (match trace with
    | None -> ()
    | Some tr -> Trace.span_open tr ~level:0 ("scan " ^ S.name));
    let ans, visited = S.scan s0 loc0 sc in
    let goto_label = match trace with None -> None | Some _ -> Some S.visit_label in
    let b0 = prefix t origin_id 0 in
    List.iter
      (fun rid -> Network.goto ?label:goto_label session (read_host t origin_id 0 b0 rid))
      visited;
    (match trace with
    | None -> ()
    | Some tr -> Trace.span_close tr ~note:(Printf.sprintf "ranges=%d" (List.length visited)) ());
    Network.finish session;
    let nv = List.length visited in
    let per_level = match per_level with l0 :: rest -> (l0 + nv) :: rest | [] -> [ nv ] in
    ( ans,
      {
        messages = Network.messages session;
        ranges_visited = total + nv;
        per_level_visits = List.rev per_level;
      } )

  let scan ?trace t ~rng sc =
    if size t = 0 then invalid_arg "Hierarchy.scan: empty structure";
    scan_from ?trace t (sample_id t rng) sc

  (* Independent scans fanned out like {!query_batch}: origins pre-drawn
     sequentially, pure read-only walks, bit-identical for any jobs
     count. *)
  let scan_batch ?pool t ~rng scs =
    let n = Array.length scs in
    if n > 0 && size t = 0 then invalid_arg "Hierarchy.scan_batch: empty structure";
    let origins = Array.init n (fun _ -> sample_id t rng) in
    let out = Array.make n None in
    let run i = out.(i) <- Some (scan_from t origins.(i) scs.(i)) in
    (match pool with
    | None ->
        for i = 0 to n - 1 do
          run i
        done
    | Some p -> Pool.parallel_for p ~lo:0 ~hi:n run);
    Array.map (function Some r -> r | None -> assert false) out

  (* Parallel fan-out of independent queries. Origins are pre-drawn
     sequentially from the caller's rng — [query] consumes exactly one
     draw per call, so the batch sees the same coin sequence a sequential
     loop of [query] would — after which each [query_from] is a pure
     read-only walk committing its session via the network's atomic
     counters. Answers, stats and network totals are therefore
     bit-identical for any jobs count, including [pool = None]. *)
  let query_batch ?pool t ~rng qs =
    let n = Array.length qs in
    if n > 0 && size t = 0 then invalid_arg "Hierarchy.query_batch: empty structure";
    let origins = Array.init n (fun _ -> sample_id t rng) in
    let out = Array.make n None in
    let run i = out.(i) <- Some (query_from t origins.(i) qs.(i)) in
    (match pool with
    | None ->
        for i = 0 to n - 1 do
          run i
        done
    | Some p -> Pool.parallel_for p ~lo:0 ~hi:n run);
    Array.map (function Some r -> r | None -> assert false) out

  (* The counterpart of [grow_top]: after deletions the required number of
     levels shrinks, so dead levels must be dropped — otherwise the
     hierarchy pays their linking messages and per-host memory forever.
     With per-level state this is: release every charge the dying layers
     hold, then truncate the layer array. *)
  let shrink_top t =
    let wanted = required_top (size t) in
    if t.top > wanted then begin
      for level = wanted + 1 to t.top do
        let ly = t.layers.(level) in
        Hashtbl.iter
          (fun b ch ->
            Hashtbl.iter
              (fun rid () ->
                charge_replicas t ~charge:(direct_charge t) level b rid (-1);
                forget_redraws t level b rid)
              ch)
          ly.charged
      done;
      t.layers <- Array.sub t.layers 0 (wanted + 1);
      t.top <- wanted
    end

  let insert t k =
    if Hashtbl.mem t.key_ids k then 0
    else begin
      (* Locate first (§4): route a probe query if the structure is not
         empty, paying its message cost. *)
      let locate_cost =
        if size t = 0 then 0
        else
          let rng = Prng.create (t.next_id + 77) in
          let _, stats = query_from t (sample_id t rng) (S.probe k) in
          stats.messages
      in
      let id = register t k in
      let charge = direct_charge t in
      for level = 0 to t.top do
        let ly = t.layers.(level) in
        let b = prefix t id level in
        Hashtbl.replace (member_table ly b) id ();
        match Hashtbl.find_opt ly.structures b with
        | Some s -> apply_delta t ~charge ly level b (S.insert s k)
        | None ->
            let s = S.build [| k |] in
            Hashtbl.replace ly.structures b s;
            charge_fresh t ~charge ly level b (S.range_ids s)
      done;
      let linking_cost = 2 * (t.top + 1) in
      grow_top t;
      locate_cost + linking_cost
    end

  let remove t k =
    match Hashtbl.find_opt t.key_ids k with
    | None -> 0
    | Some id ->
        let locate_cost =
          let rng = Prng.create (id + 991) in
          let _, stats = query_from t (sample_id t rng) (S.probe k) in
          stats.messages
        in
        let charge = direct_charge t in
        for level = 0 to t.top do
          let ly = t.layers.(level) in
          let b = prefix t id level in
          Hashtbl.remove (member_table ly b) id;
          match Hashtbl.find_opt ly.structures b with
          | Some s ->
              if Hashtbl.length (member_table ly b) = 0 then begin
                Hashtbl.remove ly.structures b;
                uncharge_set t ~charge ly level b
              end
              else apply_delta t ~charge ly level b (S.remove s k)
          | None -> failwith "Hierarchy.remove: missing structure"
        done;
        Hashtbl.remove t.key_ids k;
        Hashtbl.remove t.id_keys id;
        arena_remove t id;
        let cost = locate_cost + (2 * (t.top + 1)) in
        shrink_top t;
        cost

  (* Bulk deletion, the mirror of [insert_batch]: one sorted sweep per
     level (fanned over the pool when one is given), dropping a level set's
     structure outright once the batch has emptied its member set, then one
     hierarchy shrink at the end. Host-side only; returns the number of
     keys actually removed. *)
  let remove_batch ?pool t keys =
    let victims = ref [] in
    let seen = Hashtbl.create (max 16 (Array.length keys)) in
    Array.iter
      (fun k ->
        match Hashtbl.find_opt t.key_ids k with
        | Some id when not (Hashtbl.mem seen id) ->
            Hashtbl.replace seen id ();
            victims := (k, id) :: !victims
        | Some _ | None -> ())
      keys;
    let victims = Array.of_list (List.rev !victims) in
    let count = Array.length victims in
    if count = 0 then 0
    else begin
      Array.sort (fun (a, _) (b, _) -> compare a b) victims;
      run_levels ?pool t (fun ?pool ~charge level -> remove_sweep ?pool t ~charge victims level);
      Array.iter
        (fun (k, id) ->
          Hashtbl.remove t.key_ids k;
          Hashtbl.remove t.id_keys id;
          arena_remove t id)
        victims;
      shrink_top t;
      count
    end

  let mean_refinement_work t ~queries ~rng =
    let total = ref 0 and count = ref 0 in
    Array.iter
      (fun q ->
        let _, stats = query t ~rng q in
        total := !total + stats.ranges_visited;
        count := !count + List.length stats.per_level_visits)
      queries;
    if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count

  let check_invariants t =
    let n = size t in
    if Array.length t.layers <> t.top + 1 then
      failwith "Hierarchy: layer array out of sync with top";
    for level = 0 to t.top do
      let ly = t.layers.(level) in
      let covered = ref 0 in
      Hashtbl.iter
        (fun b members ->
          covered := !covered + Hashtbl.length members;
          (match Hashtbl.find_opt ly.structures b with
          | Some s ->
              if S.size s <> Hashtbl.length members then
                failwith "Hierarchy: structure size disagrees with member set"
          | None -> if Hashtbl.length members > 0 then failwith "Hierarchy: missing structure");
          Hashtbl.iter
            (fun id () -> if prefix t id level <> b then failwith "Hierarchy: member in wrong set")
            members)
        ly.members;
      if !covered <> n then failwith "Hierarchy: level does not partition the ground set"
    done;
    if t.top <> required_top n then failwith "Hierarchy: top out of sync with size";
    (* Arena: exactly the live ids, each knowing its slot. *)
    if t.live <> n then failwith "Hierarchy: id arena size disagrees with ground set";
    for i = 0 to t.live - 1 do
      let id = t.ids.(i) in
      if Hashtbl.find_opt t.id_pos id <> Some i then failwith "Hierarchy: id arena slot broken";
      if not (Hashtbl.mem t.id_keys id) then failwith "Hierarchy: dead id in arena"
    done;
    (* Charged ranges track the live ranges of every structure exactly. *)
    Array.iter
      (fun ly ->
        Hashtbl.iter
          (fun b s ->
            let ch =
              match Hashtbl.find_opt ly.charged b with
              | Some ch -> ch
              | None -> failwith "Hierarchy: structure with no charged table"
            in
            let rids = S.range_ids s in
            if List.length rids <> Hashtbl.length ch then
              failwith "Hierarchy: charged range count drifted from live ranges";
            List.iter
              (fun rid ->
                if not (Hashtbl.mem ch rid) then failwith "Hierarchy: live range uncharged")
              rids)
          ly.structures;
        Hashtbl.iter
          (fun b ch ->
            if Hashtbl.length ch > 0 && not (Hashtbl.mem ly.structures b) then
              failwith "Hierarchy: charges for a dropped structure")
          ly.charged)
      t.layers;
    (* Cross-check the charges against the simulator's per-host memory.
       (Assumes this hierarchy is the only structure charging this
       network, which holds in the test harnesses.) *)
    let expected = Hashtbl.create 64 in
    Array.iteri
      (fun level ly ->
        Hashtbl.iter
          (fun b ch ->
            Hashtbl.iter
              (fun rid () ->
                for j = 0 to slots_at t level - 1 do
                  let h = replica_host t level b rid j in
                  Hashtbl.replace expected h (1 + try Hashtbl.find expected h with Not_found -> 0)
                done)
              ch)
          ly.charged)
      t.layers;
    for h = 0 to Network.host_count t.net - 1 do
      let e = try Hashtbl.find expected h with Not_found -> 0 in
      if Network.memory t.net h <> e then
        failwith
          (Printf.sprintf "Hierarchy: host %d memory %d but charged %d" h
             (Network.memory t.net h) e)
    done
end
