(** The contract a data structure must satisfy to be skip-webbed (§2.1–2.2
    of the paper, in operational form).

    A {e range-determined link structure} [D(S)] is a deterministic
    structure of nodes and links over a ground set [S], where every node
    and link carries a range (a subset of the universe) and incidences are
    range intersections. The skip-web framework additionally needs:

    - {b canonicity}: [D(S)] depends only on the set [S] (paper: "a unique
      link structure");
    - {b the subset-node property}: for [T ⊆ S], the location of a query
      in [D(T)] can be mapped to a starting point in [D(S)] from which the
      search continues — concretely, the maximal range containing the query
      in [D(T)] corresponds (via {!describe}/{!refine}) to a range of
      [D(S)] whose conflict neighborhood contains the answer;
    - {b a set-halving lemma} (§2.2): when [T] is a random half of [S],
      continuing the search in [D(S)] from a [D(T)] location touches O(1)
      ranges in expectation. The framework does not consume the lemma as
      code — it is what makes the measured costs logarithmic, and the
      lemma experiments (E8–E11) validate it per structure.

    Visited-range accounting: [locate] and [refine] return the integer ids
    of every node/link the search inspects, in order. The hierarchy maps
    each id to a host and charges one message per host boundary crossed, so
    a structure implementation must report honest visit sequences even when
    it takes CPU shortcuts.

    Update accounting: [insert] and [remove] return a {!range_delta} — the
    ids of the O(1) ranges they created and destroyed. The hierarchy uses
    the delta to adjust per-host memory charges incrementally instead of
    re-enumerating [range_ids] (which would make every update O(n)
    host-side), so deltas must be exact: after an update, the previously
    charged set plus [added] minus [removed] must equal [range_ids].

    Domain confinement (the parallel write path): the hierarchy's batch
    updates run one repair task per level on different OCaml domains, and
    each task builds and mutates that level's structures. An
    implementation must therefore keep {e all} of its mutable state —
    including any range-id counter — inside its [t] values: a module-level
    counter or cache shared between instances would race across domains
    and, worse, make range ids depend on scheduling, breaking the
    bit-identical-to-sequential guarantee. Determinism within one instance
    is already required by canonicity; this extends it to "no hidden
    coupling between instances". *)

type range_delta = { added : int list; removed : int list }
(** Range ids created / destroyed by one update. Ids are never reused, so
    the two lists are disjoint. *)

let empty_delta = { added = []; removed = [] }

module type S = sig
  type key
  type query
  type answer

  type t
  (** A mutable instance of the structure over one level set. *)

  type loc
  (** A located maximal range for some query. *)

  type descriptor
  (** A portable description of a located range, meaningful to the
      structure built over any superset (e.g. a quadtree cube, a trie node
      string, a trapezoid). *)

  val name : string

  val visit_label : string
  (** Short tag for traced range-walk hops of this structure (e.g.
      ["list-walk"], ["cube-walk"]): names the kind of pointer a hop
      chased, so a rendered trace distinguishes structure walks from
      hierarchy descents. Must be a constant — it is attached to hops on
      the traced path only and must not cost allocation per hop. *)

  val build : key array -> t
  (** Canonical build; duplicates are ignored. *)

  val size : t -> int
  (** Number of keys currently stored. *)

  val storage_units : t -> int
  (** Nodes + links currently allocated — what a host pays to store a piece
      of this structure. *)

  val range_ids : t -> int list
  (** Ids of all live ranges (for host placement and memory accounting). *)

  val insert : t -> key -> range_delta
  (** Add a key (no-op on duplicates, returning {!empty_delta}). Creates
      O(1) new ranges for the structures of this repository; the delta
      reports exactly which. *)

  val remove : t -> key -> range_delta
  (** Delete a key (no-op if absent, returning {!empty_delta}). Raises
      [Failure] for structures whose deletions are out of scope
      (trapezoidal maps, per §4's hedge). *)

  val probe : key -> query
  (** A query that routes to the place a key occupies (or would occupy) —
      the locate step of an update (§4). *)

  val locate : t -> query -> loc * int list
  (** Search from the structure's root: the maximal range containing the
      query, plus the visited range ids in order. *)

  val refine : t -> from:descriptor -> query -> loc * int list
  (** Continue a search in this structure given the location the query had
      in the structure over a {e subset} of this structure's keys. The
      subset-node property guarantees the descriptor maps into this
      structure. Returns the location here and the visited ids. *)

  val describe : t -> loc -> descriptor

  val answer : t -> loc -> query -> answer
  (** Extract the final answer at level 0. *)
end
