(** The contract a data structure must satisfy to be skip-webbed (§2.1–2.2
    of the paper, in operational form).

    A {e range-determined link structure} [D(S)] is a deterministic
    structure of nodes and links over a ground set [S], where every node
    and link carries a range (a subset of the universe) and incidences are
    range intersections. The skip-web framework additionally needs:

    - {b canonicity}: [D(S)] depends only on the set [S] (paper: "a unique
      link structure");
    - {b the subset-node property}: for [T ⊆ S], the location of a query
      in [D(T)] can be mapped to a starting point in [D(S)] from which the
      search continues — concretely, the maximal range containing the query
      in [D(T)] corresponds (via {!describe}/{!refine}) to a range of
      [D(S)] whose conflict neighborhood contains the answer;
    - {b a set-halving lemma} (§2.2): when [T] is a random half of [S],
      continuing the search in [D(S)] from a [D(T)] location touches O(1)
      ranges in expectation. The framework does not consume the lemma as
      code — it is what makes the measured costs logarithmic, and the
      lemma experiments (E8–E11) validate it per structure.

    Visited-range accounting: [locate] and [refine] return the integer ids
    of every node/link the search inspects, in order. The hierarchy maps
    each id to a host and charges one message per host boundary crossed, so
    a structure implementation must report honest visit sequences even when
    it takes CPU shortcuts.

    Update accounting: [insert] and [remove] return a {!range_delta} — the
    ids of the O(1) ranges they created and destroyed. The hierarchy uses
    the delta to adjust per-host memory charges incrementally instead of
    re-enumerating [range_ids] (which would make every update O(n)
    host-side), so deltas must be exact: after an update, the previously
    charged set plus [added] minus [removed] must equal [range_ids].

    Domain confinement (the parallel write path): the hierarchy's batch
    updates run one repair task per level on different OCaml domains, and
    each task builds and mutates that level's structures. An
    implementation must therefore keep {e all} of its mutable state —
    including any range-id counter — inside its [t] values: a module-level
    counter or cache shared between instances would race across domains
    and, worse, make range ids depend on scheduling, breaking the
    bit-identical-to-sequential guarantee. Determinism within one instance
    is already required by canonicity; this extends it to "no hidden
    coupling between instances". *)

type range_delta = { added : int list; removed : int list }
(** Range ids created / destroyed by one update. Ids are never reused, so
    the two lists are disjoint. *)

let empty_delta = { added = []; removed = [] }

(** Net effect of a sequence of per-key deltas, in application order. Ids
    are never reused, so an id created and then destroyed inside the batch
    cancels exactly; everything else survives. Both output lists are
    sorted ascending — a canonical order, so the net delta is a pure
    function of the delta {e multiset} and batch implementations that
    reorder or regroup per-key work still report identical deltas. *)
let net_deltas ds =
  let added = Hashtbl.create 16 in
  let removed = ref [] in
  List.iter
    (fun d ->
      List.iter (fun id -> Hashtbl.replace added id ()) d.added;
      List.iter
        (fun id -> if Hashtbl.mem added id then Hashtbl.remove added id else removed := id :: !removed)
        d.removed)
    ds;
  let adds = Hashtbl.fold (fun id () acc -> id :: acc) added [] in
  { added = List.sort compare adds; removed = List.sort compare !removed }

(** Per-key fallback for structures without a native batch path: apply
    [op] key by key in array order and net the deltas. The mutations and
    ids are exactly the per-key loop's, only the reporting is batched.

    {b Sequential by contract}: this helper never consults a pool — an
    instance that routes its batch entry here runs the whole batch on the
    calling domain, and must say so at the call site rather than accept a
    [?pool] it silently discards. Use it only where a native batch engine
    does not exist (or cannot exist, e.g. trapezoidal-map deletions). *)
let batch_of_fold op t keys =
  net_deltas (List.rev (Array.fold_left (fun acc k -> op t k :: acc) [] keys))

module type S = sig
  type key
  type query
  type answer

  type t
  (** A mutable instance of the structure over one level set. *)

  type loc
  (** A located maximal range for some query. *)

  type descriptor
  (** A portable description of a located range, meaningful to the
      structure built over any superset (e.g. a quadtree cube, a trie node
      string, a trapezoid). *)

  val name : string

  val visit_label : string
  (** Short tag for traced range-walk hops of this structure (e.g.
      ["list-walk"], ["cube-walk"]): names the kind of pointer a hop
      chased, so a rendered trace distinguishes structure walks from
      hierarchy descents. Must be a constant — it is attached to hops on
      the traced path only and must not cost allocation per hop. *)

  val build : ?pool:Skipweb_util.Pool.t -> key array -> t
  (** Canonical build; duplicates are ignored. [?pool] may be used to
      parallelize host-local construction work; because the result is
      canonical in the key {e set}, a pooled build must produce exactly
      the structure the sequential build produces (instances without a
      parallel path simply ignore the pool). *)

  val size : t -> int
  (** Number of keys currently stored. *)

  val storage_units : t -> int
  (** Nodes + links currently allocated — what a host pays to store a piece
      of this structure. *)

  val range_ids : t -> int list
  (** Ids of all live ranges (for host placement and memory accounting). *)

  val insert : t -> key -> range_delta
  (** Add a key (no-op on duplicates, returning {!empty_delta}). Creates
      O(1) new ranges for the structures of this repository; the delta
      reports exactly which. *)

  val remove : t -> key -> range_delta
  (** Delete a key (no-op if absent, returning {!empty_delta}). Raises
      [Failure] for structures whose deletions are out of scope
      (trapezoidal maps, per §4's hedge). *)

  val insert_batch : ?pool:Skipweb_util.Pool.t -> t -> key array -> range_delta
  (** Add a whole sorted batch of keys (duplicates — of each other or of
      stored keys — are no-ops) and return the {e net} delta: exactly
      {!net_deltas} of the per-key deltas the one-at-a-time loop would
      have produced, with both lists in ascending id order. Instances
      with a native batch engine (the 1-d sorted list) shard the splice
      over [?pool] workers; the net delta and the final structure must
      still be bit-identical to the sequential per-key loop for any job
      count. *)

  val remove_batch : ?pool:Skipweb_util.Pool.t -> t -> key array -> range_delta
  (** Batch counterpart of {!remove}, same contract shape as
      {!insert_batch}; raises [Failure] on non-empty batches for
      structures whose deletions are out of scope. *)

  val probe : key -> query
  (** A query that routes to the place a key occupies (or would occupy) —
      the locate step of an update (§4). *)

  val locate : t -> query -> loc * int list
  (** Search from the structure's root: the maximal range containing the
      query, plus the visited range ids in order. *)

  val refine : t -> from:descriptor -> query -> loc * int list
  (** Continue a search in this structure given the location the query had
      in the structure over a {e subset} of this structure's keys. The
      subset-node property guarantees the descriptor maps into this
      structure. Returns the location here and the visited ids. *)

  val describe : t -> loc -> descriptor

  val answer : t -> loc -> query -> answer
  (** Extract the final answer at level 0. *)

  type scan
  (** A multi-result query over the level-0 structure — an axis-aligned
      range count, a k-nearest-neighbors request, a prefix enumeration:
      whatever surfaces the instance supports beyond point location. *)

  type scan_answer
  (** What a scan returns (counts, samples, neighbor lists...). *)

  val scan_probe : scan -> query
  (** The point query whose skip-web descent positions the scan: the
      hierarchy locates [scan_probe s] down to level 0 and hands the
      resulting location to {!scan}. *)

  val scan : t -> loc -> scan -> scan_answer * int list
  (** Execute the scan in the level-0 structure starting from the located
      range of {!scan_probe}, returning the answer together with the ids
      of every range the scan walk visits beyond the descent itself (the
      descent's own visits are already charged by the hierarchy). The
      hierarchy maps each id to its host and charges messages exactly as
      for locate/refine visits, so the list must be honest even when the
      walk takes CPU shortcuts. Deterministic: a pure function of the
      structure, the location and the scan. *)
end
