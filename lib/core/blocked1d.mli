(** One-dimensional skip-webs with the improved blocking strategy of
    §2.4.1 — Table 1 rows 6 (skip-webs) and 7 (bucket skip-webs), and the
    O(log n / log log n) clause of Theorem 2.

    The level hierarchy is the same binary tree of randomly halved sets as
    {!Hierarchy}, specialized to sorted integer sets whose ranges (nodes
    and closed links) carry a dense code under which conflict lists are
    contiguous intervals. Levels that are multiples of L = ⌈log₂ M⌉ are
    {e basic}: their structures are cut into contiguous blocks of ranges,
    each owned by one host. A host also stores the {e cone} of its block —
    for every non-basic level above it (up to the next basic level), the
    contiguous interval of ranges whose conflict chains reach the block.

    A query therefore only crosses hosts when it moves past a basic level
    (expected O(1) external hops each), giving O(log n / log M) expected
    messages: O(log n / log log n) with M = Θ(log n) on H = n hosts
    (row 6), and O(log_M H) with H < n hosts and M = n/H + Θ(log H)
    (row 7, the bucket skip-web — same module, different parameters; with
    M = n^ε the cost is O(1)).

    Updates pay a locate plus O(1) messages per {e basic} level only —
    the ranges of non-basic levels are co-located with basic blocks, and
    block splits amortize against the insertions that grew them (§4). *)

module Network = Skipweb_net.Network
module Prng = Skipweb_util.Prng

type t

val build :
  net:Network.t ->
  seed:int ->
  m:int ->
  ?r:int ->
  ?cache_levels:int ->
  ?cache_replicas:int ->
  ?pool:Skipweb_util.Pool.t ->
  int array ->
  t
(** [build ~net ~seed ~m keys]: distribute over all hosts of [net] with
    per-host memory target [m] (the M parameter). Keys must be distinct.
    Raises [Invalid_argument] if [m < 4].

    [r] is the replication factor (default 1): every block — and the cone
    it drags along — is mirrored on [r] distinct live hosts (the [r]
    consecutive positions of the round-robin owner draw), scaling per-host
    memory by [r]. Queries keep routing to primaries, so with no failures
    any [r] produces message counts bit-identical to [r = 1], which is
    itself bit-identical to the pre-replication code. Requires
    [1 <= r <= Network.host_count net].

    With [pool], the rebuild's two bulk phases — per-level set bucketing
    and per-block cone computation — fan out over the pool's domains,
    with sequential commits in between, so the resulting structure
    (including the head-host order of every replica list, and hence every
    later query's message count) and all memory charges are bit-identical
    for any jobs count. The structure {e keeps} the pool for the rebuilds
    that {!insert}/{!delete} trigger: the pool must stay alive as long as
    this structure receives updates, or be detached with {!set_pool}.

    [cache_levels] / [cache_replicas] configure the read-path group cache
    (the congestion-flattening trick of the skip-graph NoN line): every
    {e basic block group} — a block plus the cone it drags along — whose
    basic level is below [cache_levels] keeps [cache_replicas - 1] whole
    extra copies on distinct live hosts, drawn by a pure collision-skipping
    hash. A query reads all levels of a cached group at one deterministic
    per-origin copy (pure in [(seed, origin, basic level)]), so hosts are
    still only crossed at basic-level boundaries — message counts keep the
    O(log n / log log n) bound — while distinct origins spread a hot
    group's load over all [cache_replicas] copies. With
    [cache_replicas = 1] (the default) the cache is off and routing is
    byte-identical to the uncached code. Requires [cache_levels >= 0] and
    [1 <= cache_replicas] with [r + cache_replicas - 1 <= host count]. *)

val set_pool : t -> Skipweb_util.Pool.t option -> unit
(** Attach or detach the domain pool used by update-triggered rebuilds.
    [set_pool t None] makes every later rebuild sequential (safe after the
    building pool is shut down); attaching never changes results, only
    wall-clock time. *)

val size : t -> int
val levels : t -> int

val replication : t -> int
(** The replication factor [r] this structure was built with. *)

val cache_config : t -> int * int
(** The current [(cache_levels, cache_replicas)] — [(_, 1)] means the
    read-path group cache is inactive. *)

val set_cache : t -> levels:int -> k:int -> unit
(** Reconfigure the read-path group cache in place: release the current
    cache copies' memory charges, then re-derive and charge the new ones.
    Blocks, cones, primary placements and every non-cache charge are
    untouched — no rebuild — so sweeping [k] against one build of a large
    structure is cheap (the E20 serving bench relies on this). Placement
    is a pure function of the structure and the live-host set, so
    [set_cache] and a rebuild always agree on where every copy lives.
    Same argument requirements as [build]'s cache parameters. *)

val basic_levels : t -> int list
(** The basic level indices, ascending. *)

val block_size : t -> int
val total_storage : t -> int
(** Ranges summed over all level structures (before replication). *)

val replicated_storage : t -> int
(** What hosts actually store: blocks plus cones. *)

val max_host_memory : t -> int

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

val query : ?trace:Skipweb_net.Trace.t -> t -> rng:Prng.t -> int -> search_result
(** Nearest-neighbor query from a random originating element's host.
    With [trace], the descent records one leveled span per level — named
    ["basic level"] or ["cone level"], closed with a [replicas=k] note for
    the number of hosts covering the located range — and labels each hop
    ["block"] or ["cone"], so {!Skipweb_net.Trace.per_level_hops} shows
    exactly where the O(log n / log log n) bound spends its messages.
    Tracing never changes the message cost. *)

val query_batch :
  ?pool:Skipweb_util.Pool.t -> t -> rng:Prng.t -> int array -> search_result array
(** A batch of independent nearest-neighbor queries, fanned out over
    [pool]'s domains when one is given. Origins are pre-drawn sequentially
    from [rng] (one draw per query, exactly as a loop of {!query} would),
    so answers, per-query message counts and the network's message /
    traffic totals are bit-identical to the sequential loop for {e any}
    jobs count — [?pool] only changes wall-clock time. The structure must
    not be updated while a batch is in flight (§4 serializes updates). *)

val insert : t -> int -> int
(** Message cost: locate + O(1) per basic level. No-op cost 0 on
    duplicates. *)

val delete : t -> int -> int

val insert_batch : ?pool:Skipweb_util.Pool.t -> t -> int array -> int
(** Bulk maintenance insert: sort / dedup the batch, splice it into the
    ground set through the chunk-sharded {!Skipweb_util.Ordseq} batch
    engine, and rebuild the block / cone maps {e once} for the whole
    batch instead of once per key. [?pool] (default: the structure's own
    pool) shards the splice over disjoint chunk ranges and fans the
    rebuild's bulk phases; the resulting structure and all memory
    charges are bit-identical for any jobs count. Like {!repair}, the
    bulk path is a maintenance operation: no locate queries run and
    nothing is added to the network's message counters — the online
    per-key bill is {!insert}'s. Returns the number of keys actually
    inserted (duplicates of stored keys are no-ops). *)

val delete_batch : ?pool:Skipweb_util.Pool.t -> t -> int array -> int
(** Bulk counterpart of {!delete}: keys absent from the ground set are
    no-ops; returns the number actually removed. Same pool, determinism
    and accounting contract as {!insert_batch}. *)

val check_invariants : t -> unit
(** Level partitions, block coverage, replica coverage of non-basic
    ranges, and conflict-chain soundness on samples. *)

(** {1 Failure handling}

    Queries route to the first live replica of every block / cone interval
    they need; only when {e all} [r] copies are dead does the walk raise
    [Skipweb_net.Network.Host_dead] (the session is abandoned and counts
    nothing — the caller decides whether to retry or record a failed
    query). Rebuilds — including the ones {!insert}/{!delete} trigger —
    place blocks on live hosts only, so an update under failure is itself
    a partial repair. *)

type repair_stats = {
  scanned : int;  (** block and cone-interval entries examined *)
  repaired : int;  (** stored units re-homed off dead hosts *)
  messages : int;  (** steal messages: one per re-homed unit with a live copy *)
  lost : int;  (** re-homed units with no surviving replica (0 when at most
                   r - 1 hosts fail between repairs) *)
}

val repair : t -> repair_stats
(** One self-repair pass: bill every unit currently stored on a dead host
    (a steal from any surviving replica, or a loss), then rebuild the
    block / cone maps over the live hosts — stranded memory charges
    migrate to live hosts as part of the re-charge. Idempotent once all
    placements are live; must not run concurrently with queries or updates
    (failure epochs are serialized, like updates). The message bill lives
    in the stats and is {e not} added to the network's workload counters,
    so query-traffic metrics stay clean. *)

type range_result = { keys : int list; messages : int }

val range : t -> rng:Prng.t -> lo:int -> hi:int -> range_result
(** Range query (§1's "range queries over various numerical attributes"):
    route to [lo] like a nearest-neighbor query, then walk the level-0
    list rightwards to [hi]. Message cost is the locate cost plus one
    message per level-0 block boundary crossed — O(log n / log log n + k/B)
    for k reported keys and block size B. *)
