module Network = Skipweb_net.Network
module Trace = Skipweb_net.Trace
module Placement = Skipweb_net.Placement
module Membership = Skipweb_util.Membership
module Prng = Skipweb_util.Prng
module L = Skipweb_linklist.Linklist
module O = Skipweb_util.Ordseq

(* Membership bits are derived from the key itself, so an element keeps its
   level path across rebuilds. *)
type t = {
  net : Network.t;
  vecs : Membership.t;
  m : int;  (* per-host memory target M *)
  r : int;  (* replication factor: owners per block / cone interval *)
  stride : int;  (* L = ceil(log2 M): basic levels are multiples *)
  mutable bsize : int;  (* ranges per block at basic levels *)
  keys : O.t;  (* the ground set, chunked sorted sequence *)
  mutable top : int;  (* K = ceil(log2 n) *)
  sets : (int * int, int array) Hashtbl.t;  (* (level, prefix) -> sorted keys *)
  blocks : (int * int * int, Network.host array) Hashtbl.t;
      (* basic (level, prefix, block) -> owners, primary first *)
  replicas : (int * int, (int * int * Network.host array * int) list) Hashtbl.t;
      (* non-basic (level, prefix) -> cone intervals
         (code_lo, code_hi, owners, block index in the basic group below) *)
  (* Read-path level cache: a basic block group — the block plus every
     cone interval it drags along — whose basic level is below
     [cache_levels] keeps [cache_replicas - 1] whole extra copies on
     distinct live hosts, drawn by a pure collision-skipping hash at
     rebuild time. Caching whole groups (not individual levels) preserves
     the co-location that gives Blocked1d its O(log n / log log n) bound:
     a query reading cache copy s of a group still walks the entire group
     on one host. *)
  mutable cache_levels : int;  (* groups with basic level < this are cached *)
  mutable cache_replicas : int;  (* k: total read copies per cached group *)
  cache_seed : int;
  cache : (int * int * int, Network.host array) Hashtbl.t;
      (* cached basic (level, prefix, block) -> the k - 1 cache hosts *)
  host_mem : (Network.host, int) Hashtbl.t;  (* what we charged, for rebuilds *)
  mutable pool : Skipweb_util.Pool.t option;  (* fans rebuild phases out when set *)
}

let set_pool t pool = t.pool <- pool

let size t = O.length t.keys
let levels t = t.top + 1
let block_size t = t.bsize

let basic_levels t =
  List.filter (fun l -> l mod t.stride = 0) (List.init (t.top + 1) Fun.id)

let prefix t key level = Membership.prefix t.vecs ~id:key ~len:level

let required_top n =
  let rec go k = if 1 lsl k >= max 1 n then k else go (k + 1) in
  go 0

let charge t host units =
  Network.charge_memory t.net host units;
  Hashtbl.replace t.host_mem host ((try Hashtbl.find t.host_mem host with Not_found -> 0) + units)

let uncharge_all t =
  Hashtbl.iter (fun host units -> if units <> 0 then Network.charge_memory t.net host (-units)) t.host_mem;
  Hashtbl.reset t.host_mem

(* ------- the read-path group cache ------- *)

(* Ranges the block [(level, b, j)] itself stores (0 when the block fell
   off the end after a shrink). *)
let block_units t level b j =
  match Hashtbl.find_opt t.sets (level, b) with
  | None -> 0
  | Some arr ->
      let codes = L.num_ranges arr in
      let clo = j * t.bsize and chi = min (codes - 1) (((j + 1) * t.bsize) - 1) in
      if clo <= chi then chi - clo + 1 else 0

(* A cone interval's basic group: the basic level below it and the block
   prefix it fans out from. *)
let cone_group t lvl cb = (lvl - (lvl mod t.stride), cb lsr (lvl mod t.stride))

(* Stored units per basic group (block plus its cone intervals) — what one
   cache copy of the group costs. *)
let group_units_table t =
  let units = Hashtbl.create 64 in
  let add key u =
    Hashtbl.replace units key (u + try Hashtbl.find units key with Not_found -> 0)
  in
  Hashtbl.iter (fun (level, b, j) _ -> add (level, b, j) (block_units t level b j)) t.blocks;
  Hashtbl.iter
    (fun (lvl, cb) lst ->
      let base, pb = cone_group t lvl cb in
      List.iter (fun (clo, chi, _, j) -> add (base, pb, j) (chi - clo + 1)) lst)
    t.replicas;
  units

(* The k - 1 cache hosts of one group: pure hash draws salted by the cache
   slot, skipping dead hosts and hosts already holding a copy (an owner or
   an earlier cache slot) — so all r + k - 1 copies of a group sit on
   distinct live hosts, exactly the hierarchy's collision-skipping
   discipline. Pure in (cache_seed, group, live set, owners): [rebuild]
   and [set_cache] always agree on where every copy lives. *)
let draw_cache t ~owners level b j k =
  let hosts = Network.host_count t.net in
  let taken = ref (Array.to_list owners) in
  Array.init (k - 1) (fun s ->
      let rec pick attempt =
        if attempt > 10_000 then failwith "Blocked1d: cache placement exhausted";
        let h =
          Prng.hash3
            (t.cache_seed + ((s + 1) * 0x9e3779) + (attempt * 0x85ebca))
            ((level * 0x100000) + b)
            j
          mod hosts
        in
        if Network.alive t.net h && not (List.mem h !taken) then h else pick (attempt + 1)
      in
      let h = pick 0 in
      taken := h :: !taken;
      h)

(* Charge (or release, [sign = -1]) every cache copy of every cached
   group. *)
let charge_cache t ~sign =
  if Hashtbl.length t.cache > 0 then begin
    let units = group_units_table t in
    Hashtbl.iter
      (fun key arr ->
        let u = try Hashtbl.find units key with Not_found -> 0 in
        if u > 0 then Array.iter (fun h -> charge t h (sign * u)) arr)
      t.cache
  end

(* (Re)derive the cache table from the current block/cone maps and charge
   it: every eligible group (basic level below the cache window, active
   cache) gets its k - 1 copies. Iteration order over the hashtable is
   irrelevant — draws are pure per group and charges are sums. *)
let apply_cache t =
  Hashtbl.reset t.cache;
  if t.cache_replicas > 1 then begin
    Hashtbl.iter
      (fun (level, b, j) owners ->
        if level < t.cache_levels then
          Hashtbl.replace t.cache (level, b, j) (draw_cache t ~owners level b j t.cache_replicas))
      t.blocks;
    charge_cache t ~sign:1
  end

(* Key-interval endpoints of a code interval within a set array. *)
let interval_span arr clo chi =
  let lo, _ = L.span arr (L.decode clo) in
  let _, hi = L.span arr (L.decode chi) in
  (lo, hi)

(* Codes of [arr] whose range intersects the closed key interval
   [(lo, hi)] — the one-level conflict projection; conflict lists being
   contiguous is what makes cones intervals. *)
let codes_touching arr (lo, hi) =
  let m = Array.length arr in
  let clo =
    match lo with
    | L.Neg_inf -> 0
    | L.Key k -> 2 * O.array_lower_bound arr k
    | L.Pos_inf -> 2 * m
  in
  let chi =
    match hi with
    | L.Neg_inf -> 0
    | L.Key k -> 2 * (O.array_upper_index arr k + 1)
    | L.Pos_inf -> 2 * m
  in
  (clo, chi)

(* Run [f i] for every i in [0, n) — over the pool when one is set, inline
   otherwise. Rebuild work items (levels, blocks) cost about the same, so
   the weights are uniform; dynamic dispatch still keeps every domain busy
   until the batch drains. *)
let for_items t n f =
  match t.pool with
  | None ->
      for i = 0 to n - 1 do
        f i
      done
  | Some p -> Skipweb_util.Pool.parallel_for_tasks p ~weights:(Array.make (max n 1) 1) f

(* A rebuild parallelizes in two fan-out phases with sequential commits in
   between, so the result — including the *order* of every cone-replica
   list, which [hosts_of] reads head-first and therefore shows up in
   message counts — is bit-identical to the sequential rebuild:

     1. Level sets: one task per level, each bucketing the (read-only)
        ground set by its own level's prefixes into a private slot;
        committed into [t.sets] afterwards.
     2. Blocks and cones: block boundaries and their round-robin owners
        depend only on code counts, so they are enumerated sequentially
        first (freezing the block -> host map); the expensive per-block
        cone scans then fan out, each buffering its charges and replica
        intervals in chronological order into its own slot, and the
        buffers are committed sequentially in the original block order. *)
let rebuild t =
  uncharge_all t;
  Hashtbl.reset t.sets;
  Hashtbl.reset t.blocks;
  Hashtbl.reset t.replicas;
  Hashtbl.reset t.cache;
  let n = size t in
  t.top <- required_top n;
  (* Level sets along every element's membership path. The ground set is
     iterated in key order, so each bucket fills already sorted — no
     per-bucket re-sort. *)
  let level_sets = Array.make (t.top + 1) [] in
  for_items t (t.top + 1) (fun level ->
      let buckets = Hashtbl.create 64 in
      O.iter
        (fun k ->
          let b = prefix t k level in
          match Hashtbl.find_opt buckets b with
          | Some (arr, len) ->
              if !len = Array.length !arr then begin
                let bigger = Array.make (2 * !len) 0 in
                Array.blit !arr 0 bigger 0 !len;
                arr := bigger
              end;
              !arr.(!len) <- k;
              incr len
          | None -> Hashtbl.replace buckets b (ref (Array.make 8 k), ref 1))
        t.keys;
      level_sets.(level) <-
        Hashtbl.fold (fun b (arr, len) acc -> (b, Array.sub !arr 0 !len) :: acc) buckets []);
  Array.iteri
    (fun level sets -> List.iter (fun (b, arr) -> Hashtbl.replace t.sets (level, b) arr) sets)
    level_sets;
  (* Size blocks so there is about one block per *live* host (each block
     drags an O(M)-sized cone along, so several blocks per host would
     overshoot the memory budget). Placement only ever targets live hosts:
     with nobody dead the live array is the identity and every owner draw
     below reproduces the historical [!counter mod hosts]. *)
  let hosts = Network.host_count t.net in
  let live =
    Array.of_list (List.filter (fun h -> Network.alive t.net h) (List.init hosts Fun.id))
  in
  let nlive = Array.length live in
  let reps = min t.r nlive in
  let total_basic_codes =
    Hashtbl.fold
      (fun (l, _) arr acc -> if l mod t.stride = 0 then acc + L.num_ranges arr else acc)
      t.sets 0
  in
  t.bsize <- max (max 2 (t.m / 4)) ((total_basic_codes + nlive - 1) / nlive);
  (* Enumerate every block in the canonical (level, sorted prefix, block)
     order, assigning owners from the round-robin counter: replica slot s
     of block [idx] is the live host [idx + s] positions along, so the r
     copies of a block always sit on r distinct live hosts (r <= nlive). *)
  let blocks_rev = ref [] in
  let nblocks_total = ref 0 in
  let counter = ref 0 in
  for level = 0 to t.top do
    if level mod t.stride = 0 then begin
      let sets_here =
        Hashtbl.fold (fun (l, b) arr acc -> if l = level then (b, arr) :: acc else acc) t.sets []
        |> List.sort compare
      in
      List.iter
        (fun (b, arr) ->
          let codes = L.num_ranges arr in
          let nblocks = (codes + t.bsize - 1) / t.bsize in
          for j = 0 to nblocks - 1 do
            let idx = !counter mod nlive in
            incr counter;
            let owners = Array.init reps (fun s -> live.((idx + s) mod nlive)) in
            Hashtbl.replace t.blocks (level, b, j) owners;
            blocks_rev := (level, b, arr, j, owners) :: !blocks_rev;
            incr nblocks_total
          done)
        sets_here
    end
  done;
  let block_arr = Array.of_list (List.rev !blocks_rev) in
  (* The cone of each block: for each non-basic level above, every
     descendant set's ranges touching the block's key span. (This is the
     conflict closure clamped to the block span; clamping keeps per-host
     space O(M) while every range stays covered by the block whose span it
     touches.) Pure reads of [t.sets]; charges and replica intervals are
     buffered chronologically per block. *)
  let results = Array.make !nblocks_total ([], []) in
  for_items t !nblocks_total (fun i ->
      let level, b, arr, j, owners = block_arr.(i) in
      let codes = L.num_ranges arr in
      let clo = j * t.bsize and chi = min (codes - 1) (((j + 1) * t.bsize) - 1) in
      let charges = ref [] in
      let charge_owners units = Array.iter (fun h -> charges := (h, units) :: !charges) owners in
      charge_owners (chi - clo + 1);
      let cones = ref [] in
      let span_block = interval_span arr clo chi in
      let lvl = ref (level + 1) in
      while !lvl <= t.top && !lvl mod t.stride <> 0 do
        let fan = 1 lsl (!lvl - level) in
        for suffix = 0 to fan - 1 do
          let cb = (b * fan) + suffix in
          match Hashtbl.find_opt t.sets (!lvl, cb) with
          | None -> ()
          | Some child_arr ->
              let clo', chi' = codes_touching child_arr span_block in
              if clo' <= chi' then begin
                cones := ((!lvl, cb), (clo', chi', owners, j)) :: !cones;
                charge_owners (chi' - clo' + 1)
              end
        done;
        incr lvl
      done;
      results.(i) <- (List.rev !charges, List.rev !cones));
  (* Sequential commit in block order reproduces the sequential rebuild's
     exact charge sequence and replica-list construction order. *)
  let cone_replicas = Hashtbl.create 64 in
  Array.iter
    (fun (charges, reps) ->
      List.iter (fun (host, units) -> charge t host units) charges;
      List.iter
        (fun (key, entry) ->
          Hashtbl.replace cone_replicas key
            (entry :: (try Hashtbl.find cone_replicas key with Not_found -> [])))
        reps)
    results;
  Hashtbl.iter (fun key lst -> Hashtbl.replace t.replicas key lst) cone_replicas;
  (* Cache copies ride on the finished block/cone maps: pure re-derivation,
     so an update-triggered rebuild and [set_cache] always agree. *)
  apply_cache t

let build ~net ~seed ~m ?(r = 1) ?(cache_levels = 0) ?(cache_replicas = 1) ?pool keys =
  if m < 4 then invalid_arg "Blocked1d.build: m >= 4";
  if r < 1 || r > Network.host_count net then
    invalid_arg "Blocked1d.build: need 1 <= r <= host count";
  if cache_levels < 0 then invalid_arg "Blocked1d.build: cache_levels >= 0";
  if cache_replicas < 1 || r + cache_replicas - 1 > Network.host_count net then
    invalid_arg "Blocked1d.build: need 1 <= cache_replicas and r + cache_replicas - 1 <= hosts";
  let xs = Array.copy keys in
  Array.sort compare xs;
  Array.iteri (fun i k -> if i > 0 && xs.(i - 1) = k then invalid_arg "Blocked1d.build: duplicate keys") xs;
  let log2_ceil x =
    let rec go k = if 1 lsl k >= x then k else go (k + 1) in
    go 0
  in
  let stride = max 1 (log2_ceil m) in
  let t =
    {
      net;
      vecs = Membership.create ~seed;
      m;
      r;
      stride;
      bsize = max 2 (m / 4);  (* refined by rebuild *)
      keys = O.of_sorted_array xs;
      top = 0;
      sets = Hashtbl.create 64;
      blocks = Hashtbl.create 64;
      replicas = Hashtbl.create 64;
      cache_levels;
      cache_replicas;
      cache_seed = seed + 0xca4e;
      cache = Hashtbl.create 64;
      host_mem = Hashtbl.create 64;
      pool;
    }
  in
  rebuild t;
  t

let replication t = t.r

let cache_config t = (t.cache_levels, t.cache_replicas)

(* Reconfigure the cache without a full rebuild: release the current cache
   charges, swap the window and replica count, and re-derive. The block /
   cone maps, all primary placements and every charge outside the cache
   are untouched, so this is cheap even at n = 10^6 — which is what lets
   the serving bench sweep k against one build. *)
let set_cache t ~levels ~k =
  if levels < 0 then invalid_arg "Blocked1d.set_cache: levels >= 0";
  if k < 1 || t.r + k - 1 > Network.host_count t.net then
    invalid_arg "Blocked1d.set_cache: need 1 <= k and r + k - 1 <= hosts";
  charge_cache t ~sign:(-1);
  t.cache_levels <- levels;
  t.cache_replicas <- k;
  apply_cache t

let total_storage t = Hashtbl.fold (fun _ arr acc -> acc + L.num_ranges arr) t.sets 0

let replicated_storage t = Hashtbl.fold (fun _ units acc -> acc + units) t.host_mem 0

let max_host_memory t = Hashtbl.fold (fun _ units acc -> max acc units) t.host_mem 0

(* The routing representative of one replica list: its first live owner —
   the primary when nobody is dead — or the dead primary when every copy
   is gone, so the session hop raises [Host_dead] instead of silently
   reading a lost range. *)
let entry_rep t owners =
  match Array.find_opt (fun h -> Network.alive t.net h) owners with
  | Some h -> h
  | None -> owners.(0)

(* The representative for a query reading cache slot [slot] of an entry's
   basic group: the group's cache copy when one exists and is live, the
   first live owner otherwise. Slot 0 — and any group outside the cache
   window — is always the owner path, preserving the historical routing
   byte-for-byte. *)
let entry_rep_slot t ~slot ~group owners =
  if slot >= 1 then
    match Hashtbl.find_opt t.cache group with
    | Some arr when slot - 1 < Array.length arr && Network.alive t.net arr.(slot - 1) ->
        arr.(slot - 1)
    | Some _ | None -> entry_rep t owners
  else entry_rep t owners

(* Which cache copy a query from [origin] reads for groups based at basic
   level [base]: pure in (cache_seed, origin, base) — bit-identical runs
   for fixed parameters, jobs-invariant — and 0 (the owner path) whenever
   the group is uncached. One slot per *group*, not per level, so a
   descent still changes hosts only at basic-level boundaries and the
   O(log n / log log n) message bound is untouched. *)
let slot_for t origin base =
  if t.cache_replicas > 1 && base < t.cache_levels then
    Placement.replica_slot ~seed:t.cache_seed ~origin ~level:base ~k:t.cache_replicas
  else 0

(* One representative per covering entry (block, or cone interval) of the
   range with this code. With nobody dead and [slot = 0] every
   representative is that entry's primary, so the list — and hence every
   routing decision made over it — is identical to the unreplicated,
   uncached one for any [r]. *)
let hosts_of ?(slot = 0) t level b code =
  if level mod t.stride = 0 then
    let j = code / t.bsize in
    [ entry_rep_slot t ~slot ~group:(level, b, j) (Hashtbl.find t.blocks (level, b, j)) ]
  else
    let base, pb = cone_group t level b in
    match Hashtbl.find_opt t.replicas (level, b) with
    | None -> []
    | Some lst ->
        List.concat_map
          (fun (lo, hi, hs, j) ->
            if lo <= code && code <= hi then [ entry_rep_slot t ~slot ~group:(base, pb, j) hs ]
            else [])
          lst

(* Where a walk lands for this replica list: the first live owner, else the
   head so the session hop raises [Host_dead] (every copy is gone). *)
let route_of t hs =
  match List.find_opt (fun h -> Network.alive t.net h) hs with
  | Some h -> h
  | None -> ( match hs with h :: _ -> h | [] -> 0)

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

(* The owner of the block that q's own position falls into at the next
   basic level at or below [level] along the origin's set path — the host
   a descending query will want to be on. *)
let preferred_host t origin level q =
  let base = level - (level mod t.stride) in
  let b = prefix t origin base in
  match Hashtbl.find_opt t.sets (base, b) with
  | None -> None
  | Some arr -> (
      let code = L.encode (L.locate arr q) in
      let j = code / t.bsize in
      match Hashtbl.find_opt t.blocks (base, b, j) with
      | None -> None
      | Some owners ->
          (* The origin's read copy of the preferred block: its cache copy
             when the group is cached for this origin, else the first live
             owner — the primary when nobody is dead, preserving the
             historical routing exactly. *)
          Some (entry_rep_slot t ~slot:(slot_for t origin base) ~group:(base, b, j) owners))

(* Traced descents open one leveled span per level, noting whether the
   level's range lives in a block or a cone and how many replicas cover
   it; hops are labeled accordingly. All trace work is guarded, so an
   untraced query runs the original code path exactly. *)
let query_from ?trace t origin q =
  let b_top = prefix t origin t.top in
  let arr_top = Hashtbl.find t.sets (t.top, b_top) in
  let code_top = L.encode (L.locate arr_top q) in
  let slot_at level = slot_for t origin (level - (level mod t.stride)) in
  let initial_hosts = hosts_of ~slot:(slot_at t.top) t t.top b_top code_top in
  let pick level hosts current =
    (* Route among the covering entries whose representative is live; with
       nobody dead that is one primary per entry and the choice matches
       the historical one exactly. When every entry lost all its copies,
       fall through to the (dead) head so the hop raises [Host_dead]
       instead of silently reading a lost range. *)
    match List.filter (fun h -> Network.alive t.net h) hosts with
    | [] -> ( match hosts with [] -> current | h :: _ -> h)
    | [ h ] -> h
    | h :: _ as hs ->
        if List.mem current hs then current
        else (
          match preferred_host t origin level q with
          | Some p when List.mem p hs -> p
          | Some _ | None -> h)
  in
  let start = match initial_hosts with [] -> 0 | hs -> route_of t hs in
  let session = Network.start ?trace t.net start in
  let rec descend level =
    if level >= 0 then begin
      let basic = level mod t.stride = 0 in
      let b = prefix t origin level in
      let arr = Hashtbl.find t.sets (level, b) in
      let code = L.encode (L.locate arr q) in
      let hs = hosts_of ~slot:(slot_at level) t level b code in
      let target = pick level hs (Network.current session) in
      (match trace with
      | None -> Network.goto session target
      | Some tr ->
          Trace.span_open tr ~level (if basic then "basic level" else "cone level");
          Network.goto ~label:(if basic then "block" else "cone") session target;
          Trace.span_close tr ~note:(Printf.sprintf "replicas=%d" (List.length hs)) ());
      descend (level - 1)
    end
  in
  descend t.top;
  Network.finish session;
  let predecessor = O.predecessor t.keys q in
  let successor = O.successor t.keys q in
  { predecessor; successor; nearest = O.nearest t.keys q; messages = Network.messages session }

let query ?trace t ~rng q =
  if size t = 0 then { predecessor = None; successor = None; nearest = None; messages = 0 }
  else query_from ?trace t (O.get t.keys (Prng.int rng (size t))) q

(* Parallel fan-out of independent queries: origins pre-drawn sequentially
   (one rng draw per query, matching a loop of [query] coin-for-coin), then
   each descent is a pure read-only walk whose session commits through the
   network's atomic counters — results and network totals are bit-identical
   for any jobs count. An empty structure consumes no rng draws, exactly
   like the sequential loop. *)
let query_batch ?pool t ~rng qs =
  let n = Array.length qs in
  if size t = 0 then
    Array.map (fun _ -> { predecessor = None; successor = None; nearest = None; messages = 0 }) qs
  else begin
    let origins = Array.init n (fun _ -> O.get t.keys (Prng.int rng (size t))) in
    let out = Array.make n None in
    let run i = out.(i) <- Some (query_from t origins.(i) qs.(i)) in
    (match pool with
    | None ->
        for i = 0 to n - 1 do
          run i
        done
    | Some p -> Skipweb_util.Pool.parallel_for p ~lo:0 ~hi:n run);
    Array.map (function Some r -> r | None -> assert false) out
  end

let mem t k = O.mem t.keys k

(* Updates: the message bill is a locate plus O(1) messages per basic
   level (§4 — non-basic copies live in the cones already co-located with
   basic blocks; block splits amortize). The ground-set splice is an
   O(√n) chunk update; the block/cone maps are then rebuilt, which the
   cost model does not meter. *)
let update_cost t locate_messages = locate_messages + (2 * List.length (basic_levels t))

let insert t k =
  if mem t k then 0
  else begin
    let locate_msgs = if size t = 0 then 0 else (query t ~rng:(Prng.create (k + 13)) k).messages in
    ignore (O.insert t.keys k);
    rebuild t;
    update_cost t locate_msgs
  end

let delete t k =
  if not (mem t k) then 0
  else begin
    let locate_msgs = (query t ~rng:(Prng.create (k + 17)) k).messages in
    ignore (O.remove t.keys k);
    rebuild t;
    update_cost t locate_msgs
  end

(* ------- bulk maintenance updates ------- *)

(* Canonical batch form: strictly increasing. Already-sorted input (the
   common case for epoch-style feeds) passes through without copying. *)
let sorted_distinct ks =
  let m = Array.length ks in
  let sorted = ref true in
  for i = 1 to m - 1 do
    if ks.(i - 1) >= ks.(i) then sorted := false
  done;
  if !sorted then ks
  else begin
    let xs = Array.copy ks in
    Array.sort compare xs;
    let w = ref 1 in
    for r = 1 to m - 1 do
      if xs.(r) <> xs.(!w - 1) then begin
        xs.(!w) <- xs.(r);
        incr w
      end
    done;
    Array.sub xs 0 !w
  end

(* Run [f] with [pool] (when given) standing in for the structure's own,
   so one batch op's ground-set splice *and* the rebuild it triggers fan
   out under the same pool. *)
let with_batch_pool t pool f =
  match pool with
  | None -> f t.pool
  | Some _ ->
      let saved = t.pool in
      t.pool <- pool;
      Fun.protect ~finally:(fun () -> t.pool <- saved) (fun () -> f pool)

(* The bulk write path: splice the whole sorted batch into the ground
   set through the chunk-sharded Ordseq engine, then rebuild the
   block/cone maps once for the entire batch instead of once per key.
   Like [repair], this is a maintenance operation — no locate queries
   run and nothing is added to the network's message counters (the
   online per-key bill is [update_cost] each). The splice shards over
   disjoint chunk ranges and the rebuild fans its two phases, both
   bit-identical to sequential for any jobs count. *)
let insert_batch ?pool t ks =
  let ks = sorted_distinct ks in
  if Array.length ks = 0 then 0
  else
    with_batch_pool t pool (fun pool ->
        let added = O.insert_batch ?pool t.keys ks in
        if added > 0 then rebuild t;
        added)

let delete_batch ?pool t ks =
  let ks = sorted_distinct ks in
  if Array.length ks = 0 then 0
  else
    with_batch_pool t pool (fun pool ->
        let gone = O.remove_batch ?pool t.keys ks in
        if gone > 0 then rebuild t;
        gone)

let check_invariants t =
  let n = size t in
  for level = 0 to t.top do
    (* The level's sets partition the ground set. *)
    let total =
      Hashtbl.fold (fun (l, _) arr acc -> if l = level then acc + Array.length arr else acc) t.sets 0
    in
    if total <> n then failwith "Blocked1d: level sets do not partition the keys";
    Hashtbl.iter
      (fun (l, b) arr ->
        if l = level then
          Array.iter
            (fun k -> if prefix t k level <> b then failwith "Blocked1d: key in wrong set")
            arr)
      t.sets
  done;
  (* Every range of every level is stored somewhere. *)
  Hashtbl.iter
    (fun (level, b) arr ->
      for code = 0 to L.num_ranges arr - 1 do
        match hosts_of t level b code with
        | [] -> failwith (Printf.sprintf "Blocked1d: range uncovered at level %d" level)
        | _ :: _ -> ()
      done)
    t.sets;
  (* Cache coverage: exactly the eligible groups are cached, each with
     k - 1 copies pairwise distinct from each other and from the owners.
     (Liveness is not checked — like owners, cache placements go stale
     between a kill and the next repair/rebuild.) *)
  Hashtbl.iter
    (fun (level, b, j) owners ->
      match Hashtbl.find_opt t.cache (level, b, j) with
      | None ->
          if t.cache_replicas > 1 && level < t.cache_levels then
            failwith "Blocked1d: eligible block group missing its cache copies"
      | Some arr ->
          if not (t.cache_replicas > 1 && level < t.cache_levels) then
            failwith "Blocked1d: cache copies on an ineligible block group";
          if Array.length arr <> t.cache_replicas - 1 then
            failwith "Blocked1d: wrong cache copy count";
          let all = Array.append owners arr in
          Array.iteri
            (fun i h ->
              Array.iteri (fun i' h' -> if i < i' && h = h' then failwith "Blocked1d: cache copy collides") all)
            all)
    t.blocks;
  Hashtbl.iter
    (fun (level, _, _) _ ->
      if not (t.cache_replicas > 1 && level < t.cache_levels) then
        failwith "Blocked1d: stale cache entry outside the window")
    t.cache;
  (* Conflict-chain soundness: on every level, the range containing a probe
     key conflicts with the range containing it one level up. *)
  if n > 0 then begin
    let probes = [ O.get t.keys 0 - 1; O.get t.keys (n / 2); O.get t.keys (n - 1) + 1 ] in
    List.iter
      (fun q ->
        let origin = O.get t.keys (n / 2) in
        let rec walk level =
          if level > 0 then begin
            let b = prefix t origin level in
            let child = Hashtbl.find t.sets (level, b) in
            let parent = Hashtbl.find t.sets (level - 1, b / 2) in
            let child_range = L.locate child q in
            let plo, phi = L.conflict_interval ~parent ~child child_range in
            let pcode = L.encode (L.locate parent q) in
            if pcode < plo || pcode > phi then failwith "Blocked1d: conflict chain broken";
            walk (level - 1)
          end
        in
        walk t.top)
      probes
  end

type repair_stats = { scanned : int; repaired : int; messages : int; lost : int }

(* Blocked1d's update model rebuilds the block/cone maps wholesale, so
   self-repair is: bill the copies currently stranded on dead hosts (one
   steal message per unit with a surviving replica, a loss otherwise),
   then rebuild — which re-draws every placement over live hosts only and
   migrates the stranded charges as a side effect of re-charging. *)
let repair t =
  let scanned = ref 0 and repaired = ref 0 and messages = ref 0 and lost = ref 0 in
  let account copies units =
    incr scanned;
    let any_live = Array.exists (fun h -> Network.alive t.net h) copies in
    Array.iter
      (fun h ->
        if not (Network.alive t.net h) then begin
          repaired := !repaired + units;
          if any_live then messages := !messages + units else lost := !lost + units
        end)
      copies
  in
  (* Cache copies are billed exactly like data replicas: a cached group's
     copies on dead hosts are steals from any surviving copy — owner or
     cache — and the rebuild below re-draws them over live hosts only. *)
  let with_cache group owners =
    match Hashtbl.find_opt t.cache group with
    | Some arr -> Array.append owners arr
    | None -> owners
  in
  Hashtbl.iter
    (fun (level, b, j) owners ->
      let units = block_units t level b j in
      if units > 0 then account (with_cache (level, b, j) owners) units)
    t.blocks;
  Hashtbl.iter
    (fun (lvl, cb) lst ->
      let base, pb = cone_group t lvl cb in
      List.iter
        (fun (clo, chi, owners, j) -> account (with_cache (base, pb, j) owners) (chi - clo + 1))
        lst)
    t.replicas;
  rebuild t;
  { scanned = !scanned; repaired = !repaired; messages = !messages; lost = !lost }

type range_result = { keys : int list; messages : int }

let range t ~rng ~lo ~hi =
  if lo > hi then invalid_arg "Blocked1d.range: lo > hi";
  if size t = 0 then { keys = []; messages = 0 }
  else begin
    let locate = query t ~rng lo in
    (* Walk the bottom level (the full set, prefix 0) from lo's range to
       hi's: consecutive ranges share blocks except at block boundaries. *)
    let arr = Hashtbl.find t.sets (0, 0) in
    let clo, chi = L.range_codes arr ~lo ~hi in
    let crossings = ref 0 in
    let cur = ref (match hosts_of t 0 0 clo with [] -> 0 | hs -> route_of t hs) in
    let c = ref clo in
    while !c <= chi do
      (match hosts_of t 0 0 !c with
      | [] -> ()
      | hs ->
          let h = route_of t hs in
          if h <> !cur then begin
            incr crossings;
            cur := h
          end);
      incr c
    done;
    { keys = O.range_keys t.keys ~lo ~hi; messages = locate.messages + !crossings }
  end
