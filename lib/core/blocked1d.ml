module Network = Skipweb_net.Network
module Trace = Skipweb_net.Trace
module Membership = Skipweb_util.Membership
module Prng = Skipweb_util.Prng
module L = Skipweb_linklist.Linklist
module O = Skipweb_util.Ordseq

(* Membership bits are derived from the key itself, so an element keeps its
   level path across rebuilds. *)
type t = {
  net : Network.t;
  vecs : Membership.t;
  m : int;  (* per-host memory target M *)
  r : int;  (* replication factor: owners per block / cone interval *)
  stride : int;  (* L = ceil(log2 M): basic levels are multiples *)
  mutable bsize : int;  (* ranges per block at basic levels *)
  keys : O.t;  (* the ground set, chunked sorted sequence *)
  mutable top : int;  (* K = ceil(log2 n) *)
  sets : (int * int, int array) Hashtbl.t;  (* (level, prefix) -> sorted keys *)
  blocks : (int * int * int, Network.host array) Hashtbl.t;
      (* basic (level, prefix, block) -> owners, primary first *)
  replicas : (int * int, (int * int * Network.host array) list) Hashtbl.t;
      (* non-basic (level, prefix) -> cone intervals (code_lo, code_hi, owners) *)
  host_mem : (Network.host, int) Hashtbl.t;  (* what we charged, for rebuilds *)
  mutable pool : Skipweb_util.Pool.t option;  (* fans rebuild phases out when set *)
}

let set_pool t pool = t.pool <- pool

let size t = O.length t.keys
let levels t = t.top + 1
let block_size t = t.bsize

let basic_levels t =
  List.filter (fun l -> l mod t.stride = 0) (List.init (t.top + 1) Fun.id)

let prefix t key level = Membership.prefix t.vecs ~id:key ~len:level

let required_top n =
  let rec go k = if 1 lsl k >= max 1 n then k else go (k + 1) in
  go 0

let charge t host units =
  Network.charge_memory t.net host units;
  Hashtbl.replace t.host_mem host ((try Hashtbl.find t.host_mem host with Not_found -> 0) + units)

let uncharge_all t =
  Hashtbl.iter (fun host units -> if units <> 0 then Network.charge_memory t.net host (-units)) t.host_mem;
  Hashtbl.reset t.host_mem

(* Key-interval endpoints of a code interval within a set array. *)
let interval_span arr clo chi =
  let lo, _ = L.span arr (L.decode clo) in
  let _, hi = L.span arr (L.decode chi) in
  (lo, hi)

(* Codes of [arr] whose range intersects the closed key interval
   [(lo, hi)] — the one-level conflict projection; conflict lists being
   contiguous is what makes cones intervals. *)
let codes_touching arr (lo, hi) =
  let m = Array.length arr in
  let clo =
    match lo with
    | L.Neg_inf -> 0
    | L.Key k -> 2 * O.array_lower_bound arr k
    | L.Pos_inf -> 2 * m
  in
  let chi =
    match hi with
    | L.Neg_inf -> 0
    | L.Key k -> 2 * (O.array_upper_index arr k + 1)
    | L.Pos_inf -> 2 * m
  in
  (clo, chi)

(* Run [f i] for every i in [0, n) — over the pool when one is set, inline
   otherwise. Rebuild work items (levels, blocks) cost about the same, so
   the weights are uniform; dynamic dispatch still keeps every domain busy
   until the batch drains. *)
let for_items t n f =
  match t.pool with
  | None ->
      for i = 0 to n - 1 do
        f i
      done
  | Some p -> Skipweb_util.Pool.parallel_for_tasks p ~weights:(Array.make (max n 1) 1) f

(* A rebuild parallelizes in two fan-out phases with sequential commits in
   between, so the result — including the *order* of every cone-replica
   list, which [hosts_of] reads head-first and therefore shows up in
   message counts — is bit-identical to the sequential rebuild:

     1. Level sets: one task per level, each bucketing the (read-only)
        ground set by its own level's prefixes into a private slot;
        committed into [t.sets] afterwards.
     2. Blocks and cones: block boundaries and their round-robin owners
        depend only on code counts, so they are enumerated sequentially
        first (freezing the block -> host map); the expensive per-block
        cone scans then fan out, each buffering its charges and replica
        intervals in chronological order into its own slot, and the
        buffers are committed sequentially in the original block order. *)
let rebuild t =
  uncharge_all t;
  Hashtbl.reset t.sets;
  Hashtbl.reset t.blocks;
  Hashtbl.reset t.replicas;
  let n = size t in
  t.top <- required_top n;
  (* Level sets along every element's membership path. The ground set is
     iterated in key order, so each bucket fills already sorted — no
     per-bucket re-sort. *)
  let level_sets = Array.make (t.top + 1) [] in
  for_items t (t.top + 1) (fun level ->
      let buckets = Hashtbl.create 64 in
      O.iter
        (fun k ->
          let b = prefix t k level in
          match Hashtbl.find_opt buckets b with
          | Some (arr, len) ->
              if !len = Array.length !arr then begin
                let bigger = Array.make (2 * !len) 0 in
                Array.blit !arr 0 bigger 0 !len;
                arr := bigger
              end;
              !arr.(!len) <- k;
              incr len
          | None -> Hashtbl.replace buckets b (ref (Array.make 8 k), ref 1))
        t.keys;
      level_sets.(level) <-
        Hashtbl.fold (fun b (arr, len) acc -> (b, Array.sub !arr 0 !len) :: acc) buckets []);
  Array.iteri
    (fun level sets -> List.iter (fun (b, arr) -> Hashtbl.replace t.sets (level, b) arr) sets)
    level_sets;
  (* Size blocks so there is about one block per *live* host (each block
     drags an O(M)-sized cone along, so several blocks per host would
     overshoot the memory budget). Placement only ever targets live hosts:
     with nobody dead the live array is the identity and every owner draw
     below reproduces the historical [!counter mod hosts]. *)
  let hosts = Network.host_count t.net in
  let live =
    Array.of_list (List.filter (fun h -> Network.alive t.net h) (List.init hosts Fun.id))
  in
  let nlive = Array.length live in
  let reps = min t.r nlive in
  let total_basic_codes =
    Hashtbl.fold
      (fun (l, _) arr acc -> if l mod t.stride = 0 then acc + L.num_ranges arr else acc)
      t.sets 0
  in
  t.bsize <- max (max 2 (t.m / 4)) ((total_basic_codes + nlive - 1) / nlive);
  (* Enumerate every block in the canonical (level, sorted prefix, block)
     order, assigning owners from the round-robin counter: replica slot s
     of block [idx] is the live host [idx + s] positions along, so the r
     copies of a block always sit on r distinct live hosts (r <= nlive). *)
  let blocks_rev = ref [] in
  let nblocks_total = ref 0 in
  let counter = ref 0 in
  for level = 0 to t.top do
    if level mod t.stride = 0 then begin
      let sets_here =
        Hashtbl.fold (fun (l, b) arr acc -> if l = level then (b, arr) :: acc else acc) t.sets []
        |> List.sort compare
      in
      List.iter
        (fun (b, arr) ->
          let codes = L.num_ranges arr in
          let nblocks = (codes + t.bsize - 1) / t.bsize in
          for j = 0 to nblocks - 1 do
            let idx = !counter mod nlive in
            incr counter;
            let owners = Array.init reps (fun s -> live.((idx + s) mod nlive)) in
            Hashtbl.replace t.blocks (level, b, j) owners;
            blocks_rev := (level, b, arr, j, owners) :: !blocks_rev;
            incr nblocks_total
          done)
        sets_here
    end
  done;
  let block_arr = Array.of_list (List.rev !blocks_rev) in
  (* The cone of each block: for each non-basic level above, every
     descendant set's ranges touching the block's key span. (This is the
     conflict closure clamped to the block span; clamping keeps per-host
     space O(M) while every range stays covered by the block whose span it
     touches.) Pure reads of [t.sets]; charges and replica intervals are
     buffered chronologically per block. *)
  let results = Array.make !nblocks_total ([], []) in
  for_items t !nblocks_total (fun i ->
      let level, b, arr, j, owners = block_arr.(i) in
      let codes = L.num_ranges arr in
      let clo = j * t.bsize and chi = min (codes - 1) (((j + 1) * t.bsize) - 1) in
      let charges = ref [] in
      let charge_owners units = Array.iter (fun h -> charges := (h, units) :: !charges) owners in
      charge_owners (chi - clo + 1);
      let cones = ref [] in
      let span_block = interval_span arr clo chi in
      let lvl = ref (level + 1) in
      while !lvl <= t.top && !lvl mod t.stride <> 0 do
        let fan = 1 lsl (!lvl - level) in
        for suffix = 0 to fan - 1 do
          let cb = (b * fan) + suffix in
          match Hashtbl.find_opt t.sets (!lvl, cb) with
          | None -> ()
          | Some child_arr ->
              let clo', chi' = codes_touching child_arr span_block in
              if clo' <= chi' then begin
                cones := ((!lvl, cb), (clo', chi', owners)) :: !cones;
                charge_owners (chi' - clo' + 1)
              end
        done;
        incr lvl
      done;
      results.(i) <- (List.rev !charges, List.rev !cones));
  (* Sequential commit in block order reproduces the sequential rebuild's
     exact charge sequence and replica-list construction order. *)
  let cone_replicas = Hashtbl.create 64 in
  Array.iter
    (fun (charges, reps) ->
      List.iter (fun (host, units) -> charge t host units) charges;
      List.iter
        (fun (key, entry) ->
          Hashtbl.replace cone_replicas key
            (entry :: (try Hashtbl.find cone_replicas key with Not_found -> [])))
        reps)
    results;
  Hashtbl.iter (fun key lst -> Hashtbl.replace t.replicas key lst) cone_replicas

let build ~net ~seed ~m ?(r = 1) ?pool keys =
  if m < 4 then invalid_arg "Blocked1d.build: m >= 4";
  if r < 1 || r > Network.host_count net then
    invalid_arg "Blocked1d.build: need 1 <= r <= host count";
  let xs = Array.copy keys in
  Array.sort compare xs;
  Array.iteri (fun i k -> if i > 0 && xs.(i - 1) = k then invalid_arg "Blocked1d.build: duplicate keys") xs;
  let log2_ceil x =
    let rec go k = if 1 lsl k >= x then k else go (k + 1) in
    go 0
  in
  let stride = max 1 (log2_ceil m) in
  let t =
    {
      net;
      vecs = Membership.create ~seed;
      m;
      r;
      stride;
      bsize = max 2 (m / 4);  (* refined by rebuild *)
      keys = O.of_sorted_array xs;
      top = 0;
      sets = Hashtbl.create 64;
      blocks = Hashtbl.create 64;
      replicas = Hashtbl.create 64;
      host_mem = Hashtbl.create 64;
      pool;
    }
  in
  rebuild t;
  t

let replication t = t.r

let total_storage t = Hashtbl.fold (fun _ arr acc -> acc + L.num_ranges arr) t.sets 0

let replicated_storage t = Hashtbl.fold (fun _ units acc -> acc + units) t.host_mem 0

let max_host_memory t = Hashtbl.fold (fun _ units acc -> max acc units) t.host_mem 0

(* The routing representative of one replica list: its first live owner —
   the primary when nobody is dead — or the dead primary when every copy
   is gone, so the session hop raises [Host_dead] instead of silently
   reading a lost range. *)
let entry_rep t owners =
  match Array.find_opt (fun h -> Network.alive t.net h) owners with
  | Some h -> h
  | None -> owners.(0)

(* One representative per covering entry (block, or cone interval) of the
   range with this code. With nobody dead every representative is that
   entry's primary, so the list — and hence every routing decision made
   over it — is identical to the unreplicated one for any [r]. *)
let hosts_of t level b code =
  if level mod t.stride = 0 then [ entry_rep t (Hashtbl.find t.blocks (level, b, code / t.bsize)) ]
  else
    match Hashtbl.find_opt t.replicas (level, b) with
    | None -> []
    | Some lst ->
        List.concat_map
          (fun (lo, hi, hs) -> if lo <= code && code <= hi then [ entry_rep t hs ] else [])
          lst

(* Where a walk lands for this replica list: the first live owner, else the
   head so the session hop raises [Host_dead] (every copy is gone). *)
let route_of t hs =
  match List.find_opt (fun h -> Network.alive t.net h) hs with
  | Some h -> h
  | None -> ( match hs with h :: _ -> h | [] -> 0)

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

(* The owner of the block that q's own position falls into at the next
   basic level at or below [level] along the origin's set path — the host
   a descending query will want to be on. *)
let preferred_host t origin level q =
  let base = level - (level mod t.stride) in
  let b = prefix t origin base in
  match Hashtbl.find_opt t.sets (base, b) with
  | None -> None
  | Some arr -> (
      let code = L.encode (L.locate arr q) in
      match Hashtbl.find_opt t.blocks (base, b, code / t.bsize) with
      | None -> None
      | Some owners -> (
          (* First live replica of the preferred block; its primary when
             nobody is dead, preserving the historical routing exactly. *)
          match Array.find_opt (fun h -> Network.alive t.net h) owners with
          | Some h -> Some h
          | None -> Some owners.(0)))

(* Traced descents open one leveled span per level, noting whether the
   level's range lives in a block or a cone and how many replicas cover
   it; hops are labeled accordingly. All trace work is guarded, so an
   untraced query runs the original code path exactly. *)
let query_from ?trace t origin q =
  let b_top = prefix t origin t.top in
  let arr_top = Hashtbl.find t.sets (t.top, b_top) in
  let code_top = L.encode (L.locate arr_top q) in
  let initial_hosts = hosts_of t t.top b_top code_top in
  let pick level hosts current =
    (* Route among the covering entries whose representative is live; with
       nobody dead that is one primary per entry and the choice matches
       the historical one exactly. When every entry lost all its copies,
       fall through to the (dead) head so the hop raises [Host_dead]
       instead of silently reading a lost range. *)
    match List.filter (fun h -> Network.alive t.net h) hosts with
    | [] -> ( match hosts with [] -> current | h :: _ -> h)
    | [ h ] -> h
    | h :: _ as hs ->
        if List.mem current hs then current
        else (
          match preferred_host t origin level q with
          | Some p when List.mem p hs -> p
          | Some _ | None -> h)
  in
  let start = match initial_hosts with [] -> 0 | hs -> route_of t hs in
  let session = Network.start ?trace t.net start in
  let rec descend level =
    if level >= 0 then begin
      let basic = level mod t.stride = 0 in
      let b = prefix t origin level in
      let arr = Hashtbl.find t.sets (level, b) in
      let code = L.encode (L.locate arr q) in
      let hs = hosts_of t level b code in
      let target = pick level hs (Network.current session) in
      (match trace with
      | None -> Network.goto session target
      | Some tr ->
          Trace.span_open tr ~level (if basic then "basic level" else "cone level");
          Network.goto ~label:(if basic then "block" else "cone") session target;
          Trace.span_close tr ~note:(Printf.sprintf "replicas=%d" (List.length hs)) ());
      descend (level - 1)
    end
  in
  descend t.top;
  Network.finish session;
  let predecessor = O.predecessor t.keys q in
  let successor = O.successor t.keys q in
  { predecessor; successor; nearest = O.nearest t.keys q; messages = Network.messages session }

let query ?trace t ~rng q =
  if size t = 0 then { predecessor = None; successor = None; nearest = None; messages = 0 }
  else query_from ?trace t (O.get t.keys (Prng.int rng (size t))) q

(* Parallel fan-out of independent queries: origins pre-drawn sequentially
   (one rng draw per query, matching a loop of [query] coin-for-coin), then
   each descent is a pure read-only walk whose session commits through the
   network's atomic counters — results and network totals are bit-identical
   for any jobs count. An empty structure consumes no rng draws, exactly
   like the sequential loop. *)
let query_batch ?pool t ~rng qs =
  let n = Array.length qs in
  if size t = 0 then
    Array.map (fun _ -> { predecessor = None; successor = None; nearest = None; messages = 0 }) qs
  else begin
    let origins = Array.init n (fun _ -> O.get t.keys (Prng.int rng (size t))) in
    let out = Array.make n None in
    let run i = out.(i) <- Some (query_from t origins.(i) qs.(i)) in
    (match pool with
    | None ->
        for i = 0 to n - 1 do
          run i
        done
    | Some p -> Skipweb_util.Pool.parallel_for p ~lo:0 ~hi:n run);
    Array.map (function Some r -> r | None -> assert false) out
  end

let mem t k = O.mem t.keys k

(* Updates: the message bill is a locate plus O(1) messages per basic
   level (§4 — non-basic copies live in the cones already co-located with
   basic blocks; block splits amortize). The ground-set splice is an
   O(√n) chunk update; the block/cone maps are then rebuilt, which the
   cost model does not meter. *)
let update_cost t locate_messages = locate_messages + (2 * List.length (basic_levels t))

let insert t k =
  if mem t k then 0
  else begin
    let locate_msgs = if size t = 0 then 0 else (query t ~rng:(Prng.create (k + 13)) k).messages in
    ignore (O.insert t.keys k);
    rebuild t;
    update_cost t locate_msgs
  end

let delete t k =
  if not (mem t k) then 0
  else begin
    let locate_msgs = (query t ~rng:(Prng.create (k + 17)) k).messages in
    ignore (O.remove t.keys k);
    rebuild t;
    update_cost t locate_msgs
  end

let check_invariants t =
  let n = size t in
  for level = 0 to t.top do
    (* The level's sets partition the ground set. *)
    let total =
      Hashtbl.fold (fun (l, _) arr acc -> if l = level then acc + Array.length arr else acc) t.sets 0
    in
    if total <> n then failwith "Blocked1d: level sets do not partition the keys";
    Hashtbl.iter
      (fun (l, b) arr ->
        if l = level then
          Array.iter
            (fun k -> if prefix t k level <> b then failwith "Blocked1d: key in wrong set")
            arr)
      t.sets
  done;
  (* Every range of every level is stored somewhere. *)
  Hashtbl.iter
    (fun (level, b) arr ->
      for code = 0 to L.num_ranges arr - 1 do
        match hosts_of t level b code with
        | [] -> failwith (Printf.sprintf "Blocked1d: range uncovered at level %d" level)
        | _ :: _ -> ()
      done)
    t.sets;
  (* Conflict-chain soundness: on every level, the range containing a probe
     key conflicts with the range containing it one level up. *)
  if n > 0 then begin
    let probes = [ O.get t.keys 0 - 1; O.get t.keys (n / 2); O.get t.keys (n - 1) + 1 ] in
    List.iter
      (fun q ->
        let origin = O.get t.keys (n / 2) in
        let rec walk level =
          if level > 0 then begin
            let b = prefix t origin level in
            let child = Hashtbl.find t.sets (level, b) in
            let parent = Hashtbl.find t.sets (level - 1, b / 2) in
            let child_range = L.locate child q in
            let plo, phi = L.conflict_interval ~parent ~child child_range in
            let pcode = L.encode (L.locate parent q) in
            if pcode < plo || pcode > phi then failwith "Blocked1d: conflict chain broken";
            walk (level - 1)
          end
        in
        walk t.top)
      probes
  end

type repair_stats = { scanned : int; repaired : int; messages : int; lost : int }

(* Blocked1d's update model rebuilds the block/cone maps wholesale, so
   self-repair is: bill the copies currently stranded on dead hosts (one
   steal message per unit with a surviving replica, a loss otherwise),
   then rebuild — which re-draws every placement over live hosts only and
   migrates the stranded charges as a side effect of re-charging. *)
let repair t =
  let scanned = ref 0 and repaired = ref 0 and messages = ref 0 and lost = ref 0 in
  let account owners units =
    incr scanned;
    let any_live = Array.exists (fun h -> Network.alive t.net h) owners in
    Array.iter
      (fun h ->
        if not (Network.alive t.net h) then begin
          repaired := !repaired + units;
          if any_live then messages := !messages + units else lost := !lost + units
        end)
      owners
  in
  Hashtbl.iter
    (fun (level, b, j) owners ->
      match Hashtbl.find_opt t.sets (level, b) with
      | None -> ()
      | Some arr ->
          let codes = L.num_ranges arr in
          let clo = j * t.bsize and chi = min (codes - 1) (((j + 1) * t.bsize) - 1) in
          if clo <= chi then account owners (chi - clo + 1))
    t.blocks;
  Hashtbl.iter
    (fun _ lst -> List.iter (fun (clo, chi, owners) -> account owners (chi - clo + 1)) lst)
    t.replicas;
  rebuild t;
  { scanned = !scanned; repaired = !repaired; messages = !messages; lost = !lost }

type range_result = { keys : int list; messages : int }

let range t ~rng ~lo ~hi =
  if lo > hi then invalid_arg "Blocked1d.range: lo > hi";
  if size t = 0 then { keys = []; messages = 0 }
  else begin
    let locate = query t ~rng lo in
    (* Walk the bottom level (the full set, prefix 0) from lo's range to
       hi's: consecutive ranges share blocks except at block boundaries. *)
    let arr = Hashtbl.find t.sets (0, 0) in
    let clo, chi = L.range_codes arr ~lo ~hi in
    let crossings = ref 0 in
    let cur = ref (match hosts_of t 0 0 clo with [] -> 0 | hs -> route_of t hs) in
    let c = ref clo in
    while !c <= chi do
      (match hosts_of t 0 0 !c with
      | [] -> ()
      | hs ->
          let h = route_of t hs in
          if h <> !cur then begin
            incr crossings;
            cur := h
          end);
      incr c
    done;
    { keys = O.range_keys t.keys ~lo ~hi; messages = locate.messages + !crossings }
  end
