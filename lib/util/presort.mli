(** The shared batch presort: sort-and-dedup an arbitrary key array under
    a caller-supplied total order, optionally fanning the sort over a
    {!Pool}.

    Every batch engine (the 1-d sorted list, the compressed quadtree, the
    compressed trie, the trapezoidal map) starts from the same primitive:
    turn "whatever the caller handed us" into a strictly-increasing key
    array under the structure's own order (rank order, z-order,
    lexicographic, x-order). This module is that primitive, factored out
    of the per-instance copies so the semantics are pinned in exactly one
    place (and unit-tested as such). *)

val sorted_distinct : ?pool:Pool.t -> cmp:('a -> 'a -> int) -> 'a array -> 'a array
(** [sorted_distinct ~cmp a] returns an array that is strictly increasing
    under [cmp] and contains exactly one representative of every
    [cmp]-equivalence class of [a].

    Semantics (pinned by the unit tests):
    {ul
    {- If [a] is already strictly increasing under [cmp] — the common case
       for pre-sorted bulk loads — the {e very same array} is returned
       (physical identity, no copy). Callers that mutate the result must
       therefore copy it first; the batch engines never do.}
    {- Otherwise a fresh array is returned and [a] is left untouched.}
    {- When elements of an equivalence class are structurally equal (as
       for every instance key type: ints, grid coordinate arrays, strings,
       segment records), the surviving representative is that common
       value. For classes with structurally distinct members the choice of
       representative is unspecified — no instance relies on it.}}

    With [pool], large inputs (n ≥ 8192) are sorted as static segments on
    the pool's domains and combined by deterministic pairwise merge
    rounds — the Ordseq chunk-sort idiom. The sorted-distinct sequence of
    an input multiset is unique, so the result is {e bit-identical} to
    the sequential sort for any jobs count; only the wall clock changes.
    [cmp] must be a total order and is called concurrently, so it must be
    pure. *)
