(* The shared batch presort. See presort.mli for the pinned semantics.

   The pooled path mirrors Ordseq.sorted_copy: cut the copy into at most
   [jobs] static segments, sort each on its own domain, then combine with
   deterministic pairwise merge rounds. The sorted-distinct output of a
   multiset is unique whatever the segmentation, so the parallel path is
   bit-identical to the sequential one. *)

let strictly_sorted ~cmp a =
  let n = Array.length a in
  let ok = ref true in
  let i = ref 1 in
  while !ok && !i < n do
    if cmp a.(!i - 1) a.(!i) >= 0 then ok := false;
    incr i
  done;
  !ok

(* In-place dedup of a [cmp]-sorted prefix; returns the live length.
   Keeps the first element of every run of equals. *)
let dedup_sorted ~cmp a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let m = ref 1 in
    for i = 1 to n - 1 do
      if cmp a.(i) a.(!m - 1) <> 0 then begin
        a.(!m) <- a.(i);
        incr m
      end
    done;
    !m
  end

let sorted_copy ?pool ~cmp a =
  let a = Array.copy a in
  let n = Array.length a in
  let parts =
    match pool with
    | Some p when n >= 8192 && Pool.jobs p > 1 -> min (Pool.jobs p) (n / 4096)
    | _ -> 1
  in
  if parts < 2 then begin
    Array.sort cmp a;
    a
  end
  else begin
    let base = n / parts and extra = n mod parts in
    let segs =
      Array.init parts (fun i ->
          let start = (i * base) + min i extra in
          let len = base + if i < extra then 1 else 0 in
          Array.sub a start len)
    in
    (match pool with
    | Some p -> Pool.parallel_for p ~lo:0 ~hi:parts (fun i -> Array.sort cmp segs.(i))
    | None -> Array.iter (Array.sort cmp) segs);
    (* Segments are non-empty (parts <= n / 4096), so x.(0) is a valid
       fill element for the merged array. *)
    let merge2 x y =
      let lx = Array.length x and ly = Array.length y in
      let out = Array.make (lx + ly) x.(0) in
      let i = ref 0 and j = ref 0 and o = ref 0 in
      while !i < lx && !j < ly do
        if cmp x.(!i) y.(!j) <= 0 then begin
          out.(!o) <- x.(!i);
          incr i
        end
        else begin
          out.(!o) <- y.(!j);
          incr j
        end;
        incr o
      done;
      Array.blit x !i out !o (lx - !i);
      Array.blit y !j out (!o + lx - !i) (ly - !j);
      out
    in
    let rec rounds = function
      | [] -> [||]
      | [ s ] -> s
      | segs ->
          let rec pair = function
            | x :: y :: rest -> merge2 x y :: pair rest
            | tail -> tail
          in
          rounds (pair segs)
    in
    rounds (Array.to_list segs)
  end

let sorted_distinct ?pool ~cmp a =
  if strictly_sorted ~cmp a then a
  else begin
    let copy = sorted_copy ?pool ~cmp a in
    let m = dedup_sorted ~cmp copy in
    if m = Array.length copy then copy else Array.sub copy 0 m
  end
