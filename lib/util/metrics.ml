(* Histograms are quantile sketches: exact (sample-retaining) up to the
   registry's [sample_cap], transparently degrading to constant-memory
   logarithmic buckets above it. Below the cap the exported figures are
   bitwise the old retain-everything summaries (Sketch's exact mode
   answers through Stats.percentile on the sorted sample); above it the
   registry stops hoarding samples — the bounded-memory regression test
   observes 10^6 values and checks the footprint stays flat. Sketch
   merging is partition-independent, so the shard-merge determinism
   contract below holds in both modes. *)

type entry = Counter of int ref | Histogram of Sketch.t

type t = { entries : (string, entry) Hashtbl.t; sample_cap : int }

let default_sample_cap = 4096

let create ?(sample_cap = default_sample_cap) () =
  if sample_cap < 0 then invalid_arg "Metrics.create: sample_cap must be >= 0";
  { entries = Hashtbl.create 32; sample_cap }

let sample_cap t = t.sample_cap

let clear t = Hashtbl.reset t.entries

let counter t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Counter c) -> c
  | Some (Histogram _) -> invalid_arg (Printf.sprintf "Metrics: %s is a histogram" name)
  | None ->
      let c = ref 0 in
      Hashtbl.replace t.entries name (Counter c);
      c

let histogram t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Histogram s) -> s
  | Some (Counter _) -> invalid_arg (Printf.sprintf "Metrics: %s is a counter" name)
  | None ->
      let s = Sketch.create ~exact_cap:t.sample_cap () in
      Hashtbl.replace t.entries name (Histogram s);
      s

let incr t ?(by = 1) name =
  let c = counter t name in
  c := !c + by

let observe t name v = Sketch.observe (histogram t name) v

let observe_int t name v = observe t name (float_of_int v)

let counter_value t name =
  match Hashtbl.find_opt t.entries name with Some (Counter c) -> !c | _ -> 0

let histogram_summary t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Histogram s) when Sketch.count s > 0 -> Some (Sketch.summary s)
  | _ -> None

let histogram_sketch t name =
  match Hashtbl.find_opt t.entries name with Some (Histogram s) -> Some s | _ -> None

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.entries [] |> List.sort compare

(* Shard merging for parallel recording: each worker records into its own
   registry, then the shards are folded into one. Counters add, and
   histogram sketches merge partition-independently — the merged sketch
   (and every figure exported from it) is a pure function of the union
   sample multiset, never of the shard boundaries or the merge order —
   so the merged registry's exports do not depend on which worker
   recorded which sample. Registries must share one [sample_cap]. *)
let merge dst src =
  List.iter
    (fun name ->
      match Hashtbl.find src.entries name with
      | Counter c -> incr dst ~by:!c name
      | Histogram s -> Sketch.merge (histogram dst name) s)
    (names src)

let json_of_summary (s : Stats.summary) =
  Printf.sprintf
    "{\"count\": %d, \"mean\": %g, \"stddev\": %g, \"min\": %g, \"max\": %g, \"p50\": %g, \
     \"p90\": %g, \"p99\": %g}"
    s.Stats.count s.Stats.mean s.Stats.stddev s.Stats.min s.Stats.max s.Stats.p50 s.Stats.p90
    s.Stats.p99

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let field name =
    match Hashtbl.find t.entries name with
    | Counter c -> Printf.sprintf "  \"%s\": %d" (escape name) !c
    | Histogram s ->
        let body =
          if Sketch.count s = 0 then "{\"count\": 0}" else json_of_summary (Sketch.summary s)
        in
        Printf.sprintf "  \"%s\": %s" (escape name) body
  in
  Printf.sprintf "{\n%s\n}\n" (String.concat ",\n" (List.map field (names t)))

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "name,kind,value,count,mean,stddev,min,max,p50,p90,p99\n";
  List.iter
    (fun name ->
      match Hashtbl.find t.entries name with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%s,counter,%d,,,,,,,,\n" name !c)
      | Histogram s ->
          if Sketch.count s = 0 then
            Buffer.add_string buf (Printf.sprintf "%s,histogram,,0,,,,,,,\n" name)
          else
            let m = Sketch.summary s in
            Buffer.add_string buf
              (Printf.sprintf "%s,histogram,,%d,%g,%g,%g,%g,%g,%g,%g\n" name m.Stats.count
                 m.Stats.mean m.Stats.stddev m.Stats.min m.Stats.max m.Stats.p50 m.Stats.p90
                 m.Stats.p99))
    (names t);
  Buffer.contents buf
