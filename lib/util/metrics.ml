type series = { mutable values : float list; mutable count : int }

type entry = Counter of int ref | Histogram of series

type t = { entries : (string, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 32 }

let clear t = Hashtbl.reset t.entries

let counter t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Counter c) -> c
  | Some (Histogram _) -> invalid_arg (Printf.sprintf "Metrics: %s is a histogram" name)
  | None ->
      let c = ref 0 in
      Hashtbl.replace t.entries name (Counter c);
      c

let histogram t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Histogram s) -> s
  | Some (Counter _) -> invalid_arg (Printf.sprintf "Metrics: %s is a counter" name)
  | None ->
      let s = { values = []; count = 0 } in
      Hashtbl.replace t.entries name (Histogram s);
      s

let incr t ?(by = 1) name =
  let c = counter t name in
  c := !c + by

let observe t name v =
  let s = histogram t name in
  s.values <- v :: s.values;
  s.count <- s.count + 1

let observe_int t name v = observe t name (float_of_int v)

let counter_value t name =
  match Hashtbl.find_opt t.entries name with Some (Counter c) -> !c | _ -> 0

let histogram_summary t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Histogram s) when s.count > 0 -> Some (Stats.summarize s.values)
  | _ -> None

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.entries [] |> List.sort compare

(* Shard merging for parallel recording: each worker records into its own
   registry, then the shards are folded into one. Counters add and
   histogram sample multisets union, both commutative — and every exported
   histogram figure is computed from the sorted sample multiset — so the
   merged registry's exports do not depend on the merge order or on which
   worker recorded which sample. *)
let merge dst src =
  List.iter
    (fun name ->
      match Hashtbl.find src.entries name with
      | Counter c -> incr dst ~by:!c name
      | Histogram s ->
          let d = histogram dst name in
          d.values <- List.rev_append s.values d.values;
          d.count <- d.count + s.count)
    (names src)

let json_of_summary (s : Stats.summary) =
  Printf.sprintf
    "{\"count\": %d, \"mean\": %g, \"stddev\": %g, \"min\": %g, \"max\": %g, \"p50\": %g, \
     \"p90\": %g, \"p99\": %g}"
    s.Stats.count s.Stats.mean s.Stats.stddev s.Stats.min s.Stats.max s.Stats.p50 s.Stats.p90
    s.Stats.p99

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let field name =
    match Hashtbl.find t.entries name with
    | Counter c -> Printf.sprintf "  \"%s\": %d" (escape name) !c
    | Histogram s ->
        let body =
          if s.count = 0 then "{\"count\": 0}" else json_of_summary (Stats.summarize s.values)
        in
        Printf.sprintf "  \"%s\": %s" (escape name) body
  in
  Printf.sprintf "{\n%s\n}\n" (String.concat ",\n" (List.map field (names t)))

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "name,kind,value,count,mean,stddev,min,max,p50,p90,p99\n";
  List.iter
    (fun name ->
      match Hashtbl.find t.entries name with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%s,counter,%d,,,,,,,,\n" name !c)
      | Histogram s ->
          if s.count = 0 then Buffer.add_string buf (Printf.sprintf "%s,histogram,,0,,,,,,,\n" name)
          else
            let m = Stats.summarize s.values in
            Buffer.add_string buf
              (Printf.sprintf "%s,histogram,,%d,%g,%g,%g,%g,%g,%g,%g\n" name m.Stats.count
                 m.Stats.mean m.Stats.stddev m.Stats.min m.Stats.max m.Stats.p50 m.Stats.p90
                 m.Stats.p99))
    (names t);
  Buffer.contents buf
