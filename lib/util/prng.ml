type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The SplitMix64 finalizer: a bijective mixer with good avalanche. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy g = { state = g.state }

let next64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g = { state = mix64 (Int64.logxor (next64 g) 0xA3EC647659359ACDL) }

let stream g i =
  if i < 0 then invalid_arg "Prng.stream: index must be non-negative";
  (* Indexed substream derivation: jump the (unmodified) base state by
     [i + 1] gammas and re-mix, as if the stream were the result of the
     (i + 1)-th split. Unlike [split] this never advances [g], so the
     mapping (base state, i) -> stream is a pure function and any worker
     can derive stream [i] without coordinating with the others. *)
  { state = mix64 (Int64.logxor (Int64.add g.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma)) 0xA3EC647659359ACDL) }

let bits g = Int64.to_int (Int64.shift_right_logical (next64 g) 2)

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias: [bits] is uniform over
     [0, max_int]; reject the top partial block of size
     (max_int + 1) mod n. *)
  let rem = ((max_int mod n) + 1) mod n in
  let rec draw () =
    let r = bits g in
    if rem > 0 && r > max_int - rem then draw () else r mod n
  in
  draw ()

let float g x =
  let r = Int64.to_float (Int64.shift_right_logical (next64 g) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.compare (Int64.logand (next64 g) 1L) 0L <> 0

let coin g ~p =
  assert (p >= 0.0 && p <= 1.0);
  float g 1.0 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement g k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Partial Fisher–Yates over a fresh index array. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int g (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k

let hash2 a b =
  let h = mix64 (Int64.add (mix64 (Int64.of_int a)) (Int64.of_int b)) in
  Int64.to_int (Int64.shift_right_logical h 2)

let hash3 a b c =
  let h = mix64 (Int64.add (mix64 (Int64.add (mix64 (Int64.of_int a)) (Int64.of_int b))) (Int64.of_int c)) in
  Int64.to_int (Int64.shift_right_logical h 2)
