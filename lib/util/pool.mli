(** A fixed-size domain pool for the parallel read path.

    Queries against a skip-web are independent read-only walks; the paper
    only serializes updates (§4). This pool is the execution engine for
    fanning such walks out over OCaml 5 domains: [jobs - 1] worker domains
    plus the submitting domain drain a shared task queue, so a pool of
    [~jobs:k] runs at concurrency [k].

    Work is split by {e deterministic static chunking}: an index range is
    cut into at most [jobs] contiguous chunks whose boundaries depend only
    on the range and the jobs count — never on scheduling — so any
    per-chunk derivation (PRNG streams, metrics shards) is reproducible
    across runs. [~jobs:1] executes inline on the calling domain with no
    queue, no locks and no domains: the sequential behaviour is the
    identity case, not a special one.

    A pool is {e not re-entrant}: tasks must not themselves call
    {!parallel_for}/{!parallel_map} on the same pool (detected and
    rejected with [Invalid_argument]). One batch runs at a time. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains. Requires [jobs >= 1];
    [~jobs:1] spawns nothing. Call {!shutdown} when done. *)

val jobs : t -> int
(** The concurrency level the pool was created with. *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi f] runs [f i] for every [i] in [\[lo, hi)],
    split into contiguous chunks across the pool's domains. Within a chunk,
    indices run in ascending order. If any [f i] raises, the first
    exception (in completion order) is re-raised in the caller after all
    chunks have finished; the pool remains usable. Empty ranges are
    no-ops. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f xs] is [Array.map f xs] with the elements
    processed as {!parallel_for} chunks; the result preserves index
    order, so reductions over it are bit-identical to the sequential
    map regardless of the jobs count. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Using the pool after
    shutdown raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t option -> 'a) -> 'a
(** [with_pool ~jobs f] calls [f (Some pool)] with a fresh pool and shuts
    it down afterwards (also on exceptions) — or calls [f None] when
    [jobs <= 1], the convention query-batch entry points use for "run
    sequentially inline". *)
