(** A fixed-size domain pool for the parallel read and write paths.

    Queries against a skip-web are independent read-only walks, and once
    the membership coins are drawn a batch update decomposes into
    independent per-level repairs (§4). This pool is the execution engine
    for fanning either kind of work out over OCaml 5 domains: [jobs - 1]
    worker domains plus the submitting domain drain a shared task queue,
    so a pool of [~jobs:k] runs at concurrency [k].

    Two dispatch disciplines are offered, and choosing between them is a
    determinism-versus-balance contract:

    {ul
    {- {e Deterministic static chunking} ({!parallel_for}): an index range
       is cut into at most [jobs] contiguous chunks whose boundaries
       depend only on the range and the jobs count — never on scheduling —
       so any per-chunk derivation (PRNG streams, metrics shards) is
       reproducible across runs. The cost: chunks are equal-sized by
       {e count}, so when per-index costs are skewed (a geometric level
       hierarchy, a handful of coarse tasks) the slowest chunk serializes
       the tail.}
    {- {e Dynamic largest-first dispatch} ({!parallel_for_tasks}): tasks
       are claimed one at a time from a shared counter in descending
       cost-weight order, the classical LPT greedy. Which domain runs
       which task depends on timing, so tasks must not derive anything
       from "their" domain; in exchange, a few heavy tasks no longer pin
       the wall clock to one domain's share.}}

    [~jobs:1] executes inline on the calling domain with no queue, no
    locks and no domains: the sequential behaviour is the identity case,
    not a special one.

    A pool is {e not re-entrant}: tasks must not themselves call
    {!parallel_for}/{!parallel_for_tasks}/{!parallel_map} on the same pool
    (detected and rejected with [Invalid_argument]). One batch runs at a
    time. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains. Requires [jobs >= 1];
    [~jobs:1] spawns nothing. Call {!shutdown} when done. *)

val jobs : t -> int
(** The concurrency level the pool was created with. *)

val clamp_jobs : ?warn:bool -> int -> int
(** [clamp_jobs jobs] caps a requested jobs count at
    [Domain.recommended_domain_count ()], printing a one-line warning to
    stderr (suppress with [~warn:false]) instead of silently
    oversubscribing domains. Values at or under the cap pass through
    unchanged; so do values [<= 1] (the sequential convention). Every
    [--jobs] entry point (bench driver, CLI) routes through this. *)

(** {1 Utilization}

    Per-slot busy time and task counts, for observing how evenly a
    parallel phase spread over the domains. Worker domain [i] owns slot
    [i]; the submitting domain (which helps drain) owns slot [jobs - 1].
    Each slot is written only by its own domain, and batch completion
    synchronizes, so reading between batches is race-free. Wall-clock
    figures — never part of any determinism contract. *)

type utilization = {
  tasks : int array;
      (** work items (chunk indices, dynamic claims) executed per slot,
          [jobs] entries *)
  busy_s : float array;  (** wall-clock seconds spent inside tasks *)
}

val utilization : t -> utilization
(** Snapshot (copies) of the counters accumulated since creation or the
    last {!reset_utilization}. Call between batches, not during one. *)

val reset_utilization : t -> unit

val record_metrics : t -> Metrics.t -> unit
(** Export the utilization snapshot into a metrics registry as counters:
    [pool.jobs], and per slot [pool.slotNN.tasks] /
    [pool.slotNN.busy_us]. The CLI's [stats]/[hotspots] use this behind
    [--pool-stats] (off by default: the figures are wall-clock and
    jobs-dependent, so they would break the byte-identical-across-jobs
    diff of the registry export). *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi f] runs [f i] for every [i] in [\[lo, hi)],
    split into contiguous static chunks across the pool's domains. Within
    a chunk, indices run in ascending order. If any [f i] raises, the
    first exception (in completion order) is re-raised in the caller after
    all chunks have finished; the pool remains usable. Empty ranges are
    no-ops. *)

val parallel_for_tasks : t -> weights:int array -> (int -> unit) -> unit
(** [parallel_for_tasks pool ~weights f] runs [f i] once for every index
    [i] of [weights], dispatching dynamically in descending [weights.(i)]
    order (ties broken by ascending index, so the claim order is
    deterministic even though the index-to-domain assignment is not).
    Meant for small batches of coarse tasks with skewed costs — e.g. one
    task per hierarchy level, where level 0 carries half the total work:
    starting the heaviest task first bounds the makespan at the LPT
    guarantee instead of whatever the static chunk boundaries happen to
    hit. Weights only order the schedule; they never affect {e what} runs.
    Tasks must be mutually independent and must not derive results from
    scheduling. Exception semantics match {!parallel_for}: every index is
    still claimed (a failed task never blocks the rest of the batch) and
    the first failure is re-raised. [~jobs:1] runs indices in ascending
    order inline. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f xs] is [Array.map f xs] with the elements
    processed across the pool's domains; the result preserves index order,
    so reductions over it are bit-identical to the sequential map
    regardless of the jobs count. Arrays with at least [2 * jobs] elements
    use {!parallel_for} static chunks; smaller arrays fall back to dynamic
    one-at-a-time dispatch, because with fewer than two chunks per domain
    a single expensive element would serialize its whole chunk's
    neighbours behind it. [f] therefore must not derive results from the
    domain it happens to run on — only from its argument. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Using the pool after
    shutdown raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t option -> 'a) -> 'a
(** [with_pool ~jobs f] calls [f (Some pool)] with a fresh pool and shuts
    it down afterwards (also on exceptions) — or calls [f None] when
    [jobs <= 1], the convention batch entry points use for "run
    sequentially inline". *)
