(** A mergeable quantile sketch with memory constant in the sample count.

    The retain-everything histograms of {!Metrics} cannot survive the
    10^6–10^7-operation workloads the serving-at-scale experiments
    drive; this sketch replaces them wherever a phase only needs
    count/mean/min/max and p50/p90/p99. It is a logarithmic-bucket
    sketch (the DDSketch family) rather than P2 or Greenwald–Khanna,
    chosen for one property those order-sensitive summaries lack:
    {b partition independence}. The bucket of a value is a pure function
    of the value, and {!merge} adds integer bucket counts, so the merged
    sketch — and every figure exported from it — depends only on the
    multiset of observed samples, never on how the samples were split
    across per-domain shards nor on the order the shards were merged.
    That is exactly the {!Metrics.merge} determinism contract, and it is
    what lets parallel query/write phases report percentiles while
    staying byte-identical across [--jobs] counts.

    {b Accuracy.} Below [exact_cap] samples the sketch retains the
    values and answers through {!Stats.percentile} on the sorted sample
    — bitwise identical to the exact summaries, pinned by tests. Above
    the cap, {!quantile} returns a value within relative error [alpha]
    (plus an absolute [1e-12] for samples binned as zero) of the sample
    at the nearest rank [round (q (n-1))]. Memory is one bucket per
    [gamma = (1+alpha)/(1-alpha)] factor of value magnitude: constant in
    the sample count, logarithmic in the value dynamic range. *)

type t

val create : ?alpha:float -> ?exact_cap:int -> unit -> t
(** [create ()] makes an empty sketch. [alpha] (default [0.01]) is the
    guaranteed relative accuracy of bucket-mode quantiles and must lie
    in (0, 1); [exact_cap] (default [256]) is the sample count up to
    which the sketch stays exact. Raises [Invalid_argument] on a bad
    [alpha] or a negative [exact_cap]. *)

val observe : t -> float -> unit
(** Add one sample. Crossing [exact_cap] spills every retained sample
    into its bucket; the resulting bucket table is the same whether the
    cap was crossed by one stream or by merging shards. Rejects NaN. *)

val observe_int : t -> int -> unit

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst]; [src] is unchanged. If both
    are exact and the union still fits under the cap, the result is
    exact; otherwise both sides are spilled into buckets. The merged
    sketch is a pure function of the union multiset (see above).
    Raises [Invalid_argument] if the sketches were created with
    different [alpha] or [exact_cap]. *)

val count : t -> int

val is_exact : t -> bool
(** Whether the sketch still retains its samples exactly. *)

val alpha : t -> float
val exact_cap : t -> int

val bucket_count : t -> int
(** Occupied buckets (including the zero bin) — the sketch's memory
    footprint in cells. 0 while exact. Bounded by the value dynamic
    range, not by the sample count: the bounded-memory regression test
    observes 10^6 samples and checks this stays in the hundreds. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] clamped to [\[0, 1\]]. Exact mode answers
    {!Stats.percentile} on the sorted sample bitwise (interpolated
    ranks included); bucket mode returns a nearest-rank estimate within
    the documented error bound, clamped into [\[min, max\]] of the
    observed samples. Raises [Invalid_argument] on an empty sketch. *)

val summary : t -> Stats.summary
(** The usual export shape. Exact mode: {!Stats.summarize} of the
    sorted sample. Bucket mode: [min]/[max]/[count] are exact;
    [mean]/[stddev] are computed from bucket representatives (relative
    error [alpha] on each sample's contribution); percentiles are
    {!quantile}. Every accumulation runs in sorted bucket order, so the
    summary is deterministic for one sample multiset. Raises
    [Invalid_argument] on an empty sketch. *)

val to_json : t -> string
(** One JSON object: [count], [exact], [buckets], [alpha], and the
    summary figures. Deterministic for one sample multiset. *)
