(* A fixed-size windowed time-series: a ring of the last [window] epoch
   values, plus the total number of epochs ever pushed. The monitoring
   surfaces (exp_churn's availability/repair timeline, the CLI monitor
   subcommand) push one value per epoch and read back the retained
   window — memory is the window size, independent of how long the
   workload has been running. *)

type t = {
  window : int;
  buf : float array;
  mutable total : int;  (* epochs ever pushed *)
}

let create ~window =
  if window < 1 then invalid_arg "Series.create: window must be >= 1";
  { window; buf = Array.make window 0.0; total = 0 }

let window t = t.window
let total t = t.total
let length t = min t.total t.window

let push t v =
  t.buf.(t.total mod t.window) <- v;
  t.total <- t.total + 1

(* Epoch index of the oldest retained value. *)
let first_epoch t = t.total - length t

let nth t i =
  if i < 0 || i >= length t then invalid_arg "Series.nth: index out of window";
  t.buf.((first_epoch t + i) mod t.window)

let last t = if t.total = 0 then None else Some (nth t (length t - 1))

let to_list t = List.init (length t) (fun i -> (first_epoch t + i, nth t i))

let values t = List.init (length t) (nth t)

let summary t = if t.total = 0 then None else Some (Stats.summarize (values t))

let to_json t =
  Printf.sprintf "{\"window\": %d, \"total\": %d, \"first_epoch\": %d, \"values\": [%s]}"
    t.window t.total (first_epoch t)
    (String.concat ", " (List.map (Printf.sprintf "%g") (values t)))
