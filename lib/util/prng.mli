(** Deterministic pseudo-random number generation for reproducible
    experiments.

    All randomized structures in this repository (skip lists, skip graphs,
    skip-webs, randomized incremental constructions) draw their coins from
    this module rather than from [Stdlib.Random], so that every experiment
    is reproducible from a single integer seed.

    The generator is SplitMix64 (Steele, Lea, Flood 2014): a tiny,
    high-quality 64-bit mixer that supports cheap splitting, which we use to
    derive independent streams per element, per level, and per trial. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    (for practical purposes) independent of the rest of [g]'s stream. *)

val stream : t -> int -> t
(** [stream g i] derives the [i]-th indexed substream of [g] {e without}
    advancing [g]: a pure function of ([g]'s current state, [i]), with
    distinct [i] giving (for practical purposes) independent streams.
    This is the per-worker derivation for parallel workloads: each unit
    of work [i] uses [stream g i], so the coins it sees depend only on
    the base seed and [i] — never on which domain ran it or in what
    order — making parallel runs bit-identical to sequential ones.
    Requires [i >= 0]. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** [bits g] is a non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** A fair coin. *)

val coin : t -> p:float -> bool
(** [coin g ~p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement g k n] draws [k] distinct indices uniformly
    from [\[0, n)]. Requires [0 <= k <= n]. *)

val hash2 : int -> int -> int
(** [hash2 a b] deterministically mixes two integers into a non-negative
    integer; used to derive per-element random bits from (seed, element id)
    without storing explicit bit vectors. *)

val hash3 : int -> int -> int -> int
(** Three-argument variant of {!hash2}. *)
