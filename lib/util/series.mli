(** A fixed-size windowed time-series: the last [window] epoch values.

    Monitoring surfaces push one value per epoch (ops/s, message rate,
    availability, repair bill) and read back the retained window plus
    its summary — memory is the window size, independent of run length.
    Epochs are numbered from 0 in push order; once more than [window]
    values have been pushed, the oldest are overwritten and the
    retained range starts at {!total}[ - window]. *)

type t

val create : window:int -> t
(** Requires [window >= 1]. *)

val push : t -> float -> unit
(** Append the next epoch's value, evicting the oldest when full. *)

val window : t -> int

val total : t -> int
(** Epochs ever pushed (retained or not). *)

val length : t -> int
(** Retained values: [min total window]. *)

val nth : t -> int -> float
(** [nth t i] is the [i]-th retained value, oldest first ([i] in
    [\[0, length)]); its absolute epoch is [total - length + i].
    Raises [Invalid_argument] outside the window. *)

val last : t -> float option

val to_list : t -> (int * float) list
(** Retained values, oldest first, each with its absolute epoch. *)

val values : t -> float list

val summary : t -> Stats.summary option
(** Summary over the retained window; [None] when nothing was pushed. *)

val to_json : t -> string
(** [{"window": w, "total": n, "first_epoch": e, "values": [...]}] —
    the retained window, oldest first. *)
