(* Chunked sorted-sequence engine. See the interface for the contract;
   the representation notes live here.

   Keys sit in sorted order across [nchunks] chunks; chunk [j] is the
   first [clen.(j)] cells of [chunk.(j)] and [cmax.(j)] caches its last
   element. [fen] is a 1-based Fenwick tree over the chunk lengths, so a
   global rank is a chunk prefix-count plus an in-chunk binary search and
   [get] is a Fenwick descent. Chunks split at [2 * target] and merge
   back when they fall under [target / 4]; [target] tracks √n, refreshed
   by a full O(n) re-chunk whenever the size drifts 4× from [anchor]
   (the size at the last re-chunk), so every structural cost is O(√n)
   worst-case and O(1) amortized per update.

   The positional [Vec] shares every structural routine; it simply skips
   the key search ([insert_at]/[remove_at] address a position directly)
   and never relies on ordering, while [cmax] is still maintained as
   "last cell of the chunk" so the shared split/merge code is oblivious
   to which flavor it serves. *)

(* ---------- shared sorted-array binary searches ---------- *)

let array_lower_bound ?len (a : int array) k =
  let n = match len with Some l -> l | None -> Array.length a in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) lsr 1 in
      if a.(mid) < k then go (mid + 1) hi else go lo mid
  in
  go 0 n

let array_upper_index ?len (a : int array) k =
  let n = match len with Some l -> l | None -> Array.length a in
  let rec go lo hi =
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) lsr 1 in
      if a.(mid) <= k then go (mid + 1) hi else go lo mid
  in
  go 0 n

(* ---------- representation ---------- *)

type t = {
  mutable chunk : int array array;
  mutable clen : int array;
  mutable cmax : int array;
  mutable nchunks : int;
  mutable total : int;
  mutable fen : int array;  (* 1-based Fenwick over clen.(0..nchunks-1) *)
  mutable target : int;
  mutable anchor : int;  (* total at the last re-chunk *)
}

let min_target = 8

let isqrt n =
  if n <= 0 then 0
  else begin
    let r = ref (int_of_float (Float.sqrt (float_of_int n))) in
    while (!r + 1) * (!r + 1) <= n do incr r done;
    while !r * !r > n do decr r done;
    !r
  end

let target_for n = max min_target (isqrt n)

let create () =
  {
    chunk = Array.make 4 [||];
    clen = Array.make 4 0;
    cmax = Array.make 4 0;
    nchunks = 0;
    total = 0;
    fen = Array.make 8 0;
    target = min_target;
    anchor = 0;
  }

let length t = t.total
let is_empty t = t.total = 0
let chunk_count t = t.nchunks

(* ---------- Fenwick index over chunk lengths ---------- *)

let fen_rebuild t =
  let m = t.nchunks in
  if Array.length t.fen < m + 1 then t.fen <- Array.make (max (m + 1) (2 * Array.length t.fen)) 0
  else Array.fill t.fen 0 (m + 1) 0;
  for i = 1 to m do
    t.fen.(i) <- t.fen.(i) + t.clen.(i - 1);
    let j = i + (i land -i) in
    if j <= m then t.fen.(j) <- t.fen.(j) + t.fen.(i)
  done

let fen_add t j d =
  let i = ref (j + 1) in
  while !i <= t.nchunks do
    t.fen.(!i) <- t.fen.(!i) + d;
    i := !i + (!i land - !i)
  done

(* Sum of the lengths of chunks 0 .. j-1. *)
let fen_prefix t j =
  let s = ref 0 and i = ref j in
  while !i > 0 do
    s := !s + t.fen.(!i);
    i := !i - (!i land - !i)
  done;
  !s

(* The (chunk, offset) holding global position [pos] (pos < total):
   binary-lifting descent over the Fenwick tree. *)
let fen_find t pos =
  let bit = ref 1 in
  while 2 * !bit <= t.nchunks do bit := 2 * !bit done;
  let idx = ref 0 and rem = ref pos in
  while !bit > 0 do
    let next = !idx + !bit in
    if next <= t.nchunks && t.fen.(next) <= !rem then begin
      rem := !rem - t.fen.(next);
      idx := next
    end;
    bit := !bit lsr 1
  done;
  (!idx, !rem)

(* ---------- chunk-table slot management ---------- *)

let ensure_slot_capacity t =
  if t.nchunks = Array.length t.chunk then begin
    let cap = 2 * Array.length t.chunk in
    let chunk = Array.make cap [||] and clen = Array.make cap 0 and cmax = Array.make cap 0 in
    Array.blit t.chunk 0 chunk 0 t.nchunks;
    Array.blit t.clen 0 clen 0 t.nchunks;
    Array.blit t.cmax 0 cmax 0 t.nchunks;
    t.chunk <- chunk;
    t.clen <- clen;
    t.cmax <- cmax
  end

let open_slot t j =
  ensure_slot_capacity t;
  for i = t.nchunks downto j + 1 do
    t.chunk.(i) <- t.chunk.(i - 1);
    t.clen.(i) <- t.clen.(i - 1);
    t.cmax.(i) <- t.cmax.(i - 1)
  done;
  t.nchunks <- t.nchunks + 1

let close_slot t j =
  for i = j to t.nchunks - 2 do
    t.chunk.(i) <- t.chunk.(i + 1);
    t.clen.(i) <- t.clen.(i + 1);
    t.cmax.(i) <- t.cmax.(i + 1)
  done;
  t.nchunks <- t.nchunks - 1

let grow_chunk t j needed =
  let c = t.chunk.(j) in
  if Array.length c < needed then begin
    let nc = Array.make (max needed (2 * max 1 (Array.length c))) 0 in
    Array.blit c 0 nc 0 t.clen.(j);
    t.chunk.(j) <- nc
  end

(* ---------- bulk load / re-chunk ---------- *)

let iter f t =
  for j = 0 to t.nchunks - 1 do
    let c = t.chunk.(j) and len = t.clen.(j) in
    for i = 0 to len - 1 do
      f c.(i)
    done
  done

let to_array t =
  let out = Array.make t.total 0 in
  let pos = ref 0 in
  iter
    (fun v ->
      out.(!pos) <- v;
      incr pos)
    t;
  out

(* Re-chunk from the first [m] cells of [a] (not retained). *)
let load t a m =
  t.target <- target_for m;
  let tgt = t.target in
  let nch = if m = 0 then 0 else (m + tgt - 1) / tgt in
  let slots = max 4 nch in
  t.chunk <- Array.make slots [||];
  t.clen <- Array.make slots 0;
  t.cmax <- Array.make slots 0;
  for j = 0 to nch - 1 do
    let lo = j * tgt in
    let len = min tgt (m - lo) in
    let c = Array.make (2 * tgt) 0 in
    Array.blit a lo c 0 len;
    t.chunk.(j) <- c;
    t.clen.(j) <- len;
    t.cmax.(j) <- c.(len - 1)
  done;
  t.nchunks <- nch;
  t.total <- m;
  t.anchor <- m;
  fen_rebuild t

let maybe_rechunk t =
  if t.total >= 4 * max 16 t.anchor || (t.anchor > 64 && 4 * t.total <= t.anchor) then begin
    let a = to_array t in
    load t a t.total
  end

(* ---------- structural updates (shared by sorted and positional) ---------- *)

let split t j =
  let c = t.chunk.(j) in
  let len = t.clen.(j) in
  let half = len / 2 in
  let right_len = len - half in
  let rc = Array.make (max (2 * t.target) right_len) 0 in
  Array.blit c half rc 0 right_len;
  open_slot t (j + 1);
  t.chunk.(j + 1) <- rc;
  t.clen.(j + 1) <- right_len;
  t.cmax.(j + 1) <- rc.(right_len - 1);
  t.clen.(j) <- half;
  t.cmax.(j) <- c.(half - 1);
  fen_rebuild t

let try_merge t j =
  let nb =
    if j = 0 then 1
    else if j = t.nchunks - 1 then j - 1
    else if t.clen.(j - 1) <= t.clen.(j + 1) then j - 1
    else j + 1
  in
  if t.clen.(j) + t.clen.(nb) < 2 * t.target then begin
    let l = min j nb and r = max j nb in
    grow_chunk t l (t.clen.(l) + t.clen.(r));
    Array.blit t.chunk.(r) 0 t.chunk.(l) t.clen.(l) t.clen.(r);
    t.clen.(l) <- t.clen.(l) + t.clen.(r);
    t.cmax.(l) <- t.cmax.(r);
    close_slot t r;
    fen_rebuild t
  end

(* Seed the first chunk of an empty store with one element. *)
let first_elem t v =
  open_slot t 0;
  let c = Array.make (2 * t.target) 0 in
  c.(0) <- v;
  t.chunk.(0) <- c;
  t.clen.(0) <- 1;
  t.cmax.(0) <- v;
  t.total <- 1;
  fen_rebuild t

(* Insert [v] at offset [p] of chunk [j] (0 <= p <= clen). *)
let ins t j p v =
  let len = t.clen.(j) in
  grow_chunk t j (len + 1);
  let c = t.chunk.(j) in
  Array.blit c p c (p + 1) (len - p);
  c.(p) <- v;
  t.clen.(j) <- len + 1;
  if p = len then t.cmax.(j) <- v;
  t.total <- t.total + 1;
  fen_add t j 1;
  if t.clen.(j) >= 2 * t.target then split t j;
  maybe_rechunk t

(* Delete the element at offset [p] of chunk [j]. *)
let del t j p =
  let c = t.chunk.(j) in
  let len = t.clen.(j) in
  Array.blit c (p + 1) c p (len - 1 - p);
  t.clen.(j) <- len - 1;
  t.total <- t.total - 1;
  fen_add t j (-1);
  if t.clen.(j) = 0 then begin
    close_slot t j;
    fen_rebuild t
  end
  else begin
    if p = len - 1 then t.cmax.(j) <- c.(len - 2);
    if 4 * t.clen.(j) < t.target && t.nchunks > 1 then try_merge t j
  end;
  maybe_rechunk t

(* ---------- sorted interface ---------- *)

(* First chunk whose maximum is >= k (= nchunks when k exceeds every
   stored key). *)
let chunk_search t k =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) lsr 1 in
      if t.cmax.(mid) >= k then go lo mid else go (mid + 1) hi
  in
  go 0 t.nchunks

let of_sorted_array a =
  let n = Array.length a in
  for i = 1 to n - 1 do
    if a.(i - 1) >= a.(i) then invalid_arg "Ordseq.of_sorted_array: not strictly increasing"
  done;
  let t = create () in
  load t a n;
  t

let dedup_sorted a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let m = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!m - 1) then begin
        a.(!m) <- a.(i);
        incr m
      end
    done;
    !m
  end

(* Sort a copy of [a], splitting the sort over the pool when the input is
   big enough to pay for it: static segments sorted concurrently, then
   deterministic pairwise merge rounds. The sorted multiset of ints is
   unique whatever the segmentation, so the result is byte-identical to
   the sequential sort for any job count. *)
let sorted_copy ?pool a =
  let a = Array.copy a in
  let n = Array.length a in
  let parts =
    match pool with
    | Some p when n >= 8192 && Pool.jobs p > 1 -> min (Pool.jobs p) (n / 4096)
    | _ -> 1
  in
  if parts < 2 then begin
    Array.sort compare a;
    a
  end
  else begin
    let base = n / parts and extra = n mod parts in
    let segs =
      Array.init parts (fun i ->
          let start = (i * base) + min i extra in
          let len = base + if i < extra then 1 else 0 in
          Array.sub a start len)
    in
    (match pool with
    | Some p -> Pool.parallel_for p ~lo:0 ~hi:parts (fun i -> Array.sort compare segs.(i))
    | None -> Array.iter (Array.sort compare) segs);
    let merge2 x y =
      let lx = Array.length x and ly = Array.length y in
      let out = Array.make (lx + ly) 0 in
      let i = ref 0 and j = ref 0 and o = ref 0 in
      while !i < lx && !j < ly do
        if x.(!i) <= y.(!j) then begin
          out.(!o) <- x.(!i);
          incr i
        end
        else begin
          out.(!o) <- y.(!j);
          incr j
        end;
        incr o
      done;
      Array.blit x !i out !o (lx - !i);
      Array.blit y !j out (!o + lx - !i) (ly - !j);
      out
    in
    let rec rounds = function
      | [] -> [||]
      | [ s ] -> s
      | segs ->
          let rec pair = function
            | x :: y :: rest -> merge2 x y :: pair rest
            | tail -> tail
          in
          rounds (pair segs)
    in
    rounds (Array.to_list segs)
  end

let of_array ?pool a =
  let a = sorted_copy ?pool a in
  let m = dedup_sorted a in
  let t = create () in
  load t a m;
  t

let lower_bound t k =
  if t.nchunks = 0 then 0
  else
    let j = chunk_search t k in
    if j = t.nchunks then t.total
    else fen_prefix t j + array_lower_bound ~len:t.clen.(j) t.chunk.(j) k

let rank = lower_bound

let upper_index t k =
  if t.nchunks = 0 then -1
  else
    let j = chunk_search t k in
    if j = t.nchunks then t.total - 1
    else fen_prefix t j + array_upper_index ~len:t.clen.(j) t.chunk.(j) k

let mem t k =
  t.nchunks > 0
  &&
  let j = chunk_search t k in
  j < t.nchunks
  &&
  let p = array_lower_bound ~len:t.clen.(j) t.chunk.(j) k in
  p < t.clen.(j) && t.chunk.(j).(p) = k

let get t i =
  if i < 0 || i >= t.total then invalid_arg "Ordseq.get: index out of range";
  let j, p = fen_find t i in
  t.chunk.(j).(p)

let insert t k =
  if t.nchunks = 0 then begin
    first_elem t k;
    true
  end
  else begin
    let j = chunk_search t k in
    let j = if j = t.nchunks then j - 1 else j in
    let p = array_lower_bound ~len:t.clen.(j) t.chunk.(j) k in
    if p < t.clen.(j) && t.chunk.(j).(p) = k then false
    else begin
      ins t j p k;
      true
    end
  end

let remove t k =
  if t.nchunks = 0 then false
  else begin
    let j = chunk_search t k in
    if j = t.nchunks then false
    else
      let p = array_lower_bound ~len:t.clen.(j) t.chunk.(j) k in
      if p >= t.clen.(j) || t.chunk.(j).(p) <> k then false
      else begin
        del t j p;
        true
      end
  end

let min_elt t = if t.total = 0 then None else Some t.chunk.(0).(0)
let max_elt t = if t.total = 0 then None else Some t.cmax.(t.nchunks - 1)

let successor t q =
  let i = lower_bound t q in
  if i < t.total then Some (get t i) else None

let predecessor t q =
  let i = upper_index t q in
  if i >= 0 then Some (get t i) else None

let nearest t q =
  match (predecessor t q, successor t q) with
  | None, None -> None
  | Some p, None -> Some p
  | None, Some s -> Some s
  | Some p, Some s -> if q - p <= s - q then Some p else Some s

let range_keys t ~lo ~hi =
  if lo > hi || t.total = 0 then []
  else begin
    let start = lower_bound t lo in
    if start >= t.total then []
    else begin
      let j0, p0 = fen_find t start in
      let acc = ref [] in
      (try
         for j = j0 to t.nchunks - 1 do
           let c = t.chunk.(j) and len = t.clen.(j) in
           for p = (if j = j0 then p0 else 0) to len - 1 do
             if c.(p) > hi then raise Exit;
             acc := c.(p) :: !acc
           done
         done
       with Exit -> ());
      List.rev !acc
    end
  end

(* ---------- parallel batch splice ---------- *)

(* The batch engine: route a sorted batch to chunks through the [cmax]
   summary (so every chunk owns a disjoint slice of the batch), apply
   each chunk's slice independently — pool workers handle whole chunks,
   each writing only its own [plan] slot — then run a sequential
   merge/commit pass that rebuilds the chunk table, the maxima and the
   Fenwick counts. The per-chunk apply is deterministic and the commit
   pass reads the plan in chunk order, so the final layout is a pure
   function of (pre-state, batch): identical for any job count. *)

(* [seg] has nchunks + 1 entries; chunk [j] owns batch slice
   [seg.(j), seg.(j+1)). [affected] lists the chunks whose slice is
   non-empty. *)
let affected_chunks nch seg =
  let n = ref 0 in
  for j = 0 to nch - 1 do
    if seg.(j + 1) > seg.(j) then incr n
  done;
  let out = Array.make !n 0 in
  let i = ref 0 in
  for j = 0 to nch - 1 do
    if seg.(j + 1) > seg.(j) then begin
      out.(!i) <- j;
      incr i
    end
  done;
  out

(* Run [apply i] for every affected chunk: over the pool when there are
   at least two shards to overlap (largest slices dispatched first),
   inline otherwise. Each call writes a distinct plan slot, so the plan
   contents never depend on which domain ran which shard. *)
let dispatch_shards pool t seg aff apply =
  let naff = Array.length aff in
  match pool with
  | Some p when naff >= 2 && Pool.jobs p > 1 ->
      let weights =
        Array.init naff (fun i ->
            let j = aff.(i) in
            t.clen.(j) + (seg.(j + 1) - seg.(j)))
      in
      Pool.parallel_for_tasks p ~weights apply
  | _ ->
      for i = 0 to naff - 1 do
        apply i
      done

(* Sequential merge/commit: rebuild the chunk table from [plan]
   (plan.(j) = Some (arr, len) replaces chunk j's live content, None
   keeps it), splitting oversized results into balanced parts and
   folding runts into their left neighbour, then refresh the maxima, the
   Fenwick sums and the re-chunk trigger. Every split part lands in
   [target/2, target + 1): below the split threshold, above the merge
   one, so the normal single-op invariants hold afterwards. *)
let commit_plan t plan =
  let tgt = t.target in
  let nch = t.nchunks in
  let cap = ref (max 4 nch) in
  let out_chunk = ref (Array.make !cap [||]) in
  let out_len = ref (Array.make !cap 0) in
  let n_out = ref 0 in
  let push arr len =
    if len > 0 then begin
      let merged =
        !n_out > 0
        &&
        let pl = !out_len.(!n_out - 1) in
        (4 * len < tgt || 4 * pl < tgt) && pl + len < 2 * tgt
      in
      if merged then begin
        let pj = !n_out - 1 in
        let pl = !out_len.(pj) in
        let parr = !out_chunk.(pj) in
        let parr =
          if Array.length parr < pl + len then begin
            let na = Array.make (max (pl + len) (2 * Array.length parr)) 0 in
            Array.blit parr 0 na 0 pl;
            !out_chunk.(pj) <- na;
            na
          end
          else parr
        in
        Array.blit arr 0 parr pl len;
        !out_len.(pj) <- pl + len
      end
      else begin
        if !n_out = !cap then begin
          cap := 2 * !cap;
          let nc = Array.make !cap [||] and nl = Array.make !cap 0 in
          Array.blit !out_chunk 0 nc 0 !n_out;
          Array.blit !out_len 0 nl 0 !n_out;
          out_chunk := nc;
          out_len := nl
        end;
        !out_chunk.(!n_out) <- arr;
        !out_len.(!n_out) <- len;
        incr n_out
      end
    end
  in
  for j = 0 to nch - 1 do
    let arr, len =
      match plan.(j) with Some (a, l) -> (a, l) | None -> (t.chunk.(j), t.clen.(j))
    in
    if len >= 2 * tgt then begin
      let parts = (len + tgt - 1) / tgt in
      let base = len / parts and extra = len mod parts in
      let off = ref 0 in
      for p = 0 to parts - 1 do
        let l = base + if p < extra then 1 else 0 in
        let a = Array.make (max (2 * tgt) l) 0 in
        Array.blit arr !off a 0 l;
        off := !off + l;
        push a l
      done
    end
    else push arr len
  done;
  let m = !n_out in
  let slots = max 4 m in
  let chunk = Array.make slots [||] and clen = Array.make slots 0 and cmax = Array.make slots 0 in
  let total = ref 0 in
  for j = 0 to m - 1 do
    let a = !out_chunk.(j) and l = !out_len.(j) in
    chunk.(j) <- a;
    clen.(j) <- l;
    cmax.(j) <- a.(l - 1);
    total := !total + l
  done;
  t.chunk <- chunk;
  t.clen <- clen;
  t.cmax <- cmax;
  t.nchunks <- m;
  t.total <- !total;
  fen_rebuild t;
  maybe_rechunk t

let validate_batch ~what ks =
  let m = Array.length ks in
  for i = 1 to m - 1 do
    if ks.(i - 1) >= ks.(i) then invalid_arg (what ^ ": batch not strictly increasing")
  done;
  m

let insert_batch ?pool t ks =
  let m = validate_batch ~what:"Ordseq.insert_batch" ks in
  if m = 0 then 0
  else if t.nchunks = 0 then begin
    load t ks m;
    m
  end
  else begin
    let nch = t.nchunks in
    let seg = Array.make (nch + 1) 0 in
    seg.(nch) <- m;
    for j = 1 to nch - 1 do
      (* Keys <= cmax.(j-1) go left of chunk j; keys beyond the last
         maximum fall to the last chunk, matching [insert]'s clamp. *)
      seg.(j) <- array_upper_index ~len:m ks t.cmax.(j - 1) + 1
    done;
    let aff = affected_chunks nch seg in
    let plan = Array.make nch None in
    let dups = Array.make (Array.length aff) 0 in
    let apply i =
      let j = aff.(i) in
      let lo = seg.(j) and hi = seg.(j + 1) in
      let c = t.chunk.(j) and len = t.clen.(j) in
      let out = Array.make (len + (hi - lo)) 0 in
      let o = ref 0 and a = ref 0 and b = ref lo in
      while !a < len && !b < hi do
        let x = c.(!a) and y = ks.(!b) in
        if x < y then begin
          out.(!o) <- x;
          incr a
        end
        else if x > y then begin
          out.(!o) <- y;
          incr b
        end
        else begin
          out.(!o) <- x;
          incr a;
          incr b;
          dups.(i) <- dups.(i) + 1
        end;
        incr o
      done;
      while !a < len do
        out.(!o) <- c.(!a);
        incr o;
        incr a
      done;
      while !b < hi do
        out.(!o) <- ks.(!b);
        incr o;
        incr b
      done;
      plan.(j) <- Some (out, !o)
    in
    dispatch_shards pool t seg aff apply;
    commit_plan t plan;
    m - Array.fold_left ( + ) 0 dups
  end

let remove_batch ?pool t ks =
  let m = validate_batch ~what:"Ordseq.remove_batch" ks in
  if m = 0 || t.nchunks = 0 then 0
  else begin
    let nch = t.nchunks in
    let seg = Array.make (nch + 1) 0 in
    (* Keys beyond the last maximum are absent; clip them off the last
       chunk's slice instead of scanning them. *)
    seg.(nch) <- array_upper_index ~len:m ks t.cmax.(nch - 1) + 1;
    for j = 1 to nch - 1 do
      seg.(j) <- array_upper_index ~len:m ks t.cmax.(j - 1) + 1
    done;
    let aff = affected_chunks nch seg in
    let plan = Array.make nch None in
    let gone = Array.make (Array.length aff) 0 in
    let apply i =
      let j = aff.(i) in
      let lo = seg.(j) and hi = seg.(j + 1) in
      let c = t.chunk.(j) and len = t.clen.(j) in
      (* In-place left compaction: the write cursor never passes the
         read cursor, so no scratch array is needed. *)
      let w = ref 0 and s = ref lo in
      for r = 0 to len - 1 do
        let x = c.(r) in
        while !s < hi && ks.(!s) < x do
          incr s
        done;
        if !s < hi && ks.(!s) = x then begin
          incr s;
          gone.(i) <- gone.(i) + 1
        end
        else begin
          c.(!w) <- x;
          incr w
        end
      done;
      plan.(j) <- Some (c, !w)
    in
    dispatch_shards pool t seg aff apply;
    commit_plan t plan;
    Array.fold_left ( + ) 0 gone
  end

let chunk_lengths t = Array.init t.nchunks (fun j -> t.clen.(j))

(* ---------- invariant checks ---------- *)

let check_core ~sorted ~what t =
  let fail fmt = Printf.ksprintf failwith fmt in
  if t.nchunks < 0 || t.nchunks > Array.length t.chunk then fail "%s: chunk table bounds" what;
  let sum = ref 0 in
  let prev = ref min_int in
  for j = 0 to t.nchunks - 1 do
    let len = t.clen.(j) in
    if len <= 0 then fail "%s: empty chunk %d" what j;
    if len > Array.length t.chunk.(j) then fail "%s: chunk %d overflows its array" what j;
    if t.cmax.(j) <> t.chunk.(j).(len - 1) then fail "%s: stale cmax at chunk %d" what j;
    if sorted then
      for i = 0 to len - 1 do
        let v = t.chunk.(j).(i) in
        if v <= !prev && not (j = 0 && i = 0) then fail "%s: order broken at chunk %d.%d" what j i;
        prev := v
      done;
    sum := !sum + len
  done;
  if !sum <> t.total then fail "%s: total %d but chunks hold %d" what t.total !sum;
  for j = 0 to t.nchunks do
    let direct = ref 0 in
    for i = 0 to j - 1 do
      direct := !direct + t.clen.(i)
    done;
    if fen_prefix t j <> !direct then fail "%s: Fenwick prefix drift at %d" what j
  done

let check t = check_core ~sorted:true ~what:"Ordseq" t

(* ---------- positional vector ---------- *)

module Vec = struct
  type nonrec t = t

  let create = create

  let of_array a =
    let t = create () in
    load t a (Array.length a);
    t

  let length = length

  let get t i =
    if i < 0 || i >= t.total then invalid_arg "Ordseq.Vec.get: index out of range";
    let j, p = fen_find t i in
    t.chunk.(j).(p)

  let set t i v =
    if i < 0 || i >= t.total then invalid_arg "Ordseq.Vec.set: index out of range";
    let j, p = fen_find t i in
    t.chunk.(j).(p) <- v;
    if p = t.clen.(j) - 1 then t.cmax.(j) <- v

  let insert_at t i v =
    if i < 0 || i > t.total then invalid_arg "Ordseq.Vec.insert_at: index out of range";
    if t.nchunks = 0 then first_elem t v
    else if i = t.total then ins t (t.nchunks - 1) t.clen.(t.nchunks - 1) v
    else begin
      let j, p = fen_find t i in
      ins t j p v
    end

  let remove_at t i =
    if i < 0 || i >= t.total then invalid_arg "Ordseq.Vec.remove_at: index out of range";
    let j, p = fen_find t i in
    let v = t.chunk.(j).(p) in
    del t j p;
    v

  (* Chunk start offsets: off.(j) = global position of chunk j's first
     cell (off.(nchunks) = total). *)
  let chunk_offsets t =
    let off = Array.make (t.nchunks + 1) 0 in
    for j = 0 to t.nchunks - 1 do
      off.(j + 1) <- off.(j) + t.clen.(j)
    done;
    off

  (* First batch index whose position is >= k. *)
  let pos_lower_bound pos m k =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) lsr 1 in
        if pos mid < k then go (mid + 1) hi else go lo mid
    in
    go 0 m

  let insert_at_batch ?pool t pairs =
    let m = Array.length pairs in
    for i = 0 to m - 1 do
      let p = fst pairs.(i) in
      if p < 0 || p > t.total then invalid_arg "Ordseq.Vec.insert_at_batch: position out of range";
      if i > 0 && fst pairs.(i - 1) > p then
        invalid_arg "Ordseq.Vec.insert_at_batch: positions not sorted"
    done;
    if m = 0 then ()
    else if t.nchunks = 0 then load t (Array.map snd pairs) m
    else begin
      let nch = t.nchunks in
      let off = chunk_offsets t in
      let seg = Array.make (nch + 1) 0 in
      seg.(nch) <- m;
      for j = 1 to nch - 1 do
        (* A position equal to a chunk's start offset prepends to that
           chunk — the [fen_find] routing of the single op; positions at
           [total] fall to the last chunk, matching [insert_at]. *)
        seg.(j) <- pos_lower_bound (fun i -> fst pairs.(i)) m off.(j)
      done;
      let aff = affected_chunks nch seg in
      let plan = Array.make nch None in
      let apply i =
        let j = aff.(i) in
        let lo = seg.(j) and hi = seg.(j + 1) in
        let base = off.(j) in
        let c = t.chunk.(j) and len = t.clen.(j) in
        let out = Array.make (len + (hi - lo)) 0 in
        let o = ref 0 and s = ref lo in
        for r = 0 to len - 1 do
          while !s < hi && fst pairs.(!s) - base <= r do
            out.(!o) <- snd pairs.(!s);
            incr o;
            incr s
          done;
          out.(!o) <- c.(r);
          incr o
        done;
        while !s < hi do
          out.(!o) <- snd pairs.(!s);
          incr o;
          incr s
        done;
        plan.(j) <- Some (out, len + (hi - lo))
      in
      dispatch_shards pool t seg aff apply;
      commit_plan t plan
    end

  let remove_at_batch ?pool t positions =
    let m = Array.length positions in
    for i = 0 to m - 1 do
      if positions.(i) < 0 || positions.(i) >= t.total then
        invalid_arg "Ordseq.Vec.remove_at_batch: position out of range";
      if i > 0 && positions.(i - 1) >= positions.(i) then
        invalid_arg "Ordseq.Vec.remove_at_batch: positions not strictly increasing"
    done;
    let removed = Array.make m 0 in
    if m > 0 then begin
      let nch = t.nchunks in
      let off = chunk_offsets t in
      let seg = Array.make (nch + 1) 0 in
      seg.(nch) <- m;
      for j = 1 to nch - 1 do
        seg.(j) <- pos_lower_bound (fun i -> positions.(i)) m off.(j)
      done;
      let aff = affected_chunks nch seg in
      let plan = Array.make nch None in
      let apply i =
        let j = aff.(i) in
        let lo = seg.(j) and hi = seg.(j + 1) in
        let base = off.(j) in
        let c = t.chunk.(j) and len = t.clen.(j) in
        let w = ref 0 and s = ref lo in
        for r = 0 to len - 1 do
          if !s < hi && positions.(!s) - base = r then begin
            (* Slot [!s] of [removed] belongs to this chunk alone. *)
            removed.(!s) <- c.(r);
            incr s
          end
          else begin
            c.(!w) <- c.(r);
            incr w
          end
        done;
        plan.(j) <- Some (c, !w)
      in
      dispatch_shards pool t seg aff apply;
      commit_plan t plan
    end;
    removed

  let iter = iter
  let to_array = to_array
  let check t = check_core ~sorted:false ~what:"Ordseq.Vec" t
end
