(** Chunked sorted-sequence engine: the host-local backing store for the
    1-d level sets and skip-graph baselines.

    A sequence of distinct integers is kept in sorted order across O(√n)
    chunks of O(√n) keys each, with a summary array of chunk maxima and a
    Fenwick (binary-indexed) prefix-count over chunk lengths. Searches
    ([mem]/[lower_bound]/[rank]/[get]) cost O(log n); an insert or remove
    memmoves at most one chunk — an O(√n) bound — with splits, merges and
    periodic re-chunking amortized. [of_sorted_array] bulk-loads in O(n).

    This replaces the copy-the-whole-array update path the 1-d structures
    shipped with ({!Skipweb_core.Instances.Ints}, the skip-graph level
    lists, the deterministic SkipNet): those made every host-local update
    O(n) even though the paper's counted message cost is O(log n). The
    container is purely host-local machinery — positions, range codes and
    answers are bitwise what the flat-array code produced, so the message
    model is untouched (the test suite pins seeded workload totals).

    The positional companion {!Vec} stores an int per {e position} (no
    ordering), for the parallel id/height arrays the skip-graph structures
    splice in lockstep with their key sequence. *)

(** {1 Shared sorted-array searches}

    The one binary-search implementation the repo's modules share (the
    linked-list range algebra, the blocked 1-d cone projection and the
    chunks here all use it). [len] restricts the search to a prefix of the
    array — chunks are allocated beyond their live length. *)

val array_lower_bound : ?len:int -> int array -> int -> int
(** Index of the first element [>= k] (or [len]); the array's first [len]
    elements must be sorted ascending. *)

val array_upper_index : ?len:int -> int array -> int -> int
(** Index of the last element [<= k], or [-1]. *)

(** {1 The chunked sorted sequence} *)

type t

val create : unit -> t
(** An empty sequence. *)

val of_sorted_array : int array -> t
(** O(n) bulk load. The input must be strictly increasing; raises
    [Invalid_argument] otherwise. The array is copied. *)

val of_array : ?pool:Pool.t -> int array -> t
(** Copy, single sort, in-place dedup, then bulk load — the constructor
    [Instances.Ints.build] uses (no intermediate list, no double sort).
    With [?pool] the sort splits into per-domain segments merged
    deterministically, so the result is byte-identical to the sequential
    sort for any job count. *)

val length : t -> int
val is_empty : t -> bool

val mem : t -> int -> bool
(** O(log n). *)

val lower_bound : t -> int -> int
(** Rank of the first element [>= k] (= [length t] if none): the global
    index the flat-array [lower_bound] returned, in O(log n). *)

val rank : t -> int -> int
(** [rank t k] = number of stored elements [< k] (same as
    {!lower_bound}); the dense 1-d range codes [2i]/[2i+1] are derived
    from it. *)

val upper_index : t -> int -> int
(** Rank of the last element [<= k], or [-1]. *)

val get : t -> int -> int
(** [get t i] is the i-th smallest element (0-based), via the Fenwick
    index in O(log n). Raises [Invalid_argument] when out of range. *)

val insert : t -> int -> bool
(** Add a key; [false] if already present. At most one O(√n) chunk
    memmove plus amortized split work. *)

val remove : t -> int -> bool
(** Drop a key; [false] if absent. Same cost shape as {!insert}. *)

val min_elt : t -> int option
val max_elt : t -> int option
val predecessor : t -> int -> int option
val successor : t -> int -> int option

val nearest : t -> int -> int option
(** Nearest stored key by absolute distance; ties go to the predecessor
    (matching [Linklist.nearest]). *)

val iter : (int -> unit) -> t -> unit
(** Ascending; O(n) with no per-element search. *)

val to_array : t -> int array

val range_keys : t -> lo:int -> hi:int -> int list
(** Keys in the closed interval [\[lo, hi\]], ascending — O(log n + k). *)

val insert_batch : ?pool:Pool.t -> t -> int array -> int
(** [insert_batch ?pool t ks] adds every key of the strictly increasing
    batch [ks] and returns how many were actually new (duplicates of
    stored keys are skipped). The batch is routed to chunks by the
    summary array; each affected chunk's slice is spliced independently
    — over [?pool] workers when given — and a sequential merge/commit
    pass then rebuilds the chunk summaries and Fenwick counts. The final
    layout is a pure function of the pre-state and the batch: bit
    identical for any job count, including [?pool = None]. Raises
    [Invalid_argument] if [ks] is not strictly increasing. *)

val remove_batch : ?pool:Pool.t -> t -> int array -> int
(** [remove_batch ?pool t ks] drops every stored key of the strictly
    increasing batch [ks] (absent keys are ignored) and returns how many
    were removed. Same sharding, determinism and cost shape as
    {!insert_batch}; affected chunks compact in place. *)

val chunk_count : t -> int
(** Number of live chunks (tests assert the O(√n) shape). *)

val chunk_lengths : t -> int array
(** Live length of every chunk in order — the layout probe the
    parallel-splice tests compare across job counts. *)

val check : t -> unit
(** Validates chunk bounds, maxima, Fenwick sums and strict global
    ordering; raises [Failure] on violation. *)

(** {1 Positional chunked vector} *)

(** Same chunk machinery indexed by {e position} instead of key: O(log n)
    [get]/[set], O(√n)-bounded [insert_at]/[remove_at]. The skip-graph
    structures keep their per-position ids and heights here so a splice
    no longer copies parallel O(n) arrays. *)
module Vec : sig
  type t

  val create : unit -> t
  val of_array : int array -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit

  val insert_at : t -> int -> int -> unit
  (** [insert_at t i v] makes [v] the element at position [i]
      (0 <= i <= length). *)

  val remove_at : t -> int -> int
  (** Removes and returns the element at position [i]. *)

  val insert_at_batch : ?pool:Pool.t -> t -> (int * int) array -> unit
  (** [insert_at_batch ?pool t pairs] splices every [(pos, v)] of
      [pairs] in one pass. Positions are relative to the {e original}
      vector, must be non-decreasing and within [0, length]; each [v]
      lands before the original element at [pos] (equal positions keep
      batch order). Chunk-sharded like {!Skipweb_util.Ordseq.insert_batch}:
      layout and contents are identical for any job count. *)

  val remove_at_batch : ?pool:Pool.t -> t -> int array -> int array
  (** [remove_at_batch ?pool t positions] removes the elements at the
      strictly increasing original positions and returns them in that
      order. *)

  val iter : (int -> unit) -> t -> unit
  val to_array : t -> int array
  val check : t -> unit
end
