(* A mergeable constant-memory quantile sketch.

   Design: logarithmic value buckets with guaranteed relative accuracy
   (the DDSketch family), *not* P2 or Greenwald-Khanna. The reason is a
   determinism requirement unique to this repository: the parallel
   phases record into per-domain shards and merge them afterwards, and
   the jobs-equivalence CI leg byte-diffs exports across jobs counts —
   so the merged sketch must be a pure function of the observed sample
   multiset, independent of how samples were partitioned into shards
   and of the merge order. P2 and GK are order-sensitive streaming
   summaries; a value-keyed bucket map is not: the bucket of a value
   depends only on the value, and merging adds integer counts, which is
   commutative and associative. The price is that memory scales with
   the value *dynamic range* (one bucket per gamma-factor) instead of a
   fixed cell count — constant in the sample count, which is the bound
   the 10^6-op workloads need.

   Exact mode: below [exact_cap] samples the sketch simply retains the
   values and answers through [Stats.percentile] on the sorted sample —
   bitwise the same figures the old retain-everything histograms
   produced. Crossing the cap spills every retained value into its
   bucket; since the value-to-bucket map is pure, the final bucket
   table is the same whether the cap was crossed in one stream or by
   merging shards that were each still exact. *)

type t = {
  alpha : float;  (* guaranteed relative accuracy of bucket-mode quantiles *)
  gamma : float;  (* (1 + alpha) / (1 - alpha): bucket width factor *)
  ln_gamma : float;
  exact_cap : int;
  mutable exact : float list;  (* retained samples while [exact_mode] *)
  mutable exact_mode : bool;
  mutable count : int;
  mutable min_v : float;  (* valid iff count > 0 *)
  mutable max_v : float;
  mutable zeros : int;  (* samples with |v| <= zero_eps *)
  pos : (int, int) Hashtbl.t;  (* bucket index -> count, v > 0 *)
  neg : (int, int) Hashtbl.t;  (* bucket index of |v| -> count, v < 0 *)
}

(* Magnitudes at or below this are binned as exact zero: the logarithmic
   bucket index of a denormal would explode the bucket count for values
   that are measurement noise anyway. Bucket-mode quantile answers are
   therefore within [alpha] relative error plus [zero_eps] absolute. *)
let zero_eps = 1e-12

let create ?(alpha = 0.01) ?(exact_cap = 256) () =
  if not (alpha > 0.0 && alpha < 1.0) then invalid_arg "Sketch.create: alpha must be in (0, 1)";
  if exact_cap < 0 then invalid_arg "Sketch.create: exact_cap must be >= 0";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  {
    alpha;
    gamma;
    ln_gamma = Float.log gamma;
    exact_cap;
    exact = [];
    exact_mode = true;
    count = 0;
    min_v = 0.0;
    max_v = 0.0;
    zeros = 0;
    pos = Hashtbl.create 16;
    neg = Hashtbl.create 4;
  }

let count t = t.count
let is_exact t = t.exact_mode
let alpha t = t.alpha
let exact_cap t = t.exact_cap

(* Bucket index of a magnitude m > zero_eps: the i with
   gamma^(i-1) < m <= gamma^i. Pure in (alpha, m). *)
let bucket_key t m = int_of_float (Float.ceil (Float.log m /. t.ln_gamma))

(* Representative value of bucket i: gamma^i * 2 / (gamma + 1). For any
   member m of (gamma^(i-1), gamma^i] the relative error is <= alpha:
   at the top edge est/m = 2/(gamma+1) = 1 - alpha, at the bottom edge
   est/m -> gamma (1 - alpha) = 1 + alpha. *)
let bucket_estimate t i = 2.0 *. Float.exp (float_of_int i *. t.ln_gamma) /. (t.gamma +. 1.0)

let table_add tbl key k =
  match Hashtbl.find_opt tbl key with
  | Some c -> Hashtbl.replace tbl key (c + k)
  | None -> Hashtbl.replace tbl key k

let bucket_add t v k =
  if Float.abs v <= zero_eps then t.zeros <- t.zeros + k
  else if v > 0.0 then table_add t.pos (bucket_key t v) k
  else table_add t.neg (bucket_key t (-.v)) k

(* Leave exact mode: bin every retained sample. The value-to-bucket map
   is pure, so the resulting table depends only on the sample multiset —
   never on retention order or on which shard retained what. *)
let spill t =
  if t.exact_mode then begin
    List.iter (fun v -> bucket_add t v 1) t.exact;
    t.exact <- [];
    t.exact_mode <- false
  end

let observe t v =
  if Float.is_nan v then invalid_arg "Sketch.observe: NaN sample";
  if t.count = 0 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end;
  t.count <- t.count + 1;
  if t.exact_mode then begin
    t.exact <- v :: t.exact;
    if t.count > t.exact_cap then spill t
  end
  else bucket_add t v 1

let observe_int t v = observe t (float_of_int v)

let bucket_count t =
  Hashtbl.length t.pos + Hashtbl.length t.neg + (if t.zeros > 0 then 1 else 0)

let merge dst src =
  if dst.alpha <> src.alpha || dst.exact_cap <> src.exact_cap then
    invalid_arg "Sketch.merge: sketches have different alpha or exact_cap";
  if src.count > 0 then begin
    if dst.count = 0 then begin
      dst.min_v <- src.min_v;
      dst.max_v <- src.max_v
    end
    else begin
      if src.min_v < dst.min_v then dst.min_v <- src.min_v;
      if src.max_v > dst.max_v then dst.max_v <- src.max_v
    end;
    dst.count <- dst.count + src.count;
    if dst.exact_mode && src.exact_mode && dst.count <= dst.exact_cap then
      dst.exact <- List.rev_append src.exact dst.exact
    else begin
      spill dst;
      if src.exact_mode then List.iter (fun v -> bucket_add dst v 1) src.exact
      else begin
        Hashtbl.iter (fun key c -> table_add dst.pos key c) src.pos;
        Hashtbl.iter (fun key c -> table_add dst.neg key c) src.neg;
        dst.zeros <- dst.zeros + src.zeros
      end
    end
  end

let sorted_exact t =
  let a = Array.of_list t.exact in
  Array.sort compare a;
  a

(* Buckets in ascending value order, as (estimate, count) — negatives by
   descending magnitude, then the zero bin, then positives by ascending
   magnitude. Keys are sorted so every fold over this list is a fixed
   summation order: exports are deterministic for one sample multiset. *)
let ordered_buckets t =
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare in
  let clamp v = Float.min t.max_v (Float.max t.min_v v) in
  let negs =
    List.rev_map (fun k -> (clamp (-.bucket_estimate t k), Hashtbl.find t.neg k)) (keys t.neg)
  in
  let zero = if t.zeros > 0 then [ (clamp 0.0, t.zeros) ] else [] in
  let poss = List.map (fun k -> (clamp (bucket_estimate t k), Hashtbl.find t.pos k)) (keys t.pos) in
  negs @ zero @ poss

let quantile t q =
  if t.count = 0 then invalid_arg "Sketch.quantile: empty sketch";
  if t.exact_mode then Stats.percentile (sorted_exact t) q
  else if q <= 0.0 then t.min_v
  else if q >= 1.0 then t.max_v
  else begin
    (* Nearest-rank: the returned estimate's bucket contains the sample
       of rank [round (q (n-1))], so it is within [alpha] relative error
       (plus [zero_eps] absolute) of that sample. *)
    let rank = int_of_float (Float.round (q *. float_of_int (t.count - 1))) in
    let rec walk cum = function
      | [] -> t.max_v  (* unreachable: counts sum to t.count *)
      | (est, c) :: rest -> if cum + c > rank then est else walk (cum + c) rest
    in
    walk 0 (ordered_buckets t)
  end

let summary t : Stats.summary =
  if t.count = 0 then invalid_arg "Sketch.summary: empty sketch";
  if t.exact_mode then
    (* Summarize the *sorted* retained samples: the float accumulations
       inside [Stats.summarize] then run in a fixed order, so exact-mode
       exports are identical for any sharding of the same samples. *)
    Stats.summarize (Array.to_list (sorted_exact t))
  else begin
    let n = float_of_int t.count in
    let sum, sumsq =
      List.fold_left
        (fun (s, s2) (est, c) ->
          let fc = float_of_int c in
          (s +. (fc *. est), s2 +. (fc *. est *. est)))
        (0.0, 0.0) (ordered_buckets t)
    in
    let mean = sum /. n in
    let stddev =
      if t.count <= 1 then 0.0
      else sqrt (Float.max 0.0 ((sumsq -. (n *. mean *. mean)) /. (n -. 1.0)))
    in
    {
      Stats.count = t.count;
      mean;
      stddev;
      min = t.min_v;
      max = t.max_v;
      p50 = quantile t 0.5;
      p90 = quantile t 0.9;
      p99 = quantile t 0.99;
    }
  end

let to_json t =
  if t.count = 0 then
    Printf.sprintf "{\"count\": 0, \"exact\": true, \"buckets\": 0, \"alpha\": %g}" t.alpha
  else
    let s = summary t in
    Printf.sprintf
      "{\"count\": %d, \"exact\": %b, \"buckets\": %d, \"alpha\": %g, \"mean\": %g, \"min\": %g, \
       \"max\": %g, \"p50\": %g, \"p90\": %g, \"p99\": %g}"
      t.count t.exact_mode (bucket_count t) t.alpha s.Stats.mean s.Stats.min s.Stats.max
      s.Stats.p50 s.Stats.p90 s.Stats.p99
