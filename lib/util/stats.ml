type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. (n -. 1.0))

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if q <= 0.0 then sorted.(0)
  else if q >= 1.0 then sorted.(n - 1)
  else
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)  (* exact rank: no interpolation, no rounding *)
    else
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      {
        count = Array.length a;
        mean = mean xs;
        stddev = stddev xs;
        min = a.(0);
        max = a.(Array.length a - 1);
        p50 = percentile a 0.5;
        p90 = percentile a 0.9;
        p99 = percentile a 0.99;
      }

let summarize_ints xs = summarize (List.map float_of_int xs)

module Fit = struct
  type model = Constant | Log | Log_over_loglog | Log_squared | Linear

  let all = [ Constant; Log; Log_over_loglog; Log_squared; Linear ]

  let name = function
    | Constant -> "O(1)"
    | Log -> "O(log n)"
    | Log_over_loglog -> "O(log n / log log n)"
    | Log_squared -> "O(log^2 n)"
    | Linear -> "O(n)"

  let log2 x = Float.log x /. Float.log 2.0

  let eval m n =
    match m with
    | Constant -> 1.0
    | Log -> log2 n
    | Log_over_loglog ->
        let l = log2 n in
        if l <= 2.0 then l else l /. log2 l
    | Log_squared -> log2 n ** 2.0
    | Linear -> n

  let fit_constant m series =
    (* Least squares for y = c g(n): c = sum(y g) / sum(g^2). *)
    let num, den =
      List.fold_left
        (fun (num, den) (n, y) ->
          let g = eval m n in
          (num +. (y *. g), den +. (g *. g)))
        (0.0, 0.0) series
    in
    if den = 0.0 then 0.0 else num /. den

  let rmse m ~c series =
    let sq_rel =
      List.map
        (fun (n, y) ->
          let pred = c *. eval m n in
          let denom = if Float.abs y > 1e-9 then y else 1.0 in
          ((y -. pred) /. denom) ** 2.0)
        series
    in
    sqrt (mean sq_rel)

  let best series =
    if List.length series < 2 then invalid_arg "Fit.best: need >= 2 points";
    let scored =
      List.map
        (fun m ->
          let c = fit_constant m series in
          (m, c, rmse m ~c series))
        all
    in
    let best =
      List.fold_left
        (fun (bm, bc, be) (m, c, e) -> if e < be then (m, c, e) else (bm, bc, be))
        (match scored with x :: _ -> x | [] -> assert false)
        scored
    in
    let m, c, _ = best in
    (m, c)

  let report series =
    let m, c = best series in
    let e = rmse m ~c series in
    Printf.sprintf "%s (c=%.3f, rmse=%.1f%%)" (name m) c (100.0 *. e)
end
