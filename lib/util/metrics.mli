(** A structured metrics registry: named counters and histograms, built on
    {!Stats.summary}, with JSON and CSV export.

    The bench harness and CLI use one registry per run to collect per-host
    traffic histograms, messages-per-op distributions (p50/p90/p99), and
    operation counters, then export them as a machine-readable block
    ([BENCH_*.json] / CSV) so cost shapes can be compared across PRs
    without re-parsing table output.

    Names are free-form; a registry keys entries by exact name and a name
    is permanently a counter or a histogram — mixing the two kinds under
    one name raises [Invalid_argument]. Export orders entries by name, so
    output is deterministic.

    Histograms do {b not} retain samples without bound: each one is a
    {!Sketch}, exact (sample-retaining) up to the registry's
    [sample_cap] and transparently degrading to constant-memory
    logarithmic buckets above it. Under the cap the exported figures
    are the familiar exact summaries; above it percentiles carry the
    sketch's documented relative-error bound and memory stays flat in
    the sample count — a registry can absorb the 10^6-op workloads the
    serving-at-scale benches drive. *)

type t

val create : ?sample_cap:int -> unit -> t
(** [sample_cap] (default 4096) is the per-histogram exact-mode
    retention limit, passed to each histogram's {!Sketch.create}. *)

val sample_cap : t -> int
val clear : t -> unit

(** {1 Recording} *)

val incr : t -> ?by:int -> string -> unit
(** Bump a counter (created at 0 on first use). *)

val observe : t -> string -> float -> unit
(** Add one sample to a histogram (created empty on first use). *)

val observe_int : t -> string -> int -> unit

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst]: counters add, histogram
    sketches merge ({!Sketch.merge}). [src] is unchanged. Both
    registries must have been created with the same [sample_cap]
    (mismatches raise [Invalid_argument] from the sketch merge).

    This is the concurrent-recording discipline: a registry is {b not}
    safe to record into from several domains at once, so each worker
    records into a private shard and the shards are merged afterwards.
    Because counter addition is commutative and sketch merging is
    partition-independent (the merged sketch is a pure function of the
    union sample multiset — see {!Sketch}), the merged registry's
    {!to_json}/{!to_csv} output is identical for any merge order and
    any assignment of samples to workers — parallel runs export
    byte-for-byte what the sequential run exports. *)

(** {1 Reading} *)

val counter_value : t -> string -> int
(** Current value; 0 for a name never incremented. *)

val histogram_summary : t -> string -> Stats.summary option
(** Summary of a histogram's samples; [None] if absent or empty. Exact
    below [sample_cap] samples, sketch-accurate above (see {!Sketch}). *)

val histogram_sketch : t -> string -> Sketch.t option
(** The histogram's underlying sketch (e.g. to check {!Sketch.is_exact}
    or its {!Sketch.bucket_count} in memory regression tests); [None]
    if the name is absent or names a counter. *)

val names : t -> string list
(** All registered names, sorted. *)

(** {1 Export} *)

val to_json : t -> string
(** One JSON object: counters as numbers, histograms as
    [{count, mean, stddev, min, max, p50, p90, p99}] objects. *)

val to_csv : t -> string
(** Header plus one row per entry:
    [name,kind,value,count,mean,stddev,min,max,p50,p90,p99]. *)

val json_of_summary : Stats.summary -> string
(** A {!Stats.summary} as a JSON object (shared with the bench harness's
    metrics blocks). *)
