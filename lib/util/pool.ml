type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable pending : int;  (* tasks queued or executing, current batch *)
  mutable active : bool;  (* a parallel_for is in flight *)
  mutable stop : bool;
  mutable failure : exn option;
  mutable workers : unit Domain.t list;
}

(* Run one task; record the first exception rather than killing the domain,
   then account for its completion. *)
let exec pool task =
  (try task ()
   with e ->
     Mutex.lock pool.mutex;
     if pool.failure = None then pool.failure <- Some e;
     Mutex.unlock pool.mutex);
  Mutex.lock pool.mutex;
  pool.pending <- pool.pending - 1;
  if pool.pending = 0 then Condition.broadcast pool.work_done;
  Mutex.unlock pool.mutex

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stop do
    Condition.wait pool.work_ready pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stop *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    exec pool task;
    worker_loop pool
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      active = false;
      stop = false;
      failure = None;
      workers = [];
    }
  in
  (* The caller participates in draining the queue, so jobs - 1 extra
     domains suffice for a concurrency level of [jobs]. *)
  pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.jobs

(* The submitting domain helps: run queued tasks until none are left, then
   wait for the stragglers other domains are still executing. *)
let drain pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    if not (Queue.is_empty pool.queue) then begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      exec pool task;
      loop ()
    end
    else begin
      while pool.pending > 0 do
        Condition.wait pool.work_done pool.mutex
      done;
      Mutex.unlock pool.mutex
    end
  in
  loop ()

let parallel_for pool ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then
    if pool.jobs = 1 || n = 1 then
      for i = lo to hi - 1 do
        f i
      done
    else begin
      Mutex.lock pool.mutex;
      if pool.stop then begin
        Mutex.unlock pool.mutex;
        invalid_arg "Pool.parallel_for: pool is shut down"
      end;
      if pool.active then begin
        Mutex.unlock pool.mutex;
        invalid_arg "Pool.parallel_for: pool already running a batch (not re-entrant)"
      end;
      pool.active <- true;
      pool.failure <- None;
      (* Deterministic static chunking: [chunks] contiguous index ranges
         whose boundaries depend only on (lo, hi, jobs), never on timing. *)
      let chunks = min pool.jobs n in
      let base = n / chunks and extra = n mod chunks in
      pool.pending <- chunks;
      for c = 0 to chunks - 1 do
        let start = lo + (c * base) + min c extra in
        let stop = start + base + if c < extra then 1 else 0 in
        Queue.push
          (fun () ->
            for i = start to stop - 1 do
              f i
            done)
          pool.queue
      done;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.mutex;
      drain pool;
      Mutex.lock pool.mutex;
      pool.active <- false;
      let failure = pool.failure in
      pool.failure <- None;
      Mutex.unlock pool.mutex;
      match failure with Some e -> raise e | None -> ()
    end

let parallel_map pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for pool ~lo:0 ~hi:n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  let already = pool.stop in
  pool.stop <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  if not already then begin
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let with_pool ~jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f (Some pool))
  end
