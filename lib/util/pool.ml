type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  queue : (int -> unit) Queue.t;  (* tasks receive the executing slot *)
  mutable pending : int;  (* tasks queued or executing, current batch *)
  mutable active : bool;  (* a parallel batch is in flight *)
  mutable stop : bool;
  mutable failure : exn option;
  mutable workers : unit Domain.t list;
  (* Per-slot utilization, indexed by executing domain: worker domain [i]
     owns slot [i], the submitting domain owns slot [jobs - 1]. Each slot
     is only ever written by its own domain; [run_batch]'s final mutex
     round gives the submitter a consistent view once a batch returns. *)
  stat_tasks : int array;
  stat_busy : float array;
}

(* Run one queued closure; record the first exception rather than killing
   the domain, then account for its completion and the slot's busy time.
   Work items (indices, dynamic claims) are counted by the dispatchers,
   which know how many an executing closure covers. *)
let exec pool slot task =
  let t0 = Unix.gettimeofday () in
  (try task slot
   with e ->
     Mutex.lock pool.mutex;
     if pool.failure = None then pool.failure <- Some e;
     Mutex.unlock pool.mutex);
  pool.stat_busy.(slot) <- pool.stat_busy.(slot) +. (Unix.gettimeofday () -. t0);
  Mutex.lock pool.mutex;
  pool.pending <- pool.pending - 1;
  if pool.pending = 0 then Condition.broadcast pool.work_done;
  Mutex.unlock pool.mutex

let rec worker_loop pool slot =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stop do
    Condition.wait pool.work_ready pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stop *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    exec pool slot task;
    worker_loop pool slot
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      active = false;
      stop = false;
      failure = None;
      workers = [];
      stat_tasks = Array.make jobs 0;
      stat_busy = Array.make jobs 0.0;
    }
  in
  (* The caller participates in draining the queue, so jobs - 1 extra
     domains suffice for a concurrency level of [jobs]. *)
  pool.workers <- List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool i));
  pool

let jobs pool = pool.jobs

let clamp_jobs ?(warn = true) jobs =
  let cap = Domain.recommended_domain_count () in
  if jobs > cap then begin
    if warn then
      Printf.eprintf
        "warning: --jobs %d exceeds the recommended domain count %d; clamping to %d\n%!" jobs cap
        cap;
    cap
  end
  else jobs

type utilization = { tasks : int array; busy_s : float array }

let utilization pool =
  { tasks = Array.copy pool.stat_tasks; busy_s = Array.copy pool.stat_busy }

let reset_utilization pool =
  Array.fill pool.stat_tasks 0 pool.jobs 0;
  Array.fill pool.stat_busy 0 pool.jobs 0.0

let record_metrics pool reg =
  let u = utilization pool in
  Metrics.incr reg ~by:pool.jobs "pool.jobs";
  for i = 0 to pool.jobs - 1 do
    Metrics.incr reg ~by:u.tasks.(i) (Printf.sprintf "pool.slot%02d.tasks" i);
    Metrics.incr reg
      ~by:(int_of_float (u.busy_s.(i) *. 1e6))
      (Printf.sprintf "pool.slot%02d.busy_us" i)
  done

(* The submitting domain helps: run queued tasks until none are left, then
   wait for the stragglers other domains are still executing. *)
let drain pool =
  let slot = pool.jobs - 1 in
  let rec loop () =
    Mutex.lock pool.mutex;
    if not (Queue.is_empty pool.queue) then begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      exec pool slot task;
      loop ()
    end
    else begin
      while pool.pending > 0 do
        Condition.wait pool.work_done pool.mutex
      done;
      Mutex.unlock pool.mutex
    end
  in
  loop ()

(* Launch a prepared batch of closures and block until every one has
   completed, the submitting domain helping to drain. Shared by the static
   (parallel_for) and dynamic (parallel_for_tasks) dispatchers. *)
let run_batch pool ~name tasks =
  Mutex.lock pool.mutex;
  if pool.stop then begin
    Mutex.unlock pool.mutex;
    invalid_arg (name ^ ": pool is shut down")
  end;
  if pool.active then begin
    Mutex.unlock pool.mutex;
    invalid_arg (name ^ ": pool already running a batch (not re-entrant)")
  end;
  pool.active <- true;
  pool.failure <- None;
  pool.pending <- Array.length tasks;
  Array.iter (fun task -> Queue.push task pool.queue) tasks;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  drain pool;
  Mutex.lock pool.mutex;
  pool.active <- false;
  let failure = pool.failure in
  pool.failure <- None;
  Mutex.unlock pool.mutex;
  match failure with Some e -> raise e | None -> ()

let parallel_for pool ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then
    if pool.jobs = 1 || n = 1 then
      for i = lo to hi - 1 do
        f i
      done
    else begin
      (* Deterministic static chunking: [chunks] contiguous index ranges
         whose boundaries depend only on (lo, hi, jobs), never on timing. *)
      let chunks = min pool.jobs n in
      let base = n / chunks and extra = n mod chunks in
      let tasks =
        Array.init chunks (fun c ->
            let start = lo + (c * base) + min c extra in
            let stop = start + base + if c < extra then 1 else 0 in
            fun slot ->
              pool.stat_tasks.(slot) <- pool.stat_tasks.(slot) + (stop - start);
              for i = start to stop - 1 do
                f i
              done)
      in
      run_batch pool ~name:"Pool.parallel_for" tasks
    end

(* Dynamic dispatch: [min jobs n] runner tasks claim indices one at a time
   from a shared counter, in the claim order fixed by [order]. Which domain
   runs which index depends on timing — callers must only rely on every
   index running exactly once. A runner that hits a task exception stops
   claiming (exec records the failure); the surviving runners still drain
   the counter, so the all-tasks-attempted-or-skipped accounting of
   [run_batch] holds and the first failure is re-raised. *)
let run_dynamic pool ~name ~order f =
  let n = Array.length order in
  let next = Atomic.make 0 in
  let runner slot =
    let rec claim () =
      let ix = Atomic.fetch_and_add next 1 in
      if ix < n then begin
        pool.stat_tasks.(slot) <- pool.stat_tasks.(slot) + 1;
        f order.(ix);
        claim ()
      end
    in
    claim ()
  in
  run_batch pool ~name (Array.init (min pool.jobs n) (fun _ -> runner))

let parallel_for_tasks pool ~weights f =
  let n = Array.length weights in
  if n > 0 then
    if pool.jobs = 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let order = Array.init n Fun.id in
      (* Heaviest first; ties broken by index so the claim order is
         deterministic (the index-to-domain assignment still is not). *)
      Array.sort
        (fun a b -> match compare weights.(b) weights.(a) with 0 -> compare a b | c -> c)
        order;
      run_dynamic pool ~name:"Pool.parallel_for_tasks" ~order f
    end

let parallel_map pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    let fill i = out.(i) <- Some (f xs.(i)) in
    if pool.jobs = 1 || n = 1 then
      for i = 0 to n - 1 do
        fill i
      done
    else if n < 2 * pool.jobs then
      (* Too few elements for static chunks to balance: with fewer than two
         chunks per domain, one straggler chunk serializes the tail. Claim
         elements one at a time instead; the result array is still filled
         by index, so the output is unchanged. *)
      run_dynamic pool ~name:"Pool.parallel_map" ~order:(Array.init n Fun.id) fill
    else parallel_for pool ~lo:0 ~hi:n fill;
    Array.map (function Some v -> v | None -> assert false) out
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  let already = pool.stop in
  pool.stop <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  if not already then begin
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let with_pool ~jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f (Some pool))
  end
