(** Descriptive statistics and asymptotic growth-shape fitting.

    The experiments in this repository validate *shapes* of cost curves
    (who grows like [log n], who like [log n / log log n], who like
    [log^2 n]) rather than absolute constants. {!Fit} provides a small
    least-squares fitter over a fixed family of growth models so each bench
    can report the best-fitting model next to the paper's predicted one. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float list -> summary
(** Summary statistics of a non-empty sample. Raises [Invalid_argument] on
    an empty list. Small samples are well-defined: a single-element sample
    has [stddev = 0] and every percentile equal to the element; a
    two-element sample uses the unbiased (n-1) variance and interpolates
    percentiles between the two values. *)

val summarize_ints : int list -> summary

val mean : float list -> float
val stddev : float list -> float

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]]; [sorted] must be sorted
    ascending. Linear interpolation between ranks, except that a rank
    landing exactly on an element (including [q = 0.0] and [q = 1.0], and
    every quantile of a single-element sample) returns that element
    exactly, with no floating-point interpolation error. *)

(** Growth-model fitting. *)
module Fit : sig
  type model =
    | Constant  (** y = c *)
    | Log  (** y = c log2 n *)
    | Log_over_loglog  (** y = c log2 n / log2 log2 n *)
    | Log_squared  (** y = c (log2 n)^2 *)
    | Linear  (** y = c n *)

  val all : model list
  val name : model -> string

  val eval : model -> float -> float
  (** [eval m n] is the model shape g(n) with unit constant. *)

  val fit_constant : model -> (float * float) list -> float
  (** [fit_constant m series] is the least-squares multiplier c minimizing
      sum (y - c g(n))^2 over the [(n, y)] series. *)

  val rmse : model -> c:float -> (float * float) list -> float
  (** Root-mean-square relative error of the fit. *)

  val best : (float * float) list -> model * float
  (** [best series] is the model (with its multiplier) minimizing relative
      RMSE over {!all}. The series must contain at least two points with
      n >= 4. *)

  val report : (float * float) list -> string
  (** One-line human-readable description of the best fit, e.g.
      ["log n (c=1.43, rmse=2.1%)"]. *)
end
