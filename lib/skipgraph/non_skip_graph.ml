module Network = Skipweb_net.Network
module Prng = Skipweb_util.Prng
module LL = Level_lists

type t = {
  net : Network.t;
  lists : LL.t;
  charged : (int, int) Hashtbl.t;
}

let size t = LL.size t.lists
let levels t = LL.levels t.lists
let host_of_index t i = LL.id t.lists i

(* Direct neighbors at every level of a position. *)
let neighbors t i =
  let lists = t.lists in
  let acc = ref [] in
  for level = 0 to LL.top_level lists i do
    (match LL.left_neighbor lists i level with Some j -> acc := j :: !acc | None -> ());
    match LL.right_neighbor lists i level with Some j -> acc := j :: !acc | None -> ()
  done;
  List.sort_uniq compare !acc

let memory_units t i =
  (* key + root + own pointers + a copy of each neighbor's pointer list:
     the O(log^2 n) NoN table. *)
  let own = 2 + (2 * (LL.top_level t.lists i + 1)) in
  let non = List.fold_left (fun acc j -> acc + (2 * (LL.top_level t.lists j + 1))) 0 (neighbors t i) in
  own + non

let recharge t =
  let seen = Hashtbl.create (size t) in
  for i = 0 to size t - 1 do
    let id = LL.id t.lists i in
    let want = memory_units t i in
    let have = try Hashtbl.find t.charged id with Not_found -> 0 in
    if want <> have then begin
      Network.charge_memory t.net id (want - have);
      Hashtbl.replace t.charged id want
    end;
    Hashtbl.add seen id ()
  done;
  let stale =
    Hashtbl.fold (fun id units acc -> if Hashtbl.mem seen id then acc else (id, units) :: acc) t.charged []
  in
  List.iter
    (fun (id, units) ->
      Network.charge_memory t.net id (-units);
      Hashtbl.remove t.charged id)
    stale

let create ~net ~seed ~keys =
  let lists = LL.create ~seed ~keys in
  if LL.size lists > Network.host_count net then invalid_arg "Non_skip_graph.create: not enough hosts";
  let t = { net; lists; charged = Hashtbl.create (2 * LL.size lists) } in
  recharge t;
  t

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

let result t ~messages q =
  {
    predecessor = LL.predecessor t.lists q;
    successor = LL.successor t.lists q;
    nearest = LL.nearest t.lists q;
    messages;
  }

(* Lookahead routing: from the current element we know the addresses of all
   elements within two list hops; jump directly (one message) to the
   admissible one that makes the most progress toward the target. *)
let search t ~from q =
  let n = size t in
  if n = 0 then { predecessor = None; successor = None; nearest = None; messages = 0 }
  else begin
    if from < 0 || from >= n then invalid_arg "Non_skip_graph.search: bad origin";
    let session = Network.start t.net (host_of_index t from) in
    let cur = ref from in
    let dir_right = q >= LL.key t.lists from in
    let admissible j = if dir_right then LL.key t.lists j <= q else LL.key t.lists j >= q in
    let better j best =
      match best with
      | None -> true
      | Some b ->
          if dir_right then LL.key t.lists j > LL.key t.lists b
          else LL.key t.lists j < LL.key t.lists b
    in
    let progress j =
      if dir_right then LL.key t.lists j > LL.key t.lists !cur
      else LL.key t.lists j < LL.key t.lists !cur
    in
    let continue = ref true in
    while !continue do
      let one_hop = neighbors t !cur in
      let two_hop = List.concat_map (fun j -> j :: neighbors t j) one_hop in
      let best =
        List.fold_left
          (fun best j -> if admissible j && progress j && better j best then Some j else best)
          None two_hop
      in
      match best with
      | Some j ->
          cur := j;
          Network.goto session (host_of_index t j)
      | None -> continue := false
    done;
    Network.finish session;
    result t ~messages:(Network.messages session) q
  end

let search_from_random t ~rng q =
  let n = size t in
  if n = 0 then { predecessor = None; successor = None; nearest = None; messages = 0 }
  else search t ~from:(Prng.int rng n) q

(* Update cost: the plain skip graph linking work, plus one message per NoN
   table entry that must be installed remotely — the new element ships its
   pointer list to every neighbor, and receives each neighbor's list. *)
let non_refresh_messages t pos =
  let ns = neighbors t pos in
  let own_entries = 2 * (LL.top_level t.lists pos + 1) in
  List.fold_left
    (fun acc j -> acc + own_entries + (2 * (LL.top_level t.lists j + 1)))
    0 ns

let linking_messages t pos =
  let lists = t.lists in
  let msgs = ref 2 in
  let level = ref 1 in
  let continue = ref true in
  while !continue do
    let walk_side step =
      let rec go j acc =
        match j with
        | None -> (acc, None)
        | Some j -> if LL.common_prefix lists pos j >= !level then (acc, Some j) else go (step j) (acc + 1)
      in
      go (step pos) 0
    in
    let lsteps, lfound = walk_side (fun j -> LL.left_neighbor lists j (!level - 1)) in
    let rsteps, rfound = walk_side (fun j -> LL.right_neighbor lists j (!level - 1)) in
    if lfound = None && rfound = None then continue := false
    else begin
      msgs := !msgs + lsteps + rsteps + 2;
      incr level
    end
  done;
  !msgs

let insert t k =
  if LL.mem t.lists k then invalid_arg "Non_skip_graph.insert: duplicate key";
  if size t >= Network.host_count t.net then invalid_arg "Non_skip_graph.insert: no spare host";
  let search_cost = if size t = 0 then 0 else (search t ~from:0 k).messages in
  let pos = LL.splice_in t.lists k in
  let cost = search_cost + linking_messages t pos + non_refresh_messages t pos in
  recharge t;
  cost

let delete t k =
  if not (LL.mem t.lists k) then invalid_arg "Non_skip_graph.delete: absent key";
  let search_cost = (search t ~from:0 k).messages in
  let pos = LL.position t.lists k in
  let cost = search_cost + (2 * (LL.top_level t.lists pos + 1)) + non_refresh_messages t pos in
  ignore (LL.splice_out t.lists k);
  recharge t;
  cost

let memory_per_host t = List.init (size t) (fun i -> Network.memory t.net (host_of_index t i))
