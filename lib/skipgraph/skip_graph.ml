module Network = Skipweb_net.Network
module Prng = Skipweb_util.Prng
module LL = Level_lists

type t = {
  net : Network.t;
  lists : LL.t;
  charged : (int, int) Hashtbl.t;  (* id -> memory units currently charged *)
}

let size t = LL.size t.lists
let keys t = LL.keys t.lists
let levels t = LL.levels t.lists
let host_of_index t i = LL.id t.lists i

let memory_units t i =
  (* key + root pointer + two pointers per participating level *)
  2 + (2 * (LL.top_level t.lists i + 1))

let recharge t =
  let seen = Hashtbl.create (size t) in
  for i = 0 to size t - 1 do
    let id = LL.id t.lists i in
    let want = memory_units t i in
    let have = try Hashtbl.find t.charged id with Not_found -> 0 in
    if want <> have then begin
      Network.charge_memory t.net id (want - have);
      Hashtbl.replace t.charged id want
    end;
    Hashtbl.add seen id ()
  done;
  let stale =
    Hashtbl.fold (fun id units acc -> if Hashtbl.mem seen id then acc else (id, units) :: acc) t.charged []
  in
  List.iter
    (fun (id, units) ->
      Network.charge_memory t.net id (-units);
      Hashtbl.remove t.charged id)
    stale

let create ~net ~seed ~keys =
  let lists = LL.create ~seed ~keys in
  if LL.size lists > Network.host_count net then invalid_arg "Skip_graph.create: not enough hosts";
  let t = { net; lists; charged = Hashtbl.create (2 * LL.size lists) } in
  recharge t;
  t

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

let result t ~messages q =
  {
    predecessor = LL.predecessor t.lists q;
    successor = LL.successor t.lists q;
    nearest = LL.nearest t.lists q;
    messages;
  }

(* The Aspnes–Shah search: start at the originating element's top level and
   move monotonically toward the target, dropping a level when stuck. *)
let search t ~from q =
  let n = size t in
  if n = 0 then { predecessor = None; successor = None; nearest = None; messages = 0 }
  else begin
    if from < 0 || from >= n then invalid_arg "Skip_graph.search: bad origin";
    let session = Network.start t.net (host_of_index t from) in
    let cur = ref from in
    let dir_right = q >= LL.key t.lists from in
    let admissible j = if dir_right then LL.key t.lists j <= q else LL.key t.lists j >= q in
    let level = ref (LL.top_level t.lists from) in
    while !level >= 0 do
      let continue = ref true in
      while !continue do
        let next =
          if dir_right then LL.right_neighbor t.lists !cur !level
          else LL.left_neighbor t.lists !cur !level
        in
        match next with
        | Some j when admissible j ->
            cur := j;
            Network.goto session (host_of_index t j)
        | Some _ | None -> continue := false
      done;
      decr level
    done;
    Network.finish session;
    result t ~messages:(Network.messages session) q
  end

let search_from_random t ~rng q =
  let n = size t in
  if n = 0 then { predecessor = None; successor = None; nearest = None; messages = 0 }
  else search t ~from:(Prng.int rng n) q

(* Bottom-up linking phase of the insertion protocol: at each level the new
   element walks its level-(L-1) list outward from its position until it
   meets elements sharing L vector bits, then links in (2 messages). *)
let linking_messages t pos =
  let lists = t.lists in
  let msgs = ref 2 in
  let level = ref 1 in
  let continue = ref true in
  while !continue do
    let walk_side step =
      let rec go j acc =
        match j with
        | None -> (acc, None)
        | Some j ->
            if LL.common_prefix lists pos j >= !level then (acc, Some j)
            else go (step j) (acc + 1)
      in
      go (step pos) 0
    in
    let lsteps, lfound = walk_side (fun j -> LL.left_neighbor lists j (!level - 1)) in
    let rsteps, rfound = walk_side (fun j -> LL.right_neighbor lists j (!level - 1)) in
    if lfound = None && rfound = None then continue := false
    else begin
      msgs := !msgs + lsteps + rsteps + 2;
      incr level
    end
  done;
  !msgs

let insert t k =
  if LL.mem t.lists k then invalid_arg "Skip_graph.insert: duplicate key";
  if size t >= Network.host_count t.net then invalid_arg "Skip_graph.insert: no spare host";
  let search_cost = if size t = 0 then 0 else (search t ~from:0 k).messages in
  let pos = LL.splice_in t.lists k in
  let link_cost = linking_messages t pos in
  recharge t;
  search_cost + link_cost

let delete t k =
  if not (LL.mem t.lists k) then invalid_arg "Skip_graph.delete: absent key";
  let search_cost = (search t ~from:0 k).messages in
  let pos = LL.position t.lists k in
  let unlink_cost = 2 * (LL.top_level t.lists pos + 1) in
  ignore (LL.splice_out t.lists k);
  recharge t;
  search_cost + unlink_cost

let memory_per_host t = List.init (size t) (fun i -> Network.memory t.net (host_of_index t i))

let check_invariants t = LL.check_invariants t.lists
