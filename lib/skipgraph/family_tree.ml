module Network = Skipweb_net.Network
module Prng = Skipweb_util.Prng

type node = {
  key : int;
  id : int;  (* also the host *)
  prio : int;
  mutable left : node option;
  mutable right : node option;
}

type t = {
  net : Network.t;
  seed : int;
  mutable root : node option;
  mutable count : int;
  mutable next_id : int;
}

(* key + parent/left/right pointers + the host's root pointer *)
let units_per_host = 5

let priority t id = Prng.hash2 t.seed id

let size t = t.count

let rec node_depth = function
  | None -> 0
  | Some n -> 1 + max (node_depth n.left) (node_depth n.right)

let depth t = node_depth t.root

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

let search t ~from q =
  match t.root with
  | None -> { predecessor = None; successor = None; nearest = None; messages = 0 }
  | Some root ->
      let session = Network.start t.net from in
      Network.goto session root.id;
      let pred = ref None and succ = ref None in
      let rec desc n =
        Network.goto session n.id;
        if n.key = q then begin
          pred := Some n.key;
          succ := Some n.key
        end
        else if q < n.key then begin
          (match !succ with Some s when s <= n.key -> () | Some _ | None -> succ := Some n.key);
          match n.left with Some l -> desc l | None -> ()
        end
        else begin
          (match !pred with Some p when p >= n.key -> () | Some _ | None -> pred := Some n.key);
          match n.right with Some r -> desc r | None -> ()
        end
      in
      desc root;
      let nearest =
        match (!pred, !succ) with
        | None, None -> None
        | Some p, None -> Some p
        | None, Some s -> Some s
        | Some p, Some s -> if q - p <= s - q then Some p else Some s
      in
      Network.finish session;
      { predecessor = !pred; successor = !succ; nearest; messages = Network.messages session }

let rotate_right n =
  match n.left with
  | None -> assert false
  | Some l ->
      n.left <- l.right;
      l.right <- Some n;
      l

let rotate_left n =
  match n.right with
  | None -> assert false
  | Some r ->
      n.right <- r.left;
      r.left <- Some n;
      r

let insert t k =
  if t.next_id >= Network.host_count t.net then invalid_arg "Family_tree.insert: no spare host";
  let msgs = ref 0 in
  let fresh = { key = k; id = t.next_id; prio = priority t t.next_id; left = None; right = None } in
  let rec ins = function
    | None -> fresh
    | Some n ->
        incr msgs;
        if k = n.key then invalid_arg "Family_tree.insert: duplicate key"
        else if k < n.key then begin
          n.left <- Some (ins n.left);
          match n.left with
          | Some l when l.prio > n.prio ->
              incr msgs;  (* a rotation re-links O(1) hosts *)
              rotate_right n
          | Some _ | None -> n
        end
        else begin
          n.right <- Some (ins n.right);
          match n.right with
          | Some r when r.prio > n.prio ->
              incr msgs;
              rotate_left n
          | Some _ | None -> n
        end
  in
  t.root <- Some (ins t.root);
  t.next_id <- t.next_id + 1;
  t.count <- t.count + 1;
  Network.charge_memory t.net fresh.id units_per_host;
  !msgs + 1

let delete t k =
  let msgs = ref 0 in
  let removed = ref None in
  (* Rotate the doomed node down until it is a leaf, then drop it. *)
  let rec del = function
    | None -> invalid_arg "Family_tree.delete: absent key"
    | Some n ->
        incr msgs;
        if k < n.key then begin
          n.left <- del n.left;
          Some n
        end
        else if k > n.key then begin
          n.right <- del n.right;
          Some n
        end
        else begin
          removed := Some n;
          match (n.left, n.right) with
          | None, None -> None
          | Some _, None -> n.left
          | None, Some _ -> n.right
          | Some l, Some r ->
              incr msgs;
              if l.prio > r.prio then begin
                let top = rotate_right n in
                top.right <- del top.right;
                Some top
              end
              else begin
                let top = rotate_left n in
                top.left <- del top.left;
                Some top
              end
        end
  in
  t.root <- del t.root;
  t.count <- t.count - 1;
  (match !removed with
  | Some n -> Network.charge_memory t.net n.id (-units_per_host)
  | None -> ());
  !msgs

let create ~net ~seed ~keys =
  let t = { net; seed; root = None; count = 0; next_id = 0 } in
  Array.iter (fun k -> ignore (insert t k)) keys;
  t

let max_degree t =
  let rec go acc ~has_parent = function
    | None -> acc
    | Some n ->
        let deg =
          (if has_parent then 1 else 0)
          + (match n.left with Some _ -> 1 | None -> 0)
          + match n.right with Some _ -> 1 | None -> 0
        in
        let acc = max acc deg in
        let acc = go acc ~has_parent:true n.left in
        go acc ~has_parent:true n.right
  in
  go 0 ~has_parent:false t.root

let memory_per_host t =
  let acc = ref [] in
  let rec go = function
    | None -> ()
    | Some n ->
        if n.id < Network.host_count t.net then acc := Network.memory t.net n.id :: !acc;
        go n.left;
        go n.right
  in
  go t.root;
  !acc

let check_invariants t =
  let rec go lo hi prio_bound = function
    | None -> 0
    | Some n ->
        (match lo with Some l when n.key <= l -> failwith "Family_tree: BST order (low)" | Some _ | None -> ());
        (match hi with Some h when n.key >= h -> failwith "Family_tree: BST order (high)" | Some _ | None -> ());
        (match prio_bound with
        | Some p when n.prio > p -> failwith "Family_tree: heap order"
        | Some _ | None -> ());
        1 + go lo (Some n.key) (Some n.prio) n.left + go (Some n.key) hi (Some n.prio) n.right
  in
  let counted = go None None None t.root in
  if counted <> t.count then failwith "Family_tree: count out of sync"
