module Network = Skipweb_net.Network
module O = Skipweb_util.Ordseq

(* Element ids double as hosts; id 0 is reserved for the -infinity header
   sentinel, which participates in every level.

   Keys sit in a chunked sorted sequence; the per-position heights and
   ids in its positional companion. A splice is then an O(√n) chunk
   memmove instead of three O(n) array copies; promotions and demotions
   are point writes. Positional reads cost a Fenwick descent, which the
   short 1-2-3 gaps keep cheap. *)
type t = {
  net : Network.t;
  xs : O.t;  (* keys, ascending *)
  hs : O.Vec.t;  (* heights >= 1, by position *)
  ids : O.Vec.t;  (* host ids, by position *)
  mutable next_id : int;
  charged : (int, int) Hashtbl.t;
}

let header_host = 0

let size t = O.length t.xs

let height t =
  let h = ref 1 in
  O.Vec.iter (fun x -> if x > !h then h := x) t.hs;
  !h

let memory_units h = 2 + (2 * h)

let recharge_one t i =
  let id = O.Vec.get t.ids i in
  let want = memory_units (O.Vec.get t.hs i) in
  let have = try Hashtbl.find t.charged id with Not_found -> 0 in
  if want <> have then begin
    Network.charge_memory t.net id (want - have);
    Hashtbl.replace t.charged id want
  end

(* Deterministic bulk build: promote every second element of each level
   list until at most three remain — all gaps are 1 and boundary gaps at
   most 1, satisfying the 1-2-3 invariant. *)
let assign_heights n =
  let hs = Array.make n 1 in
  let rec promote level members =
    if List.length members > 3 then begin
      let promoted = List.filteri (fun idx _ -> idx mod 2 = 1) members in
      List.iter (fun i -> hs.(i) <- level + 1) promoted;
      promote (level + 1) promoted
    end
  in
  promote 1 (List.init n Fun.id);
  hs

let create ~net ~keys =
  let xs = Array.copy keys in
  Array.sort compare xs;
  Array.iteri
    (fun i k -> if i > 0 && xs.(i - 1) = k then invalid_arg "Det_skipnet.create: duplicate keys")
    xs;
  let n = Array.length xs in
  if n + 1 > Network.host_count net then invalid_arg "Det_skipnet.create: not enough hosts";
  let t =
    {
      net;
      xs = O.of_sorted_array xs;
      hs = O.Vec.of_array (assign_heights n);
      ids = O.Vec.of_array (Array.init n (fun i -> i + 1));
      next_id = n + 1;
      charged = Hashtbl.create (2 * n);
    }
  in
  for i = 0 to n - 1 do
    recharge_one t i
  done;
  (* The header stores one pointer per level. *)
  Network.charge_memory net header_host (height t + 1);
  t

(* Next member of the level-h list strictly right of position [i]
   (i = -1 means the header). *)
let next_at t i h =
  let n = size t in
  let rec go j = if j >= n then None else if O.Vec.get t.hs j >= h then Some j else go (j + 1) in
  go (i + 1)

type search_result = {
  predecessor : int option;
  successor : int option;
  nearest : int option;
  messages : int;
}

(* Top-down search; returns the bottom-level predecessor position (-1 if
   none) and runs inside the given session for message accounting. *)
let descend t session q ~stop_level =
  let cur = ref (-1) in
  Network.goto session header_host;
  let h = ref (height t) in
  while !h >= stop_level do
    let continue = ref true in
    while !continue do
      match next_at t !cur !h with
      | Some j when O.get t.xs j <= q ->
          cur := j;
          Network.goto session (O.Vec.get t.ids j)
      | Some _ | None -> continue := false
    done;
    decr h
  done;
  !cur

let search t ~from q =
  if size t = 0 then { predecessor = None; successor = None; nearest = None; messages = 0 }
  else begin
    let session = Network.start t.net from in
    let pos = descend t session q ~stop_level:1 in
    Network.finish session;
    let predecessor = if pos >= 0 then Some (O.get t.xs pos) else None in
    let successor =
      if pos >= 0 && O.get t.xs pos = q then Some q
      else if pos + 1 < size t then Some (O.get t.xs (pos + 1))
      else None
    in
    let nearest =
      match (predecessor, successor) with
      | None, None -> None
      | Some p, None -> Some p
      | None, Some s -> Some s
      | Some p, Some s -> if q - p <= s - q then Some p else Some s
    in
    { predecessor; successor; nearest; messages = Network.messages session }
  end

(* Positions of the nearest elements taller than [h] on either side of
   position [p]: the boundaries of p's gap in the level-h list. *)
let gap_bounds t p h =
  let n = size t in
  let rec left j = if j < 0 then -1 else if O.Vec.get t.hs j > h then j else left (j - 1) in
  let rec right j = if j >= n then n else if O.Vec.get t.hs j > h then j else right (j + 1) in
  (left (p - 1), right (p + 1))

let gap_members t l r h =
  let acc = ref [] in
  for j = r - 1 downto l + 1 do
    if O.Vec.get t.hs j >= h then acc := j :: !acc
  done;
  !acc

let insert t k =
  if t.next_id >= Network.host_count t.net then invalid_arg "Det_skipnet.insert: no spare host";
  let n = size t in
  let pos = O.lower_bound t.xs k in
  if pos < n && O.get t.xs pos = k then invalid_arg "Det_skipnet.insert: duplicate key";
  (* Locate: a full search paid by the inserting host. *)
  let session = Network.start t.net header_host in
  let _ = descend t session k ~stop_level:1 in
  Network.finish session;
  let locate_cost = Network.messages session in
  (* Splice in at height 1. *)
  ignore (O.insert t.xs k);
  O.Vec.insert_at t.hs pos 1;
  O.Vec.insert_at t.ids pos t.next_id;
  t.next_id <- t.next_id + 1;
  recharge_one t pos;
  (* Linking at level 1. *)
  let msgs = ref (locate_cost + 2) in
  (* Restore the 1-2-3 invariant bottom-up; each promotion is located by a
     fresh partial search from the top (no parent pointers), which is the
     source of the O(log^2 n) worst-case update cost. *)
  let rec fixup p h =
    let l, r = gap_bounds t p h in
    let members = gap_members t l r h in
    if List.length members >= 4 then begin
      let promoted = List.nth members (List.length members / 2) in
      O.Vec.set t.hs promoted (h + 1);
      recharge_one t promoted;
      (* Partial search to level h+1 to find the gap, then scan and link. *)
      let s = Network.start t.net header_host in
      let _ = descend t s (O.get t.xs promoted) ~stop_level:(min (height t) (h + 1)) in
      Network.finish s;
      msgs := !msgs + Network.messages s + List.length members + 2;
      fixup promoted (h + 1)
    end
  in
  fixup pos 1;
  (* Keep the header charged for any new level. *)
  let top = height t in
  let have = Network.memory t.net header_host in
  if have < top + 1 then Network.charge_memory t.net header_host (top + 1 - have);
  !msgs


(* Deletion restores the 1-2-3 invariant in two phases. Removing an element
   of height h0 (a) merges the two gaps it separated at every level below
   h0 — merged gaps can overflow to up to six members and are re-split by a
   promotion — and (b) shrinks the gap it was a member of at level h0,
   which can underflow to zero. An empty interior gap is repaired like a
   B-tree: borrow through the adjacent parent key if its sibling gap can
   spare a member, otherwise demote the parent key (a merge) and recurse
   one level up. Each structural step is located by a partial search from
   the top, as in insertion. *)
let delete t k =
  let n = size t in
  let pos = O.lower_bound t.xs k in
  if pos >= n || O.get t.xs pos <> k then invalid_arg "Det_skipnet.delete: absent key";
  let session = Network.start t.net header_host in
  let _ = descend t session k ~stop_level:1 in
  Network.finish session;
  let msgs = ref (Network.messages session) in
  let h0 = O.Vec.get t.hs pos in
  (* Unlink at each of its levels. *)
  msgs := !msgs + (2 * h0);
  let victim_id = O.Vec.get t.ids pos in
  (match Hashtbl.find_opt t.charged victim_id with
  | Some units ->
      Network.charge_memory t.net victim_id (-units);
      Hashtbl.remove t.charged victim_id
  | None -> ());
  ignore (O.remove t.xs k);
  ignore (O.Vec.remove_at t.hs pos);
  ignore (O.Vec.remove_at t.ids pos);
  let nn = size t in
  let left_boundary around h =
    let rec go j = if j < 0 then -1 else if O.Vec.get t.hs j > h then j else go (j - 1) in
    go (min (nn - 1) (around - 1))
  in
  let right_boundary around h =
    let rec go j = if j >= nn then nn else if O.Vec.get t.hs j > h then j else go (j + 1) in
    go (max 0 around)
  in
  let members_between l r h =
    let acc = ref [] in
    for j = min (nn - 1) (r - 1) downto max 0 (l + 1) do
      if O.Vec.get t.hs j = h then acc := j :: !acc
    done;
    !acc
  in
  let partial_search_cost key stop =
    let s = Network.start t.net header_host in
    let _ = descend t s key ~stop_level:(min (height t) (max 1 stop)) in
    Network.finish s;
    Network.messages s
  in
  (* Phase (a): re-split overflowing merged gaps at levels below h0. *)
  let rec fix_overflow around h =
    if h <= height t then begin
      let l = left_boundary around h and r = right_boundary around h in
      let members = members_between l r h in
      if List.length members >= 4 then begin
        let promoted = List.nth members (List.length members / 2) in
        O.Vec.set t.hs promoted (h + 1);
        recharge_one t promoted;
        msgs :=
          !msgs + partial_search_cost (O.get t.xs promoted) (h + 1) + List.length members + 2;
        fix_overflow promoted (h + 1)
      end
    end
  in
  for h = 1 to h0 - 1 do
    fix_overflow pos h
  done;
  (* Phase (b): repair a possibly-empty interior gap at h0 and above. *)
  let rec repair around h =
    if h <= height t then begin
      let l = left_boundary around h and r = right_boundary around h in
      let interior = l >= 0 && r < nn in
      if interior && members_between l r h = [] then begin
        if O.Vec.get t.hs r = h + 1 then begin
          let r2 = right_boundary (r + 1) h in
          (match members_between r r2 h with
          | m :: _ :: _ ->
              (* Borrow through r: r drops into our gap, m replaces it. *)
              O.Vec.set t.hs r h;
              O.Vec.set t.hs m (h + 1);
              recharge_one t r;
              recharge_one t m;
              msgs := !msgs + partial_search_cost (O.get t.xs r) (h + 1) + 4
          | _ ->
              (* Merge: r drops into our gap; its parent gap lost a key. *)
              O.Vec.set t.hs r h;
              recharge_one t r;
              msgs := !msgs + partial_search_cost (O.get t.xs r) (h + 1) + 4;
              repair r (h + 1))
        end
        else if l >= 0 && O.Vec.get t.hs l = h + 1 then begin
          let l2 = left_boundary l h in
          match List.rev (members_between l2 l h) with
          | m :: _ :: _ ->
              O.Vec.set t.hs l h;
              O.Vec.set t.hs m (h + 1);
              recharge_one t l;
              recharge_one t m;
              msgs := !msgs + partial_search_cost (O.get t.xs l) (h + 1) + 4
          | _ ->
              O.Vec.set t.hs l h;
              recharge_one t l;
              msgs := !msgs + partial_search_cost (O.get t.xs l) (h + 1) + 4;
              repair l (h + 1)
        end
        else
          (* Both boundaries taller than h+1 would mean the parent node had
             no keys — impossible in a valid 1-2-3 structure. *)
          assert false
      end
    end
  in
  if nn > 0 then repair pos h0;
  !msgs

let memory_per_host t = List.init (size t) (fun i -> Network.memory t.net (O.Vec.get t.ids i))

let check_invariants t =
  let n = size t in
  O.check t.xs;
  O.Vec.check t.hs;
  O.Vec.check t.ids;
  if O.Vec.length t.hs <> n || O.Vec.length t.ids <> n then
    failwith "Det_skipnet: parallel sequences out of step";
  let hs = O.Vec.to_array t.hs in
  Array.iter (fun h -> if h < 1 then failwith "Det_skipnet: height < 1") hs;
  let top = height t in
  for h = 1 to top - 1 do
    (* Walk the level-h list and measure gaps between level-(h+1) members;
       interior gaps must be 1..3, boundary gaps 0..3. *)
    let gap = ref 0 in
    let seen_boundary = ref false in
    let check_gap ~interior =
      if !gap > 3 then failwith (Printf.sprintf "Det_skipnet: gap %d > 3 at level %d" !gap h);
      if interior && !gap < 1 then failwith (Printf.sprintf "Det_skipnet: empty interior gap at level %d" h)
    in
    for j = 0 to n - 1 do
      if hs.(j) > h then begin
        check_gap ~interior:!seen_boundary;
        seen_boundary := true;
        gap := 0
      end
      else if hs.(j) = h then incr gap
    done;
    check_gap ~interior:false
  done
