module Membership = Skipweb_util.Membership
module O = Skipweb_util.Ordseq

(* Keys live in a chunked sorted sequence and the parallel per-position
   ids in its positional companion, so a splice memmoves one O(√n) chunk
   instead of copying both O(n) arrays. The height/neighbor caches are
   still array snapshots rebuilt on demand (they are whole-structure
   sweeps either way). *)
type t = {
  vecs : Membership.t;
  xs : O.t;  (* keys, ascending *)
  ids : O.Vec.t;  (* parallel stable ids, by position *)
  mutable next_id : int;
  mutable heights : int array option;  (* cache: top participating level per position *)
  mutable tables : (int array * int array) array option;
      (* cache: per level, (left, right) neighbor positions, -1 for none *)
}

let create ~seed ~keys =
  let xs = Array.copy keys in
  Array.sort compare xs;
  Array.iteri
    (fun i k -> if i > 0 && xs.(i - 1) = k then invalid_arg "Level_lists.create: duplicate keys")
    xs;
  let n = Array.length xs in
  {
    vecs = Membership.create ~seed;
    xs = O.of_sorted_array xs;
    ids = O.Vec.of_array (Array.init n Fun.id);
    next_id = n;
    heights = None;
    tables = None;
  }

let size t = O.length t.xs
let key t i = O.get t.xs i
let id t i = O.Vec.get t.ids i
let keys t = O.to_array t.xs
let vectors t = t.vecs

let common_prefix t i j = Membership.common_prefix t.vecs (id t i) (id t j)

(* An element participates with neighbors at level L iff its L-bit prefix
   group still has at least two members; its top level is the deepest such
   L. Computed for all positions by recursive group splitting. *)
let compute_heights t =
  let n = size t in
  let ids = O.Vec.to_array t.ids in
  let h = Array.make n 0 in
  let rec split level members =
    match members with
    | [] | [ _ ] -> ()
    | _ :: _ :: _ ->
        List.iter (fun i -> h.(i) <- level) members;
        if level < 59 then begin
          let zeros, ones =
            List.partition (fun i -> not (Membership.bit t.vecs ~id:ids.(i) ~level)) members
          in
          split (level + 1) zeros;
          split (level + 1) ones
        end
  in
  split 0 (List.init n Fun.id);
  h

let heights t =
  match t.heights with
  | Some h -> h
  | None ->
      let h = compute_heights t in
      t.heights <- Some h;
      h

let top_level t i = (heights t).(i)

let levels t = Array.fold_left max 0 (heights t) + 1

(* Per-level doubly-linked lists materialized as arrays: one O(n) sweep per
   level, linking each element to the previous one sharing its prefix. *)
let neighbor_tables t =
  match t.tables with
  | Some tabs -> tabs
  | None ->
      let n = size t in
      let ids = O.Vec.to_array t.ids in
      let lv = levels t in
      let tabs =
        Array.init lv (fun level ->
            let left = Array.make n (-1) and right = Array.make n (-1) in
            let last = Hashtbl.create 64 in
            for i = 0 to n - 1 do
              let p = Membership.prefix t.vecs ~id:ids.(i) ~len:level in
              (match Hashtbl.find_opt last p with
              | Some j ->
                  left.(i) <- j;
                  right.(j) <- i
              | None -> ());
              Hashtbl.replace last p i
            done;
            (left, right))
      in
      t.tables <- Some tabs;
      tabs

(* No pair of elements shares a prefix of length >= levels (that would put
   both heights at that length), so levels outside the tables have no
   neighbors. *)
let right_neighbor t i level =
  let tabs = neighbor_tables t in
  if level < 0 || level >= Array.length tabs then None
  else
    let _, right = tabs.(level) in
    if right.(i) >= 0 then Some right.(i) else None

let left_neighbor t i level =
  let tabs = neighbor_tables t in
  if level < 0 || level >= Array.length tabs then None
  else
    let left, _ = tabs.(level) in
    if left.(i) >= 0 then Some left.(i) else None

let position t k = O.lower_bound t.xs k

let mem t k = O.mem t.xs k

let splice_in t k =
  let pos = position t k in
  if not (O.insert t.xs k) then invalid_arg "Level_lists.splice_in: duplicate key";
  O.Vec.insert_at t.ids pos t.next_id;
  t.next_id <- t.next_id + 1;
  t.heights <- None;
  t.tables <- None;
  pos

let splice_out t k =
  let pos = position t k in
  if not (O.remove t.xs k) then invalid_arg "Level_lists.splice_out: absent key";
  ignore (O.Vec.remove_at t.ids pos);
  t.heights <- None;
  t.tables <- None;
  pos

let predecessor t q = O.predecessor t.xs q
let successor t q = O.successor t.xs q
let nearest t q = O.nearest t.xs q

let check_invariants t =
  let n = size t in
  if O.Vec.length t.ids <> n then failwith "Level_lists: ids length";
  O.check t.xs;
  O.Vec.check t.ids;
  let seen = Hashtbl.create n in
  O.Vec.iter
    (fun id ->
      if Hashtbl.mem seen id then failwith "Level_lists: duplicate id";
      Hashtbl.add seen id ())
    t.ids;
  (* Neighbor symmetry at low levels. *)
  for i = 0 to n - 1 do
    for level = 0 to 3 do
      match right_neighbor t i level with
      | Some j -> (
          match left_neighbor t j level with
          | Some i' when i' = i -> ()
          | Some _ | None -> failwith "Level_lists: neighbor asymmetry")
      | None -> ()
    done
  done
