(** Compressed digital tries over a fixed alphabet (§3.2).

    A node corresponds to a string (the characters on the path from the
    root); edges carry non-empty labels; chains are compressed so that each
    internal non-root node either stores a string (is terminal) or branches
    (has at least two children). The trie over [n] strings has O(n) nodes
    but may have Θ(n) depth — the skip-web hierarchy on top restores
    O(log n)-message searches.

    As a range-determined link structure: the range of a node [v] is the
    singleton containing the string leading to [v]; the range of an edge
    [(v, w)] is the set of strings [xy] where [x] leads to [v] and [y] is a
    prefix of the edge label (§2.1).

    For [T ⊆ S], every node string of [D(T)] is a node string of [D(S)]
    (branching points and terminals survive supersets), which is what makes
    skip-web refinement work: {!node_of_string} always finds the
    corresponding start node in the denser trie. *)

type t

type node

(** Where a search terminates. *)
type slot =
  | Exact  (** the located node's string equals the query *)
  | In_edge of { key : char; matched : int }
      (** the query diverges from (or exhausts inside) the edge starting
          with [key], after [matched] label characters *)
  | No_child of char  (** the node has no edge starting with this char *)

type location = { node : node; slot : slot }

val create : unit -> t
val build : string array -> t
(** Duplicates are ignored. The empty string is a valid key. *)

val size : t -> int
(** Number of stored strings. *)

val node_count : t -> int
val depth : t -> int
(** Longest root-to-node path in tree edges (compressed). *)

val max_string_depth : t -> int
(** Longest node string — the uncompressed depth, Θ(total length) for
    adversarial inputs. *)

(** {1 Nodes} *)

val root : t -> node
val node_id : node -> int
val node_string : node -> string
val node_terminal : node -> bool
val subtree_size : node -> int
(** Number of stored strings at or below the node. *)

val node_of_string : t -> string -> node option

(** {1 Queries} *)

val locate : t -> string -> location * node list
(** Search from the root; returns the termination point and the node path
    (for message accounting). *)

val locate_from : t -> node -> string -> location * node list
(** Search starting at a node whose string is a prefix of the query — the
    skip-web refine step. *)

val mem : t -> string -> bool

val count_with_prefix : t -> string -> int
(** Number of stored strings having the query as a prefix — the paper's
    prefix query (e.g. all ISBNs of one publisher). *)

val first_with_prefix : t -> string -> string option
(** Lexicographically least stored string with the given prefix. *)

val longest_common_prefix : t -> string -> string
(** The longest prefix of the query that is a prefix of some stored
    string: "the first place where a query substring differs" (§3.2). *)

val path_node_count : t -> from_string:string -> to_string:string -> int
(** Number of nodes on this trie's path between two of its node strings
    ([from_string] must be a prefix of [to_string]); both endpoints
    inclusive. This is the [|P|] of Lemma 4's proof: the path in [D(S)]
    corresponding to a single edge of [D(T)]. *)

(** {1 Updates} *)

val insert : t -> string -> bool
(** [false] if already present. Creates O(1) nodes. *)

val remove : t -> string -> bool
(** Removes a string; splices redundant nodes. *)

val insert_delta : t -> string -> bool * int list * int list
(** Like {!insert}, additionally reporting [(changed, added, removed)]:
    the ids of the nodes the update created and destroyed. The skip-web
    hierarchy consumes the delta to adjust per-host memory charges in O(1)
    instead of re-enumerating {!iter_nodes}. *)

val remove_delta : t -> string -> bool * int list * int list
(** Like {!remove}, with the same delta report as {!insert_delta}. *)

val iter : t -> f:(string -> unit) -> unit
(** All stored strings in lexicographic order. *)

val check_invariants : t -> unit
(** Validates compression (no redundant chain nodes), label non-emptiness,
    child keying, sizes, parent pointers. Raises [Failure] on violation. *)

val iter_nodes : t -> f:(node -> unit) -> unit
(** Visit every node (including the root) — used by the skip-web hierarchy
    for host placement and memory accounting. *)

val strings_with_prefix : t -> string -> string list
(** All stored strings extending the query, lexicographically — the
    paper's "all titles by a certain publisher" query, in full. *)
