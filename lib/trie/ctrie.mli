(** Compressed digital tries over a fixed alphabet (§3.2).

    A node corresponds to a string (the characters on the path from the
    root); edges carry non-empty labels; chains are compressed so that each
    internal non-root node either stores a string (is terminal) or branches
    (has at least two children). The trie over [n] strings has O(n) nodes
    but may have Θ(n) depth — the skip-web hierarchy on top restores
    O(log n)-message searches.

    As a range-determined link structure: the range of a node [v] is the
    singleton containing the string leading to [v]; the range of an edge
    [(v, w)] is the set of strings [xy] where [x] leads to [v] and [y] is a
    prefix of the edge label (§2.1).

    For [T ⊆ S], every node string of [D(T)] is a node string of [D(S)]
    (branching points and terminals survive supersets), which is what makes
    skip-web refinement work: {!node_of_string} always finds the
    corresponding start node in the denser trie. *)

type t

type node

(** Where a search terminates. *)
type slot =
  | Exact  (** the located node's string equals the query *)
  | In_edge of { key : char; matched : int }
      (** the query diverges from (or exhausts inside) the edge starting
          with [key], after [matched] label characters *)
  | No_child of char  (** the node has no edge starting with this char *)

type location = { node : node; slot : slot }

val create : unit -> t

val of_sorted : ?pool:Skipweb_util.Pool.t -> string array -> t
(** Single-pass bulk build: lexicographically presort (a no-op when the
    input already arrives sorted and distinct), shard by first character,
    build each shard's compressed subtree in one left-to-right pass over
    its slice — fanned over [pool]'s domains when one is given — then
    attach and id-number everything in a sequential preorder commit. The
    resulting trie (node set, ids, child order) is a pure function of the
    distinct string set: bit-identical for any jobs count and for any
    input permutation. *)

val build : ?pool:Skipweb_util.Pool.t -> string array -> t
(** Alias for {!of_sorted} — the bulk path {e is} the build path.
    Duplicates are ignored. The empty string is a valid key. *)

val size : t -> int
(** Number of stored strings. *)

val node_count : t -> int
val depth : t -> int
(** Longest root-to-node path in tree edges (compressed). *)

val max_string_depth : t -> int
(** Longest node string — the uncompressed depth, Θ(total length) for
    adversarial inputs. *)

(** {1 Nodes} *)

val root : t -> node
val node_id : node -> int
val node_string : node -> string
val node_terminal : node -> bool
val subtree_size : node -> int
(** Number of stored strings at or below the node. *)

val node_of_string : t -> string -> node option

(** {1 Queries} *)

val locate : t -> string -> location * node list
(** Search from the root; returns the termination point and the node path
    (for message accounting). *)

val locate_from : t -> node -> string -> location * node list
(** Search starting at a node whose string is a prefix of the query — the
    skip-web refine step. *)

val mem : t -> string -> bool

val count_with_prefix : t -> string -> int
(** Number of stored strings having the query as a prefix — the paper's
    prefix query (e.g. all ISBNs of one publisher). *)

val first_with_prefix : t -> string -> string option
(** Lexicographically least stored string with the given prefix. *)

val longest_common_prefix : t -> string -> string
(** The longest prefix of the query that is a prefix of some stored
    string: "the first place where a query substring differs" (§3.2). *)

val path_node_count : t -> from_string:string -> to_string:string -> int
(** Number of nodes on this trie's path between two of its node strings
    ([from_string] must be a prefix of [to_string]); both endpoints
    inclusive. This is the [|P|] of Lemma 4's proof: the path in [D(S)]
    corresponding to a single edge of [D(T)]. *)

(** {1 Updates} *)

val insert : t -> string -> bool
(** [false] if already present. Creates O(1) nodes. *)

val remove : t -> string -> bool
(** Removes a string; splices redundant nodes. *)

val insert_delta : t -> string -> bool * int list * int list
(** Like {!insert}, additionally reporting [(changed, added, removed)]:
    the ids of the nodes the update created and destroyed. The skip-web
    hierarchy consumes the delta to adjust per-host memory charges in O(1)
    instead of re-enumerating {!iter_nodes}. *)

val remove_delta : t -> string -> bool * int list * int list
(** Like {!remove}, with the same delta report as {!insert_delta}. *)

val insert_batch : ?pool:Skipweb_util.Pool.t -> t -> string array -> int * int list
(** [insert_batch t ss] applies the whole batch as the per-key {!insert}
    loop would, in array order (duplicates skipped), returning
    [(inserted, created_node_ids)]: the concatenation, in batch order,
    of each key's {!insert_delta} id list — bit-identical to the per-key
    loop's concatenated delta reports, since the commit numbers created
    nodes in global batch position order. With [pool], keys partition into
    disjoint shards by first character and apply on pool workers behind
    local stand-in roots; the final trie, ids and return value are
    bit-identical for any jobs count. Empty-string keys flip only the
    root's terminal bit and are handled in the sequential commit. Must
    not run concurrently with queries. *)

val remove_batch : ?pool:Skipweb_util.Pool.t -> t -> string array -> int * int list
(** The mirror of {!insert_batch}: [(removed, dropped_node_ids)] is the
    concatenation, in batch order, of each key's {!remove_delta} id list
    (absent keys skipped). Same sharding, same bit-identical contract. *)

val iter : t -> f:(string -> unit) -> unit
(** All stored strings in lexicographic order. *)

val check_invariants : t -> unit
(** Validates compression (no redundant chain nodes), label non-emptiness,
    child keying, sizes, parent pointers. Raises [Failure] on violation. *)

val iter_nodes : t -> f:(node -> unit) -> unit
(** Visit every node (including the root) — used by the skip-web hierarchy
    for host placement and memory accounting. *)

val strings_with_prefix : t -> string -> string list
(** All stored strings extending the query, lexicographically — the
    paper's "all titles by a certain publisher" query, in full. *)

val prefix_scan : t -> location -> string -> limit:int -> int * string list * int list
(** [prefix_scan t loc q ~limit] — where [loc] is a location for [q]
    (from {!locate} or the skip-web descent): the charged prefix query.
    Returns [(total, sample, visited_node_ids)]: the number of stored
    strings extending [q], up to [limit] of them in lexicographic order,
    and the ids of every node the collection walk enters (the prefix
    subtree's node first) — the ranges a distributed execution fetches.
    [(0, [], [])] when no stored string extends [q]. *)
