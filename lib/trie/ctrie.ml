type node = {
  id : int;
  str : string;  (* the full string leading to this node *)
  mutable children : (char * edge) list;  (* sorted by key character *)
  mutable terminal : bool;
  mutable parent : node option;
  mutable size : int;  (* stored strings at or below this node *)
}

and edge = { label : string; target : node }

type t = {
  root : node;
  index : (string, node) Hashtbl.t;
  mutable next_id : int;
  mutable nstrings : int;
  mutable nnodes : int;
  (* Node churn log for the delta-reporting update API. *)
  mutable logging : bool;
  mutable added_log : int list;
  mutable removed_log : int list;
}

type slot = Exact | In_edge of { key : char; matched : int } | No_child of char

type location = { node : node; slot : slot }

let create () =
  let root =
    { id = 0; str = ""; children = []; terminal = false; parent = None; size = 0 }
  in
  let t =
    {
      root;
      index = Hashtbl.create 64;
      next_id = 1;
      nstrings = 0;
      nnodes = 1;
      logging = false;
      added_log = [];
      removed_log = [];
    }
  in
  Hashtbl.replace t.index "" root;
  t

let size t = t.nstrings
let node_count t = t.nnodes
let root t = t.root
let node_id n = n.id
let node_string n = n.str
let node_terminal n = n.terminal
let subtree_size n = n.size
let node_of_string t s = Hashtbl.find_opt t.index s

let fresh_node t ~str ~terminal =
  let n = { id = t.next_id; str; children = []; terminal; parent = None; size = 0 } in
  t.next_id <- t.next_id + 1;
  t.nnodes <- t.nnodes + 1;
  if t.logging then t.added_log <- n.id :: t.added_log;
  Hashtbl.replace t.index str n;
  n

let drop_node t n =
  Hashtbl.remove t.index n.str;
  t.nnodes <- t.nnodes - 1;
  if t.logging then t.removed_log <- n.id :: t.removed_log

let sorted_add children key edge =
  let rec go = function
    | [] -> [ (key, edge) ]
    | (k, _) :: _ as rest when key < k -> (key, edge) :: rest
    | pair :: rest -> pair :: go rest
  in
  go children

let set_child parent key edge =
  parent.children <- sorted_add (List.remove_assoc key parent.children) key edge;
  edge.target.parent <- Some parent

(* Longest common prefix length of [label] and the suffix of [q] starting
   at [off]. *)
let match_len label q off =
  let limit = min (String.length label) (String.length q - off) in
  let rec go k = if k < limit && label.[k] = q.[off + k] then go (k + 1) else k in
  go 0

let locate_from _t start q =
  assert (String.length start.str <= String.length q);
  assert (String.sub q 0 (String.length start.str) = start.str);
  let rec desc v path =
    let path = v :: path in
    let off = String.length v.str in
    if off = String.length q then ({ node = v; slot = Exact }, List.rev path)
    else
      let c = q.[off] in
      match List.assoc_opt c v.children with
      | None -> ({ node = v; slot = No_child c }, List.rev path)
      | Some e ->
          let k = match_len e.label q off in
          if k = String.length e.label then desc e.target path
          else ({ node = v; slot = In_edge { key = c; matched = k } }, List.rev path)
  in
  desc start []

let locate t q = locate_from t t.root q

let mem t q =
  let loc, _ = locate t q in
  match loc.slot with Exact -> loc.node.terminal | In_edge _ | No_child _ -> false

(* If the query is a prefix of stored content, the node whose subtree holds
   exactly the strings extending it. *)
let prefix_subtree t q =
  let loc, _ = locate t q in
  match loc.slot with
  | Exact -> Some loc.node
  | In_edge { key; matched } ->
      let off = String.length loc.node.str in
      if off + matched = String.length q then
        (* q exhausted inside the edge: everything under the edge target
           extends q. *)
        let e = List.assoc key loc.node.children in
        Some e.target
      else None
  | No_child _ -> None

let count_with_prefix t q =
  match prefix_subtree t q with None -> 0 | Some n -> n.size

let rec first_terminal n =
  if n.terminal then Some n.str
  else
    let rec try_children = function
      | [] -> None
      | (_, e) :: rest -> (
          match first_terminal e.target with Some s -> Some s | None -> try_children rest)
    in
    try_children n.children

let first_with_prefix t q =
  match prefix_subtree t q with None -> None | Some n -> first_terminal n

let longest_common_prefix t q =
  let loc, _ = locate t q in
  match loc.slot with
  | Exact -> q
  | No_child _ -> loc.node.str
  | In_edge { matched; _ } -> String.sub q 0 (String.length loc.node.str + matched)

let path_node_count t ~from_string ~to_string =
  let start =
    match node_of_string t from_string with
    | Some n -> n
    | None -> invalid_arg "Ctrie.path_node_count: from_string is not a node"
  in
  if
    String.length from_string > String.length to_string
    || String.sub to_string 0 (String.length from_string) <> from_string
  then invalid_arg "Ctrie.path_node_count: from_string not a prefix of to_string";
  let rec go v count =
    if String.length v.str = String.length to_string then count
    else
      let c = to_string.[String.length v.str] in
      match List.assoc_opt c v.children with
      | None -> invalid_arg "Ctrie.path_node_count: to_string not reachable"
      | Some e ->
          let k = match_len e.label to_string (String.length v.str) in
          if k <> String.length e.label then
            invalid_arg "Ctrie.path_node_count: to_string not a node"
          else go e.target (count + 1)
  in
  go start 1

let bump_sizes_from n delta =
  let rec go = function
    | None -> ()
    | Some v ->
        v.size <- v.size + delta;
        go v.parent
  in
  go (Some n)

let insert t q =
  let loc, _ = locate t q in
  let v = loc.node in
  match loc.slot with
  | Exact ->
      if v.terminal then false
      else begin
        v.terminal <- true;
        bump_sizes_from v 1;
        t.nstrings <- t.nstrings + 1;
        true
      end
  | No_child _c ->
      let off = String.length v.str in
      let leaf = fresh_node t ~str:q ~terminal:true in
      leaf.size <- 1;
      set_child v q.[off] { label = String.sub q off (String.length q - off); target = leaf };
      bump_sizes_from v 1;
      t.nstrings <- t.nstrings + 1;
      true
  | In_edge { key; matched } ->
      let off = String.length v.str in
      let e = List.assoc key v.children in
      let w = e.target in
      (* Split the edge at [matched] characters. *)
      let mid_str = v.str ^ String.sub e.label 0 matched in
      let mid = fresh_node t ~str:mid_str ~terminal:false in
      mid.size <- w.size;
      let rest = String.sub e.label matched (String.length e.label - matched) in
      set_child v key { label = String.sub e.label 0 matched; target = mid };
      set_child mid rest.[0] { label = rest; target = w };
      if String.length q = String.length mid_str then mid.terminal <- true
      else begin
        let leaf = fresh_node t ~str:q ~terminal:true in
        leaf.size <- 1;
        let tail_off = off + matched in
        set_child mid q.[tail_off] { label = String.sub q tail_off (String.length q - tail_off); target = leaf }
      end;
      bump_sizes_from mid 1;
      t.nstrings <- t.nstrings + 1;
      true

(* Merge a chain node: v (non-root, non-terminal, single child) disappears,
   its incoming and outgoing labels concatenate. *)
let splice t v =
  match (v.parent, v.children) with
  | Some parent, [ (_, out_edge) ] when (not v.terminal) && v.str <> "" ->
      let in_key = v.str.[String.length parent.str] in
      let in_edge = List.assoc in_key parent.children in
      assert (in_edge.target == v);
      set_child parent in_key { label = in_edge.label ^ out_edge.label; target = out_edge.target };
      drop_node t v
  | (Some _ | None), _ -> ()

let remove t q =
  match node_of_string t q with
  | None -> false
  | Some v when not v.terminal -> false
  | Some v ->
      v.terminal <- false;
      bump_sizes_from v (-1);
      t.nstrings <- t.nstrings - 1;
      (match (v.children, v.parent) with
      | [], Some parent ->
          (* Leaf: detach, then maybe splice the parent. *)
          let key = v.str.[String.length parent.str] in
          parent.children <- List.remove_assoc key parent.children;
          drop_node t v;
          splice t parent
      | [], None -> ()  (* empty-string key stored at the root *)
      | [ _ ], _ -> splice t v
      | _ :: _ :: _, _ -> ());
      true

(* Run one update with node-churn logging on, returning the ids of the
   nodes it created and destroyed (the O(1) range delta of §4). *)
let with_delta t op =
  t.logging <- true;
  t.added_log <- [];
  t.removed_log <- [];
  let changed = op () in
  t.logging <- false;
  let delta = (t.added_log, t.removed_log) in
  t.added_log <- [];
  t.removed_log <- [];
  (changed, delta)

let insert_delta t q =
  let changed, (added, removed) = with_delta t (fun () -> insert t q) in
  (changed, added, removed)

let remove_delta t q =
  let changed, (added, removed) = with_delta t (fun () -> remove t q) in
  (changed, added, removed)

let build strings =
  let t = create () in
  Array.iter (fun s -> ignore (insert t s)) strings;
  t

let iter t ~f =
  let rec go n =
    if n.terminal then f n.str;
    List.iter (fun (_, e) -> go e.target) n.children
  in
  go t.root

let rec depth_node n =
  match n.children with
  | [] -> 0
  | cs -> 1 + List.fold_left (fun acc (_, e) -> max acc (depth_node e.target)) 0 cs

let depth t = depth_node t.root

let rec max_string_depth_node n =
  List.fold_left
    (fun acc (_, e) -> max acc (max_string_depth_node e.target))
    (String.length n.str) n.children

let max_string_depth t = max_string_depth_node t.root

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec go n =
    let rec check_sorted = function
      | (k1, _) :: ((k2, _) :: _ as rest) ->
          if k1 >= k2 then fail "Ctrie: children not sorted";
          check_sorted rest
      | [ _ ] | [] -> ()
    in
    check_sorted n.children;
    if n.str <> "" && (not n.terminal) && List.length n.children < 2 then
      fail "Ctrie: redundant chain node %S" n.str;
    let child_sum = List.fold_left (fun acc (_, e) -> acc + e.target.size) 0 n.children in
    let expected = child_sum + if n.terminal then 1 else 0 in
    if n.size <> expected then fail "Ctrie: size %d <> %d at %S" n.size expected n.str;
    (match Hashtbl.find_opt t.index n.str with
    | Some m when m == n -> ()
    | Some _ | None -> fail "Ctrie: index out of sync at %S" n.str);
    List.iter
      (fun (k, e) ->
        if String.length e.label = 0 then fail "Ctrie: empty edge label";
        if e.label.[0] <> k then fail "Ctrie: child key mismatch";
        if e.target.str <> n.str ^ e.label then fail "Ctrie: string concatenation broken";
        (match e.target.parent with
        | Some p when p == n -> ()
        | Some _ | None -> fail "Ctrie: broken parent pointer");
        go e.target)
      n.children
  in
  go t.root;
  if t.root.size <> t.nstrings then fail "Ctrie: root size out of sync"

let iter_nodes t ~f =
  let rec go n =
    f n;
    List.iter (fun (_, e) -> go e.target) n.children
  in
  go t.root

let strings_with_prefix t q =
  match prefix_subtree t q with
  | None -> []
  | Some n ->
      let acc = ref [] in
      let rec walk m =
        if m.terminal then acc := m.str :: !acc;
        List.iter (fun (_, e) -> walk e.target) m.children
      in
      walk n;
      List.rev !acc
