module Pool = Skipweb_util.Pool
module Presort = Skipweb_util.Presort

type node = {
  mutable id : int;
      (* Mutable only for the bulk/batch commit pass: workers allocate
         nodes with a placeholder id and one sequential commit assigns
         the real ids in batch order, so id assignment never depends on
         scheduling. *)
  str : string;  (* the full string leading to this node *)
  mutable children : (char * edge) list;  (* sorted by key character *)
  mutable terminal : bool;
  mutable parent : node option;
  mutable size : int;  (* stored strings at or below this node *)
}

and edge = { label : string; target : node }

type t = {
  root : node;
  index : (string, node) Hashtbl.t;
  mutable next_id : int;
  mutable nstrings : int;
  mutable nnodes : int;
  (* Node churn log for the delta-reporting update API. *)
  mutable logging : bool;
  mutable added_log : int list;
  mutable removed_log : int list;
}

type slot = Exact | In_edge of { key : char; matched : int } | No_child of char

type location = { node : node; slot : slot }

let create () =
  let root =
    { id = 0; str = ""; children = []; terminal = false; parent = None; size = 0 }
  in
  let t =
    {
      root;
      index = Hashtbl.create 64;
      next_id = 1;
      nstrings = 0;
      nnodes = 1;
      logging = false;
      added_log = [];
      removed_log = [];
    }
  in
  Hashtbl.replace t.index "" root;
  t

let size t = t.nstrings
let node_count t = t.nnodes
let root t = t.root
let node_id n = n.id
let node_string n = n.str
let node_terminal n = n.terminal
let subtree_size n = n.size
let node_of_string t s = Hashtbl.find_opt t.index s

let fresh_node t ~str ~terminal =
  let n = { id = t.next_id; str; children = []; terminal; parent = None; size = 0 } in
  t.next_id <- t.next_id + 1;
  t.nnodes <- t.nnodes + 1;
  if t.logging then t.added_log <- n.id :: t.added_log;
  Hashtbl.replace t.index str n;
  n

let drop_node t n =
  Hashtbl.remove t.index n.str;
  t.nnodes <- t.nnodes - 1;
  if t.logging then t.removed_log <- n.id :: t.removed_log

let sorted_add children key edge =
  let rec go = function
    | [] -> [ (key, edge) ]
    | (k, _) :: _ as rest when key < k -> (key, edge) :: rest
    | pair :: rest -> pair :: go rest
  in
  go children

let set_child parent key edge =
  parent.children <- sorted_add (List.remove_assoc key parent.children) key edge;
  edge.target.parent <- Some parent

(* Longest common prefix length of [label] and the suffix of [q] starting
   at [off]. *)
let match_len label q off =
  let limit = min (String.length label) (String.length q - off) in
  let rec go k = if k < limit && label.[k] = q.[off + k] then go (k + 1) else k in
  go 0

let locate_raw start q =
  assert (String.length start.str <= String.length q);
  assert (String.sub q 0 (String.length start.str) = start.str);
  let rec desc v path =
    let path = v :: path in
    let off = String.length v.str in
    if off = String.length q then ({ node = v; slot = Exact }, List.rev path)
    else
      let c = q.[off] in
      match List.assoc_opt c v.children with
      | None -> ({ node = v; slot = No_child c }, List.rev path)
      | Some e ->
          let k = match_len e.label q off in
          if k = String.length e.label then desc e.target path
          else ({ node = v; slot = In_edge { key = c; matched = k } }, List.rev path)
  in
  desc start []

let locate_from _t start q = locate_raw start q

let locate t q = locate_raw t.root q

let mem t q =
  let loc, _ = locate t q in
  match loc.slot with Exact -> loc.node.terminal | In_edge _ | No_child _ -> false

(* If the query is a prefix of stored content, the node whose subtree holds
   exactly the strings extending it. *)
let prefix_subtree t q =
  let loc, _ = locate t q in
  match loc.slot with
  | Exact -> Some loc.node
  | In_edge { key; matched } ->
      let off = String.length loc.node.str in
      if off + matched = String.length q then
        (* q exhausted inside the edge: everything under the edge target
           extends q. *)
        let e = List.assoc key loc.node.children in
        Some e.target
      else None
  | No_child _ -> None

let count_with_prefix t q =
  match prefix_subtree t q with None -> 0 | Some n -> n.size

let rec first_terminal n =
  if n.terminal then Some n.str
  else
    let rec try_children = function
      | [] -> None
      | (_, e) :: rest -> (
          match first_terminal e.target with Some s -> Some s | None -> try_children rest)
    in
    try_children n.children

let first_with_prefix t q =
  match prefix_subtree t q with None -> None | Some n -> first_terminal n

let longest_common_prefix t q =
  let loc, _ = locate t q in
  match loc.slot with
  | Exact -> q
  | No_child _ -> loc.node.str
  | In_edge { matched; _ } -> String.sub q 0 (String.length loc.node.str + matched)

let path_node_count t ~from_string ~to_string =
  let start =
    match node_of_string t from_string with
    | Some n -> n
    | None -> invalid_arg "Ctrie.path_node_count: from_string is not a node"
  in
  if
    String.length from_string > String.length to_string
    || String.sub to_string 0 (String.length from_string) <> from_string
  then invalid_arg "Ctrie.path_node_count: from_string not a prefix of to_string";
  let rec go v count =
    if String.length v.str = String.length to_string then count
    else
      let c = to_string.[String.length v.str] in
      match List.assoc_opt c v.children with
      | None -> invalid_arg "Ctrie.path_node_count: to_string not reachable"
      | Some e ->
          let k = match_len e.label to_string (String.length v.str) in
          if k <> String.length e.label then
            invalid_arg "Ctrie.path_node_count: to_string not a node"
          else go e.target (count + 1)
  in
  go start 1

let bump_sizes_from n delta =
  let rec go = function
    | None -> ()
    | Some v ->
        v.size <- v.size + delta;
        go v.parent
  in
  go (Some n)

(* The structural insert, parameterized over the starting root and the
   node allocator so the batch engine can replay it inside a shard
   (against a local stand-in root, with a deferred-id allocator) with the
   exact same steps as the sequential path. [fresh] is responsible for
   its own bookkeeping (id, counters, churn log or deferred equivalent). *)
let insert_core ~root ~fresh q =
  let loc, _ = locate_raw root q in
  let v = loc.node in
  match loc.slot with
  | Exact ->
      if v.terminal then false
      else begin
        v.terminal <- true;
        bump_sizes_from v 1;
        true
      end
  | No_child _c ->
      let off = String.length v.str in
      let leaf = fresh ~str:q ~terminal:true in
      leaf.size <- 1;
      set_child v q.[off] { label = String.sub q off (String.length q - off); target = leaf };
      bump_sizes_from v 1;
      true
  | In_edge { key; matched } ->
      let off = String.length v.str in
      let e = List.assoc key v.children in
      let w = e.target in
      (* Split the edge at [matched] characters. *)
      let mid_str = v.str ^ String.sub e.label 0 matched in
      let mid = fresh ~str:mid_str ~terminal:false in
      mid.size <- w.size;
      let rest = String.sub e.label matched (String.length e.label - matched) in
      set_child v key { label = String.sub e.label 0 matched; target = mid };
      set_child mid rest.[0] { label = rest; target = w };
      if String.length q = String.length mid_str then mid.terminal <- true
      else begin
        let leaf = fresh ~str:q ~terminal:true in
        leaf.size <- 1;
        let tail_off = off + matched in
        set_child mid q.[tail_off]
          { label = String.sub q tail_off (String.length q - tail_off); target = leaf }
      end;
      bump_sizes_from mid 1;
      true

let insert t q =
  let inserted = insert_core ~root:t.root ~fresh:(fun ~str ~terminal -> fresh_node t ~str ~terminal) q in
  if inserted then t.nstrings <- t.nstrings + 1;
  inserted

(* Merge a chain node: v (non-root, non-terminal, single child) disappears,
   its incoming and outgoing labels concatenate. [drop] owns the
   bookkeeping, like [fresh] above. *)
let splice_core ~drop v =
  match (v.parent, v.children) with
  | Some parent, [ (_, out_edge) ] when (not v.terminal) && v.str <> "" ->
      let in_key = v.str.[String.length parent.str] in
      let in_edge = List.assoc in_key parent.children in
      assert (in_edge.target == v);
      set_child parent in_key { label = in_edge.label ^ out_edge.label; target = out_edge.target };
      drop v
  | (Some _ | None), _ -> ()

(* The structural remove: [find] resolves the key's node (the shared
   index — safe to read concurrently during a remove batch, where a stale
   entry is always a dropped node whose [terminal] was already cleared,
   so it answers exactly like the missing entry would), [drop] retires a
   node. *)
let remove_core ~find ~drop q =
  match find q with
  | None -> false
  | Some v when not v.terminal -> false
  | Some v ->
      v.terminal <- false;
      bump_sizes_from v (-1);
      (match (v.children, v.parent) with
      | [], Some parent ->
          (* Leaf: detach, then maybe splice the parent. *)
          let key = v.str.[String.length parent.str] in
          parent.children <- List.remove_assoc key parent.children;
          drop v;
          splice_core ~drop parent
      | [], None -> ()  (* empty-string key stored at the root *)
      | [ _ ], _ -> splice_core ~drop v
      | _ :: _ :: _, _ -> ());
      true

let remove t q =
  let removed = remove_core ~find:(node_of_string t) ~drop:(drop_node t) q in
  if removed then t.nstrings <- t.nstrings - 1;
  removed

(* Run one update with node-churn logging on, returning the ids of the
   nodes it created and destroyed (the O(1) range delta of §4). *)
let with_delta t op =
  t.logging <- true;
  t.added_log <- [];
  t.removed_log <- [];
  let changed = op () in
  t.logging <- false;
  let delta = (t.added_log, t.removed_log) in
  t.added_log <- [];
  t.removed_log <- [];
  (changed, delta)

let insert_delta t q =
  let changed, (added, removed) = with_delta t (fun () -> insert t q) in
  (changed, added, removed)

let remove_delta t q =
  let changed, (added, removed) = with_delta t (fun () -> remove t q) in
  (changed, added, removed)

(* ---------------- bulk build ----------------

   Lexicographic presort, shard by first character, build each shard's
   compressed subtree in one left-to-right pass over its slice (pure: no
   shared-state writes, placeholder ids), then attach and id-number
   everything in one sequential preorder commit — the quadtree's z-order
   scheme with "aligned cube" replaced by "common prefix". *)

let placeholder_id = -1

let make_node ~str ~terminal ~size =
  { id = placeholder_id; str; children = []; terminal; parent = None; size }

let lcp_len a b =
  let limit = min (String.length a) (String.length b) in
  let rec go k = if k < limit && a.[k] = b.[k] then go (k + 1) else k in
  go 0

(* Subtree over the sorted distinct slice [ss.(lo .. hi - 1)]: the node's
   string is the slice's longest common prefix (= lcp of its extremes,
   the slice being sorted), the node is terminal iff that prefix is
   itself in the slice (then necessarily first), and the children group
   by the character right after the prefix — contiguous and ascending in
   sorted order, so the child lists come out sorted for free. *)
let rec trie_slice ss lo hi =
  let first = ss.(lo) and last = ss.(hi - 1) in
  let l = lcp_len first last in
  let str = String.sub first 0 l in
  let terminal = String.length first = l in
  let node = make_node ~str ~terminal ~size:(hi - lo) in
  let start = if terminal then lo + 1 else lo in
  let rev_children = ref [] in
  let i = ref start in
  while !i < hi do
    let c = ss.(!i).[l] in
    let j = ref (!i + 1) in
    while !j < hi && ss.(!j).[l] = c do incr j done;
    let child = trie_slice ss !i !j in
    let label = String.sub child.str l (String.length child.str - l) in
    child.parent <- Some node;
    rev_children := (c, { label; target = child }) :: !rev_children;
    i := !j
  done;
  node.children <- List.rev !rev_children;
  node

(* Preorder id assignment + index publication: the sequential commit. *)
let commit_subtree t node =
  let rec go n =
    n.id <- t.next_id;
    t.next_id <- t.next_id + 1;
    t.nnodes <- t.nnodes + 1;
    if t.logging then t.added_log <- n.id :: t.added_log;
    Hashtbl.replace t.index n.str n;
    List.iter (fun (_, e) -> go e.target) n.children
  in
  go node

let of_sorted ?pool strings =
  let ss = Presort.sorted_distinct ?pool ~cmp:String.compare strings in
  let t = create () in
  let n = Array.length ss in
  if n > 0 then begin
    (* An empty-string key lives on the root itself; the first-character
       groups are the disjoint shards. *)
    let start =
      if ss.(0) = "" then begin
        t.root.terminal <- true;
        1
      end
      else 0
    in
    let rev_groups = ref [] in
    let i = ref start in
    while !i < n do
      let c = ss.(!i).[0] in
      let j = ref (!i + 1) in
      while !j < n && ss.(!j).[0] = c do incr j done;
      rev_groups := (c, !i, !j) :: !rev_groups;
      i := !j
    done;
    let groups = Array.of_list (List.rev !rev_groups) in
    let ngroups = Array.length groups in
    let tops = Array.make ngroups t.root in
    let run gi =
      let _, lo, hi = groups.(gi) in
      tops.(gi) <- trie_slice ss lo hi
    in
    (match pool with
    | Some p when ngroups > 1 ->
        Pool.parallel_for_tasks p ~weights:(Array.map (fun (_, lo, hi) -> hi - lo) groups) run
    | _ ->
        for gi = 0 to ngroups - 1 do
          run gi
        done);
    t.root.children <-
      Array.to_list
        (Array.mapi
           (fun gi (c, _, _) ->
             let top = tops.(gi) in
             (c, { label = top.str; target = top }))
           groups);
    List.iter
      (fun (_, e) ->
        e.target.parent <- Some t.root;
        commit_subtree t e.target)
      t.root.children;
    t.root.size <- n;
    t.nstrings <- n
  end;
  t

let build ?pool strings = of_sorted ?pool strings

(* ---------------- native batch engines ----------------

   The quadtree's shard scheme on the trie: a batch partitions by first
   character into disjoint shards; each shard worker owns the root's
   subtree for its character, detached behind a local stand-in root (so
   the sequential core's parent-chain walks terminate there instead of
   mutating the shared root), plus per-batch-position log slots. A
   sequential commit then numbers created nodes / retires dropped nodes
   in global batch order — the exact ids and index churn of the per-key
   loop — and reattaches the shard subtrees. Empty-string keys touch only
   the root's terminal bit and never create or drop nodes, so they apply
   at commit time with the same observable effect as in-order
   application. *)

type wshard = {
  wkey : char;
  wfake : node;  (* local stand-in root holding the detached subtree *)
  mutable wkeys : int list;  (* batch positions, reversed *)
}

(* Group batch positions by first character, detaching each group's root
   subtree behind a stand-in root. Positions of empty-string keys are
   returned separately for the sequential commit. *)
let make_wshards t ss =
  let tbl = Hashtbl.create 8 in
  let rev_order = ref [] in
  let rev_empties = ref [] in
  Array.iteri
    (fun i s ->
      if s = "" then rev_empties := i :: !rev_empties
      else begin
        let c = s.[0] in
        let sh =
          match Hashtbl.find_opt tbl c with
          | Some sh -> sh
          | None ->
              let fake = make_node ~str:"" ~terminal:false ~size:0 in
              (match List.assoc_opt c t.root.children with
              | None -> ()
              | Some e ->
                  t.root.children <- List.remove_assoc c t.root.children;
                  fake.children <- [ (c, e) ];
                  e.target.parent <- Some fake);
              let sh = { wkey = c; wfake = fake; wkeys = [] } in
              Hashtbl.add tbl c sh;
              rev_order := sh :: !rev_order;
              sh
        in
        sh.wkeys <- i :: sh.wkeys
      end)
    ss;
  (Array.of_list (List.rev !rev_order), List.rev !rev_empties)

(* Put the shard subtrees back under the real root. [set_child] keeps the
   child list sorted, so the result is the canonical (and sequential)
   layout whatever order the shards come back in. *)
let reattach_wshards t shards =
  Array.iter
    (fun sh ->
      match List.assoc_opt sh.wkey sh.wfake.children with
      | None -> ()
      | Some e -> set_child t.root sh.wkey e)
    shards

let run_wshards ?pool shards run =
  match pool with
  | Some p when Array.length shards > 1 ->
      Pool.parallel_for_tasks p
        ~weights:(Array.map (fun sh -> List.length sh.wkeys) shards)
        run
  | _ ->
      for si = 0 to Array.length shards - 1 do
        run si
      done

let insert_batch ?pool t strings =
  let m = Array.length strings in
  if m = 0 then (0, [])
  else begin
    let shards, empties = make_wshards t strings in
    let created = Array.make m ([], false) in
    run_wshards ?pool shards (fun si ->
        let sh = shards.(si) in
        List.iter
          (fun i ->
            let rev_new = ref [] in
            let fresh ~str ~terminal =
              let n = make_node ~str ~terminal ~size:0 in
              rev_new := n :: !rev_new;
              n
            in
            if insert_core ~root:sh.wfake ~fresh strings.(i) then
              created.(i) <- (List.rev !rev_new, true))
          (List.rev sh.wkeys));
    (* Root-terminal flips for empty-string keys: no nodes involved, so
       position within the batch is unobservable — only "did the first
       one insert" matters. *)
    List.iter
      (fun i -> if not t.root.terminal then begin
           t.root.terminal <- true;
           created.(i) <- ([], true)
         end)
      empties;
    (* Per-key segments in batch order, each newest-id-first — exactly
       the per-key [insert_delta] log's (prepend-built) report order. *)
    let inserted = ref 0 in
    let rev_segs = ref [] in
    for i = 0 to m - 1 do
      match created.(i) with
      | _, false -> ()
      | nodes, true ->
          incr inserted;
          let seg = ref [] in
          List.iter
            (fun node ->
              node.id <- t.next_id;
              t.next_id <- t.next_id + 1;
              t.nnodes <- t.nnodes + 1;
              Hashtbl.replace t.index node.str node;
              seg := node.id :: !seg)
            nodes;
          rev_segs := !seg :: !rev_segs
    done;
    reattach_wshards t shards;
    t.root.size <- t.root.size + !inserted;
    t.nstrings <- t.nstrings + !inserted;
    (!inserted, List.concat (List.rev !rev_segs))
  end

let remove_batch ?pool t strings =
  let m = Array.length strings in
  if m = 0 then (0, [])
  else begin
    let shards, empties = make_wshards t strings in
    let dropped = Array.make m ([], false) in
    run_wshards ?pool shards (fun si ->
        let sh = shards.(si) in
        List.iter
          (fun i ->
            let rev_gone = ref [] in
            let drop n = rev_gone := n :: !rev_gone in
            (* The shared index is read-only during the phase; a stale
               entry is a dropped node whose terminal bit was already
               cleared, which [remove_core] treats exactly like a miss. *)
            if remove_core ~find:(node_of_string t) ~drop strings.(i) then
              dropped.(i) <- (List.rev !rev_gone, true))
          (List.rev sh.wkeys));
    List.iter
      (fun i -> if t.root.terminal then begin
           t.root.terminal <- false;
           dropped.(i) <- ([], true)
         end)
      empties;
    (* Per-key segments in batch order, each newest-dropped-first — exactly
       the per-key [remove_delta] log's (prepend-built) report order. *)
    let removed = ref 0 in
    let rev_segs = ref [] in
    for i = 0 to m - 1 do
      match dropped.(i) with
      | _, false -> ()
      | nodes, true ->
          incr removed;
          let seg = ref [] in
          List.iter
            (fun node ->
              Hashtbl.remove t.index node.str;
              t.nnodes <- t.nnodes - 1;
              seg := node.id :: !seg)
            nodes;
          rev_segs := !seg :: !rev_segs
    done;
    reattach_wshards t shards;
    t.root.size <- t.root.size - !removed;
    t.nstrings <- t.nstrings - !removed;
    (!removed, List.concat (List.rev !rev_segs))
  end

let iter t ~f =
  let rec go n =
    if n.terminal then f n.str;
    List.iter (fun (_, e) -> go e.target) n.children
  in
  go t.root

let rec depth_node n =
  match n.children with
  | [] -> 0
  | cs -> 1 + List.fold_left (fun acc (_, e) -> max acc (depth_node e.target)) 0 cs

let depth t = depth_node t.root

let rec max_string_depth_node n =
  List.fold_left
    (fun acc (_, e) -> max acc (max_string_depth_node e.target))
    (String.length n.str) n.children

let max_string_depth t = max_string_depth_node t.root

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec go n =
    let rec check_sorted = function
      | (k1, _) :: ((k2, _) :: _ as rest) ->
          if k1 >= k2 then fail "Ctrie: children not sorted";
          check_sorted rest
      | [ _ ] | [] -> ()
    in
    check_sorted n.children;
    if n.str <> "" && (not n.terminal) && List.length n.children < 2 then
      fail "Ctrie: redundant chain node %S" n.str;
    let child_sum = List.fold_left (fun acc (_, e) -> acc + e.target.size) 0 n.children in
    let expected = child_sum + if n.terminal then 1 else 0 in
    if n.size <> expected then fail "Ctrie: size %d <> %d at %S" n.size expected n.str;
    (match Hashtbl.find_opt t.index n.str with
    | Some m when m == n -> ()
    | Some _ | None -> fail "Ctrie: index out of sync at %S" n.str);
    List.iter
      (fun (k, e) ->
        if String.length e.label = 0 then fail "Ctrie: empty edge label";
        if e.label.[0] <> k then fail "Ctrie: child key mismatch";
        if e.target.str <> n.str ^ e.label then fail "Ctrie: string concatenation broken";
        (match e.target.parent with
        | Some p when p == n -> ()
        | Some _ | None -> fail "Ctrie: broken parent pointer");
        go e.target)
      n.children
  in
  go t.root;
  if t.root.size <> t.nstrings then fail "Ctrie: root size out of sync"

let iter_nodes t ~f =
  let rec go n =
    f n;
    List.iter (fun (_, e) -> go e.target) n.children
  in
  go t.root

let strings_with_prefix t q =
  match prefix_subtree t q with
  | None -> []
  | Some n ->
      let acc = ref [] in
      let rec walk m =
        if m.terminal then acc := m.str :: !acc;
        List.iter (fun (_, e) -> walk e.target) m.children
      in
      walk n;
      List.rev !acc

(* Charged prefix scan from an existing location for [q] (the skip-web
   descent's endpoint): resolve the prefix subtree without re-locating,
   take the total from its size field, collect up to [limit] strings in
   sorted order, and report the ids of every node the collection walk
   enters — the ranges a distributed execution fetches. Deterministic:
   child lists are sorted, so the visit sequence is a pure function of
   the stored set. *)
let prefix_scan _t loc q ~limit =
  if limit < 0 then invalid_arg "Ctrie.prefix_scan: limit >= 0";
  let sub =
    match loc.slot with
    | Exact -> Some loc.node
    | In_edge { key; matched } ->
        let off = String.length loc.node.str in
        if off + matched = String.length q then
          Some (List.assoc key loc.node.children).target
        else None
    | No_child _ -> None
  in
  match sub with
  | None -> (0, [], [])
  | Some n ->
      let rev_sample = ref [] in
      let taken = ref 0 in
      let rev_visited = ref [ n.id ] in
      let rec walk m =
        if m.terminal && !taken < limit then begin
          rev_sample := m.str :: !rev_sample;
          incr taken
        end;
        List.iter
          (fun (_, e) ->
            if !taken < limit then begin
              rev_visited := e.target.id :: !rev_visited;
              walk e.target
            end)
          m.children
      in
      if limit > 0 then walk n;
      (n.size, List.rev !rev_sample, List.rev !rev_visited)
