(* Tests for the failure model end to end: replication factors, query
   failover, self-repair, and the post-repair equivalence property under
   random churn (PR 6's tentpole).

   The load-bearing guarantees pinned here:
     - r replica copies of a range live on r *distinct* hosts, so killing
       at most r - 1 hosts never destroys every copy (pinned by killing
       every (r-1)-subset of a 3-host network at r = 3);
     - with no failures, any r is bit-identical in messages to r = 1
       (queries keep visiting primaries);
     - repair migrates every stranded charge, keeps the structures'
       memory invariants, and is idempotent once placements are live;
     - after arbitrary interleaved kill / revive / insert / delete /
       repair churn with at most r - 1 concurrent failures, queries
       answer exactly like a fresh build over the surviving key set, at
       jobs 1, 2 and 4. *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module B1 = Skipweb_core.Blocked1d
module I = Skipweb_core.Instances
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Pool = Skipweb_util.Pool

module HInt = H.Make (I.Ints)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------- build-time validation ------- *)

let test_replication_validation () =
  let keys = [| 1; 5; 9 |] in
  let net = Network.create ~hosts:4 in
  Alcotest.check_raises "hierarchy r = 0" (Invalid_argument "Hierarchy.build: r >= 1") (fun () ->
      ignore (HInt.build ~net ~seed:1 ~r:0 keys));
  Alcotest.check_raises "hierarchy r > hosts"
    (Invalid_argument "Hierarchy.build: r exceeds host count") (fun () ->
      ignore (HInt.build ~net ~seed:1 ~r:5 keys));
  Alcotest.check_raises "blocked r = 0"
    (Invalid_argument "Blocked1d.build: need 1 <= r <= host count") (fun () ->
      ignore (B1.build ~net ~seed:1 ~m:4 ~r:0 keys));
  Alcotest.check_raises "blocked r > hosts"
    (Invalid_argument "Blocked1d.build: need 1 <= r <= host count") (fun () ->
      ignore (B1.build ~net ~seed:1 ~m:4 ~r:5 keys));
  let h = HInt.build ~net:(Network.create ~hosts:4) ~seed:1 ~r:3 keys in
  checki "hierarchy replication accessor" 3 (HInt.replication h);
  let b = B1.build ~net:(Network.create ~hosts:4) ~seed:1 ~m:4 ~r:2 keys in
  checki "blocked replication accessor" 2 (B1.replication b)

(* ------- zero-failure contracts ------- *)

(* With nobody dead, replication must be invisible to the message model:
   the same workload costs exactly the same at r = 1 and r = 3. *)
let run_query_workload_messages ~build ~query =
  let bound = 8_000 in
  let keys = W.distinct_ints ~seed:11 ~n:150 ~bound in
  let net = Network.create ~hosts:32 in
  let s = build net keys in
  let rng = Prng.create 0xfee1 in
  for _ = 1 to 120 do
    query s ~rng (Prng.int rng bound)
  done;
  Network.total_messages net

let test_hierarchy_replication_message_invisible () =
  let msgs r =
    run_query_workload_messages
      ~build:(fun net keys -> HInt.build ~net ~seed:11 ~r keys)
      ~query:(fun h ~rng q -> ignore (HInt.query h ~rng q))
  in
  let m1 = msgs 1 in
  checkb "some messages" true (m1 > 0);
  checki "r=2 bit-identical to r=1" m1 (msgs 2);
  checki "r=3 bit-identical to r=1" m1 (msgs 3)

let test_blocked_replication_message_invisible () =
  let msgs r =
    run_query_workload_messages
      ~build:(fun net keys -> B1.build ~net ~seed:11 ~m:16 ~r keys)
      ~query:(fun b ~rng q -> ignore (B1.query b ~rng q))
  in
  let m1 = msgs 1 in
  checkb "some messages" true (m1 > 0);
  checki "r=2 bit-identical to r=1" m1 (msgs 2);
  checki "r=3 bit-identical to r=1" m1 (msgs 3)

(* Replication scales stored memory by exactly r: every copy is charged. *)
let test_replication_memory_scales () =
  let keys = W.distinct_ints ~seed:5 ~n:100 ~bound:5_000 in
  let total ~r =
    let net = Network.create ~hosts:16 in
    ignore (HInt.build ~net ~seed:5 ~r keys);
    Network.total_memory net
  in
  let t1 = total ~r:1 in
  checkb "nonzero storage" true (t1 > 0);
  checki "hierarchy memory scales by r" (2 * t1) (total ~r:2);
  let btotal ~r =
    let net = Network.create ~hosts:16 in
    ignore (B1.build ~net ~seed:5 ~m:8 ~r keys);
    Network.total_memory net
  in
  let b1 = btotal ~r:1 in
  checkb "nonzero blocked storage" true (b1 > 0);
  checki "blocked memory scales by r" (2 * b1) (btotal ~r:2)

(* ------- distinct-replica guarantee ------- *)

(* On a 3-host network at r = 3, the three copies of every range must
   occupy all three hosts — so killing ANY two hosts leaves every range
   with a live copy and every query must still succeed. A placement that
   allowed two copies of one range to collide on a host would fail this
   for some pair. *)
let test_hierarchy_replicas_on_distinct_hosts () =
  let bound = 4_000 in
  let keys = W.distinct_ints ~seed:3 ~n:40 ~bound in
  let net = Network.create ~hosts:3 in
  let h = HInt.build ~net ~seed:3 ~r:3 keys in
  let probes = Array.append keys (Array.init 20 (fun i -> (i * 97) mod bound)) in
  List.iter
    (fun (a, b) ->
      Network.kill net a;
      Network.kill net b;
      Array.iter
        (fun q ->
          match HInt.query h ~rng:(Prng.create (q + 1)) q with
          | _ -> ()
          | exception Network.Host_dead _ ->
              Alcotest.failf "query %d lost all copies with hosts %d,%d down" q a b)
        probes;
      Network.revive net a;
      Network.revive net b)
    [ (0, 1); (0, 2); (1, 2) ]

let test_blocked_replicas_on_distinct_hosts () =
  let bound = 4_000 in
  let keys = W.distinct_ints ~seed:3 ~n:40 ~bound in
  let net = Network.create ~hosts:3 in
  let b = B1.build ~net ~seed:3 ~m:8 ~r:3 keys in
  let probes = Array.append keys (Array.init 20 (fun i -> (i * 97) mod bound)) in
  List.iter
    (fun (x, y) ->
      Network.kill net x;
      Network.kill net y;
      Array.iter
        (fun q ->
          match B1.query b ~rng:(Prng.create (q + 1)) q with
          | _ -> ()
          | exception Network.Host_dead _ ->
              Alcotest.failf "query %d lost all copies with hosts %d,%d down" q x y)
        probes;
      Network.revive net x;
      Network.revive net y)
    [ (0, 1); (0, 2); (1, 2) ]

(* ------- failover correctness and repair lifecycle ------- *)

let test_hierarchy_failover_and_repair () =
  let bound = 6_000 in
  let keys = W.distinct_ints ~seed:21 ~n:120 ~bound in
  let net = Network.create ~hosts:24 in
  let h = HInt.build ~net ~seed:21 ~r:2 keys in
  let probes = Array.init 60 (fun i -> (i * 131) mod bound) in
  let answers () = Array.map (fun q -> fst (HInt.query h ~rng:(Prng.create q) q)) probes in
  let baseline = answers () in
  (* One failure — the most r = 2 is guaranteed to mask. *)
  Network.kill net 5;
  (* Mid-failure: answers unchanged (failover finds the live copies), and
     the memory invariants still hold — charges on dead hosts are
     stranded, not wrong. *)
  checkb "failover answers match" true (answers () = baseline);
  HInt.check_invariants h;
  checkb "something stranded" true (Network.stranded_memory net > 0);
  let msgs_before = Network.total_messages net in
  let st = HInt.repair h in
  checki "repair bills its stats, not the workload counters" msgs_before
    (Network.total_messages net);
  checkb "repair scanned ranges" true (st.HInt.scanned > 0);
  checkb "repair moved copies" true (st.HInt.repaired > 0);
  checkb "repair billed messages" true (st.HInt.messages > 0);
  checki "nothing lost with one failure under r=2" 0 st.HInt.lost;
  checki "repair migrates every stranded charge" 0 (Network.stranded_memory net);
  HInt.check_invariants h;
  checkb "post-repair answers match" true (answers () = baseline);
  (* Idempotent once live. *)
  let st2 = HInt.repair h in
  checki "second repair moves nothing" 0 st2.HInt.repaired;
  checki "second repair bills nothing" 0 st2.HInt.messages;
  (* Rejoin: the hosts come back empty; everything still consistent. *)
  Network.revive net 5;
  HInt.check_invariants h;
  checkb "answers after rejoin" true (answers () = baseline)

let test_blocked_failover_and_repair () =
  let bound = 6_000 in
  let keys = W.distinct_ints ~seed:22 ~n:120 ~bound in
  let net = Network.create ~hosts:24 in
  let b = B1.build ~net ~seed:22 ~m:16 ~r:2 keys in
  let probes = Array.init 60 (fun i -> (i * 131) mod bound) in
  let answers () =
    Array.map
      (fun q ->
        let r = B1.query b ~rng:(Prng.create q) q in
        (r.B1.predecessor, r.B1.successor, r.B1.nearest))
      probes
  in
  let baseline = answers () in
  Network.kill net 3;
  checkb "failover answers match" true (answers () = baseline);
  B1.check_invariants b;
  checkb "something stranded" true (Network.stranded_memory net > 0);
  let st = B1.repair b in
  checkb "repair accounted stranded units" true (st.B1.repaired > 0);
  checkb "repair billed steal messages" true (st.B1.messages > 0);
  checki "nothing lost with one failure under r=2" 0 st.B1.lost;
  checki "repair leaves nothing stranded" 0 (Network.stranded_memory net);
  B1.check_invariants b;
  checkb "post-repair answers match" true (answers () = baseline);
  let st2 = B1.repair b in
  checki "second repair moves nothing" 0 st2.B1.repaired;
  Network.revive net 3;
  B1.check_invariants b;
  checkb "answers after rejoin" true (answers () = baseline)

(* Graceful degradation at r = 1: a query whose only copy is on the dead
   host raises Host_dead (counted by callers, not a crash), everything
   else keeps answering, and a repair pass restores full availability. *)
let test_r1_degrades_and_recovers () =
  let bound = 6_000 in
  let keys = W.distinct_ints ~seed:31 ~n:150 ~bound in
  let net = Network.create ~hosts:12 in
  let h = HInt.build ~net ~seed:31 keys in
  Network.kill net 7;
  let probes = Array.init 80 (fun i -> (i * 211) mod bound) in
  let failed = ref 0 in
  Array.iter
    (fun q ->
      match HInt.query h ~rng:(Prng.create q) q with
      | _ -> ()
      | exception Network.Host_dead _ -> incr failed)
    probes;
  (* The structure survives the failures it cannot mask. *)
  HInt.check_invariants h;
  let st = HInt.repair h in
  checkb "repair re-homed the dead host's copies" true (st.HInt.repaired > 0);
  checkb "single-copy repairs count as lost, not stolen" true (st.HInt.lost > 0);
  Array.iter (fun q -> ignore (HInt.query h ~rng:(Prng.create q) q)) probes;
  checki "full availability after repair" 0 (Network.stranded_memory net);
  Network.revive net 7

(* ------- the churn equivalence property (satellite 4) ------- *)

(* Random interleavings of kill / revive / insert / delete with at most
   r - 1 concurrently dead hosts, a repair each epoch: afterwards the
   structure must answer every query exactly like a fresh build over the
   surviving key set — at jobs 1, 2 and 4, bit-identically. *)
let qcheck_hierarchy_churn_equiv =
  QCheck.Test.make ~name:"hierarchy churn: post-repair = fresh build (jobs 1/2/4)" ~count:10
    QCheck.(pair (int_bound 1_000_000) (int_range 2 3))
    (fun (seed, r) ->
      let hosts = 16 and n = 60 and bound = 5_000 in
      let keys = W.distinct_ints ~seed:(seed + 1) ~n ~bound in
      let net = Network.create ~hosts in
      let h = HInt.build ~net ~seed ~r keys in
      let current = Hashtbl.create n in
      Array.iter (fun k -> Hashtbl.replace current k ()) keys;
      let rng = Prng.create (seed + 7) in
      for _epoch = 1 to 3 do
        (* Kill at most r - 1 distinct live hosts. *)
        let kc = 1 + Prng.int rng (r - 1) in
        let killed = ref [] in
        while List.length !killed < kc do
          let x = Prng.int rng hosts in
          if Network.alive net x && Network.live_hosts net > 1 then begin
            Network.kill net x;
            killed := x :: !killed
          end
        done;
        (* Churn while degraded: inserts and deletes must themselves fail
           over (their locates route like queries). *)
        for _ = 1 to 6 do
          if Prng.bool rng && Hashtbl.length current > 10 then begin
            let ks = Hashtbl.fold (fun k () acc -> k :: acc) current [] in
            let victim = List.nth ks (Prng.int rng (List.length ks)) in
            ignore (HInt.remove h victim);
            Hashtbl.remove current victim
          end
          else begin
            let rec fresh () =
              let k = Prng.int rng bound in
              if Hashtbl.mem current k then fresh () else k
            in
            let k = fresh () in
            ignore (HInt.insert h k);
            Hashtbl.replace current k ()
          end
        done;
        let st = HInt.repair h in
        if st.HInt.lost <> 0 then QCheck.Test.fail_reportf "lost %d copies" st.HInt.lost;
        HInt.check_invariants h;
        List.iter (Network.revive net) !killed
      done;
      (* Reference: a fresh, unreplicated, never-failed build over the
         surviving key set, on its own network and a different seed —
         answers are a pure function of the key set. *)
      let survivors = Array.of_list (Hashtbl.fold (fun k () acc -> k :: acc) current []) in
      let fresh_net = Network.create ~hosts in
      let fresh = HInt.build ~net:fresh_net ~seed:(seed + 4242) survivors in
      let qs = Array.init 40 (fun i -> (i * 127 + seed) mod bound) in
      let expect = Array.map (fun q -> fst (HInt.query fresh ~rng:(Prng.create q) q)) qs in
      List.for_all
        (fun jobs ->
          let got =
            Pool.with_pool ~jobs (fun pool ->
                HInt.query_batch ?pool h ~rng:(Prng.create (seed + 99)) qs)
          in
          Array.map fst got = expect)
        [ 1; 2; 4 ])

let qcheck_blocked_churn_equiv =
  QCheck.Test.make ~name:"blocked churn: post-repair = fresh build (jobs 1/2/4)" ~count:8
    QCheck.(pair (int_bound 1_000_000) (int_range 2 3))
    (fun (seed, r) ->
      let hosts = 12 and n = 50 and bound = 4_000 in
      let keys = W.distinct_ints ~seed:(seed + 1) ~n ~bound in
      let net = Network.create ~hosts in
      let b = B1.build ~net ~seed ~m:8 ~r keys in
      let current = Hashtbl.create n in
      Array.iter (fun k -> Hashtbl.replace current k ()) keys;
      let rng = Prng.create (seed + 7) in
      for _epoch = 1 to 3 do
        let kc = 1 + Prng.int rng (r - 1) in
        let killed = ref [] in
        while List.length !killed < kc do
          let x = Prng.int rng hosts in
          if Network.alive net x && Network.live_hosts net > 1 then begin
            Network.kill net x;
            killed := x :: !killed
          end
        done;
        for _ = 1 to 4 do
          if Prng.bool rng && Hashtbl.length current > 10 then begin
            let ks = Hashtbl.fold (fun k () acc -> k :: acc) current [] in
            let victim = List.nth ks (Prng.int rng (List.length ks)) in
            ignore (B1.delete b victim);
            Hashtbl.remove current victim
          end
          else begin
            let rec fresh () =
              let k = Prng.int rng bound in
              if Hashtbl.mem current k then fresh () else k
            in
            let k = fresh () in
            ignore (B1.insert b k);
            Hashtbl.replace current k ()
          end
        done;
        let st = B1.repair b in
        if st.B1.lost <> 0 then QCheck.Test.fail_reportf "lost %d units" st.B1.lost;
        B1.check_invariants b;
        List.iter (Network.revive net) !killed
      done;
      let survivors = Array.of_list (Hashtbl.fold (fun k () acc -> k :: acc) current []) in
      let fresh_net = Network.create ~hosts in
      let fresh = B1.build ~net:fresh_net ~seed:(seed + 4242) ~m:8 survivors in
      let qs = Array.init 30 (fun i -> (i * 127 + seed) mod bound) in
      let key_answer (res : B1.search_result) =
        (res.B1.predecessor, res.B1.successor, res.B1.nearest)
      in
      let expect = Array.map (fun q -> key_answer (B1.query fresh ~rng:(Prng.create q) q)) qs in
      List.for_all
        (fun jobs ->
          let got =
            Pool.with_pool ~jobs (fun pool ->
                B1.query_batch ?pool b ~rng:(Prng.create (seed + 99)) qs)
          in
          Array.map key_answer got = expect)
        [ 1; 2; 4 ])

let suite =
  [
    Alcotest.test_case "replication validation" `Quick test_replication_validation;
    Alcotest.test_case "hierarchy replication message-invisible" `Quick
      test_hierarchy_replication_message_invisible;
    Alcotest.test_case "blocked replication message-invisible" `Quick
      test_blocked_replication_message_invisible;
    Alcotest.test_case "replication memory scales by r" `Quick test_replication_memory_scales;
    Alcotest.test_case "hierarchy replicas on distinct hosts" `Quick
      test_hierarchy_replicas_on_distinct_hosts;
    Alcotest.test_case "blocked replicas on distinct hosts" `Quick
      test_blocked_replicas_on_distinct_hosts;
    Alcotest.test_case "hierarchy failover + repair lifecycle" `Quick
      test_hierarchy_failover_and_repair;
    Alcotest.test_case "blocked failover + repair lifecycle" `Quick
      test_blocked_failover_and_repair;
    Alcotest.test_case "r=1 degrades gracefully and recovers" `Quick test_r1_degrades_and_recovers;
    QCheck_alcotest.to_alcotest qcheck_hierarchy_churn_equiv;
    QCheck_alcotest.to_alcotest qcheck_blocked_churn_equiv;
  ]
