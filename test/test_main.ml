(* Aggregated alcotest runner for the skip-webs reproduction. *)

let () =
  Alcotest.run "skipweb"
    [
      ("util", Test_util.suite);
      ("sketch", Test_sketch.suite);
      ("pool", Test_pool.suite);
      ("net", Test_net.suite);
      ("trace", Test_trace.suite);
      ("geom", Test_geom.suite);
      ("linklist", Test_linklist.suite);
      ("skiplist", Test_skiplist.suite);
      ("quadtree", Test_quadtree.suite);
      ("trie", Test_trie.suite);
      ("trapmap", Test_trapmap.suite);
      ("workload", Test_workload.suite);
      ("skipgraph", Test_skipgraph.suite);
      ("core", Test_core.suite);
      ("churn", Test_churn.suite);
      ("serving", Test_serving.suite);
      ("soak", Test_core.soak_suite);
    ]
