(* End-to-end tests for the session trace layer: traced hierarchy and
   blocked skip-web queries must attribute every message to a level, cost
   exactly the same as untraced runs, and — for one pinned seed — produce
   a byte-for-byte stable hop sequence. *)

module Network = Skipweb_net.Network
module Trace = Skipweb_net.Trace
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module B1 = Skipweb_core.Blocked1d
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng

module HInt = H.Make (I.Ints)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let hop_to_string = function
  | Trace.Hop { src; dst; label } ->
      Printf.sprintf "%d->%d%s" src dst (match label with None -> "" | Some l -> ":" ^ l)
  | _ -> assert false

let hop_strings tr =
  List.filter_map
    (function Trace.Hop _ as h -> Some (hop_to_string h) | _ -> None)
    (Trace.events tr)

(* The full hop sequence of one seeded query, asserted exactly. The
   simulator, PRNG and placement are all deterministic, so this sequence
   is a contract: any change to routing, placement or membership hashing
   shows up here as a diff, not as a silent cost shift. *)
let test_pinned_hop_sequence () =
  let n = 64 in
  let keys = W.distinct_ints ~seed:2005 ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let h = HInt.build ~net ~seed:2005 keys in
  let rng = Prng.create 7 in
  let tr = Trace.create () in
  let _, stats = HInt.query ~trace:tr h ~rng 3200 in
  checki "hops = messages" stats.HInt.messages (Trace.total_hops tr);
  checki "all hops leveled" 0 (Trace.unattributed_hops tr);
  Alcotest.(check (list string)) "exact hop sequence"
    [
      "19->11:list-walk";
      "11->29:list-walk";
      "29->17:list-walk";
      "17->42:list-walk";
      "42->17:list-walk";
      "17->55:list-walk";
      "55->32:list-walk";
      "32->57:list-walk";
    ]
    (hop_strings tr)

(* Property: for every traced query, the per-level hop counts sum to the
   session's message count — tracing partitions the cost, it never loses
   or invents messages — and running the identical workload untraced
   costs exactly the same. *)
let qcheck_hierarchy_levels_sum =
  QCheck.Test.make ~name:"hierarchy: per-level hops sum to messages" ~count:40
    QCheck.(pair (int_range 8 200) (int_range 0 1_000_000))
    (fun (n, salt) ->
      let keys = W.distinct_ints ~seed:(salt + 1) ~n ~bound:(100 * n) in
      let build () =
        let net = Network.create ~hosts:n in
        HInt.build ~net ~seed:(salt + 1) keys
      in
      let h = build () and h' = build () in
      let rng = Prng.create (salt + 2) and rng' = Prng.create (salt + 2) in
      let ok = ref true in
      for i = 0 to 4 do
        let q = (100 * n / 5 * i) + (salt mod 97) in
        let tr = Trace.create () in
        let _, stats = HInt.query ~trace:tr h ~rng q in
        let _, stats' = HInt.query h' ~rng:rng' q in
        let level_sum =
          List.fold_left (fun acc (_, c) -> acc + c) 0 (Trace.per_level_hops tr)
        in
        ok :=
          !ok
          && level_sum = stats.HInt.messages
          && Trace.unattributed_hops tr = 0
          && Trace.total_hops tr = stats.HInt.messages
          && stats'.HInt.messages = stats.HInt.messages
      done;
      !ok)

let qcheck_blocked_levels_sum =
  QCheck.Test.make ~name:"blocked: per-level hops sum to messages" ~count:30
    QCheck.(pair (int_range 16 200) (int_range 0 1_000_000))
    (fun (n, salt) ->
      let keys = W.distinct_ints ~seed:(salt + 11) ~n ~bound:(100 * n) in
      let m = max 4 (4 * (1 + (n / 32))) in
      let build () =
        let net = Network.create ~hosts:n in
        B1.build ~net ~seed:(salt + 11) ~m keys
      in
      let b = build () and b' = build () in
      let rng = Prng.create (salt + 12) and rng' = Prng.create (salt + 12) in
      let ok = ref true in
      for i = 0 to 4 do
        let q = (100 * n / 5 * i) + (salt mod 89) in
        let tr = Trace.create () in
        let r = B1.query ~trace:tr b ~rng q in
        let r' = B1.query b' ~rng:rng' q in
        let level_sum =
          List.fold_left (fun acc (_, c) -> acc + c) 0 (Trace.per_level_hops tr)
        in
        ok :=
          !ok
          && level_sum = r.B1.messages
          && Trace.unattributed_hops tr = 0
          && r'.B1.messages = r.B1.messages
      done;
      !ok)

(* Tracing transparency at the network level: a whole seeded query batch
   leaves Network.total_messages identical whether traced or not. *)
let test_trace_transparent_batch () =
  let n = 128 in
  let keys = W.distinct_ints ~seed:99 ~n ~bound:(100 * n) in
  let run traced =
    let net = Network.create ~hosts:n in
    let h = HInt.build ~net ~seed:99 keys in
    let rng = Prng.create 5 in
    let tr = Trace.create () in
    for _ = 1 to 50 do
      let q = Prng.int rng (100 * n) in
      if traced then begin
        Trace.clear tr;
        ignore (HInt.query ~trace:tr h ~rng q)
      end
      else ignore (HInt.query h ~rng q)
    done;
    Network.total_messages net
  in
  checki "identical total messages" (run false) (run true)

let suite =
  [
    Alcotest.test_case "pinned hop sequence" `Quick test_pinned_hop_sequence;
    Alcotest.test_case "trace transparent batch" `Quick test_trace_transparent_batch;
    QCheck_alcotest.to_alcotest qcheck_hierarchy_levels_sum;
    QCheck_alcotest.to_alcotest qcheck_blocked_levels_sum;
  ]
