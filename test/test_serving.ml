(* Serving at scale (PR 8): the read-path level cache on both skip-web
   structures, the open-loop workload driver, and the observatory under
   caching.

   The contract under test, in order of importance:
     - an *inactive* cache (k = 1) is byte-identical to the pre-cache
       code: the pinned churn message totals of test_core must reproduce
       exactly with cache parameters supplied;
     - caching never changes an answer, for any jobs count;
     - on a Zipf-skewed workload the congestion Gini is monotonically
       non-increasing in the replica count k;
     - cache copies die with their hosts: repair re-homes and bills them,
       and the memory accounting stays exact throughout (check_invariants
       cross-checks per-host charges against the simulator). *)

module Network = Skipweb_net.Network
module Obs = Skipweb_net.Observatory
module Placement = Skipweb_net.Placement
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module B1 = Skipweb_core.Blocked1d
module Lk = Skipweb_linklist.Linklist
module W = Skipweb_workload.Workload
module OL = Skipweb_workload.Open_loop
module Prng = Skipweb_util.Prng
module Pool = Skipweb_util.Pool

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

module HInt = H.Make (I.Ints)

(* ------- the k = 1 byte-identity contract ------- *)

(* The exact pinned hierarchy churn of test_core, but with the cache
   window configured and k = 1: an inactive cache must not move a single
   message, charge or coin. *)
let test_pinned_hierarchy_cache_off () =
  let bound = 30_000 in
  let ks = W.distinct_ints ~seed:42 ~n:300 ~bound in
  let net = Network.create ~hosts:128 in
  let h = HInt.build ~net ~seed:42 ~cache_levels:4 ~cache_replicas:1 ks in
  let live = Hashtbl.create 64 in
  Array.iter (fun k -> Hashtbl.replace live k ()) ks;
  let arena = ref (Array.copy ks) in
  let len = ref (Array.length ks) in
  let add k =
    if !len = Array.length !arena then begin
      let b = Array.make (2 * !len) 0 in
      Array.blit !arena 0 b 0 !len;
      arena := b
    end;
    !arena.(!len) <- k;
    incr len;
    Hashtbl.replace live k ()
  in
  let take rng =
    if !len = 0 then None
    else begin
      let i = Prng.int rng !len in
      let k = !arena.(i) in
      !arena.(i) <- !arena.(!len - 1);
      decr len;
      Hashtbl.remove live k;
      Some k
    end
  in
  let rng = Prng.create 0xc0ffee in
  let ops = ref 0 in
  for i = 0 to 399 do
    match i mod 5 with
    | 0 | 2 ->
        let rec fresh () =
          let k = Prng.int rng bound in
          if Hashtbl.mem live k then fresh () else k
        in
        let k = fresh () in
        ops := !ops + HInt.insert h k;
        add k
    | 1 | 3 -> (
        match take rng with Some k -> ops := !ops + HInt.remove h k | None -> ())
    | _ ->
        let _, st = HInt.query h ~rng (Prng.int rng bound) in
        ops := !ops + st.HInt.messages
  done;
  HInt.check_invariants h;
  checki "pinned op messages" 10287 !ops;
  checki "pinned network total" 3887 (Network.total_messages net);
  checki "pinned final size" 300 (HInt.size h)

(* Same for the blocked structure: set_cache to k = 1 mid-run included. *)
let test_pinned_blocked_cache_off () =
  let bound = 10_000 in
  let ks = W.distinct_ints ~seed:9 ~n:200 ~bound in
  let net = Network.create ~hosts:64 in
  let b = B1.build ~net ~seed:9 ~m:16 ~cache_levels:4 ~cache_replicas:1 ks in
  let live = Hashtbl.create 64 in
  Array.iter (fun k -> Hashtbl.replace live k ()) ks;
  let arena = ref (Array.copy ks) in
  let len = ref (Array.length ks) in
  let add k =
    if !len = Array.length !arena then begin
      let bigger = Array.make (2 * !len) 0 in
      Array.blit !arena 0 bigger 0 !len;
      arena := bigger
    end;
    !arena.(!len) <- k;
    incr len;
    Hashtbl.replace live k ()
  in
  let take rng =
    if !len = 0 then None
    else begin
      let i = Prng.int rng !len in
      let k = !arena.(i) in
      !arena.(i) <- !arena.(!len - 1);
      decr len;
      Hashtbl.remove live k;
      Some k
    end
  in
  let rng = Prng.create 0xbeef in
  let ops = ref 0 in
  for i = 0 to 119 do
    (* An inactive-cache reconfiguration mid-churn must also be free. *)
    if i = 60 then B1.set_cache b ~levels:4 ~k:1;
    match i mod 4 with
    | 0 ->
        let rec fresh () =
          let k = Prng.int rng bound in
          if Hashtbl.mem live k then fresh () else k
        in
        let k = fresh () in
        ops := !ops + B1.insert b k;
        add k
    | 1 -> (
        match take rng with Some k -> ops := !ops + B1.delete b k | None -> ())
    | _ ->
        let r = B1.query b ~rng (Prng.int rng bound) in
        ops := !ops + r.B1.messages
  done;
  B1.check_invariants b;
  checki "pinned op messages" 598 !ops;
  checki "pinned network total" 238 (Network.total_messages net);
  checki "pinned final size" 200 (B1.size b)

(* ------- answers are cache-invariant, for any jobs count ------- *)

let qcheck_cached_answers_equal =
  QCheck.Test.make ~name:"cached query answers = uncached (jobs 1/2/4)" ~count:8
    QCheck.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (seed, k) ->
      let n = 400 in
      let bound = 100 * n in
      let ks = W.distinct_ints ~seed ~n ~bound in
      let qs = W.query_mix ~seed:(seed + 1) ~keys:ks ~n:200 ~bound in
      let run ~cache ~jobs =
        let net = Network.create ~hosts:256 in
        let h =
          if cache then HInt.build ~net ~seed ~cache_levels:5 ~cache_replicas:k ks
          else HInt.build ~net ~seed ks
        in
        HInt.check_invariants h;
        let go pool =
          Array.map fst (HInt.query_batch ?pool h ~rng:(Prng.create (seed + 2)) qs)
        in
        if jobs = 1 then go None else Pool.with_pool ~jobs (fun pool -> go pool)
      in
      let baseline = run ~cache:false ~jobs:1 in
      List.for_all
        (fun jobs ->
          let cached = run ~cache:true ~jobs in
          cached = baseline)
        [ 1; 2; 4 ])

let qcheck_blocked_cached_answers_equal =
  QCheck.Test.make ~name:"blocked cached answers = uncached (jobs 1/2/4)" ~count:6
    QCheck.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (seed, k) ->
      let n = 300 in
      let bound = 100 * n in
      let ks = W.distinct_ints ~seed ~n ~bound in
      let qs = W.query_mix ~seed:(seed + 1) ~keys:ks ~n:150 ~bound in
      let run ~cache ~jobs =
        let net = Network.create ~hosts:64 in
        let b =
          if cache then B1.build ~net ~seed ~m:16 ~cache_levels:8 ~cache_replicas:k ks
          else B1.build ~net ~seed ~m:16 ks
        in
        B1.check_invariants b;
        let go pool =
          Array.map
            (fun r -> (r.B1.predecessor, r.B1.successor, r.B1.nearest))
            (B1.query_batch ?pool b ~rng:(Prng.create (seed + 2)) qs)
        in
        if jobs = 1 then go None else Pool.with_pool ~jobs (fun pool -> go pool)
      in
      let baseline = run ~cache:false ~jobs:1 in
      List.for_all (fun jobs -> run ~cache:true ~jobs = baseline) [ 1; 2; 4 ])

(* ------- the observatory under caching: Gini non-increasing in k ------- *)

let gini_for ~structure ~k =
  let seed = 11 in
  let n = 4096 in
  let bound = 100 * n in
  let ks = W.distinct_ints ~seed ~n ~bound in
  let qs = W.zipf_queries ~seed:(seed + 3) ~keys:ks ~n:4000 ~s:1.1 in
  let net = Network.create ~hosts:n in
  let query_one =
    match structure with
    | `Hierarchy ->
        let h = HInt.build ~net ~seed ~cache_levels:4 ~cache_replicas:k ks in
        fun rng q -> ignore (HInt.query h ~rng q)
    | `Blocked ->
        let b = B1.build ~net ~seed ~m:48 ~cache_levels:4 ~cache_replicas:k ks in
        fun rng q -> ignore (B1.query b ~rng q)
  in
  Network.reset_traffic net;
  let coins = Prng.create (seed + 7) in
  Array.iteri (fun i q -> query_one (Prng.stream coins i) q) qs;
  let c = Obs.congestion_of net in
  (c.Obs.gini, Obs.top_share net ~m:16)

let test_gini_non_increasing_hierarchy () =
  let stats = List.map (fun k -> gini_for ~structure:`Hierarchy ~k) [ 1; 2; 4 ] in
  let ginis = List.map fst stats and shares = List.map snd stats in
  List.iteri
    (fun i g ->
      if i > 0 then
        checkb
          (Printf.sprintf "hierarchy gini non-increasing (%g then %g)" (List.nth ginis (i - 1)) g)
          true
          (g <= List.nth ginis (i - 1) +. 1e-9))
    ginis;
  checkb "hierarchy gini strictly lower at k=4" true (List.nth ginis 2 < List.hd ginis);
  checkb "hierarchy top-16 share falls" true (List.nth shares 2 < List.hd shares)

let test_gini_non_increasing_blocked () =
  let ginis = List.map (fun k -> fst (gini_for ~structure:`Blocked ~k)) [ 1; 2; 4 ] in
  List.iteri
    (fun i g ->
      if i > 0 then
        checkb
          (Printf.sprintf "blocked gini non-increasing (%g then %g)" (List.nth ginis (i - 1)) g)
          true
          (g <= List.nth ginis (i - 1) +. 1e-9))
    ginis;
  checkb "blocked gini strictly lower at k=4" true (List.nth ginis 2 < List.hd ginis)

(* ------- cache copies under failure: repair re-homes and bills them ------- *)

let test_hierarchy_cache_repair () =
  let seed = 21 in
  let n = 200 in
  let ks = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:64 in
  let h = HInt.build ~net ~seed ~r:2 ~cache_levels:3 ~cache_replicas:3 ks in
  HInt.check_invariants h;
  (* Kill one host: within the r - 1 loss-free budget, and with hundreds of
     cached copies over 64 hosts it certainly held some cache slots. *)
  Network.kill net 17;
  let st = HInt.repair h in
  checkb "repair billed steal messages" true (st.HInt.messages > 0);
  checki "no copy lost" 0 st.HInt.lost;
  checki "stranded memory cleared" 0 (Network.stranded_memory net);
  HInt.check_invariants h;
  let st2 = HInt.repair h in
  checki "repair idempotent" 0 st2.HInt.repaired;
  (* Queries answer correctly afterwards. *)
  let rng = Prng.create (seed + 5) in
  Array.iter
    (fun q ->
      let a, _ = HInt.query h ~rng q in
      let expect = Lk.nearest ks q in
      checkb "post-repair answer" true (a = expect))
    (Array.sub ks 0 25)

let test_blocked_cache_repair () =
  let seed = 23 in
  let n = 220 in
  let ks = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:48 in
  let b = B1.build ~net ~seed ~m:16 ~r:2 ~cache_levels:8 ~cache_replicas:3 ks in
  B1.check_invariants b;
  List.iter (fun host -> Network.kill net host) [ 2; 9; 30 ];
  let st = B1.repair b in
  checkb "repair billed steal messages" true (st.B1.messages > 0);
  checki "no unit lost" 0 st.B1.lost;
  B1.check_invariants b;
  let st2 = B1.repair b in
  checki "repair idempotent" 0 st2.B1.repaired

(* ------- blocked set_cache: exact charge round-trip ------- *)

let test_blocked_set_cache_roundtrip () =
  let seed = 31 in
  let n = 300 in
  let ks = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:64 in
  let b = B1.build ~net ~seed ~m:16 ks in
  let snapshot () = Array.init (Network.host_count net) (fun h -> Network.memory net h) in
  let before = snapshot () in
  let storage_before = B1.replicated_storage b in
  B1.set_cache b ~levels:8 ~k:3;
  checkb "cache config updated" true (B1.cache_config b = (8, 3));
  B1.check_invariants b;
  checkb "cache adds replicated storage" true (B1.replicated_storage b > storage_before);
  (* A build with the same cache parameters lands every copy identically:
     per-host memory must agree exactly (placement is pure). *)
  let net2 = Network.create ~hosts:64 in
  let _b2 = B1.build ~net:net2 ~seed ~m:16 ~cache_levels:8 ~cache_replicas:3 ks in
  Array.iteri
    (fun h m -> checki (Printf.sprintf "host %d memory = fresh cached build" h) m (Network.memory net2 h))
    (snapshot ());
  (* Turning the cache back off releases exactly what it charged. *)
  B1.set_cache b ~levels:8 ~k:1;
  B1.check_invariants b;
  Array.iteri
    (fun h m -> checki (Printf.sprintf "host %d memory restored" h) before.(h) m)
    (snapshot ());
  checki "storage restored" storage_before (B1.replicated_storage b)

(* ------- hierarchy cache memory accounting through growth ------- *)

let test_hierarchy_cache_charges_track_growth () =
  let seed = 37 in
  let ks = W.distinct_ints ~seed ~n:120 ~bound:20_000 in
  let net = Network.create ~hosts:32 in
  let h = HInt.build ~net ~seed ~cache_levels:4 ~cache_replicas:3 ks in
  checkb "cache accessor" true (HInt.cache h = (4, 3));
  HInt.check_invariants h;
  (* Push n across a power of two and back: grow_top / shrink_top must
     keep cache charges exact (the window is bottom-anchored, so it never
     shifts — check_invariants cross-checks every host's charge). *)
  let extra = W.distinct_ints ~seed:(seed + 1) ~n:200 ~bound:90_000 in
  let added = Array.of_list (List.filter (fun k -> not (Array.mem k ks)) (Array.to_list extra)) in
  ignore (HInt.insert_batch h added);
  HInt.check_invariants h;
  ignore (HInt.remove_batch h added);
  HInt.check_invariants h;
  checki "size restored" 120 (HInt.size h)

(* ------- the open-loop driver ------- *)

let test_open_loop_deterministic_replay () =
  let ks = W.distinct_ints ~seed:3 ~n:500 ~bound:4_000 in
  let spec = { OL.default with OL.seed = 77; ops = 2_000; bound = 4_000 } in
  let a = OL.plan spec ~keys:ks in
  let b = OL.plan spec ~keys:ks in
  checkb "replay is exact" true (a = b);
  checki "planned every op" 2_000 (Array.length a);
  (* Arrival times strictly increase; rate 1000 means ~2 time units. *)
  Array.iteri
    (fun i e ->
      if i > 0 then checkb "arrivals increase" true (e.OL.at > a.(i - 1).OL.at))
    a;
  checkb "duration near ops/rate" true
    (OL.duration a > 1.0 && OL.duration a < 4.0)

let test_open_loop_mix_and_validity () =
  let bound = 4_000 in
  let ks = W.distinct_ints ~seed:5 ~n:500 ~bound in
  let spec =
    { OL.default with OL.seed = 91; ops = 4_000; read_fraction = 0.8; zipf_share = 0.5; bound }
  in
  let events = OL.plan spec ~keys:ks in
  let c = OL.counts events in
  checki "counts partition the plan" 4_000 (c.OL.queries + c.OL.inserts + c.OL.removes);
  checkb "read fraction honored (~0.8)" true
    (abs (c.OL.queries - 3_200) < 200);
  checkb "writes split between insert and remove" true (c.OL.inserts > 100 && c.OL.removes > 100);
  (* Replay against a model set: removes always hit live keys, inserts are
     always fresh and out of the initial key space. *)
  let live = Hashtbl.create 600 in
  Array.iter (fun k -> Hashtbl.replace live k ()) ks;
  Array.iter
    (fun e ->
      match e.OL.op with
      | OL.Query q -> checkb "query in domain" true (q >= 0 && q < bound)
      | OL.Insert k ->
          checkb "insert fresh" true (not (Hashtbl.mem live k));
          checkb "insert from [bound, 2*bound)" true (k >= bound && k < 2 * bound);
          Hashtbl.replace live k ()
      | OL.Remove k ->
          checkb "remove hits a live key" true (Hashtbl.mem live k);
          Hashtbl.remove live k)
    events;
  (* Zipf skew shows: some stored key is queried far above uniform. *)
  let freq = Hashtbl.create 600 in
  Array.iter
    (fun e ->
      match e.OL.op with
      | OL.Query q when Hashtbl.mem live q || Array.mem q ks ->
          Hashtbl.replace freq q (1 + try Hashtbl.find freq q with Not_found -> 0)
      | _ -> ())
    events;
  let hottest = Hashtbl.fold (fun _ c acc -> max c acc) freq 0 in
  checkb "zipf head concentrates queries" true (hottest > 40)

let test_replica_slot_pure_and_spread () =
  let slot = Placement.replica_slot ~seed:7 in
  checki "k=1 always slot 0" 0 (slot ~origin:123 ~level:5 ~k:1);
  checki "pure" (slot ~origin:9 ~level:2 ~k:4) (slot ~origin:9 ~level:2 ~k:4);
  (* All k slots are hit across origins. *)
  let seen = Array.make 4 false in
  for origin = 0 to 63 do
    seen.(slot ~origin ~level:1 ~k:4) <- true
  done;
  checkb "all slots used" true (Array.for_all Fun.id seen)

let suite =
  [
    Alcotest.test_case "pinned hierarchy churn, cache off" `Quick test_pinned_hierarchy_cache_off;
    Alcotest.test_case "pinned blocked churn, cache off" `Quick test_pinned_blocked_cache_off;
    QCheck_alcotest.to_alcotest qcheck_cached_answers_equal;
    QCheck_alcotest.to_alcotest qcheck_blocked_cached_answers_equal;
    Alcotest.test_case "gini non-increasing in k (hierarchy)" `Quick
      test_gini_non_increasing_hierarchy;
    Alcotest.test_case "gini non-increasing in k (blocked)" `Quick test_gini_non_increasing_blocked;
    Alcotest.test_case "hierarchy cache repair lifecycle" `Quick test_hierarchy_cache_repair;
    Alcotest.test_case "blocked cache repair lifecycle" `Quick test_blocked_cache_repair;
    Alcotest.test_case "blocked set_cache round-trip" `Quick test_blocked_set_cache_roundtrip;
    Alcotest.test_case "hierarchy cache charges track growth" `Quick
      test_hierarchy_cache_charges_track_growth;
    Alcotest.test_case "open-loop deterministic replay" `Quick test_open_loop_deterministic_replay;
    Alcotest.test_case "open-loop mix and validity" `Quick test_open_loop_mix_and_validity;
    Alcotest.test_case "replica_slot pure and spreading" `Quick test_replica_slot_pure_and_spread;
  ]
