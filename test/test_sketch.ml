(* Tests for the streaming telemetry primitives: the mergeable quantile
   sketch (exact-mode pinning, bucket-mode error bounds, shard-merge
   partition independence, bounded memory) and the windowed time series.
   The Metrics sample-cap degradation regression lives here too. *)

module Sketch = Skipweb_util.Sketch
module Series = Skipweb_util.Series
module Stats = Skipweb_util.Stats
module Metrics = Skipweb_util.Metrics
module Prng = Skipweb_util.Prng

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* The documented bucket-mode contract: the estimate for quantile q is
   within relative error alpha (plus the 1e-12 zero-bin slack) of the
   exact sample at the nearest rank round (q (n-1)). *)
let nearest_rank sorted q =
  let n = Array.length sorted in
  sorted.(int_of_float (Float.round (q *. float_of_int (n - 1))))

let within_alpha ~alpha est truth =
  Float.abs (est -. truth) <= (alpha *. Float.abs truth) +. 1e-12

let observe_all s xs = Array.iter (Sketch.observe s) xs

(* ------- exact mode: bitwise against Stats ------- *)

let test_exact_mode_pins_stats () =
  let s = Sketch.create ~exact_cap:64 () in
  let g = Prng.create 11 in
  let xs = Array.init 64 (fun _ -> Prng.float g 100.0 -. 50.0) in
  observe_all s xs;
  checkb "still exact" true (Sketch.is_exact s);
  checki "no buckets while exact" 0 (Sketch.bucket_count s);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      checkb
        (Printf.sprintf "q=%.2f bitwise" q)
        true
        (Sketch.quantile s q = Stats.percentile sorted q))
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ];
  (* The sketch summarizes the *sorted* sample (deterministic float
     folds); compare against the same order. *)
  let s' = Stats.summarize (Array.to_list sorted) in
  let sk = Sketch.summary s in
  checkb "summary mean bitwise" true (sk.Stats.mean = s'.Stats.mean);
  checkb "summary stddev bitwise" true (sk.Stats.stddev = s'.Stats.stddev);
  checkb "summary p90 bitwise" true (sk.Stats.p90 = s'.Stats.p90)

let test_cap_crossing_spills () =
  let s = Sketch.create ~exact_cap:8 () in
  for i = 1 to 9 do
    Sketch.observe_int s i
  done;
  checkb "crossed the cap" false (Sketch.is_exact s);
  checkb "buckets materialized" true (Sketch.bucket_count s > 0);
  checki "count survives the spill" 9 (Sketch.count s);
  let sorted = Array.init 9 (fun i -> float_of_int (i + 1)) in
  List.iter
    (fun q ->
      checkb "bound holds after spill" true
        (within_alpha ~alpha:(Sketch.alpha s) (Sketch.quantile s q) (nearest_rank sorted q)))
    [ 0.0; 0.5; 0.9; 1.0 ]

let test_rejects_bad_inputs () =
  Alcotest.check_raises "alpha 0" (Invalid_argument "Sketch.create: alpha must be in (0, 1)")
    (fun () -> ignore (Sketch.create ~alpha:0.0 ()));
  Alcotest.check_raises "alpha 1" (Invalid_argument "Sketch.create: alpha must be in (0, 1)")
    (fun () -> ignore (Sketch.create ~alpha:1.0 ()));
  Alcotest.check_raises "negative cap" (Invalid_argument "Sketch.create: exact_cap must be >= 0")
    (fun () -> ignore (Sketch.create ~exact_cap:(-1) ()));
  let s = Sketch.create () in
  Alcotest.check_raises "NaN rejected" (Invalid_argument "Sketch.observe: NaN sample") (fun () ->
      Sketch.observe s Float.nan);
  Alcotest.check_raises "empty quantile" (Invalid_argument "Sketch.quantile: empty sketch")
    (fun () -> ignore (Sketch.quantile s 0.5))

let test_merge_mismatch_raises () =
  let a = Sketch.create ~alpha:0.01 () and b = Sketch.create ~alpha:0.02 () in
  Alcotest.check_raises "alpha mismatch"
    (Invalid_argument "Sketch.merge: sketches have different alpha or exact_cap") (fun () -> Sketch.merge a b);
  let c = Sketch.create ~exact_cap:16 () and d = Sketch.create ~exact_cap:32 () in
  Alcotest.check_raises "cap mismatch" (Invalid_argument "Sketch.merge: sketches have different alpha or exact_cap")
    (fun () -> Sketch.merge c d)

let test_merge_exact_stays_exact () =
  let a = Sketch.create ~exact_cap:16 () and b = Sketch.create ~exact_cap:16 () in
  List.iter (Sketch.observe a) [ 1.0; 3.0; 5.0 ];
  List.iter (Sketch.observe b) [ 2.0; 4.0 ];
  Sketch.merge a b;
  checkb "union under cap stays exact" true (Sketch.is_exact a);
  checki "counts add" 5 (Sketch.count a);
  checkb "quantile is exact over the union" true (Sketch.quantile a 0.5 = 3.0);
  checkb "src unchanged" true (Sketch.is_exact b && Sketch.count b = 2)

(* ------- partition independence: the jobs-determinism contract ------- *)

(* Split one sample stream into [jobs] contiguous chunks (the Pool's
   static chunking), sketch each shard independently, merge in chunk
   order, and require the export to be byte-identical to the
   single-stream sketch — for jobs in {1, 2, 4}, the contract CI's
   jobs-equivalence leg byte-diffs. *)
let sharded_json xs jobs =
  let n = Array.length xs in
  let merged = Sketch.create ~exact_cap:64 () in
  for c = 0 to jobs - 1 do
    let lo = c * n / jobs and hi = (c + 1) * n / jobs in
    let shard = Sketch.create ~exact_cap:64 () in
    for i = lo to hi - 1 do
      Sketch.observe shard xs.(i)
    done;
    Sketch.merge merged shard
  done;
  Sketch.to_json merged

let test_shard_merge_deterministic () =
  let g = Prng.create 77 in
  (* Heavy-tailed positives, some negatives, zeros and duplicates: the
     value mix most likely to expose bucket-boundary disagreements. *)
  let xs =
    Array.init 1000 (fun i ->
        match i mod 7 with
        | 0 -> 0.0
        | 1 -> -.Float.exp (Prng.float g 10.0)
        | 2 -> 42.0
        | _ -> Float.exp (Prng.float g 14.0))
  in
  let reference = sharded_json xs 1 in
  List.iter
    (fun jobs ->
      check Alcotest.string
        (Printf.sprintf "jobs=%d export identical" jobs)
        reference (sharded_json xs jobs))
    [ 1; 2; 4 ]

let qcheck_shard_merge =
  QCheck.Test.make ~name:"sketch shard-merge is partition independent" ~count:80
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 400) (float_range (-1e6) 1e6))
        (int_range 2 4))
    (fun (xs, jobs) ->
      let xs = Array.of_list xs in
      sharded_json xs 1 = sharded_json xs jobs)

(* ------- bucket-mode error bound, adversarial distributions ------- *)

let check_bounds ?(alpha = 0.01) xs =
  let s = Sketch.create ~alpha ~exact_cap:32 () in
  observe_all s xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  List.for_all
    (fun q -> within_alpha ~alpha (Sketch.quantile s q) (nearest_rank sorted q))
    [ 0.0; 0.01; 0.25; 0.5; 0.9; 0.99; 1.0 ]

let test_error_bound_adversarial () =
  let g = Prng.create 123 in
  (* Heavy tail: (1/(1-u))^3 over u in [0,1) spans ~9 decades. *)
  checkb "heavy tail" true
    (check_bounds (Array.init 5000 (fun _ -> (1.0 /. (1.0 -. Prng.float g 0.999)) ** 3.0)));
  (* All-equal: every quantile must come back within alpha of the value. *)
  checkb "constant" true (check_bounds (Array.make 1000 3.141592653589793));
  (* Signed mix centered on zero, with exact zeros. *)
  checkb "signed with zeros" true
    (check_bounds
       (Array.init 4000 (fun i ->
            if i mod 11 = 0 then 0.0 else Float.exp (Prng.float g 12.0) -. Float.exp (Prng.float g 12.0))));
  (* Two far-apart clusters: percentiles sit on a cliff. *)
  checkb "bimodal cliff" true
    (check_bounds (Array.init 2000 (fun i -> if i mod 2 = 0 then 1e-3 else 1e9)));
  (* Tiny magnitudes near the zero bin's absolute slack. *)
  checkb "subnormal-ish" true
    (check_bounds (Array.init 1000 (fun i -> float_of_int (i - 500) *. 1e-11)))

let qcheck_error_bound =
  QCheck.Test.make ~name:"sketch quantiles within documented error bound" ~count:80
    QCheck.(
      pair
        (list_of_size Gen.(int_range 40 600) (float_range (-1e9) 1e9))
        (int_range 0 2))
    (fun (xs, skew) ->
      QCheck.assume (xs <> []);
      (* Three adversarial reshapings of the raw list: raw, cubed (tail
         stretch), and rounded to 3 values (mass concentration). *)
      let reshape x =
        match skew with
        | 0 -> x
        | 1 -> x *. x *. x /. 1e12
        | _ -> float_of_int (int_of_float (Float.copy_sign (Float.min 1.0 (Float.abs x)) x))
      in
      check_bounds (Array.of_list (List.map reshape xs)))

(* ------- bounded memory ------- *)

let test_bounded_memory_million () =
  let s = Sketch.create () in
  let g = Prng.create 99 in
  for _ = 1 to 1_000_000 do
    Sketch.observe s (1.0 +. Prng.float g 1e6)
  done;
  checki "all observed" 1_000_000 (Sketch.count s);
  checkb "degraded out of exact mode" false (Sketch.is_exact s);
  (* One bucket per gamma factor over [1, 1e6]: ln 1e6 / ln 1.0202 is
     about 700 cells, however many samples went in. *)
  checkb "buckets stay in the hundreds" true (Sketch.bucket_count s < 1000);
  let words = Obj.reachable_words (Obj.repr s) in
  checkb
    (Printf.sprintf "reachable words bounded (%d)" words)
    true (words < 100_000)

(* The Metrics satellite: a histogram fed past its sample cap must have
   transparently degraded to the sketch instead of retaining 10^6
   samples (which would be tens of megabytes of floats). *)
let test_metrics_degrades_to_sketch () =
  let m = Metrics.create ~sample_cap:4096 () in
  let g = Prng.create 7 in
  for _ = 1 to 1_000_000 do
    Metrics.observe m "op.cost" (1.0 +. Prng.float g 1e4)
  done;
  (match Metrics.histogram_sketch m "op.cost" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      checki "count" 1_000_000 (Sketch.count s);
      checkb "degraded past the cap" false (Sketch.is_exact s));
  (match Metrics.histogram_summary m "op.cost" with
  | None -> Alcotest.fail "summary missing"
  | Some s ->
      checki "summary count" 1_000_000 s.Stats.count;
      checkb "mean in range" true (s.Stats.mean > 1.0 && s.Stats.mean < 1e4 +. 1.0));
  let words = Obj.reachable_words (Obj.repr m) in
  checkb
    (Printf.sprintf "registry words bounded (%d)" words)
    true (words < 200_000)

let test_metrics_under_cap_stays_exact () =
  let m = Metrics.create ~sample_cap:64 () in
  for i = 1 to 64 do
    Metrics.observe_int m "h" i
  done;
  (match Metrics.histogram_sketch m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s -> checkb "at the cap still exact" true (Sketch.is_exact s));
  Metrics.observe_int m "h" 65;
  match Metrics.histogram_sketch m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s -> checkb "one past the cap degrades" false (Sketch.is_exact s)

(* ------- windowed time series ------- *)

let test_series_ring () =
  let s = Series.create ~window:3 in
  checki "empty length" 0 (Series.length s);
  checkb "no last" true (Series.last s = None);
  checkb "no summary" true (Series.summary s = None);
  List.iter (Series.push s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  checki "window" 3 (Series.window s);
  checki "total counts everything" 5 (Series.total s);
  checki "length is the window" 3 (Series.length s);
  checkb "oldest two rolled off" true
    (Series.to_list s = [ (2, 3.0); (3, 4.0); (4, 5.0) ]);
  checkb "values" true (Series.values s = [ 3.0; 4.0; 5.0 ]);
  checkb "nth oldest" true (Series.nth s 0 = 3.0);
  checkb "last" true (Series.last s = Some 5.0);
  (match Series.summary s with
  | None -> Alcotest.fail "expected summary"
  | Some sum ->
      check Alcotest.(float 1e-12) "windowed mean" 4.0 sum.Stats.mean;
      checki "windowed count" 3 sum.Stats.count);
  Alcotest.check_raises "nth past window" (Invalid_argument "Series.nth: index out of window")
    (fun () -> ignore (Series.nth s 3))

let test_series_partial_fill () =
  let s = Series.create ~window:8 in
  Series.push s 10.0;
  Series.push s 20.0;
  checki "length below window" 2 (Series.length s);
  checkb "epochs from zero" true (Series.to_list s = [ (0, 10.0); (1, 20.0) ]);
  let j = Series.to_json s in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "json window" true (contains j "\"window\": 8");
  checkb "json first epoch" true (contains j "\"first_epoch\": 0")

let test_series_rejects_bad_window () =
  Alcotest.check_raises "window 0" (Invalid_argument "Series.create: window must be >= 1")
    (fun () -> ignore (Series.create ~window:0))

let qcheck_series_model =
  QCheck.Test.make ~name:"series agrees with take-last model" ~count:120
    QCheck.(
      pair (int_range 1 10) (list_of_size Gen.(int_range 0 50) (float_range (-100.0) 100.0)))
    (fun (window, xs) ->
      let s = Series.create ~window in
      List.iter (Series.push s) xs;
      let n = List.length xs in
      let keep = min n window in
      let expected =
        List.filteri (fun i _ -> i >= n - keep) xs |> List.mapi (fun i v -> (n - keep + i, v))
      in
      Series.to_list s = expected && Series.total s = n && Series.length s = keep)

let suite =
  [
    Alcotest.test_case "exact mode pins Stats bitwise" `Quick test_exact_mode_pins_stats;
    Alcotest.test_case "cap crossing spills to buckets" `Quick test_cap_crossing_spills;
    Alcotest.test_case "bad inputs rejected" `Quick test_rejects_bad_inputs;
    Alcotest.test_case "merge config mismatch raises" `Quick test_merge_mismatch_raises;
    Alcotest.test_case "merge under cap stays exact" `Quick test_merge_exact_stays_exact;
    Alcotest.test_case "shard merge deterministic jobs 1/2/4" `Quick test_shard_merge_deterministic;
    Alcotest.test_case "error bound on adversarial distributions" `Quick test_error_bound_adversarial;
    Alcotest.test_case "bounded memory at 10^6 samples" `Quick test_bounded_memory_million;
    Alcotest.test_case "metrics histogram degrades to sketch" `Quick test_metrics_degrades_to_sketch;
    Alcotest.test_case "metrics histogram exact below cap" `Quick test_metrics_under_cap_stays_exact;
    Alcotest.test_case "series ring semantics" `Quick test_series_ring;
    Alcotest.test_case "series partial fill" `Quick test_series_partial_fill;
    Alcotest.test_case "series rejects bad window" `Quick test_series_rejects_bad_window;
    QCheck_alcotest.to_alcotest qcheck_shard_merge;
    QCheck_alcotest.to_alcotest qcheck_error_bound;
    QCheck_alcotest.to_alcotest qcheck_series_model;
  ]
