(* Tests for Skipweb_trapmap: trapezoidal maps (§3.3, Lemma 5). *)

module TM = Skipweb_trapmap.Trapmap
module Segment = Skipweb_geom.Segment
module Workload = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Pool = Skipweb_util.Pool

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_empty_map () =
  let t = TM.empty () in
  checki "one trapezoid" 1 (TM.trap_count t);
  TM.check_invariants t;
  let tr = TM.locate t (0.5, 0.5) in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "full span" (0.0, 1.0) (TM.trap_xspan tr);
  checkb "box boundaries" true (TM.trap_top tr = None && TM.trap_bottom tr = None)

let test_single_segment () =
  let s = Segment.make ~id:0 (0.2, 0.5) (0.8, 0.6) in
  let t = TM.build [| s |] in
  checki "3n+1" 4 (TM.trap_count t);
  TM.check_invariants t;
  (* Above the segment. *)
  let above = TM.locate t (0.5, 0.9) in
  checkb "above has segment bottom" true
    (match TM.trap_bottom above with Some b -> Segment.id b = 0 | None -> false);
  (* Below the segment. *)
  let below = TM.locate t (0.5, 0.1) in
  checkb "below has segment top" true
    (match TM.trap_top below with Some b -> Segment.id b = 0 | None -> false);
  (* Left of the segment. *)
  let left = TM.locate t (0.1, 0.5) in
  checkb "left is the box slab" true (TM.trap_top left = None && TM.trap_bottom left = None)

let test_two_nested_segments () =
  let s0 = Segment.make ~id:0 (0.1, 0.5) (0.9, 0.5) in
  let s1 = Segment.make ~id:1 (0.3, 0.7) (0.7, 0.75) in
  let t = TM.build [| s0; s1 |] in
  checki "3n+1" 7 (TM.trap_count t);
  TM.check_invariants t;
  (* Between the two segments. *)
  let mid = TM.locate t (0.5, 0.6) in
  checkb "sandwiched" true
    ((match TM.trap_top mid with Some s -> Segment.id s = 1 | None -> false)
    && match TM.trap_bottom mid with Some s -> Segment.id s = 0 | None -> false)

let test_insertion_order_irrelevant () =
  (* The trapezoidal map is canonical; counts and located extents agree
     regardless of insertion order. *)
  let segs = Workload.disjoint_segments ~seed:3 ~n:12 in
  let t1 = TM.build segs in
  let rev = Array.of_list (List.rev (Array.to_list segs)) in
  let t2 = TM.build rev in
  checki "same count" (TM.trap_count t1) (TM.trap_count t2);
  let queries = Workload.trapmap_query_points ~seed:4 ~n:100 in
  Array.iter
    (fun q ->
      match (TM.locate_opt t1 q, TM.locate_opt t2 q) with
      | Some a, Some b ->
          Alcotest.(check (pair (float 1e-9) (float 1e-9)))
            "same x-span" (TM.trap_xspan a) (TM.trap_xspan b)
      | None, None -> ()
      | Some _, None | None, Some _ -> Alcotest.fail "maps disagree on containment")
    queries

let test_build_random_invariants () =
  List.iter
    (fun n ->
      let segs = Workload.disjoint_segments ~seed:(100 + n) ~n in
      let t = TM.build segs in
      TM.check_invariants t;
      checki "3n+1 trapezoids" ((3 * n) + 1) (TM.trap_count t))
    [ 1; 2; 5; 10; 25; 50 ]

let test_locate_total_on_queries () =
  let segs = Workload.disjoint_segments ~seed:7 ~n:30 in
  let t = TM.build segs in
  let queries = Workload.trapmap_query_points ~seed:8 ~n:500 in
  Array.iter
    (fun q ->
      match TM.locate_opt t q with
      | Some tr -> checkb "contains" true (TM.trap_contains tr q)
      | None -> Alcotest.fail "general-position query not located")
    queries

let test_validation_rejects_crossing () =
  let s0 = Segment.make ~id:0 (0.2, 0.2) (0.8, 0.8) in
  let s1 = Segment.make ~id:1 (0.2, 0.8) (0.8, 0.2) in
  let t = TM.empty () in
  TM.insert t s0;
  checkb "crossing rejected" true
    (try
       TM.insert t s1;
       false
     with Invalid_argument _ -> true)

let test_validation_rejects_duplicate_x () =
  let s0 = Segment.make ~id:0 (0.2, 0.2) (0.4, 0.3) in
  let s1 = Segment.make ~id:1 (0.2, 0.6) (0.5, 0.7) in
  let t = TM.empty () in
  TM.insert t s0;
  checkb "duplicate x rejected" true
    (try
       TM.insert t s1;
       false
     with Invalid_argument _ -> true)

let test_validation_rejects_outside_box () =
  let s = Segment.make ~id:0 (-0.1, 0.5) (0.5, 0.5) in
  checkb "outside box rejected" true
    (try
       ignore (TM.build [| s |]);
       false
     with Invalid_argument _ -> true)

let test_trap_intersects_self_map_disjoint () =
  let segs = Workload.disjoint_segments ~seed:9 ~n:20 in
  let t = TM.build segs in
  let traps = Array.of_list (TM.traps t) in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b -> if i < j then checkb "own traps disjoint" false (TM.trap_intersects a b))
        traps)
    traps

let test_conflicts_contain_parent_location () =
  (* Routing soundness: the D(S) trapezoid containing q conflicts with the
     D(T) trapezoid containing q. *)
  let segs = Workload.disjoint_segments ~seed:10 ~n:40 in
  let rng = Prng.create 11 in
  let sub = Array.of_list (List.filter (fun _ -> Prng.bool rng) (Array.to_list segs)) in
  let s = TM.build segs in
  let t = TM.build sub in
  let queries = Workload.trapmap_query_points ~seed:12 ~n:200 in
  Array.iter
    (fun q ->
      match (TM.locate_opt t q, TM.locate_opt s q) with
      | Some child_trap, Some parent_trap ->
          let confl = TM.conflicts s child_trap in
          checkb "parent location among conflicts" true
            (List.exists (fun c -> TM.trap_id c = TM.trap_id parent_trap) confl)
      | (Some _ | None), _ -> ())
    queries

let test_lemma5_exact_formula () =
  (* Lemma 5's exact accounting: |C(t, S)| = 1 + a + 2b + 3c. *)
  let segs = Workload.disjoint_segments ~seed:13 ~n:40 in
  let rng = Prng.create 14 in
  let sub = Array.of_list (List.filter (fun _ -> Prng.bool rng) (Array.to_list segs)) in
  let s = TM.build segs in
  let t = TM.build sub in
  let queries = Workload.trapmap_query_points ~seed:15 ~n:100 in
  Array.iter
    (fun q ->
      match TM.locate_opt t q with
      | None -> ()
      | Some child_trap ->
          let conflicts = List.length (TM.conflicts s child_trap) in
          let formula, (_a, _b, _c) = TM.conflict_formula ~segments:segs child_trap in
          checki "1 + a + 2b + 3c" formula conflicts)
    queries

let test_conflict_formula_empty_difference () =
  (* If T = S, every D(T) trapezoid conflicts only with itself. *)
  let segs = Workload.disjoint_segments ~seed:16 ~n:15 in
  let s = TM.build segs in
  List.iter
    (fun tr ->
      let formula, (a, b, c) = TM.conflict_formula ~segments:segs tr in
      checki "no crossing segments" 0 (a + b + c);
      checki "self conflict only" 1 formula;
      checki "conflict list is itself" 1 (List.length (TM.conflicts s tr)))
    (TM.traps s)

let test_areas_positive () =
  let segs = Workload.disjoint_segments ~seed:17 ~n:25 in
  let t = TM.build segs in
  List.iter (fun tr -> checkb "positive area" true (TM.trap_area tr > 0.0)) (TM.traps t)

let qcheck_build_and_partition =
  QCheck.Test.make ~name:"random maps partition the square" ~count:25
    QCheck.(pair (int_range 0 10_000) (int_range 0 30))
    (fun (seed, n) ->
      let segs = Workload.disjoint_segments ~seed ~n in
      let t = TM.build segs in
      TM.check_invariants t;
      let queries = Workload.trapmap_query_points ~seed:(seed + 1) ~n:50 in
      Array.for_all
        (fun q ->
          match TM.locate_opt t q with Some tr -> TM.trap_contains tr q | None -> false)
        queries)

(* Everything observable about a map, trapezoid ids included. The alive
   list's order is deliberately NOT part of the observable state (the
   batch engine permutes it), so the census is sorted. *)
let trap_census t =
  TM.traps t
  |> List.map (fun tr ->
         ( TM.trap_id tr,
           TM.trap_xspan tr,
           (match TM.trap_top tr with Some s -> Segment.id s | None -> -1),
           match TM.trap_bottom tr with Some s -> Segment.id s | None -> -1 ))
  |> List.sort compare

let test_build_pooled_identical_tids () =
  let segs = Workload.disjoint_segments ~seed:21 ~n:60 in
  (* Reference: the per-segment insert loop in array order. *)
  let tref = TM.empty () in
  Array.iter (fun s -> TM.insert tref s) segs;
  let census = trap_census tref in
  let t = TM.build segs in
  checkb "build = per-insert loop (tids included)" true (trap_census t = census);
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let tp = TM.build ?pool segs in
          TM.check_invariants tp;
          checkb "pooled build bit-identical" true (trap_census tp = census)))
    [ 2; 4 ]

let test_of_sorted_permutation_invariant () =
  let segs = Workload.disjoint_segments ~seed:22 ~n:40 in
  let census = trap_census (TM.of_sorted segs) in
  let rev = Array.of_list (List.rev (Array.to_list segs)) in
  checkb "of_sorted permutation invariant" true (trap_census (TM.of_sorted rev) = census);
  Pool.with_pool ~jobs:4 (fun pool ->
      checkb "pooled of_sorted bit-identical" true (trap_census (TM.of_sorted ?pool rev) = census))

let qcheck_insert_batch_matches_per_key_loop =
  QCheck.Test.make ~name:"trapmap insert_batch = per-key loop (jobs 1/2/4)" ~count:12
    QCheck.(triple (int_range 0 10_000) (int_range 0 25) (int_range 1 25))
    (fun (seed, nbase, nbatch) ->
      let all = Workload.disjoint_segments ~seed ~n:(nbase + nbatch) in
      let base = Array.sub all 0 nbase and batch = Array.sub all nbase nbatch in
      (* Reference: the per-segment delta loop over the same starting map. *)
      let tref = TM.build base in
      let deltas_ref = Array.map (fun s -> TM.insert_delta tref s) batch in
      let census_ref = trap_census tref in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              let t = TM.build ?pool base in
              let deltas = TM.insert_batch ?pool t batch in
              TM.check_invariants t;
              Array.of_list deltas = deltas_ref && trap_census t = census_ref))
        [ 1; 2; 4 ])

let test_batch_rejection_is_atomic () =
  let segs = Workload.disjoint_segments ~seed:23 ~n:10 in
  let t = TM.build segs in
  let census = trap_census t in
  let good = Segment.make ~id:100 (0.001, 0.001) (0.002, 0.001) in
  let outside = Segment.make ~id:102 (-0.5, 0.5) (0.005, 0.5) in
  checkb "invalid batch rejected" true
    (try
       ignore (TM.insert_batch t [| good; outside |]);
       false
     with Invalid_argument _ -> true);
  checkb "map untouched after rejection" true (trap_census t = census);
  TM.check_invariants t

let suite =
  [
    Alcotest.test_case "empty map" `Quick test_empty_map;
    Alcotest.test_case "single segment" `Quick test_single_segment;
    Alcotest.test_case "two nested segments" `Quick test_two_nested_segments;
    Alcotest.test_case "insertion order irrelevant" `Quick test_insertion_order_irrelevant;
    Alcotest.test_case "random builds: invariants + 3n+1" `Quick test_build_random_invariants;
    Alcotest.test_case "locate total" `Quick test_locate_total_on_queries;
    Alcotest.test_case "rejects crossing" `Quick test_validation_rejects_crossing;
    Alcotest.test_case "rejects duplicate x" `Quick test_validation_rejects_duplicate_x;
    Alcotest.test_case "rejects outside box" `Quick test_validation_rejects_outside_box;
    Alcotest.test_case "own trapezoids disjoint" `Quick test_trap_intersects_self_map_disjoint;
    Alcotest.test_case "conflicts contain parent location" `Quick test_conflicts_contain_parent_location;
    Alcotest.test_case "Lemma 5 exact formula" `Quick test_lemma5_exact_formula;
    Alcotest.test_case "T = S means self-conflict only" `Quick test_conflict_formula_empty_difference;
    Alcotest.test_case "areas positive" `Quick test_areas_positive;
    Alcotest.test_case "build ?pool = per-insert loop" `Quick test_build_pooled_identical_tids;
    Alcotest.test_case "of_sorted permutation invariant" `Quick test_of_sorted_permutation_invariant;
    Alcotest.test_case "batch rejection is atomic" `Quick test_batch_rejection_is_atomic;
    QCheck_alcotest.to_alcotest qcheck_build_and_partition;
    QCheck_alcotest.to_alcotest qcheck_insert_batch_matches_per_key_loop;
  ]
