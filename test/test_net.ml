(* Tests for Skipweb_net: the message-counting cost model and the session
   trace layer. *)

module Network = Skipweb_net.Network
module Placement = Skipweb_net.Placement
module Trace = Skipweb_net.Trace
module Obs = Skipweb_net.Observatory
module Sketch = Skipweb_util.Sketch

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_create_bounds () =
  Alcotest.check_raises "zero hosts" (Invalid_argument "Network.create: need at least one host")
    (fun () -> ignore (Network.create ~hosts:0));
  checki "host count" 5 (Network.host_count (Network.create ~hosts:5))

let test_session_counts_crossings () =
  let net = Network.create ~hosts:4 in
  let s = Network.start net 0 in
  checki "no messages at start" 0 (Network.messages s);
  Network.goto s 0;
  checki "same host is free" 0 (Network.messages s);
  Network.goto s 1;
  checki "crossing costs one" 1 (Network.messages s);
  Network.goto s 1;
  checki "staying is free" 0 (Network.messages s - 1);
  Network.goto s 2;
  Network.goto s 3;
  Network.goto s 0;
  checki "four crossings total" 4 (Network.messages s);
  checki "current host" 0 (Network.current s)

let test_total_messages_accumulate () =
  let net = Network.create ~hosts:3 in
  let s1 = Network.start net 0 in
  Network.goto s1 1;
  Network.finish s1;
  let s2 = Network.start net 2 in
  Network.goto s2 0;
  Network.goto s2 1;
  Network.finish s2;
  checki "global total" 3 (Network.total_messages net);
  checki "sessions" 2 (Network.sessions_started net)

let test_traffic_tracking () =
  let net = Network.create ~hosts:3 in
  let s = Network.start net 0 in
  Network.goto s 1;
  Network.goto s 2;
  Network.goto s 1;
  Network.finish s;
  checki "host 1 visited twice" 2 (Network.traffic net 1);
  checki "host 0 visited once (start)" 1 (Network.traffic net 0);
  checki "max traffic" 2 (Network.max_traffic net);
  Network.reset_traffic net;
  checki "reset clears traffic" 0 (Network.traffic net 1);
  checki "reset clears totals" 0 (Network.total_messages net)

(* Pins the deferred-commit contract behind the parallel read path: a
   session buffers its messages and visits locally and charges the
   network only at [finish], so concurrent sessions never race on the
   shared counters and the committed totals are plain sums. *)
let test_deferred_commit () =
  let net = Network.create ~hosts:4 in
  let s = Network.start net 0 in
  Network.goto s 1;
  Network.goto s 2;
  checki "session sees its own cost" 2 (Network.messages s);
  checki "network sees nothing before finish" 0 (Network.total_messages net);
  checki "no traffic before finish" 0 (Network.traffic net 1);
  checki "no session counted before finish" 0 (Network.sessions_started net);
  Network.finish s;
  checki "messages committed" 2 (Network.total_messages net);
  checki "start host visit committed" 1 (Network.traffic net 0);
  checki "hop visits committed" 1 (Network.traffic net 1);
  checki "session counted" 1 (Network.sessions_started net);
  (* finish is idempotent: a second call commits nothing more. *)
  Network.finish s;
  checki "second finish is a no-op (messages)" 2 (Network.total_messages net);
  checki "second finish is a no-op (traffic)" 1 (Network.traffic net 0);
  checki "second finish is a no-op (sessions)" 1 (Network.sessions_started net);
  (* the session stays readable after finish... *)
  checki "messages readable after finish" 2 (Network.messages s);
  checki "current readable after finish" 2 (Network.current s);
  (* ...but cannot move again. *)
  Alcotest.check_raises "goto after finish"
    (Invalid_argument "Network.goto: session already finished") (fun () -> Network.goto s 3)

let test_memory_accounting () =
  let net = Network.create ~hosts:4 in
  Network.charge_memory net 0 10;
  Network.charge_memory net 1 4;
  Network.charge_memory net 0 (-3);
  checki "memory at 0" 7 (Network.memory net 0);
  checki "max memory" 7 (Network.max_memory net);
  checki "total memory" 11 (Network.total_memory net);
  Alcotest.(check (float 1e-9)) "mean memory" 2.75 (Network.mean_memory net)

(* Pins the documented reset_traffic contract: traffic, total_messages and
   sessions_started are one workload window and reset together; memory
   describes the structure and persists. *)
let test_reset_traffic_resets_sessions () =
  let net = Network.create ~hosts:3 in
  let s = Network.start net 0 in
  Network.goto s 1;
  Network.finish s;
  let s' = Network.start net 2 in
  Network.finish s';
  checki "two sessions before reset" 2 (Network.sessions_started net);
  Network.reset_traffic net;
  checki "sessions reset too" 0 (Network.sessions_started net);
  checki "messages reset" 0 (Network.total_messages net);
  checki "traffic reset" 0 (Network.traffic net 1);
  (* The window restarts cleanly. *)
  let s2 = Network.start net 0 in
  Network.goto s2 1;
  Network.finish s2;
  checki "fresh window counts sessions" 1 (Network.sessions_started net);
  checki "fresh window counts messages" 1 (Network.total_messages net)

(* ------- failure model ------- *)

let test_kill_revive_liveness () =
  let net = Network.create ~hosts:4 in
  checki "all live at creation" 4 (Network.live_hosts net);
  checkb "host 2 alive" true (Network.alive net 2);
  Network.kill net 2;
  checkb "host 2 dead" false (Network.alive net 2);
  checki "live count drops" 3 (Network.live_hosts net);
  Network.kill net 2;
  checki "kill is idempotent" 3 (Network.live_hosts net);
  Network.revive net 2;
  checkb "host 2 back" true (Network.alive net 2);
  checki "live count restored" 4 (Network.live_hosts net);
  Network.revive net 2;
  checki "revive is idempotent" 4 (Network.live_hosts net)

let test_cannot_kill_last_live_host () =
  let net = Network.create ~hosts:2 in
  Network.kill net 0;
  Alcotest.check_raises "last live host protected"
    (Invalid_argument "Network.kill: cannot kill the last live host") (fun () ->
      Network.kill net 1)

let test_dead_host_rejects_sessions () =
  let net = Network.create ~hosts:3 in
  Network.kill net 1;
  (match Network.start net 1 with
  | exception Network.Host_dead 1 -> ()
  | _ -> Alcotest.fail "start on a dead host must raise Host_dead");
  let s = Network.start net 0 in
  Network.goto s 2;
  (match Network.goto s 1 with
  | exception Network.Host_dead 1 -> ()
  | _ -> Alcotest.fail "goto a dead host must raise Host_dead");
  (* The failed hop charged nothing and the session is still usable: it
     stayed where it was and may retry against a live replica. *)
  checki "failed hop not charged" 1 (Network.messages s);
  checki "session stayed put" 2 (Network.current s);
  Network.goto s 0;
  Network.finish s;
  checki "session commits normally after a failed hop" 2 (Network.total_messages net)

(* Pins the live-host denominator semantics of mean_traffic, mean_memory
   and congestion: dead hosts serve nothing, so they must not dilute the
   mean load, and a dead host's stranded memory is unreachable, not
   congested. *)
let test_live_host_stats () =
  let net = Network.create ~hosts:4 in
  let s = Network.start net 0 in
  Network.goto s 1;
  Network.goto s 2;
  Network.goto s 3;
  Network.finish s;
  Alcotest.(check (float 1e-9)) "mean traffic over all hosts" 1.0 (Network.mean_traffic net);
  Network.charge_memory net 0 8;
  Network.charge_memory net 1 20;
  Alcotest.(check (float 1e-9)) "mean memory over all hosts" 7.0 (Network.mean_memory net);
  Alcotest.(check (float 1e-9)) "congestion over all hosts" 45.0 (Network.congestion net ~items:100);
  checki "nothing stranded yet" 0 (Network.stranded_memory net);
  Network.kill net 1;
  Network.kill net 3;
  (* Counters are untouched by kill; only the denominators and the
     max-over-live change. *)
  checki "total memory kept" 28 (Network.total_memory net);
  checki "dead host's memory still recorded" 20 (Network.memory net 1);
  checki "stranded = dead hosts' charges" 20 (Network.stranded_memory net);
  Alcotest.(check (float 1e-9)) "mean traffic over live hosts" 2.0 (Network.mean_traffic net);
  Alcotest.(check (float 1e-9)) "mean memory over live hosts" 14.0 (Network.mean_memory net);
  (* Busiest *live* host is 0 (8 units); host 1's 20 stranded units are
     unreachable. Query starts spread over the 2 live hosts. *)
  Alcotest.(check (float 1e-9)) "congestion over live hosts" 58.0 (Network.congestion net ~items:100);
  checki "max_memory still reports stored state" 20 (Network.max_memory net);
  Network.revive net 1;
  Alcotest.(check (float 1e-9))
    "revive restores the denominator" (28.0 /. 3.0) (Network.mean_memory net);
  checki "revived host's memory reachable again" 20 (Network.memory net 1);
  Network.revive net 3;
  checki "nothing stranded after revives" 0 (Network.stranded_memory net)

(* Satellite 3: kill/revive interleaved (sequentially) with open deferred
   charge buffers and reset_traffic — the failure axis and the workload /
   charge machinery are orthogonal. *)
let test_kill_interleaves_with_charges_and_reset () =
  let net = Network.create ~hosts:3 in
  (* A buffer opened before a kill commits the same totals after it. *)
  let c = Network.deferred_charges net in
  Network.charge c 1 5;
  Network.charge c 2 3;
  Network.kill net 1;
  Network.charge c 1 2;
  Network.commit_charges c;
  checki "buffered charges land on the dead host" 7 (Network.memory net 1);
  checki "stranded includes post-kill commits" 7 (Network.stranded_memory net);
  (* reset_traffic keeps its meaning across failures: workload counters
     zero, memory (stranded or not) kept, liveness kept. *)
  let s = Network.start net 0 in
  Network.goto s 2;
  Network.finish s;
  Network.reset_traffic net;
  checki "traffic reset" 0 (Network.traffic net 2);
  checki "messages reset" 0 (Network.total_messages net);
  checki "dead host's memory survives reset" 7 (Network.memory net 1);
  checkb "liveness survives reset" false (Network.alive net 1);
  checki "live count survives reset" 2 (Network.live_hosts net);
  (* Sessions in flight across a kill of an *unvisited* host commit
     normally: kill only gates future hops onto the victim. *)
  let s2 = Network.start net 0 in
  Network.goto s2 2;
  Network.kill net 2;
  (* The session already sits on host 2; it can keep working locally and
     commit — the kill is an epoch boundary, not a mid-session abort. *)
  Network.finish s2;
  checki "in-flight session committed" 1 (Network.total_messages net);
  Network.revive net 1;
  Network.revive net 2;
  checki "all hosts back" 3 (Network.live_hosts net)

(* ------- session tracing ------- *)

(* The exact hop sequence of a traced session: one Hop per boundary
   crossing, in order, with labels; same-host gotos record nothing. *)
let test_trace_exact_hop_sequence () =
  let net = Network.create ~hosts:4 in
  let tr = Trace.create () in
  let s = Network.start ~trace:tr net 0 in
  Network.goto s 0;  (* free and unrecorded *)
  Network.goto ~label:"up" s 2;
  Network.goto s 2;  (* free and unrecorded *)
  Network.goto ~label:"down" s 1;
  Network.goto s 3;  (* unlabeled crossing *)
  checki "three messages" 3 (Network.messages s);
  let expected =
    [
      Trace.Hop { src = 0; dst = 2; label = Some "up" };
      Trace.Hop { src = 2; dst = 1; label = Some "down" };
      Trace.Hop { src = 1; dst = 3; label = None };
    ]
  in
  Alcotest.(check bool) "exact hop sequence" true (Trace.events tr = expected);
  checki "total hops = messages" (Network.messages s) (Trace.total_hops tr)

let test_trace_untraced_session_free () =
  let net = Network.create ~hosts:2 in
  let s = Network.start net 0 in
  Network.goto ~label:"ignored" s 1;
  checkb "no trace attached" true (Network.session_trace s = None);
  checki "label never affects cost" 1 (Network.messages s)

let test_trace_spans_and_attribution () =
  let net = Network.create ~hosts:8 in
  let tr = Trace.create () in
  let s = Network.start ~trace:tr net 0 in
  Trace.span_open tr ~level:2 "top";
  Network.goto s 1;
  Network.goto s 2;
  (* An inner span without a level inherits the enclosing level. *)
  Trace.span_open tr "inner";
  Network.goto s 3;
  Trace.span_close tr ~note:"inner done" ();
  Trace.span_close tr ();
  Trace.span_open tr ~level:0 "bottom";
  Network.goto s 4;
  Trace.span_close tr ();
  Network.goto s 5;  (* outside every span *)
  Alcotest.(check (list (pair int int)))
    "per-level attribution" [ (0, 1); (2, 3) ] (Trace.per_level_hops tr);
  checki "unattributed" 1 (Trace.unattributed_hops tr);
  checki "everything accounted" (Trace.total_hops tr)
    (1 + List.fold_left (fun acc (_, c) -> acc + c) 0 (Trace.per_level_hops tr));
  (* Render mentions spans, hops and the note. *)
  let r = Trace.render tr in
  let contains needle =
    let nl = String.length needle and hl = String.length r in
    let rec go i = i + nl <= hl && (String.sub r i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "render has span" true (contains "top (level 2)");
  checkb "render has note" true (contains "= inner done");
  checkb "json is an array" true (String.length (Trace.to_json tr) > 2 && (Trace.to_json tr).[0] = '[')

let test_trace_unbalanced_span_rejected () =
  let tr = Trace.create () in
  Alcotest.check_raises "close without open"
    (Invalid_argument "Trace.span_close: no open span") (fun () -> Trace.span_close tr ());
  Trace.span_open tr "a";
  Trace.span_close tr ();
  Alcotest.check_raises "second close without open"
    (Invalid_argument "Trace.span_close: no open span") (fun () -> Trace.span_close tr ())

let test_trace_clear_reuses_buffer () =
  let tr = Trace.create () in
  Trace.span_open tr ~level:1 "x";
  Trace.hop tr ~src:0 ~dst:1 ();
  Trace.clear tr;
  checki "no events after clear" 0 (List.length (Trace.events tr));
  checki "no hops after clear" 0 (Trace.total_hops tr);
  (* clear also forgets open spans. *)
  Alcotest.check_raises "stack cleared" (Invalid_argument "Trace.span_close: no open span")
    (fun () -> Trace.span_close tr ())

let test_memory_survives_traffic_reset () =
  let net = Network.create ~hosts:2 in
  Network.charge_memory net 0 5;
  Network.reset_traffic net;
  checki "memory kept" 5 (Network.memory net 0)

let test_congestion_measure () =
  let net = Network.create ~hosts:10 in
  Network.charge_memory net 3 20;
  Alcotest.(check (float 1e-9)) "congestion = max mem + n/H" 30.0 (Network.congestion net ~items:100)

let test_bad_host_rejected () =
  let net = Network.create ~hosts:2 in
  Alcotest.check_raises "bad host" (Invalid_argument "Network: bad host 2 (H=2)") (fun () ->
      Network.charge_memory net 2 1)

let test_placement_one_per_host () = checki "identity" 7 (Placement.one_per_host 7)

let test_placement_modulo () =
  checki "wraps" 1 (Placement.modulo ~hosts:3 7);
  checki "small" 2 (Placement.modulo ~hosts:3 2)

let test_placement_chunked () =
  let p = Placement.chunked ~chunk:4 ~hosts:3 in
  checki "first chunk" 0 (p 3);
  checki "second chunk" 1 (p 4);
  checki "wraps around" 0 (p 12);
  Alcotest.check_raises "chunk >= 1" (Invalid_argument "Placement.chunked: chunk must be >= 1")
    (fun () -> ignore (Placement.chunked ~chunk:0 ~hosts:3 1))

let test_placement_hashed_deterministic () =
  let p = Placement.hashed ~seed:9 ~hosts:16 in
  checki "stable" (p 123) (p 123);
  let q = Placement.hashed ~seed:10 ~hosts:16 in
  (* Different seeds should disagree on at least one of a few probes. *)
  checkb "seed matters" true (List.exists (fun i -> p i <> q i) [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let test_placement_hashed_spreads () =
  let hosts = 8 in
  let p = Placement.hashed ~seed:3 ~hosts in
  let counts = Array.make hosts 0 in
  for i = 0 to 7999 do
    let h = p i in
    counts.(h) <- counts.(h) + 1
  done;
  Array.iter (fun c -> checkb "roughly uniform" true (c > 700 && c < 1300)) counts

let test_charge_all () =
  let net = Network.create ~hosts:4 in
  Placement.charge_all net (Placement.modulo ~hosts:4) ~items:10;
  checki "host 0 gets ceil share" 3 (Network.memory net 0);
  checki "host 3 gets floor share" 2 (Network.memory net 3);
  checki "total" 10 (Network.total_memory net)

(* ------- observability tap + congestion observatory ------- *)

(* The tap sees exactly what each finished session commits: the visit
   multiset (newest first, start host included) and the message count.
   Unfinished sessions are never reported. *)
let test_tap_sees_finished_sessions () =
  let net = Network.create ~hosts:4 in
  let seen = ref [] in
  Network.set_tap net (Some (fun ~visits ~msgs -> seen := (visits, msgs) :: !seen));
  let s = Network.start net 0 in
  Network.goto s 2;
  Network.goto s 1;
  checkb "nothing before finish" true (!seen = []);
  Network.finish s;
  checkb "visits newest first, start included" true (!seen = [ ([ 1; 2; 0 ], 2) ]);
  Network.finish s;
  checkb "idempotent finish reports once" true (List.length !seen = 1);
  (* An abandoned session never reports. *)
  let s2 = Network.start net 3 in
  Network.goto s2 0;
  ignore s2;
  Network.set_tap net None;
  let s3 = Network.start net 1 in
  Network.finish s3;
  checkb "removed tap is silent" true (List.length !seen = 1)

(* Charge-invisibility, the same contract tracing pins: attaching an
   observatory must not change one committed counter. *)
let test_tap_charge_invisible () =
  let run tapped =
    let net = Network.create ~hosts:8 in
    let obs = Obs.create () in
    if tapped then Obs.attach obs net;
    for i = 0 to 9 do
      let s = Network.start net (i mod 8) in
      Network.goto s ((i + 3) mod 8);
      Network.goto s ((i + 5) mod 8);
      Network.finish s
    done;
    ( Network.total_messages net,
      Network.sessions_started net,
      Array.init 8 (Network.traffic net) )
  in
  checkb "tap changes no counter" true (run true = run false)

let test_heavy_hitters_semantics () =
  let hh = Obs.Heavy_hitters.create ~k:2 in
  checki "capacity" 2 (Obs.Heavy_hitters.capacity hh);
  List.iter (Obs.Heavy_hitters.hit hh ?count:None) [ 7; 7; 7; 5; 5 ];
  Obs.Heavy_hitters.hit hh ~count:4 9;
  (* 9 evicted the (cnt, key)-minimum entry 5 (cnt 2): it enters with
     estimate 2 + 4 = 6 and error 2. *)
  checki "total counts everything" 9 (Obs.Heavy_hitters.total hh);
  checki "monitored bounded by k" 2 (Obs.Heavy_hitters.monitored hh);
  checkb "top order and guarantees" true
    (Obs.Heavy_hitters.top hh = [ (9, 6, 2); (7, 3, 0) ]);
  (* est >= true and est - err <= true for every monitored key. *)
  List.iter
    (fun (key, est, err) ->
      let true_count = match key with 7 -> 3 | 9 -> 4 | _ -> 0 in
      checkb "never undercounts" true (est >= true_count);
      checkb "overcount bounded by err" true (est - err <= true_count))
    (Obs.Heavy_hitters.top hh);
  Alcotest.check_raises "k >= 1" (Invalid_argument "Heavy_hitters.create: k must be >= 1")
    (fun () -> ignore (Obs.Heavy_hitters.create ~k:0))

let test_gini_known_values () =
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Obs.gini [||]);
  Alcotest.(check (float 1e-9)) "all zero" 0.0 (Obs.gini [| 0.0; 0.0 |]);
  Alcotest.(check (float 1e-9)) "perfectly even" 0.0 (Obs.gini [| 5.0; 5.0; 5.0; 5.0 |]);
  (* One host carries everything: G = (n-1)/n = 0.75 for n = 4. *)
  Alcotest.(check (float 1e-9)) "maximal skew" 0.75 (Obs.gini [| 0.0; 0.0; 0.0; 10.0 |]);
  (* Hand-computed: sorted [1;2;3;4], G = 2*30/(4*10) - 5/4 = 0.25. *)
  Alcotest.(check (float 1e-9)) "linear ramp" 0.25 (Obs.gini [| 4.0; 1.0; 3.0; 2.0 |])

let test_congestion_of_live_hosts_only () =
  let net = Network.create ~hosts:4 in
  let s = Network.start net 0 in
  Network.goto s 1;
  Network.goto s 2;
  Network.goto s 1;
  Network.finish s;
  let c = Obs.congestion_of net in
  checki "live" 4 c.Obs.live;
  checki "total over live" 4 c.Obs.total_traffic;
  Alcotest.(check (float 1e-9)) "max" 2.0 c.Obs.max;
  (* Kill the hottest host: the snapshot now describes the survivors. *)
  Network.kill net 1;
  let c = Obs.congestion_of net in
  checki "live after kill" 3 c.Obs.live;
  checki "dead host's visits excluded" 2 c.Obs.total_traffic;
  Alcotest.(check (float 1e-9)) "max over live" 1.0 c.Obs.max

let test_observatory_streams_and_attributes () =
  let net = Network.create ~hosts:6 in
  let obs = Obs.create ~k:4 ~exact_cap:8 () in
  Obs.attach obs net;
  for _ = 1 to 3 do
    let s = Network.start net 0 in
    Network.goto s 5;
    Network.finish s
  done;
  Obs.detach net;
  checki "ops streamed" 3 (Obs.ops obs);
  checki "visits streamed" 6 (Obs.visits_seen obs);
  checkb "hot hosts carry both endpoints" true
    (List.map (fun (h, c, _) -> (h, c)) (Obs.hot_hosts obs) = [ (0, 3); (5, 3) ]);
  (match Obs.message_summary obs with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      checki "sketch count" 3 s.Skipweb_util.Stats.count;
      Alcotest.(check (float 1e-9)) "every op cost 1" 1.0 s.Skipweb_util.Stats.mean);
  (* Trace attribution folds per-level hops across samples. *)
  let tr = Trace.create () in
  let s = Network.start ~trace:tr net 0 in
  Trace.span_open tr ~level:1 "walk";
  Network.goto s 2;
  Network.goto s 3;
  Trace.span_close tr ();
  Network.goto s 4;
  Network.finish s;
  Obs.observe_trace obs tr;
  Obs.observe_trace obs tr;
  checki "traced ops" 2 (Obs.traced_ops obs);
  checkb "per-level doubled" true (Obs.per_level_hops obs = [ (1, 4) ]);
  checki "unattributed doubled" 2 (Obs.unattributed_hops obs)

(* The post-phase feeding path: exact per-host counters arrive as
   weighted hits in host order, so the summary is a pure function of
   the counters — the determinism the parallel benches rely on. *)
let test_observe_traffic_deterministic () =
  let feed () =
    let net = Network.create ~hosts:5 in
    for i = 0 to 3 do
      let s = Network.start net i in
      Network.goto s 4;
      Network.finish s
    done;
    let obs = Obs.create ~k:3 () in
    Obs.observe_traffic obs net;
    (Obs.hot_hosts obs, Obs.visits_seen obs)
  in
  let top, total = feed () in
  checkb "two runs agree exactly" true ((top, total) = feed ());
  checki "weighted total = all visits" 8 total;
  (* Host 4 (true count 4) leads; its estimate obeys the space-saving
     guarantees even though the k = 3 table churned while filling. *)
  checkb "hottest host leads within bounds" true
    (match top with (4, est, err) :: _ -> est >= 4 && est - err <= 4 | _ -> false)

let test_merge_message_shard () =
  let obs = Obs.create ~exact_cap:8 () in
  let shard1 = Sketch.create ~exact_cap:8 () and shard2 = Sketch.create ~exact_cap:8 () in
  List.iter (Sketch.observe_int shard1) [ 1; 2 ];
  List.iter (Sketch.observe_int shard2) [ 3; 4; 5 ];
  Obs.merge_message_shard obs ~ops:2 shard1;
  Obs.merge_message_shard obs ~ops:3 shard2;
  checki "ops accumulate" 5 (Obs.ops obs);
  checki "sketch holds the union" 5 (Sketch.count (Obs.message_sketch obs));
  match Obs.message_summary obs with
  | None -> Alcotest.fail "expected summary"
  | Some s -> Alcotest.(check (float 1e-9)) "union median" 3.0 s.Skipweb_util.Stats.p50

let qcheck_goto_nonnegative =
  QCheck.Test.make ~name:"message count equals host changes" ~count:300
    QCheck.(pair (int_range 1 20) (list_of_size Gen.(int_range 0 50) (int_range 0 19)))
    (fun (hosts, moves) ->
      let moves = List.map (fun m -> m mod hosts) moves in
      let net = Network.create ~hosts in
      let s = Network.start net 0 in
      let expected = ref 0 in
      let cur = ref 0 in
      List.iter
        (fun h ->
          if h <> !cur then incr expected;
          cur := h;
          Network.goto s h)
        moves;
      Network.messages s = !expected)

let suite =
  [
    Alcotest.test_case "create bounds" `Quick test_create_bounds;
    Alcotest.test_case "session counts crossings" `Quick test_session_counts_crossings;
    Alcotest.test_case "total messages accumulate" `Quick test_total_messages_accumulate;
    Alcotest.test_case "traffic tracking" `Quick test_traffic_tracking;
    Alcotest.test_case "deferred commit at finish" `Quick test_deferred_commit;
    Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
    Alcotest.test_case "reset_traffic resets sessions too" `Quick test_reset_traffic_resets_sessions;
    Alcotest.test_case "kill/revive liveness" `Quick test_kill_revive_liveness;
    Alcotest.test_case "cannot kill last live host" `Quick test_cannot_kill_last_live_host;
    Alcotest.test_case "dead host rejects sessions" `Quick test_dead_host_rejects_sessions;
    Alcotest.test_case "live-host stats semantics" `Quick test_live_host_stats;
    Alcotest.test_case "kill interleaves with charges and reset" `Quick
      test_kill_interleaves_with_charges_and_reset;
    Alcotest.test_case "trace exact hop sequence" `Quick test_trace_exact_hop_sequence;
    Alcotest.test_case "trace untraced session free" `Quick test_trace_untraced_session_free;
    Alcotest.test_case "trace spans and attribution" `Quick test_trace_spans_and_attribution;
    Alcotest.test_case "trace unbalanced span rejected" `Quick test_trace_unbalanced_span_rejected;
    Alcotest.test_case "trace clear reuses buffer" `Quick test_trace_clear_reuses_buffer;
    Alcotest.test_case "memory survives traffic reset" `Quick test_memory_survives_traffic_reset;
    Alcotest.test_case "congestion measure" `Quick test_congestion_measure;
    Alcotest.test_case "bad host rejected" `Quick test_bad_host_rejected;
    Alcotest.test_case "placement one per host" `Quick test_placement_one_per_host;
    Alcotest.test_case "placement modulo" `Quick test_placement_modulo;
    Alcotest.test_case "placement chunked" `Quick test_placement_chunked;
    Alcotest.test_case "placement hashed deterministic" `Quick test_placement_hashed_deterministic;
    Alcotest.test_case "placement hashed spreads" `Quick test_placement_hashed_spreads;
    Alcotest.test_case "charge all" `Quick test_charge_all;
    Alcotest.test_case "tap sees finished sessions" `Quick test_tap_sees_finished_sessions;
    Alcotest.test_case "tap is charge-invisible" `Quick test_tap_charge_invisible;
    Alcotest.test_case "heavy hitters semantics" `Quick test_heavy_hitters_semantics;
    Alcotest.test_case "gini known values" `Quick test_gini_known_values;
    Alcotest.test_case "congestion over live hosts" `Quick test_congestion_of_live_hosts_only;
    Alcotest.test_case "observatory streams and attributes" `Quick
      test_observatory_streams_and_attributes;
    Alcotest.test_case "observe_traffic deterministic" `Quick test_observe_traffic_deterministic;
    Alcotest.test_case "merge message shard" `Quick test_merge_message_shard;
    QCheck_alcotest.to_alcotest qcheck_goto_nonnegative;
  ]
