(* Tests for Skipweb_quadtree: compressed quadtrees/octrees (§3.1). *)

module Q = Skipweb_quadtree.Cqtree
module Point = Skipweb_geom.Point
module Workload = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let pts2 xs = Array.of_list (List.map (fun (x, y) -> Point.create [ x; y ]) xs)

let test_empty () =
  let t = Q.build ~dim:2 [||] in
  checki "no points" 0 (Q.size t);
  checki "just the root" 1 (Q.node_count t);
  Q.check_invariants t

let test_singleton () =
  let t = Q.build ~dim:2 (pts2 [ (0.3, 0.7) ]) in
  checki "one point" 1 (Q.size t);
  checki "root + leaf" 2 (Q.node_count t);
  Q.check_invariants t

let test_duplicates_collapse () =
  let t = Q.build ~dim:2 (pts2 [ (0.3, 0.7); (0.3, 0.7); (0.1, 0.1) ]) in
  checki "two distinct points" 2 (Q.size t);
  Q.check_invariants t

let test_four_corners () =
  let t = Q.build ~dim:2 (pts2 [ (0.1, 0.1); (0.9, 0.1); (0.1, 0.9); (0.9, 0.9) ]) in
  checki "four points" 4 (Q.size t);
  Q.check_invariants t;
  (* The root splits immediately: its four children are the four leaves'
     top-level structures. *)
  checkb "shallow tree" true (Q.depth t <= 2)

let test_node_count_linear () =
  let pts = Workload.uniform_points ~seed:3 ~n:1000 ~dim:2 in
  let t = Q.build ~dim:2 pts in
  Q.check_invariants t;
  checkb "O(n) nodes" true (Q.node_count t <= 2 * Q.size t + 1)

let test_diagonal_is_deep () =
  let pts = Workload.diagonal_points ~n:25 ~dim:2 in
  let t = Q.build ~dim:2 pts in
  Q.check_invariants t;
  checkb "adversarial input is deep" true (Q.depth t >= 20);
  checkb "cube depth grows with n" true (Q.max_cube_depth t >= 20)

let test_locate_contains_query () =
  let pts = Workload.uniform_points ~seed:5 ~n:300 ~dim:2 in
  let t = Q.build ~dim:2 pts in
  let queries = Workload.uniform_query_points ~seed:6 ~n:100 ~dim:2 in
  Array.iter
    (fun q ->
      let loc, path = Q.locate t q in
      let depth_of n = fst (Q.node_cube n) in
      (* The path is strictly descending and starts at the root. *)
      (match path with
      | first :: _ -> checki "path starts at root" (Q.node_id (Q.root t)) (Q.node_id first)
      | [] -> Alcotest.fail "empty path");
      let rec strictly_deeper = function
        | a :: (b :: _ as rest) ->
            checkb "descending" true (depth_of a < depth_of b);
            strictly_deeper rest
        | [ _ ] | [] -> ()
      in
      strictly_deeper path;
      (* Last path node is the located node. *)
      match List.rev path with
      | last :: _ -> checki "path ends at location" (Q.node_id loc.Q.node) (Q.node_id last)
      | [] -> Alcotest.fail "empty path")
    queries

let test_locate_exact_point () =
  let pts = Workload.uniform_points ~seed:7 ~n:50 ~dim:2 in
  let t = Q.build ~dim:2 pts in
  Array.iter
    (fun p ->
      let loc, _ = Q.locate t p in
      match loc.Q.slot with
      | Q.At_point -> (
          match Q.node_point loc.Q.node with
          | Some stored -> checkb "found the right leaf" true (Point.dist stored p < 1e-6)
          | None -> Alcotest.fail "located non-leaf for a stored point")
      | Q.Empty_quadrant _ | Q.Outside_child _ -> Alcotest.fail "stored point not located")
    pts

let test_incremental_matches_bulk () =
  (* The compressed quadtree is canonical: bulk build and incremental
     inserts must produce identical cube sets. *)
  let pts = Workload.uniform_points ~seed:8 ~n:200 ~dim:2 in
  let bulk = Q.build ~dim:2 pts in
  let inc = Q.build ~dim:2 [||] in
  Array.iter (fun p -> ignore (Q.insert inc p)) pts;
  Q.check_invariants inc;
  checki "same node count" (Q.node_count bulk) (Q.node_count inc);
  checki "same size" (Q.size bulk) (Q.size inc);
  checki "same depth" (Q.depth bulk) (Q.depth inc);
  (* Every bulk node cube exists in the incremental tree. *)
  Array.iter
    (fun p ->
      let loc_b, _ = Q.locate bulk p in
      let loc_i, _ = Q.locate inc p in
      checkb "same located cube" true (Q.node_cube loc_b.Q.node = Q.node_cube loc_i.Q.node))
    pts

let test_insert_then_remove_roundtrip () =
  let pts = Workload.uniform_points ~seed:9 ~n:150 ~dim:2 in
  let t = Q.build ~dim:2 pts in
  let before = Q.node_count t in
  let extra = Point.create [ 0.123456; 0.654321 ] in
  checkb "insert ok" true (Q.insert t extra);
  checkb "insert dup rejected" false (Q.insert t extra);
  Q.check_invariants t;
  checkb "remove ok" true (Q.remove t extra);
  checkb "remove twice rejected" false (Q.remove t extra);
  Q.check_invariants t;
  checki "node count restored" before (Q.node_count t);
  checki "size restored" 150 (Q.size t)

let test_remove_all () =
  let pts = Workload.uniform_points ~seed:10 ~n:64 ~dim:2 in
  let t = Q.build ~dim:2 pts in
  Array.iter (fun p -> checkb "removed" true (Q.remove t p)) pts;
  Q.check_invariants t;
  checki "empty again" 0 (Q.size t);
  checki "only root remains" 1 (Q.node_count t)

let test_three_dimensions () =
  let pts = Workload.uniform_points ~seed:11 ~n:400 ~dim:3 in
  let t = Q.build ~dim:3 pts in
  Q.check_invariants t;
  checki "octree holds all" 400 (Q.size t);
  let q = Point.create [ 0.5; 0.5; 0.5 ] in
  let _loc, path = Q.locate t q in
  checkb "octree locate terminates quickly" true (List.length path <= Q.depth t + 1)

let test_nearest_matches_brute_force () =
  let pts = Workload.uniform_points ~seed:12 ~n:500 ~dim:2 in
  let t = Q.build ~dim:2 pts in
  let queries = Workload.uniform_query_points ~seed:13 ~n:50 ~dim:2 in
  Array.iter
    (fun q ->
      match Q.nearest t q with
      | None -> Alcotest.fail "nonempty tree"
      | Some (_, d) ->
          let brute = Array.fold_left (fun acc p -> Float.min acc (Point.dist p q)) infinity pts in
          Alcotest.(check (float 1e-9)) "exact NN distance" brute d)
    queries

let test_node_of_cube_lookup () =
  let pts = Workload.uniform_points ~seed:14 ~n:100 ~dim:2 in
  let t = Q.build ~dim:2 pts in
  let loc, path = Q.locate t (Point.create [ 0.25; 0.75 ]) in
  ignore loc;
  List.iter
    (fun n ->
      match Q.node_of_cube t (Q.node_cube n) with
      | Some m -> checki "index finds the node" (Q.node_id n) (Q.node_id m)
      | None -> Alcotest.fail "node missing from cube index")
    path

let test_subset_cubes_exist_in_superset () =
  (* The property underpinning skip-web refinement (§2.3): every node cube
     of D(T) is a node cube of D(S) for T ⊆ S. *)
  let rng = Prng.create 15 in
  let pts = Workload.uniform_points ~seed:16 ~n:300 ~dim:2 in
  let sub = Array.of_list (List.filter (fun _ -> Prng.bool rng) (Array.to_list pts)) in
  let s = Q.build ~dim:2 pts in
  let t = Q.build ~dim:2 sub in
  (* Walk all of t's nodes via located paths of its own points. *)
  Array.iter
    (fun p ->
      let _, path = Q.locate t p in
      List.iter
        (fun n ->
          checkb "T-cube exists in S" true (Q.node_of_cube s (Q.node_cube n) <> None))
        path)
    sub

let test_refinement_soundness () =
  (* locate in D(T), then continue from the same cube in D(S): must land on
     the same node as locating directly in D(S). *)
  let rng = Prng.create 17 in
  let pts = Workload.uniform_points ~seed:18 ~n:400 ~dim:2 in
  let sub = Array.of_list (List.filter (fun _ -> Prng.bool rng) (Array.to_list pts)) in
  let s = Q.build ~dim:2 pts in
  let t = Q.build ~dim:2 sub in
  let queries = Workload.uniform_query_points ~seed:19 ~n:100 ~dim:2 in
  Array.iter
    (fun q ->
      let loc_t, _ = Q.locate t q in
      match Q.node_of_cube s (Q.node_cube loc_t.Q.node) with
      | None -> Alcotest.fail "refinement start cube missing in superset"
      | Some start ->
          let loc_s, _ = Q.locate_from s start q in
          let direct, _ = Q.locate s q in
          checkb "refined = direct" true
            (Q.node_cube loc_s.Q.node = Q.node_cube direct.Q.node))
    queries

let test_gap_count_small_on_random_halves () =
  let pts = Workload.uniform_points ~seed:20 ~n:1000 ~dim:2 in
  let rng = Prng.create 21 in
  let sub = Array.of_list (List.filter (fun _ -> Prng.bool rng) (Array.to_list pts)) in
  let s = Q.build ~dim:2 pts in
  let t = Q.build ~dim:2 sub in
  let queries = Workload.uniform_query_points ~seed:22 ~n:200 ~dim:2 in
  let total = ref 0 in
  Array.iter
    (fun q ->
      let loc_t, _ = Q.locate t q in
      let start_cube = Q.node_cube loc_t.Q.node in
      match Q.node_of_cube s start_cube with
      | None -> Alcotest.fail "cube missing"
      | Some start ->
          let _, path = Q.locate_from s start q in
          total := !total + List.length path)
    queries;
  let mean = float_of_int !total /. 200.0 in
  (* Lemma 3: expected O(1) refinement work; generous empirical bound. *)
  checkb "refinement descent short on average" true (mean < 8.0)

let qcheck_build_invariants =
  QCheck.Test.make ~name:"build invariants on random point sets" ~count:60
    QCheck.(pair small_int (int_range 0 300))
    (fun (seed, n) ->
      let pts = Workload.uniform_points ~seed ~n ~dim:2 in
      let t = Q.build ~dim:2 pts in
      Q.check_invariants t;
      Q.size t <= n)

let qcheck_insert_remove_invariants =
  QCheck.Test.make ~name:"random insert/remove keeps invariants" ~count:40
    QCheck.(pair small_int (int_range 1 120))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let t = Q.build ~dim:2 [||] in
      let live = ref [] in
      for _ = 1 to n do
        if Prng.bool rng || !live = [] then begin
          let p = Point.create [ Prng.float rng 1.0; Prng.float rng 1.0 ] in
          if Q.insert t p then live := p :: !live
        end
        else begin
          match !live with
          | p :: rest ->
              ignore (Q.remove t p);
              live := rest
          | [] -> ()
        end;
        Q.check_invariants t
      done;
      Q.size t = List.length !live)



let test_range_queries () =
  let pts = Workload.uniform_points ~seed:40 ~n:600 ~dim:2 in
  let t = Q.build ~dim:2 pts in
  let boxes =
    [ (0.1, 0.1, 0.4, 0.5); (0.0, 0.0, 0.999, 0.999); (0.5, 0.5, 0.50001, 0.50001); (0.2, 0.8, 0.9, 0.95) ]
  in
  List.iter
    (fun (x0, y0, x1, y1) ->
      let lo = Point.create [ x0; y0 ] and hi = Point.create [ x1; y1 ] in
      let oracle =
        Array.to_list pts
        |> List.filter (fun p -> p.(0) >= x0 && p.(0) <= x1 && p.(1) >= y0 && p.(1) <= y1)
        |> List.length
      in
      (* Grid snapping moves points by < 2^-30, well under workload spacing. *)
      checki "range count = oracle" oracle (Q.range_count t ~lo ~hi);
      checki "report length = count" (Q.range_count t ~lo ~hi) (List.length (Q.range_report t ~lo ~hi));
      List.iter
        (fun p ->
          checkb "reported point inside box" true
            (p.(0) >= x0 -. 1e-8 && p.(0) <= x1 +. 1e-8 && p.(1) >= y0 -. 1e-8 && p.(1) <= y1 +. 1e-8))
        (Q.range_report t ~lo ~hi))
    boxes

let test_range_empty_box_rejected () =
  let t = Q.build ~dim:2 (pts2 [ (0.5, 0.5) ]) in
  checkb "inverted box rejected" true
    (try
       ignore (Q.range_count t ~lo:(Point.create [ 0.9; 0.1 ]) ~hi:(Point.create [ 0.1; 0.9 ]));
       false
     with Invalid_argument _ -> true)

(* ------- the sequential skip quadtree (reference [6]) ------- *)

module SQ = Skipweb_quadtree.Skip_qtree

let test_skipqtree_build_and_locate () =
  let pts = Workload.uniform_points ~seed:30 ~n:500 ~dim:2 in
  let sq = SQ.build ~seed:31 ~dim:2 pts in
  SQ.check_invariants sq;
  checki "size" 500 (SQ.size sq);
  checkb "levels about log n" true (SQ.levels sq >= 5 && SQ.levels sq <= 30);
  let oracle = Q.build ~dim:2 pts in
  let queries = Workload.uniform_query_points ~seed:32 ~n:100 ~dim:2 in
  Array.iter
    (fun q ->
      let loc, steps = SQ.locate sq q in
      let direct, _ = Q.locate oracle q in
      checkb "same located cell" true (Q.node_cube loc.Q.node = Q.node_cube direct.Q.node);
      checkb "steps bounded" true (steps >= 1 && steps < 200))
    queries

let test_skipqtree_fast_on_deep_input () =
  let pts = Workload.diagonal_points ~n:25 ~dim:2 in
  let sq = SQ.build ~seed:33 ~dim:2 pts in
  let oracle = Q.build ~dim:2 pts in
  checkb "oracle deep" true (Q.depth oracle >= 20);
  let queries = Workload.uniform_query_points ~seed:34 ~n:100 ~dim:2 in
  let total = ref 0 in
  Array.iter
    (fun q ->
      let _, steps = SQ.locate sq q in
      total := !total + steps)
    queries;
  checkb "locate steps logarithmic" true (float_of_int !total /. 100.0 < 15.0)

let test_skipqtree_insert_remove () =
  let pts = Workload.uniform_points ~seed:35 ~n:100 ~dim:2 in
  let sq = SQ.build ~seed:36 ~dim:2 pts in
  let extra = Point.create [ 0.421; 0.887 ] in
  checkb "insert" true (SQ.insert sq extra);
  checkb "dup insert" false (SQ.insert sq extra);
  SQ.check_invariants sq;
  checki "grew" 101 (SQ.size sq);
  let loc, _ = SQ.locate sq extra in
  checkb "inserted located" true
    (match Q.node_point loc.Q.node with Some p -> Point.dist p extra < 1e-6 | None -> false);
  checkb "remove" true (SQ.remove sq extra);
  checkb "remove twice" false (SQ.remove sq extra);
  SQ.check_invariants sq;
  checki "restored" 100 (SQ.size sq)

let test_skipqtree_nearest () =
  let pts = Workload.uniform_points ~seed:37 ~n:300 ~dim:2 in
  let sq = SQ.build ~seed:38 ~dim:2 pts in
  let q = Point.create [ 0.5; 0.5 ] in
  match SQ.nearest sq q with
  | None -> Alcotest.fail "nonempty"
  | Some (_, d) ->
      let brute = Array.fold_left (fun acc p -> Float.min acc (Point.dist p q)) infinity pts in
      Alcotest.(check (float 1e-9)) "exact" brute d

let qcheck_skipqtree_random_ops =
  QCheck.Test.make ~name:"skip quadtree random ops keep invariants" ~count:30
    QCheck.(pair small_int (int_range 1 80))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let sq = SQ.build ~seed ~dim:2 [||] in
      let live = ref [] in
      for _ = 1 to n do
        if Prng.bool rng || !live = [] then begin
          let p = Point.create [ Prng.float rng 1.0; Prng.float rng 1.0 ] in
          if SQ.insert sq p then live := p :: !live
        end
        else
          match !live with
          | p :: rest ->
              ignore (SQ.remove sq p);
              live := rest
          | [] -> ()
      done;
      SQ.check_invariants sq;
      SQ.size sq = List.length !live)

(* ------- bulk build, batch updates, charged scans ------- *)

module Pool = Skipweb_util.Pool

(* Full structural fingerprint including ids: two trees with equal
   censuses are indistinguishable to the hierarchy (placement hashes node
   ids). *)
let node_census t =
  let acc = ref [] in
  Q.iter_nodes t ~f:(fun n -> acc := (Q.node_id n, Q.node_cube n, Q.node_point n) :: !acc);
  List.sort compare !acc

let test_bulk_build_canonical_and_pooled () =
  let pts = Workload.uniform_points ~seed:77 ~n:4_000 ~dim:2 in
  let t = Q.build ~dim:2 pts in
  Q.check_invariants t;
  let census = node_census t in
  let rev = Array.of_list (List.rev (Array.to_list pts)) in
  checkb "permutation invariant (ids included)" true (node_census (Q.build ~dim:2 rev) = census);
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let tp = Q.build ?pool ~dim:2 pts in
          Q.check_invariants tp;
          checkb "pooled build bit-identical" true (node_census tp = census)))
    [ 2; 4 ]

let qcheck_batch_matches_per_key_loop =
  QCheck.Test.make ~name:"quadtree insert/remove batch = per-key loop (jobs 1/2/4)" ~count:12
    QCheck.(triple (int_range 0 10_000) (int_range 0 120) (int_range 1 120))
    (fun (seed, nbase, nbatch) ->
      let base = Workload.uniform_points ~seed ~n:nbase ~dim:2 in
      let batch = Workload.uniform_points ~seed:(seed + 1) ~n:nbatch ~dim:2 in
      let rm =
        Array.append (Array.sub batch 0 (nbatch / 2)) (Array.sub base 0 (min nbase 20))
      in
      (* Reference: the per-key delta loop over the same starting tree. *)
      let tref = Q.build ~dim:2 base in
      let ins_ref = ref 0 and added_ref = ref [] in
      Array.iter
        (fun p ->
          let changed, added, removed = Q.insert_delta tref p in
          assert (removed = []);
          if changed then incr ins_ref;
          added_ref := !added_ref @ added)
        batch;
      let rm_ref = ref 0 and dropped_ref = ref [] in
      Array.iter
        (fun p ->
          let changed, added, removed = Q.remove_delta tref p in
          assert (added = []);
          if changed then incr rm_ref;
          dropped_ref := !dropped_ref @ removed)
        rm;
      let census_ref = node_census tref in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              let t = Q.build ?pool ~dim:2 base in
              let ins, added = Q.insert_batch ?pool t batch in
              let rmv, dropped = Q.remove_batch ?pool t rm in
              Q.check_invariants t;
              ins = !ins_ref && added = !added_ref && rmv = !rm_ref
              && dropped = !dropped_ref
              && node_census t = census_ref))
        [ 1; 2; 4 ])

let test_range_scan_matches_oracle () =
  let pts = Workload.uniform_points ~seed:5 ~n:800 ~dim:2 in
  let t = Q.build ~dim:2 pts in
  let lo = Point.create [ 0.2; 0.3 ] and hi = Point.create [ 0.7; 0.8 ] in
  let count, sample, visited = Q.range_scan t ~lo ~hi ~limit:50 in
  checki "count = range_count" (Q.range_count t ~lo ~hi) count;
  checki "sample bounded by limit" (min 50 count) (List.length sample);
  let all = Q.range_report t ~lo ~hi in
  checkb "sample from the box" true (List.for_all (fun p -> List.mem p all) sample);
  checkb "walk charged" true (visited <> []);
  let count_full, sample_full, _ = Q.range_scan t ~lo ~hi ~limit:10_000 in
  checki "unclipped count unchanged" count count_full;
  checkb "unclipped sample = report (as sets)" true
    (List.sort compare sample_full = List.sort compare all)

let test_knn_matches_brute_force () =
  let pts = Workload.uniform_points ~seed:6 ~n:500 ~dim:2 in
  let t = Q.build ~dim:2 pts in
  let qs = Workload.uniform_query_points ~seed:7 ~n:20 ~dim:2 in
  (* The tree stores grid-snapped points; the oracle must rank the same
     representatives with the same tie-break. *)
  let stored = ref [] in
  Q.iter_points t ~f:(fun p -> stored := p :: !stored);
  let k = 5 in
  Array.iter
    (fun q ->
      let hits, visited = Q.knn t q ~k in
      checkb "walk charged" true (visited <> []);
      let oracle =
        List.map (fun p -> (Point.dist_sq p q, p)) !stored
        |> List.sort compare
        |> List.filteri (fun i _ -> i < k)
        |> List.map (fun (d, p) -> (p, sqrt d))
      in
      checkb "knn = brute force" true (hits = oracle))
    qs;
  let all, _ = Q.knn t (Point.create [ 0.5; 0.5 ]) ~k:1_000 in
  checki "k > n returns everything" (Q.size t) (List.length all)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "duplicates collapse" `Quick test_duplicates_collapse;
    Alcotest.test_case "four corners" `Quick test_four_corners;
    Alcotest.test_case "node count linear" `Quick test_node_count_linear;
    Alcotest.test_case "diagonal input is deep" `Quick test_diagonal_is_deep;
    Alcotest.test_case "locate path structure" `Quick test_locate_contains_query;
    Alcotest.test_case "locate exact point" `Quick test_locate_exact_point;
    Alcotest.test_case "incremental = bulk (canonical)" `Quick test_incremental_matches_bulk;
    Alcotest.test_case "insert/remove roundtrip" `Quick test_insert_then_remove_roundtrip;
    Alcotest.test_case "remove all" `Quick test_remove_all;
    Alcotest.test_case "three dimensions (octree)" `Quick test_three_dimensions;
    Alcotest.test_case "nearest = brute force" `Quick test_nearest_matches_brute_force;
    Alcotest.test_case "node_of_cube lookup" `Quick test_node_of_cube_lookup;
    Alcotest.test_case "subset cubes exist in superset" `Quick test_subset_cubes_exist_in_superset;
    Alcotest.test_case "refinement soundness" `Quick test_refinement_soundness;
    Alcotest.test_case "gap refinement short (Lemma 3 flavor)" `Quick test_gap_count_small_on_random_halves;
    Alcotest.test_case "range queries" `Quick test_range_queries;
    Alcotest.test_case "range empty box rejected" `Quick test_range_empty_box_rejected;
    Alcotest.test_case "skip quadtree build/locate" `Quick test_skipqtree_build_and_locate;
    Alcotest.test_case "skip quadtree fast on deep input" `Quick test_skipqtree_fast_on_deep_input;
    Alcotest.test_case "skip quadtree insert/remove" `Quick test_skipqtree_insert_remove;
    Alcotest.test_case "skip quadtree nearest" `Quick test_skipqtree_nearest;
    Alcotest.test_case "bulk build canonical + pooled" `Quick test_bulk_build_canonical_and_pooled;
    Alcotest.test_case "range_scan = oracle" `Quick test_range_scan_matches_oracle;
    Alcotest.test_case "knn = brute force" `Quick test_knn_matches_brute_force;
    QCheck_alcotest.to_alcotest qcheck_batch_matches_per_key_loop;
    QCheck_alcotest.to_alcotest qcheck_skipqtree_random_ops;
    QCheck_alcotest.to_alcotest qcheck_build_invariants;
    QCheck_alcotest.to_alcotest qcheck_insert_remove_invariants;
  ]
