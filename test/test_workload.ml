(* Tests for Skipweb_workload: generators feed every experiment, so they
   must produce exactly what they promise. *)

module W = Skipweb_workload.Workload
module Point = Skipweb_geom.Point
module Segment = Skipweb_geom.Segment

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let distinct_sorted a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) >= a.(i) then ok := false
  done;
  !ok

let test_distinct_ints () =
  let keys = W.distinct_ints ~seed:1 ~n:1000 ~bound:100_000 in
  checki "count" 1000 (Array.length keys);
  checkb "sorted distinct" true (distinct_sorted keys);
  Array.iter (fun k -> checkb "in bound" true (k >= 0 && k < 100_000)) keys

let test_distinct_ints_deterministic () =
  let a = W.distinct_ints ~seed:5 ~n:100 ~bound:10_000 in
  let b = W.distinct_ints ~seed:5 ~n:100 ~bound:10_000 in
  Alcotest.(check (array int)) "same seed same keys" a b

let test_clustered_ints () =
  let keys = W.clustered_ints ~seed:2 ~n:500 ~clusters:5 ~spread:1000 in
  checkb "mostly generated" true (Array.length keys > 400);
  checkb "sorted distinct" true (distinct_sorted keys)

let test_query_mix () =
  let keys = W.distinct_ints ~seed:3 ~n:100 ~bound:10_000 in
  let qs = W.query_mix ~seed:4 ~keys ~n:500 ~bound:10_000 in
  checki "count" 500 (Array.length qs);
  Array.iter (fun q -> checkb "in bound" true (q >= 0 && q < 10_000)) qs

let test_uniform_points () =
  let pts = W.uniform_points ~seed:5 ~n:200 ~dim:3 in
  checki "count" 200 (Array.length pts);
  Array.iter
    (fun p ->
      checki "dim" 3 (Point.dim p);
      Array.iter (fun c -> checkb "unit cube" true (c >= 0.0 && c < 1.0)) p)
    pts

let test_clustered_points () =
  let pts = W.clustered_points ~seed:6 ~n:200 ~dim:2 ~clusters:3 ~radius:0.05 in
  checki "count" 200 (Array.length pts);
  Array.iter
    (fun p -> Array.iter (fun c -> checkb "unit cube" true (c >= 0.0 && c < 1.0)) p)
    pts

let test_diagonal_points () =
  let pts = W.diagonal_points ~n:20 ~dim:2 in
  checki "count" 20 (Array.length pts);
  (* Strictly decreasing geometric coordinates. *)
  for i = 1 to 19 do
    checkb "geometric decay" true (pts.(i).(0) < pts.(i - 1).(0))
  done;
  checkb "too many rejected" true
    (try
       ignore (W.diagonal_points ~n:40 ~dim:2);
       false
     with Invalid_argument _ -> true)

let test_random_strings () =
  let strs = W.random_strings ~seed:7 ~n:500 ~alphabet:4 ~len:8 in
  checki "count" 500 (Array.length strs);
  let tbl = Hashtbl.create 512 in
  Array.iter
    (fun s ->
      checki "length" 8 (String.length s);
      String.iter (fun c -> checkb "alphabet" true (c >= 'a' && c <= 'd')) s;
      checkb "distinct" false (Hashtbl.mem tbl s);
      Hashtbl.add tbl s ())
    strs

let test_prefix_heavy_strings () =
  let strs = W.prefix_heavy_strings ~seed:8 ~n:30 ~alphabet:3 in
  checki "count" 30 (Array.length strs);
  (* String i starts with i copies of 'a' then a non-'a'. *)
  Array.iteri
    (fun i s ->
      checkb "prefix of a's" true (String.length s > i);
      String.iteri (fun j c -> if j < i then checkb "leading a's" true (c = 'a')) s;
      checkb "pivot differs" true (s.[i] <> 'a'))
    strs

let test_isbn_strings () =
  let strs = W.isbn_strings ~seed:9 ~n:200 ~publishers:10 in
  checki "count" 200 (Array.length strs);
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun s ->
      checkb "isbn shape" true (String.length s >= 12 && String.sub s 0 4 = "978-");
      checkb "distinct" false (Hashtbl.mem tbl s);
      Hashtbl.add tbl s ())
    strs

let test_string_queries () =
  let keys = W.random_strings ~seed:10 ~n:50 ~alphabet:3 ~len:6 in
  let qs = W.string_queries ~seed:11 ~keys ~n:300 in
  checki "count" 300 (Array.length qs)

let test_disjoint_segments () =
  let segs = W.disjoint_segments ~seed:12 ~n:60 in
  checki "count" 60 (Array.length segs);
  let xs = Hashtbl.create 256 in
  Array.iteri
    (fun i a ->
      let (x0, y0), (x1, y1) = Segment.endpoints a in
      checkb "inside box" true (x0 > 0.0 && x1 < 1.0 && y0 > 0.0 && y0 < 1.0 && y1 > 0.0 && y1 < 1.0);
      checkb "x distinct" false (Hashtbl.mem xs x0 || Hashtbl.mem xs x1);
      Hashtbl.add xs x0 ();
      Hashtbl.add xs x1 ();
      Array.iteri (fun j b -> if i < j then checkb "non-crossing" false (Segment.crosses a b)) segs)
    segs

let test_pow2_sizes () =
  Alcotest.(check (list int)) "sizes" [ 16; 32; 64 ] (W.pow2_sizes ~lo:4 ~hi:6)


let test_zipf_queries () =
  let keys = W.distinct_ints ~seed:20 ~n:200 ~bound:100_000 in
  let qs = W.zipf_queries ~seed:21 ~keys ~n:5000 ~s:1.0 in
  checki "count" 5000 (Array.length qs);
  let stored = Hashtbl.create 256 in
  Array.iter (fun k -> Hashtbl.replace stored k ()) keys;
  Array.iter (fun q -> checkb "zipf queries hit stored keys" true (Hashtbl.mem stored q)) qs;
  (* The distribution is skewed: the most popular key appears far more
     often than the uniform share. *)
  let counts = Hashtbl.create 256 in
  Array.iter (fun q -> Hashtbl.replace counts q (1 + (try Hashtbl.find counts q with Not_found -> 0))) qs;
  let top = Hashtbl.fold (fun _ c acc -> max acc c) counts 0 in
  checkb "skewed head" true (top > 3 * (5000 / 200))

(* Regression for the inverse-CDF out-of-bounds bug: accumulating the m
   normalized Zipf weights in floating point can leave cdf.(m-1) a few
   ulps below 1.0 (the gap is ~1e-16..1e-10, far too small to hit
   reliably by sampling — which is why the bug survived: a uniform draw
   landing in the gap made the binary search return m and index one past
   the rank permutation). The fixed CDF pins its last entry to exactly
   1.0; these (m, s) pairs are ones where the unpinned accumulation
   provably falls short, so this test fails on the old code. *)
let test_zipf_cdf_terminal_entry () =
  List.iter
    (fun (m, s) ->
      let cdf = W.zipf_cdf ~m ~s in
      checki "length" m (Array.length cdf);
      checkb
        (Printf.sprintf "cdf.(m-1) exactly 1.0 at m=%d s=%g" m s)
        true
        (cdf.(m - 1) = 1.0);
      (* Monotone non-decreasing, so the pinned tail cannot re-order the
         search. *)
      for i = 1 to m - 1 do
        checkb "monotone" true (cdf.(i) >= cdf.(i - 1))
      done)
    [ (100_000, 1.1); (50_000, 0.8); (4096, 1.0); (1, 2.0) ];
  Alcotest.check_raises "m >= 1" (Invalid_argument "Workload.zipf_cdf: m >= 1") (fun () ->
      ignore (W.zipf_cdf ~m:0 ~s:1.0));
  Alcotest.check_raises "s > 0" (Invalid_argument "Workload.zipf_cdf: s > 0") (fun () ->
      ignore (W.zipf_cdf ~m:10 ~s:0.0))

(* The sampling-level symptom, at adversarial scale: every drawn query
   must be a stored key even for a large key set where the unpinned CDF
   falls short of 1.0. (An out-of-range rank would raise Invalid_argument
   on the permutation index — on the old code this is a latent crash
   whose trigger probability per draw is the width of the CDF gap.) *)
let test_zipf_queries_large_m_in_bounds () =
  let m = 50_000 in
  let keys = Array.init m (fun i -> 2 * i) in
  let stored = Hashtbl.create m in
  Array.iter (fun k -> Hashtbl.replace stored k ()) keys;
  let qs = W.zipf_queries ~seed:77 ~keys ~n:20_000 ~s:0.8 in
  checki "count" 20_000 (Array.length qs);
  Array.iter (fun q -> checkb "every query is a stored key" true (Hashtbl.mem stored q)) qs

let suite =
  [
    Alcotest.test_case "distinct ints" `Quick test_distinct_ints;
    Alcotest.test_case "distinct ints deterministic" `Quick test_distinct_ints_deterministic;
    Alcotest.test_case "clustered ints" `Quick test_clustered_ints;
    Alcotest.test_case "query mix" `Quick test_query_mix;
    Alcotest.test_case "uniform points" `Quick test_uniform_points;
    Alcotest.test_case "clustered points" `Quick test_clustered_points;
    Alcotest.test_case "diagonal points" `Quick test_diagonal_points;
    Alcotest.test_case "random strings" `Quick test_random_strings;
    Alcotest.test_case "prefix heavy strings" `Quick test_prefix_heavy_strings;
    Alcotest.test_case "isbn strings" `Quick test_isbn_strings;
    Alcotest.test_case "string queries" `Quick test_string_queries;
    Alcotest.test_case "disjoint segments" `Quick test_disjoint_segments;
    Alcotest.test_case "pow2 sizes" `Quick test_pow2_sizes;
    Alcotest.test_case "zipf queries" `Quick test_zipf_queries;
    Alcotest.test_case "zipf cdf terminal entry (OOB regression)" `Quick
      test_zipf_cdf_terminal_entry;
    Alcotest.test_case "zipf queries large m in bounds" `Quick test_zipf_queries_large_m_in_bounds;
  ]
