(* Tests for Skipweb_util: PRNG, membership vectors, statistics, tables. *)

module Prng = Skipweb_util.Prng
module Membership = Skipweb_util.Membership
module Stats = Skipweb_util.Stats
module Tables = Skipweb_util.Tables
module Metrics = Skipweb_util.Metrics

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next64 a = Prng.next64 b then incr same
  done;
  checkb "different seeds diverge" true (!same < 4)

let test_prng_int_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_int_covers () =
  let g = Prng.create 11 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Prng.int g 8) <- true
  done;
  checkb "all residues hit" true (Array.for_all Fun.id seen)

let test_prng_float_range () =
  let g = Prng.create 3 in
  for _ = 1 to 10_000 do
    let v = Prng.float g 2.5 in
    checkb "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_prng_coin_bias () =
  let g = Prng.create 5 in
  let heads = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.coin g ~p:0.25 then incr heads
  done;
  let freq = float_of_int !heads /. float_of_int n in
  checkb "frequency near 0.25" true (Float.abs (freq -. 0.25) < 0.02)

let test_prng_bool_fair () =
  let g = Prng.create 9 in
  let heads = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bool g then incr heads
  done;
  let freq = float_of_int !heads /. float_of_int n in
  checkb "fair coin" true (Float.abs (freq -. 0.5) < 0.02)

let test_prng_split_independent () =
  let g = Prng.create 13 in
  let h = Prng.split g in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next64 g = Prng.next64 h then incr same
  done;
  checkb "split streams differ" true (!same < 4)

let test_shuffle_permutation () =
  let g = Prng.create 21 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 100 (fun i -> i)) sorted;
  checkb "actually shuffled" true (a <> Array.init 100 (fun i -> i))

let test_sample_without_replacement () =
  let g = Prng.create 33 in
  let s = Prng.sample_without_replacement g 50 100 in
  check Alcotest.int "size" 50 (Array.length s);
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      checkb "in range" true (x >= 0 && x < 100);
      checkb "distinct" false (Hashtbl.mem tbl x);
      Hashtbl.add tbl x ())
    s

let test_hash2_deterministic () =
  check Alcotest.int "stable" (Prng.hash2 5 9) (Prng.hash2 5 9);
  checkb "argument order matters" true (Prng.hash2 5 9 <> Prng.hash2 9 5);
  checkb "non-negative" true (Prng.hash2 (-4) 17 >= 0)

let test_membership_deterministic () =
  let v = Membership.create ~seed:77 in
  for id = 0 to 20 do
    for level = 0 to 20 do
      checkb "stable bit" true (Membership.bit v ~id ~level = Membership.bit v ~id ~level)
    done
  done

let test_membership_prefix () =
  let v = Membership.create ~seed:123 in
  for id = 0 to 50 do
    let p5 = Membership.prefix v ~id ~len:5 in
    (* Recompute by hand. *)
    let expected = ref 0 in
    for level = 0 to 4 do
      expected := (!expected lsl 1) lor if Membership.bit v ~id ~level then 1 else 0
    done;
    check Alcotest.int "prefix matches bits" !expected p5;
    (* Prefix nesting: len-4 prefix is the len-5 prefix shifted. *)
    check Alcotest.int "prefix nesting" (p5 lsr 1) (Membership.prefix v ~id ~len:4)
  done

let test_membership_balanced () =
  let v = Membership.create ~seed:5 in
  let ones = ref 0 in
  let n = 20_000 in
  for id = 0 to n - 1 do
    if Membership.bit v ~id ~level:3 then incr ones
  done;
  let freq = float_of_int !ones /. float_of_int n in
  checkb "bits roughly fair" true (Float.abs (freq -. 0.5) < 0.02)

let test_membership_biased () =
  let v = Membership.biased ~seed:5 ~p:0.25 in
  let ones = ref 0 in
  let n = 20_000 in
  for id = 0 to n - 1 do
    if Membership.bit v ~id ~level:0 then incr ones
  done;
  let freq = float_of_int !ones /. float_of_int n in
  checkb "bias respected" true (Float.abs (freq -. 0.25) < 0.02)

let test_membership_common_prefix () =
  let v = Membership.create ~seed:31 in
  let cp = Membership.common_prefix v 4 9 in
  checkb "cp sane" true (cp >= 0 && cp <= 60);
  if cp < 60 then
    checkb "bits differ after cp" true (Membership.bit v ~id:4 ~level:cp <> Membership.bit v ~id:9 ~level:cp);
  for level = 0 to cp - 1 do
    checkb "bits equal before cp" true (Membership.bit v ~id:4 ~level = Membership.bit v ~id:9 ~level)
  done

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check Alcotest.(float 1e-9) "mean" 3.0 s.Stats.mean;
  check Alcotest.(float 1e-9) "min" 1.0 s.Stats.min;
  check Alcotest.(float 1e-9) "max" 5.0 s.Stats.max;
  check Alcotest.(float 1e-9) "median" 3.0 s.Stats.p50;
  check Alcotest.(float 1e-6) "stddev" (sqrt 2.5) s.Stats.stddev

let test_stats_percentile () =
  let a = Array.init 101 float_of_int in
  check Alcotest.(float 1e-9) "p50" 50.0 (Stats.percentile a 0.5);
  check Alcotest.(float 1e-9) "p90" 90.0 (Stats.percentile a 0.9);
  check Alcotest.(float 1e-9) "p0" 0.0 (Stats.percentile a 0.0);
  check Alcotest.(float 1e-9) "p100" 100.0 (Stats.percentile a 1.0)

let test_stats_empty_raises () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Stats.mean []))

(* Small-sample edge cases: one and two elements must give sensible
   stddev and percentiles, not NaN or interpolation noise. *)
let test_stats_single_element () =
  let s = Stats.summarize [ 7.25 ] in
  checkb "count" true (s.Stats.count = 1);
  check Alcotest.(float 0.0) "mean" 7.25 s.Stats.mean;
  check Alcotest.(float 0.0) "stddev" 0.0 s.Stats.stddev;
  check Alcotest.(float 0.0) "p50 is the element exactly" 7.25 s.Stats.p50;
  check Alcotest.(float 0.0) "p90 is the element exactly" 7.25 s.Stats.p90;
  check Alcotest.(float 0.0) "p99 is the element exactly" 7.25 s.Stats.p99;
  check Alcotest.(float 0.0) "min" 7.25 s.Stats.min;
  check Alcotest.(float 0.0) "max" 7.25 s.Stats.max

let test_stats_two_elements () =
  let s = Stats.summarize [ 10.0; 2.0 ] in
  check Alcotest.(float 1e-12) "mean" 6.0 s.Stats.mean;
  (* Unbiased sample stddev of {2, 10}: sqrt(((−4)² + 4²)/1) *)
  check Alcotest.(float 1e-12) "stddev" (sqrt 32.0) s.Stats.stddev;
  check Alcotest.(float 1e-12) "p50 interpolates" 6.0 s.Stats.p50;
  check Alcotest.(float 1e-12) "p90 interpolates" 9.2 s.Stats.p90;
  check Alcotest.(float 0.0) "min" 2.0 s.Stats.min;
  check Alcotest.(float 0.0) "max" 10.0 s.Stats.max

let test_stats_percentile_boundary_exact () =
  let a = [| 1.5; 2.5; 4.5 |] in
  (* q = 1.0 and q = 0.0 return the extreme elements exactly — bitwise,
     with no interpolation arithmetic. *)
  checkb "p100 exact" true (Stats.percentile a 1.0 = 4.5);
  checkb "p0 exact" true (Stats.percentile a 0.0 = 1.5);
  (* Ranks landing exactly on an element skip interpolation too. *)
  checkb "p50 exact on element" true (Stats.percentile a 0.5 = 2.5);
  checkb "singleton every quantile" true (Stats.percentile [| 3.75 |] 0.37 = 3.75)

(* ------- metrics registry ------- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  checki "absent counter reads 0" 0 (Metrics.counter_value m "ops");
  Metrics.incr m "ops";
  Metrics.incr m ~by:4 "ops";
  checki "accumulates" 5 (Metrics.counter_value m "ops");
  Alcotest.check_raises "kind clash" (Invalid_argument "Metrics: ops is a counter") (fun () ->
      Metrics.observe m "ops" 1.0)

let test_metrics_histograms () =
  let m = Metrics.create () in
  checkb "absent histogram" true (Metrics.histogram_summary m "lat" = None);
  List.iter (Metrics.observe m "lat") [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  (match Metrics.histogram_summary m "lat" with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      checki "count" 5 s.Stats.count;
      check Alcotest.(float 1e-9) "mean" 3.0 s.Stats.mean;
      check Alcotest.(float 1e-9) "p50" 3.0 s.Stats.p50);
  Alcotest.check_raises "kind clash" (Invalid_argument "Metrics: lat is a histogram") (fun () ->
      Metrics.incr m "lat")

let test_metrics_export () =
  let m = Metrics.create () in
  Metrics.incr m ~by:7 "b.counter";
  Metrics.observe_int m "a.hist" 3;
  Metrics.observe_int m "a.hist" 5;
  Alcotest.(check (list string)) "names sorted" [ "a.hist"; "b.counter" ] (Metrics.names m);
  let json = Metrics.to_json m in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "json has counter" true (contains json "\"b.counter\": 7");
  checkb "json has histogram count" true (contains json "\"count\": 2");
  let csv = Metrics.to_csv m in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  checki "header + one row per entry" 3 (List.length lines);
  checkb "csv header" true
    (List.hd lines = "name,kind,value,count,mean,stddev,min,max,p50,p90,p99");
  checkb "csv counter row" true (contains csv "b.counter,counter,7");
  Metrics.clear m;
  Alcotest.(check (list string)) "clear empties" [] (Metrics.names m)

let series_of f = List.map (fun n -> (float_of_int n, f (float_of_int n))) [ 16; 64; 256; 1024; 4096; 16384 ]

let test_fit_recognizes_log () =
  let log2 x = Float.log x /. Float.log 2.0 in
  let m, _ = Stats.Fit.best (series_of (fun n -> 3.0 *. log2 n)) in
  check Alcotest.string "log shape" "O(log n)" (Stats.Fit.name m)

let test_fit_recognizes_constant () =
  let m, _ = Stats.Fit.best (series_of (fun _ -> 5.0)) in
  check Alcotest.string "constant shape" "O(1)" (Stats.Fit.name m)

let test_fit_recognizes_linear () =
  let m, _ = Stats.Fit.best (series_of (fun n -> 0.5 *. n)) in
  check Alcotest.string "linear shape" "O(n)" (Stats.Fit.name m)

let test_fit_recognizes_log_squared () =
  let log2 x = Float.log x /. Float.log 2.0 in
  let m, _ = Stats.Fit.best (series_of (fun n -> 2.0 *. log2 n *. log2 n)) in
  check Alcotest.string "log^2 shape" "O(log^2 n)" (Stats.Fit.name m)

let test_fit_recognizes_log_over_loglog () =
  let log2 x = Float.log x /. Float.log 2.0 in
  let m, _ = Stats.Fit.best (series_of (fun n -> 4.0 *. log2 n /. log2 (log2 n))) in
  check Alcotest.string "log/loglog shape" "O(log n / log log n)" (Stats.Fit.name m)

let test_fit_constant_least_squares () =
  let series = [ (16.0, 8.0); (256.0, 16.0); (4096.0, 24.0) ] in
  let c = Stats.Fit.fit_constant Stats.Fit.Log series in
  check Alcotest.(float 1e-6) "exact fit constant" 2.0 c;
  check Alcotest.(float 1e-9) "zero rmse" 0.0 (Stats.Fit.rmse Stats.Fit.Log ~c series)

let test_tables_render () =
  let t = Tables.create ~title:"demo" ~columns:[ "n"; "cost" ] in
  Tables.add_row t [ "16"; "4.00" ];
  Tables.add_row t [ "256"; "8.00" ];
  let s = Tables.render t in
  checkb "title present" true (String.length s > 0 && String.sub s 0 3 = "== ");
  checkb "row present" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0 && l.[0] = '|'))

let test_tables_arity_check () =
  let t = Tables.create ~title:"x" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "bad arity" (Invalid_argument "Tables.add_row: wrong number of cells")
    (fun () -> Tables.add_row t [ "1" ])

(* ---- chunked sorted sequence ---- *)

module Ordseq = Skipweb_util.Ordseq

let test_array_searches () =
  let a = [| 2; 4; 4; 7; 9 |] in
  checki "lb below" 0 (Ordseq.array_lower_bound a 1);
  checki "lb hit" 1 (Ordseq.array_lower_bound a 4);
  checki "lb between" 3 (Ordseq.array_lower_bound a 5);
  checki "lb above" 5 (Ordseq.array_lower_bound a 10);
  checki "ui below" (-1) (Ordseq.array_upper_index a 1);
  checki "ui hit" 2 (Ordseq.array_upper_index a 4);
  checki "ui above" 4 (Ordseq.array_upper_index a 10);
  (* [len] restricts to a prefix, as chunk storage needs. *)
  checki "lb len prefix" 2 (Ordseq.array_lower_bound ~len:2 a 10);
  checki "ui len prefix" 1 (Ordseq.array_upper_index ~len:2 a 10)

let test_ordseq_bulk () =
  let n = 10_000 in
  let a = Array.init n (fun i -> 3 * i) in
  let t = Ordseq.of_sorted_array a in
  Ordseq.check t;
  checki "length" n (Ordseq.length t);
  checki "get mid" (3 * 1234) (Ordseq.get t 1234);
  checkb "mem hit" true (Ordseq.mem t (3 * 999));
  checkb "mem miss" false (Ordseq.mem t (3 * 999 + 1));
  checkb "roundtrip" true (Ordseq.to_array t = a);
  (* Chunk shape stays O(√n). *)
  let c = Ordseq.chunk_count t in
  checkb "sqrt-ish chunk count" true (c * c <= 16 * n && c <= n)

let test_ordseq_of_array () =
  let t = Ordseq.of_array [| 5; 1; 5; 3; 1; 9 |] in
  Ordseq.check t;
  checkb "sorted deduped" true (Ordseq.to_array t = [| 1; 3; 5; 9 |])

let test_ordseq_rejects_unsorted () =
  Alcotest.check_raises "unsorted input"
    (Invalid_argument "Ordseq.of_sorted_array: not strictly increasing") (fun () ->
      ignore (Ordseq.of_sorted_array [| 3; 2 |]))

let test_ordseq_empty () =
  let t = Ordseq.create () in
  Ordseq.check t;
  checki "empty length" 0 (Ordseq.length t);
  checkb "is_empty" true (Ordseq.is_empty t);
  checkb "no min" true (Ordseq.min_elt t = None);
  checkb "no max" true (Ordseq.max_elt t = None);
  checkb "insert" true (Ordseq.insert t 42);
  checkb "dup insert" false (Ordseq.insert t 42);
  checkb "remove" true (Ordseq.remove t 42);
  checkb "absent remove" false (Ordseq.remove t 42);
  checki "empty again" 0 (Ordseq.length t)

let test_ordseq_range_keys () =
  let t = Ordseq.of_sorted_array (Array.init 100 (fun i -> 10 * i)) in
  checkb "interior range" true (Ordseq.range_keys t ~lo:25 ~hi:61 = [ 30; 40; 50; 60 ]);
  checkb "empty range" true (Ordseq.range_keys t ~lo:31 ~hi:39 = []);
  checkb "full range" true
    (List.length (Ordseq.range_keys t ~lo:min_int ~hi:max_int) = 100)

let test_ordseq_nearest_tie () =
  let t = Ordseq.of_sorted_array [| 10; 20 |] in
  checkb "tie goes to predecessor" true (Ordseq.nearest t 15 = Some 10);
  checkb "closer successor" true (Ordseq.nearest t 16 = Some 20);
  checkb "pred" true (Ordseq.predecessor t 10 = Some 10);
  checkb "succ past end" true (Ordseq.successor t 21 = None)

let test_ordseq_incremental_growth () =
  (* One-by-one growth from empty keeps the chunk shape amortized. *)
  let t = Ordseq.create () in
  let g = Prng.create 31337 in
  let n = 4096 in
  let inserted = ref 0 in
  for _ = 1 to n do
    if Ordseq.insert t (Prng.int g 1_000_000) then incr inserted
  done;
  Ordseq.check t;
  checki "all tracked" !inserted (Ordseq.length t);
  let c = Ordseq.chunk_count t in
  checkb "chunk count stays sublinear" true (c * c <= 64 * Ordseq.length t)

(* Reference model: a sorted list of distinct ints. *)
let model_insert xs k =
  if List.mem k xs then (xs, false) else (List.sort compare (k :: xs), true)

let model_remove xs k =
  if List.mem k xs then (List.filter (fun x -> x <> k) xs, true) else (xs, false)

let qcheck_ordseq_model =
  QCheck.Test.make ~name:"ordseq agrees with sorted-list model" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 200) (pair bool (int_range 0 120)))
    (fun ops ->
      let t = Ordseq.create () in
      let xs = ref [] in
      List.for_all
        (fun (ins, k) ->
          let op_ok =
            if ins then begin
              let xs', r = model_insert !xs k in
              xs := xs';
              Ordseq.insert t k = r
            end
            else begin
              let xs', r = model_remove !xs k in
              xs := xs';
              Ordseq.remove t k = r
            end
          in
          Ordseq.check t;
          let arr = Array.of_list !xs in
          let n = Array.length arr in
          op_ok
          && Ordseq.to_array t = arr
          && Ordseq.length t = n
          && Ordseq.mem t k = Array.exists (fun x -> x = k) arr
          && Ordseq.lower_bound t k = Ordseq.array_lower_bound arr k
          && Ordseq.upper_index t k = Ordseq.array_upper_index arr k
          && Ordseq.predecessor t k
             = (let i = Ordseq.array_upper_index arr k in
                if i >= 0 then Some arr.(i) else None)
          && Ordseq.successor t k
             = (let i = Ordseq.array_lower_bound arr k in
                if i < n then Some arr.(i) else None)
          && (n = 0 || Ordseq.get t (k mod n) = arr.(k mod n)))
        ops)

let qcheck_vec_model =
  QCheck.Test.make ~name:"ordseq vec agrees with array model" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 150) (triple (int_range 0 2) small_nat small_nat))
    (fun ops ->
      let v = Ordseq.Vec.create () in
      let m = ref [||] in
      let ok = ref true in
      List.iter
        (fun (op, pos, x) ->
          let n = Array.length !m in
          (match op with
          | 0 ->
              let i = pos mod (n + 1) in
              Ordseq.Vec.insert_at v i x;
              m := Array.concat [ Array.sub !m 0 i; [| x |]; Array.sub !m i (n - i) ]
          | 1 when n > 0 ->
              let i = pos mod n in
              let got = Ordseq.Vec.remove_at v i in
              ok := !ok && got = !m.(i);
              m := Array.concat [ Array.sub !m 0 i; Array.sub !m (i + 1) (n - i - 1) ]
          | _ when n > 0 ->
              let i = pos mod n in
              Ordseq.Vec.set v i x;
              !m.(i) <- x
          | _ -> ());
          Ordseq.Vec.check v;
          ok := !ok && Ordseq.Vec.to_array v = !m && Ordseq.Vec.length v = Array.length !m)
        ops;
      !ok)

(* ---------- the chunk-sharded batch splice ---------- *)

module DPool = Skipweb_util.Pool

let sorted_distinct_of_list xs = Array.of_list (List.sort_uniq compare xs)

(* One full batch cycle under [jobs] domains: insert the batch, remove it
   again, observing contents AND chunk layout after each commit. The
   tuple is everything the determinism contract promises: a pure function
   of (pre-state, batch), identical for any jobs count. *)
let batch_observation ~jobs ~base ~batch =
  DPool.with_pool ~jobs @@ fun pool ->
  let t = Ordseq.of_sorted_array base in
  let added = Ordseq.insert_batch ?pool t batch in
  Ordseq.check t;
  let mid = (Ordseq.to_array t, Ordseq.chunk_lengths t) in
  let gone = Ordseq.remove_batch ?pool t batch in
  Ordseq.check t;
  (added, mid, gone, Ordseq.to_array t, Ordseq.chunk_lengths t)

let qcheck_ordseq_batch_model =
  QCheck.Test.make ~name:"ordseq batch splice = model, layout jobs-invariant" ~count:30
    QCheck.(pair (list (int_range 0 2000)) (list (int_range 0 2000)))
    (fun (base_l, batch_l) ->
      let base = sorted_distinct_of_list base_l in
      let batch = sorted_distinct_of_list batch_l in
      let module S = Set.Make (Int) in
      let bset = S.of_list (Array.to_list base) in
      let kset = S.of_list (Array.to_list batch) in
      let expect_mid = Array.of_list (S.elements (S.union bset kset)) in
      let expect_added = Array.length expect_mid - S.cardinal bset in
      let expect_final = Array.of_list (S.elements (S.diff bset kset)) in
      let ((added, (mid, _), gone, fin, _) as base_obs) = batch_observation ~jobs:1 ~base ~batch in
      added = expect_added
      && mid = expect_mid
      && gone = Array.length batch
      && fin = expect_final
      && List.for_all (fun jobs -> batch_observation ~jobs ~base ~batch = base_obs) [ 2; 4 ])

let test_ordseq_batch_adversarial () =
  (* Every batch key lands in ONE chunk of the base: the worst case for
     the sharded splice (a single heavy shard) and the path that forces
     the commit pass's oversized balanced split. Removing the batch again
     exercises the runt-merge rule on the same region. *)
  let base = Array.init 512 (fun i -> 100_000 * i) in
  let batch = Array.init 700 (fun i -> 5_000_001 + (7 * i)) in
  let o1 = batch_observation ~jobs:1 ~base ~batch in
  let added, (mid, _), gone, fin, _ = o1 in
  checki "added" 700 added;
  checki "mid length" (512 + 700) (Array.length mid);
  checki "gone" 700 gone;
  checkb "base restored" true (fin = base);
  checkb "jobs 2 bit-identical" true (batch_observation ~jobs:2 ~base ~batch = o1);
  checkb "jobs 4 bit-identical" true (batch_observation ~jobs:4 ~base ~batch = o1)

let test_ordseq_batch_mass_remove () =
  (* Strip 90% of the keys in one batch: chunks empty out and merge, and
     the rebuilt layout must match sequential for every jobs count. *)
  let base = Array.init 1000 (fun i -> 3 * i) in
  let victims = Array.init 900 (fun i -> 3 * i) in
  let obs jobs =
    DPool.with_pool ~jobs @@ fun pool ->
    let t = Ordseq.of_sorted_array base in
    let gone = Ordseq.remove_batch ?pool t victims in
    Ordseq.check t;
    (gone, Ordseq.to_array t, Ordseq.chunk_lengths t)
  in
  let ((gone, fin, _) as o1) = obs 1 in
  checki "gone" 900 gone;
  checkb "survivors" true (fin = Array.init 100 (fun i -> 3 * (900 + i)));
  checkb "jobs 2 bit-identical" true (obs 2 = o1);
  checkb "jobs 4 bit-identical" true (obs 4 = o1)

let test_ordseq_batch_validation () =
  let t = Ordseq.of_sorted_array [| 1; 2; 3 |] in
  Alcotest.check_raises "unsorted insert batch"
    (Invalid_argument "Ordseq.insert_batch: batch not strictly increasing") (fun () ->
      ignore (Ordseq.insert_batch t [| 5; 4 |] : int));
  Alcotest.check_raises "duplicate remove batch"
    (Invalid_argument "Ordseq.remove_batch: batch not strictly increasing") (fun () ->
      ignore (Ordseq.remove_batch t [| 2; 2 |] : int));
  checki "empty insert batch" 0 (Ordseq.insert_batch t [||]);
  checki "empty remove batch" 0 (Ordseq.remove_batch t [||]);
  checki "dup-only batch" 0 (Ordseq.insert_batch t [| 1; 2; 3 |]);
  checki "absent-only batch" 0 (Ordseq.remove_batch t [| 10; 20 |]);
  checkb "untouched" true (Ordseq.to_array t = [| 1; 2; 3 |]);
  (* A batch into an empty structure takes the bulk-load path. *)
  let e = Ordseq.create () in
  checki "load path" 3 (Ordseq.insert_batch e [| 7; 8; 9 |]);
  Ordseq.check e;
  checkb "loaded" true (Ordseq.to_array e = [| 7; 8; 9 |])

let test_vec_batch () =
  let n = 400 in
  let init = Array.init n (fun i -> 10 * i) in
  (* Model for insert_at_batch: positions are relative to the original
     vector, so splicing in descending order one at a time reproduces it
     (equal positions keep batch order because later pairs go in first
     and earlier ones land before them). *)
  let pairs =
    Array.init 150 (fun i ->
        let pos = 7 * i mod (n + 1) in
        (pos, 1_000_000 + i))
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) pairs;
  let model_insert () =
    let xs = ref (Array.to_list init) in
    let insert_at i v =
      let rec go k = function
        | rest when k = i -> v :: rest
        | x :: rest -> x :: go (k + 1) rest
        | [] -> [ v ]
      in
      xs := go 0 !xs
    in
    for i = Array.length pairs - 1 downto 0 do
      let pos, v = pairs.(i) in
      insert_at pos v
    done;
    Array.of_list !xs
  in
  let expect = model_insert () in
  let positions = Array.init 120 (fun i -> 3 * i) in
  let obs jobs =
    DPool.with_pool ~jobs @@ fun pool ->
    let v = Ordseq.Vec.of_array init in
    Ordseq.Vec.insert_at_batch ?pool v pairs;
    Ordseq.Vec.check v;
    let mid = Ordseq.Vec.to_array v in
    let removed = Ordseq.Vec.remove_at_batch ?pool v positions in
    Ordseq.Vec.check v;
    (mid, removed, Ordseq.Vec.to_array v)
  in
  let ((mid, removed, _) as o1) = obs 1 in
  checkb "insert batch = model" true (mid = expect);
  checkb "removed are the originals" true (removed = Array.map (fun p -> mid.(p)) positions);
  checkb "jobs 2 bit-identical" true (obs 2 = o1);
  checkb "jobs 4 bit-identical" true (obs 4 = o1)

(* ------- the shared batch presort ------- *)

(* Pins the semantics every batch entry point relies on: physical
   identity on strictly sorted input, sort + dedup (first of each run of
   cmp-equals) otherwise, input untouched, and a pooled run bit-identical
   to the sequential one. *)
let test_presort_semantics () =
  let module Presort = Skipweb_util.Presort in
  let a = [| 1; 3; 5; 9 |] in
  checkb "strictly sorted input returned physically" true
    (Presort.sorted_distinct ~cmp:compare a == a);
  checkb "empty input returned physically" true
    (let e = [||] in
     Presort.sorted_distinct ~cmp:compare e == e);
  let b = [| 5; 1; 3; 1; 5; 2 |] in
  let out = Presort.sorted_distinct ~cmp:compare b in
  checkb "unsorted input gets a fresh array" true (out != b);
  Alcotest.(check (array int)) "sorted and distinct" [| 1; 2; 3; 5 |] out;
  Alcotest.(check (array int)) "input untouched" [| 5; 1; 3; 1; 5; 2 |] b;
  (* merely sorted-with-duplicates is not "strictly sorted": it must be
     deduplicated, not returned as-is *)
  Alcotest.(check (array int)) "sorted dupes collapse" [| 1; 2; 3 |]
    (Presort.sorted_distinct ~cmp:compare [| 1; 2; 2; 3 |]);
  (* custom comparator: one representative per equivalence class, classes
     in cmp order (which structurally distinct member survives is
     unspecified) *)
  let pairs = [| (2, "b"); (1, "a"); (2, "a"); (1, "b") |] in
  let cls = Presort.sorted_distinct ~cmp:(fun (x, _) (y, _) -> compare x y) pairs in
  checki "one per class" 2 (Array.length cls);
  checki "first class" 1 (fst cls.(0));
  checki "second class" 2 (fst cls.(1))

let test_presort_pooled_identical () =
  let module Presort = Skipweb_util.Presort in
  let g = Prng.create 99 in
  let big = Array.init 50_000 (fun _ -> Prng.int g 10_000) in
  let seq = Presort.sorted_distinct ~cmp:compare big in
  Skipweb_util.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int)) "pooled = sequential" seq
        (Presort.sorted_distinct ?pool ~cmp:compare big))

let qcheck_prng_int =
  QCheck.Test.make ~name:"prng int always in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      let a = Array.of_list xs in
      Array.sort compare a;
      Stats.percentile a 0.2 <= Stats.percentile a 0.8)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng int covers residues" `Quick test_prng_int_covers;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng coin bias" `Quick test_prng_coin_bias;
    Alcotest.test_case "prng bool fair" `Quick test_prng_bool_fair;
    Alcotest.test_case "prng split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "hash2 deterministic" `Quick test_hash2_deterministic;
    Alcotest.test_case "membership deterministic" `Quick test_membership_deterministic;
    Alcotest.test_case "membership prefix packing" `Quick test_membership_prefix;
    Alcotest.test_case "membership bits balanced" `Quick test_membership_balanced;
    Alcotest.test_case "membership biased bits" `Quick test_membership_biased;
    Alcotest.test_case "membership common prefix" `Quick test_membership_common_prefix;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats empty raises" `Quick test_stats_empty_raises;
    Alcotest.test_case "stats single element" `Quick test_stats_single_element;
    Alcotest.test_case "stats two elements" `Quick test_stats_two_elements;
    Alcotest.test_case "stats percentile boundary exact" `Quick test_stats_percentile_boundary_exact;
    Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "metrics histograms" `Quick test_metrics_histograms;
    Alcotest.test_case "metrics export" `Quick test_metrics_export;
    Alcotest.test_case "fit recognizes log" `Quick test_fit_recognizes_log;
    Alcotest.test_case "fit recognizes constant" `Quick test_fit_recognizes_constant;
    Alcotest.test_case "fit recognizes linear" `Quick test_fit_recognizes_linear;
    Alcotest.test_case "fit recognizes log^2" `Quick test_fit_recognizes_log_squared;
    Alcotest.test_case "fit recognizes log/loglog" `Quick test_fit_recognizes_log_over_loglog;
    Alcotest.test_case "fit least squares constant" `Quick test_fit_constant_least_squares;
    Alcotest.test_case "tables render" `Quick test_tables_render;
    Alcotest.test_case "tables arity check" `Quick test_tables_arity_check;
    Alcotest.test_case "ordseq shared array searches" `Quick test_array_searches;
    Alcotest.test_case "ordseq bulk load" `Quick test_ordseq_bulk;
    Alcotest.test_case "ordseq of_array sorts+dedups" `Quick test_ordseq_of_array;
    Alcotest.test_case "ordseq rejects unsorted" `Quick test_ordseq_rejects_unsorted;
    Alcotest.test_case "ordseq empty edge cases" `Quick test_ordseq_empty;
    Alcotest.test_case "ordseq range_keys" `Quick test_ordseq_range_keys;
    Alcotest.test_case "ordseq nearest tie-break" `Quick test_ordseq_nearest_tie;
    Alcotest.test_case "ordseq incremental growth" `Quick test_ordseq_incremental_growth;
    Alcotest.test_case "ordseq batch adversarial one-chunk" `Quick test_ordseq_batch_adversarial;
    Alcotest.test_case "ordseq batch mass remove" `Quick test_ordseq_batch_mass_remove;
    Alcotest.test_case "ordseq batch validation" `Quick test_ordseq_batch_validation;
    Alcotest.test_case "vec positional batch splice" `Quick test_vec_batch;
    Alcotest.test_case "presort semantics" `Quick test_presort_semantics;
    Alcotest.test_case "presort pooled identical" `Quick test_presort_pooled_identical;
    QCheck_alcotest.to_alcotest qcheck_prng_int;
    QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
    QCheck_alcotest.to_alcotest qcheck_ordseq_model;
    QCheck_alcotest.to_alcotest qcheck_ordseq_batch_model;
    QCheck_alcotest.to_alcotest qcheck_vec_model;
  ]
