(* Tests for Skipweb_trie: compressed digital tries (§3.2). *)

module T = Skipweb_trie.Ctrie
module Workload = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Pool = Skipweb_util.Pool

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let build l = T.build (Array.of_list l)

let test_empty () =
  let t = T.create () in
  checki "size" 0 (T.size t);
  checki "only root" 1 (T.node_count t);
  checkb "mem" false (T.mem t "abc");
  T.check_invariants t

let test_basic_membership () =
  let t = build [ "cat"; "car"; "cart"; "dog" ] in
  checki "size" 4 (T.size t);
  List.iter (fun s -> checkb ("mem " ^ s) true (T.mem t s)) [ "cat"; "car"; "cart"; "dog" ];
  List.iter (fun s -> checkb ("not mem " ^ s) false (T.mem t s)) [ "ca"; "c"; "carts"; ""; "do" ];
  T.check_invariants t

let test_empty_string_key () =
  let t = build [ ""; "a" ] in
  checkb "empty string stored" true (T.mem t "");
  checki "size" 2 (T.size t);
  checkb "remove empty" true (T.remove t "");
  checkb "gone" false (T.mem t "");
  T.check_invariants t

let test_compression () =
  (* A chain of unique extensions compresses to few nodes. *)
  let t = build [ "abcdefghij" ] in
  checki "root + one leaf" 2 (T.node_count t);
  let t2 = build [ "abcdefghij"; "abcdezzzzz" ] in
  (* root, branch node at "abcde", two leaves. *)
  checki "split adds a branch node" 4 (T.node_count t2);
  T.check_invariants t2

let test_count_with_prefix () =
  let t = build [ "cat"; "car"; "cart"; "dog"; "carbon" ] in
  checki "prefix car" 3 (T.count_with_prefix t "car");
  checki "prefix ca" 4 (T.count_with_prefix t "ca");
  checki "prefix cart" 1 (T.count_with_prefix t "cart");
  checki "prefix d" 1 (T.count_with_prefix t "d");
  checki "prefix absent" 0 (T.count_with_prefix t "dz");
  checki "empty prefix counts all" 5 (T.count_with_prefix t "")

let test_first_with_prefix () =
  let t = build [ "cat"; "car"; "cart"; "carbon" ] in
  Alcotest.(check (option string)) "least extension" (Some "car") (T.first_with_prefix t "car");
  Alcotest.(check (option string)) "inside edge" (Some "carbon") (T.first_with_prefix t "carb");
  Alcotest.(check (option string)) "absent" None (T.first_with_prefix t "cb")

let test_longest_common_prefix () =
  let t = build [ "romane"; "romanus"; "romulus" ] in
  Alcotest.(check string) "full hit" "romane" (T.longest_common_prefix t "romane");
  Alcotest.(check string) "diverges inside edge" "roman" (T.longest_common_prefix t "romanx");
  Alcotest.(check string) "diverges at node" "rom" (T.longest_common_prefix t "romzzz");
  Alcotest.(check string) "no overlap" "" (T.longest_common_prefix t "xyz")

let test_insert_remove_roundtrip () =
  let t = build [ "alpha"; "beta" ] in
  checkb "insert new" true (T.insert t "alphabet");
  checkb "insert dup" false (T.insert t "alphabet");
  T.check_invariants t;
  checkb "remove" true (T.remove t "alphabet");
  checkb "remove twice" false (T.remove t "alphabet");
  T.check_invariants t;
  checki "back to 2" 2 (T.size t);
  (* Removing "alphabet" must splice the split node away again. *)
  checki "node count restored" (T.node_count (build [ "alpha"; "beta" ])) (T.node_count t)

let test_remove_inner_terminal () =
  (* "car" is both terminal and a branching node: removing it must keep the
     node (it still branches). *)
  let t = build [ "car"; "cart"; "carbon" ] in
  checkb "remove inner" true (T.remove t "car");
  checkb "others intact" true (T.mem t "cart" && T.mem t "carbon");
  T.check_invariants t

let test_canonical_structure () =
  (* The compressed trie is canonical: node strings don't depend on
     insertion order. *)
  let words = [ "banana"; "band"; "bandana"; "bans"; "can"; "candy"; "con" ] in
  let t1 = build words in
  let t2 = build (List.rev words) in
  checki "same node count" (T.node_count t1) (T.node_count t2);
  List.iter
    (fun w ->
      let loc1, _ = T.locate t1 w and loc2, _ = T.locate t2 w in
      Alcotest.(check string)
        "same located node string"
        (T.node_string loc1.T.node)
        (T.node_string loc2.T.node))
    words

let test_prefix_heavy_is_deep () =
  let strs = Workload.prefix_heavy_strings ~seed:1 ~n:60 ~alphabet:4 in
  let t = T.build strs in
  T.check_invariants t;
  checkb "string depth Θ(n)" true (T.max_string_depth t >= 60)

let test_locate_path_and_subtree_sizes () =
  let strs = Workload.random_strings ~seed:2 ~n:300 ~alphabet:4 ~len:8 in
  let t = T.build strs in
  T.check_invariants t;
  Array.iter
    (fun s ->
      let loc, path = T.locate t s in
      (match loc.T.slot with
      | T.Exact -> checkb "terminal" true (T.node_terminal loc.T.node)
      | T.In_edge _ | T.No_child _ -> Alcotest.fail "stored string must locate exactly");
      match path with
      | first :: _ -> checki "path starts at root" (T.node_id (T.root t)) (T.node_id first)
      | [] -> Alcotest.fail "empty path")
    strs

let test_count_prefix_matches_oracle () =
  let strs = Workload.random_strings ~seed:3 ~n:400 ~alphabet:3 ~len:7 in
  let t = T.build strs in
  let prefixes = [ "a"; "ab"; "abc"; "b"; "bb"; "ccc"; "" ] in
  List.iter
    (fun p ->
      let oracle =
        Array.to_list strs
        |> List.filter (fun s -> String.length s >= String.length p && String.sub s 0 (String.length p) = p)
        |> List.length
      in
      checki ("prefix count " ^ p) oracle (T.count_with_prefix t p))
    prefixes

let test_iter_lexicographic () =
  let t = build [ "pear"; "apple"; "peach"; "apricot"; "plum" ] in
  let acc = ref [] in
  T.iter t ~f:(fun s -> acc := s :: !acc);
  Alcotest.(check (list string))
    "lexicographic order"
    [ "apple"; "apricot"; "peach"; "pear"; "plum" ]
    (List.rev !acc)

let test_path_node_count () =
  let t = build [ "abc"; "abcdef"; "abcdez" ] in
  (* Nodes: root(""), "abc", "abcde", leaves. Path root -> "abcde" has 3 nodes. *)
  checki "path nodes" 3 (T.path_node_count t ~from_string:"" ~to_string:"abcde");
  checki "trivial path" 1 (T.path_node_count t ~from_string:"abc" ~to_string:"abc")

let test_subset_nodes_exist_in_superset () =
  (* §2.3 refinement property for tries: node strings of D(T) are node
     strings of D(S). *)
  let strs = Workload.random_strings ~seed:4 ~n:300 ~alphabet:3 ~len:8 in
  let rng = Prng.create 5 in
  let sub = Array.of_list (List.filter (fun _ -> Prng.bool rng) (Array.to_list strs)) in
  let s = T.build strs in
  let t = T.build sub in
  Array.iter
    (fun w ->
      let _, path = T.locate t w in
      List.iter
        (fun n ->
          checkb "T-node string exists in S" true (T.node_of_string s (T.node_string n) <> None))
        path)
    sub

let test_refinement_soundness () =
  let strs = Workload.random_strings ~seed:6 ~n:400 ~alphabet:3 ~len:8 in
  let rng = Prng.create 7 in
  let sub = Array.of_list (List.filter (fun _ -> Prng.bool rng) (Array.to_list strs)) in
  let s = T.build strs in
  let t = T.build sub in
  let queries = Workload.string_queries ~seed:8 ~keys:strs ~n:200 in
  Array.iter
    (fun q ->
      let loc_t, _ = T.locate t q in
      (* The child location node string is a prefix of q by construction. *)
      match T.node_of_string s (T.node_string loc_t.T.node) with
      | None -> Alcotest.fail "refinement start missing in superset"
      | Some start ->
          let loc_s, _ = T.locate_from s start q in
          let direct, _ = T.locate s q in
          Alcotest.(check string)
            "refined = direct"
            (T.node_string direct.T.node)
            (T.node_string loc_s.T.node))
    queries

let qcheck_model_conformance =
  QCheck.Test.make ~name:"trie conforms to string-set model" ~count:150
    QCheck.(list (string_gen_of_size (Gen.int_range 0 8) (Gen.char_range 'a' 'd')))
    (fun words ->
      let t = T.create () in
      let module SS = Set.Make (String) in
      let model = ref SS.empty in
      List.iter
        (fun w ->
          if String.length w mod 3 = 2 then begin
            ignore (T.remove t w);
            model := SS.remove w !model
          end
          else begin
            ignore (T.insert t w);
            model := SS.add w !model
          end)
        words;
      T.check_invariants t;
      let acc = ref [] in
      T.iter t ~f:(fun s -> acc := s :: !acc);
      List.rev !acc = SS.elements !model)

let qcheck_insert_remove_node_count =
  QCheck.Test.make ~name:"insert then remove restores node count" ~count:150
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 20) (string_gen_of_size (Gen.int_range 1 6) (Gen.char_range 'a' 'c')))
        (string_gen_of_size (Gen.int_range 1 6) (Gen.char_range 'a' 'c')))
    (fun (words, extra) ->
      QCheck.assume (not (List.mem extra words));
      let t = T.build (Array.of_list words) in
      let before = T.node_count t in
      ignore (T.insert t extra);
      T.check_invariants t;
      ignore (T.remove t extra);
      T.check_invariants t;
      T.node_count t = before)


let test_strings_with_prefix () =
  let t = build [ "cat"; "car"; "cart"; "carbon"; "dog" ] in
  Alcotest.(check (list string)) "car subtree" [ "car"; "carbon"; "cart" ] (T.strings_with_prefix t "car");
  Alcotest.(check (list string)) "inside edge" [ "carbon" ] (T.strings_with_prefix t "carb");
  Alcotest.(check (list string)) "absent" [] (T.strings_with_prefix t "zebra");
  Alcotest.(check (list string)) "everything" [ "car"; "carbon"; "cart"; "cat"; "dog" ]
    (T.strings_with_prefix t "")

(* Everything observable about a trie, ids included. *)
let node_census t =
  let acc = ref [] in
  T.iter_nodes t ~f:(fun n ->
      acc := (T.node_id n, T.node_string n, T.node_terminal n, T.subtree_size n) :: !acc);
  List.sort compare !acc

let test_bulk_build_canonical_and_pooled () =
  let strs = Workload.random_strings ~seed:77 ~n:4_000 ~alphabet:4 ~len:9 in
  let t = T.build strs in
  T.check_invariants t;
  let census = node_census t in
  let rev = Array.of_list (List.rev (Array.to_list strs)) in
  checkb "permutation invariant (ids included)" true (node_census (T.build rev) = census);
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let tp = T.build ?pool strs in
          T.check_invariants tp;
          checkb "pooled build bit-identical" true (node_census tp = census)))
    [ 2; 4 ]

let qcheck_batch_matches_per_key_loop =
  QCheck.Test.make ~name:"trie insert/remove batch = per-key loop (jobs 1/2/4)" ~count:12
    QCheck.(triple (int_range 0 10_000) (int_range 0 120) (int_range 1 120))
    (fun (seed, nbase, nbatch) ->
      let base = Workload.random_strings ~seed ~n:nbase ~alphabet:3 ~len:6 in
      let batch = Workload.random_strings ~seed:(seed + 1) ~n:nbatch ~alphabet:3 ~len:6 in
      let rm =
        Array.append (Array.sub batch 0 (nbatch / 2)) (Array.sub base 0 (min nbase 20))
      in
      (* Reference: the per-key delta loop over the same starting trie. *)
      let tref = T.build base in
      let ins_ref = ref 0 and added_ref = ref [] in
      Array.iter
        (fun s ->
          let changed, added, removed = T.insert_delta tref s in
          assert (removed = []);
          if changed then incr ins_ref;
          added_ref := !added_ref @ added)
        batch;
      let rm_ref = ref 0 and dropped_ref = ref [] in
      Array.iter
        (fun s ->
          let changed, added, removed = T.remove_delta tref s in
          assert (added = []);
          if changed then incr rm_ref;
          dropped_ref := !dropped_ref @ removed)
        rm;
      let census_ref = node_census tref in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              let t = T.build ?pool base in
              let ins, added = T.insert_batch ?pool t batch in
              let rmv, dropped = T.remove_batch ?pool t rm in
              T.check_invariants t;
              ins = !ins_ref && added = !added_ref && rmv = !rm_ref
              && dropped = !dropped_ref
              && node_census t = census_ref))
        [ 1; 2; 4 ])

let test_prefix_scan_matches_oracle () =
  let strs = Workload.random_strings ~seed:9 ~n:400 ~alphabet:3 ~len:7 in
  let t = T.build strs in
  List.iter
    (fun p ->
      let loc, _ = T.locate t p in
      let total, sample, visited = T.prefix_scan t loc p ~limit:25 in
      checki ("total = count_with_prefix " ^ p) (T.count_with_prefix t p) total;
      let all = T.strings_with_prefix t p in
      checki ("sample bounded " ^ p) (min 25 total) (List.length sample);
      checkb ("sample is a lex prefix of the full report " ^ p) true
        (sample = List.filteri (fun i _ -> i < 25) all);
      if total > 0 then checkb ("walk charged " ^ p) true (visited <> []);
      let total_full, sample_full, _ = T.prefix_scan t loc p ~limit:10_000 in
      checki ("unclipped total " ^ p) total total_full;
      checkb ("unclipped sample = strings_with_prefix " ^ p) true (sample_full = all))
    [ "a"; "ab"; "abc"; "b"; "cc"; "zzz"; "" ]

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "basic membership" `Quick test_basic_membership;
    Alcotest.test_case "empty string key" `Quick test_empty_string_key;
    Alcotest.test_case "compression" `Quick test_compression;
    Alcotest.test_case "count_with_prefix" `Quick test_count_with_prefix;
    Alcotest.test_case "first_with_prefix" `Quick test_first_with_prefix;
    Alcotest.test_case "strings_with_prefix" `Quick test_strings_with_prefix;
    Alcotest.test_case "longest_common_prefix" `Quick test_longest_common_prefix;
    Alcotest.test_case "insert/remove roundtrip" `Quick test_insert_remove_roundtrip;
    Alcotest.test_case "remove inner terminal" `Quick test_remove_inner_terminal;
    Alcotest.test_case "canonical structure" `Quick test_canonical_structure;
    Alcotest.test_case "prefix-heavy input is deep" `Quick test_prefix_heavy_is_deep;
    Alcotest.test_case "locate path and terminals" `Quick test_locate_path_and_subtree_sizes;
    Alcotest.test_case "prefix count matches oracle" `Quick test_count_prefix_matches_oracle;
    Alcotest.test_case "iter lexicographic" `Quick test_iter_lexicographic;
    Alcotest.test_case "path node count" `Quick test_path_node_count;
    Alcotest.test_case "subset nodes exist in superset" `Quick test_subset_nodes_exist_in_superset;
    Alcotest.test_case "refinement soundness" `Quick test_refinement_soundness;
    Alcotest.test_case "bulk build canonical + pooled" `Quick test_bulk_build_canonical_and_pooled;
    Alcotest.test_case "prefix_scan = oracle" `Quick test_prefix_scan_matches_oracle;
    QCheck_alcotest.to_alcotest qcheck_model_conformance;
    QCheck_alcotest.to_alcotest qcheck_insert_remove_node_count;
    QCheck_alcotest.to_alcotest qcheck_batch_matches_per_key_loop;
  ]
