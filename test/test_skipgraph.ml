(* Tests for the Table 1 baselines: skip graphs, NoN skip graphs, family
   trees, deterministic SkipNet, bucket skip graphs. *)

module Network = Skipweb_net.Network
module SG = Skipweb_skipgraph.Skip_graph
module NoN = Skipweb_skipgraph.Non_skip_graph
module FT = Skipweb_skipgraph.Family_tree
module DS = Skipweb_skipgraph.Det_skipnet
module BSG = Skipweb_skipgraph.Bucket_skip_graph
module LL = Skipweb_skipgraph.Level_lists
module Lk = Skipweb_linklist.Linklist
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_opt = Alcotest.(check (option int))

let keys n = W.distinct_ints ~seed:42 ~n ~bound:(100 * n)

(* ------- Level_lists ------- *)

let test_level_lists_basics () =
  let ll = LL.create ~seed:1 ~keys:(keys 64) in
  LL.check_invariants ll;
  checki "size" 64 (LL.size ll);
  checkb "levels log-ish" true (LL.levels ll >= 4 && LL.levels ll <= 30);
  (* splice round trip *)
  let pos = LL.splice_in ll 999_999_999 in
  checkb "inserted at end" true (pos = 64);
  checkb "mem" true (LL.mem ll 999_999_999);
  ignore (LL.splice_out ll 999_999_999);
  checkb "gone" false (LL.mem ll 999_999_999);
  LL.check_invariants ll

let test_level_lists_neighbor_scan () =
  let ll = LL.create ~seed:2 ~keys:(keys 32) in
  (* Level-0 neighbors are adjacent positions. *)
  for i = 0 to 30 do
    Alcotest.(check (option int)) "level-0 right" (Some (i + 1)) (LL.right_neighbor ll i 0);
    Alcotest.(check (option int)) "level-0 left" (Some i) (LL.left_neighbor ll (i + 1) 0)
  done;
  Alcotest.(check (option int)) "right end" None (LL.right_neighbor ll 31 0)

(* ------- Skip graphs ------- *)

let make_sg n =
  let net = Network.create ~hosts:(n + 64) in
  (net, SG.create ~net ~seed:7 ~keys:(keys n))

let test_sg_search_correct () =
  let _, sg = make_sg 256 in
  let ks = SG.keys sg in
  let rng = Prng.create 9 in
  let queries = W.query_mix ~seed:10 ~keys:ks ~n:200 ~bound:25_600 in
  Array.iter
    (fun q ->
      let r = SG.search_from_random sg ~rng q in
      check_opt "pred" (Lk.predecessor ks q) r.SG.predecessor;
      check_opt "succ" (Lk.successor ks q) r.SG.successor;
      check_opt "nearest" (Lk.nearest ks q) r.SG.nearest)
    queries

let test_sg_messages_logarithmic () =
  let _, sg = make_sg 1024 in
  let rng = Prng.create 11 in
  let total = ref 0 in
  for i = 0 to 199 do
    let r = SG.search_from_random sg ~rng (i * 512) in
    total := !total + r.SG.messages
  done;
  let mean = float_of_int !total /. 200.0 in
  (* Expected ~ 2 log2 1024 = 20; generous sanity bound. *)
  checkb "search messages logarithmic" true (mean > 2.0 && mean < 60.0)

let test_sg_memory_logarithmic () =
  let net, sg = make_sg 1024 in
  ignore net;
  let mems = SG.memory_per_host sg in
  let worst = List.fold_left max 0 mems in
  checkb "per-host memory O(log n)" true (worst <= 2 + (2 * 40))

let test_sg_insert_delete () =
  let _, sg = make_sg 128 in
  let cost = SG.insert sg 999_999 in
  checkb "insert cost positive" true (cost > 0);
  checkb "searchable" true ((SG.search sg ~from:0 999_999).SG.predecessor = Some 999_999);
  SG.check_invariants sg;
  let dcost = SG.delete sg 999_999 in
  checkb "delete cost positive" true (dcost > 0);
  checkb "gone" true ((SG.search sg ~from:0 999_999).SG.predecessor <> Some 999_999);
  SG.check_invariants sg;
  checkb "duplicate insert rejected" true
    (try
       ignore (SG.insert sg (SG.keys sg).(0));
       false
     with Invalid_argument _ -> true)

let test_sg_empty () =
  let net = Network.create ~hosts:4 in
  let sg = SG.create ~net ~seed:1 ~keys:[||] in
  let r = SG.search sg ~from:0 5 in
  checkb "empty search" true (r.SG.nearest = None && r.SG.messages = 0)

(* ------- NoN skip graphs ------- *)

let test_non_search_correct () =
  let net = Network.create ~hosts:300 in
  let g = NoN.create ~net ~seed:13 ~keys:(keys 256) in
  let ks = keys 256 in
  let rng = Prng.create 14 in
  let queries = W.query_mix ~seed:15 ~keys:ks ~n:200 ~bound:25_600 in
  Array.iter
    (fun q ->
      let r = NoN.search_from_random g ~rng q in
      check_opt "pred" (Lk.predecessor ks q) r.NoN.predecessor;
      check_opt "nearest" (Lk.nearest ks q) r.NoN.nearest)
    queries

let test_non_fewer_hops_than_plain () =
  let n = 2048 in
  let net1 = Network.create ~hosts:(n + 8) and net2 = Network.create ~hosts:(n + 8) in
  let sg = SG.create ~net:net1 ~seed:7 ~keys:(keys n) in
  let non = NoN.create ~net:net2 ~seed:7 ~keys:(keys n) in
  let rng1 = Prng.create 20 and rng2 = Prng.create 20 in
  let sgm = ref 0 and nonm = ref 0 in
  for i = 0 to 149 do
    let q = i * 1357 in
    sgm := !sgm + (SG.search_from_random sg ~rng:rng1 q).SG.messages;
    nonm := !nonm + (NoN.search_from_random non ~rng:rng2 q).NoN.messages
  done;
  checkb "lookahead helps" true (!nonm < !sgm)

let test_non_memory_larger () =
  let n = 512 in
  let net1 = Network.create ~hosts:(n + 8) and net2 = Network.create ~hosts:(n + 8) in
  let sg = SG.create ~net:net1 ~seed:7 ~keys:(keys n) in
  let non = NoN.create ~net:net2 ~seed:7 ~keys:(keys n) in
  let max_l = List.fold_left max 0 in
  checkb "NoN tables cost memory" true (max_l (NoN.memory_per_host non) > max_l (SG.memory_per_host sg))

let test_non_update_costlier () =
  let n = 512 in
  let net1 = Network.create ~hosts:(n + 8) and net2 = Network.create ~hosts:(n + 8) in
  let sg = SG.create ~net:net1 ~seed:7 ~keys:(keys n) in
  let non = NoN.create ~net:net2 ~seed:7 ~keys:(keys n) in
  let c1 = SG.insert sg 123_456_789 in
  let c2 = NoN.insert non 123_456_789 in
  checkb "NoN insert pays for tables" true (c2 > c1);
  ignore (NoN.delete non 123_456_789);
  ignore (SG.delete sg 123_456_789)

(* ------- Family trees (constant-degree comparator) ------- *)

let test_ft_search_correct () =
  let net = Network.create ~hosts:600 in
  let ks = keys 500 in
  let ft = FT.create ~net ~seed:21 ~keys:ks in
  FT.check_invariants ft;
  let queries = W.query_mix ~seed:22 ~keys:ks ~n:200 ~bound:50_000 in
  Array.iter
    (fun q ->
      let r = FT.search ft ~from:0 q in
      check_opt "pred" (Lk.predecessor ks q) r.FT.predecessor;
      check_opt "succ" (Lk.successor ks q) r.FT.successor)
    queries

let test_ft_constant_degree () =
  let net = Network.create ~hosts:3000 in
  let ft = FT.create ~net ~seed:23 ~keys:(keys 2000) in
  checkb "max degree O(1)" true (FT.max_degree ft <= 3);
  List.iter (fun m -> checkb "O(1) memory" true (m <= 5)) (FT.memory_per_host ft)

let test_ft_depth_logarithmic () =
  let net = Network.create ~hosts:5000 in
  let ft = FT.create ~net ~seed:24 ~keys:(keys 4096) in
  checkb "depth O(log n)" true (FT.depth ft <= 50)

let test_ft_insert_delete () =
  let net = Network.create ~hosts:300 in
  let ft = FT.create ~net ~seed:25 ~keys:(keys 128) in
  let c = FT.insert ft 424_242 in
  checkb "insert cost positive" true (c > 0);
  FT.check_invariants ft;
  checkb "found" true ((FT.search ft ~from:0 424_242).FT.predecessor = Some 424_242);
  let d = FT.delete ft 424_242 in
  checkb "delete cost positive" true (d > 0);
  FT.check_invariants ft;
  checki "size restored" 128 (FT.size ft)

(* ------- Deterministic SkipNet ------- *)

let test_ds_build_invariants () =
  List.iter
    (fun n ->
      let net = Network.create ~hosts:(2 * n + 16) in
      let ds = DS.create ~net ~keys:(keys n) in
      DS.check_invariants ds;
      checkb "height O(log n)" true (DS.height ds <= 3 + (2 * 14)))
    [ 1; 2; 3; 7; 64; 500; 1024 ]

let test_ds_search_correct () =
  let net = Network.create ~hosts:600 in
  let ks = keys 400 in
  let ds = DS.create ~net ~keys:ks in
  let queries = W.query_mix ~seed:26 ~keys:ks ~n:200 ~bound:40_000 in
  Array.iter
    (fun q ->
      let r = DS.search ds ~from:0 q in
      check_opt "pred" (Lk.predecessor ks q) r.DS.predecessor;
      check_opt "succ" (Lk.successor ks q) r.DS.successor)
    queries

let test_ds_insert_maintains_invariant () =
  let net = Network.create ~hosts:1200 in
  let ds = DS.create ~net ~keys:(keys 64) in
  let rng = Prng.create 27 in
  for _ = 1 to 400 do
    let k = Prng.int rng 1_000_000 in
    (try ignore (DS.insert ds k) with Invalid_argument _ -> ());
    DS.check_invariants ds
  done;
  checkb "grew" true (DS.size ds > 64)

let test_ds_sequential_inserts () =
  (* Sorted insertion order is the classic worst case for naive structures;
     the 1-2-3 invariant must hold throughout. *)
  let net = Network.create ~hosts:600 in
  let ds = DS.create ~net ~keys:[| 0 |] in
  for k = 1 to 300 do
    ignore (DS.insert ds (k * 10));
    DS.check_invariants ds
  done;
  let r = DS.search ds ~from:0 1495 in
  check_opt "pred after inserts" (Some 1490) r.DS.predecessor


let test_ds_delete_basic () =
  let net = Network.create ~hosts:600 in
  let ks = keys 200 in
  let ds = DS.create ~net ~keys:ks in
  let cost = DS.delete ds ks.(100) in
  checkb "delete cost positive" true (cost > 0);
  DS.check_invariants ds;
  checki "size shrank" 199 (DS.size ds);
  checkb "gone" true ((DS.search ds ~from:0 ks.(100)).DS.predecessor <> Some ks.(100));
  checkb "absent delete rejected" true
    (try
       ignore (DS.delete ds ks.(100));
       false
     with Invalid_argument _ -> true)

let test_ds_delete_all () =
  let net = Network.create ~hosts:400 in
  let ks = keys 128 in
  let ds = DS.create ~net ~keys:ks in
  Array.iter
    (fun k ->
      ignore (DS.delete ds k);
      DS.check_invariants ds)
    ks;
  checki "emptied" 0 (DS.size ds)

let qcheck_ds_mixed_ops =
  QCheck.Test.make ~name:"det skipnet mixed insert/delete keeps 1-2-3 invariant" ~count:40
    QCheck.(pair small_int (int_range 20 250))
    (fun (seed, ops) ->
      let net = Network.create ~hosts:2000 in
      let ds = DS.create ~net ~keys:[| 500_000 |] in
      let rng = Prng.create seed in
      let module IS = Set.Make (Int) in
      let model = ref (IS.singleton 500_000) in
      for _ = 1 to ops do
        let k = Prng.int rng 1_000_000 in
        if Prng.coin rng ~p:0.6 then begin
          if not (IS.mem k !model) then begin
            ignore (DS.insert ds k);
            model := IS.add k !model
          end
        end
        else if IS.cardinal !model > 1 then begin
          let victim = IS.choose !model in
          ignore (DS.delete ds victim);
          model := IS.remove victim !model
        end;
        DS.check_invariants ds
      done;
      (* The surviving keys answer searches correctly. *)
      IS.for_all
        (fun k -> (DS.search ds ~from:0 k).DS.predecessor = Some k)
        !model
      && DS.size ds = IS.cardinal !model)

(* ------- Bucket skip graphs ------- *)

let test_bsg_search_correct () =
  let net = Network.create ~hosts:64 in
  let ks = keys 512 in
  let b = BSG.create ~net ~seed:31 ~keys:ks ~buckets:32 in
  BSG.check_invariants b;
  let rng = Prng.create 32 in
  let queries = W.query_mix ~seed:33 ~keys:ks ~n:300 ~bound:51_200 in
  Array.iter
    (fun q ->
      let r = BSG.search b ~rng q in
      check_opt "pred" (Lk.predecessor ks q) r.BSG.predecessor;
      check_opt "succ" (Lk.successor ks q) r.BSG.successor;
      check_opt "nearest" (Lk.nearest ks q) r.BSG.nearest)
    queries

let test_bsg_fewer_messages_than_flat () =
  let n = 2048 in
  let net1 = Network.create ~hosts:(n + 8) and net2 = Network.create ~hosts:64 in
  let sg = SG.create ~net:net1 ~seed:7 ~keys:(keys n) in
  let b = BSG.create ~net:net2 ~seed:7 ~keys:(keys n) ~buckets:32 in
  let rng1 = Prng.create 34 and rng2 = Prng.create 34 in
  let m1 = ref 0 and m2 = ref 0 in
  for i = 0 to 99 do
    let q = i * 2040 in
    m1 := !m1 + (SG.search_from_random sg ~rng:rng1 q).SG.messages;
    m2 := !m2 + (BSG.search b ~rng:rng2 q).BSG.messages
  done;
  checkb "log H < log n messages" true (!m2 < !m1)

let test_bsg_insert_delete_and_split () =
  let net = Network.create ~hosts:64 in
  let b = BSG.create ~net ~seed:35 ~keys:(keys 128) ~buckets:8 in
  let rng = Prng.create 36 in
  let before = BSG.bucket_count b in
  for k = 0 to 299 do
    let key = 1_000_000 + (k * 7) in
    ignore (BSG.insert b ~rng key)
  done;
  BSG.check_invariants b;
  checkb "splits happened" true (BSG.bucket_count b > before);
  checki "all present" (128 + 300) (BSG.size b);
  ignore (BSG.delete b ~rng 1_000_000);
  BSG.check_invariants b;
  checki "deleted" (128 + 299) (BSG.size b)

let qcheck_sg_search_matches_oracle =
  QCheck.Test.make ~name:"skip graph search = sorted-array oracle" ~count:60
    QCheck.(triple small_int (int_range 1 128) (int_range 0 20_000))
    (fun (seed, n, q) ->
      let ks = W.distinct_ints ~seed:(seed + 1) ~n ~bound:20_000 in
      let net = Network.create ~hosts:(n + 4) in
      let sg = SG.create ~net ~seed ~keys:ks in
      let r = SG.search sg ~from:(seed mod n) q in
      r.SG.predecessor = Lk.predecessor ks q && r.SG.successor = Lk.successor ks q)

let qcheck_ds_random_build_invariants =
  QCheck.Test.make ~name:"det skipnet invariants over random sizes" ~count:40
    QCheck.(pair small_int (int_range 1 300))
    (fun (seed, n) ->
      let ks = W.distinct_ints ~seed:(seed + 2) ~n ~bound:(20 * n + 40) in
      let net = Network.create ~hosts:(n + 8) in
      let ds = DS.create ~net ~keys:ks in
      DS.check_invariants ds;
      true)

(* ------- pinned message-model invariance guards ------- *)

(* Totals captured on the flat-array representation before the chunked
   container migration; the chunked code must reproduce them bit-for-bit
   (the container is host-local and must be invisible to the message
   model). *)

let test_pinned_det_skipnet_churn_messages () =
  let bound = 10_000 in
  let ks = W.distinct_ints ~seed:4 ~n:200 ~bound in
  let net = Network.create ~hosts:1024 in
  let t = DS.create ~net ~keys:ks in
  let pool = Hashtbl.create 64 in
  let data = ref (Array.copy ks) in
  let len = ref (Array.length ks) in
  Array.iteri (fun i k -> Hashtbl.replace pool k i) !data;
  let pool_mem k = Hashtbl.mem pool k in
  let pool_add k =
    if not (pool_mem k) then begin
      if !len = Array.length !data then begin
        let b = Array.make (max 8 (2 * !len)) 0 in
        Array.blit !data 0 b 0 !len;
        data := b
      end;
      !data.(!len) <- k;
      Hashtbl.replace pool k !len;
      len := !len + 1
    end
  in
  let pool_take rng =
    if !len = 0 then None
    else begin
      let i = Prng.int rng !len in
      let k = !data.(i) in
      let last = !len - 1 in
      !data.(i) <- !data.(last);
      Hashtbl.replace pool !data.(i) i;
      len := last;
      Hashtbl.remove pool k;
      Some k
    end
  in
  let rng = Prng.create 0xfeed in
  let ops = ref 0 in
  for i = 0 to 149 do
    match i mod 4 with
    | 0 ->
        let rec fresh () =
          let k = Prng.int rng bound in
          if pool_mem k then fresh () else k
        in
        let k = fresh () in
        ops := !ops + DS.insert t k;
        pool_add k
    | 1 -> (
        match pool_take rng with
        | Some k -> ops := !ops + DS.delete t k
        | None -> ())
    | _ ->
        let r = DS.search t ~from:0 (Prng.int rng bound) in
        ops := !ops + r.DS.messages
  done;
  DS.check_invariants t;
  checki "pinned op messages" 1260 !ops;
  checki "pinned network total" 804 (Network.total_messages net);
  checki "pinned final size" 200 (DS.size t)

let test_pinned_level_lists_fingerprint () =
  (* Level_lists has no network; fingerprint the structure state the
     skip-graph routing depends on: positions, ids, heights, neighbors. *)
  let ks = W.distinct_ints ~seed:11 ~n:150 ~bound:5000 in
  let t = LL.create ~seed:11 ~keys:ks in
  let rng = Prng.create 0xabba in
  for i = 0 to 59 do
    if i mod 2 = 0 then begin
      let rec fresh () =
        let k = Prng.int rng 5000 in
        if LL.mem t k then fresh () else k
      in
      ignore (LL.splice_in t (fresh ()))
    end
    else begin
      let n = LL.size t in
      let k = LL.key t (Prng.int rng n) in
      ignore (LL.splice_out t k)
    end
  done;
  LL.check_invariants t;
  let acc = ref 0 in
  for i = 0 to LL.size t - 1 do
    acc := !acc + (LL.key t i * 3) + (LL.id t i * 7) + (LL.top_level t i * 11);
    (match LL.right_neighbor t i 1 with Some j -> acc := !acc + (13 * j) | None -> ());
    (match LL.left_neighbor t i 2 with Some j -> acc := !acc + (17 * j) | None -> ())
  done;
  checki "pinned fingerprint" 1501041 !acc;
  checki "pinned size" 150 (LL.size t);
  checki "pinned levels" 13 (LL.levels t)

let suite =
  [
    Alcotest.test_case "level lists basics" `Quick test_level_lists_basics;
    Alcotest.test_case "level lists neighbors" `Quick test_level_lists_neighbor_scan;
    Alcotest.test_case "skip graph search correct" `Quick test_sg_search_correct;
    Alcotest.test_case "skip graph messages log" `Quick test_sg_messages_logarithmic;
    Alcotest.test_case "skip graph memory log" `Quick test_sg_memory_logarithmic;
    Alcotest.test_case "skip graph insert/delete" `Quick test_sg_insert_delete;
    Alcotest.test_case "skip graph empty" `Quick test_sg_empty;
    Alcotest.test_case "NoN search correct" `Quick test_non_search_correct;
    Alcotest.test_case "NoN fewer hops" `Quick test_non_fewer_hops_than_plain;
    Alcotest.test_case "NoN memory larger" `Quick test_non_memory_larger;
    Alcotest.test_case "NoN update costlier" `Quick test_non_update_costlier;
    Alcotest.test_case "family tree search correct" `Quick test_ft_search_correct;
    Alcotest.test_case "family tree constant degree" `Quick test_ft_constant_degree;
    Alcotest.test_case "family tree depth log" `Quick test_ft_depth_logarithmic;
    Alcotest.test_case "family tree insert/delete" `Quick test_ft_insert_delete;
    Alcotest.test_case "det skipnet build invariants" `Quick test_ds_build_invariants;
    Alcotest.test_case "det skipnet search correct" `Quick test_ds_search_correct;
    Alcotest.test_case "det skipnet insert invariant" `Quick test_ds_insert_maintains_invariant;
    Alcotest.test_case "det skipnet sequential inserts" `Quick test_ds_sequential_inserts;
    Alcotest.test_case "det skipnet delete basic" `Quick test_ds_delete_basic;
    Alcotest.test_case "det skipnet delete all" `Quick test_ds_delete_all;
    QCheck_alcotest.to_alcotest qcheck_ds_mixed_ops;
    Alcotest.test_case "bucket skip graph search correct" `Quick test_bsg_search_correct;
    Alcotest.test_case "bucket skip graph fewer messages" `Quick test_bsg_fewer_messages_than_flat;
    Alcotest.test_case "bucket skip graph splits" `Quick test_bsg_insert_delete_and_split;
    QCheck_alcotest.to_alcotest qcheck_sg_search_matches_oracle;
    QCheck_alcotest.to_alcotest qcheck_ds_random_build_invariants;
    Alcotest.test_case "pinned det skipnet churn messages" `Quick
      test_pinned_det_skipnet_churn_messages;
    Alcotest.test_case "pinned level lists fingerprint" `Quick
      test_pinned_level_lists_fingerprint;
  ]
