(* Tests for Skipweb_core: the generic hierarchy (§2.3–2.5, §4), its four
   instantiations (§3), and the blocked 1-d structure (§2.4.1). *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module B1 = Skipweb_core.Blocked1d
module Lk = Skipweb_linklist.Linklist
module Cq = Skipweb_quadtree.Cqtree
module Ct = Skipweb_trie.Ctrie
module TM = Skipweb_trapmap.Trapmap
module Point = Skipweb_geom.Point
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_opt = Alcotest.(check (option int))

module HInt = H.Make (I.Ints)
module HP2 = H.Make (I.Points2d)
module HP3 = H.Make (I.Points3d)
module HStr = H.Make (I.Strings)
module HSeg = H.Make (I.Segments)

let keys n = W.distinct_ints ~seed:5 ~n ~bound:(100 * n)

(* ------- generic hierarchy over sorted sets ------- *)

let test_hint_build () =
  let net = Network.create ~hosts:256 in
  let h = HInt.build ~net ~seed:3 (keys 256) in
  HInt.check_invariants h;
  checki "size" 256 (HInt.size h);
  checkb "levels = ceil log2 n + 1" true (HInt.levels h = 9);
  checkb "storage O(n log n)" true
    (HInt.total_storage h > 256 && HInt.total_storage h < 40 * 256)

let test_hint_level_halving () =
  let net = Network.create ~hosts:1024 in
  let h = HInt.build ~net ~seed:4 (keys 1024) in
  (* Figure 2: each level's sets together hold every element, and the mean
     set size halves per level. *)
  for level = 0 to HInt.levels h - 1 do
    let sizes = HInt.level_set_sizes h level in
    checki "level partitions" 1024 (List.fold_left ( + ) 0 sizes)
  done;
  let top_sizes = HInt.level_set_sizes h (HInt.levels h - 1) in
  let top_max = List.fold_left max 0 top_sizes in
  checkb "top-level sets O(1)" true (top_max <= 8)

let test_hint_query_correct () =
  let net = Network.create ~hosts:512 in
  let ks = keys 512 in
  let h = HInt.build ~net ~seed:6 ks in
  let rng = Prng.create 7 in
  let queries = W.query_mix ~seed:8 ~keys:ks ~n:300 ~bound:51_200 in
  Array.iter
    (fun q ->
      let answer, stats = HInt.query h ~rng q in
      check_opt "nearest" (Lk.nearest ks q) answer;
      checkb "visited >= levels" true (stats.HInt.ranges_visited >= HInt.levels h);
      checki "per-level list length" (HInt.levels h) (List.length stats.HInt.per_level_visits))
    queries

let test_hint_messages_logarithmic () =
  let net = Network.create ~hosts:4096 in
  let ks = keys 4096 in
  let h = HInt.build ~net ~seed:9 ks in
  let rng = Prng.create 10 in
  let total = ref 0 in
  for i = 0 to 199 do
    let _, stats = HInt.query h ~rng (i * 997) in
    total := !total + stats.HInt.messages
  done;
  let mean = float_of_int !total /. 200.0 in
  (* 13 levels; ~1-2 messages per level under hashed placement. *)
  checkb "messages O(log n)" true (mean > 4.0 && mean < 45.0)

let test_hint_memory_balanced () =
  let net = Network.create ~hosts:512 in
  let _ = HInt.build ~net ~seed:11 (keys 512) in
  (* Hashed placement: max per-host memory is O(log n) w.h.p. *)
  checkb "max host memory O(log n)" true (Network.max_memory net <= 8 * 10)

let test_hint_insert_remove () =
  let net = Network.create ~hosts:128 in
  let ks = keys 128 in
  let h = HInt.build ~net ~seed:12 ks in
  let cost = HInt.insert h 987_654 in
  checkb "insert cost positive" true (cost > 0);
  HInt.check_invariants h;
  checki "size grew" 129 (HInt.size h);
  let rng = Prng.create 13 in
  let answer, _ = HInt.query h ~rng 987_654 in
  check_opt "inserted key found" (Some 987_654) answer;
  let dcost = HInt.remove h 987_654 in
  checkb "remove cost positive" true (dcost > 0);
  HInt.check_invariants h;
  checki "size restored" 128 (HInt.size h);
  checki "duplicate insert is free" 0 (HInt.insert h ks.(0));
  checki "absent remove is free" 0 (HInt.remove h 555_555_555)

let test_hint_grow_from_empty () =
  let net = Network.create ~hosts:64 in
  let h = HInt.build ~net ~seed:14 [||] in
  for k = 1 to 40 do
    ignore (HInt.insert h (k * 11))
  done;
  HInt.check_invariants h;
  checki "all inserted" 40 (HInt.size h);
  checkb "levels grew" true (HInt.levels h >= 6);
  let rng = Prng.create 15 in
  let answer, _ = HInt.query h ~rng 112 in
  check_opt "nearest after growth" (Some 110) answer

(* Regression: remove must shrink the level hierarchy back to
   ceil(log2 n) + 1 levels — the seed implementation kept dead levels
   forever after heavy deletion, inflating linking costs and per-host
   memory. *)
let test_hint_shrink_top () =
  let required_top n =
    let rec go k = if 1 lsl k >= max 1 n then k else go (k + 1) in
    go 0
  in
  let net = Network.create ~hosts:256 in
  let ks = W.distinct_ints ~seed:80 ~n:1024 ~bound:200_000 in
  let h = HInt.build ~net ~seed:81 ks in
  checki "levels at 1024" (required_top 1024 + 1) (HInt.levels h);
  Array.iteri (fun i k -> if i >= 16 then ignore (HInt.remove h k)) ks;
  checki "size after deletion" 16 (HInt.size h);
  checki "levels shrink to required" (required_top 16 + 1) (HInt.levels h);
  HInt.check_invariants h;
  (* The survivors are still fully queryable. *)
  let rng = Prng.create 82 in
  Array.iter
    (fun k ->
      let answer, _ = HInt.query h ~rng k in
      check_opt "survivor found after shrink" (Some k) answer)
    (Array.sub ks 0 16);
  (* Growing again from the shrunk state is sound too. *)
  for j = 1 to 100 do
    ignore (HInt.insert h (500_000 + j))
  done;
  checki "levels regrow" (required_top 116 + 1) (HInt.levels h);
  HInt.check_invariants h

let test_hint_halving_ablation () =
  (* A3: a biased halving probability still yields a correct structure. *)
  let net = Network.create ~hosts:256 in
  let ks = keys 256 in
  let h = HInt.build ~net ~seed:16 ~p:0.25 ks in
  HInt.check_invariants h;
  let rng = Prng.create 17 in
  Array.iter
    (fun q ->
      let answer, _ = HInt.query h ~rng q in
      check_opt "nearest under p=0.25" (Lk.nearest ks q) answer)
    (W.query_mix ~seed:18 ~keys:ks ~n:100 ~bound:25_600)

(* ------- hierarchy over quadtrees (Theorem 2 for §3.1) ------- *)

let test_hp2_point_location () =
  let net = Network.create ~hosts:512 in
  let pts = W.uniform_points ~seed:19 ~n:512 ~dim:2 in
  let h = HP2.build ~net ~seed:20 pts in
  HP2.check_invariants h;
  let oracle = Cq.build ~dim:2 pts in
  let rng = Prng.create 21 in
  let queries = W.uniform_query_points ~seed:22 ~n:150 ~dim:2 in
  Array.iter
    (fun q ->
      let answer, _ = HP2.query h ~rng q in
      let loc, _ = Cq.locate oracle q in
      let depth, _ = Cq.node_cube loc.Cq.node in
      checki "same located cell depth" depth answer.I.cell_depth)
    queries

let test_hp2_deep_input_stays_logarithmic () =
  (* Theorem 2's punchline: O(log n) messages even when the underlying
     quadtree has linear depth. *)
  let net = Network.create ~hosts:64 in
  let pts = W.diagonal_points ~n:25 ~dim:2 in
  let h = HP2.build ~net ~seed:23 pts in
  let oracle = Cq.build ~dim:2 pts in
  checkb "oracle is deep" true (Cq.depth oracle >= 20);
  let rng = Prng.create 24 in
  let total = ref 0 in
  let queries = W.uniform_query_points ~seed:25 ~n:100 ~dim:2 in
  Array.iter
    (fun q ->
      let _, stats = HP2.query h ~rng q in
      total := !total + stats.HP2.ranges_visited)
    queries;
  let mean = float_of_int !total /. 100.0 in
  (* levels = 5; expect a small constant per level, far below depth 20. *)
  checkb "visits stay logarithmic on deep input" true (mean < 18.0)

let test_hp3_octree () =
  let net = Network.create ~hosts:256 in
  let pts = W.uniform_points ~seed:26 ~n:256 ~dim:3 in
  let h = HP3.build ~net ~seed:27 pts in
  HP3.check_invariants h;
  let oracle = Cq.build ~dim:3 pts in
  let rng = Prng.create 28 in
  Array.iter
    (fun q ->
      let answer, _ = HP3.query h ~rng q in
      let loc, _ = Cq.locate oracle q in
      let depth, _ = Cq.node_cube loc.Cq.node in
      checki "octree located cell depth" depth answer.I.cell_depth)
    (W.uniform_query_points ~seed:29 ~n:80 ~dim:3)

let test_hp2_insert_remove () =
  let net = Network.create ~hosts:128 in
  let pts = W.uniform_points ~seed:30 ~n:100 ~dim:2 in
  let h = HP2.build ~net ~seed:31 pts in
  let extra = Point.create [ 0.111; 0.222 ] in
  let cost = HP2.insert h extra in
  checkb "insert cost positive" true (cost > 0);
  HP2.check_invariants h;
  let rng = Prng.create 32 in
  let answer, _ = HP2.query h ~rng extra in
  checkb "inserted point located" true
    (match answer.I.cell_point with Some p -> Point.dist p extra < 1e-6 | None -> false);
  ignore (HP2.remove h extra);
  HP2.check_invariants h;
  checki "size restored" 100 (HP2.size h)

(* ------- hierarchy over tries (Theorem 2 for §3.2) ------- *)

let test_hstr_answers () =
  let net = Network.create ~hosts:512 in
  let strs = W.random_strings ~seed:33 ~n:400 ~alphabet:3 ~len:8 in
  let h = HStr.build ~net ~seed:34 strs in
  HStr.check_invariants h;
  let oracle = Ct.build strs in
  let rng = Prng.create 35 in
  Array.iter
    (fun q ->
      let answer, _ = HStr.query h ~rng q in
      Alcotest.(check string) "lcp" (Ct.longest_common_prefix oracle q) answer.I.lcp;
      checki "matches" (Ct.count_with_prefix oracle q) answer.I.matches)
    (W.string_queries ~seed:36 ~keys:strs ~n:200)

let test_hstr_deep_input () =
  let net = Network.create ~hosts:64 in
  let strs = W.prefix_heavy_strings ~seed:37 ~n:48 ~alphabet:4 in
  let h = HStr.build ~net ~seed:38 strs in
  let oracle = Ct.build strs in
  checkb "oracle trie is deep" true (Ct.max_string_depth oracle >= 48);
  let rng = Prng.create 39 in
  let total = ref 0 in
  Array.iter
    (fun q ->
      let _, stats = HStr.query h ~rng q in
      total := !total + stats.HStr.ranges_visited)
    (W.string_queries ~seed:40 ~keys:strs ~n:100);
  checkb "visits logarithmic on deep trie" true (float_of_int !total /. 100.0 < 25.0)

let test_hstr_insert_remove () =
  let net = Network.create ~hosts:64 in
  let strs = W.random_strings ~seed:41 ~n:60 ~alphabet:3 ~len:6 in
  let h = HStr.build ~net ~seed:42 strs in
  ignore (HStr.insert h "zzzybra");
  HStr.check_invariants h;
  let rng = Prng.create 43 in
  let answer, _ = HStr.query h ~rng "zzzybra" in
  Alcotest.(check string) "inserted string found" "zzzybra" answer.I.lcp;
  ignore (HStr.remove h "zzzybra");
  HStr.check_invariants h;
  checki "size restored" 60 (HStr.size h)

(* ------- hierarchy over trapezoidal maps (Theorem 2 for §3.3) ------- *)

let test_hseg_point_location () =
  let net = Network.create ~hosts:256 in
  let segs = W.disjoint_segments ~seed:44 ~n:60 in
  let h = HSeg.build ~net ~seed:45 segs in
  HSeg.check_invariants h;
  let oracle = TM.build segs in
  let rng = Prng.create 46 in
  Array.iter
    (fun q ->
      match TM.locate_opt oracle q with
      | None -> ()
      | Some tr ->
          let answer, stats = HSeg.query h ~rng q in
          Alcotest.(check (option int))
            "same bounding segment above"
            (Option.map Skipweb_geom.Segment.id (TM.trap_top tr))
            answer.I.above;
          Alcotest.(check (option int))
            "same bounding segment below"
            (Option.map Skipweb_geom.Segment.id (TM.trap_bottom tr))
            answer.I.below;
          checkb "one range visited per level" true
            (stats.HSeg.ranges_visited <= 3 * HSeg.levels h))
    (W.trapmap_query_points ~seed:47 ~n:150)

let test_hseg_insert () =
  let net = Network.create ~hosts:128 in
  let segs = W.disjoint_segments ~seed:48 ~n:41 in
  let h = HSeg.build ~net ~seed:49 (Array.sub segs 0 40) in
  let cost = HSeg.insert h segs.(40) in
  checkb "segment insert cost positive" true (cost > 0);
  HSeg.check_invariants h;
  checki "size grew" 41 (HSeg.size h)

(* ------- blocked 1-d skip-web (§2.4.1) ------- *)

let test_blocked_build () =
  let net = Network.create ~hosts:256 in
  let b = B1.build ~net ~seed:50 ~m:16 (keys 256) in
  B1.check_invariants b;
  checki "size" 256 (B1.size b);
  checkb "has basic levels" true (List.length (B1.basic_levels b) >= 2);
  checkb "replication only a constant factor" true
    (B1.replicated_storage b < 4 * B1.total_storage b)

let test_blocked_query_correct () =
  let net = Network.create ~hosts:512 in
  let ks = keys 512 in
  let b = B1.build ~net ~seed:51 ~m:16 ks in
  let rng = Prng.create 52 in
  Array.iter
    (fun q ->
      let r = B1.query b ~rng q in
      check_opt "pred" (Lk.predecessor ks q) r.B1.predecessor;
      check_opt "succ" (Lk.successor ks q) r.B1.successor;
      check_opt "nearest" (Lk.nearest ks q) r.B1.nearest)
    (W.query_mix ~seed:53 ~keys:ks ~n:300 ~bound:51_200)

let test_blocked_fewer_messages_than_generic () =
  (* Ablation A1: contiguous blocking beats hashed placement. *)
  let n = 4096 in
  let net1 = Network.create ~hosts:n and net2 = Network.create ~hosts:n in
  let ks = keys n in
  let blocked = B1.build ~net:net1 ~seed:54 ~m:(4 * 13) ks in
  let generic = HInt.build ~net:net2 ~seed:54 ks in
  let rng1 = Prng.create 55 and rng2 = Prng.create 55 in
  let mb = ref 0 and mg = ref 0 in
  for i = 0 to 199 do
    let q = i * 1999 in
    mb := !mb + (B1.query blocked ~rng:rng1 q).B1.messages;
    let _, stats = HInt.query generic ~rng:rng2 q in
    mg := !mg + stats.HInt.messages
  done;
  checkb "blocking reduces messages" true (!mb < !mg)

let test_blocked_memory_within_budget () =
  let net = Network.create ~hosts:1024 in
  let m = 40 in
  let b = B1.build ~net ~seed:56 ~m (keys 1024) in
  (* Blocks + cones should stay within a small multiple of M. *)
  checkb "per-host memory near target" true (B1.max_host_memory b <= 8 * m)

let test_blocked_insert_delete () =
  let net = Network.create ~hosts:128 in
  let ks = keys 128 in
  let b = B1.build ~net ~seed:57 ~m:16 ks in
  let cost = B1.insert b 777_777 in
  checkb "insert cost positive" true (cost > 0);
  B1.check_invariants b;
  let rng = Prng.create 58 in
  check_opt "inserted found" (Some 777_777) (B1.query b ~rng 777_777).B1.nearest;
  let dcost = B1.delete b 777_777 in
  checkb "delete cost positive" true (dcost > 0);
  B1.check_invariants b;
  checki "size restored" 128 (B1.size b);
  checki "duplicate insert free" 0 (B1.insert b ks.(0))

let test_blocked_bucket_regime () =
  (* Row 7: H << n with big buckets; queries still correct, and messages
     drop well below the H = n regime. *)
  let n = 2048 in
  let ks = keys n in
  let net_small = Network.create ~hosts:16 in
  let b_small = B1.build ~net:net_small ~seed:59 ~m:(n / 8) ks in
  B1.check_invariants b_small;
  let rng = Prng.create 60 in
  let total = ref 0 in
  Array.iter
    (fun q ->
      let r = B1.query b_small ~rng q in
      check_opt "bucket regime correct" (Lk.nearest ks q) r.B1.nearest;
      total := !total + r.B1.messages)
    (W.query_mix ~seed:61 ~keys:ks ~n:200 ~bound:(100 * n));
  checkb "near-constant messages with M = n/8" true (float_of_int !total /. 200.0 < 6.0)


let test_blocked_range_query () =
  let net = Network.create ~hosts:256 in
  let ks = keys 256 in
  let b = B1.build ~net ~seed:62 ~m:16 ks in
  let rng = Prng.create 63 in
  List.iter
    (fun (lo, hi) ->
      let r = B1.range b ~rng ~lo ~hi in
      Alcotest.(check (list int)) "range keys" (Lk.range_keys ks ~lo ~hi) r.B1.keys;
      checkb "message cost covers locate" true (r.B1.messages >= 0))
    [ (0, 100); (1000, 5000); (0, max_int - 1); (777, 777) ];
  (* Cost grows with the answer size (block-boundary crossings). *)
  let small = (B1.range b ~rng ~lo:ks.(10) ~hi:ks.(12)).B1.messages in
  let large = (B1.range b ~rng ~lo:ks.(10) ~hi:ks.(250)).B1.messages in
  checkb "bigger answers cross more blocks" true (large > small)

let qcheck_blocked_matches_oracle =
  QCheck.Test.make ~name:"blocked skip-web = sorted-array oracle" ~count:40
    QCheck.(triple small_int (int_range 1 200) (int_range 0 30_000))
    (fun (seed, n, q) ->
      let ks = W.distinct_ints ~seed:(seed + 3) ~n ~bound:30_000 in
      let net = Network.create ~hosts:(max 4 (n / 2)) in
      let b = B1.build ~net ~seed ~m:8 ks in
      let r = B1.query b ~rng:(Prng.create seed) q in
      r.B1.predecessor = Lk.predecessor ks q && r.B1.successor = Lk.successor ks q)

let qcheck_hierarchy_int_matches_oracle =
  QCheck.Test.make ~name:"generic hierarchy = sorted-array oracle" ~count:40
    QCheck.(triple small_int (int_range 1 150) (int_range 0 30_000))
    (fun (seed, n, q) ->
      let ks = W.distinct_ints ~seed:(seed + 4) ~n ~bound:30_000 in
      let net = Network.create ~hosts:(n + 4) in
      let h = HInt.build ~net ~seed ks in
      let answer, _ = HInt.query h ~rng:(Prng.create seed) q in
      answer = Lk.nearest ks q)

(* Churn property: random interleaved insert/remove/query against a
   Set-based model, with the full invariant check (including the
   charged-vs-network memory cross-check) every 64 ops. This is what
   guards the incremental update path — any drift in the id arena, the
   level sets, or the per-range memory charges fails here. *)
let qcheck_hierarchy_churn =
  let module IS = Set.Make (Int) in
  let model_nearest model k =
    let pred = IS.filter (fun x -> x <= k) model in
    let succ = IS.filter (fun x -> x >= k) model in
    match (IS.is_empty pred, IS.is_empty succ) with
    | true, true -> None
    | false, true -> Some (IS.max_elt pred)
    | true, false -> Some (IS.min_elt succ)
    | false, false ->
        let p = IS.max_elt pred and s = IS.min_elt succ in
        if k - p <= s - k then Some p else Some s
  in
  QCheck.Test.make ~name:"hierarchy churn: invariants + oracle answers" ~count:10
    QCheck.(pair small_int (int_range 0 64))
    (fun (seed, warm) ->
      let rng = Prng.create (seed + 101) in
      let net = Network.create ~hosts:32 in
      let initial = W.distinct_ints ~seed:(seed + 303) ~n:warm ~bound:4000 in
      let h = HInt.build ~net ~seed:(seed + 202) initial in
      let model = ref (IS.of_list (Array.to_list initial)) in
      let ok = ref true in
      for step = 1 to 256 do
        let k = Prng.int rng 4000 in
        (match Prng.int rng 3 with
        | 0 ->
            ignore (HInt.insert h k);
            model := IS.add k !model
        | 1 ->
            ignore (HInt.remove h k);
            model := IS.remove k !model
        | _ ->
            if not (IS.is_empty !model) then begin
              let answer, _ = HInt.query h ~rng k in
              if answer <> model_nearest !model k then ok := false
            end);
        if step mod 64 = 0 then HInt.check_invariants h
      done;
      HInt.check_invariants h;
      !ok && HInt.size h = IS.cardinal !model)

(* ------- batch updates ------- *)

(* A bulk insert must leave the hierarchy in exactly the state the same
   keys arriving one at a time produce: ids are assigned in presentation
   order either way, and ids drive membership, placement and charging. *)
let test_insert_batch_matches_sequential () =
  let all = W.distinct_ints ~seed:21 ~n:240 ~bound:20_000 in
  let base = Array.sub all 0 120 and extra = Array.sub all 120 120 in
  let net1 = Network.create ~hosts:64 and net2 = Network.create ~hosts:64 in
  let h1 = HInt.build ~net:net1 ~seed:77 base in
  let h2 = HInt.build ~net:net2 ~seed:77 base in
  Array.iter (fun k -> ignore (HInt.insert h1 k)) extra;
  checki "batch count" 120 (HInt.insert_batch h2 extra);
  checki "batch skips present keys" 0 (HInt.insert_batch h2 extra);
  HInt.check_invariants h1;
  HInt.check_invariants h2;
  checki "same size" (HInt.size h1) (HInt.size h2);
  checki "same levels" (HInt.levels h1) (HInt.levels h2);
  checki "same storage" (HInt.total_storage h1) (HInt.total_storage h2);
  for host = 0 to 63 do
    checki "same per-host memory" (Network.memory net1 host) (Network.memory net2 host)
  done;
  let rng1 = Prng.create 5151 and rng2 = Prng.create 5151 in
  for q = 0 to 49 do
    let probe = 400 * q in
    let a1, _ = HInt.query h1 ~rng:rng1 probe and a2, _ = HInt.query h2 ~rng:rng2 probe in
    check_opt "same answers" a1 a2
  done

let test_remove_batch_matches_sequential () =
  let all = W.distinct_ints ~seed:22 ~n:200 ~bound:20_000 in
  let victims = Array.sub all 40 130 in
  let net1 = Network.create ~hosts:64 and net2 = Network.create ~hosts:64 in
  let h1 = HInt.build ~net:net1 ~seed:78 all in
  let h2 = HInt.build ~net:net2 ~seed:78 all in
  Array.iter (fun k -> ignore (HInt.remove h1 k)) victims;
  checki "batch count" 130 (HInt.remove_batch h2 victims);
  checki "batch skips absent keys" 0 (HInt.remove_batch h2 victims);
  HInt.check_invariants h1;
  HInt.check_invariants h2;
  checki "same size" (HInt.size h1) (HInt.size h2);
  checki "same levels" (HInt.levels h1) (HInt.levels h2);
  checki "same storage" (HInt.total_storage h1) (HInt.total_storage h2);
  for host = 0 to 63 do
    checki "same per-host memory" (Network.memory net1 host) (Network.memory net2 host)
  done;
  let rng1 = Prng.create 5252 and rng2 = Prng.create 5252 in
  for q = 0 to 49 do
    let probe = 400 * q in
    let a1, _ = HInt.query h1 ~rng:rng1 probe and a2, _ = HInt.query h2 ~rng:rng2 probe in
    check_opt "same answers" a1 a2
  done

let test_remove_batch_to_empty () =
  let all = W.distinct_ints ~seed:23 ~n:70 ~bound:9_000 in
  let net = Network.create ~hosts:32 in
  let h = HInt.build ~net ~seed:79 all in
  checki "all removed" 70 (HInt.remove_batch h all);
  HInt.check_invariants h;
  checki "empty" 0 (HInt.size h);
  (* Refill through the batch path and make sure the hierarchy works. *)
  checki "refilled" 70 (HInt.insert_batch h all);
  HInt.check_invariants h;
  let rng = Prng.create 31 in
  let a, _ = HInt.query h ~rng all.(0) in
  check_opt "query after refill" (Some all.(0)) a

(* ------- pinned message-model invariance guards ------- *)

(* These totals were captured on the flat-array representation before the
   chunked container migration; the chunked code must reproduce them
   bit-for-bit, because the container is host-local machinery and must be
   invisible to the message model. If a change here is intentional, it
   changes the paper-facing cost accounting and every BENCH baseline. *)

let churn_pool keys =
  let data = Array.copy keys in
  let tbl = Hashtbl.create 64 in
  Array.iteri (fun i k -> Hashtbl.replace tbl k i) data;
  (ref data, ref (Array.length keys), tbl)

let pool_mem (_, _, tbl) k = Hashtbl.mem tbl k

let pool_add (data, len, tbl) k =
  if not (Hashtbl.mem tbl k) then begin
    if !len = Array.length !data then begin
      let b = Array.make (max 8 (2 * !len)) 0 in
      Array.blit !data 0 b 0 !len;
      data := b
    end;
    !data.(!len) <- k;
    Hashtbl.replace tbl k !len;
    len := !len + 1
  end

let pool_take (data, len, tbl) rng =
  if !len = 0 then None
  else begin
    let i = Prng.int rng !len in
    let k = !data.(i) in
    let last = !len - 1 in
    !data.(i) <- !data.(last);
    Hashtbl.replace tbl !data.(i) i;
    len := last;
    Hashtbl.remove tbl k;
    Some k
  end

let run_pinned_hierarchy_churn ?pool () =
  let bound = 30_000 in
  let ks = W.distinct_ints ~seed:42 ~n:300 ~bound in
  let net = Network.create ~hosts:128 in
  let h = HInt.build ~net ~seed:42 ?pool ks in
  let pool = churn_pool ks in
  let rng = Prng.create 0xc0ffee in
  let ops = ref 0 in
  for i = 0 to 399 do
    match i mod 5 with
    | 0 | 2 ->
        let rec fresh () =
          let k = Prng.int rng bound in
          if pool_mem pool k then fresh () else k
        in
        let k = fresh () in
        ops := !ops + HInt.insert h k;
        pool_add pool k
    | 1 | 3 -> (
        match pool_take pool rng with
        | Some k -> ops := !ops + HInt.remove h k
        | None -> ())
    | _ ->
        let _, st = HInt.query h ~rng (Prng.int rng bound) in
        ops := !ops + st.HInt.messages
  done;
  HInt.check_invariants h;
  checki "pinned op messages" 10287 !ops;
  checki "pinned network total" 3887 (Network.total_messages net);
  checki "pinned final size" 300 (HInt.size h)

let test_pinned_hierarchy_churn_messages () = run_pinned_hierarchy_churn ()

(* The same pinned totals with the bulk build fanned over a 2-domain
   pool: the parallel write path must be invisible to the message
   model. *)
let test_pinned_hierarchy_churn_messages_pooled () =
  Skipweb_util.Pool.with_pool ~jobs:2 (fun pool -> run_pinned_hierarchy_churn ?pool ())

let run_pinned_blocked_churn ?pool () =
  let bound = 10_000 in
  let ks = W.distinct_ints ~seed:9 ~n:200 ~bound in
  let net = Network.create ~hosts:64 in
  let b = B1.build ~net ~seed:9 ~m:16 ?pool ks in
  let pool = churn_pool ks in
  let rng = Prng.create 0xbeef in
  let ops = ref 0 in
  for i = 0 to 119 do
    match i mod 4 with
    | 0 ->
        let rec fresh () =
          let k = Prng.int rng bound in
          if pool_mem pool k then fresh () else k
        in
        let k = fresh () in
        ops := !ops + B1.insert b k;
        pool_add pool k
    | 1 -> (
        match pool_take pool rng with
        | Some k -> ops := !ops + B1.delete b k
        | None -> ())
    | _ ->
        let r = B1.query b ~rng (Prng.int rng bound) in
        ops := !ops + r.B1.messages
  done;
  B1.check_invariants b;
  checki "pinned op messages" 598 !ops;
  checki "pinned network total" 238 (Network.total_messages net);
  checki "pinned final size" 200 (B1.size b)

let test_pinned_blocked_churn_messages () = run_pinned_blocked_churn ()

(* Pooled build AND pooled epoch rebuilds (the structure keeps the pool it
   was built with), same pinned totals. *)
let test_pinned_blocked_churn_messages_pooled () =
  Skipweb_util.Pool.with_pool ~jobs:2 (fun pool -> run_pinned_blocked_churn ?pool ())

(* ------- multi-dimensional scans through the hierarchy (PR 10) ------- *)

let test_scan_answers_and_stats () =
  (* 1-d range count. *)
  let net = Network.create ~hosts:64 in
  let bound = 100_000 in
  let ks = W.distinct_ints ~seed:70 ~n:400 ~bound in
  let h = HInt.build ~net ~seed:70 ks in
  let rng = Prng.create 71 in
  List.iter
    (fun (lo, hi) ->
      let count, st = HInt.scan h ~rng (lo, hi) in
      let oracle = Array.fold_left (fun acc k -> if k >= lo && k <= hi then acc + 1 else acc) 0 ks in
      checki "int range count" oracle count;
      checki "per-level list length" (HInt.levels h) (List.length st.HInt.per_level_visits);
      checkb "scan charged" true (st.HInt.messages > 0))
    [ (0, bound); (250, 9_000); (50_000, 49_999) ];
  (* 2-d box + k-NN, against the direct quadtree walk. *)
  let netp = Network.create ~hosts:64 in
  let pts = W.uniform_points ~seed:72 ~n:400 ~dim:2 in
  let hp = HP2.build ~net:netp ~seed:72 pts in
  let oracle = Cq.build ~dim:2 pts in
  let rngp = Prng.create 73 in
  let lo = Point.create [ 0.2; 0.25 ] and hi = Point.create [ 0.75; 0.8 ] in
  (match HP2.scan hp ~rng:rngp (I.Box { lo; hi; limit = 40 }) with
  | I.Box_hits { count; sample }, st ->
      let c, s, _ = Cq.range_scan oracle ~lo ~hi ~limit:40 in
      checki "box count" c count;
      checkb "box sample = direct walk" true (sample = s);
      checki "box per-level length" (HP2.levels hp) (List.length st.HP2.per_level_visits)
  | I.Knn_hits _, _ -> Alcotest.fail "box scan answered knn");
  let center = Point.create [ 0.4; 0.6 ] in
  (match HP2.scan hp ~rng:rngp (I.Knn { center; k = 7 }) with
  | I.Knn_hits hits, st ->
      let oh, _ = Cq.knn oracle center ~k:7 in
      checkb "knn = direct walk" true (hits = oh);
      checkb "knn charged" true (st.HP2.messages > 0)
  | I.Box_hits _, _ -> Alcotest.fail "knn scan answered box");
  (* Prefix enumeration, against the direct trie walk. *)
  let nets = Network.create ~hosts:64 in
  let strs = W.random_strings ~seed:74 ~n:300 ~alphabet:3 ~len:7 in
  let hs = HStr.build ~net:nets ~seed:74 strs in
  let rngs = Prng.create 75 in
  let toracle = Ct.build strs in
  List.iter
    (fun prefix ->
      let a, st = HStr.scan hs ~rng:rngs { I.prefix; scan_limit = 30 } in
      checki ("prefix total " ^ prefix) (Ct.count_with_prefix toracle prefix) a.I.total;
      checkb ("prefix sample " ^ prefix) true
        (a.I.strings = List.filteri (fun i _ -> i < 30) (Ct.strings_with_prefix toracle prefix));
      checki "prefix per-level length" (HStr.levels hs) (List.length st.HStr.per_level_visits))
    [ "a"; "ab"; "ccc"; "" ];
  (* Trapezoid scan degenerates to the point query's answer. *)
  let netg = Network.create ~hosts:64 in
  let segs = W.disjoint_segments ~seed:76 ~n:50 in
  let hg = HSeg.build ~net:netg ~seed:76 segs in
  let rngg = Prng.create 77 in
  Array.iter
    (fun q ->
      let sa, _ = HSeg.scan hg ~rng:rngg q in
      let qa, _ = HSeg.query hg ~rng:rngg q in
      checkb "segment scan = query answer" true (sa = qa))
    (W.trapmap_query_points ~seed:78 ~n:25)

(* Scan batches fan out like query batches: answers and stats identical to
   the sequential loop for any jobs count. *)
let test_scan_batch_jobs_identity () =
  let digest jobs =
    Skipweb_util.Pool.with_pool ~jobs (fun pool ->
        let net = Network.create ~hosts:64 in
        let pts = W.uniform_points ~seed:79 ~n:300 ~dim:2 in
        let h = HP2.build ~net ~seed:79 ?pool pts in
        let qs = W.uniform_query_points ~seed:80 ~n:40 ~dim:2 in
        let scans =
          Array.map (fun c -> I.Knn { center = c; k = 3 }) qs
        in
        let rng = Prng.create 81 in
        let out = HP2.scan_batch ?pool h ~rng scans in
        (Array.to_list (Array.map (fun (a, st) -> (a, st.HP2.messages)) out),
         Network.total_messages net))
  in
  let reference = digest 1 in
  List.iter (fun jobs -> checkb "scan_batch jobs identity" true (digest jobs = reference)) [ 2; 4 ]

(* ------- multi-d batch updates: bit-identical for any jobs count ------- *)

let test_multid_batch_jobs_identity () =
  let p2 jobs =
    Skipweb_util.Pool.with_pool ~jobs (fun pool ->
        let net = Network.create ~hosts:64 in
        let base = W.uniform_points ~seed:60 ~n:400 ~dim:2 in
        let h = HP2.build ~net ~seed:61 ?pool base in
        let extra = W.uniform_points ~seed:62 ~n:120 ~dim:2 in
        let ins = HP2.insert_batch ?pool h extra in
        let rmv = HP2.remove_batch ?pool h (Array.sub extra 0 60) in
        HP2.check_invariants h;
        let rng = Prng.create 63 in
        let qs = W.uniform_query_points ~seed:64 ~n:50 ~dim:2 in
        let answers = HP2.query_batch ?pool h ~rng qs in
        ( ins,
          rmv,
          Array.to_list (Array.map (fun (a, st) -> (a, st.HP2.messages)) answers),
          Network.total_messages net,
          List.init 64 (Network.memory net),
          HP2.size h ))
  in
  let p2_ref = p2 1 in
  List.iter (fun jobs -> checkb "points2d batch jobs identity" true (p2 jobs = p2_ref)) [ 2; 4 ];
  let str jobs =
    Skipweb_util.Pool.with_pool ~jobs (fun pool ->
        let net = Network.create ~hosts:64 in
        let base = W.random_strings ~seed:65 ~n:400 ~alphabet:3 ~len:8 in
        let h = HStr.build ~net ~seed:66 ?pool base in
        let extra = W.random_strings ~seed:67 ~n:120 ~alphabet:3 ~len:9 in
        let ins = HStr.insert_batch ?pool h extra in
        let rmv = HStr.remove_batch ?pool h (Array.sub extra 0 60) in
        HStr.check_invariants h;
        let rng = Prng.create 68 in
        let qs = W.string_queries ~seed:69 ~keys:base ~n:50 in
        let answers = HStr.query_batch ?pool h ~rng qs in
        ( ins,
          rmv,
          Array.to_list (Array.map (fun (a, st) -> (a, st.HStr.messages)) answers),
          Network.total_messages net,
          List.init 64 (Network.memory net),
          HStr.size h ))
  in
  let str_ref = str 1 in
  List.iter (fun jobs -> checkb "strings batch jobs identity" true (str jobs = str_ref)) [ 2; 4 ];
  let seg jobs =
    Skipweb_util.Pool.with_pool ~jobs (fun pool ->
        let net = Network.create ~hosts:64 in
        let all = W.disjoint_segments ~seed:82 ~n:120 in
        let h = HSeg.build ~net ~seed:83 ?pool (Array.sub all 0 80) in
        (* Trapezoidal maps don't support deletion; inserts only. *)
        let ins = HSeg.insert_batch ?pool h (Array.sub all 80 40) in
        HSeg.check_invariants h;
        let rng = Prng.create 84 in
        let qs = W.trapmap_query_points ~seed:85 ~n:50 in
        let answers = HSeg.query_batch ?pool h ~rng qs in
        ( ins,
          Array.to_list (Array.map (fun (a, st) -> (a, st.HSeg.messages)) answers),
          Network.total_messages net,
          List.init 64 (Network.memory net),
          HSeg.size h ))
  in
  let seg_ref = seg 1 in
  List.iter (fun jobs -> checkb "segments batch jobs identity" true (seg jobs = seg_ref)) [ 2; 4 ]

(* ------- pinned multi-d churn guards (the 10287/3887 analogue) ------- *)

(* Like the 1-d guards above: these totals pin the multi-d structures'
   message model. A change here is a paper-facing cost-accounting change
   and invalidates the BENCH baselines. *)

let checkil = Alcotest.(check (list int))

let run_pinned_points_churn () =
  let base = W.uniform_points ~seed:90 ~n:300 ~dim:2 in
  let ins = W.uniform_points ~seed:91 ~n:200 ~dim:2 in
  let queries = W.uniform_query_points ~seed:92 ~n:200 ~dim:2 in
  let net = Network.create ~hosts:128 in
  let h = HP2.build ~net ~seed:90 base in
  let alive = ref (Array.to_list base) in
  let rng = Prng.create 0xfeed in
  let ops = ref 0 in
  let ins_i = ref 0 and q_i = ref 0 in
  for i = 0 to 399 do
    match i mod 5 with
    | 0 | 2 ->
        let p = ins.(!ins_i mod Array.length ins) in
        incr ins_i;
        ops := !ops + HP2.insert h p;
        alive := p :: !alive
    | 1 | 3 ->
        if !alive <> [] then begin
          let n = List.length !alive in
          let j = Prng.int rng n in
          let p = List.nth !alive j in
          alive := List.filteri (fun k _ -> k <> j) !alive;
          ops := !ops + HP2.remove h p
        end
    | _ ->
        let q = queries.(!q_i mod Array.length queries) in
        incr q_i;
        let _, st = HP2.query h ~rng q in
        ops := !ops + st.HP2.messages
  done;
  HP2.check_invariants h;
  checkil "pinned points2d churn [ops; net; size]" [ 11441; 5041; 300 ]
    [ !ops; Network.total_messages net; HP2.size h ]

let run_pinned_strings_churn () =
  let base = W.random_strings ~seed:93 ~n:300 ~alphabet:3 ~len:8 in
  let ins = W.random_strings ~seed:94 ~n:200 ~alphabet:3 ~len:9 in
  let queries = W.string_queries ~seed:95 ~keys:base ~n:200 in
  let net = Network.create ~hosts:128 in
  let h = HStr.build ~net ~seed:93 base in
  let alive = ref (Array.to_list base) in
  let rng = Prng.create 0xface in
  let ops = ref 0 in
  let ins_i = ref 0 and q_i = ref 0 in
  for i = 0 to 399 do
    match i mod 5 with
    | 0 | 2 ->
        let s = ins.(!ins_i mod Array.length ins) in
        incr ins_i;
        ops := !ops + HStr.insert h s;
        alive := s :: !alive
    | 1 | 3 ->
        if !alive <> [] then begin
          let n = List.length !alive in
          let j = Prng.int rng n in
          let s = List.nth !alive j in
          alive := List.filteri (fun k _ -> k <> j) !alive;
          ops := !ops + HStr.remove h s
        end
    | _ ->
        let q = queries.(!q_i mod Array.length queries) in
        incr q_i;
        let _, st = HStr.query h ~rng q in
        ops := !ops + st.HStr.messages
  done;
  HStr.check_invariants h;
  checkil "pinned strings churn [ops; net; size]" [ 11692; 5292; 300 ]
    [ !ops; Network.total_messages net; HStr.size h ]

let run_pinned_segments_churn () =
  let all = W.disjoint_segments ~seed:96 ~n:200 in
  let queries = W.trapmap_query_points ~seed:97 ~n:200 in
  let net = Network.create ~hosts:128 in
  let h = HSeg.build ~net ~seed:96 (Array.sub all 0 150) in
  let rng = Prng.create 0xdead in
  let ops = ref 0 in
  let ins_i = ref 150 and q_i = ref 0 in
  for i = 0 to 199 do
    if i mod 4 = 0 && !ins_i < 200 then begin
      ops := !ops + HSeg.insert h all.(!ins_i);
      incr ins_i
    end
    else begin
      let q = queries.(!q_i mod Array.length queries) in
      incr q_i;
      let _, st = HSeg.query h ~rng q in
      ops := !ops + st.HSeg.messages
    end
  done;
  HSeg.check_invariants h;
  checkil "pinned segments churn [ops; net; size]" [ 2492; 1592; 200 ]
    [ !ops; Network.total_messages net; HSeg.size h ]

let suite =
  [
    Alcotest.test_case "hierarchy int build" `Quick test_hint_build;
    Alcotest.test_case "hierarchy level halving (Fig 2)" `Quick test_hint_level_halving;
    Alcotest.test_case "hierarchy int query correct" `Quick test_hint_query_correct;
    Alcotest.test_case "hierarchy int messages log" `Quick test_hint_messages_logarithmic;
    Alcotest.test_case "hierarchy memory balanced" `Quick test_hint_memory_balanced;
    Alcotest.test_case "hierarchy insert/remove" `Quick test_hint_insert_remove;
    Alcotest.test_case "hierarchy grows from empty" `Quick test_hint_grow_from_empty;
    Alcotest.test_case "hierarchy shrinks dead levels" `Quick test_hint_shrink_top;
    Alcotest.test_case "hierarchy p ablation (A3)" `Quick test_hint_halving_ablation;
    Alcotest.test_case "quadtree web point location" `Quick test_hp2_point_location;
    Alcotest.test_case "quadtree web deep input (Thm 2)" `Quick test_hp2_deep_input_stays_logarithmic;
    Alcotest.test_case "octree web (3d)" `Quick test_hp3_octree;
    Alcotest.test_case "quadtree web insert/remove" `Quick test_hp2_insert_remove;
    Alcotest.test_case "trie web answers" `Quick test_hstr_answers;
    Alcotest.test_case "trie web deep input (Thm 2)" `Quick test_hstr_deep_input;
    Alcotest.test_case "trie web insert/remove" `Quick test_hstr_insert_remove;
    Alcotest.test_case "trapmap web point location" `Quick test_hseg_point_location;
    Alcotest.test_case "trapmap web insert" `Quick test_hseg_insert;
    Alcotest.test_case "blocked build" `Quick test_blocked_build;
    Alcotest.test_case "blocked query correct" `Quick test_blocked_query_correct;
    Alcotest.test_case "blocked beats generic (A1)" `Quick test_blocked_fewer_messages_than_generic;
    Alcotest.test_case "blocked memory within budget" `Quick test_blocked_memory_within_budget;
    Alcotest.test_case "blocked insert/delete" `Quick test_blocked_insert_delete;
    Alcotest.test_case "blocked bucket regime (row 7)" `Quick test_blocked_bucket_regime;
    Alcotest.test_case "blocked range query" `Quick test_blocked_range_query;
    Alcotest.test_case "insert_batch = sequential inserts" `Quick
      test_insert_batch_matches_sequential;
    Alcotest.test_case "remove_batch = sequential removes" `Quick
      test_remove_batch_matches_sequential;
    Alcotest.test_case "remove_batch to empty + refill" `Quick test_remove_batch_to_empty;
    Alcotest.test_case "pinned hierarchy churn messages" `Quick
      test_pinned_hierarchy_churn_messages;
    Alcotest.test_case "pinned blocked churn messages" `Quick test_pinned_blocked_churn_messages;
    Alcotest.test_case "pinned hierarchy churn messages (pooled build)" `Quick
      test_pinned_hierarchy_churn_messages_pooled;
    Alcotest.test_case "pinned blocked churn messages (pooled build)" `Quick
      test_pinned_blocked_churn_messages_pooled;
    Alcotest.test_case "scan answers + stats (range/knn/prefix/trap)" `Quick
      test_scan_answers_and_stats;
    Alcotest.test_case "scan_batch jobs identity" `Quick test_scan_batch_jobs_identity;
    Alcotest.test_case "multi-d batch jobs identity" `Quick test_multid_batch_jobs_identity;
    Alcotest.test_case "pinned points2d churn messages" `Quick run_pinned_points_churn;
    Alcotest.test_case "pinned strings churn messages" `Quick run_pinned_strings_churn;
    Alcotest.test_case "pinned segments churn messages" `Quick run_pinned_segments_churn;
    QCheck_alcotest.to_alcotest qcheck_blocked_matches_oracle;
    QCheck_alcotest.to_alcotest qcheck_hierarchy_int_matches_oracle;
    QCheck_alcotest.to_alcotest qcheck_hierarchy_churn;
  ]


(* ------- mixed-workload soak: interleaved queries and updates ------- *)

let test_soak_blocked_1d () =
  let rng = Prng.create 70 in
  let net = Network.create ~hosts:64 in
  let b = B1.build ~net ~seed:71 ~m:8 [||] in
  let module IS = Set.Make (Int) in
  let model = ref IS.empty in
  for step = 1 to 400 do
    let k = Prng.int rng 5000 in
    (match Prng.int rng 3 with
    | 0 ->
        if not (IS.mem k !model) then begin
          ignore (B1.insert b k);
          model := IS.add k !model
        end
    | 1 ->
        if IS.mem k !model then begin
          ignore (B1.delete b k);
          model := IS.remove k !model
        end
    | _ ->
        if not (IS.is_empty !model) then begin
          let r = B1.query b ~rng k in
          let expected =
            let below = IS.filter (fun x -> x <= k) !model in
            if IS.is_empty below then None else Some (IS.max_elt below)
          in
          check_opt "soak predecessor" expected r.B1.predecessor
        end);
    if step mod 50 = 0 then B1.check_invariants b
  done;
  checki "model size agrees" (IS.cardinal !model) (B1.size b)

let test_soak_hierarchy_int () =
  let rng = Prng.create 72 in
  let net = Network.create ~hosts:64 in
  let h = HInt.build ~net ~seed:73 [||] in
  let module IS = Set.Make (Int) in
  let model = ref IS.empty in
  for step = 1 to 300 do
    let k = Prng.int rng 5000 in
    (match Prng.int rng 3 with
    | 0 ->
        ignore (HInt.insert h k);
        model := IS.add k !model
    | 1 ->
        ignore (HInt.remove h k);
        model := IS.remove k !model
    | _ ->
        if not (IS.is_empty !model) then begin
          let answer, _ = HInt.query h ~rng k in
          let expected =
            let pred = IS.filter (fun x -> x <= k) !model in
            let succ = IS.filter (fun x -> x >= k) !model in
            match (IS.is_empty pred, IS.is_empty succ) with
            | true, true -> None
            | false, true -> Some (IS.max_elt pred)
            | true, false -> Some (IS.min_elt succ)
            | false, false ->
                let p = IS.max_elt pred and s = IS.min_elt succ in
                if k - p <= s - k then Some p else Some s
          in
          check_opt "soak nearest" expected answer
        end);
    if step mod 50 = 0 then HInt.check_invariants h
  done;
  checki "model size agrees" (IS.cardinal !model) (HInt.size h)

let soak_suite =
  [
    Alcotest.test_case "soak: blocked 1-d mixed workload" `Quick test_soak_blocked_1d;
    Alcotest.test_case "soak: generic hierarchy mixed workload" `Quick test_soak_hierarchy_int;
  ]
