(* Tests for the parallel read path: the domain pool itself, the
   per-index PRNG streams, metrics shard merging, and — the property the
   whole design hangs on — parallel query batches being bit-identical to
   the sequential loops for every jobs count. *)

module Pool = Skipweb_util.Pool
module Prng = Skipweb_util.Prng
module Metrics = Skipweb_util.Metrics
module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module B1 = Skipweb_core.Blocked1d
module W = Skipweb_workload.Workload

module HInt = H.Make (I.Ints)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

(* ------- the pool itself ------- *)

let with_pool2 f =
  let p = Pool.create ~jobs:2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_parallel_for_covers_range () =
  with_pool2 (fun p ->
      List.iter
        (fun n ->
          let hits = Array.make (max 1 n) 0 in
          Pool.parallel_for p ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
          for i = 0 to n - 1 do
            checki (Printf.sprintf "index %d of %d hit once" i n) 1 hits.(i)
          done)
        [ 0; 1; 2; 3; 7; 100 ])

let test_parallel_for_jobs1_inline () =
  let p = Pool.create ~jobs:1 in
  let sum = ref 0 in
  (* jobs=1 runs inline on the calling domain: unsynchronized mutation of
     a ref is safe and ordered. *)
  Pool.parallel_for p ~lo:3 ~hi:10 (fun i -> sum := !sum + i);
  Pool.shutdown p;
  checki "inline sum" (3 + 4 + 5 + 6 + 7 + 8 + 9) !sum

let test_parallel_map_preserves_order () =
  with_pool2 (fun p ->
      let xs = Array.init 57 (fun i -> i) in
      let ys = Pool.parallel_map p (fun x -> (2 * x) + 1) xs in
      checkb "map order" true (ys = Array.map (fun x -> (2 * x) + 1) xs))

let test_exception_propagates_and_pool_survives () =
  with_pool2 (fun p ->
      (try
         Pool.parallel_for p ~lo:0 ~hi:8 (fun i -> if i = 5 then failwith "boom");
         Alcotest.fail "expected an exception"
       with Failure m -> checks "exception text" "boom" m);
      (* The failed batch must leave the pool usable. *)
      let hits = Array.make 8 0 in
      Pool.parallel_for p ~lo:0 ~hi:8 (fun i -> hits.(i) <- 1);
      checki "pool usable after failure" 8 (Array.fold_left ( + ) 0 hits))

let test_reentrancy_rejected () =
  with_pool2 (fun p ->
      let raised = Atomic.make false in
      Pool.parallel_for p ~lo:0 ~hi:2 (fun _ ->
          match Pool.parallel_for p ~lo:0 ~hi:2 (fun _ -> ()) with
          | () -> ()
          | exception Invalid_argument _ -> Atomic.set raised true);
      checkb "nested parallel_for rejected" true (Atomic.get raised))

let test_shutdown_idempotent_and_final () =
  let p = Pool.create ~jobs:2 in
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Pool.parallel_for: pool is shut down") (fun () ->
      Pool.parallel_for p ~lo:0 ~hi:4 (fun _ -> ()))

let test_with_pool_convention () =
  checkb "jobs<=1 gives None" true (Pool.with_pool ~jobs:1 (fun pool -> pool = None));
  checkb "jobs>1 gives a pool" true
    (Pool.with_pool ~jobs:3 (fun pool ->
         match pool with Some p -> Pool.jobs p = 3 | None -> false))

(* ------- per-index PRNG streams ------- *)

let test_stream_deterministic_and_non_advancing () =
  let g = Prng.create 42 in
  let before = Prng.int (Prng.copy g) 1_000_000 in
  let a = Prng.int (Prng.stream g 7) 1_000_000 in
  let b = Prng.int (Prng.stream g 7) 1_000_000 in
  checki "same index, same stream" a b;
  let after = Prng.int (Prng.copy g) 1_000_000 in
  checki "deriving streams never advances the base" before after;
  (* Distinct indices give distinct streams (with overwhelming
     probability; pinned here for these seeds). *)
  let c = Prng.int (Prng.stream g 8) 1_000_000 in
  checkb "distinct indices differ" true (a <> c);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Prng.stream: index must be non-negative") (fun () ->
      ignore (Prng.stream g (-1)))

(* ------- metrics shard merging ------- *)

let record_into m (kind, name, v) =
  match kind with
  | `C -> Metrics.incr m ~by:v name
  | `H -> Metrics.observe_int m name v

let sample_events =
  [
    (`C, "ops", 3); (`H, "lat", 5); (`H, "lat", 1); (`C, "ops", 2); (`H, "msgs", 9);
    (`H, "lat", 1); (`C, "errs", 1); (`H, "msgs", 2); (`H, "lat", 8); (`C, "ops", 1);
  ]

let test_merge_order_independent_exports () =
  (* One registry recorded sequentially... *)
  let seq = Metrics.create () in
  List.iter (record_into seq) sample_events;
  (* ...versus the same events striped over three shards, merged in two
     different orders. The documented discipline: exports summarize the
     sample multiset, so shard boundaries and merge order are invisible. *)
  let shards () =
    let ss = Array.init 3 (fun _ -> Metrics.create ()) in
    List.iteri (fun i ev -> record_into ss.(i mod 3) ev) sample_events;
    ss
  in
  let merged order =
    let ss = shards () in
    let m = Metrics.create () in
    List.iter (fun i -> Metrics.merge m ss.(i)) order;
    m
  in
  let m1 = merged [ 0; 1; 2 ] and m2 = merged [ 2; 0; 1 ] in
  checks "json merge order independent" (Metrics.to_json m1) (Metrics.to_json m2);
  checks "csv merge order independent" (Metrics.to_csv m1) (Metrics.to_csv m2);
  checks "json equals sequential recording" (Metrics.to_json seq) (Metrics.to_json m1);
  checks "csv equals sequential recording" (Metrics.to_csv seq) (Metrics.to_csv m1)

(* ------- parallel == sequential, the load-bearing property ------- *)

(* Build the same blocked 1-d skip-web on a fresh network, run the same
   query set, and return everything observable: answers, per-query
   costs, and the network's committed totals. *)
let b1_observation ~jobs ~seed ~n ~queries =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let g = B1.build ~net ~seed ~m:(4 * log2i n) keys in
  let rng = Prng.create (seed + 1) in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:queries ~bound:(100 * n) in
  let rs =
    Pool.with_pool ~jobs (fun pool -> B1.query_batch ?pool g ~rng qs)
  in
  let answers = Array.map (fun (r : B1.search_result) -> r.B1.nearest) rs in
  let costs = Array.map (fun (r : B1.search_result) -> r.B1.messages) rs in
  let traffic = Array.init n (Network.traffic net) in
  (answers, costs, Network.total_messages net, Network.sessions_started net, traffic)

let hint_observation ~jobs ~seed ~n ~queries =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let h = HInt.build ~net ~seed keys in
  let rng = Prng.create (seed + 1) in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:queries ~bound:(100 * n) in
  let rs = Pool.with_pool ~jobs (fun pool -> HInt.query_batch ?pool h ~rng qs) in
  let answers = Array.map fst rs in
  let costs = Array.map (fun (_, stats) -> stats.HInt.messages) rs in
  let traffic = Array.init n (Network.traffic net) in
  (answers, costs, Network.total_messages net, Network.sessions_started net, traffic)

(* The sequential loop itself (not query_batch with jobs=1), so the suite
   would catch query_batch drifting from query. *)
let b1_sequential ~seed ~n ~queries =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let g = B1.build ~net ~seed ~m:(4 * log2i n) keys in
  let rng = Prng.create (seed + 1) in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:queries ~bound:(100 * n) in
  let rs = Array.map (fun q -> B1.query g ~rng q) qs in
  let answers = Array.map (fun (r : B1.search_result) -> r.B1.nearest) rs in
  let costs = Array.map (fun (r : B1.search_result) -> r.B1.messages) rs in
  let traffic = Array.init n (Network.traffic net) in
  (answers, costs, Network.total_messages net, Network.sessions_started net, traffic)

let qcheck_b1_parallel_equals_sequential =
  QCheck.Test.make ~name:"blocked 1-d: batch == sequential loop for jobs in {1,2,4}"
    ~count:8
    QCheck.(pair (int_range 0 1000) (int_range 60 300))
    (fun (seed, n) ->
      let queries = 50 in
      let base = b1_sequential ~seed ~n ~queries in
      List.for_all (fun jobs -> b1_observation ~jobs ~seed ~n ~queries = base) [ 1; 2; 4 ])

let qcheck_hint_parallel_equals_sequential =
  QCheck.Test.make ~name:"generic 1-d: batch == batch for jobs in {1,2,4}" ~count:6
    QCheck.(pair (int_range 0 1000) (int_range 60 300))
    (fun (seed, n) ->
      let queries = 40 in
      let base = hint_observation ~jobs:1 ~seed ~n ~queries in
      List.for_all (fun jobs -> hint_observation ~jobs ~seed ~n ~queries = base) [ 2; 4 ])

(* The generic hierarchy's sequential loop, pinned against its own batch
   once (cheaper than a qcheck family; the drift this catches is
   query_batch consuming rng draws differently from query). *)
let test_hint_batch_matches_sequential_loop () =
  let seed = 11 and n = 200 and queries = 40 in
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let h = HInt.build ~net ~seed keys in
  let rng = Prng.create (seed + 1) in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:queries ~bound:(100 * n) in
  let rs = Array.map (fun q -> HInt.query h ~rng q) qs in
  let seq_answers = Array.map fst rs in
  let seq_total = Network.total_messages net in
  let batch = hint_observation ~jobs:1 ~seed ~n ~queries in
  let answers, _, total, _, _ = batch in
  checkb "answers equal" true (answers = seq_answers);
  checki "network totals equal" seq_total total

let suite =
  [
    Alcotest.test_case "parallel_for covers ranges" `Quick test_parallel_for_covers_range;
    Alcotest.test_case "jobs=1 runs inline" `Quick test_parallel_for_jobs1_inline;
    Alcotest.test_case "parallel_map preserves order" `Quick test_parallel_map_preserves_order;
    Alcotest.test_case "exceptions propagate; pool survives" `Quick
      test_exception_propagates_and_pool_survives;
    Alcotest.test_case "re-entrant batches rejected" `Quick test_reentrancy_rejected;
    Alcotest.test_case "shutdown idempotent and final" `Quick test_shutdown_idempotent_and_final;
    Alcotest.test_case "with_pool convention" `Quick test_with_pool_convention;
    Alcotest.test_case "Prng.stream deterministic, non-advancing" `Quick
      test_stream_deterministic_and_non_advancing;
    Alcotest.test_case "metrics shard merge is order-independent" `Quick
      test_merge_order_independent_exports;
    Alcotest.test_case "generic batch matches sequential loop" `Quick
      test_hint_batch_matches_sequential_loop;
    QCheck_alcotest.to_alcotest qcheck_b1_parallel_equals_sequential;
    QCheck_alcotest.to_alcotest qcheck_hint_parallel_equals_sequential;
  ]
