(* Tests for the parallel read and write paths: the domain pool itself
   (static chunking and the dynamic largest-first dispatcher), the
   per-index PRNG streams, metrics shard merging, and — the property the
   whole design hangs on — parallel query batches AND parallel bulk
   builds / batch churn being bit-identical to the sequential runs for
   every jobs count. *)

module Pool = Skipweb_util.Pool
module Prng = Skipweb_util.Prng
module Metrics = Skipweb_util.Metrics
module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module B1 = Skipweb_core.Blocked1d
module W = Skipweb_workload.Workload

module HInt = H.Make (I.Ints)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

(* ------- the pool itself ------- *)

let with_pool2 f =
  let p = Pool.create ~jobs:2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_parallel_for_covers_range () =
  with_pool2 (fun p ->
      List.iter
        (fun n ->
          let hits = Array.make (max 1 n) 0 in
          Pool.parallel_for p ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
          for i = 0 to n - 1 do
            checki (Printf.sprintf "index %d of %d hit once" i n) 1 hits.(i)
          done)
        [ 0; 1; 2; 3; 7; 100 ])

let test_parallel_for_jobs1_inline () =
  let p = Pool.create ~jobs:1 in
  let sum = ref 0 in
  (* jobs=1 runs inline on the calling domain: unsynchronized mutation of
     a ref is safe and ordered. *)
  Pool.parallel_for p ~lo:3 ~hi:10 (fun i -> sum := !sum + i);
  Pool.shutdown p;
  checki "inline sum" (3 + 4 + 5 + 6 + 7 + 8 + 9) !sum

let test_parallel_map_preserves_order () =
  with_pool2 (fun p ->
      let xs = Array.init 57 (fun i -> i) in
      let ys = Pool.parallel_map p (fun x -> (2 * x) + 1) xs in
      checkb "map order" true (ys = Array.map (fun x -> (2 * x) + 1) xs))

let test_exception_propagates_and_pool_survives () =
  with_pool2 (fun p ->
      (try
         Pool.parallel_for p ~lo:0 ~hi:8 (fun i -> if i = 5 then failwith "boom");
         Alcotest.fail "expected an exception"
       with Failure m -> checks "exception text" "boom" m);
      (* The failed batch must leave the pool usable. *)
      let hits = Array.make 8 0 in
      Pool.parallel_for p ~lo:0 ~hi:8 (fun i -> hits.(i) <- 1);
      checki "pool usable after failure" 8 (Array.fold_left ( + ) 0 hits))

let test_reentrancy_rejected () =
  with_pool2 (fun p ->
      let raised = Atomic.make false in
      Pool.parallel_for p ~lo:0 ~hi:2 (fun _ ->
          match Pool.parallel_for p ~lo:0 ~hi:2 (fun _ -> ()) with
          | () -> ()
          | exception Invalid_argument _ -> Atomic.set raised true);
      checkb "nested parallel_for rejected" true (Atomic.get raised))

let test_shutdown_idempotent_and_final () =
  let p = Pool.create ~jobs:2 in
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Pool.parallel_for: pool is shut down") (fun () ->
      Pool.parallel_for p ~lo:0 ~hi:4 (fun _ -> ()))

(* ------- the dynamic cost-weighted dispatcher ------- *)

let test_parallel_for_tasks_covers_tasks () =
  with_pool2 (fun p ->
      List.iter
        (fun n ->
          (* Skewed weights: the schedule order changes, the set of tasks
             run must not. *)
          let weights = Array.init n (fun i -> (i * 37) mod 11) in
          let hits = Array.make (max 1 n) 0 in
          Pool.parallel_for_tasks p ~weights (fun i -> hits.(i) <- hits.(i) + 1);
          for i = 0 to n - 1 do
            checki (Printf.sprintf "task %d of %d run once" i n) 1 hits.(i)
          done)
        [ 0; 1; 2; 3; 7; 64 ])

let test_parallel_for_tasks_jobs1_inline_ordered () =
  let p = Pool.create ~jobs:1 in
  let order = ref [] in
  (* jobs=1 runs inline in index order; the weights only ever reorder the
     schedule across domains, never what runs. *)
  Pool.parallel_for_tasks p ~weights:[| 1; 9; 3 |] (fun i -> order := i :: !order);
  Pool.shutdown p;
  checkb "jobs=1 runs tasks inline in index order" true (!order = [ 2; 1; 0 ])

let test_parallel_for_tasks_exception_and_reuse () =
  with_pool2 (fun p ->
      (try
         Pool.parallel_for_tasks p ~weights:(Array.make 8 1) (fun i ->
             if i = 3 then failwith "task-boom");
         Alcotest.fail "expected an exception"
       with Failure m -> checks "exception text" "task-boom" m);
      (* The failed batch must leave the pool usable, as for parallel_for. *)
      let hits = Array.make 8 0 in
      Pool.parallel_for_tasks p ~weights:(Array.make 8 1) (fun i -> hits.(i) <- 1);
      checki "pool usable after failed task batch" 8 (Array.fold_left ( + ) 0 hits))

let test_parallel_for_tasks_after_shutdown () =
  let p = Pool.create ~jobs:2 in
  Pool.shutdown p;
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Pool.parallel_for_tasks: pool is shut down") (fun () ->
      Pool.parallel_for_tasks p ~weights:[| 1; 1 |] (fun _ -> ()))

let test_parallel_map_small_batch_dynamic () =
  (* n < 2*jobs takes parallel_map's dynamic-dispatch fallback (static
     chunking would leave domains idle); the result must still be the
     index-ordered map. *)
  let p = Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      List.iter
        (fun n ->
          let xs = Array.init n (fun i -> i) in
          let ys = Pool.parallel_map p (fun x -> x * x) xs in
          checkb (Printf.sprintf "small map n=%d order" n) true (ys = Array.map (fun x -> x * x) xs))
        [ 2; 3; 5; 7 ])

let test_with_pool_convention () =
  checkb "jobs<=1 gives None" true (Pool.with_pool ~jobs:1 (fun pool -> pool = None));
  checkb "jobs>1 gives a pool" true
    (Pool.with_pool ~jobs:3 (fun pool ->
         match pool with Some p -> Pool.jobs p = 3 | None -> false))

(* ------- per-index PRNG streams ------- *)

let test_stream_deterministic_and_non_advancing () =
  let g = Prng.create 42 in
  let before = Prng.int (Prng.copy g) 1_000_000 in
  let a = Prng.int (Prng.stream g 7) 1_000_000 in
  let b = Prng.int (Prng.stream g 7) 1_000_000 in
  checki "same index, same stream" a b;
  let after = Prng.int (Prng.copy g) 1_000_000 in
  checki "deriving streams never advances the base" before after;
  (* Distinct indices give distinct streams (with overwhelming
     probability; pinned here for these seeds). *)
  let c = Prng.int (Prng.stream g 8) 1_000_000 in
  checkb "distinct indices differ" true (a <> c);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Prng.stream: index must be non-negative") (fun () ->
      ignore (Prng.stream g (-1)))

(* ------- metrics shard merging ------- *)

let record_into m (kind, name, v) =
  match kind with
  | `C -> Metrics.incr m ~by:v name
  | `H -> Metrics.observe_int m name v

let sample_events =
  [
    (`C, "ops", 3); (`H, "lat", 5); (`H, "lat", 1); (`C, "ops", 2); (`H, "msgs", 9);
    (`H, "lat", 1); (`C, "errs", 1); (`H, "msgs", 2); (`H, "lat", 8); (`C, "ops", 1);
  ]

let test_merge_order_independent_exports () =
  (* One registry recorded sequentially... *)
  let seq = Metrics.create () in
  List.iter (record_into seq) sample_events;
  (* ...versus the same events striped over three shards, merged in two
     different orders. The documented discipline: exports summarize the
     sample multiset, so shard boundaries and merge order are invisible. *)
  let shards () =
    let ss = Array.init 3 (fun _ -> Metrics.create ()) in
    List.iteri (fun i ev -> record_into ss.(i mod 3) ev) sample_events;
    ss
  in
  let merged order =
    let ss = shards () in
    let m = Metrics.create () in
    List.iter (fun i -> Metrics.merge m ss.(i)) order;
    m
  in
  let m1 = merged [ 0; 1; 2 ] and m2 = merged [ 2; 0; 1 ] in
  checks "json merge order independent" (Metrics.to_json m1) (Metrics.to_json m2);
  checks "csv merge order independent" (Metrics.to_csv m1) (Metrics.to_csv m2);
  checks "json equals sequential recording" (Metrics.to_json seq) (Metrics.to_json m1);
  checks "csv equals sequential recording" (Metrics.to_csv seq) (Metrics.to_csv m1)

(* ------- parallel == sequential, the load-bearing property ------- *)

(* Build the same blocked 1-d skip-web on a fresh network, run the same
   query set, and return everything observable: answers, per-query
   costs, and the network's committed totals. *)
let b1_observation ~jobs ~seed ~n ~queries =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let g = B1.build ~net ~seed ~m:(4 * log2i n) keys in
  let rng = Prng.create (seed + 1) in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:queries ~bound:(100 * n) in
  let rs =
    Pool.with_pool ~jobs (fun pool -> B1.query_batch ?pool g ~rng qs)
  in
  let answers = Array.map (fun (r : B1.search_result) -> r.B1.nearest) rs in
  let costs = Array.map (fun (r : B1.search_result) -> r.B1.messages) rs in
  let traffic = Array.init n (Network.traffic net) in
  (answers, costs, Network.total_messages net, Network.sessions_started net, traffic)

let hint_observation ~jobs ~seed ~n ~queries =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let h = HInt.build ~net ~seed keys in
  let rng = Prng.create (seed + 1) in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:queries ~bound:(100 * n) in
  let rs = Pool.with_pool ~jobs (fun pool -> HInt.query_batch ?pool h ~rng qs) in
  let answers = Array.map fst rs in
  let costs = Array.map (fun (_, stats) -> stats.HInt.messages) rs in
  let traffic = Array.init n (Network.traffic net) in
  (answers, costs, Network.total_messages net, Network.sessions_started net, traffic)

(* The sequential loop itself (not query_batch with jobs=1), so the suite
   would catch query_batch drifting from query. *)
let b1_sequential ~seed ~n ~queries =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let g = B1.build ~net ~seed ~m:(4 * log2i n) keys in
  let rng = Prng.create (seed + 1) in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:queries ~bound:(100 * n) in
  let rs = Array.map (fun q -> B1.query g ~rng q) qs in
  let answers = Array.map (fun (r : B1.search_result) -> r.B1.nearest) rs in
  let costs = Array.map (fun (r : B1.search_result) -> r.B1.messages) rs in
  let traffic = Array.init n (Network.traffic net) in
  (answers, costs, Network.total_messages net, Network.sessions_started net, traffic)

let qcheck_b1_parallel_equals_sequential =
  QCheck.Test.make ~name:"blocked 1-d: batch == sequential loop for jobs in {1,2,4}"
    ~count:8
    QCheck.(pair (int_range 0 1000) (int_range 60 300))
    (fun (seed, n) ->
      let queries = 50 in
      let base = b1_sequential ~seed ~n ~queries in
      List.for_all (fun jobs -> b1_observation ~jobs ~seed ~n ~queries = base) [ 1; 2; 4 ])

let qcheck_hint_parallel_equals_sequential =
  QCheck.Test.make ~name:"generic 1-d: batch == batch for jobs in {1,2,4}" ~count:6
    QCheck.(pair (int_range 0 1000) (int_range 60 300))
    (fun (seed, n) ->
      let queries = 40 in
      let base = hint_observation ~jobs:1 ~seed ~n ~queries in
      List.for_all (fun jobs -> hint_observation ~jobs ~seed ~n ~queries = base) [ 2; 4 ])

(* The generic hierarchy's sequential loop, pinned against its own batch
   once (cheaper than a qcheck family; the drift this catches is
   query_batch consuming rng draws differently from query). *)
let test_hint_batch_matches_sequential_loop () =
  let seed = 11 and n = 200 and queries = 40 in
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let h = HInt.build ~net ~seed keys in
  let rng = Prng.create (seed + 1) in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:queries ~bound:(100 * n) in
  let rs = Array.map (fun q -> HInt.query h ~rng q) qs in
  let seq_answers = Array.map fst rs in
  let seq_total = Network.total_messages net in
  let batch = hint_observation ~jobs:1 ~seed ~n ~queries in
  let answers, _, total, _, _ = batch in
  checkb "answers equal" true (answers = seq_answers);
  checki "network totals equal" seq_total total

(* ------- parallel write path == sequential ------- *)

(* Distinct churn keys above the stored domain, so inserts always add and
   the later removes always hit. *)
let churn_keys ~seed ~count ~bound =
  let rng = Prng.create (seed + 0x9e1) in
  let taken = Hashtbl.create count in
  let out = Array.make count 0 in
  let filled = ref 0 in
  while !filled < count do
    let k = bound + Prng.int rng bound in
    if not (Hashtbl.mem taken k) then begin
      Hashtbl.replace taken k ();
      out.(!filled) <- k;
      incr filled
    end
  done;
  out

(* Bulk-build the generic hierarchy, churn it with a batch insert and a
   batch remove, and return everything observable: batch result counts,
   query answers afterwards, per-host memory and traffic, the network
   totals, and the structural summary. jobs=1 gives [with_pool] None, so
   the baseline is the genuinely sequential direct-charge path. *)
let hint_write_observation ~jobs ~seed ~n =
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let net = Network.create ~hosts:(2 * n) in
  Pool.with_pool ~jobs @@ fun pool ->
  let h = HInt.build ~net ~seed ?pool keys in
  let churn = churn_keys ~seed ~count:(max 10 (n / 4)) ~bound in
  let inserted = HInt.insert_batch ?pool h churn in
  let removed = HInt.remove_batch ?pool h churn in
  HInt.check_invariants h;
  let rng = Prng.create (seed + 1) in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:30 ~bound in
  let answers = Array.map (fun q -> fst (HInt.query h ~rng q)) qs in
  let hosts = Network.host_count net in
  let mem = Array.init hosts (Network.memory net) in
  let traffic = Array.init hosts (Network.traffic net) in
  ( inserted,
    removed,
    answers,
    mem,
    traffic,
    Network.total_messages net,
    Network.sessions_started net,
    (HInt.size h, HInt.levels h, HInt.total_storage h) )

(* Same shape for the blocked structure: the churn is big enough to force
   epoch rebuilds, which run on the pool the structure was built with. *)
let b1_write_observation ~jobs ~seed ~n =
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let net = Network.create ~hosts:(2 * n) in
  Pool.with_pool ~jobs @@ fun pool ->
  let g = B1.build ~net ~seed ~m:(4 * log2i n) ?pool keys in
  let churn = churn_keys ~seed ~count:(max 8 (n / 2)) ~bound in
  let ins = Array.map (fun k -> B1.insert g k) churn in
  let del = Array.map (fun k -> B1.delete g k) churn in
  B1.check_invariants g;
  let rng = Prng.create (seed + 1) in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:30 ~bound in
  let answers = Array.map (fun q -> (B1.query g ~rng q).B1.nearest) qs in
  let hosts = Network.host_count net in
  let mem = Array.init hosts (Network.memory net) in
  let traffic = Array.init hosts (Network.traffic net) in
  (ins, del, answers, mem, traffic, Network.total_messages net, Network.sessions_started net)

let qcheck_hint_write_parallel_equals_sequential =
  QCheck.Test.make
    ~name:"generic 1-d: build/insert_batch/remove_batch == sequential for jobs in {1,2,4}"
    ~count:5
    QCheck.(pair (int_range 0 1000) (int_range 60 240))
    (fun (seed, n) ->
      let base = hint_write_observation ~jobs:1 ~seed ~n in
      List.for_all (fun jobs -> hint_write_observation ~jobs ~seed ~n = base) [ 2; 4 ])

let qcheck_b1_write_parallel_equals_sequential =
  QCheck.Test.make
    ~name:"blocked 1-d: pooled build + rebuild churn == sequential for jobs in {1,2,4}"
    ~count:4
    QCheck.(pair (int_range 0 1000) (int_range 60 200))
    (fun (seed, n) ->
      let base = b1_write_observation ~jobs:1 ~seed ~n in
      List.for_all (fun jobs -> b1_write_observation ~jobs ~seed ~n = base) [ 2; 4 ])

(* The blocked structure's bulk ops (one chunk-sharded splice + one
   rebuild per batch): everything observable must match jobs=1 bit for
   bit, like the per-key churn above. *)
let b1_batch_write_observation ~jobs ~seed ~n =
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let net = Network.create ~hosts:(2 * n) in
  Pool.with_pool ~jobs @@ fun pool ->
  let g = B1.build ~net ~seed ~m:(4 * log2i n) ?pool keys in
  let churn = churn_keys ~seed ~count:(max 8 (n / 2)) ~bound in
  let inserted = B1.insert_batch ?pool g churn in
  let removed = B1.delete_batch ?pool g churn in
  B1.check_invariants g;
  let rng = Prng.create (seed + 1) in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:30 ~bound in
  let answers = Array.map (fun q -> (B1.query g ~rng q).B1.nearest) qs in
  let hosts = Network.host_count net in
  let mem = Array.init hosts (Network.memory net) in
  let traffic = Array.init hosts (Network.traffic net) in
  ( inserted,
    removed,
    answers,
    mem,
    traffic,
    Network.total_messages net,
    Network.sessions_started net,
    (B1.size g, B1.levels g, B1.total_storage g) )

let qcheck_b1_batch_write_parallel_equals_sequential =
  QCheck.Test.make
    ~name:"blocked 1-d: insert_batch/delete_batch == sequential for jobs in {1,2,4}" ~count:4
    QCheck.(pair (int_range 0 1000) (int_range 60 200))
    (fun (seed, n) ->
      let base = b1_batch_write_observation ~jobs:1 ~seed ~n in
      List.for_all (fun jobs -> b1_batch_write_observation ~jobs ~seed ~n = base) [ 2; 4 ])

(* The blocked rebuild is a pure function of the ground set, so a batch
   op must leave exactly the state the per-key loop leaves — same size,
   storage and per-host memory charges (traffic differs by design: the
   batch is a maintenance op and runs no locate queries). *)
let test_b1_batch_equals_per_key_state () =
  let seed = 7 and n = 120 in
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let churn = churn_keys ~seed ~count:40 ~bound in
  let state g net =
    ( B1.size g,
      B1.total_storage g,
      B1.replicated_storage g,
      B1.max_host_memory g,
      Array.init (Network.host_count net) (Network.memory net) )
  in
  let net1 = Network.create ~hosts:(2 * n) in
  let g1 = B1.build ~net:net1 ~seed ~m:(4 * log2i n) keys in
  Array.iter (fun k -> ignore (B1.insert g1 k : int)) churn;
  let net2 = Network.create ~hosts:(2 * n) in
  let g2 = B1.build ~net:net2 ~seed ~m:(4 * log2i n) keys in
  checki "batch inserted all" (Array.length churn) (B1.insert_batch g2 churn);
  checkb "state equal after insert" true (state g1 net1 = state g2 net2);
  Array.iter (fun k -> ignore (B1.delete g1 k : int)) churn;
  checki "batch removed all" (Array.length churn) (B1.delete_batch g2 churn);
  checkb "state equal after delete" true (state g1 net1 = state g2 net2);
  B1.check_invariants g2

(* ------- utilization counters ------- *)

let test_pool_utilization_counters () =
  let p = Pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      Pool.reset_utilization p;
      Pool.parallel_for_tasks p ~weights:(Array.make 16 1) (fun _ -> ());
      let u = Pool.utilization p in
      checki "one slot per domain" 2 (Array.length u.Pool.tasks);
      checki "every task counted once" 16 (Array.fold_left ( + ) 0 u.Pool.tasks);
      checkb "busy time non-negative" true (Array.for_all (fun b -> b >= 0.0) u.Pool.busy_s);
      let reg = Metrics.create () in
      Pool.record_metrics p reg;
      checki "pool.jobs exported" 2 (Metrics.counter_value reg "pool.jobs");
      checki "per-slot tasks exported" 16
        (Metrics.counter_value reg "pool.slot00.tasks"
        + Metrics.counter_value reg "pool.slot01.tasks");
      Pool.reset_utilization p;
      let u2 = Pool.utilization p in
      checki "reset clears tasks" 0 (Array.fold_left ( + ) 0 u2.Pool.tasks))

let test_clamp_jobs () =
  let cap = Domain.recommended_domain_count () in
  checki "under cap passes" 1 (Pool.clamp_jobs ~warn:false 1);
  checki "at cap passes" cap (Pool.clamp_jobs ~warn:false cap);
  checki "over cap clamps" cap (Pool.clamp_jobs ~warn:false (cap + 7))

let suite =
  [
    Alcotest.test_case "parallel_for covers ranges" `Quick test_parallel_for_covers_range;
    Alcotest.test_case "jobs=1 runs inline" `Quick test_parallel_for_jobs1_inline;
    Alcotest.test_case "parallel_map preserves order" `Quick test_parallel_map_preserves_order;
    Alcotest.test_case "exceptions propagate; pool survives" `Quick
      test_exception_propagates_and_pool_survives;
    Alcotest.test_case "re-entrant batches rejected" `Quick test_reentrancy_rejected;
    Alcotest.test_case "shutdown idempotent and final" `Quick test_shutdown_idempotent_and_final;
    Alcotest.test_case "parallel_for_tasks covers every task" `Quick
      test_parallel_for_tasks_covers_tasks;
    Alcotest.test_case "parallel_for_tasks jobs=1 inline in index order" `Quick
      test_parallel_for_tasks_jobs1_inline_ordered;
    Alcotest.test_case "parallel_for_tasks exceptions propagate; pool survives" `Quick
      test_parallel_for_tasks_exception_and_reuse;
    Alcotest.test_case "parallel_for_tasks rejected after shutdown" `Quick
      test_parallel_for_tasks_after_shutdown;
    Alcotest.test_case "parallel_map small batches use dynamic dispatch" `Quick
      test_parallel_map_small_batch_dynamic;
    Alcotest.test_case "with_pool convention" `Quick test_with_pool_convention;
    Alcotest.test_case "Prng.stream deterministic, non-advancing" `Quick
      test_stream_deterministic_and_non_advancing;
    Alcotest.test_case "metrics shard merge is order-independent" `Quick
      test_merge_order_independent_exports;
    Alcotest.test_case "generic batch matches sequential loop" `Quick
      test_hint_batch_matches_sequential_loop;
    QCheck_alcotest.to_alcotest qcheck_b1_parallel_equals_sequential;
    QCheck_alcotest.to_alcotest qcheck_hint_parallel_equals_sequential;
    Alcotest.test_case "blocked batch ops leave the per-key state" `Quick
      test_b1_batch_equals_per_key_state;
    Alcotest.test_case "pool utilization counters" `Quick test_pool_utilization_counters;
    Alcotest.test_case "clamp_jobs caps at the recommended count" `Quick test_clamp_jobs;
    QCheck_alcotest.to_alcotest qcheck_hint_write_parallel_equals_sequential;
    QCheck_alcotest.to_alcotest qcheck_b1_write_parallel_equals_sequential;
    QCheck_alcotest.to_alcotest qcheck_b1_batch_write_parallel_equals_sequential;
  ]
