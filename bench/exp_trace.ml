(* E16: per-level cost attribution via session traces.

   Theorem 2 prices a query at O(log n) messages, and the set-halving
   lemmas promise O(1) expected conflicts per refinement — but both are
   per-level statements, and the aggregate counters of Network cannot show
   *where* in the hierarchy a deviation happens. This experiment traces
   every query, decomposes the message bill into a messages-per-level
   matrix, histograms the per-step conflict-set sizes, and summarizes the
   per-host traffic distribution, for the sorted-list and quadtree
   instances. Results go to BENCH_trace.json so later perf PRs get
   before/after per-level evidence for free.

   It also enforces the observability contract: an identical seeded
   workload run with and without tracing must produce the same
   Network.total_messages. *)

module Network = Skipweb_net.Network
module Trace = Skipweb_net.Trace
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Stats = Skipweb_util.Stats
module Tables = Skipweb_util.Tables
module C = Bench_common

type row = {
  instance : string;
  n : int;
  ops : int;
  msgs : Stats.summary;  (* messages per op *)
  per_level : (int * int) list;  (* level -> total messages over all ops *)
  conflicts : Stats.summary;  (* conflict-set size per refinement step *)
  traffic : Stats.summary;  (* per-host session visits *)
}

module Measure (S : Skipweb_core.Range_structure.S) = struct
  module HS = H.Make (S)

  let run ~seed ~n ~keys ~queries =
    let net = Network.create ~hosts:n in
    let h = HS.build ~net ~seed keys in
    let rng = Prng.create (seed + 1) in
    let msgs = ref [] in
    let conflicts = ref [] in
    let per_level = Hashtbl.create 32 in
    Array.iter
      (fun q ->
        let tr = Trace.create () in
        let _, stats = HS.query ~trace:tr h ~rng q in
        (* Every hop of a hierarchy query happens inside a leveled span; a
           stray unattributed hop means the instrumentation regressed. *)
        if Trace.unattributed_hops tr <> 0 then failwith "exp_trace: unattributed hops";
        if Trace.total_hops tr <> stats.HS.messages then
          failwith "exp_trace: trace disagrees with session message count";
        msgs := float_of_int stats.HS.messages :: !msgs;
        List.iter
          (fun v -> conflicts := float_of_int v :: !conflicts)
          stats.HS.per_level_visits;
        List.iter
          (fun (level, hops) ->
            Hashtbl.replace per_level level
              (hops + try Hashtbl.find per_level level with Not_found -> 0))
          (Trace.per_level_hops tr))
      queries;
    let traffic = List.init n (fun host -> float_of_int (Network.traffic net host)) in
    {
      instance = S.name;
      n;
      ops = Array.length queries;
      msgs = Stats.summarize !msgs;
      per_level = Hashtbl.fold (fun l c acc -> (l, c) :: acc) per_level [] |> List.sort compare;
      conflicts = Stats.summarize !conflicts;
      traffic = Stats.summarize traffic;
    }
end

module MInts = Measure (I.Ints)
module MP2 = Measure (I.Points2d)

let json_of_row r =
  let matrix =
    String.concat ", "
      (List.map (fun (level, msgs) -> Printf.sprintf "[%d, %d]" level msgs) r.per_level)
  in
  Printf.sprintf
    "    {\"instance\": \"%s\", \"n\": %d, \"ops\": %d,\n\
    \     \"messages_per_op\": %s,\n\
    \     \"per_level_messages\": [%s],\n\
    \     \"conflict_sizes\": %s,\n\
    \     \"host_traffic\": %s}"
    (Trace.json_escape r.instance)
    r.n r.ops (C.json_of_summary r.msgs) matrix
    (C.json_of_summary r.conflicts)
    (C.json_of_summary r.traffic)

let run (cfg : C.config) =
  C.section "Per-level cost attribution via traces (E16)";
  let sizes = if cfg.C.quick then [ 256; 1024 ] else [ 1024; 4096 ] in
  let rows =
    List.concat_map
      (fun n ->
        let seed = List.hd cfg.C.seeds in
        let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
        let ints_row =
          MInts.run ~seed ~n ~keys
            ~queries:(W.query_mix ~seed:(seed + 2) ~keys ~n:cfg.C.queries ~bound:(100 * n))
        in
        let pts = W.uniform_points ~seed:(seed + 3) ~n ~dim:2 in
        let pts_row =
          MP2.run ~seed ~n ~keys:pts
            ~queries:(W.uniform_query_points ~seed:(seed + 4) ~n:cfg.C.queries ~dim:2)
        in
        [ ints_row; pts_row ])
      sizes
  in
  let tbl =
    Tables.create ~title:"messages per op, by instance (traced)"
      ~columns:[ "instance"; "n"; "mean"; "p50"; "p90"; "p99"; "mean conflicts"; "max host visits" ]
  in
  List.iter
    (fun r ->
      Tables.add_row tbl
        [
          r.instance;
          string_of_int r.n;
          Tables.cell_float r.msgs.Stats.mean;
          Tables.cell_float r.msgs.Stats.p50;
          Tables.cell_float r.msgs.Stats.p90;
          Tables.cell_float r.msgs.Stats.p99;
          Tables.cell_float r.conflicts.Stats.mean;
          Tables.cell_float r.traffic.Stats.max;
        ])
    rows;
  Tables.print tbl;
  (* The per-level matrix for the largest size of each instance: the lens
     the set-halving lemmas are judged through. Levels print top-down, the
     order a query descends. *)
  let biggest = List.fold_left (fun acc r -> max acc r.n) 0 rows in
  List.iter
    (fun r ->
      if r.n = biggest then begin
        let t =
          Tables.create
            ~title:(Printf.sprintf "messages per level: %s, n = %d" r.instance r.n)
            ~columns:[ "level"; "messages"; "per op" ]
        in
        List.iter
          (fun (level, msgs) ->
            Tables.add_row t
              [
                string_of_int level;
                string_of_int msgs;
                Tables.cell_float (float_of_int msgs /. float_of_int r.ops);
              ])
          (List.rev r.per_level);
        Tables.print t
      end)
    rows;
  (* Guard: tracing is observation only. *)
  C.assert_trace_transparent ~label:"hierarchy/sorted-list n=1024" ~run:(fun ~traced ->
      let seed = List.hd cfg.C.seeds in
      let keys = W.distinct_ints ~seed ~n:1024 ~bound:102_400 in
      let net = Network.create ~hosts:1024 in
      let h = MInts.HS.build ~net ~seed keys in
      let rng = Prng.create (seed + 1) in
      Array.iter
        (fun q ->
          let trace = if traced then Some (Trace.create ()) else None in
          ignore (MInts.HS.query ?trace h ~rng q))
        (W.query_mix ~seed:(seed + 2) ~keys ~n:100 ~bound:102_400);
      Network.total_messages net);
  C.write_json ~file:"BENCH_trace.json"
    (Printf.sprintf
       "{\n\
       \  \"experiment\": \"trace\",\n\
       \  \"workload\": \"traced query batches over the generic hierarchy\",\n\
       \  \"rows\": [\n\
        %s\n\
       \  ]\n\
        }\n"
       (String.concat ",\n" (List.map json_of_row rows)))
