(* E21: the multi-dimensional fast path under a mixed workload.

   Three skip-webs — quadtree-2d, trie, trapezoidal map — each bulk-built
   and then driven through a mixed batch of point queries and multi-result
   scans (axis-aligned boxes and k-NN on the quadtree, prefix enumerations
   on the trie, point-location scans on the trapmap), plus a native
   insert_batch/remove_batch update phase. Every phase runs under an
   internal --jobs sweep {1, 2, 4} (clamped to the hardware, without
   warning spam) and the deterministic digest of each run — every answer,
   every per-query message count, the network's message total, the charged
   memory of every host, and the structure size — must be bit-identical
   across the sweep: the pooled fast path is pure wall-clock.

   The headline number is the direct quadtree build at the largest size:
   the single-pass z-order bulk build (sequential and pooled) against the
   per-key insert loop it replaced, reported as a speedup ratio. All
   wall-clock values live on "timing" lines so CI can strip them and
   byte-compare the rest across --jobs settings.

   The trapezoidal map rows use much smaller n than the tree structures:
   each segment insertion validates against every stored segment (the
   structure is a planar subdivision, not a search tree), so its build is
   Θ(m²) by contract and a 10⁵-segment row would dominate the whole
   bench without measuring anything new. *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module DPool = Skipweb_util.Pool
module Point = Skipweb_geom.Point
module Cq = Skipweb_quadtree.Cqtree
module C = Bench_common

module HP2 = H.Make (I.Points2d)
module HStr = H.Make (I.Strings)
module HSeg = H.Make (I.Segments)

type phase_times = {
  t_build : float;
  t_queries : float;
  t_scans : float;
  t_updates : float;
}

type run_out = {
  structure : string;
  n : int;
  jobs : int;
  queries : int;
  scans : int;
  batch : int;
  messages : int;  (* network total after the query + scan phases *)
  mem_total : int;  (* charged memory after the update phase *)
  size : int;
  times : phase_times;
  (* Everything observable, for the cross-jobs identity assert: answers,
     per-op message counts, per-host memory. Compared structurally and
     then dropped — only the scalar summary above reaches the JSON. *)
  digest : string;
}

let hosts_for n = min (max 64 n) 4096

(* A short printable digest: structural equality across jobs is checked on
   the full observable tuple by the caller; this fingerprint goes into the
   comparison via Marshal so unequal runs can't collide silently. *)
let fingerprint v = Digest.to_hex (Digest.string (Marshal.to_string v []))

(* ---------------- quadtree-2d ---------------- *)

let run_points ~seed ~n ~nq ~nscan ~jobs =
  DPool.with_pool ~jobs (fun pool ->
      let pts = W.uniform_points ~seed ~n ~dim:2 in
      let net = Network.create ~hosts:(hosts_for n) in
      let h, t_build = C.timed (fun () -> HP2.build ~net ~seed ?pool pts) in
      let qs = W.uniform_query_points ~seed:(seed + 1) ~n:nq ~dim:2 in
      let rng = Prng.create (seed + 2) in
      let answers, t_queries = C.timed (fun () -> HP2.query_batch ?pool h ~rng qs) in
      (* Scans alternate boxes and k-NN probes, both derived from the same
         deterministic query stream. *)
      let sq = W.uniform_query_points ~seed:(seed + 3) ~n:nscan ~dim:2 in
      let scans =
        Array.mapi
          (fun i c ->
            if i mod 2 = 0 then
              let lo = Point.create [ Float.min c.(0) 0.8; Float.min c.(1) 0.8 ] in
              let hi = Point.create [ Float.min c.(0) 0.8 +. 0.15; Float.min c.(1) 0.8 +. 0.15 ] in
              I.Box { lo; hi; limit = 32 }
            else I.Knn { center = c; k = 8 })
          sq
      in
      let rng_s = Prng.create (seed + 4) in
      let sanswers, t_scans = C.timed (fun () -> HP2.scan_batch ?pool h ~rng:rng_s scans) in
      let messages = Network.total_messages net in
      let extra = W.uniform_points ~seed:(seed + 5) ~n:(min 20_000 (max 64 (n / 10))) ~dim:2 in
      let (ins, rmv), t_updates =
        C.timed (fun () ->
            let ins = HP2.insert_batch ?pool h extra in
            let rmv = HP2.remove_batch ?pool h extra in
            (ins, rmv))
      in
      HP2.check_invariants h;
      let mem = List.init (hosts_for n) (Network.memory net) in
      let digest =
        fingerprint
          ( Array.map (fun (a, st) -> (a, st.HP2.messages)) answers,
            Array.map (fun (a, st) -> (a, st.HP2.messages)) sanswers,
            ins, rmv, messages, mem, HP2.size h )
      in
      {
        structure = "quadtree-2d";
        n;
        jobs;
        queries = nq;
        scans = nscan;
        batch = Array.length extra;
        messages;
        mem_total = Network.total_memory net;
        size = HP2.size h;
        times = { t_build; t_queries; t_scans; t_updates };
        digest;
      })

(* ---------------- trie ---------------- *)

(* Shortest length whose 4-letter key space holds 2n distinct strings
   (the generator's headroom requirement), floored at 10 so the small
   sizes keep the same workload shape. *)
let strlen_for n =
  let rec go len cap = if cap >= 2 * n then len else go (len + 1) (4 * cap) in
  go 10 (4 * 4 * 4 * 4 * 4 * 4 * 4 * 4 * 4 * 4)

let run_strings ~seed ~n ~nq ~nscan ~jobs =
  DPool.with_pool ~jobs (fun pool ->
      let strs = W.random_strings ~seed ~n ~alphabet:4 ~len:(strlen_for n) in
      let net = Network.create ~hosts:(hosts_for n) in
      let h, t_build = C.timed (fun () -> HStr.build ~net ~seed ?pool strs) in
      let qs = W.string_queries ~seed:(seed + 1) ~keys:strs ~n:nq in
      let rng = Prng.create (seed + 2) in
      let answers, t_queries = C.timed (fun () -> HStr.query_batch ?pool h ~rng qs) in
      (* Prefix scans: short prefixes of stored strings, so most scans
         enumerate a non-trivial subtree. *)
      let sq = W.string_queries ~seed:(seed + 3) ~keys:strs ~n:nscan in
      let scans =
        Array.map
          (fun s ->
            { I.prefix = String.sub s 0 (min 2 (String.length s)); scan_limit = 32 })
          sq
      in
      let rng_s = Prng.create (seed + 4) in
      let sanswers, t_scans = C.timed (fun () -> HStr.scan_batch ?pool h ~rng:rng_s scans) in
      let messages = Network.total_messages net in
      let extra =
        W.random_strings ~seed:(seed + 5)
          ~n:(min 20_000 (max 64 (n / 10)))
          ~alphabet:4
          ~len:(strlen_for n + 1)
      in
      let (ins, rmv), t_updates =
        C.timed (fun () ->
            let ins = HStr.insert_batch ?pool h extra in
            let rmv = HStr.remove_batch ?pool h extra in
            (ins, rmv))
      in
      HStr.check_invariants h;
      let mem = List.init (hosts_for n) (Network.memory net) in
      let digest =
        fingerprint
          ( Array.map (fun (a, st) -> (a, st.HStr.messages)) answers,
            Array.map (fun (a, st) -> (a, st.HStr.messages)) sanswers,
            ins, rmv, messages, mem, HStr.size h )
      in
      {
        structure = "trie";
        n;
        jobs;
        queries = nq;
        scans = nscan;
        batch = Array.length extra;
        messages;
        mem_total = Network.total_memory net;
        size = HStr.size h;
        times = { t_build; t_queries; t_scans; t_updates };
        digest;
      })

(* ---------------- trapezoidal map ---------------- *)

let run_segments ~seed ~n ~nq ~nscan ~jobs =
  DPool.with_pool ~jobs (fun pool ->
      let extra_n = max 8 (n / 10) in
      let all = W.disjoint_segments ~seed ~n:(n + extra_n) in
      let segs = Array.sub all 0 n in
      let net = Network.create ~hosts:(hosts_for n) in
      let h, t_build = C.timed (fun () -> HSeg.build ~net ~seed ?pool segs) in
      let qs = W.trapmap_query_points ~seed:(seed + 1) ~n:nq in
      let rng = Prng.create (seed + 2) in
      let answers, t_queries = C.timed (fun () -> HSeg.query_batch ?pool h ~rng qs) in
      let scans = W.trapmap_query_points ~seed:(seed + 3) ~n:nscan in
      let rng_s = Prng.create (seed + 4) in
      let sanswers, t_scans = C.timed (fun () -> HSeg.scan_batch ?pool h ~rng:rng_s scans) in
      let messages = Network.total_messages net in
      (* Trapezoidal maps don't support deletion; the update phase is
         insert-only, with segments drawn from the same disjoint family. *)
      let extra = Array.sub all n extra_n in
      let ins, t_updates = C.timed (fun () -> HSeg.insert_batch ?pool h extra) in
      HSeg.check_invariants h;
      let mem = List.init (hosts_for n) (Network.memory net) in
      let digest =
        fingerprint
          ( Array.map (fun (a, st) -> (a, st.HSeg.messages)) answers,
            Array.map (fun (a, st) -> (a, st.HSeg.messages)) sanswers,
            ins, messages, mem, HSeg.size h )
      in
      {
        structure = "trapmap";
        n;
        jobs;
        queries = nq;
        scans = nscan;
        batch = extra_n;
        messages;
        mem_total = Network.total_memory net;
        size = HSeg.size h;
        times = { t_build; t_queries; t_scans; t_updates };
        digest;
      })

(* ---------------- the quadtree bulk-build headline ---------------- *)

type build_race = {
  br_n : int;
  per_key_s : float;
  bulk_s : float;
  bulk_pooled_s : float;
  pooled_jobs : int;
  speedup : float;  (* per-key / sequential bulk *)
}

let build_race ~seed ~n =
  let pts = W.uniform_points ~seed ~n ~dim:2 in
  let per_key, per_key_s =
    C.timed (fun () ->
        let t = Cq.build ~dim:2 [||] in
        Array.iter (fun p -> ignore (Cq.insert t p)) pts;
        t)
  in
  let bulk, bulk_s = C.timed (fun () -> Cq.build ~dim:2 pts) in
  let pooled_jobs = 4 in
  let pooled, bulk_pooled_s =
    DPool.with_pool ~jobs:pooled_jobs (fun pool -> C.timed (fun () -> Cq.build ?pool ~dim:2 pts))
  in
  if Cq.size bulk <> Cq.size per_key || Cq.size pooled <> Cq.size per_key then
    failwith "exp_multid: build race produced different trees";
  { br_n = n; per_key_s; bulk_s; bulk_pooled_s; pooled_jobs;
    speedup = per_key_s /. Float.max 1e-9 bulk_s }

(* ---------------- harness ---------------- *)

let json_of_row r =
  Printf.sprintf
    "    {\"structure\": \"%s\", \"n\": %d, \"queries\": %d, \"scans\": %d, \"batch\": %d, \
     \"messages\": %d, \"mem_total\": %d, \"size\": %d,\n\
    \     \"timing\": {\"jobs\": %d, \"build_s\": %.6f, \"query_s\": %.6f, \"scan_s\": %.6f, \
     \"update_s\": %.6f}}"
    r.structure r.n r.queries r.scans r.batch r.messages r.mem_total r.size r.jobs
    r.times.t_build r.times.t_queries r.times.t_scans r.times.t_updates

let json ~jobs_swept ~answers_identical ~race rows =
  Printf.sprintf
    "{\n\
    \  \"experiment\": \"multid\",\n\
    \  \"workload\": \"bulk build + mixed point/range/k-NN/prefix batches + native batch \
     updates on quadtree-2d, trie and trapmap webs\",\n\
    \  \"jobs_swept\": [%s],\n\
    \  \"answers_identical\": %b,\n\
    \  \"build_race\": {\"structure\": \"quadtree-2d\", \"n\": %d,\n\
    \    \"timing\": {\"per_key_s\": %.6f, \"bulk_s\": %.6f, \"bulk_pooled_s\": %.6f, \
     \"pooled_jobs\": %d, \"build_speedup\": %.2f}},\n\
    \  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ", " (List.map string_of_int jobs_swept))
    answers_identical race.br_n race.per_key_s race.bulk_s race.bulk_pooled_s race.pooled_jobs
    race.speedup
    (String.concat ",\n" (List.map json_of_row rows))

let run (cfg : C.config) =
  C.section "Multi-dimensional fast path: bulk build, batch queries + scans, batch updates (E21)";
  let tree_sizes = if cfg.C.quick then [ 2_000; 10_000 ] else [ 100_000; 1_000_000 ] in
  let trap_sizes = if cfg.C.quick then [ 300 ] else [ 1_500 ] in
  let nq = if cfg.C.quick then 200 else 2_000 in
  let nscan = if cfg.C.quick then 100 else 500 in
  (* Deliberately NOT clamped to the hardware: the sweep exists to prove
     the pooled paths are jobs-invariant, and an oversubscribed pool is
     exactly as deterministic as a well-sized one — only slower. *)
  let jobs_swept = [ 1; 2; 4 ] in
  let seed = List.hd cfg.C.seeds in
  let identical = ref true in
  (* Sweep one workload over the jobs list; keep the jobs=1 row for the
     table and verify every other row's digest against it. *)
  let sweep runner =
    let runs = List.map (fun jobs -> runner ~jobs) jobs_swept in
    let base = List.hd runs in
    List.iter
      (fun r ->
        if r.digest <> base.digest then begin
          identical := false;
          Printf.printf "DIGEST MISMATCH: %s n=%d jobs=%d diverges from jobs=%d\n" r.structure
            r.n r.jobs base.jobs
        end)
      (List.tl runs);
    runs
  in
  let rows =
    List.concat
      [
        List.concat_map (fun n -> sweep (fun ~jobs -> run_points ~seed ~n ~nq ~nscan ~jobs)) tree_sizes;
        List.concat_map
          (fun n -> sweep (fun ~jobs -> run_strings ~seed ~n ~nq ~nscan ~jobs))
          tree_sizes;
        List.concat_map
          (fun n ->
            sweep (fun ~jobs ->
                run_segments ~seed ~n ~nq:(min nq 500) ~nscan:(min nscan 200) ~jobs))
          trap_sizes;
      ]
  in
  if not !identical then failwith "exp_multid: answers diverged across the jobs sweep";
  let tbl =
    Skipweb_util.Tables.create
      ~title:"multi-d mixed workload: build / query / scan / update wall clock, per jobs"
      ~columns:
        [ "structure"; "n"; "jobs"; "build (s)"; "q (s)"; "scan (s)"; "upd (s)"; "messages"; "mem" ]
  in
  List.iter
    (fun r ->
      Skipweb_util.Tables.add_row tbl
        [
          r.structure;
          string_of_int r.n;
          string_of_int r.jobs;
          Printf.sprintf "%.3f" r.times.t_build;
          Printf.sprintf "%.3f" r.times.t_queries;
          Printf.sprintf "%.3f" r.times.t_scans;
          Printf.sprintf "%.3f" r.times.t_updates;
          string_of_int r.messages;
          string_of_int r.mem_total;
        ])
    rows;
  Skipweb_util.Tables.print tbl;
  let race = build_race ~seed ~n:(List.fold_left max 0 tree_sizes) in
  Printf.printf
    "quadtree bulk build at n = %d: per-key %.3fs, bulk %.3fs (%.2fx), pooled(%d) %.3fs\n"
    race.br_n race.per_key_s race.bulk_s race.speedup race.pooled_jobs race.bulk_pooled_s;
  Printf.printf "jobs sweep {%s}: answers, messages and charged memory identical\n"
    (String.concat ", " (List.map string_of_int jobs_swept));
  C.write_json ~file:"BENCH_multid.json"
    (json ~jobs_swept ~answers_identical:!identical ~race rows)
