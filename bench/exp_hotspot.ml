(* E19: the congestion observatory — where does a skewed workload's
   load actually land?

   The Skip Graphs line of work warns that the top levels of any skip
   structure concentrate traffic on a few hosts; the ROADMAP's
   serving-at-scale item needs that measured before it can be attacked
   (level caching / hotspot flattening). This experiment drives mixed
   uniform + Zipf(1.1) query traffic against both skip-web structures
   at n up to 10^6 (10^5 and 10^6 in the full sweep) and reports, per
   row, entirely through constant-memory telemetry:

     - the per-operation message distribution via a mergeable quantile
       Sketch — per-chunk shards recorded inside the parallel query
       phase and merged afterwards, never a per-sample array;
     - the per-host hotspot top-k via the observatory's space-saving
       heavy hitters, fed from the network's exact per-host traffic
       counters after the phase (order-independent sums, so the summary
       is identical for any --jobs count);
     - congestion percentiles (p50/p90/p99/max) and the Gini
       coefficient of per-host traffic — the inequality the upper
       levels create, and the y-axis any future flattening work must
       push down;
     - a per-level attribution of load from a small traced sample
       (Trace spans, reused), showing which refinement levels the
       messages come from. The sample runs first and its traffic is
       reset away, so the congestion numbers describe the main phase
       only.

   Telemetry must be charge-invisible, like tracing: the experiment
   asserts that running the same seeded phase with the observatory tap
   attached and detached yields identical total message counts.

   Query i draws its coins from [Prng.stream] i and sketch merging is
   partition-independent, so every deterministic JSON field is
   bit-identical for any jobs count; wall clocks live in the "timing"
   member, stripped by CI like every other bench. Results go to
   BENCH_hotspot.json; CI's smoke leg asserts the top_k and congestion
   members are present. *)

module Network = Skipweb_net.Network
module Trace = Skipweb_net.Trace
module Obs = Skipweb_net.Observatory
module H = Skipweb_core.Hierarchy
module B1 = Skipweb_core.Blocked1d
module I = Skipweb_core.Instances
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Sketch = Skipweb_util.Sketch
module Stats = Skipweb_util.Stats
module DPool = Skipweb_util.Pool
module C = Bench_common

module HInt = H.Make (I.Ints)

let top_k = 10
let traced_sample = 48
let sketch_alpha = 0.01
let sketch_cap = 256

type row = {
  structure : string;
  n : int;
  hosts : int;
  queries : int;
  traced : int;
  sketch_json : string;  (* per-op query message distribution *)
  mean_msgs : float;
  top_json : string;
  congestion : Obs.congestion;
  levels_json : string;
  unattributed : int;
  wall_s : float;
  jobs : int;
}

(* Mixed query points: even slots uniform over the key domain, odd
   slots Zipf(1.1)-popular stored keys — popularity skew on top of the
   structural skew the upper levels already create. [total] must be
   even. *)
let make_queries ~seed ~keys ~total ~bound =
  let half = total / 2 in
  let z = W.zipf_queries ~seed:(seed + 0x21f) ~keys ~n:half ~s:1.1 in
  let rng = Prng.create (seed + 0x0b5) in
  let u = Array.init half (fun _ -> Prng.int rng bound) in
  Array.init total (fun i -> if i mod 2 = 0 then u.(i / 2) else z.(i / 2))

(* One measured row. [query_one rng q] runs one query and returns its
   message count; [traced_query rng tr q] the same with a trace. *)
let drive_row ~structure ~pool ~jobs ~net ~n ~queries ~seed ~query_one ~traced_query ~qs =
  let obs = Obs.create ~k:top_k ~alpha:sketch_alpha ~exact_cap:sketch_cap () in
  (* Attribution sample: a few traced queries, sequential, then reset
     the workload counters so the main phase's congestion is clean. *)
  let traced = min traced_sample queries in
  let tcoins = Prng.create (seed + 0x7a) in
  for i = 0 to traced - 1 do
    let tr = Trace.create () in
    ignore (traced_query (Prng.stream tcoins i) tr qs.(i) : int);
    Obs.observe_trace obs tr
  done;
  Network.reset_traffic net;
  (* Main phase: fan the queries over the pool in deterministic static
     chunks, each chunk recording into its own sketch shard — no
     per-sample array anywhere. Query i's coins are a pure function of
     (seed, i), and sketch merging is partition-independent, so the
     merged distribution is identical for any jobs count. *)
  let coins = Prng.create (seed + 0xe19) in
  let shards = Array.init jobs (fun _ -> Sketch.create ~alpha:sketch_alpha ~exact_cap:sketch_cap ()) in
  let chunk_bounds c = (c * queries / jobs, (c + 1) * queries / jobs) in
  let t0 = C.now () in
  let chunk c =
    let lo, hi = chunk_bounds c in
    for i = lo to hi - 1 do
      Sketch.observe_int shards.(c) (query_one (Prng.stream coins i) qs.(i))
    done
  in
  (match pool with None -> chunk 0 | Some p -> DPool.parallel_for p ~lo:0 ~hi:jobs chunk);
  let wall_s = C.now () -. t0 in
  Array.iteri
    (fun c shard ->
      let lo, hi = chunk_bounds c in
      Obs.merge_message_shard obs ~ops:(hi - lo) shard)
    shards;
  Obs.observe_traffic obs net;
  let s = Sketch.summary (Obs.message_sketch obs) in
  {
    structure;
    n;
    hosts = Network.host_count net;
    queries;
    traced;
    sketch_json = Sketch.to_json (Obs.message_sketch obs);
    mean_msgs = s.Stats.mean;
    top_json = Obs.hot_hosts_to_json obs;
    congestion = Obs.congestion_of net;
    levels_json = Obs.per_level_to_json obs;
    unattributed = Obs.unattributed_hops obs;
    wall_s;
    jobs;
  }

let hierarchy_row ~pool ~jobs ~seed ~queries n =
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let net = Network.create ~hosts:n in
  let h = HInt.build ~net ~seed ?pool keys in
  let qs = make_queries ~seed ~keys ~total:queries ~bound in
  let query_one rng q =
    let _, st = HInt.query h ~rng q in
    st.HInt.messages
  in
  let traced_query rng tr q =
    let _, st = HInt.query ~trace:tr h ~rng q in
    st.HInt.messages
  in
  drive_row ~structure:"hierarchy" ~pool ~jobs ~net ~n ~queries ~seed ~query_one ~traced_query ~qs

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

let blocked_row ~pool ~jobs ~seed ~queries n =
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let net = Network.create ~hosts:n in
  let b = B1.build ~net ~seed ~m:(4 * log2i n) ?pool keys in
  let qs = make_queries ~seed ~keys ~total:queries ~bound in
  let query_one rng q = (B1.query b ~rng q).B1.messages in
  let traced_query rng tr q = (B1.query ~trace:tr b ~rng q).B1.messages in
  drive_row ~structure:"blocked1d" ~pool ~jobs ~net ~n ~queries ~seed ~query_one ~traced_query ~qs

(* Telemetry transparency: the observatory tap must not change a single
   measured message — same seeded phase, tap attached vs detached, must
   agree on total_messages exactly. *)
let assert_tap_transparent ~seed =
  let run ~tapped =
    let n = 2000 in
    let bound = 100 * n in
    let keys = W.distinct_ints ~seed ~n ~bound in
    let net = Network.create ~hosts:n in
    let h = HInt.build ~net ~seed keys in
    let qs = make_queries ~seed ~keys ~total:400 ~bound in
    let obs = Obs.create () in
    if tapped then Obs.attach obs net;
    let coins = Prng.create (seed + 0xe19) in
    Array.iteri (fun i q -> ignore (HInt.query h ~rng:(Prng.stream coins i) q)) qs;
    Obs.detach net;
    Network.total_messages net
  in
  let plain = run ~tapped:false in
  let tapped = run ~tapped:true in
  if plain <> tapped then
    failwith
      (Printf.sprintf "E19: observatory tap changed total_messages (%d untapped vs %d tapped)"
         plain tapped);
  Printf.printf "observatory transparency: OK (%d messages either way)\n" plain

let json_of_rows rows =
  let row_json r =
    Printf.sprintf
      "    {\"structure\": \"%s\", \"n\": %d, \"hosts\": %d, \"queries\": %d, \"traced\": %d,\n\
      \     \"query_messages\": %s,\n\
      \     \"top_k\": %s,\n\
      \     \"congestion\": %s,\n\
      \     \"levels\": %s, \"unattributed\": %d,\n\
      \     \"timing\": {\"jobs\": %d, \"wall_s\": %.6f}}"
      r.structure r.n r.hosts r.queries r.traced r.sketch_json r.top_json
      (Obs.congestion_to_json r.congestion)
      r.levels_json r.unattributed r.jobs r.wall_s
  in
  Printf.sprintf
    "{\n  \"experiment\": \"hotspot\",\n  \"workload\": \"mixed uniform + Zipf(1.1) query \
     traffic; constant-memory telemetry (quantile sketch shards, space-saving top-%d, \
     congestion percentiles + Gini, traced per-level attribution)\",\n  \"rows\": [\n%s\n  ]\n}\n"
    top_k
    (String.concat ",\n" (List.map row_json rows))

let run (cfg : C.config) =
  C.section "Hotspots and congestion observatory (E19)";
  let seed = List.hd cfg.C.seeds in
  assert_tap_transparent ~seed;
  let sizes = if cfg.C.quick then [ 20_000 ] else [ 100_000; 1_000_000 ] in
  let queries = if cfg.C.quick then 2_000 else 20_000 in
  let rows =
    C.with_pool cfg (fun pool ->
        let jobs = match pool with None -> 1 | Some p -> DPool.jobs p in
        List.concat_map
          (fun n ->
            [
              hierarchy_row ~pool ~jobs ~seed ~queries n;
              blocked_row ~pool ~jobs ~seed ~queries n;
            ])
          sizes)
  in
  let tbl =
    Skipweb_util.Tables.create
      ~title:
        (Printf.sprintf "hotspots under mixed uniform + Zipf(1.1) traffic (%d job(s))" cfg.C.jobs)
      ~columns:
        [
          "structure"; "n"; "queries"; "msgs p50"; "msgs p99"; "traffic p50"; "traffic p99";
          "traffic max"; "gini"; "hottest host";
        ]
  in
  List.iter
    (fun r ->
      let hottest =
        match Obs.congestion_to_json r.congestion with
        | _ -> (
            (* first entry of the top-k json is the hottest host *)
            match String.index_opt r.top_json ':' with
            | Some i ->
                let rest = String.sub r.top_json (i + 1) (String.length r.top_json - i - 1) in
                String.trim (String.sub rest 0 (String.index rest ','))
            | None -> "-")
      in
      let sk = r.sketch_json in
      let field name =
        (* pull "name": v out of the row's sketch json for the table *)
        match String.index_opt sk ':' with
        | _ -> (
            let tag = Printf.sprintf "\"%s\": " name in
            match
              let rec find i =
                if i + String.length tag > String.length sk then None
                else if String.sub sk i (String.length tag) = tag then Some (i + String.length tag)
                else find (i + 1)
              in
              find 0
            with
            | Some i ->
                let j = ref i in
                while
                  !j < String.length sk && (match sk.[!j] with ',' | '}' -> false | _ -> true)
                do
                  incr j
                done;
                String.sub sk i (!j - i)
            | None -> "-")
      in
      Skipweb_util.Tables.add_row tbl
        [
          r.structure;
          string_of_int r.n;
          string_of_int r.queries;
          field "p50";
          field "p99";
          Printf.sprintf "%.0f" r.congestion.Obs.p50;
          Printf.sprintf "%.0f" r.congestion.Obs.p99;
          Printf.sprintf "%.0f" r.congestion.Obs.max;
          Printf.sprintf "%.4f" r.congestion.Obs.gini;
          hottest;
        ])
    rows;
  Skipweb_util.Tables.print tbl;
  C.write_json ~file:"BENCH_hotspot.json" (json_of_rows rows)
