(* E1–E7: Table 1 of the paper — the seven one-dimensional structures
   compared on memory M, congestion C(n), query cost Q(n) and update cost
   U(n), all measured in the paper's message-cost model.

   The paper's Table 1 is asymptotic; we regenerate it empirically: for
   each method and each n we build the structure over its own simulated
   network, drive the same query/update mix, and report the measured
   series next to the fitted growth shape and the paper's claim. *)

module Network = Skipweb_net.Network
module SG = Skipweb_skipgraph.Skip_graph
module NoN = Skipweb_skipgraph.Non_skip_graph
module FT = Skipweb_skipgraph.Family_tree
module DS = Skipweb_skipgraph.Det_skipnet
module BSG = Skipweb_skipgraph.Bucket_skip_graph
module B1 = Skipweb_core.Blocked1d
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module C = Bench_common

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

type measurement = { q : float; u : float; m : float; c : float }

type method_spec = {
  label : string;
  paper_q : string;
  paper_u : string;
  paper_m : string;
  paper_c : string;
  run : seed:int -> n:int -> queries:int array -> updates:int array -> measurement;
}

let measure_net net ~items = (float_of_int (Network.max_memory net), Network.congestion net ~items)

let spec_skip_graph =
  {
    label = "skip graph / SkipNet";
    paper_q = "~O(log n)";
    paper_u = "~O(log n)";
    paper_m = "O(log n)";
    paper_c = "O(log n)";
    run =
      (fun ~seed ~n ~queries ~updates ->
        let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
        let net = Network.create ~hosts:(n + Array.length updates + 4) in
        let g = SG.create ~net ~seed ~keys in
        let rng = Prng.create (seed + 1) in
        let q = C.mean_int_list (Array.to_list (Array.map (fun x -> (SG.search_from_random g ~rng x).SG.messages) queries)) in
        let m, c = measure_net net ~items:n in
        let u =
          C.mean_int_list
            (Array.to_list (Array.map (fun k ->
                    let ci = SG.insert g k in
                    ci + SG.delete g k) updates))
          /. 2.0
        in
        { q; u; m; c });
  }

let spec_non =
  {
    label = "NoN skip graph";
    paper_q = "~O(log n/loglog n)";
    paper_u = "~O(log^2 n)";
    paper_m = "O(log^2 n)";
    paper_c = "O(log^2 n)";
    run =
      (fun ~seed ~n ~queries ~updates ->
        let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
        let net = Network.create ~hosts:(n + Array.length updates + 4) in
        let g = NoN.create ~net ~seed ~keys in
        let rng = Prng.create (seed + 1) in
        let q = C.mean_int_list (Array.to_list (Array.map (fun x -> (NoN.search_from_random g ~rng x).NoN.messages) queries)) in
        let m, c = measure_net net ~items:n in
        let u =
          C.mean_int_list
            (Array.to_list (Array.map (fun k ->
                    let ci = NoN.insert g k in
                    ci + NoN.delete g k) updates))
          /. 2.0
        in
        { q; u; m; c });
  }

let spec_family =
  {
    label = "family tree (comparator)";
    paper_q = "~O(log n)";
    paper_u = "~O(log n)";
    paper_m = "O(1)";
    paper_c = "O(log n)";
    run =
      (fun ~seed ~n ~queries ~updates ->
        let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
        let net = Network.create ~hosts:(n + Array.length updates + 4) in
        let g = FT.create ~net ~seed ~keys in
        let rng = Prng.create (seed + 1) in
        let q =
          C.mean_int_list
            (Array.to_list
               (Array.map (fun x -> (FT.search g ~from:(Prng.int rng n) x).FT.messages) queries))
        in
        let m, c = measure_net net ~items:n in
        let u =
          C.mean_int_list (Array.to_list (Array.map (fun k ->
                    let ci = FT.insert g k in
                    ci + FT.delete g k) updates))
          /. 2.0
        in
        { q; u; m; c });
  }

let spec_det =
  {
    label = "deterministic SkipNet";
    paper_q = "O(log n)";
    paper_u = "O(log^2 n)";
    paper_m = "O(log n)";
    paper_c = "O(log n)";
    run =
      (fun ~seed ~n ~queries ~updates ->
        let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
        let net = Network.create ~hosts:((2 * n) + Array.length updates + 8) in
        let g = DS.create ~net ~keys in
        let rng = Prng.create (seed + 1) in
        let q =
          C.mean_int_list
            (Array.to_list
               (Array.map (fun x -> (DS.search g ~from:(1 + Prng.int rng n) x).DS.messages) queries))
        in
        let m, c = measure_net net ~items:n in
        let u =
          C.mean_int_list
            (Array.to_list (Array.map (fun k ->
                    let ci = DS.insert g k in
                    ci + DS.delete g k) updates))
          /. 2.0
        in
        { q; u; m; c });
  }

let spec_bucket_sg =
  {
    label = "bucket skip graph (H=n/log n)";
    paper_q = "~O(log H)";
    paper_u = "~O(log H)";
    paper_m = "O(n/H + log H)";
    paper_c = "O(n/H + log H)";
    run =
      (fun ~seed ~n ~queries ~updates ->
        let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
        let buckets = max 2 (n / log2i n) in
        let net = Network.create ~hosts:(2 * buckets) in
        let g = BSG.create ~net ~seed ~keys ~buckets in
        let rng = Prng.create (seed + 1) in
        let q = C.mean_int_list (Array.to_list (Array.map (fun x -> (BSG.search g ~rng x).BSG.messages) queries)) in
        let m, c = measure_net net ~items:n in
        let u =
          C.mean_int_list
            (Array.to_list (Array.map (fun k ->
                    let ci = BSG.insert g ~rng k in
                    ci + BSG.delete g ~rng k) updates))
          /. 2.0
        in
        { q; u; m; c });
  }

let spec_skipweb =
  {
    label = "skip-web (blocked, M=4log n)";
    paper_q = "~O(log n/loglog n)";
    paper_u = "~O(log n/loglog n)";
    paper_m = "O(log n)";
    paper_c = "O(log n)";
    run =
      (fun ~seed ~n ~queries ~updates ->
        let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
        let net = Network.create ~hosts:n in
        let g = B1.build ~net ~seed ~m:(4 * log2i n) keys in
        let rng = Prng.create (seed + 1) in
        let q = C.mean_int_list (Array.to_list (Array.map (fun x -> (B1.query g ~rng x).B1.messages) queries)) in
        let m, c = measure_net net ~items:n in
        let u =
          C.mean_int_list (Array.to_list (Array.map (fun k ->
                    let ci = B1.insert g k in
                    ci + B1.delete g k) updates))
          /. 2.0
        in
        { q; u; m; c });
  }

let spec_bucket_skipweb =
  {
    label = "bucket skip-web (H=n/log n)";
    paper_q = "~O(log_M H)";
    paper_u = "~O(log_M H)";
    paper_m = "O(n/H + log H)";
    paper_c = "O(n/H + log H)";
    run =
      (fun ~seed ~n ~queries ~updates ->
        let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
        let hosts = max 2 (n / log2i n) in
        let net = Network.create ~hosts in
        let m = (n / hosts) + (4 * log2i hosts) in
        let g = B1.build ~net ~seed ~m keys in
        let rng = Prng.create (seed + 1) in
        let q = C.mean_int_list (Array.to_list (Array.map (fun x -> (B1.query g ~rng x).B1.messages) queries)) in
        let mm, c = measure_net net ~items:n in
        let u =
          C.mean_int_list (Array.to_list (Array.map (fun k ->
                    let ci = B1.insert g k in
                    ci + B1.delete g k) updates))
          /. 2.0
        in
        { q; u; m = mm; c });
  }

let all_specs =
  [ spec_skip_graph; spec_non; spec_family; spec_det; spec_bucket_sg; spec_skipweb; spec_bucket_skipweb ]

let run (cfg : C.config) =
  C.section "Table 1: one-dimensional structures (E1-E7)";
  Printf.printf
    "Cost model: messages counted per host boundary crossing; M = max stored\n\
     units on any host; C = M + n/H (static congestion, §1.1).\n";
  C.with_pool cfg @@ fun pool ->
  let results =
    List.map
      (fun spec ->
        let per_n =
          List.map
            (fun n ->
              (* Each seed replica builds its own network and structure,
                 so the replicas are independent end to end — including
                 their updates — and fan out over the --jobs pool as
                 whole units. [map_seeds] preserves seed order, so the
                 means below fold identically for any jobs count. *)
              let samples =
                C.map_seeds ?pool cfg.C.seeds
                  (fun seed ->
                    let queries = W.query_mix ~seed:(seed + 17) ~keys:(W.distinct_ints ~seed ~n ~bound:(100 * n)) ~n:cfg.C.queries ~bound:(100 * n) in
                    let updates =
                      C.fresh_keys ~seed ~count:cfg.C.updates ~bound:(100 * n)
                        ~existing:(W.distinct_ints ~seed ~n ~bound:(100 * n))
                    in
                    spec.run ~seed ~n ~queries ~updates)
              in
              let mean f = Skipweb_util.Stats.mean (List.map f samples) in
              {
                q = mean (fun s -> s.q);
                u = mean (fun s -> s.u);
                m = mean (fun s -> s.m);
                c = mean (fun s -> s.c);
              })
            cfg.C.sizes
        in
        (spec, per_n))
      all_specs
  in
  let table pick paper title =
    C.print_shape_table ~title ~sizes:cfg.C.sizes
      (List.map (fun (spec, per_n) -> (spec.label, List.map pick per_n, paper spec)) results)
  in
  table (fun r -> r.q) (fun s -> s.paper_q) "Table 1 / Q(n): expected query messages";
  table (fun r -> r.u) (fun s -> s.paper_u) "Table 1 / U(n): expected update messages";
  table (fun r -> r.m) (fun s -> s.paper_m) "Table 1 / M: max per-host memory (units)";
  table (fun r -> r.c) (fun s -> s.paper_c) "Table 1 / C(n): static congestion (M + n/H)"
