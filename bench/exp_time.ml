(* Wall-clock micro-benchmarks via bechamel: one Test.make per reproduced
   artifact, timing the operation that artifact's experiment is built on.
   The message-count experiments above are the paper-facing results; these
   timings show the simulator itself is cheap enough to trust at the sizes
   we sweep. *)

open Bechamel
open Toolkit
module Network = Skipweb_net.Network
module SG = Skipweb_skipgraph.Skip_graph
module NoN = Skipweb_skipgraph.Non_skip_graph
module DS = Skipweb_skipgraph.Det_skipnet
module FT = Skipweb_skipgraph.Family_tree
module BSG = Skipweb_skipgraph.Bucket_skip_graph
module B1 = Skipweb_core.Blocked1d
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module Cq = Skipweb_quadtree.Cqtree
module Ct = Skipweb_trie.Ctrie
module TM = Skipweb_trapmap.Trapmap
module SL = Skipweb_skiplist.Skip_list
module L = Skipweb_linklist.Linklist
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng

module HP2 = H.Make (I.Points2d)

let tests ~n () =
  let keys = W.distinct_ints ~seed:1 ~n ~bound:(100 * n) in
  let pts = W.uniform_points ~seed:2 ~n ~dim:2 in
  let strs = W.random_strings ~seed:3 ~n ~alphabet:4 ~len:10 in
  let segs = W.disjoint_segments ~seed:4 ~n:128 in
  (* Pre-built structures for query benches. *)
  let sg = SG.create ~net:(Network.create ~hosts:(n + 4)) ~seed:5 ~keys in
  let non = NoN.create ~net:(Network.create ~hosts:(n + 4)) ~seed:5 ~keys in
  let ds = DS.create ~net:(Network.create ~hosts:((2 * n) + 8)) ~keys in
  let ft = FT.create ~net:(Network.create ~hosts:(n + 4)) ~seed:5 ~keys in
  let bsg = BSG.create ~net:(Network.create ~hosts:128) ~seed:5 ~keys ~buckets:64 in
  let b1 = B1.build ~net:(Network.create ~hosts:n) ~seed:5 ~m:40 keys in
  let hp2 = HP2.build ~net:(Network.create ~hosts:n) ~seed:5 pts in
  let trie = Ct.build strs in
  let tmap = TM.build segs in
  let cq = Cq.build ~dim:2 pts in
  let rng = Prng.create 6 in
  let sl = SL.Int.create ~seed:7 () in
  Array.iter (fun k -> SL.Int.insert sl k k) keys;
  [
    (* Table 1 rows: one query bench per structure. *)
    Test.make ~name:"table1/skip-graph-search"
      (Staged.stage (fun () -> SG.search_from_random sg ~rng (Prng.int rng (100 * n))));
    Test.make ~name:"table1/non-skip-graph-search"
      (Staged.stage (fun () -> NoN.search_from_random non ~rng (Prng.int rng (100 * n))));
    Test.make ~name:"table1/family-tree-search"
      (Staged.stage (fun () -> FT.search ft ~from:(Prng.int rng n) (Prng.int rng (100 * n))));
    Test.make ~name:"table1/det-skipnet-search"
      (Staged.stage (fun () -> DS.search ds ~from:1 (Prng.int rng (100 * n))));
    Test.make ~name:"table1/bucket-skip-graph-search"
      (Staged.stage (fun () -> BSG.search bsg ~rng (Prng.int rng (100 * n))));
    Test.make ~name:"table1/skipweb-blocked-query"
      (Staged.stage (fun () -> B1.query b1 ~rng (Prng.int rng (100 * n))));
    (* Theorem 2 / multi-dimensional queries. *)
    Test.make ~name:"theorem2/quadtree-web-query"
      (Staged.stage (fun () ->
           HP2.query hp2 ~rng (Skipweb_geom.Point.create [ Prng.float rng 1.0; Prng.float rng 1.0 ])));
    (* Lemma substrates. *)
    Test.make ~name:"lemma1/list-conflicts"
      (Staged.stage (fun () ->
           L.conflict_count ~parent:keys ~child:keys (L.locate keys (Prng.int rng (100 * n)))));
    Test.make ~name:"lemma3/quadtree-locate"
      (Staged.stage (fun () ->
           Cq.locate cq (Skipweb_geom.Point.create [ Prng.float rng 1.0; Prng.float rng 1.0 ])));
    Test.make ~name:"lemma4/trie-locate"
      (Staged.stage (fun () -> Ct.locate trie strs.(Prng.int rng (Array.length strs))));
    Test.make ~name:"lemma5/trapmap-locate"
      (Staged.stage (fun () -> TM.locate_opt tmap (Prng.float rng 1.0, Prng.float rng 1.0)));
    (* Figure 1. *)
    Test.make ~name:"figure1/skip-list-search"
      (Staged.stage (fun () -> SL.Int.search_cost sl (Prng.int rng (100 * n))));
    (* Figure 2 / construction cost. *)
    Test.make ~name:"figure2/skipweb-build-256"
      (Staged.stage (fun () ->
           let ks = W.distinct_ints ~seed:9 ~n:256 ~bound:25_600 in
           B1.build ~net:(Network.create ~hosts:256) ~seed:9 ~m:32 ks));
  ]

let run (cfg : Bench_common.config) =
  Bench_common.section "Wall-clock micro-benchmarks (bechamel)";
  (* --quick shrinks the substrate size and the per-bench quota so the
     wall-clock suite is CI-friendly like every other experiment. *)
  let n = if cfg.Bench_common.quick then 256 else 1024 in
  let quota = Time.second (if cfg.Bench_common.quick then 0.1 else 0.3) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota () in
  let grouped = Test.make_grouped ~name:"skipweb" (tests ~n ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let tbl = Skipweb_util.Tables.create ~title:"time per operation" ~columns:[ "benchmark"; "ns/op" ] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (v :: _) -> Printf.sprintf "%.0f" v
        | Some [] | None -> "n/a"
      in
      Skipweb_util.Tables.add_row tbl [ name; est ])
    (List.sort compare rows);
  Skipweb_util.Tables.print tbl
