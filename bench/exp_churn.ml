(* E17: availability and self-repair under sustained host churn.

   The paper assumes a static host set; the failure model (Network.kill /
   revive, replication factor r, repair passes) is this repository's
   extension, motivated by the rainbow-skip-graph line of work on
   fault-tolerant overlays. This experiment measures what that machinery
   buys: drive kill/rejoin epochs against both skip-web structures under
   mixed query traffic (half uniform probes, half Zipf(1.1) over stored
   keys) and record, per replication factor r:

     - query success rate while hosts are down (a failed walk — every
       replica of a needed range dead — raises Host_dead and is counted,
       not crashed on);
     - per-epoch availability percentiles;
     - the repair bill: copies re-homed, steal messages, copies lost
       (with f <= r - 1 failures per epoch, lost must be 0 and the
       success rate must be exactly 1.0 — replica copies of a range
       always sit on distinct hosts, so some copy survives every epoch);
     - stranded memory at its peak (dead hosts' charges before repair).

   Each epoch: kill f = max 1 (r - 1) live hosts, run a mid-failure query
   batch, run one repair pass, then revive the killed hosts (a rejoin —
   they come back empty and re-enter placement on the next repair or
   rebuild). r = 1 exercises graceful degradation: queries whose only
   copy died fail and are recorded, and the run still completes.

   The query batches fan out over the --jobs pool. Query i draws its
   coins from [Prng.stream] i (a pure function of the seed and i), the
   kill sequence and repair passes are sequential, and per-query outcomes
   land in an index-slotted array — so every deterministic JSON field is
   bit-identical for any jobs count; wall clocks live in the "timing"
   member, stripped by CI like exp_scale's.

   Results go to BENCH_churn.json. CI's smoke leg asserts the r = 2
   contract (success rate 1.0, zero lost) — and so does this experiment
   itself, below. *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module B1 = Skipweb_core.Blocked1d
module I = Skipweb_core.Instances
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Stats = Skipweb_util.Stats
module Series = Skipweb_util.Series
module DPool = Skipweb_util.Pool
module C = Bench_common

module HInt = H.Make (I.Ints)

type row = {
  structure : string;
  n : int;
  hosts : int;
  r : int;
  epochs : int;
  fails_per_epoch : int;
  queries_per_epoch : int;
  failed_queries : int;
  success_rate : float;
  avail_min : float;
  avail_p50 : float;
  avail_p90 : float;
  repair_scanned : int;
  repair_repaired : int;
  repair_messages : int;
  repair_lost : int;
  mean_query_msgs : float;  (* over successful queries *)
  stranded_peak : int;
  timeline : string;  (* per-epoch Series, as JSON *)
  wall_s : float;
  jobs : int;
}

(* Mixed query points: even slots uniform over the key domain, odd slots
   Zipf(1.1)-popular stored keys — the skew that makes a dead popular
   host hurt. [total] must be even. *)
let make_queries ~seed ~keys ~total ~bound =
  let half = total / 2 in
  let z = W.zipf_queries ~seed:(seed + 0x21f) ~keys ~n:half ~s:1.1 in
  let rng = Prng.create (seed + 0x0b5) in
  let u = Array.init half (fun _ -> Prng.int rng bound) in
  Array.init total (fun i -> if i mod 2 = 0 then u.(i / 2) else z.(i / 2))

(* Kill [fails] distinct live hosts, drawn from [krng]; never the last
   live host. Returns the victims (for the rejoin). *)
let kill_some net krng fails =
  let hosts = Network.host_count net in
  let killed = ref [] in
  while List.length !killed < fails do
    let h = Prng.int krng hosts in
    if Network.alive net h && Network.live_hosts net > 1 then begin
      Network.kill net h;
      killed := h :: !killed
    end
  done;
  !killed

(* The epoch loop, shared by both structures. [query_one rng q] runs one
   query and returns its message count (raising Network.Host_dead when
   every replica of a needed range is down); [repair_fn ()] runs one
   repair pass and returns (scanned, repaired, messages, lost). *)
let drive ~pool ~jobs ~net ~query_one ~repair_fn ~qs ~coins ~epochs ~qper ~fails ~kseed =
  let krng = Prng.create kseed in
  let msgs_of = Array.make (epochs * qper) 0 in
  let sc = ref 0 and rp = ref 0 and ms = ref 0 and lo_ = ref 0 in
  let stranded_peak = ref 0 in
  let rates = ref [] in
  (* Per-epoch monitoring timeline: one Series per signal, window sized
     to the run so the full history is retained here (a long-lived
     deployment would pick a fixed window and let old epochs roll off —
     that is the point of the ring). *)
  let avail_s = Series.create ~window:epochs in
  let repair_s = Series.create ~window:epochs in
  let stranded_s = Series.create ~window:epochs in
  let t0 = C.now () in
  for e = 0 to epochs - 1 do
    let killed = kill_some net krng fails in
    let stranded_now = Network.stranded_memory net in
    stranded_peak := max !stranded_peak stranded_now;
    Series.push stranded_s (float_of_int stranded_now);
    let lo = e * qper in
    let chunk c =
      let clo = lo + (c * qper / jobs) and chi = lo + ((c + 1) * qper / jobs) in
      for i = clo to chi - 1 do
        msgs_of.(i) <-
          (try query_one (Prng.stream coins i) qs.(i) with Network.Host_dead _ -> -1)
      done
    in
    (match pool with None -> chunk 0 | Some p -> DPool.parallel_for p ~lo:0 ~hi:jobs chunk);
    let ok = ref 0 in
    for i = lo to lo + qper - 1 do
      if msgs_of.(i) >= 0 then incr ok
    done;
    let rate = float_of_int !ok /. float_of_int qper in
    rates := rate :: !rates;
    Series.push avail_s rate;
    let s, r, m, l = repair_fn () in
    Series.push repair_s (float_of_int m);
    sc := !sc + s;
    rp := !rp + r;
    ms := !ms + m;
    lo_ := !lo_ + l;
    List.iter (Network.revive net) killed
  done;
  let wall_s = C.now () -. t0 in
  let timeline =
    Printf.sprintf "{\"availability\": %s, \"repair_messages\": %s, \"stranded\": %s}"
      (Series.to_json avail_s) (Series.to_json repair_s) (Series.to_json stranded_s)
  in
  let failed = Array.fold_left (fun acc m -> if m < 0 then acc + 1 else acc) 0 msgs_of in
  let succ_msgs =
    Array.fold_left (fun acc m -> if m >= 0 then acc +. float_of_int m else acc) 0.0 msgs_of
  in
  let succ = (epochs * qper) - failed in
  ( msgs_of,
    List.rev !rates,
    !sc,
    !rp,
    !ms,
    !lo_,
    !stranded_peak,
    failed,
    succ,
    succ_msgs,
    timeline,
    wall_s )

let finish_row ~structure ~n ~hosts ~r ~epochs ~qper ~fails ~jobs
    (_, rates, sc, rp, ms, lo_, stranded_peak, failed, succ, succ_msgs, timeline, wall_s) =
  let rstats = Stats.summarize rates in
  {
    structure;
    n;
    hosts;
    r;
    epochs;
    fails_per_epoch = fails;
    queries_per_epoch = qper;
    failed_queries = failed;
    success_rate = float_of_int succ /. float_of_int (epochs * qper);
    avail_min = List.fold_left min 1.0 rates;
    avail_p50 = rstats.Stats.p50;
    avail_p90 = rstats.Stats.p90;
    repair_scanned = sc;
    repair_repaired = rp;
    repair_messages = ms;
    repair_lost = lo_;
    mean_query_msgs = (if succ = 0 then 0.0 else succ_msgs /. float_of_int succ);
    stranded_peak;
    timeline;
    wall_s;
    jobs;
  }

let hierarchy_row ~pool ~jobs ~quick ~seed r =
  let n = if quick then 1500 else 4000 in
  let hosts = if quick then 48 else 96 in
  let epochs = if quick then 6 else 12 in
  let qper = if quick then 240 else 500 in
  let fails = max 1 (r - 1) in
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let net = Network.create ~hosts in
  let h = HInt.build ~net ~seed ~r ?pool keys in
  let qs = make_queries ~seed ~keys ~total:(epochs * qper) ~bound in
  let coins = Prng.create (seed + 0xc01) in
  let query_one rng q =
    let _, stats = HInt.query h ~rng q in
    stats.HInt.messages
  in
  let repair_fn () =
    let s : HInt.repair_stats = HInt.repair h in
    (s.HInt.scanned, s.HInt.repaired, s.HInt.messages, s.HInt.lost)
  in
  drive ~pool ~jobs ~net ~query_one ~repair_fn ~qs ~coins ~epochs ~qper ~fails
    ~kseed:(seed + 0x5e11 + r)
  |> finish_row ~structure:"hierarchy" ~n ~hosts ~r ~epochs ~qper ~fails ~jobs

let blocked_row ~pool ~jobs ~quick ~seed r =
  let n = if quick then 1200 else 3000 in
  let hosts = if quick then 48 else 96 in
  let epochs = if quick then 6 else 12 in
  let qper = if quick then 240 else 500 in
  let fails = max 1 (r - 1) in
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let net = Network.create ~hosts in
  let b = B1.build ~net ~seed ~m:16 ~r ?pool keys in
  let qs = make_queries ~seed ~keys ~total:(epochs * qper) ~bound in
  let coins = Prng.create (seed + 0xc02) in
  let query_one rng q = (B1.query b ~rng q).B1.messages in
  let repair_fn () =
    let s : B1.repair_stats = B1.repair b in
    (s.B1.scanned, s.B1.repaired, s.B1.messages, s.B1.lost)
  in
  drive ~pool ~jobs ~net ~query_one ~repair_fn ~qs ~coins ~epochs ~qper ~fails
    ~kseed:(seed + 0x5e22 + r)
  |> finish_row ~structure:"blocked1d" ~n ~hosts ~r ~epochs ~qper ~fails ~jobs

let json_of_rows rows =
  let row_json r =
    Printf.sprintf
      "    {\"structure\": \"%s\", \"n\": %d, \"hosts\": %d, \"r\": %d, \"epochs\": %d, \
       \"fails_per_epoch\": %d, \"queries\": %d, \"failed\": %d, \"success_rate\": %.6f,\n\
      \     \"availability\": {\"min\": %.6f, \"p50\": %.6f, \"p90\": %.6f},\n\
      \     \"repair\": {\"scanned\": %d, \"repaired\": %d, \"messages\": %d, \"lost\": %d, \
       \"messages_per_epoch\": %.1f},\n\
      \     \"query_messages_mean\": %.2f, \"stranded_peak\": %d,\n\
      \     \"timeline\": %s,\n\
      \     \"timing\": {\"jobs\": %d, \"wall_s\": %.6f}}"
      r.structure r.n r.hosts r.r r.epochs r.fails_per_epoch
      (r.epochs * r.queries_per_epoch)
      r.failed_queries r.success_rate r.avail_min r.avail_p50 r.avail_p90 r.repair_scanned
      r.repair_repaired r.repair_messages r.repair_lost
      (float_of_int r.repair_messages /. float_of_int r.epochs)
      r.mean_query_msgs r.stranded_peak r.timeline r.jobs r.wall_s
  in
  Printf.sprintf
    "{\n  \"experiment\": \"churn\",\n  \"workload\": \"kill/rejoin epochs (f = max 1 (r-1) \
     failures each) over mixed uniform + Zipf(1.1) query traffic, one repair pass per \
     epoch\",\n  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map row_json rows))

let run (cfg : C.config) =
  C.section "Host churn, replication and self-repair (E17)";
  let seed = List.hd cfg.C.seeds in
  let rs = if cfg.C.quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let rows =
    C.with_pool cfg (fun pool ->
        let jobs = match pool with None -> 1 | Some p -> DPool.jobs p in
        List.concat_map
          (fun r ->
            [
              hierarchy_row ~pool ~jobs ~quick:cfg.C.quick ~seed r;
              blocked_row ~pool ~jobs ~quick:cfg.C.quick ~seed r;
            ])
          rs)
  in
  let tbl =
    Skipweb_util.Tables.create
      ~title:
        (Printf.sprintf "availability under churn: f = max 1 (r-1) failures/epoch (%d job(s))"
           cfg.C.jobs)
      ~columns:
        [
          "structure"; "r"; "f"; "epochs"; "queries"; "failed"; "success"; "avail min";
          "repair msgs"; "lost"; "mean q msgs"; "stranded pk";
        ]
  in
  List.iter
    (fun r ->
      Skipweb_util.Tables.add_row tbl
        [
          r.structure;
          string_of_int r.r;
          string_of_int r.fails_per_epoch;
          string_of_int r.epochs;
          string_of_int (r.epochs * r.queries_per_epoch);
          string_of_int r.failed_queries;
          Printf.sprintf "%.4f" r.success_rate;
          Printf.sprintf "%.4f" r.avail_min;
          string_of_int r.repair_messages;
          string_of_int r.repair_lost;
          Printf.sprintf "%.2f" r.mean_query_msgs;
          string_of_int r.stranded_peak;
        ])
    rows;
  Skipweb_util.Tables.print tbl;
  (* The replication contract, asserted here exactly as CI's smoke leg
     asserts it from the JSON: with r >= 2 and at most r - 1 failures per
     epoch, every query must have found a live replica and no copy may
     have been lost. *)
  List.iter
    (fun r ->
      if r.r >= 2 && r.fails_per_epoch <= r.r - 1 then begin
        if r.success_rate < 1.0 then
          failwith
            (Printf.sprintf "E17: %s r=%d lost %d queries under %d failures/epoch" r.structure
               r.r r.failed_queries r.fails_per_epoch);
        if r.repair_lost > 0 then
          failwith
            (Printf.sprintf "E17: %s r=%d lost %d copies under %d failures/epoch" r.structure
               r.r r.repair_lost r.fails_per_epoch)
      end)
    rows;
  Printf.printf "replication contract (r >= 2, f <= r-1 => availability 1.0, nothing lost): OK\n";
  C.write_json ~file:"BENCH_churn.json" (json_of_rows rows)
