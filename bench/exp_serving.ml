(* E20: serving at scale — does the read-path level cache flatten the
   hotspots E19 measured?

   E19 established that skewed traffic concentrates on the hosts owning
   the coarse upper levels of both skip-web structures. This experiment
   attacks that: it drives an {e open-loop} skewed workload (Poisson
   arrivals, 90/10 read/write mix for the hierarchy, Zipf(1.1) + uniform
   query blend, fully replayable from its seed — [Open_loop.plan]) against
   builds with the level cache configured at c = 4 coarse levels and
   k ∈ {1, 2, 4} replicas, at n up to 10^6, and reports per row:

     - the per-query message distribution (quantile sketch) — the cache
       must not move it: per-query cost stays O(log n);
     - the congestion Gini and p99/max of per-host traffic, and the share
       of traffic served by the 16 busiest hosts — the flattening;
     - the network's total message count, asserted equal across k up to a
       tiny relative epsilon (caching only relocates reads; the rare saved
       hop is a placement collision, ~1/H per visit).

   Two hard checks are built in rather than eyeballed:

     - k = 1 must be {e byte-identical} to an uncached build: the row is
       driven twice, once with the cache configured at k = 1 and once with
       no cache arguments at all, and the total message counts must match
       exactly ("uncached_match" in the JSON — CI greps for it);
     - the Gini must strictly decrease k = 1 → 2 → 4 for the hierarchy
       and be non-increasing with a strict overall drop for the blocked
       structure (whose group cache only spreads basic-block groups).

   The hierarchy replays the identical event plan against a fresh build
   per k (the cache is a build-time parameter there); the blocked
   structure is built {e once} per n and re-pointed with [set_cache] —
   the sweep this call exists for. Replay is sequential for the hierarchy
   (writes mutate the structure; event i's query coins come from
   [Prng.stream] i) and batched for the read-only blocked plan, so every
   deterministic JSON field is identical for any --jobs count; wall
   clocks live in the "timing" member CI strips. Results go to
   BENCH_serving.json. *)

module Network = Skipweb_net.Network
module Obs = Skipweb_net.Observatory
module H = Skipweb_core.Hierarchy
module B1 = Skipweb_core.Blocked1d
module I = Skipweb_core.Instances
module W = Skipweb_workload.Workload
module OL = Skipweb_workload.Open_loop
module Prng = Skipweb_util.Prng
module Sketch = Skipweb_util.Sketch
module Stats = Skipweb_util.Stats
module C = Bench_common

module HInt = H.Make (I.Ints)

let cache_levels = 4
let cache_ks = [ 1; 2; 4 ]
let top_m = 16
let sketch_alpha = 0.01
let sketch_cap = 256
let msg_epsilon = 0.002

type row = {
  structure : string;
  n : int;
  hosts : int;
  c : int;
  k : int;
  ops : int;
  queries : int;
  inserts : int;
  removes : int;
  total_msgs : int;
  mean_read_msgs : float;
  sketch_json : string;
  congestion : Obs.congestion;
  top_share : float;
  uncached_match : bool option;  (* Some true on the k = 1 row *)
  wall_s : float;
  jobs : int;
}

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

(* ------- hierarchy: open-loop mixed churn, fresh build per k ------- *)

(* Replay the plan sequentially. Query i's origin coins are a pure
   function of (seed, i) — identical whichever build consumes them. *)
let replay_hierarchy h ~seed ~sketch events =
  let coins = Prng.create (seed + 0x5e1) in
  Array.iteri
    (fun i e ->
      match e.OL.op with
      | OL.Query q ->
          let _, st = HInt.query h ~rng:(Prng.stream coins i) q in
          Sketch.observe_int sketch st.HInt.messages
      | OL.Insert key -> ignore (HInt.insert h key : int)
      | OL.Remove key -> ignore (HInt.remove h key : int))
    events

let hierarchy_rows ~pool ~jobs ~seed ~ops n =
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let spec =
    {
      OL.seed = seed + 0xe20;
      ops;
      rate = 1000.0;
      read_fraction = 0.9;
      zipf_share = 0.5;
      zipf_s = 1.1;
      bound;
    }
  in
  let events = OL.plan spec ~keys in
  let counts = OL.counts events in
  let run ~cache =
    let net = Network.create ~hosts:n in
    let h =
      match cache with
      | None -> HInt.build ~net ~seed ?pool keys
      | Some k -> HInt.build ~net ~seed ~cache_levels ~cache_replicas:k ?pool keys
    in
    Network.reset_traffic net;
    let sketch = Sketch.create ~alpha:sketch_alpha ~exact_cap:sketch_cap () in
    let _, wall_s = C.timed (fun () -> replay_hierarchy h ~seed ~sketch events) in
    (net, sketch, wall_s)
  in
  let net0, _, _ = run ~cache:None in
  let base_total = Network.total_messages net0 in
  List.map
    (fun k ->
      let net, sketch, wall_s = run ~cache:(Some k) in
      let total = Network.total_messages net in
      let uncached_match =
        if k <> 1 then None
        else if total <> base_total then
          failwith
            (Printf.sprintf "E20: hierarchy k=1 not byte-identical to uncached (%d vs %d msgs)"
               total base_total)
        else Some true
      in
      if abs_float (float_of_int (total - base_total)) > msg_epsilon *. float_of_int base_total
      then
        failwith
          (Printf.sprintf "E20: hierarchy k=%d moved total messages beyond epsilon (%d vs %d)" k
             total base_total);
      let s = Sketch.summary sketch in
      {
        structure = "hierarchy";
        n;
        hosts = Network.host_count net;
        c = cache_levels;
        k;
        ops;
        queries = counts.OL.queries;
        inserts = counts.OL.inserts;
        removes = counts.OL.removes;
        total_msgs = total;
        mean_read_msgs = s.Stats.mean;
        sketch_json = Sketch.to_json sketch;
        congestion = Obs.congestion_of net;
        top_share = Obs.top_share net ~m:top_m;
        uncached_match;
        wall_s;
        jobs;
      })
    cache_ks

(* ------- blocked 1-d: one build per n, set_cache sweep ------- *)

let blocked_rows ~pool ~jobs ~seed ~ops n =
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let spec =
    {
      OL.seed = seed + 0xe21;
      ops;
      rate = 1000.0;
      read_fraction = 1.0;  (* read-only: the structure stays fixed, so one
                               build serves the whole k sweep *)
      zipf_share = 0.5;
      zipf_s = 1.1;
      bound;
    }
  in
  let events = OL.plan spec ~keys in
  let qs =
    Array.map (function { OL.op = OL.Query q; _ } -> q | _ -> assert false) events
  in
  let net = Network.create ~hosts:n in
  let b = B1.build ~net ~seed ~m:(4 * log2i n) ?pool keys in
  let serve () =
    Network.reset_traffic net;
    let (results : B1.search_result array), wall_s =
      C.timed (fun () -> B1.query_batch ?pool b ~rng:(Prng.create (seed + 0x5e2)) qs)
    in
    let sketch = Sketch.create ~alpha:sketch_alpha ~exact_cap:sketch_cap () in
    Array.iter (fun (r : B1.search_result) -> Sketch.observe_int sketch r.B1.messages) results;
    (sketch, wall_s)
  in
  let _, _ = serve () in
  let base_total = Network.total_messages net in
  List.map
    (fun k ->
      B1.set_cache b ~levels:cache_levels ~k;
      let sketch, wall_s = serve () in
      let total = Network.total_messages net in
      let uncached_match =
        if k <> 1 then None
        else if total <> base_total then
          failwith
            (Printf.sprintf "E20: blocked k=1 not byte-identical to uncached (%d vs %d msgs)"
               total base_total)
        else Some true
      in
      if abs_float (float_of_int (total - base_total)) > msg_epsilon *. float_of_int base_total
      then
        failwith
          (Printf.sprintf "E20: blocked k=%d moved total messages beyond epsilon (%d vs %d)" k
             total base_total);
      let s = Sketch.summary sketch in
      {
        structure = "blocked1d";
        n;
        hosts = Network.host_count net;
        c = cache_levels;
        k;
        ops;
        queries = Array.length qs;
        inserts = 0;
        removes = 0;
        total_msgs = total;
        mean_read_msgs = s.Stats.mean;
        sketch_json = Sketch.to_json sketch;
        congestion = Obs.congestion_of net;
        top_share = Obs.top_share net ~m:top_m;
        uncached_match;
        wall_s;
        jobs;
      })
    cache_ks

(* The point of the experiment, asserted rather than eyeballed: more
   cache replicas must flatten the per-host traffic distribution. *)
let assert_flattening rows =
  let by_struct s = List.filter (fun r -> r.structure = s) rows in
  List.iter
    (fun s ->
      let sr = by_struct s in
      List.iter
        (fun r ->
          match List.find_opt (fun r' -> r'.n = r.n && r'.k = 2 * r.k) sr with
          | None -> ()
          | Some r' ->
              let g = r.congestion.Obs.gini and g' = r'.congestion.Obs.gini in
              let ok = if s = "hierarchy" then g' < g else g' <= g +. 1e-9 in
              if not ok then
                failwith
                  (Printf.sprintf "E20: %s n=%d gini did not flatten k=%d→%d (%.4f → %.4f)" s
                     r.n r.k r'.k g g'))
        sr;
      (* Overall strict drop k = 1 → 4 for both structures. *)
      List.iter
        (fun r1 ->
          if r1.k = 1 then
            match List.find_opt (fun r' -> r'.n = r1.n && r'.k = 4) sr with
            | None -> ()
            | Some r4 ->
                if not (r4.congestion.Obs.gini < r1.congestion.Obs.gini) then
                  failwith
                    (Printf.sprintf "E20: %s n=%d gini not strictly lower at k=4 (%.4f vs %.4f)"
                       s r1.n r4.congestion.Obs.gini r1.congestion.Obs.gini))
        sr)
    [ "hierarchy"; "blocked1d" ];
  Printf.printf "cache flattening: OK (gini decreases with k on every row pair)\n"

let json_of_rows rows =
  let row_json r =
    Printf.sprintf
      "    {\"structure\": \"%s\", \"n\": %d, \"hosts\": %d, \"cache_levels\": %d, \
       \"cache_replicas\": %d,\n\
      \     \"ops\": %d, \"queries\": %d, \"inserts\": %d, \"removes\": %d,\n\
      \     \"total_messages\": %d, \"mean_read_messages\": %.4f,%s\n\
      \     \"read_messages\": %s,\n\
      \     \"congestion\": %s,\n\
      \     \"top%d_share\": %.6f,\n\
      \     \"timing\": {\"jobs\": %d, \"wall_s\": %.6f}}"
      r.structure r.n r.hosts r.c r.k r.ops r.queries r.inserts r.removes r.total_msgs
      r.mean_read_msgs
      (match r.uncached_match with Some true -> " \"uncached_match\": true," | _ -> "")
      r.sketch_json
      (Obs.congestion_to_json r.congestion)
      top_m r.top_share r.jobs r.wall_s
  in
  Printf.sprintf
    "{\n  \"experiment\": \"serving\",\n  \"workload\": \"open-loop Poisson arrivals, \
     Zipf(1.1)+uniform blend; hierarchy 90/10 read/write churn, blocked read-only; level cache \
     c=%d swept over k=1/2/4 (k=1 asserted byte-identical to uncached)\",\n  \"rows\": [\n%s\n  ]\n}\n"
    cache_levels
    (String.concat ",\n" (List.map row_json rows))

let run (cfg : C.config) =
  C.section "Serving at scale: level cache vs hotspots (E20)";
  let seed = List.hd cfg.C.seeds in
  let sizes = if cfg.C.quick then [ 20_000 ] else [ 100_000; 1_000_000 ] in
  let ops = if cfg.C.quick then 2_000 else 20_000 in
  let rows =
    C.with_pool cfg (fun pool ->
        let jobs = match pool with None -> 1 | Some p -> Skipweb_util.Pool.jobs p in
        List.concat_map
          (fun n ->
            hierarchy_rows ~pool ~jobs ~seed ~ops n @ blocked_rows ~pool ~jobs ~seed ~ops n)
          sizes)
  in
  assert_flattening rows;
  let tbl =
    Skipweb_util.Tables.create
      ~title:
        (Printf.sprintf
           "level cache c=%d under open-loop Zipf(1.1) traffic (%d job(s))" cache_levels
           cfg.C.jobs)
      ~columns:
        [
          "structure"; "n"; "k"; "total msgs"; "mean read"; "traffic p99"; "traffic max"; "gini";
          Printf.sprintf "top%d share" top_m;
        ]
  in
  List.iter
    (fun r ->
      Skipweb_util.Tables.add_row tbl
        [
          r.structure;
          string_of_int r.n;
          string_of_int r.k;
          string_of_int r.total_msgs;
          Printf.sprintf "%.2f" r.mean_read_msgs;
          Printf.sprintf "%.0f" r.congestion.Obs.p99;
          Printf.sprintf "%.0f" r.congestion.Obs.max;
          Printf.sprintf "%.4f" r.congestion.Obs.gini;
          Printf.sprintf "%.4f" r.top_share;
        ])
    rows;
  Skipweb_util.Tables.print tbl;
  C.write_json ~file:"BENCH_serving.json" (json_of_rows rows)
