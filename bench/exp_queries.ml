(* E0: the rich query set of §1.

   The paper motivates skip-webs with a list of query types one network
   should support: exact match (set membership), one-dimensional nearest
   neighbor, range queries, string prefix queries, and point location.
   This experiment runs one of each against the appropriate skip-web and
   reports the message cost — the "it actually does all of that" table. *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module B1 = Skipweb_core.Blocked1d
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Stats = Skipweb_util.Stats
module C = Bench_common

module HP2 = H.Make (I.Points2d)
module HStr = H.Make (I.Strings)

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

let one_d ~seed ~n ~queries ~measure =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let g = B1.build ~net ~seed ~m:(4 * log2i n) keys in
  let rng = Prng.create (seed + 1) in
  measure g keys rng queries

let run (cfg : C.config) =
  C.section "The rich query set of the introduction (E0)";
  C.with_pool cfg @@ fun pool ->
  let sizes = List.filter (fun n -> n <= 4096) cfg.C.sizes in
  (* Query phases fan out over the --jobs pool via [query_batch]; origins
     are pre-drawn inside the batch, so costs and the in-line answer
     checks are bit-identical to the sequential loops for any jobs
     count. Seed replicas stay sequential here (the pool is not
     re-entrant; it is spent on the inner query loops). *)
  let membership =
    List.map
      (fun n ->
        C.mean_over_seeds cfg.C.seeds (fun seed ->
            one_d ~seed ~n ~queries:cfg.C.queries ~measure:(fun g keys rng count ->
                let qs = Array.init count (fun i -> keys.(i * 7919 mod n)) in
                let rs = B1.query_batch ?pool g ~rng qs in
                Array.iteri (fun i r -> assert (r.B1.predecessor = Some qs.(i))) rs;
                Stats.mean (Array.to_list (Array.map (fun (r : B1.search_result) -> float_of_int r.B1.messages) rs)))))
      sizes
  in
  let nearest =
    List.map
      (fun n ->
        C.mean_over_seeds cfg.C.seeds (fun seed ->
            one_d ~seed ~n ~queries:cfg.C.queries ~measure:(fun g keys rng count ->
                let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:count ~bound:(100 * n) in
                let rs = B1.query_batch ?pool g ~rng qs in
                Stats.mean (Array.to_list (Array.map (fun (r : B1.search_result) -> float_of_int r.B1.messages) rs)))))
      sizes
  in
  let range16 =
    List.map
      (fun n ->
        C.mean_over_seeds cfg.C.seeds (fun seed ->
            one_d ~seed ~n ~queries:(cfg.C.queries / 4) ~measure:(fun g keys rng count ->
                let costs = ref [] in
                for i = 0 to count - 1 do
                  let at = i * 37 mod (n - 20) in
                  let r = B1.range g ~rng ~lo:keys.(at) ~hi:keys.(at + 15) in
                  assert (List.length r.B1.keys = 16);
                  costs := float_of_int r.B1.messages :: !costs
                done;
                Stats.mean !costs)))
      sizes
  in
  let prefix =
    List.map
      (fun n ->
        C.mean_over_seeds cfg.C.seeds (fun seed ->
            let strs = W.isbn_strings ~seed ~n ~publishers:16 in
            let net = Network.create ~hosts:n in
            let h = HStr.build ~net ~seed strs in
            let rng = Prng.create (seed + 1) in
            let qs =
              Array.init (min 16 cfg.C.queries) (fun p -> Printf.sprintf "978-%d-" p)
            in
            let rs = HStr.query_batch ?pool h ~rng qs in
            Stats.mean
              (Array.to_list
                 (Array.map (fun (_, stats) -> float_of_int stats.HStr.messages) rs))))
      sizes
  in
  let point_location =
    List.map
      (fun n ->
        C.mean_over_seeds cfg.C.seeds (fun seed ->
            let pts = W.uniform_points ~seed ~n ~dim:2 in
            let net = Network.create ~hosts:n in
            let h = HP2.build ~net ~seed pts in
            let rng = Prng.create (seed + 1) in
            let qs = W.uniform_query_points ~seed:(seed + 2) ~n:cfg.C.queries ~dim:2 in
            let rs = HP2.query_batch ?pool h ~rng qs in
            Stats.mean
              (Array.to_list
                 (Array.map (fun (_, stats) -> float_of_int stats.HP2.messages) rs))))
      sizes
  in
  C.print_shape_table ~title:"message cost per query type (answers verified in-line)" ~sizes
    [
      ("exact match / membership (1-d)", membership, "~O(log n/loglog n)");
      ("nearest neighbor (1-d)", nearest, "~O(log n/loglog n)");
      ("range query, 16 keys (1-d)", range16, "locate + k/B");
      ("string prefix (ISBN publisher)", prefix, "~O(log n)");
      ("point location (2-d)", point_location, "~O(log n)");
    ]
