(* E7/E7b: bucket skip-webs — the memory/message trade-off of Table 1
   row 7 and the §1.3 constant-cost regime.

   With H < n hosts of memory M, query cost is O(log_M H). Two sweeps:
   (1) fix n, grow M: messages fall like log H / log M;
   (2) fix M = n^eps: messages stay constant as n grows. *)

module Network = Skipweb_net.Network
module B1 = Skipweb_core.Blocked1d
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Stats = Skipweb_util.Stats
module Tables = Skipweb_util.Tables
module C = Bench_common

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

let measure ~seed ~n ~hosts ~m ~queries =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts in
  let g = B1.build ~net ~seed ~m keys in
  let rng = Prng.create (seed + 1) in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:queries ~bound:(100 * n) in
  let msgs =
    Stats.mean (Array.to_list (Array.map (fun q -> float_of_int (B1.query g ~rng q).B1.messages) qs))
  in
  (msgs, B1.max_host_memory g)

let run (cfg : C.config) =
  C.section "Bucket skip-webs: the M sweep (E7) and the constant-cost regime (E7b)";
  (* Sweep M at fixed n. *)
  let n = List.fold_left max 1024 cfg.C.sizes in
  let tbl =
    Tables.create
      ~title:(Printf.sprintf "M sweep at n = %d: Q vs memory (H scaled as n log n / M)" n)
      ~columns:[ "M target"; "hosts H"; "Q mean msgs"; "max host mem"; "log_M H (predicted shape)" ]
  in
  List.iter
    (fun m ->
      let hosts = max 4 (min n (n * log2i n / m)) in
      let q, mem =
        let samples = List.map (fun seed -> measure ~seed ~n ~hosts ~m ~queries:cfg.C.queries) cfg.C.seeds in
        (Stats.mean (List.map fst samples), List.fold_left max 0 (List.map snd samples))
      in
      let predicted = Float.log (float_of_int hosts) /. Float.log (float_of_int (max 2 m)) in
      Tables.add_row tbl
        [
          string_of_int m;
          string_of_int hosts;
          Tables.cell_float q;
          string_of_int mem;
          Tables.cell_float predicted;
        ])
    (List.sort_uniq compare
       [
         log2i n;
         4 * log2i n;
         int_of_float (Float.pow (float_of_int n) 0.25);
         int_of_float (Float.pow (float_of_int n) 0.5);
         int_of_float (Float.pow (float_of_int n) 0.75);
       ]);
  Tables.print tbl;
  (* Constant-cost regime: M = n^eps, growing n. *)
  List.iter
    (fun eps ->
      let series =
        List.map
          (fun n ->
            let m = max 8 (int_of_float (Float.pow (float_of_int n) eps)) in
            let hosts = max 4 (min n (n * log2i n / m)) in
            C.mean_over_seeds cfg.C.seeds (fun seed ->
                fst (measure ~seed ~n ~hosts ~m ~queries:cfg.C.queries)))
          cfg.C.sizes
      in
      C.print_shape_table
        ~title:(Printf.sprintf "E7b: M = n^%.2f — Q(n) should be O(1)" eps)
        ~sizes:cfg.C.sizes
        [ (Printf.sprintf "Q(n), M=n^%.2f" eps, series, "O(1)") ])
    [ 0.25; 0.5 ]
