(* The experiment harness: regenerates every table, figure, lemma and
   theorem claim of the skip-webs paper (see DESIGN.md's experiment index
   and EXPERIMENTS.md for the measured-vs-paper discussion).

   Usage:
     dune exec bench/main.exe                 # all experiments, default sizes
     dune exec bench/main.exe -- --quick      # reduced sizes (CI-friendly)
     dune exec bench/main.exe -- table1 lemmas   # selected experiments only
     dune exec bench/main.exe -- --no-time    # skip wall-clock benches
     dune exec bench/main.exe -- --jobs 4     # parallel read + write paths:
                                              # query phases, seed replicas
                                              # and the scale bench's bulk
                                              # load / batch churn run on 4
                                              # domains (results are
                                              # bit-identical to --jobs 1)

   Experiments: table1, lemmas, theorem2, updates, figures, congestion,
   bucket, ablations, scale, churn, hotspot, serving, trace, multid,
   time. *)

let experiments =
  [
    ("queries", fun cfg -> Exp_queries.run cfg);
    ("table1", fun cfg -> Exp_table1.run cfg);
    ("lemmas", fun cfg -> Exp_lemmas.run cfg);
    ("theorem2", fun cfg -> Exp_theorem2.run cfg);
    ("updates", fun cfg -> Exp_updates.run cfg);
    ("figures", fun cfg -> Exp_figures.run cfg);
    ("congestion", fun cfg -> Exp_congestion.run cfg);
    ("bucket", fun cfg -> Exp_bucket.run cfg);
    ("ablations", fun cfg -> Exp_ablations.run cfg);
    ("scale", fun cfg -> Exp_scale.run cfg);
    ("churn", fun cfg -> Exp_churn.run cfg);
    ("hotspot", fun cfg -> Exp_hotspot.run cfg);
    ("serving", fun cfg -> Exp_serving.run cfg);
    ("trace", fun cfg -> Exp_trace.run cfg);
    ("multid", fun cfg -> Exp_multid.run cfg);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let no_time = List.mem "--no-time" args in
  (* --jobs N: domains for the parallel read and write paths (query
     phases, seed replicas, bulk load and batch churn). The flag's value
     is consumed here so the experiment selection below never mistakes the
     N for an experiment name. *)
  let jobs, args =
    let rec take acc = function
      | "--jobs" :: n :: rest -> (
          match int_of_string_opt n with
          | Some j when j >= 1 -> (Bench_common.clamp_jobs j, List.rev_append acc rest)
          | Some _ | None ->
              Printf.eprintf "error: --jobs expects a positive integer, got %S\n" n;
              exit 2)
      | [ "--jobs" ] ->
          Printf.eprintf "error: --jobs expects a value\n";
          exit 2
      | a :: rest -> take (a :: acc) rest
      | [] -> (1, List.rev acc)
    in
    take [] args
  in
  let selected = List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args in
  let cfg = if quick then Bench_common.quick_config else Bench_common.default_config in
  let cfg = { cfg with Bench_common.jobs } in
  Printf.printf
    "skip-webs reproduction harness — sizes: %s, %d queries, %d updates, %d seed(s), %d job(s)\n"
    (String.concat "," (List.map string_of_int cfg.Bench_common.sizes))
    cfg.Bench_common.queries cfg.Bench_common.updates
    (List.length cfg.Bench_common.seeds) cfg.Bench_common.jobs;
  let unknown = List.filter (fun s -> not (List.mem_assoc s experiments) && s <> "time") selected in
  List.iter (fun s -> Printf.eprintf "warning: unknown experiment %S ignored\n" s) unknown;
  let want name = selected = [] || List.mem name selected in
  List.iter (fun (name, f) -> if want name then f cfg) experiments;
  if (want "time" && not no_time) || List.mem "time" selected then Exp_time.run cfg
